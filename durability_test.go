package trod_test

import (
	"fmt"
	"path/filepath"
	"testing"

	trod "repro"
	"repro/internal/workload"
)

// TestDebuggingStorySurvivesRestart is the full durability arc: production
// and provenance both disk-backed, the bug happens, everything shuts down,
// both databases recover from their WALs, and the entire §3 debugging story
// (declarative query, replay with foreign-write injection, retroactive fix
// validation) still works against the recovered state.
func TestDebuggingStorySurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	prodPath := filepath.Join(dir, "prod.wal")
	provPath := filepath.Join(dir, "prov.wal")

	// --- life before the crash -------------------------------------------
	{
		prod, err := trod.OpenDiskDBNoSync(prodPath)
		if err != nil {
			t.Fatal(err)
		}
		if err := workload.SetupMoodle(prod); err != nil {
			t.Fatal(err)
		}
		prov, err := trod.OpenDiskDBNoSync(provPath)
		if err != nil {
			t.Fatal(err)
		}
		app := trod.NewApp(prod)
		workload.RegisterMoodle(app)
		tr, err := trod.AttachTracer(app, prov, trod.TraceConfig{Tables: workload.MoodleTables})
		if err != nil {
			t.Fatal(err)
		}
		if err := workload.RaceSubscribe(app, "R1", "R2", "U1", "F2"); err != nil {
			t.Fatal(err)
		}
		if _, err := app.InvokeWithReqID("R3", "fetchSubscribers", trod.Args{"forum": "F2"}); err == nil {
			t.Fatal("R3 should fail")
		}
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		if err := prod.Close(); err != nil {
			t.Fatal(err)
		}
		if err := prov.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// --- recovery ----------------------------------------------------------
	prod, err := trod.OpenDiskDBNoSync(prodPath)
	if err != nil {
		t.Fatal(err)
	}
	defer prod.Close()
	prov, err := trod.OpenDiskDBNoSync(provPath)
	if err != nil {
		t.Fatal(err)
	}
	defer prov.Close()

	// Production data recovered, including the duplicate.
	rows, err := prod.Query(`SELECT COUNT(*) FROM forum_sub WHERE userId = 'U1' AND forum = 'F2'`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Rows[0][0].AsInt() != 2 {
		t.Fatalf("recovered duplicates = %v", rows.Rows[0][0])
	}

	// Declarative debugging against the recovered provenance.
	dbg, err := prov.Query(`SELECT Timestamp, ReqId, HandlerName
		FROM Executions as E, ForumEvents as F ON E.TxnId = F.TxnId
		WHERE F.UserId = 'U1' AND F.Forum = 'F2' AND F.Type = 'Insert'
		ORDER BY Timestamp ASC`)
	if err != nil {
		t.Fatal(err)
	}
	if len(dbg.Rows) != 2 {
		t.Fatalf("recovered debug query rows = %d", len(dbg.Rows))
	}
	lateReq := dbg.Rows[1][1].AsText()

	// Re-attach TROD to the recovered pair (a fresh app process).
	app := trod.NewApp(prod)
	workload.RegisterMoodle(app)
	tr, err := trod.AttachTracer(app, prov, trod.TraceConfig{Tables: workload.MoodleTables})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	// Replay works from recovered provenance + recovered commit log.
	report, err := trod.NewReplayer(prod, tr).Replay(lateReq, workload.RegisterMoodle, trod.ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if report.Diverged {
		t.Fatalf("post-recovery replay diverged: %v", report.Diffs)
	}
	if len(report.ForeignWriters) != 1 {
		t.Fatalf("post-recovery foreign writers = %v", report.ForeignWriters)
	}

	// Retroactive fix validation works too.
	retroReport, err := trod.NewRetro(prod, tr).Run([]string{"R1", "R2", "R3"}, workload.RegisterMoodleFixed, trod.RetroOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !retroReport.AllInvariantsHold() {
		t.Fatal("post-recovery retro run failed")
	}

	// And the recovered system keeps serving + tracing new traffic.
	if _, err := app.InvokeWithReqID("R10", "subscribeUser", trod.Args{"userId": "U9", "forum": "F9"}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	post, err := prov.Query(`SELECT COUNT(*) FROM Executions WHERE ReqId = 'R10'`)
	if err != nil {
		t.Fatal(err)
	}
	if post.Rows[0][0].AsInt() == 0 {
		t.Error("post-recovery traffic not traced")
	}
}

// TestCheckpointedDebuggingStorySurvivesRestart is the checkpointed variant
// of the durability arc: production and provenance databases both disk-backed
// with automatic checkpoints, the bug happens, both checkpoint, everything
// restarts — recovery must come from the snapshots plus a short WAL tail
// (not full replay), and the §3 declarative debugging still works.
func TestCheckpointedDebuggingStorySurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	prodPath := filepath.Join(dir, "prod.wal")
	provPath := filepath.Join(dir, "prov.wal")

	{
		prod, err := trod.OpenDB(trod.DBOptions{Mode: trod.ModeDisk, Path: prodPath, Sync: trod.SyncNever})
		if err != nil {
			t.Fatal(err)
		}
		if err := workload.SetupMoodle(prod); err != nil {
			t.Fatal(err)
		}
		prov, err := trod.OpenDB(trod.DBOptions{Mode: trod.ModeDisk, Path: provPath, Sync: trod.SyncNever,
			CheckpointRecords: 8})
		if err != nil {
			t.Fatal(err)
		}
		app := trod.NewApp(prod)
		workload.RegisterMoodle(app)
		tr, err := trod.AttachTracer(app, prov, trod.TraceConfig{Tables: workload.MoodleTables})
		if err != nil {
			t.Fatal(err)
		}
		if err := workload.RaceSubscribe(app, "R1", "R2", "U1", "F2"); err != nil {
			t.Fatal(err)
		}
		// Keep serving after the bug so the provenance WAL outgrows its
		// checkpoint threshold and rotates automatically. Flushing the
		// tracer every few requests turns the traffic into several distinct
		// provenance batch commits (WAL records).
		// Explicit request IDs: auto-generated ones (app.Invoke) restart at
		// R1 and would collide with RaceSubscribe's R1/R2.
		for i := 0; i < 30; i++ {
			if _, err := app.InvokeWithReqID(fmt.Sprintf("Q%d", i), "subscribeUser",
				trod.Args{"userId": fmt.Sprintf("U%d", 100+i), "forum": "F1"}); err != nil {
				t.Fatal(err)
			}
			if i%3 == 0 {
				if err := tr.Flush(); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := tr.Flush(); err != nil {
			t.Fatal(err)
		}
		// An explicit checkpoint on the production side too.
		if err := prod.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		if prov.WALStats().Rotations == 0 {
			t.Fatal("provenance WAL never auto-checkpointed")
		}
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		prod.Close()
		prov.Close()
	}

	prod, err := trod.OpenDiskDBNoSync(prodPath)
	if err != nil {
		t.Fatal(err)
	}
	defer prod.Close()
	prov, err := trod.OpenDiskDBNoSync(provPath)
	if err != nil {
		t.Fatal(err)
	}
	defer prov.Close()

	// Both databases recovered through the snapshot fast path.
	if info := prod.Recovery(); !info.SnapshotLoaded {
		t.Errorf("production recovery skipped the snapshot: %+v", info)
	}
	if info := prov.Recovery(); !info.SnapshotLoaded {
		t.Errorf("provenance recovery skipped the snapshot: %+v", info)
	}

	// The duplicate-subscription bug is still visible in recovered data.
	rows, err := prod.Query(`SELECT COUNT(*) FROM forum_sub WHERE userId = 'U1' AND forum = 'F2'`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Rows[0][0].AsInt() != 2 {
		t.Fatalf("recovered duplicates = %v", rows.Rows[0][0])
	}
	// And the declarative debugging query still finds both writers.
	dbg, err := prov.Query(`SELECT Timestamp, ReqId, HandlerName
		FROM Executions as E, ForumEvents as F ON E.TxnId = F.TxnId
		WHERE F.UserId = 'U1' AND F.Forum = 'F2' AND F.Type = 'Insert'
		ORDER BY Timestamp ASC`)
	if err != nil {
		t.Fatal(err)
	}
	if len(dbg.Rows) != 2 {
		t.Fatalf("debug query over checkpoint-recovered provenance = %d rows, want 2", len(dbg.Rows))
	}
}

// TestProvenanceRecoveryPreservesEventTables checks that the dynamically
// created event tables (whose DDL is WAL-logged) come back with their
// schema and indexes.
func TestProvenanceRecoveryPreservesEventTables(t *testing.T) {
	dir := t.TempDir()
	provPath := filepath.Join(dir, "prov.wal")
	{
		prod := trod.OpenMemoryDB()
		defer prod.Close()
		if err := workload.SetupMoodle(prod); err != nil {
			t.Fatal(err)
		}
		prov, err := trod.OpenDiskDBNoSync(provPath)
		if err != nil {
			t.Fatal(err)
		}
		app := trod.NewApp(prod)
		workload.RegisterMoodle(app)
		tr, err := trod.AttachTracer(app, prov, trod.TraceConfig{Tables: workload.MoodleTables})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := app.Invoke("subscribeUser", trod.Args{"userId": "U1", "forum": "F1"}); err != nil {
			t.Fatal(err)
		}
		tr.Close()
		prov.Close()
	}
	prov, err := trod.OpenDiskDBNoSync(provPath)
	if err != nil {
		t.Fatal(err)
	}
	defer prov.Close()
	for _, table := range []string{"Executions", "ForumEvents", "CourseEvents", "trod_requests", "trod_rpc_edges", "trod_externals"} {
		if prov.Store().Table(table) == nil {
			t.Errorf("recovered provenance missing table %s", table)
		}
	}
	// The TxnId index on ForumEvents survived (used via equality lookup).
	found := false
	for _, ix := range prov.Store().Indexes("ForumEvents") {
		if ix.Name == "ForumEvents_txn" {
			found = true
		}
	}
	if !found {
		t.Error("event-table index lost in recovery")
	}
	rows, err := prov.Query(`SELECT COUNT(*) FROM ForumEvents`)
	if err != nil || rows.Rows[0][0].AsInt() == 0 {
		t.Errorf("recovered events = %v, %v", rows, err)
	}
}
