// Benchmark harness: one testing.B target per paper table/figure/prototype
// claim, as indexed in DESIGN.md §4. Custom metrics carry the quantities
// the paper reports (overhead %, query ms, schedule counts); EXPERIMENTS.md
// records paper-vs-measured for each. cmd/trod-bench runs the same
// experiments with paper-formatted output and larger scales.
package trod_test

import (
	"fmt"
	"testing"

	"repro/internal/experiments"
)

// BenchmarkE1TracingOverheadMemory regenerates the §3.7 claim on the
// in-memory engine (paper: <15% relative overhead, <100µs absolute).
func BenchmarkE1TracingOverheadMemory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pair, err := experiments.RunE1Pair(experiments.EngineMemory, 2000, 50, false)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pair.Off.AvgUs, "base-us/req")
		b.ReportMetric(pair.On.AvgUs, "traced-us/req")
		b.ReportMetric(pair.OverheadPct, "overhead-%")
		b.ReportMetric(pair.PerReqUs, "trace-cost-us/req")
	}
}

// BenchmarkE1TracingOverheadDisk regenerates the §3.7 claim on the
// disk-backed engine (paper: negligible overhead on Postgres).
func BenchmarkE1TracingOverheadDisk(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pair, err := experiments.RunE1Pair(experiments.EngineDisk, 500, 50, true)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pair.Off.AvgUs, "base-us/req")
		b.ReportMetric(pair.On.AvgUs, "traced-us/req")
		b.ReportMetric(pair.OverheadPct, "overhead-%")
	}
}

// BenchmarkE2QueryLatency regenerates the §3.7 declarative-query claim
// (paper: interactive latency over very large event logs); the series over
// event-count scales is printed by cmd/trod-bench -exp e2.
func BenchmarkE2QueryLatency(b *testing.B) {
	for _, scale := range []int{10_000, 50_000, 200_000} {
		b.Run(fmt.Sprintf("events=%d", scale), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pts, err := experiments.RunE2([]int{scale})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(pts[0].QueryMs, "query-ms")
				b.ReportMetric(pts[0].AggMs, "agg-ms")
				b.ReportMetric(pts[0].LoadMs, "load-ms")
			}
		})
	}
}

// BenchmarkE3Table1 regenerates the paper's Table 1 from a live scenario.
func BenchmarkE3Table1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sc, err := experiments.NewScenario()
		if err != nil {
			b.Fatal(err)
		}
		rows, err := experiments.RunE3Table1(sc)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(rows.Rows)), "rows")
		sc.Close()
	}
}

// BenchmarkE4Table2 regenerates the paper's Table 2 (data operations log).
func BenchmarkE4Table2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sc, err := experiments.NewScenario()
		if err != nil {
			b.Fatal(err)
		}
		rows, err := experiments.RunE4Table2(sc)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(rows.Rows)), "rows")
		sc.Close()
	}
}

// BenchmarkE5DebugQuery regenerates the §3.3 debugging query result
// ((TS3, R2, subscribeUser), (TS4, R1, subscribeUser) in the paper).
func BenchmarkE5DebugQuery(b *testing.B) {
	sc, err := experiments.NewScenario()
	if err != nil {
		b.Fatal(err)
	}
	defer sc.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunE5DebugQuery(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE6Replay regenerates Figure 3 (top): faithful replay with
// foreign-write injection.
func BenchmarkE6Replay(b *testing.B) {
	sc, err := experiments.NewScenario()
	if err != nil {
		b.Fatal(err)
	}
	defer sc.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report, err := experiments.RunE6Replay(sc)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(report.Steps)), "steps")
	}
}

// BenchmarkE7Retro regenerates Figure 3 (bottom): retroactive testing of
// the fix over both request orders.
func BenchmarkE7Retro(b *testing.B) {
	sc, err := experiments.NewScenario()
	if err != nil {
		b.Fatal(err)
	}
	defer sc.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report, err := experiments.RunE7Retro(sc)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(report.Schedules)), "schedules")
	}
}

// BenchmarkE8AccessControl regenerates the §4.2 User Profiles detection.
func BenchmarkE8AccessControl(b *testing.B) {
	sc, err := experiments.NewSecurityScenario()
	if err != nil {
		b.Fatal(err)
	}
	defer sc.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunE8AccessControl(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE9Exfiltration regenerates the §4.2 workflow forensics.
func BenchmarkE9Exfiltration(b *testing.B) {
	sc, err := experiments.NewSecurityScenario()
	if err != nil {
		b.Fatal(err)
	}
	defer sc.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunE9Exfiltration(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE10CaseStudies runs the three §4.1 case studies end to end
// (reproduce → locate → replay → retro-validate the fix).
func BenchmarkE10CaseStudies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := experiments.RunE10CaseStudies()
		if err != nil {
			b.Fatal(err)
		}
		ok := 0
		for _, r := range results {
			if r.Located && r.Replayed && r.FixValidated {
				ok++
			}
		}
		b.ReportMetric(float64(ok), "cases-pass")
	}
}

// BenchmarkA1FlushPolicy is the async-vs-sync tracing ablation.
func BenchmarkA1FlushPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunA1FlushPolicy(1000, 50)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.AsyncAvgUs, "async-us/req")
		b.ReportMetric(res.SyncAvgUs, "sync-us/req")
		b.ReportMetric(res.Slowdown, "sync-slowdown-x")
	}
}

// BenchmarkA2SelectiveRestore is the full-vs-selective replay restore
// ablation.
func BenchmarkA2SelectiveRestore(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunA2SelectiveRestore(50_000)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.FullMs, "full-ms")
		b.ReportMetric(res.SelectiveMs, "selective-ms")
		b.ReportMetric(res.Speedup, "speedup-x")
	}
}

// BenchmarkA3Interleavings is the conflict-pruning ablation for the
// retroactive scheduler.
func BenchmarkA3Interleavings(b *testing.B) {
	for _, extras := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("extras=%d", extras), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunA3Interleavings(extras, 512)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.PrunedCount), "pruned-schedules")
				b.ReportMetric(float64(res.NaiveCount), "naive-schedules")
			}
		})
	}
}
