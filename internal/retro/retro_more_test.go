package retro

import (
	"strings"
	"testing"

	"repro/internal/db"
	"repro/internal/runtime"
	"repro/internal/trace"
	"repro/internal/workload"
)

func TestSchedulesAreDistinct(t *testing.T) {
	prod, tr := scenario(t)
	rt := New(prod, tr.Writer())
	report, err := rt.Run([]string{"R1", "R2"}, workload.RegisterMoodle, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, s := range report.Schedules {
		key := strings.Join(s.Order, ",")
		if seen[key] {
			t.Errorf("duplicate schedule %v", s.Order)
		}
		seen[key] = true
	}
}

func TestRetroDeterministicAcrossRuns(t *testing.T) {
	prod, tr := scenario(t)
	rt := New(prod, tr.Writer())
	r1, err := rt.Run([]string{"R1", "R2", "R3"}, workload.RegisterMoodleFixed, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := rt.Run([]string{"R1", "R2", "R3"}, workload.RegisterMoodleFixed, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Schedules) != len(r2.Schedules) {
		t.Fatalf("schedule counts differ: %d vs %d", len(r1.Schedules), len(r2.Schedules))
	}
	for i := range r1.Schedules {
		a := strings.Join(r1.Schedules[i].Order, ",")
		b := strings.Join(r2.Schedules[i].Order, ",")
		if a != b {
			t.Errorf("schedule %d differs: %s vs %s", i, a, b)
		}
		for j := range r1.Schedules[i].Requests {
			ra := r1.Schedules[i].Requests[j]
			rb := r2.Schedules[i].Requests[j]
			if ra.ResultJSON != rb.ResultJSON || (ra.Err == nil) != (rb.Err == nil) {
				t.Errorf("schedule %d request %s nondeterministic: %q/%v vs %q/%v",
					i, ra.ReqID, ra.ResultJSON, ra.Err, rb.ResultJSON, rb.Err)
			}
		}
	}
}

func TestSinglePhaseOverridesIntervals(t *testing.T) {
	// R1 and R3 did NOT overlap in production, but SinglePhase forces them
	// concurrent: the fetch (R3) can now run before the subscribes and see
	// different results across schedules.
	prod, tr := scenario(t)
	rt := New(prod, tr.Writer())
	multi, err := rt.Run([]string{"R1", "R3"}, workload.RegisterMoodle, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(multi.Phases) != 2 {
		t.Fatalf("interval phases = %v", multi.Phases)
	}
	single, err := rt.Run([]string{"R1", "R3"}, workload.RegisterMoodle, Options{SinglePhase: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(single.Phases) != 1 || len(single.Phases[0]) != 2 {
		t.Fatalf("single phases = %v", single.Phases)
	}
	if len(single.Schedules) <= len(multi.Schedules) {
		t.Errorf("single phase should explore more orders: %d vs %d",
			len(single.Schedules), len(multi.Schedules))
	}
}

func TestRetroHandlerErrorDoesNotAbortExploration(t *testing.T) {
	prod, tr := scenario(t)
	rt := New(prod, tr.Writer())
	// The buggy code makes R3 fail in the bad interleavings; all schedules
	// must still complete and be reported.
	report, err := rt.Run([]string{"R1", "R2", "R3"}, workload.RegisterMoodle, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Schedules) < 6 {
		t.Fatalf("schedules = %d", len(report.Schedules))
	}
	sawError, sawSuccess := false, false
	for _, s := range report.Schedules {
		for _, rq := range s.Requests {
			if rq.ReqID != "R3" {
				continue
			}
			if rq.Err != nil {
				sawError = true
			} else {
				sawSuccess = true
			}
		}
	}
	if !sawError || !sawSuccess {
		t.Errorf("R3 outcomes not interleaving-dependent: err=%v ok=%v", sawError, sawSuccess)
	}
}

func TestRetroAcrossRPCWorkflow(t *testing.T) {
	// The travel bookTrip calls chargeCustomer via RPC: its transactions
	// must be gated under the SAME request in the scheduler.
	prod := db.MustOpenMemory()
	prov := db.MustOpenMemory()
	defer prod.Close()
	defer prov.Close()
	if err := workload.SetupTravel(prod); err != nil {
		t.Fatal(err)
	}
	app := runtime.New(prod)
	workload.RegisterTravel(app)
	tr, err := trace.Attach(app, prov, trace.Config{Tables: workload.TravelTables})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if _, err := app.InvokeWithReqID("R1", "bookTrip", runtime.Args{"flightId": "F100", "customer": "early"}); err != nil {
		t.Fatal(err)
	}
	if err := workload.RaceHandlers(app, "bookTrip", "recordBooking", "R2", "R3",
		runtime.Args{"flightId": "F100", "customer": "a"},
		runtime.Args{"flightId": "F100", "customer": "b"}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	rt := New(prod, tr.Writer())
	report, err := rt.Run([]string{"R2", "R3"}, workload.RegisterTravelFixed, Options{
		MaxSchedules: 32,
		Invariant: func(dev *db.DB) error {
			r, err := dev.Query(`SELECT flightId FROM flights WHERE booked > seats`)
			if err != nil {
				return err
			}
			if len(r.Rows) > 0 {
				t.Logf("oversold in a schedule")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Fixed bookTrip has 3 txns (insertPayment, bookAtomic, link/void):
	// interleavings of 3+3 = C(6,3) = 20 schedules.
	if len(report.Schedules) != 20 {
		t.Errorf("schedules = %d, want 20", len(report.Schedules))
	}
	if !report.AllInvariantsHold() {
		t.Error("fixed travel code failed an interleaving")
	}
	// Exactly one racer wins the seat in every schedule.
	for _, s := range report.Schedules {
		wins := 0
		for _, rq := range s.Requests {
			if rq.Err != nil {
				t.Errorf("request error under %v: %v", s.Order, rq.Err)
			}
			if rq.ResultJSON != `"sold-out"` {
				wins++
			}
		}
		if wins != 1 {
			t.Errorf("schedule %v: %d winners, want 1", s.Order, wins)
		}
	}
}
