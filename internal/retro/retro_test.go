package retro

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/db"
	"repro/internal/runtime"
	"repro/internal/trace"
	"repro/internal/workload"
)

// scenario reproduces MDL-59854 in production with tracing: R1 and R2 race
// subscribing (U1, F2), R3 fetches and fails.
func scenario(t *testing.T) (*db.DB, *trace.Tracer) {
	t.Helper()
	prod := db.MustOpenMemory()
	prov := db.MustOpenMemory()
	t.Cleanup(func() { prod.Close(); prov.Close() })
	if err := workload.SetupMoodle(prod); err != nil {
		t.Fatal(err)
	}
	app := runtime.New(prod)
	workload.RegisterMoodle(app)
	tr, err := trace.Attach(app, prov, trace.Config{Tables: workload.MoodleTables})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	if err := workload.RaceSubscribe(app, "R1", "R2", "U1", "F2"); err != nil {
		t.Fatal(err)
	}
	if _, err := app.InvokeWithReqID("R3", "fetchSubscribers", runtime.Args{"forum": "F2"}); err == nil {
		t.Fatal("R3 should fail on duplicates")
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	return prod, tr
}

// noDuplicates is the invariant under test: no duplicated (userId, forum).
func noDuplicates(dev *db.DB) error {
	rows, err := dev.Query(`SELECT userId, forum, COUNT(*) AS c FROM forum_sub
		GROUP BY userId, forum HAVING COUNT(*) > 1`)
	if err != nil {
		return err
	}
	if len(rows.Rows) > 0 {
		return fmt.Errorf("duplicate subscription %s/%s", rows.Rows[0][0].AsText(), rows.Rows[0][1].AsText())
	}
	return nil
}

func TestRetroFixPassesAllInterleavings(t *testing.T) {
	prod, tr := scenario(t)
	rt := New(prod, tr.Writer())
	// Figure 3 (bottom): re-serve R1, R2, R3 with the PATCHED handler.
	report, err := rt.Run([]string{"R1", "R2", "R3"}, workload.RegisterMoodleFixed, Options{
		Invariant: noDuplicates,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Phases: {R1, R2} concurrent, then {R3}.
	if len(report.Phases) != 2 || len(report.Phases[0]) != 2 || report.Phases[1][0] != "R3" {
		t.Fatalf("phases = %v", report.Phases)
	}
	if len(report.Schedules) < 2 {
		t.Fatalf("expected at least 2 schedules (R1' first / R2' first), got %d", len(report.Schedules))
	}
	if !report.AllInvariantsHold() {
		for _, s := range report.Schedules {
			t.Logf("order=%v invariant=%v", s.Order, s.InvariantErr)
			for _, rq := range s.Requests {
				t.Logf("  %s err=%v result=%s", rq.ReqID, rq.Err, rq.ResultJSON)
			}
		}
		t.Fatal("patched code should pass every interleaving")
	}
	// R3' (fetchSubscribers) succeeds in every schedule — the error is gone.
	for _, s := range report.Schedules {
		for _, rq := range s.Requests {
			if rq.ReqID == "R3" && rq.Err != nil {
				t.Errorf("R3' failed under order %v: %v", s.Order, rq.Err)
			}
		}
	}
	// Both request orders were actually tested.
	orders := map[string]bool{}
	for _, s := range report.Schedules {
		first := ""
		for _, r := range s.Order {
			if r == "R1" || r == "R2" {
				first = r
				break
			}
		}
		orders[first] = true
	}
	if !orders["R1"] || !orders["R2"] {
		t.Errorf("both R1-first and R2-first orders should be explored: %v", orders)
	}
}

func TestRetroBuggyCodeStillFails(t *testing.T) {
	prod, tr := scenario(t)
	rt := New(prod, tr.Writer())
	// Re-serving with the ORIGINAL buggy handler must reproduce the bug in
	// at least one interleaving (in fact in all explored ones, since the
	// scheduler serialises the two-txn windows against each other).
	report, err := rt.Run([]string{"R1", "R2", "R3"}, workload.RegisterMoodle, Options{
		Invariant: noDuplicates,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.AllInvariantsHold() {
		t.Fatal("buggy code should violate the invariant in some interleaving")
	}
	// At least one schedule shows the duplicate AND R3's error.
	foundDup := false
	for _, s := range report.Schedules {
		if s.InvariantErr != nil && strings.Contains(s.InvariantErr.Error(), "duplicate") {
			foundDup = true
		}
	}
	if !foundDup {
		t.Error("no schedule surfaced the duplicate invariant violation")
	}
}

func TestRetroExploresTxnGranularInterleavings(t *testing.T) {
	prod, tr := scenario(t)
	rt := New(prod, tr.Writer())
	report, err := rt.Run([]string{"R1", "R2"}, workload.RegisterMoodle, Options{
		Invariant: noDuplicates,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The buggy handler has 2 txns per request; interleavings of 2+2 txns
	// = C(4,2) = 6 schedules.
	if len(report.Schedules) != 6 {
		for _, s := range report.Schedules {
			t.Logf("order = %v", s.Order)
		}
		t.Errorf("schedules = %d, want 6", len(report.Schedules))
	}
	// The bad interleaving (check, check, insert, insert) must be among
	// them and must produce the duplicate.
	var badSeen, goodSeen bool
	for _, s := range report.Schedules {
		if s.InvariantErr != nil {
			badSeen = true
		} else {
			goodSeen = true
		}
	}
	if !badSeen {
		t.Error("no interleaving produced the duplicate")
	}
	if !goodSeen {
		t.Error("no interleaving avoided the duplicate (serial orders should)")
	}
}

func TestRetroConflictPruningReducesSchedules(t *testing.T) {
	// Two racing pairs on DIFFERENT forums: (R1,R2) on F1 and (R4,R5) on
	// F2... but both pairs touch forum_sub, so they conflict at table
	// granularity. To exercise pruning, race subscribers against profile
	// updates in an app with two unrelated traced tables.
	prod := db.MustOpenMemory()
	prov := db.MustOpenMemory()
	defer prod.Close()
	defer prov.Close()
	if err := workload.SetupMoodle(prod); err != nil {
		t.Fatal(err)
	}
	if err := workload.SetupProfiles(prod); err != nil {
		t.Fatal(err)
	}
	app := runtime.New(prod)
	workload.RegisterMoodle(app)
	workload.RegisterProfiles(app)
	tables := make(map[string]string)
	for k, v := range workload.MoodleTables {
		tables[k] = v
	}
	for k, v := range workload.ProfileTables {
		tables[k] = v
	}
	tr, err := trace.Attach(app, prov, trace.Config{Tables: tables})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	// Run a subscription race (forum tables) — concurrently with it, a
	// profile update (profiles table) would commute; but we cannot easily
	// overlap them in production, so craft overlap by racing the subscribe
	// pair and immediately examining pruning on the recorded pair plus a
	// non-overlapping profile request (its own phase).
	if err := workload.RaceSubscribe(app, "R1", "R2", "U1", "F1"); err != nil {
		t.Fatal(err)
	}
	if _, err := app.InvokeWithReqID("R3", "updateProfile", runtime.Args{"userName": "alice", "caller": "alice", "bio": "x"}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}

	rt := New(prod, tr.Writer())
	pruned, err := rt.Run([]string{"R1", "R2", "R3"}, func(a *runtime.App) {
		workload.RegisterMoodle(a)
		workload.RegisterProfiles(a)
	}, Options{Invariant: noDuplicates})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := rt.Run([]string{"R1", "R2", "R3"}, func(a *runtime.App) {
		workload.RegisterMoodle(a)
		workload.RegisterProfiles(a)
	}, Options{Invariant: noDuplicates, DisableConflictPruning: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(pruned.Schedules) > len(naive.Schedules) {
		t.Errorf("pruning increased schedules: %d > %d", len(pruned.Schedules), len(naive.Schedules))
	}
	if naive.BranchedPoints < pruned.BranchedPoints {
		t.Errorf("naive branched less than pruned: %d < %d", naive.BranchedPoints, pruned.BranchedPoints)
	}
}

func TestRetroMaxSchedulesBound(t *testing.T) {
	prod, tr := scenario(t)
	rt := New(prod, tr.Writer())
	report, err := rt.Run([]string{"R1", "R2"}, workload.RegisterMoodle, Options{MaxSchedules: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Schedules) > 2 {
		t.Errorf("bound ignored: %d schedules", len(report.Schedules))
	}
}

func TestRetroResultChangeDetection(t *testing.T) {
	prod, tr := scenario(t)
	rt := New(prod, tr.Writer())

	// R3 alone: the snapshot is taken right before R3, which already holds
	// the duplicates — the retro run reproduces the original failure and
	// the result is NOT flagged as changed.
	report, err := rt.Run([]string{"R3"}, workload.RegisterMoodle, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Schedules) != 1 {
		t.Fatalf("schedules = %d", len(report.Schedules))
	}
	rq := report.Schedules[0].Requests[0]
	if rq.Err == nil {
		t.Error("R3 alone should reproduce the duplicate error")
	}
	if rq.ChangedFromOriginal {
		t.Error("identical failure should not be flagged as changed")
	}

	// The full set with the FIX: R3' now succeeds with a subscriber list —
	// a changed result, flagged.
	report, err = rt.Run([]string{"R1", "R2", "R3"}, workload.RegisterMoodleFixed, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range report.Schedules {
		for _, rq := range s.Requests {
			if rq.ReqID != "R3" {
				continue
			}
			if rq.Err != nil {
				t.Errorf("fixed R3' failed: %v", rq.Err)
			}
			if !rq.ChangedFromOriginal {
				t.Error("R3' result change not flagged")
			}
		}
	}
}

func TestRetroErrors(t *testing.T) {
	prod, tr := scenario(t)
	rt := New(prod, tr.Writer())
	if _, err := rt.Run(nil, workload.RegisterMoodle, Options{}); err == nil {
		t.Error("empty request list should fail")
	}
	if _, err := rt.Run([]string{"R404"}, workload.RegisterMoodle, Options{}); err == nil {
		t.Error("unknown request should fail")
	}
}

func TestRetroMDL60669FixValidation(t *testing.T) {
	// The full §4.1 arc: the MDL-59854 patch is validated retroactively
	// against the recorded requests INCLUDING a course restore, revealing
	// the follow-on bug MDL-60669 (the patch does not clean up existing
	// duplicates in deleted courses).
	prod := db.MustOpenMemory()
	prov := db.MustOpenMemory()
	defer prod.Close()
	defer prov.Close()
	if err := workload.SetupMoodle(prod); err != nil {
		t.Fatal(err)
	}
	app := runtime.New(prod)
	workload.RegisterMoodle(app)
	tr, err := trace.Attach(app, prov, trace.Config{Tables: workload.MoodleTables})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	if err := workload.RaceSubscribe(app, "R1", "R2", "U1", "F2"); err != nil {
		t.Fatal(err)
	}
	if _, err := app.InvokeWithReqID("R3", "deleteCourse", runtime.Args{"course": "C1"}); err != nil {
		t.Fatal(err)
	}
	if _, err := app.InvokeWithReqID("R4", "restoreCourse", runtime.Args{"course": "C1"}); err == nil {
		t.Fatal("restore should fail in production (MDL-60669)")
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}

	rt := New(prod, tr.Writer())
	report, err := rt.Run([]string{"R1", "R2", "R3", "R4"}, workload.RegisterMoodleFixed, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// With the fix, the race no longer duplicates, so the restore succeeds
	// in the retro world — BUT the paper's point stands when duplicates
	// already exist. Verify both sides:
	for _, s := range report.Schedules {
		for _, rq := range s.Requests {
			if rq.ReqID == "R4" && rq.Err != nil {
				t.Errorf("retro restore failed under %v: %v", s.Order, rq.Err)
			}
		}
	}
}
