// Package retro implements TROD's retroactive programming (paper §3.6):
// re-executing past requests against possibly-modified handler code over a
// restored snapshot, systematically exploring the transaction-granularity
// interleavings of concurrent requests.
//
// The engine:
//
//  1. loads the chosen requests from provenance (handler, arguments,
//     original execution intervals and traced-table footprints),
//  2. partitions them into phases: requests whose original executions
//     overlapped in time are concurrent within a phase; later requests run
//     after earlier phases (the paper's R3' runs after R1'/R2'),
//  3. for each schedule, restores a development database to the snapshot
//     before the earliest request and re-executes every request, gating
//     each transaction through a scheduler that serialises them into the
//     chosen interleaving, and
//  4. enumerates schedules by depth-first branching at every decision point
//     where more than one *conflicting* request is ready (requests whose
//     traced-table footprints are disjoint commute, so their relative order
//     is not branched on — the conflict pruning the paper argues makes the
//     search tractable; ablation A3 measures it).
//
// Because handlers only share state through transactions (P2), the
// transaction boundary is the only place interleavings can differ, so
// exploring these schedules is exhaustive at the level that matters.
package retro

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/db"
	"repro/internal/provenance"
	"repro/internal/runtime"
)

// Retro is the retroactive-programming engine.
type Retro struct {
	prod *db.DB
	prov *provenance.Writer
}

// New creates an engine over a production database and its provenance.
func New(prod *db.DB, prov *provenance.Writer) *Retro {
	return &Retro{prod: prod, prov: prov}
}

// Options configures a retroactive run.
type Options struct {
	// MaxSchedules bounds the exploration (default 64).
	MaxSchedules int
	// Invariant, when set, runs against the development database after each
	// schedule; its error is recorded as the schedule's invariant violation.
	Invariant func(dev *db.DB) error
	// DisableConflictPruning branches on every ready request, even
	// non-conflicting ones (naive enumeration; ablation A3).
	DisableConflictPruning bool
	// SinglePhase treats all given requests as one concurrent group,
	// overriding the interval-overlap heuristic. Use it when the developer
	// knows which requests to test as concurrent (the paper's workflow:
	// "re-execute the original two conflicting subscription requests").
	SinglePhase bool
}

// RequestOutcome is one request's result under one schedule.
type RequestOutcome struct {
	ReqID      string
	Result     any
	Err        error
	ResultJSON string
	// ChangedFromOriginal reports whether the result differs from the
	// original production execution's recorded result.
	ChangedFromOriginal bool
}

// ScheduleResult is the outcome of one explored interleaving.
type ScheduleResult struct {
	// Order is the sequence of request IDs in the order their transactions
	// were granted (one entry per granted transaction).
	Order []string
	// Requests holds per-request outcomes, in phase order.
	Requests []RequestOutcome
	// InvariantErr is the post-schedule invariant violation, if any.
	InvariantErr error
}

// Report is the outcome of a retroactive run.
type Report struct {
	ReqIDs    []string
	Phases    [][]string
	Schedules []ScheduleResult
	// DecisionPoints counts scheduler states with >1 ready request;
	// BranchedPoints counts those actually branched after conflict pruning.
	DecisionPoints int
	BranchedPoints int
}

// AllInvariantsHold reports whether no explored schedule violated the
// invariant or returned a request error.
func (r *Report) AllInvariantsHold() bool {
	for _, s := range r.Schedules {
		if s.InvariantErr != nil {
			return false
		}
		for _, rq := range s.Requests {
			if rq.Err != nil {
				return false
			}
		}
	}
	return true
}

// reqSpec is a loaded past request.
type reqSpec struct {
	id      string
	handler string
	args    runtime.Args
	origRes string
	start   uint64 // first execution timestamp
	end     uint64 // last execution timestamp
	tables  map[string]bool
	baseSeq uint64 // snapshot of its first committed txn
}

// Run re-executes the given past requests with the handlers installed by
// register (typically the modified code under test).
func (r *Retro) Run(reqIDs []string, register func(*runtime.App), opts Options) (*Report, error) {
	if opts.MaxSchedules <= 0 {
		opts.MaxSchedules = 64
	}
	specs, err := r.loadSpecs(reqIDs)
	if err != nil {
		return nil, err
	}
	var phases [][]*reqSpec
	if opts.SinglePhase {
		phases = [][]*reqSpec{specs}
	} else {
		phases = partitionPhases(specs)
	}

	baseSeq := specs[0].baseSeq
	for _, s := range specs {
		if s.baseSeq < baseSeq {
			baseSeq = s.baseSeq
		}
	}

	report := &Report{ReqIDs: reqIDs}
	for _, ph := range phases {
		ids := make([]string, len(ph))
		for i, s := range ph {
			ids[i] = s.id
		}
		report.Phases = append(report.Phases, ids)
	}

	// Depth-first exploration over choice prefixes.
	type prefix []int
	stack := []prefix{nil}
	seen := map[string]bool{}
	for len(stack) > 0 && len(report.Schedules) < opts.MaxSchedules {
		pfx := stack[len(stack)-1]
		stack = stack[:len(stack)-1]

		run, err := r.runSchedule(specs, phases, baseSeq, register, pfx, opts)
		if err != nil {
			return nil, err
		}
		key := strings.Join(run.result.Order, ",")
		if !seen[key] {
			seen[key] = true
			report.Schedules = append(report.Schedules, run.result)
		}
		report.DecisionPoints += run.decisionPoints
		// Branch on alternatives at decision points beyond the prefix.
		for i := len(pfx); i < len(run.decisions); i++ {
			d := run.decisions[i]
			for _, alt := range d.branchable {
				if alt == d.chosen {
					continue
				}
				np := make(prefix, i+1)
				copy(np, run.chosenPrefix[:i])
				np[i] = alt
				stack = append(stack, np)
				report.BranchedPoints++
			}
		}
	}
	return report, nil
}

// loadSpecs fetches request metadata and traced-table footprints.
func (r *Retro) loadSpecs(reqIDs []string) ([]*reqSpec, error) {
	if len(reqIDs) == 0 {
		return nil, fmt.Errorf("retro: no requests given")
	}
	var specs []*reqSpec
	for _, id := range reqIDs {
		req, err := r.prov.RequestByID(id)
		if err != nil {
			return nil, err
		}
		args, err := runtime.ParseArgsJSON(req.ArgsJSON)
		if err != nil {
			return nil, err
		}
		execs, err := r.prov.ExecutionsForRequest(id)
		if err != nil {
			return nil, err
		}
		if len(execs) == 0 {
			return nil, fmt.Errorf("retro: request %q has no recorded transactions", id)
		}
		spec := &reqSpec{
			id:      id,
			handler: req.Handler,
			args:    args,
			origRes: req.Result,
			start:   execs[0].Timestamp,
			end:     execs[len(execs)-1].Timestamp,
			tables:  make(map[string]bool),
			baseSeq: execs[0].Snapshot,
		}
		specs = append(specs, spec)
	}
	// Traced-table footprints via the event tables.
	if err := r.fillFootprints(specs); err != nil {
		return nil, err
	}
	sort.SliceStable(specs, func(i, j int) bool { return specs[i].start < specs[j].start })
	return specs, nil
}

func (r *Retro) fillFootprints(specs []*reqSpec) error {
	byID := make(map[string]*reqSpec, len(specs))
	for _, s := range specs {
		byID[s.id] = s
	}
	for _, appTable := range r.tracedTables() {
		reqs, err := r.prov.RequestsTouchingTable(appTable)
		if err != nil {
			return err
		}
		for _, id := range reqs {
			if s, ok := byID[id]; ok {
				s.tables[strings.ToLower(appTable)] = true
			}
		}
	}
	return nil
}

// tracedTables lists application tables with event tables, via the prod
// catalog intersected with the provenance mapping.
func (r *Retro) tracedTables() []string {
	var out []string
	for _, t := range r.prod.Store().Tables() {
		if r.prov.EventTable(t) != "" {
			out = append(out, t)
		}
	}
	return out
}

// partitionPhases groups requests whose original intervals overlap
// (transitively) into concurrent phases, ordered by start time.
func partitionPhases(specs []*reqSpec) [][]*reqSpec {
	var phases [][]*reqSpec
	var cur []*reqSpec
	var curEnd uint64
	for _, s := range specs {
		if len(cur) == 0 || s.start <= curEnd {
			cur = append(cur, s)
			if s.end > curEnd {
				curEnd = s.end
			}
			continue
		}
		phases = append(phases, cur)
		cur = []*reqSpec{s}
		curEnd = s.end
	}
	if len(cur) > 0 {
		phases = append(phases, cur)
	}
	return phases
}

func conflict(a, b *reqSpec) bool {
	for t := range a.tables {
		if b.tables[t] {
			return true
		}
	}
	return false
}

// --- schedule execution -----------------------------------------------------

type decision struct {
	candidates []int // ready request indexes (sorted)
	branchable []int // candidates worth branching on (after pruning)
	chosen     int
}

type schedEvent struct {
	idx    int
	kind   uint8 // 0 blocked, 1 txn done, 2 finished
	result any
	err    error
}

const (
	evBlocked uint8 = iota
	evTxnDone
	evFinished
)

type runOutcome struct {
	result         ScheduleResult
	decisions      []decision
	chosenPrefix   []int
	decisionPoints int
}

// gate is the per-run transaction interceptor connecting handler goroutines
// to the scheduler.
type gate struct {
	byReq   map[string]int
	events  chan schedEvent
	proceed []chan struct{}
}

// Before implements runtime.TxnInterceptor: report ready, wait for grant.
func (g *gate) Before(c *runtime.Ctx, _ string) error {
	idx, ok := g.byReq[c.ReqID]
	if !ok {
		return nil // validation traffic outside the scheduled set
	}
	g.events <- schedEvent{idx: idx, kind: evBlocked}
	<-g.proceed[idx]
	return nil
}

// After implements runtime.TxnInterceptor: report the txn finished.
func (g *gate) After(c *runtime.Ctx, _ string, _ error) {
	if idx, ok := g.byReq[c.ReqID]; ok {
		g.events <- schedEvent{idx: idx, kind: evTxnDone}
	}
}

// runSchedule executes one interleaving chosen by pfx (choices at the first
// len(pfx) decision points; defaults afterwards).
func (r *Retro) runSchedule(specs []*reqSpec, phases [][]*reqSpec, baseSeq uint64, register func(*runtime.App), pfx []int, opts Options) (*runOutcome, error) {
	dev, err := r.prod.CloneAt(baseSeq)
	if err != nil {
		return nil, err
	}
	app := runtime.New(dev)
	register(app)

	g := &gate{
		byReq:   make(map[string]int, len(specs)),
		events:  make(chan schedEvent, len(specs)*4),
		proceed: make([]chan struct{}, len(specs)),
	}
	idxOf := make(map[*reqSpec]int, len(specs))
	for i, s := range specs {
		g.byReq[s.id] = i
		g.proceed[i] = make(chan struct{})
		idxOf[s] = i
	}
	app.SetTxnInterceptor(g)

	out := &runOutcome{}
	outcomes := make([]RequestOutcome, len(specs))
	done := make([]bool, len(specs))
	blocked := map[int]bool{}

	launch := func(s *reqSpec) {
		idx := idxOf[s]
		go func() {
			res, err := app.InvokeWithReqID(s.id, s.handler, s.args)
			g.events <- schedEvent{idx: idx, kind: evFinished, result: res, err: err}
		}()
	}
	// pump processes scheduler events until cond holds. Events can arrive
	// from any scheduled request (e.g. several requests reaching their
	// first transaction just after a phase launch).
	pump := func(cond func() bool) {
		for !cond() {
			ev := <-g.events
			switch ev.kind {
			case evBlocked:
				blocked[ev.idx] = true
			case evFinished:
				done[ev.idx] = true
				outcomes[ev.idx] = RequestOutcome{
					ReqID:      specs[ev.idx].id,
					Result:     ev.result,
					Err:        ev.err,
					ResultJSON: runtime.ResultJSON(ev.result),
				}
				if specs[ev.idx].origRes != "<unrepresentable>" {
					outcomes[ev.idx].ChangedFromOriginal = outcomes[ev.idx].ResultJSON != specs[ev.idx].origRes
				}
			case evTxnDone:
				// transaction completed; the request will report its next
				// boundary or completion shortly
			}
		}
	}

	decisionIdx := 0
	for _, phase := range phases {
		// Launch the phase and wait for every member to reach its first
		// transaction boundary (or finish without touching the database).
		for _, s := range phase {
			launch(s)
		}
		phaseIdxs := make([]int, len(phase))
		for i, s := range phase {
			phaseIdxs[i] = idxOf[s]
		}
		pump(func() bool {
			for _, idx := range phaseIdxs {
				if !blocked[idx] && !done[idx] {
					return false
				}
			}
			return true
		})
		// Grant transactions until the phase drains.
		for {
			var candidates []int
			for idx := range blocked {
				candidates = append(candidates, idx)
			}
			if len(candidates) == 0 {
				break
			}
			sort.Ints(candidates)

			// Conflict pruning: branch only on candidates that conflict
			// with another unfinished scheduled request.
			var branchable []int
			if opts.DisableConflictPruning {
				branchable = candidates
			} else {
				for _, c := range candidates {
					for u := range specs {
						if u != c && !done[u] && conflict(specs[c], specs[u]) {
							branchable = append(branchable, c)
							break
						}
					}
				}
			}

			chosen := candidates[0]
			if len(candidates) > 1 {
				out.decisionPoints++
				if decisionIdx < len(pfx) {
					want := pfx[decisionIdx]
					for _, c := range candidates {
						if c == want {
							chosen = c
						}
					}
				} else if len(branchable) > 0 {
					chosen = branchable[0]
				}
				if len(branchable) > 1 {
					out.decisions = append(out.decisions, decision{candidates: candidates, branchable: branchable, chosen: chosen})
					out.chosenPrefix = append(out.chosenPrefix, chosen)
					decisionIdx++
				}
			}

			delete(blocked, chosen)
			out.result.Order = append(out.result.Order, specs[chosen].id)
			g.proceed[chosen] <- struct{}{}
			pump(func() bool { return blocked[chosen] || done[chosen] })
		}
	}

	out.result.Requests = outcomes
	if opts.Invariant != nil {
		out.result.InvariantErr = opts.Invariant(dev)
	}
	return out, nil
}
