package crashtest

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/db"
	"repro/internal/wal"
)

// sweepOps is a deterministic mixed DML+DDL workload. Each op is exactly one
// WAL record (one autocommit statement), so the byte offset where an op's
// record ends is also the durability watermark at which that op was
// acknowledged under SyncEachCommit.
func sweepOps() []struct {
	sql  string
	args []any
} {
	type op = struct {
		sql  string
		args []any
	}
	ops := []op{
		{sql: `CREATE TABLE users (id INTEGER PRIMARY KEY, name TEXT, age INTEGER)`},
	}
	for i := 1; i <= 6; i++ {
		ops = append(ops, op{sql: `INSERT INTO users VALUES (?, ?, ?)`, args: []any{i, fmt.Sprintf("u%d", i), 20 + i}})
	}
	ops = append(ops, op{sql: `CREATE INDEX users_name ON users (name)`})
	ops = append(ops,
		op{sql: `UPDATE users SET age = 99 WHERE id = 2`},
		op{sql: `UPDATE users SET name = 'renamed' WHERE id = 4`},
		op{sql: `CREATE TABLE items (id INTEGER PRIMARY KEY, owner INTEGER, label TEXT)`},
	)
	for i := 1; i <= 4; i++ {
		ops = append(ops, op{sql: `INSERT INTO items VALUES (?, ?, ?)`, args: []any{i, i % 3, fmt.Sprintf("item-%d", i)}})
	}
	ops = append(ops,
		op{sql: `CREATE UNIQUE INDEX items_label ON items (label)`},
		op{sql: `DELETE FROM users WHERE id = 5`},
		op{sql: `UPDATE items SET label = 'swapped' WHERE id = 3`},
		op{sql: `DELETE FROM items WHERE id = 1`},
		op{sql: `INSERT INTO users VALUES (7, 'late', 40)`},
		op{sql: `DROP TABLE items`},
		op{sql: `INSERT INTO users VALUES (8, 'post-drop', 41)`},
		op{sql: `UPDATE users SET age = 1 WHERE id = 1`},
	)
	return ops
}

// runSweepWorkload applies the ops to a SyncEachCommit disk database at
// walPath and returns the WAL size at which each op was acknowledged
// (ackSize[0] == 0 is the pre-workload state).
func runSweepWorkload(t *testing.T, walPath string) []int64 {
	t.Helper()
	d, err := db.Open(db.Options{Mode: db.Disk, Path: walPath, Sync: wal.SyncEachCommit})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ack := []int64{0}
	for _, op := range sweepOps() {
		if _, err := d.Exec(op.sql, op.args...); err != nil {
			t.Fatalf("op %q: %v", op.sql, err)
		}
		fi, err := os.Stat(walPath)
		if err != nil {
			t.Fatal(err)
		}
		ack = append(ack, fi.Size())
	}
	return ack
}

// oracle replays the first k ops into a fresh in-memory database on demand,
// advancing incrementally as the sweep's cut offset grows.
type oracle struct {
	t   *testing.T
	db  *db.DB
	ops []struct {
		sql  string
		args []any
	}
	applied int
}

func newOracle(t *testing.T) *oracle {
	return &oracle{t: t, db: db.MustOpenMemory(), ops: sweepOps()}
}

func (o *oracle) advanceTo(k int) {
	for o.applied < k {
		op := o.ops[o.applied]
		if _, err := o.db.Exec(op.sql, op.args...); err != nil {
			o.t.Fatalf("oracle op %q: %v", op.sql, err)
		}
		o.applied++
	}
}

// TestCrashPointSweepTruncate cuts the workload's WAL at every byte offset
// and asserts that recovery yields exactly the acknowledged-op prefix: every
// op whose record is fully below the cut is present, nothing else is, and no
// torn state survives. This is the swept form of the durability contract —
// an op acknowledged under SyncEachCommit has its record (and all earlier
// ones) on disk, so no legal crash point can lose it.
func TestCrashPointSweepTruncate(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "sweep.wal")
	ack := runSweepWorkload(t, walPath)
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if got := int64(len(full)); got != ack[len(ack)-1] {
		t.Fatalf("WAL size %d != last ack watermark %d", got, ack[len(ack)-1])
	}

	cutDir := filepath.Join(dir, "cut")
	if err := os.Mkdir(cutDir, 0o755); err != nil {
		t.Fatal(err)
	}
	cutPath := filepath.Join(cutDir, "sweep.wal")
	orc := newOracle(t)
	defer orc.db.Close()
	k := 0
	for cut := int64(0); cut <= int64(len(full)); cut++ {
		for k+1 < len(ack) && ack[k+1] <= cut {
			k++
		}
		orc.advanceTo(k)
		if err := os.WriteFile(cutPath, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rec, err := db.Open(db.Options{Mode: db.Disk, Path: cutPath, Sync: wal.SyncNever})
		if err != nil {
			t.Fatalf("cut %d: recovery failed: %v", cut, err)
		}
		if diff := StoreDiff(rec.Store(), orc.db.Store()); diff != "" {
			t.Fatalf("cut %d (acked ops %d): recovered state diverges: %s", cut, k, diff)
		}
		rec.Close()
	}
}

// TestCrashPointSweepCorrupt flips every byte of the WAL in turn and asserts
// recovery degrades to exactly the prefix of ops before the damaged record:
// the CRC catches the corruption, replay stops there, and the recovered
// state matches the oracle at that prefix — no error, no torn state.
func TestCrashPointSweepCorrupt(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "sweep.wal")
	ack := runSweepWorkload(t, walPath)
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}

	corruptDir := filepath.Join(dir, "corrupt")
	if err := os.Mkdir(corruptDir, 0o755); err != nil {
		t.Fatal(err)
	}
	corruptPath := filepath.Join(corruptDir, "sweep.wal")
	orc := newOracle(t)
	defer orc.db.Close()
	buf := make([]byte, len(full))
	k := 0
	for i := 0; i < len(full); i++ {
		// The record containing byte i is the one after the last ack
		// watermark at or below i; ops up to that watermark must survive.
		for k+1 < len(ack) && ack[k+1] <= int64(i) {
			k++
		}
		orc.advanceTo(k)
		copy(buf, full)
		buf[i] ^= 0xFF
		if err := os.WriteFile(corruptPath, buf, 0o644); err != nil {
			t.Fatal(err)
		}
		rec, err := db.Open(db.Options{Mode: db.Disk, Path: corruptPath, Sync: wal.SyncNever})
		if err != nil {
			t.Fatalf("flip %d: recovery failed: %v", i, err)
		}
		if diff := StoreDiff(rec.Store(), orc.db.Store()); diff != "" {
			t.Fatalf("flip %d (intact ops %d): recovered state diverges: %s", i, k, diff)
		}
		rec.Close()
	}
}
