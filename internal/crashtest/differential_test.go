package crashtest

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/db"
	"repro/internal/runtime"
	"repro/internal/wal"
	"repro/internal/workload"
)

// copyFile copies src to dst (same base name in another directory simulates
// a post-crash restart on the same files).
func copyFile(t *testing.T, src, dst string) {
	t.Helper()
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestDifferentialRecoveryRandomWorkloads runs random microservice workloads
// (the internal/workload generators) against a disk-backed database and an
// in-memory oracle in lockstep, checkpoints mid-workload, crashes the disk
// database (its WAL and snapshot are copied byte-for-byte to a fresh
// directory and recovered there), and asserts the recovered store's full
// table and index contents equal the oracle's committed state. The
// mid-workload checkpoint means recovery exercises the snapshot-plus-tail
// path, which the RecoveryInfo assertions pin.
func TestDifferentialRecoveryRandomWorkloads(t *testing.T) {
	const users = 12
	const requests = 160
	for _, seed := range []int64{1, 7, 42} {
		dir := t.TempDir()
		walPath := filepath.Join(dir, "prod.wal")
		disk, err := db.Open(db.Options{Mode: db.Disk, Path: walPath, Sync: wal.SyncNever})
		if err != nil {
			t.Fatal(err)
		}
		mem := db.MustOpenMemory()

		if err := workload.SetupMicroservice(disk, users, seed); err != nil {
			t.Fatal(err)
		}
		if err := workload.SetupMicroservice(mem, users, seed); err != nil {
			t.Fatal(err)
		}
		diskApp, memApp := runtime.New(disk), runtime.New(mem)
		workload.RegisterMicroservice(diskApp)
		workload.RegisterMicroservice(memApp)

		handlers, args := workload.RequestMix(requests, users, seed+100)
		for i := range handlers {
			if i == requests/2 {
				if err := disk.Checkpoint(); err != nil {
					t.Fatalf("seed %d: checkpoint: %v", seed, err)
				}
			}
			if _, err := diskApp.Invoke(handlers[i], args[i]); err != nil {
				t.Fatalf("seed %d req %d (%s) on disk: %v", seed, i, handlers[i], err)
			}
			if _, err := memApp.Invoke(handlers[i], args[i]); err != nil {
				t.Fatalf("seed %d req %d (%s) on oracle: %v", seed, i, handlers[i], err)
			}
		}

		// Sanity: before the crash the two databases already agree.
		if diff := StoreDiff(disk.Store(), mem.Store()); diff != "" {
			t.Fatalf("seed %d: pre-crash divergence (not a recovery bug): %s", seed, diff)
		}

		// Crash: flush the page-cache layer, then copy the on-disk artifacts
		// to a fresh directory without closing the database.
		if err := disk.Flush(); err != nil {
			t.Fatal(err)
		}
		crashDir := filepath.Join(dir, "after-crash")
		if err := os.Mkdir(crashDir, 0o755); err != nil {
			t.Fatal(err)
		}
		copyFile(t, walPath, filepath.Join(crashDir, "prod.wal"))
		snaps, err := filepath.Glob(walPath + ".snap.*")
		if err != nil || len(snaps) == 0 {
			t.Fatalf("no snapshot files after checkpoint: %v, %v", snaps, err)
		}
		for _, snap := range snaps {
			copyFile(t, snap, filepath.Join(crashDir, filepath.Base(snap)))
		}

		rec, err := db.Open(db.Options{Mode: db.Disk, Path: filepath.Join(crashDir, "prod.wal"), Sync: wal.SyncNever})
		if err != nil {
			t.Fatalf("seed %d: recovery: %v", seed, err)
		}
		info := rec.Recovery()
		if !info.SnapshotLoaded {
			t.Fatalf("seed %d: recovery ignored the checkpoint snapshot: %+v", seed, info)
		}
		if info.TailRecords >= info.TotalRecords || info.TailRecords == 0 {
			t.Errorf("seed %d: tail/total = %d/%d, want a proper non-empty tail", seed, info.TailRecords, info.TotalRecords)
		}
		if diff := StoreDiff(rec.Store(), mem.Store()); diff != "" {
			t.Fatalf("seed %d: recovered state diverges from oracle: %s", seed, diff)
		}
		rec.Close()
		disk.Close()
		mem.Close()
	}
}
