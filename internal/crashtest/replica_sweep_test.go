package crashtest

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/db"
	"repro/internal/storage"
	"repro/internal/wal"
)

// replEntry is one primary log-stream entry in serialization order: a DDL
// statement or a commit record, tagged with its stream position.
type replEntry struct {
	seq uint64
	ddl string
	rec storage.CommitRecord
}

// captureStream runs the sweep workload on a fresh primary and returns its
// replication stream — the exact entries a Subscribe session would ship —
// plus the primary itself for final-state comparison. The DDL and CDC hooks
// both fire under the store's commit lock, so the combined slice is in exact
// serialization order.
func captureStream(t *testing.T) (*db.DB, []replEntry) {
	t.Helper()
	p := db.MustOpenMemory()
	var mu sync.Mutex
	var entries []replEntry
	p.SubscribeDDL(func(seq uint64, stmt string) {
		mu.Lock()
		entries = append(entries, replEntry{seq: seq, ddl: stmt})
		mu.Unlock()
	})
	p.Store().SubscribeCDC(func(rec storage.CommitRecord) {
		mu.Lock()
		entries = append(entries, replEntry{seq: rec.Seq, rec: rec})
		mu.Unlock()
	})
	for _, op := range sweepOps() {
		if _, err := p.Exec(op.sql, op.args...); err != nil {
			t.Fatalf("primary op %q: %v", op.sql, err)
		}
	}
	return p, entries
}

// apply feeds one stream entry to a replica database through the replicated
// apply path — the same calls a live Subscribe session makes.
func (e replEntry) apply(t *testing.T, d *db.DB) {
	t.Helper()
	if e.ddl != "" {
		if err := d.ApplyReplicatedDDL(e.ddl); err != nil {
			t.Fatalf("replicated DDL %q: %v", e.ddl, err)
		}
		return
	}
	if err := d.ApplyReplicatedCommit(e.rec); err != nil {
		t.Fatalf("replicated commit %d: %v", e.rec.Seq, err)
	}
}

// TestReplicaWALCrashSweep kills a replica at every byte offset of its own
// WAL and asserts both halves of the replica durability contract: (1)
// recovery yields exactly the prefix of stream entries whose records were
// durable below the cut — no torn state; (2) resuming the stream from the
// recovered sequence (commits past it plus the DDL suffix at or after it,
// exactly the selection the source ships for that resume point) converges
// the replica to the primary's final state, StoreDiff-clean. A replica
// crash is therefore never more than a reconnect.
func TestReplicaWALCrashSweep(t *testing.T) {
	prim, entries := captureStream(t)
	defer prim.Close()
	if len(entries) == 0 {
		t.Fatal("captured no stream entries")
	}

	// Build the replica WAL entry by entry, recording the durable file size
	// after each apply (SyncEachCommit: the record is on disk when the apply
	// returns). ack[i] is the WAL size once entries[:i] are applied.
	dir := t.TempDir()
	walPath := filepath.Join(dir, "replica.wal")
	r, err := db.Open(db.Options{Mode: db.Disk, Path: walPath, Sync: wal.SyncEachCommit})
	if err != nil {
		t.Fatal(err)
	}
	r.SetReadOnly(true)
	walSize := func() int64 {
		fi, err := os.Stat(walPath)
		if err != nil {
			t.Fatal(err)
		}
		return fi.Size()
	}
	ack := []int64{walSize()}
	for _, e := range entries {
		e.apply(t, r)
		ack = append(ack, walSize())
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if got := int64(len(full)); got != ack[len(ack)-1] {
		t.Fatalf("WAL size %d != last durable watermark %d", got, ack[len(ack)-1])
	}

	// Incremental oracle: a memory replica fed the same stream prefix.
	orc := db.MustOpenMemory()
	defer orc.Close()
	applied := 0

	cutDir := filepath.Join(dir, "cut")
	if err := os.Mkdir(cutDir, 0o755); err != nil {
		t.Fatal(err)
	}
	cutPath := filepath.Join(cutDir, "replica.wal")
	k := 0
	for cut := ack[0]; cut <= int64(len(full)); cut++ {
		for k+1 < len(ack) && ack[k+1] <= cut {
			k++
		}
		for applied < k {
			entries[applied].apply(t, orc)
			applied++
		}
		if err := os.WriteFile(cutPath, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rec, err := db.Open(db.Options{Mode: db.Disk, Path: cutPath, Sync: wal.SyncNever})
		if err != nil {
			t.Fatalf("cut %d: replica recovery failed: %v", cut, err)
		}
		if diff := StoreDiff(rec.Store(), orc.Store()); diff != "" {
			rec.Close()
			t.Fatalf("cut %d (durable entries %d): recovered replica diverges: %s", cut, k, diff)
		}
		pos := rec.Store().CurrentSeq()
		if want := orc.Store().CurrentSeq(); pos != want {
			rec.Close()
			t.Fatalf("cut %d: recovered seq %d, want %d — replica would resume at the wrong position", cut, pos, want)
		}
		// Resume: replay the suffix the source would ship for FromSeq=pos —
		// commits strictly past pos, DDL positioned at or after it (DDL at
		// exactly pos may already be applied; re-application is idempotent).
		for _, e := range entries {
			if e.ddl != "" {
				if e.seq >= pos {
					e.apply(t, rec)
				}
			} else if e.seq > pos {
				e.apply(t, rec)
			}
		}
		if diff := StoreDiff(rec.Store(), prim.Store()); diff != "" {
			rec.Close()
			t.Fatalf("cut %d: replica failed to converge after resume: %s", cut, diff)
		}
		rec.Close()
	}
}
