// Package crashtest provides deterministic crash injection for the
// durability stack: a file wrapper that cuts a write at an arbitrary byte
// offset and models fsync-aware data loss, plus helpers to compare two
// stores' full committed state. Tests use it to simulate a crash at every
// offset of a workload's WAL and assert that recovery reproduces exactly the
// acknowledged-commit prefix.
package crashtest

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"

	"repro/internal/storage"
	"repro/internal/value"
)

// ErrInjected is returned by every operation at and after the injected
// crash point.
var ErrInjected = errors.New("crashtest: injected crash")

// File wraps an on-disk file and injects a crash at a fixed byte offset:
// the write that reaches the offset is cut short (a torn write) and every
// later operation fails. Sync tracks the durable watermark, so a test can
// materialise the post-crash image two ways: the pessimistic one (only
// fsynced bytes survive — what a power failure guarantees) or the
// optimistic one (the OS page cache happened to keep the unsynced tail).
//
// File satisfies wal.File, so a wal.Log can run directly over it.
type File struct {
	mu      sync.Mutex
	f       *os.File
	cut     int64 // byte offset at which writing fails; <0 = never
	written int64
	synced  int64
	crashed bool
}

// Create opens (truncating) the file at path with a crash injected at byte
// offset cutAt; cutAt < 0 disables the fault.
func Create(path string, cutAt int64) (*File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	return &File{f: f, cut: cutAt}, nil
}

// Write appends p, cutting it short at the injected offset. A cut write
// persists its prefix (a torn write) and returns ErrInjected.
func (c *File) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return 0, ErrInjected
	}
	room := len(p)
	if c.cut >= 0 && c.written+int64(len(p)) > c.cut {
		room = int(c.cut - c.written)
		c.crashed = true
	}
	n, err := c.f.Write(p[:room])
	c.written += int64(n)
	if err != nil {
		return n, err
	}
	if c.crashed {
		return n, ErrInjected
	}
	return n, nil
}

// Sync records the durable watermark. After the crash point the fsync never
// completes.
func (c *File) Sync() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return ErrInjected
	}
	if err := c.f.Sync(); err != nil {
		return err
	}
	c.synced = c.written
	return nil
}

// Close closes the underlying file (allowed even after the crash, so tests
// can clean up).
func (c *File) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.f.Close()
}

// Written returns the bytes accepted before the cut.
func (c *File) Written() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.written
}

// Durable returns the fsynced watermark: bytes guaranteed to survive.
func (c *File) Durable() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.synced
}

// Crashed reports whether the injected fault has fired.
func (c *File) Crashed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.crashed
}

// CrashImage returns the file bytes a post-crash recovery would find. With
// keepUnsynced false only the fsynced prefix survives (the power-failure
// guarantee); with true the OS retained everything written, including the
// torn tail.
func (c *File) CrashImage(keepUnsynced bool) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.synced
	if keepUnsynced {
		n = c.written
	}
	buf := make([]byte, n)
	if _, err := c.f.ReadAt(buf, 0); err != nil && n > 0 {
		return nil, fmt.Errorf("crashtest: reading crash image: %w", err)
	}
	return buf, nil
}

// StoreDiff compares the full committed state of two stores — catalog,
// rows, and secondary-index contents at each store's current sequence — and
// returns a human-readable description of the first difference, or "" when
// they match. The differential recovery tests use it to check a recovered
// store against an in-memory oracle.
func StoreDiff(got, want *storage.Store) string {
	gt, wt := got.Tables(), want.Tables()
	if !equalStrings(lower(gt), lower(wt)) {
		return fmt.Sprintf("tables differ: got %v, want %v", gt, wt)
	}
	for _, tbl := range wt {
		gs, ws := got.Table(tbl), want.Table(tbl)
		if gs == nil {
			return fmt.Sprintf("table %q missing", tbl)
		}
		if !equalStrings(gs.ColumnNames(), ws.ColumnNames()) {
			return fmt.Sprintf("table %q columns differ: got %v, want %v", tbl, gs.ColumnNames(), ws.ColumnNames())
		}
		if d := diffRows(got, want, tbl); d != "" {
			return d
		}
		if d := diffIndexes(got, want, tbl); d != "" {
			return d
		}
	}
	return ""
}

func diffRows(got, want *storage.Store, tbl string) string {
	g := dumpRows(got, tbl)
	w := dumpRows(want, tbl)
	if len(g) != len(w) {
		return fmt.Sprintf("table %q row count: got %d, want %d", tbl, len(g), len(w))
	}
	for i := range w {
		if g[i].key != w[i].key {
			return fmt.Sprintf("table %q row %d key: got %x, want %x", tbl, i, g[i].key, w[i].key)
		}
		if !g[i].row.Equal(w[i].row) {
			return fmt.Sprintf("table %q key %x: got %v, want %v", tbl, g[i].key, g[i].row, w[i].row)
		}
	}
	return ""
}

func diffIndexes(got, want *storage.Store, tbl string) string {
	gix, wix := indexNames(got, tbl), indexNames(want, tbl)
	if !equalStrings(gix, wix) {
		return fmt.Sprintf("table %q indexes differ: got %v, want %v", tbl, gix, wix)
	}
	for _, ix := range wix {
		g, gerr := dumpIndex(got, tbl, ix)
		w, werr := dumpIndex(want, tbl, ix)
		if gerr != nil || werr != nil {
			return fmt.Sprintf("index %q on %q: scan errors %v / %v", ix, tbl, gerr, werr)
		}
		if len(g) != len(w) {
			return fmt.Sprintf("index %q on %q posting count: got %d, want %d", ix, tbl, len(g), len(w))
		}
		for i := range w {
			if g[i] != w[i] {
				return fmt.Sprintf("index %q on %q posting %d: got %x, want %x", ix, tbl, i, g[i], w[i])
			}
		}
	}
	return ""
}

type keyedRow struct {
	key string
	row value.Row
}

func dumpRows(s *storage.Store, tbl string) []keyedRow {
	var out []keyedRow
	s.ScanRange(tbl, "", "", s.CurrentSeq(), func(k string, row value.Row) bool {
		out = append(out, keyedRow{key: k, row: row})
		return true
	})
	return out
}

func dumpIndex(s *storage.Store, tbl, ix string) ([]string, error) {
	var out []string
	err := s.IndexScanRange(tbl, ix, "", "", s.CurrentSeq(), func(k, pk string) bool {
		out = append(out, k+"\x00"+pk)
		return true
	})
	return out, err
}

func indexNames(s *storage.Store, tbl string) []string {
	defs := s.Indexes(tbl)
	out := make([]string, len(defs))
	for i, ix := range defs {
		out[i] = strings.ToLower(ix.Name)
	}
	sort.Strings(out)
	return out
}

func lower(in []string) []string {
	out := make([]string, len(in))
	for i, s := range in {
		out[i] = strings.ToLower(s)
	}
	sort.Strings(out)
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
