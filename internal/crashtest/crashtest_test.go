package crashtest

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/value"
	"repro/internal/wal"
)

func mustTable(t *testing.T, name string) *schema.Table {
	t.Helper()
	tbl, err := schema.NewTable(name, []schema.Column{
		{Name: "k", Type: value.KindText},
		{Name: "v", Type: value.KindInt},
	}, []string{"k"})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestFileCutsWriteAtOffset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	f, err := Create(path, 10)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	n, err := f.Write(make([]byte, 6))
	if n != 6 || err != nil {
		t.Fatalf("first write = %d, %v", n, err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	n, err = f.Write(make([]byte, 6))
	if n != 4 || !errors.Is(err, ErrInjected) {
		t.Fatalf("cut write = %d, %v (want 4, ErrInjected)", n, err)
	}
	if !f.Crashed() {
		t.Error("fault did not fire")
	}
	if _, err := f.Write([]byte{1}); !errors.Is(err, ErrInjected) {
		t.Errorf("post-crash write = %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Errorf("post-crash sync = %v", err)
	}
	if f.Written() != 10 || f.Durable() != 6 {
		t.Errorf("written=%d durable=%d", f.Written(), f.Durable())
	}
	img, err := f.CrashImage(false)
	if err != nil || len(img) != 6 {
		t.Errorf("pessimistic image = %d bytes, %v", len(img), err)
	}
	img, err = f.CrashImage(true)
	if err != nil || len(img) != 10 {
		t.Errorf("optimistic image = %d bytes, %v", len(img), err)
	}
}

func testCommit(seq uint64) storage.CommitRecord {
	return storage.CommitRecord{
		Seq:   seq,
		TxnID: seq,
		Changes: []storage.Change{{
			Table: "t",
			Key:   string(rune('a' + seq)),
			Op:    storage.OpInsert,
			After: value.Row{value.Int(int64(seq)), value.Text("payload")},
		}},
	}
}

// TestWALCrashAtEveryOffset drives the WAL through the fault-injecting file
// with the crash placed at every byte offset of the log, and asserts the
// durability contract under SyncEachCommit: recovery from the pessimistic
// crash image (unsynced data dropped) yields exactly the acknowledged
// commits, and recovery from the optimistic image (torn tail retained)
// yields a prefix that includes every acknowledged commit.
func TestWALCrashAtEveryOffset(t *testing.T) {
	dir := t.TempDir()
	const commits = 6

	// Baseline run to learn the log's total size.
	base, err := Create(filepath.Join(dir, "base.wal"), -1)
	if err != nil {
		t.Fatal(err)
	}
	l := wal.NewLog(base, wal.SyncEachCommit)
	for seq := uint64(1); seq <= commits; seq++ {
		if err := l.AppendCommit(testCommit(seq)); err != nil {
			t.Fatal(err)
		}
	}
	total := base.Written()
	l.Close()

	for cut := int64(0); cut <= total; cut++ {
		f, err := Create(filepath.Join(dir, "cut.wal"), cut)
		if err != nil {
			t.Fatal(err)
		}
		l := wal.NewLog(f, wal.SyncEachCommit)
		var acked []uint64
		for seq := uint64(1); seq <= commits; seq++ {
			if err := l.AppendCommit(testCommit(seq)); err != nil {
				break // crashed: this and later commits are unacknowledged
			}
			acked = append(acked, seq)
		}
		for _, keepUnsynced := range []bool{false, true} {
			img, err := f.CrashImage(keepUnsynced)
			if err != nil {
				t.Fatal(err)
			}
			imgPath := filepath.Join(dir, "img.wal")
			if err := os.WriteFile(imgPath, img, 0o644); err != nil {
				t.Fatal(err)
			}
			var recovered []uint64
			if err := wal.Replay(imgPath, func(r wal.Record) error {
				recovered = append(recovered, r.Commit.Seq)
				return nil
			}); err != nil {
				t.Fatalf("cut %d keepUnsynced=%v: replay: %v", cut, keepUnsynced, err)
			}
			// Always a dense prefix 1..k.
			for i, seq := range recovered {
				if seq != uint64(i+1) {
					t.Fatalf("cut %d keepUnsynced=%v: recovered %v is not a prefix", cut, keepUnsynced, recovered)
				}
			}
			if !keepUnsynced && len(recovered) != len(acked) {
				t.Fatalf("cut %d: pessimistic recovery has %d commits, acked %d", cut, len(recovered), len(acked))
			}
			if keepUnsynced && len(recovered) < len(acked) {
				t.Fatalf("cut %d: optimistic recovery lost acknowledged commits (%d < %d)", cut, len(recovered), len(acked))
			}
		}
		f.Close()
	}
}

// TestWALStickyFailure: after the injected crash fires mid-append, the log
// refuses all further work with the same error instead of silently writing
// records at unpredictable offsets.
func TestWALStickyFailure(t *testing.T) {
	f, err := Create(filepath.Join(t.TempDir(), "w.wal"), 20)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	l := wal.NewLog(f, wal.SyncEachCommit)
	if err := l.AppendCommit(testCommit(1)); err == nil {
		// First record is larger than 20 bytes, so the append (or its sync)
		// must observe the cut.
		t.Fatal("append across the cut should fail")
	}
	if err := l.AppendCommit(testCommit(2)); !errors.Is(err, ErrInjected) {
		t.Errorf("append after crash = %v, want sticky ErrInjected", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrInjected) {
		t.Errorf("sync after crash = %v, want sticky ErrInjected", err)
	}
}

func TestStoreDiff(t *testing.T) {
	mk := func() *storage.Store {
		s := storage.NewStore()
		tbl := mustTable(t, "kv")
		if err := s.CreateTable(tbl, false); err != nil {
			t.Fatal(err)
		}
		row := value.Row{value.Text("a"), value.Int(1)}
		if _, err := s.Commit(storage.CommitRequest{Changes: []storage.Change{{
			Table: "kv", Key: tbl.EncodePrimaryKey(row), Op: storage.OpInsert, After: row,
		}}}); err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := mk(), mk()
	if d := StoreDiff(a, b); d != "" {
		t.Errorf("identical stores diff: %s", d)
	}
	tbl := mustTable(t, "kv")
	row := value.Row{value.Text("b"), value.Int(2)}
	if _, err := b.Commit(storage.CommitRequest{Changes: []storage.Change{{
		Table: "kv", Key: tbl.EncodePrimaryKey(row), Op: storage.OpInsert, After: row,
	}}}); err != nil {
		t.Fatal(err)
	}
	if d := StoreDiff(a, b); d == "" {
		t.Error("diverged stores reported equal")
	}
}
