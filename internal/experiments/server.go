package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/db"
	"repro/internal/protocol"
	"repro/internal/server"
	"repro/internal/wal"
)

// ServerLoadResult is the outcome of the multi-client server-load
// experiment: N concurrent clients over loopback against a disk-mode
// database with per-commit fsync, running a mixed point-read / range-scan /
// read-modify-write workload through the network front end.
type ServerLoadResult struct {
	Clients      int
	OpsPerClient int
	Ops          int // operations that completed (excludes conflicted commits)
	Conflicts    int // typed OCC aborts surfaced to clients (retried)
	DurationMs   float64
	Throughput   float64 // completed ops per second
	P50Us        float64 // per-operation latency percentiles
	P99Us        float64
	Commits      uint64 // write commits acknowledged during the load phase
	WALSyncs     uint64 // fsyncs issued during the load phase (group commit)
	FsyncDelayUs int    // modelled fsync latency (see RunServerLoad)
}

// GroupCommitEffective reports whether concurrent committers shared fsyncs
// (the PR 3 group-commit machinery finally fed by a concurrent workload).
func (r *ServerLoadResult) GroupCommitEffective() bool {
	return r.Commits > 0 && r.WALSyncs < r.Commits
}

const serverLoadRows = 1024

// serverLoadFsyncDelay models a real disk's fsync latency (~a fast SSD).
// Benchmark hosts typically run /tmp on tmpfs where fsync is near-free, so
// the group-commit leader's window would close before any follower arrives
// and the fsyncs-vs-commits comparison would measure the filesystem, not
// the batching. The modelled latency (reported in the result) makes the
// group-commit behaviour observable and comparable across hosts — the same
// approach the group-commit concurrency tests use.
const serverLoadFsyncDelay = 200 * time.Microsecond

// RunServerLoad boots a trod server on a loopback port over a disk-backed,
// fsync-per-commit database seeded with an accounts table, then drives it
// with `clients` concurrent client connections, each performing
// `opsPerClient` operations: 50% indexed point reads, 25% secondary-index
// range scans with LIMIT, 25% interactive read-modify-write transactions
// (Begin, SELECT, UPDATE, Commit). Conflicted commits count separately and
// are retried. The server is then drained gracefully. Reported latency is
// per completed operation (transactions included), merged across clients.
func RunServerLoad(clients, opsPerClient int) (*ServerLoadResult, error) {
	if clients <= 0 || opsPerClient <= 0 {
		return nil, fmt.Errorf("experiments: server load needs positive clients/ops, got %d/%d", clients, opsPerClient)
	}
	dir, err := os.MkdirTemp("", "trod-server-load")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	d, err := db.Open(db.Options{Mode: db.Disk, Path: filepath.Join(dir, "load.wal"), Sync: wal.SyncEachCommit})
	if err != nil {
		return nil, err
	}
	defer d.Close()
	if err := d.ExecScript(`
		CREATE TABLE accounts (id INTEGER PRIMARY KEY, owner TEXT, balance INTEGER);
		CREATE INDEX accounts_owner ON accounts (owner);`); err != nil {
		return nil, err
	}
	d.Log().SetSyncDelay(serverLoadFsyncDelay)
	for base := 0; base < serverLoadRows; base += 128 {
		tx := d.Begin()
		for i := base; i < base+128 && i < serverLoadRows; i++ {
			if _, err := tx.Exec(`INSERT INTO accounts VALUES (?, ?, ?)`,
				i, fmt.Sprintf("U%d", i%64), 1000); err != nil {
				tx.Rollback()
				return nil, err
			}
		}
		if err := tx.Commit(); err != nil {
			return nil, err
		}
	}

	srv, err := server.New(server.Config{DB: d, MaxConns: clients + 4, TxnTimeout: 30 * time.Second})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	addr := ln.Addr().String()

	baseSyncs := d.WALStats().Syncs
	baseCommits := srv.Stats().Commits

	type workerOut struct {
		lats      []float64 // microseconds per completed op
		conflicts int
		err       error
	}
	outs := make([]workerOut, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out := &outs[w]
			cl, err := client.Dial(addr, client.Options{PoolSize: 2})
			if err != nil {
				out.err = err
				return
			}
			defer cl.Close()
			rng := rand.New(rand.NewSource(int64(w)*7919 + 17))
			out.lats = make([]float64, 0, opsPerClient)
			for done := 0; done < opsPerClient; {
				id := rng.Intn(serverLoadRows)
				t0 := time.Now()
				var opErr error
				switch p := rng.Float64(); {
				case p < 0.50: // indexed point read
					_, opErr = cl.Query(`SELECT balance FROM accounts WHERE id = ?`, id)
				case p < 0.75: // secondary-index range scan, LIMIT pushdown
					_, opErr = cl.Query(`SELECT id, balance FROM accounts WHERE owner = ? LIMIT 10`,
						fmt.Sprintf("U%d", rng.Intn(64)))
				default: // interactive read-modify-write transaction
					tx, err := cl.Begin()
					if err != nil {
						opErr = err
						break
					}
					res, err := tx.Query(`SELECT balance FROM accounts WHERE id = ?`, id)
					if err == nil && len(res.Rows) == 1 {
						bal := res.Rows[0][0].AsInt()
						_, err = tx.Exec(`UPDATE accounts SET balance = ? WHERE id = ?`, bal+1, id)
					}
					if err != nil {
						tx.Rollback()
						opErr = err
						break
					}
					if _, err := tx.Commit(); err != nil {
						if protocol.IsConflict(err) {
							out.conflicts++ // typed OCC abort: retry the op
							continue
						}
						opErr = err
					}
				}
				if opErr != nil {
					out.err = opErr
					return
				}
				out.lats = append(out.lats, float64(time.Since(t0).Nanoseconds())/1e3)
				done++
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	loadSyncs := d.WALStats().Syncs - baseSyncs
	loadCommits := srv.Stats().Commits - baseCommits

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return nil, fmt.Errorf("experiments: server shutdown: %w", err)
	}
	if err := <-serveDone; err != nil {
		return nil, fmt.Errorf("experiments: serve: %w", err)
	}

	var lats []float64
	conflicts := 0
	for i := range outs {
		if outs[i].err != nil {
			return nil, fmt.Errorf("experiments: client %d: %w", i, outs[i].err)
		}
		lats = append(lats, outs[i].lats...)
		conflicts += outs[i].conflicts
	}
	sort.Float64s(lats)
	pct := func(p float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		i := int(p * float64(len(lats)-1))
		return lats[i]
	}
	return &ServerLoadResult{
		Clients:      clients,
		OpsPerClient: opsPerClient,
		Ops:          len(lats),
		Conflicts:    conflicts,
		DurationMs:   float64(elapsed.Nanoseconds()) / 1e6,
		Throughput:   float64(len(lats)) / elapsed.Seconds(),
		P50Us:        pct(0.50),
		P99Us:        pct(0.99),
		Commits:      loadCommits,
		WALSyncs:     loadSyncs,
		FsyncDelayUs: int(serverLoadFsyncDelay / time.Microsecond),
	}, nil
}
