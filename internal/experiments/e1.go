// Package experiments implements the TROD evaluation harness: one function
// per paper table/figure/prototype claim (E1–E10) plus the ablations
// (A1–A3) DESIGN.md calls out. Both the root bench suite (bench_test.go)
// and the cmd/trod-bench binary drive these; EXPERIMENTS.md records the
// paper-vs-measured outcomes.
package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/db"
	"repro/internal/runtime"
	"repro/internal/trace"
	"repro/internal/wal"
	"repro/internal/workload"
)

// Engine selects the storage regime for E1.
type Engine string

// Engines under test, mirroring the paper's VoltDB (in-memory) and Postgres
// (on-disk) configurations.
const (
	EngineMemory Engine = "memory"
	EngineDisk   Engine = "disk"
)

// E1Config parameterises the tracing-overhead experiment.
type E1Config struct {
	Engine   Engine
	Tracing  bool
	Requests int
	Users    int
	Seed     int64
	// Dir holds the WAL for disk mode; empty uses a temp dir.
	Dir string
	// SyncWAL fsyncs per commit in disk mode (the realistic OLTP setting).
	SyncWAL bool
}

// E1Result reports per-request latency for one configuration.
type E1Result struct {
	Config      E1Config
	AvgUs       float64
	P50Us       float64
	P99Us       float64
	TotalMs     float64
	TraceEvents uint64
}

// RunE1 measures per-request latency of the microservice workload with or
// without TROD tracing attached (paper §3.7: "<100µs per request, <15%
// relative overhead on an in-memory DBMS, negligible on an on-disk DBMS").
func RunE1(cfg E1Config) (*E1Result, error) {
	var prod *db.DB
	var err error
	switch cfg.Engine {
	case EngineMemory:
		prod = db.MustOpenMemory()
	case EngineDisk:
		dir := cfg.Dir
		if dir == "" {
			dir, err = os.MkdirTemp("", "trod-e1")
			if err != nil {
				return nil, err
			}
			defer os.RemoveAll(dir)
		}
		sync := wal.SyncNever
		if cfg.SyncWAL {
			sync = wal.SyncEachCommit
		}
		prod, err = db.Open(db.Options{Mode: db.Disk, Path: filepath.Join(dir, "e1.wal"), Sync: sync})
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("experiments: unknown engine %q", cfg.Engine)
	}
	defer prod.Close()

	if err := workload.SetupMicroservice(prod, cfg.Users, cfg.Seed); err != nil {
		return nil, err
	}
	app := runtime.New(prod)
	workload.RegisterMicroservice(app)

	var tr *trace.Tracer
	if cfg.Tracing {
		prov := db.MustOpenMemory()
		defer prov.Close()
		tr, err = trace.Attach(app, prov, trace.Config{Tables: workload.MicroserviceTables})
		if err != nil {
			return nil, err
		}
		defer tr.Close()
	}

	handlers, args := workload.RequestMix(cfg.Requests, cfg.Users, cfg.Seed+1)
	lat := make([]float64, cfg.Requests)
	start := time.Now()
	for i := 0; i < cfg.Requests; i++ {
		t0 := time.Now()
		if _, err := app.Invoke(handlers[i], args[i]); err != nil {
			return nil, fmt.Errorf("request %d (%s): %w", i, handlers[i], err)
		}
		lat[i] = float64(time.Since(t0).Nanoseconds()) / 1e3
	}
	total := time.Since(start)
	if tr != nil {
		if err := tr.Flush(); err != nil {
			return nil, err
		}
	}

	sort.Float64s(lat)
	res := &E1Result{
		Config:  cfg,
		AvgUs:   mean(lat),
		P50Us:   percentile(lat, 0.50),
		P99Us:   percentile(lat, 0.99),
		TotalMs: float64(total.Nanoseconds()) / 1e6,
	}
	if tr != nil {
		res.TraceEvents, _ = tr.Stats()
	}
	return res, nil
}

// E1Pair runs a tracing-off/tracing-on pair and computes relative overhead.
type E1Pair struct {
	Off, On     *E1Result
	OverheadPct float64
	PerReqUs    float64 // absolute tracing cost per request
}

// RunE1Pair runs the overhead comparison for one engine. Runs are
// interleaved ABBA (off, on, on, off) and combined on medians, so drift in
// file-system or allocator state cannot masquerade as tracing overhead.
func RunE1Pair(engine Engine, requests, users int, syncWAL bool) (*E1Pair, error) {
	base := E1Config{Engine: engine, Requests: requests, Users: users, Seed: 1, SyncWAL: syncWAL}
	offCfg := base
	offCfg.Tracing = false
	onCfg := base
	onCfg.Tracing = true

	// Warm both paths once to stabilise allocator and file-cache state.
	warmOff := offCfg
	warmOff.Requests = requests / 10
	warmOn := onCfg
	warmOn.Requests = requests / 10
	if warmOff.Requests > 0 {
		if _, err := RunE1(warmOff); err != nil {
			return nil, err
		}
		if _, err := RunE1(warmOn); err != nil {
			return nil, err
		}
	}

	off1, err := RunE1(offCfg)
	if err != nil {
		return nil, err
	}
	on1, err := RunE1(onCfg)
	if err != nil {
		return nil, err
	}
	on2, err := RunE1(onCfg)
	if err != nil {
		return nil, err
	}
	off2, err := RunE1(offCfg)
	if err != nil {
		return nil, err
	}
	off := combineE1(off1, off2)
	on := combineE1(on1, on2)
	pair := &E1Pair{Off: off, On: on}
	// Relative overhead is computed on total workload time (a throughput
	// ratio, like the paper's): per-request medians would hide the disk
	// regime, where only write requests pay the fsync. The absolute
	// per-request tracing cost is the median difference, which is robust
	// against GC/fsync tails.
	if off.TotalMs > 0 {
		pair.OverheadPct = (on.TotalMs - off.TotalMs) / off.TotalMs * 100
	}
	pair.PerReqUs = on.P50Us - off.P50Us
	return pair, nil
}

// combineE1 averages two runs of the same configuration.
func combineE1(a, b *E1Result) *E1Result {
	return &E1Result{
		Config:      a.Config,
		AvgUs:       (a.AvgUs + b.AvgUs) / 2,
		P50Us:       (a.P50Us + b.P50Us) / 2,
		P99Us:       (a.P99Us + b.P99Us) / 2,
		TotalMs:     (a.TotalMs + b.TotalMs) / 2,
		TraceEvents: a.TraceEvents + b.TraceEvents,
	}
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}
