package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/crashtest"
	"repro/internal/db"
	"repro/internal/repl"
	"repro/internal/server"
)

// ReadScalePoint is one read-throughput measurement: `Replicas` read-only
// servers behind the pool (0 = primary-only baseline) and the completed
// read operations per second they sustained.
type ReadScalePoint struct {
	Replicas   int
	Throughput float64
	Reads      int
}

// ReplicationResult is the outcome of the replication experiment: a primary
// under write load with N streaming replicas, measuring how read throughput
// scales with replica count and how far replica reads trail the primary.
type ReplicationResult struct {
	Replicas  int
	WriteOps  int // writes committed on the primary during the workload
	ReadScale []ReadScalePoint

	// The per-node read-capacity model behind the ReadScale numbers (see
	// replNodeSlots/replReadService): each serving node handles
	// SlotsPerNode concurrent reads of at least ReadServiceUs each.
	SlotsPerNode  int
	ReadServiceUs int

	// Replication lag, measured end to end: commit a marker on the primary
	// (through the network stack), poll a replica until the marker is
	// visible. Includes the client round trips on both sides, so it upper-
	// bounds the staleness an application can ever observe.
	LagSamples int
	LagP50Ms   float64
	LagP99Ms   float64
	LagBoundMs float64 // the bounded-staleness assertion threshold
	LagBounded bool    // p99 <= LagBoundMs

	// DiffClean reports that after the write load drained and every replica
	// caught up, each replica's full store state was byte-equal to the
	// primary's (crashtest.StoreDiff) — the differential proof that log
	// shipping reproduced the primary exactly.
	DiffClean bool
	FinalSeq  uint64
}

const (
	replRows       = 1024
	replLagBoundMs = 250 // bounded-staleness assertion (loopback)

	// Per-node read-capacity model. Every node (primary or replica) serves
	// replNodeSlots concurrent readers, each read taking at least
	// replReadService wall-clock — modelling a dedicated machine whose
	// read capacity is bounded by its own hardware. On the multi-core
	// servers replication targets, capacity scaling is physical; on a
	// shared-CPU benchmark host every node's reads would otherwise compete
	// for the same core and the scaling would measure the host, not the
	// architecture. This is the same modelled-hardware approach the server
	// experiment takes with wal.SetSyncDelay for fsync, and the model is
	// recorded in the result (SlotsPerNode, ReadServiceUs) so the numbers
	// are interpretable. Lag and the StoreDiff differential are measured
	// with no model applied.
	replNodeSlots   = 4
	replReadService = time.Millisecond
)

// replNode is one replica: its database, subscription, and server.
type replNode struct {
	db   *db.DB
	r    *repl.Replica
	srv  *server.Server
	addr string
	done chan error
}

// RunReplication boots a primary and `replicas` streaming replicas on
// loopback, applies continuous write load to the primary, and measures
// (a) read throughput through the read/write-splitting pool at every scale
// from primary-only to all replicas, (b) end-to-end replication lag, and
// (c) a final differential check that every replica equals the primary
// after the load drains. readMillis is the measurement window per scale
// point.
func RunReplication(replicas, readMillis int) (*ReplicationResult, error) {
	if replicas <= 0 || readMillis <= 0 {
		return nil, fmt.Errorf("experiments: replication needs positive replicas/readMillis, got %d/%d", replicas, readMillis)
	}
	dir, err := os.MkdirTemp("", "trod-repl")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	// Primary: disk-backed, fronted by a server with a replication source.
	prim, err := db.Open(db.Options{Mode: db.Disk, Path: filepath.Join(dir, "primary.wal")})
	if err != nil {
		return nil, err
	}
	defer prim.Close()
	if err := prim.ExecScript(`
		CREATE TABLE accounts (id INTEGER PRIMARY KEY, owner TEXT, balance INTEGER);
		CREATE INDEX accounts_owner ON accounts (owner);
		CREATE TABLE repl_marker (id INTEGER PRIMARY KEY, v INTEGER);
		INSERT INTO repl_marker VALUES (1, 0);`); err != nil {
		return nil, err
	}
	for base := 0; base < replRows; base += 128 {
		tx := prim.Begin()
		for i := base; i < base+128 && i < replRows; i++ {
			if _, err := tx.Exec(`INSERT INTO accounts VALUES (?, ?, ?)`,
				i, fmt.Sprintf("U%d", i%64), 1000); err != nil {
				tx.Rollback()
				return nil, err
			}
		}
		if err := tx.Commit(); err != nil {
			return nil, err
		}
	}

	src := repl.NewSource(prim, repl.SourceOptions{Heartbeat: 100 * time.Millisecond})
	psrv, err := server.New(server.Config{DB: prim, Source: src, MaxConns: 64})
	if err != nil {
		return nil, err
	}
	pln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	pdone := make(chan error, 1)
	go func() { pdone <- psrv.Serve(pln) }()
	paddr := pln.Addr().String()

	// Replicas: own WAL each, read-only, subscribed to the primary.
	nodes := make([]*replNode, replicas)
	for i := range nodes {
		rdb, err := db.Open(db.Options{Mode: db.Disk, Path: filepath.Join(dir, fmt.Sprintf("replica%d.wal", i))})
		if err != nil {
			return nil, err
		}
		rdb.SetReadOnly(true)
		r := repl.StartReplica(rdb, paddr, repl.ReplicaOptions{MinBackoff: 10 * time.Millisecond})
		rsrv, err := server.New(server.Config{DB: rdb, Replica: r, MaxConns: 64})
		if err != nil {
			return nil, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		n := &replNode{db: rdb, r: r, srv: rsrv, addr: ln.Addr().String(), done: make(chan error, 1)}
		go func() { n.done <- rsrv.Serve(ln) }()
		nodes[i] = n
		defer func() {
			r.Stop()
			rdb.Close()
		}()
	}
	waitCaught := func(timeout time.Duration) error {
		seq := prim.Store().CurrentSeq()
		for _, n := range nodes {
			if !n.r.WaitForSeq(seq, timeout) {
				return fmt.Errorf("experiments: replica stuck at %d, want %d (%v)",
					n.r.AppliedSeq(), seq, n.r.LastErr())
			}
		}
		return nil
	}
	if err := waitCaught(20 * time.Second); err != nil {
		return nil, err
	}

	// Continuous write load on the primary (through the network stack) for
	// the whole measurement, so replicas are always applying while serving.
	stopWrites := make(chan struct{})
	var writeOps atomic.Int64
	var writerErr error
	var writerWg sync.WaitGroup
	writerWg.Add(1)
	go func() {
		defer writerWg.Done()
		cl, err := client.Dial(paddr, client.Options{PoolSize: 2})
		if err != nil {
			writerErr = err
			return
		}
		defer cl.Close()
		rng := rand.New(rand.NewSource(42))
		for {
			select {
			case <-stopWrites:
				return
			default:
			}
			id := rng.Intn(replRows)
			if _, err := cl.Exec(`UPDATE accounts SET balance = balance + 1 WHERE id = ?`, id); err != nil {
				writerErr = err
				return
			}
			writeOps.Add(1)
		}
	}()

	// Lag sampler: bump the marker through the primary, poll one replica
	// (round-robin) until the new value is visible.
	stopLag := make(chan struct{})
	var lagMs []float64
	var lagWg sync.WaitGroup
	lagWg.Add(1)
	go func() {
		defer lagWg.Done()
		pcl, err := client.Dial(paddr, client.Options{PoolSize: 1})
		if err != nil {
			return
		}
		defer pcl.Close()
		rcls := make([]*client.Client, len(nodes))
		for i, n := range nodes {
			if rcls[i], err = client.Dial(n.addr, client.Options{PoolSize: 1}); err != nil {
				return
			}
			defer rcls[i].Close()
		}
		for v := int64(1); ; v++ {
			select {
			case <-stopLag:
				return
			default:
			}
			t0 := time.Now()
			if _, err := pcl.Exec(`UPDATE repl_marker SET v = ? WHERE id = 1`, v); err != nil {
				return
			}
			rc := rcls[int(v)%len(rcls)]
			for {
				res, err := rc.Query(`SELECT v FROM repl_marker WHERE id = 1`)
				if err == nil && len(res.Rows) == 1 && res.Rows[0][0].AsInt() >= v {
					break
				}
				if time.Since(t0) > 5*time.Second {
					break // pathological; recorded as a huge sample
				}
				time.Sleep(200 * time.Microsecond)
			}
			lagMs = append(lagMs, float64(time.Since(t0).Microseconds())/1000)
			select {
			case <-stopLag:
				return
			case <-time.After(5 * time.Millisecond):
			}
		}
	}()

	// Read-throughput scale: primary-only baseline, then reads split across
	// 1..N replicas (the pool's routing policy: queries go to replicas when
	// any exist). Each serving node gets replNodeSlots dedicated readers
	// whose reads take at least replReadService (the capacity model above),
	// so the point at k replicas measures k nodes' worth of read capacity
	// while the primary keeps absorbing the write load.
	window := time.Duration(readMillis) * time.Millisecond
	var scale []ReadScalePoint
	for k := 0; k <= len(nodes); k++ {
		addrs := []string{paddr}
		if k > 0 {
			addrs = addrs[:0]
			for i := 0; i < k; i++ {
				addrs = append(addrs, nodes[i].addr)
			}
		}
		var reads atomic.Int64
		stopRead := make(chan struct{})
		var rwg sync.WaitGroup
		var readerErr atomic.Value
		for ni, addr := range addrs {
			cl, err := client.Dial(addr, client.Options{PoolSize: replNodeSlots})
			if err != nil {
				return nil, err
			}
			for w := 0; w < replNodeSlots; w++ {
				rwg.Add(1)
				go func(seed int64) {
					defer rwg.Done()
					rng := rand.New(rand.NewSource(seed*104729 + 7))
					for {
						select {
						case <-stopRead:
							return
						default:
						}
						t0 := time.Now()
						var err error
						if rng.Intn(4) == 0 {
							_, err = cl.Query(`SELECT id, balance FROM accounts WHERE owner = ? LIMIT 10`,
								fmt.Sprintf("U%d", rng.Intn(64)))
						} else {
							_, err = cl.Query(`SELECT balance FROM accounts WHERE id = ?`, rng.Intn(replRows))
						}
						if err != nil {
							readerErr.Store(err)
							return
						}
						reads.Add(1)
						if rest := replReadService - time.Since(t0); rest > 0 {
							time.Sleep(rest) // modelled per-node service time
						}
					}
				}(int64(ni*replNodeSlots + w))
			}
			defer cl.Close()
		}
		time.Sleep(window)
		close(stopRead)
		rwg.Wait()
		if err, ok := readerErr.Load().(error); ok {
			return nil, fmt.Errorf("experiments: reader (scale %d): %w", k, err)
		}
		scale = append(scale, ReadScalePoint{
			Replicas:   k,
			Reads:      int(reads.Load()),
			Throughput: float64(reads.Load()) / window.Seconds(),
		})
	}

	// Drain: stop the load, let every replica catch up, and prove the
	// replicated state equals the primary's.
	close(stopLag)
	lagWg.Wait()
	close(stopWrites)
	writerWg.Wait()
	if writerErr != nil {
		return nil, fmt.Errorf("experiments: writer: %w", writerErr)
	}
	if err := waitCaught(20 * time.Second); err != nil {
		return nil, err
	}
	diffClean := true
	for _, n := range nodes {
		if diff := crashtest.StoreDiff(n.db.Store(), prim.Store()); diff != "" {
			diffClean = false
			break
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, n := range nodes {
		n.r.Stop()
		if err := n.srv.Shutdown(ctx); err != nil {
			return nil, err
		}
		<-n.done
	}
	if err := psrv.Shutdown(ctx); err != nil {
		return nil, err
	}
	if err := <-pdone; err != nil {
		return nil, err
	}

	sort.Float64s(lagMs)
	pct := func(p float64) float64 {
		if len(lagMs) == 0 {
			return 0
		}
		return lagMs[int(p*float64(len(lagMs)-1))]
	}
	res := &ReplicationResult{
		Replicas:      replicas,
		WriteOps:      int(writeOps.Load()),
		ReadScale:     scale,
		SlotsPerNode:  replNodeSlots,
		ReadServiceUs: int(replReadService / time.Microsecond),
		LagSamples:    len(lagMs),
		LagP50Ms:      pct(0.50),
		LagP99Ms:      pct(0.99),
		LagBoundMs:    replLagBoundMs,
		DiffClean:     diffClean,
		FinalSeq:      prim.Store().CurrentSeq(),
	}
	res.LagBounded = res.LagSamples > 0 && res.LagP99Ms <= res.LagBoundMs
	return res, nil
}
