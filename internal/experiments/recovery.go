package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/db"
	"repro/internal/wal"
)

// RecoveryPoint is one measurement of cold-recovery time at a given scale:
// the same committed state recovered by full WAL replay versus by loading a
// checkpoint snapshot plus a short WAL tail.
type RecoveryPoint struct {
	Events        int     // row-change events in the recovered state
	Commits       int     // WAL commit records the full-replay path processes
	FullReplayMs  float64 // cold Open with no checkpoint
	CheckpointMs  float64 // cold Open from snapshot + tail
	TailRecords   int     // records replayed after the snapshot
	CheckpointRun float64 // wall time of the Checkpoint() call itself, ms
}

// RunRecoveryBench builds a disk-backed database whose WAL holds `events`
// row changes over an update-heavy OLTP-shaped history (each row is updated
// ~10 times, so the live state is ~10x smaller than the change history),
// then measures cold recovery twice: full WAL replay, and snapshot-plus-tail
// after a checkpoint with a small post-checkpoint tail. Checkpointed
// recovery cost is bounded by the state size while full replay pays for the
// whole history — the gap is the ROADMAP's fast-restart requirement.
func RunRecoveryBench(events int) (*RecoveryPoint, error) {
	dir, err := os.MkdirTemp("", "trod-recovery")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "bench.wal")

	const rowsPerCommit = 100
	commits := events / rowsPerCommit
	if commits < 1 {
		commits = 1
	}
	keyspace := events / 10
	if keyspace < rowsPerCommit {
		keyspace = rowsPerCommit
	}
	const tailCommits = 50

	d, err := db.Open(db.Options{Mode: db.Disk, Path: path, Sync: wal.SyncNever})
	if err != nil {
		return nil, err
	}
	if _, err := d.Exec(`CREATE TABLE events (id INTEGER PRIMARY KEY, actor TEXT, kind TEXT, weight INTEGER)`); err != nil {
		return nil, err
	}
	if _, err := d.Exec(`CREATE INDEX events_actor ON events (actor)`); err != nil {
		return nil, err
	}
	ev := 0
	load := func(n int) error {
		for c := 0; c < n; c++ {
			tx := d.Begin()
			for r := 0; r < rowsPerCommit; r++ {
				id := ev%keyspace + 1
				var err error
				if ev < keyspace {
					_, err = tx.Exec(`INSERT INTO events VALUES (?, ?, ?, ?)`,
						id, fmt.Sprintf("U%d", id%977), "insert", ev%17)
				} else {
					_, err = tx.Exec(`UPDATE events SET kind = 'update', weight = ? WHERE id = ?`, ev%17, id)
				}
				if err != nil {
					tx.Rollback()
					return err
				}
				ev++
			}
			if err := tx.Commit(); err != nil {
				return err
			}
		}
		return nil
	}
	if err := load(commits); err != nil {
		return nil, err
	}
	if err := d.Close(); err != nil {
		return nil, err
	}

	// Cold recovery, full replay (no checkpoint exists yet).
	t0 := time.Now()
	re, err := db.Open(db.Options{Mode: db.Disk, Path: path, Sync: wal.SyncNever})
	if err != nil {
		return nil, err
	}
	fullMs := float64(time.Since(t0).Nanoseconds()) / 1e6
	if re.Recovery().SnapshotLoaded {
		re.Close()
		return nil, fmt.Errorf("experiments: full-replay run unexpectedly found a snapshot")
	}

	// Checkpoint, add a short tail, and measure the bounded recovery.
	tc := time.Now()
	if err := re.Checkpoint(); err != nil {
		re.Close()
		return nil, err
	}
	ckptMs := float64(time.Since(tc).Nanoseconds()) / 1e6
	d = re
	if err := load(tailCommits); err != nil {
		d.Close()
		return nil, err
	}
	if err := d.Close(); err != nil {
		return nil, err
	}

	t1 := time.Now()
	re2, err := db.Open(db.Options{Mode: db.Disk, Path: path, Sync: wal.SyncNever})
	if err != nil {
		return nil, err
	}
	checkpointMs := float64(time.Since(t1).Nanoseconds()) / 1e6
	info := re2.Recovery()
	re2.Close()
	if !info.SnapshotLoaded {
		return nil, fmt.Errorf("experiments: checkpointed run did not use the snapshot: %+v", info)
	}

	return &RecoveryPoint{
		Events:        ev,
		Commits:       commits,
		FullReplayMs:  fullMs,
		CheckpointMs:  checkpointMs,
		TailRecords:   info.TailRecords,
		CheckpointRun: ckptMs,
	}, nil
}
