package experiments

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/db"
	"repro/internal/wal"
)

// MVCCResult is the outcome of the mixed analytics+OLTP experiment: long
// read-only scans running concurrently with read-modify-write transfer
// transactions, with version garbage collection enabled. The headline
// claims under test: declared read-only transactions never abort (zero is
// structural, not statistical — they carry no read set to validate), every
// scan observes a consistent snapshot (the transfer invariant holds), and
// vacuum keeps resident version count plateaued under sustained updates
// instead of growing linearly with commits.
type MVCCResult struct {
	Writers int
	Readers int
	Rows    int

	WriteTxns    int // committed RMW transfer transactions
	ReaderScans  int // completed read-only full-table scans
	ReaderAborts int // read-only scans that failed for any reason (must be 0)
	InvariantOK  bool

	// Version residency. UnboundedVersions is what residency would be with
	// GC off (seed versions + 2 per transfer); Plateaued asserts the
	// observed peak stayed well under it. ResidentPeak is the steady-state
	// peak: sampling starts after the first write-phase vacuum, since the
	// ramp before it reflects checkpoint latency, not GC behavior.
	VacuumRuns        uint64
	VacuumDropped     uint64 // row + index versions compacted out
	HistoryFloor      uint64
	ResidentPeak      uint64
	ResidentFinal     uint64
	UnboundedVersions uint64
	Plateaued         bool

	DurationMs float64
}

// Err returns a non-nil error when the experiment's invariants were
// violated, so callers (the CI smoke) can fail on exit code.
func (r *MVCCResult) Err() error {
	switch {
	case r.ReaderAborts != 0:
		return fmt.Errorf("experiments: mvcc: %d read-only scans aborted; read-only transactions must never abort", r.ReaderAborts)
	case !r.InvariantOK:
		return fmt.Errorf("experiments: mvcc: a read-only scan observed an inconsistent snapshot (transfer invariant broken)")
	case r.VacuumRuns == 0:
		return fmt.Errorf("experiments: mvcc: vacuum never ran; GC is not wired into the checkpoint triggers")
	case r.VacuumDropped == 0:
		return fmt.Errorf("experiments: mvcc: vacuum ran %d times but dropped nothing", r.VacuumRuns)
	case !r.Plateaued:
		return fmt.Errorf("experiments: mvcc: resident versions peaked at %d of an unbounded %d; version count did not plateau",
			r.ResidentPeak, r.UnboundedVersions)
	}
	return nil
}

// mvccRetention is the history window (in commits) the experiment's database
// keeps for time travel; mvccCheckpointEvery is the WAL-records checkpoint
// trigger that fires the vacuum. Retention deliberately smaller than the
// write volume, so a plateau is only possible if vacuum actually works.
// mvccWritePace spaces each writer's transfers out: the claim under test is
// residency under *sustained* updates, and checkpoints (whose duration is
// fsync-bound) are the GC cadence — an unpaced burst can outrun a single
// checkpoint entirely, which measures disk latency, not MVCC behavior.
// mvccReadPace keeps the scan readers from monopolizing the CPU on small
// machines: unpaced readers spin at full-table-scan speed and starve the
// paced writers out of the scheduler on a single-core host.
const (
	mvccRows            = 512
	mvccRetention       = 128
	mvccCheckpointEvery = 256
	mvccWritePace       = 200 * time.Microsecond
	mvccReadPace        = 500 * time.Microsecond
)

// RunMVCC runs `writers` goroutines doing balance transfers (read two rows,
// move one unit) for a total of writeTxns committed transactions, while
// `readers` goroutines continuously run full-table scans in declared
// read-only transactions, on a disk-backed database with HistoryRetention
// GC. It reports abort counts, snapshot-consistency, and version residency.
func RunMVCC(writers, readers, writeTxns int) (*MVCCResult, error) {
	if writers <= 0 || readers <= 0 || writeTxns <= 0 {
		return nil, fmt.Errorf("experiments: mvcc needs positive writers/readers/writeTxns, got %d/%d/%d", writers, readers, writeTxns)
	}
	dir, err := os.MkdirTemp("", "trod-mvcc")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	// SyncNever: this experiment measures MVCC behavior (aborts, snapshot
	// consistency, version residency), not durability; per-commit fsync
	// would make checkpoint cadence — and so vacuum cadence — fsync-bound.
	d, err := db.Open(db.Options{
		Mode:              db.Disk,
		Path:              filepath.Join(dir, "mvcc.wal"),
		Sync:              wal.SyncNever,
		CheckpointRecords: mvccCheckpointEvery,
		CDCRetention:      mvccRetention,
		HistoryRetention:  mvccRetention,
	})
	if err != nil {
		return nil, err
	}
	defer d.Close()

	if _, err := d.Exec("CREATE TABLE acct (id INTEGER PRIMARY KEY, bal INTEGER NOT NULL)"); err != nil {
		return nil, err
	}
	for i := 0; i < mvccRows; i++ {
		if _, err := d.Exec("INSERT INTO acct (id, bal) VALUES (?, ?)", int64(i), int64(100)); err != nil {
			return nil, err
		}
	}
	wantTotal := int64(mvccRows) * 100

	res := &MVCCResult{Writers: writers, Readers: readers, Rows: mvccRows, InvariantOK: true}
	var (
		writesDone   atomic.Bool
		writeCount   atomic.Int64
		scanCount    atomic.Int64
		abortCount   atomic.Int64
		invariantBad atomic.Bool
		peakResident atomic.Uint64
		wg           sync.WaitGroup
		errMu        sync.Mutex
		firstErr     error
	)
	keep := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}

	start := time.Now()

	// Writers: random transfers until the global budget is spent. RunTx
	// retries serialization conflicts internally; every return counts one
	// committed transaction.
	var writersWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(seed int64) {
			defer writersWG.Done()
			rng := rand.New(rand.NewSource(seed))
			for writeCount.Add(1) <= int64(writeTxns) {
				from := rng.Intn(mvccRows)
				to := rng.Intn(mvccRows)
				if from == to {
					to = (to + 1) % mvccRows
				}
				err := d.RunTx(db.TxMeta{}, func(tx *db.Tx) error {
					if _, err := tx.Exec("UPDATE acct SET bal = bal - 1 WHERE id = ?", int64(from)); err != nil {
						return err
					}
					_, err := tx.Exec("UPDATE acct SET bal = bal + 1 WHERE id = ?", int64(to))
					return err
				})
				if err != nil {
					keep(err)
					return
				}
				time.Sleep(mvccWritePace)
			}
		}(int64(w) + 1)
	}

	// Readers: long analytic scans in declared read-only transactions,
	// concurrent with the writers (and with the vacuums their checkpoints
	// trigger). Each scan must see a consistent snapshot: the transfer
	// invariant (total balance constant) holds at every commit sequence.
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !writesDone.Load() {
				tx := d.BeginReadOnly()
				rows, err := tx.Query("SELECT id, bal FROM acct")
				if err != nil {
					abortCount.Add(1)
					tx.Rollback()
					continue
				}
				var total int64
				for _, row := range rows.Rows {
					total += row[1].AsInt()
				}
				if err := tx.Commit(); err != nil {
					abortCount.Add(1)
					continue
				}
				if total != wantTotal {
					invariantBad.Store(true)
				}
				scanCount.Add(1)
				time.Sleep(mvccReadPace)
			}
		}()
	}

	// Sampler: track the steady-state peak of resident row versions. The
	// seed inserts and the ramp up to the first write-phase vacuum are
	// warmup (their residency reflects checkpoint latency, not the GC
	// steady state), so sampling starts once a post-seed vacuum has run.
	seedRuns := d.Store().VacuumTotals().Runs
	wg.Add(1)
	go func() {
		defer wg.Done()
		store := d.Store()
		for !writesDone.Load() {
			if store.VacuumTotals().Runs > seedRuns {
				census := store.VersionCensus()
				if v := census.ResidentRowVersions; v > peakResident.Load() {
					peakResident.Store(v)
				}
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Wait for the writer budget, then release readers and sampler.
	writersWG.Wait()
	writesDone.Store(true)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	res.DurationMs = float64(time.Since(start).Microseconds()) / 1000
	res.WriteTxns = writeTxns
	res.ReaderScans = int(scanCount.Load())
	res.ReaderAborts = int(abortCount.Load())
	res.InvariantOK = !invariantBad.Load()

	store := d.Store()
	vac := store.VacuumTotals()
	census := store.VersionCensus()
	res.VacuumRuns = vac.Runs
	res.VacuumDropped = vac.DroppedRowVersions + vac.DroppedIndexVersions
	res.HistoryFloor = store.HistoryRetainedFrom()
	res.ResidentFinal = census.ResidentRowVersions
	res.ResidentPeak = peakResident.Load()
	if res.ResidentFinal > res.ResidentPeak {
		res.ResidentPeak = res.ResidentFinal
	}
	// With GC off every transfer leaves two dead row versions behind the
	// seed images; a plateau means the peak stayed well under that line.
	res.UnboundedVersions = uint64(mvccRows + 2*writeTxns)
	res.Plateaued = res.ResidentPeak < res.UnboundedVersions/2
	return res, nil
}
