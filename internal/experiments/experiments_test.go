package experiments

import (
	"testing"
)

func TestE1MemoryPair(t *testing.T) {
	pair, err := RunE1Pair(EngineMemory, 300, 20, false)
	if err != nil {
		t.Fatal(err)
	}
	if pair.On.AvgUs <= 0 || pair.Off.AvgUs <= 0 {
		t.Errorf("latencies = %+v", pair)
	}
	if pair.On.TraceEvents == 0 {
		t.Error("no trace events counted")
	}
	// Shape check (paper: <100µs absolute cost; allow generous slack for
	// CI noise but the absolute cost must stay well under a millisecond).
	if pair.PerReqUs > 1000 {
		t.Errorf("tracing cost per request = %.1fµs, absurdly high", pair.PerReqUs)
	}
}

func TestE1DiskRuns(t *testing.T) {
	res, err := RunE1(E1Config{Engine: EngineDisk, Tracing: true, Requests: 100, Users: 10, Seed: 3, SyncWAL: false})
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgUs <= 0 {
		t.Errorf("disk result = %+v", res)
	}
	if _, err := RunE1(E1Config{Engine: "bogus"}); err == nil {
		t.Error("bogus engine should fail")
	}
}

func TestE2QuerySweepSmall(t *testing.T) {
	points, err := RunE2([]int{2000, 8000})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %+v", points)
	}
	for _, p := range points {
		if p.MatchRows != 2 {
			t.Errorf("scale %d: needle rows = %d, want 2", p.Events, p.MatchRows)
		}
		if p.QueryMs <= 0 || p.LoadMs <= 0 {
			t.Errorf("scale %d: zero timings %+v", p.Events, p)
		}
	}
}

func TestE3ThroughE7Scenario(t *testing.T) {
	sc, err := NewScenario()
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()

	t1, err := RunE3Table1(sc)
	if err != nil {
		t.Fatal(err)
	}
	// Committed txns: 2 checks + 2 inserts + 1 fetch = at least 5.
	if len(t1.Rows) < 5 {
		t.Errorf("Table 1 rows = %d", len(t1.Rows))
	}
	t2, err := RunE4Table2(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(t2.Rows) < 4 {
		t.Errorf("Table 2 rows = %d", len(t2.Rows))
	}
	if _, err := RunE5DebugQuery(sc); err != nil {
		t.Errorf("E5: %v", err)
	}
	if _, err := RunE6Replay(sc); err != nil {
		t.Errorf("E6: %v", err)
	}
	if _, err := RunE7Retro(sc); err != nil {
		t.Errorf("E7: %v", err)
	}
}

func TestE8E9Security(t *testing.T) {
	sc, err := NewSecurityScenario()
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	if _, err := RunE8AccessControl(sc); err != nil {
		t.Errorf("E8: %v", err)
	}
	if _, err := RunE9Exfiltration(sc); err != nil {
		t.Errorf("E9: %v", err)
	}
}

func TestE10CaseStudies(t *testing.T) {
	results, err := RunE10CaseStudies()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("case studies = %d", len(results))
	}
	for _, r := range results {
		if !r.Located {
			t.Errorf("%s: provenance did not locate the culprits", r.Bug)
		}
		if !r.Replayed {
			t.Errorf("%s: replay not faithful", r.Bug)
		}
		if !r.FixValidated {
			t.Errorf("%s: fix not validated", r.Bug)
		}
		// MW-39225 manifests only on some interleavings; the others must
		// reproduce deterministically.
		if r.Bug != "MW-39225 (wrong article sizes)" && !r.Reproduced {
			t.Errorf("%s: did not reproduce", r.Bug)
		}
	}
}

func TestA1FlushPolicy(t *testing.T) {
	res, err := RunA1FlushPolicy(200, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.AsyncAvgUs <= 0 || res.SyncAvgUs <= 0 {
		t.Errorf("a1 = %+v", res)
	}
	// Synchronous flushing must not be faster than the async buffer (it
	// commits a provenance txn inline per event).
	if res.Slowdown < 0.8 {
		t.Errorf("sync faster than async?! %+v", res)
	}
}

func TestA2SelectiveRestore(t *testing.T) {
	res, err := RunA2SelectiveRestore(20000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.BothFaithful {
		t.Error("a restore mode diverged")
	}
	if res.Speedup < 1 {
		t.Errorf("selective restore not faster: %+v", res)
	}
}

func TestA3ConflictPruning(t *testing.T) {
	res, err := RunA3Interleavings(2, 256)
	if err != nil {
		t.Fatal(err)
	}
	if res.PrunedCount >= res.NaiveCount {
		t.Errorf("pruning did not reduce schedules: %+v", res)
	}
	if res.PrunedBranches >= res.NaiveBranches {
		t.Errorf("pruning did not reduce branches: %+v", res)
	}
}

// TestServerLoadSmall runs the multi-client network-load experiment at a
// small scale: every op completes, latency percentiles are sane, and write
// commits flowed through the WAL.
func TestServerLoadSmall(t *testing.T) {
	res, err := RunServerLoad(4, 12)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 4*12 {
		t.Errorf("ops = %d, want %d", res.Ops, 4*12)
	}
	if res.P50Us <= 0 || res.P99Us < res.P50Us {
		t.Errorf("bad percentiles: %+v", res)
	}
	if res.Commits == 0 || res.WALSyncs == 0 {
		t.Errorf("no durable commits recorded: %+v", res)
	}
	if res.Throughput <= 0 {
		t.Errorf("throughput = %v", res.Throughput)
	}
}

// TestReplicationSmall runs the replication experiment at a small scale:
// read throughput rises when reads spread over more replicas, the replicas
// end byte-identical to the primary, and lag samples were collected.
func TestReplicationSmall(t *testing.T) {
	res, err := RunReplication(2, 120)
	if err != nil {
		t.Fatal(err)
	}
	if !res.DiffClean {
		t.Error("replica state diverged from the primary after drain")
	}
	if len(res.ReadScale) != 3 {
		t.Fatalf("read scale points = %d, want 3", len(res.ReadScale))
	}
	one, two := res.ReadScale[1].Throughput, res.ReadScale[2].Throughput
	if two <= one {
		t.Errorf("read throughput did not rise with replica count: 1 replica %.0f/s, 2 replicas %.0f/s", one, two)
	}
	if res.LagSamples == 0 {
		t.Error("no lag samples collected")
	}
	if res.WriteOps == 0 {
		t.Error("no write load applied")
	}
}

// TestObsHotKeySmall runs the hot-key observability storm at a small scale:
// conflicts must surface, the mid-run scrape must cover all four layers,
// and every sampled slow-query request ID must resolve in provenance.
func TestObsHotKeySmall(t *testing.T) {
	res, err := RunObsHotKey(6, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if res.ServerConflicts != uint64(res.Conflicts) {
		t.Errorf("server counted %d conflicts, clients saw %d", res.ServerConflicts, res.Conflicts)
	}
	if res.TracerEvents == 0 {
		t.Error("tracer captured no events")
	}
}

// TestObsOpenLoopSmall runs the bursty open-loop experiment at a small
// scale: every arrival is either served or rejected with a typed busy
// error, and the queue-wait histogram saw the admissions.
func TestObsOpenLoopSmall(t *testing.T) {
	res, err := RunObsOpenLoop(3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if res.ScrapeSeries == 0 {
		t.Error("mid-run scrape returned no series")
	}
}
