package experiments

import (
	"fmt"
	"time"

	"repro/internal/db"
	"repro/internal/provenance"
	"repro/internal/storage"
	"repro/internal/value"
)

// E2Point is one scale point of the declarative-query latency sweep.
type E2Point struct {
	Events    int
	LoadMs    float64
	QueryMs   float64 // the §3.3 debugging query
	AggMs     float64 // a heavier aggregation over all events
	MatchRows int
}

// RunE2 measures declarative-debugging query latency as a function of
// provenance size (paper §3.7: "queries over billions of events in <5s").
//
// Scale substitution (documented in DESIGN.md): the paper ran on a server
// fleet with billions of events; this laptop-scale sweep loads 10⁴–10⁶⁺
// synthetic forum provenance events through the normal provenance writer
// and reports the latency series so the shape (near-linear scan cost,
// interactive latencies) can be compared.
func RunE2(scales []int) ([]E2Point, error) {
	var out []E2Point
	for _, n := range scales {
		pt, err := runE2Point(n)
		if err != nil {
			return nil, err
		}
		out = append(out, *pt)
	}
	return out, nil
}

func runE2Point(events int) (*E2Point, error) {
	prov := db.MustOpenMemory()
	defer prov.Close()
	appDB := db.MustOpenMemory()
	defer appDB.Close()
	if err := appDB.ExecScript(`CREATE TABLE forum_sub (id INTEGER PRIMARY KEY, userId TEXT, forum TEXT, course TEXT)`); err != nil {
		return nil, err
	}
	w, err := provenance.Setup(prov, appDB, provenance.TableMap{"forum_sub": "ForumEvents"})
	if err != nil {
		return nil, err
	}

	// Load synthetic provenance: each "request" is one subscribeUser-like
	// transaction pair generating an execution row and ~2 forum events.
	// One duplicated pair (the needle) is planted mid-stream.
	t0 := time.Now()
	const batchSize = 2000
	var batch []provenance.Event
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if err := w.ApplyBatch(batch); err != nil {
			return err
		}
		batch = batch[:0]
		return nil
	}
	needleAt := (events / 4) * 2 // even, so the 2-step event counter hits it
	evCount := 0
	txn := uint64(0)
	for evCount < events {
		txn++
		user := fmt.Sprintf("U%d", txn%1000)
		forum := fmt.Sprintf("F%d", txn%200)
		typ := "Read"
		if txn%2 == 0 {
			typ = "Insert"
		}
		if evCount == needleAt || evCount == needleAt+2 {
			user, forum, typ = "U1", "F2", "Insert" // the planted duplicate pair
		}
		batch = append(batch, provenance.Event{
			Kind: provenance.KindTxn,
			Txn: db.TxnTrace{
				TxnID:     txn,
				CommitSeq: txn,
				Meta:      db.TxMeta{ReqID: fmt.Sprintf("R%d", txn), Handler: "subscribeUser", Func: "DB.insert"},
				Committed: true,
			},
			Logical: txn,
		})
		if typ == "Insert" {
			batch = append(batch, provenance.Event{
				Kind:  provenance.KindWrite,
				Seq:   txn,
				TxnID: txn,
				Change: storage.Change{
					Table: "forum_sub",
					Op:    storage.OpInsert,
					After: value.Row{value.Int(int64(txn)), value.Text(user), value.Text(forum), value.Text("C1")},
				},
				Logical: txn,
			})
		} else {
			batch = append(batch, provenance.Event{
				Kind: provenance.KindTxn,
				Txn: db.TxnTrace{
					TxnID:     txn + 1_000_000_000, // distinct txn id space for reads
					CommitSeq: txn,
					Meta:      db.TxMeta{ReqID: fmt.Sprintf("R%d", txn), Handler: "subscribeUser", Func: "isSubscribed"},
					Stmts: []db.StmtTrace{{
						Query: "SELECT id FROM forum_sub WHERE userId = ? AND forum = ?",
						Reads: []db.ReadEvent{{Table: "forum_sub", Row: value.Row{value.Int(int64(txn)), value.Text(user), value.Text(forum), value.Text("C1")}}},
					}},
					Committed: true,
				},
				Logical: txn,
			})
		}
		evCount += 2
		if len(batch) >= batchSize {
			if err := flush(); err != nil {
				return nil, err
			}
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	loadMs := float64(time.Since(t0).Nanoseconds()) / 1e6

	// The §3.3 debugging query over the full event table.
	t1 := time.Now()
	res, err := prov.Query(`SELECT Timestamp, ReqId, HandlerName
		FROM Executions as E, ForumEvents as F ON E.TxnId = F.TxnId
		WHERE F.UserId = 'U1' AND F.Forum = 'F2' AND F.Type = 'Insert'
		ORDER BY Timestamp ASC`)
	if err != nil {
		return nil, err
	}
	queryMs := float64(time.Since(t1).Nanoseconds()) / 1e6

	// A heavier aggregation: top handlers by event volume.
	t2 := time.Now()
	if _, err := prov.Query(`SELECT Type, COUNT(*) AS c FROM ForumEvents GROUP BY Type ORDER BY c DESC`); err != nil {
		return nil, err
	}
	aggMs := float64(time.Since(t2).Nanoseconds()) / 1e6

	return &E2Point{
		Events:    events,
		LoadMs:    loadMs,
		QueryMs:   queryMs,
		AggMs:     aggMs,
		MatchRows: len(res.Rows),
	}, nil
}
