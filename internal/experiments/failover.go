package experiments

import (
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/crashtest"
	"repro/internal/db"
	"repro/internal/protocol"
	"repro/internal/repl"
	"repro/internal/server"
)

// FailoverResult is the outcome of the kill-the-primary experiment: open-loop
// writers against a 1 primary + 2 replica cluster, SIGKILL-equivalent death
// of the primary mid-load, promotion of the most-caught-up replica, and a
// differential audit of what survived against what clients were told.
type FailoverResult struct {
	Mode         string // "quorum" or "async"
	SyncReplicas int    // commit acks wait for this many replica confirmations
	Writers      int

	AckedBefore int // writes acknowledged before the kill
	AckedAfter  int // writes acknowledged on the new primary
	Unknown     int // writes whose fate the client never learned (error mid-request)

	FailoverMs    float64 // kill -> first write acknowledged by the new primary
	PromotedEpoch uint64
	PromotedSeq   uint64 // the promotion point (new primary's applied seq)

	// The audit. Survivors is the row count on the new primary after the
	// redirected replica converged. AckedLost counts acknowledged writes
	// missing from the new primary — the number quorum mode must hold at
	// zero and async mode merely records (its acked-loss window is the
	// price of not waiting). Phantoms counts surviving rows no client ever
	// wrote (must be zero in both modes). DiffClean is the full
	// crashtest.StoreDiff of the new primary against an oracle database
	// rebuilt purely from the clients' records of what they sent.
	Survivors int
	AckedLost int
	Phantoms  int
	DiffClean bool

	// StaleFenced: the old primary was brought back (same data directory,
	// same epoch state) and contacted from the new epoch; it must answer
	// subscribers and writers with typed fenced errors.
	StaleFenced bool
}

// failoverWrite is one client-side write record: the exact row the writer
// asked the cluster to commit.
type failoverWrite struct {
	id     int64
	writer int
	n      int64
}

const (
	failoverWriters   = 4
	failoverWarmup    = 400 * time.Millisecond
	failoverPostRun   = 300 * time.Millisecond
	failoverHeartbeat = 50 * time.Millisecond

	// The partition window before the kill: both replicas lose the primary
	// this long while clients keep writing. It is what separates the two
	// modes — async keeps acknowledging commits no replica will ever see
	// (the acked-loss window the result records), quorum stalls those
	// commits unacknowledged, so killing the primary loses none.
	failoverPartition = 150 * time.Millisecond
)

// RunFailover executes the kill-the-primary chaos experiment. syncReplicas
// selects the commit mode: N>0 blocks every commit ack until N replicas
// confirm it (quorum), 0 acknowledges after local durability only (async).
// The returned result carries the audit; callers assert on it.
func RunFailover(syncReplicas int) (*FailoverResult, error) {
	mode := "async"
	if syncReplicas > 0 {
		mode = "quorum"
	}
	dir, err := os.MkdirTemp("", "trod-failover")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	// Primary: disk-backed, file-persisted epoch, quorum per syncReplicas.
	prim, err := db.Open(db.Options{Mode: db.Disk, Path: filepath.Join(dir, "primary.wal")})
	if err != nil {
		return nil, err
	}
	defer prim.Close()
	if err := prim.ExecScript(`CREATE TABLE failover_writes (id INTEGER PRIMARY KEY, writer INTEGER, n INTEGER);`); err != nil {
		return nil, err
	}
	pEpoch, err := repl.OpenEpoch(filepath.Join(dir, "primary.epoch"))
	if err != nil {
		return nil, err
	}
	src := repl.NewSource(prim, repl.SourceOptions{
		Epoch:        pEpoch,
		Heartbeat:    failoverHeartbeat,
		SyncReplicas: syncReplicas,
	})
	psrv, err := server.New(server.Config{DB: prim, Source: src, MaxConns: 64})
	if err != nil {
		return nil, err
	}
	pln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	pdone := make(chan error, 1)
	go func() { pdone <- psrv.Serve(pln) }()
	paddr := pln.Addr().String()

	// Two replicas. Each runs a Source too (sharing its epoch): the moment
	// one is promoted it must feed the other, and quorum mode must keep
	// holding on the new primary.
	type node struct {
		db   *db.DB
		r    *repl.Replica
		srv  *server.Server
		addr string
		done chan error
	}
	nodes := make([]*node, 2)
	for i := range nodes {
		rdb, err := db.Open(db.Options{Mode: db.Disk, Path: filepath.Join(dir, fmt.Sprintf("replica%d.wal", i))})
		if err != nil {
			return nil, err
		}
		epoch, err := repl.OpenEpoch(filepath.Join(dir, fmt.Sprintf("replica%d.epoch", i)))
		if err != nil {
			return nil, err
		}
		rdb.SetReadOnly(true)
		r := repl.StartReplica(rdb, paddr, repl.ReplicaOptions{Epoch: epoch, MinBackoff: 10 * time.Millisecond})
		rsrc := repl.NewSource(rdb, repl.SourceOptions{
			Epoch:        epoch,
			Heartbeat:    failoverHeartbeat,
			SyncReplicas: syncReplicas,
		})
		rsrv, err := server.New(server.Config{DB: rdb, Replica: r, Source: rsrc, MaxConns: 64})
		if err != nil {
			return nil, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		n := &node{db: rdb, r: r, srv: rsrv, addr: ln.Addr().String(), done: make(chan error, 1)}
		go func() { n.done <- rsrv.Serve(ln) }()
		nodes[i] = n
		defer func() {
			r.Stop()
			rdb.Close()
		}()
	}
	for _, n := range nodes {
		if !n.r.WaitForSeq(prim.Store().CurrentSeq(), 20*time.Second) {
			return nil, fmt.Errorf("experiments: replica stuck at %d (%v)", n.r.AppliedSeq(), n.r.LastErr())
		}
	}

	// Open-loop writers through the failover-aware pool: unique primary keys,
	// never retried. A clean response marks the write acked; any error marks
	// it unknown (its fate is ambiguous — the request may or may not have
	// committed before the failure) and the writer moves to a fresh key.
	pool, err := client.NewPool(paddr, []string{nodes[0].addr, nodes[1].addr}, client.Options{PoolSize: failoverWriters * 2})
	if err != nil {
		return nil, err
	}
	defer pool.Close()

	var (
		killMu   sync.Mutex
		killedAt time.Time
		firstAck time.Time
	)
	killTime := func() (time.Time, bool) {
		killMu.Lock()
		defer killMu.Unlock()
		return killedAt, !killedAt.IsZero()
	}
	noteAck := func() {
		killMu.Lock()
		defer killMu.Unlock()
		if !killedAt.IsZero() && firstAck.IsZero() {
			firstAck = time.Now()
		}
	}

	type writerState struct {
		acked       []failoverWrite
		unknown     []failoverWrite
		ackedBefore int
	}
	states := make([]*writerState, failoverWriters)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < failoverWriters; w++ {
		st := &writerState{}
		states[w] = st
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for n := int64(0); ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				// Classify by the kill state at issue time: a success issued
				// after the kill can only have come from the new primary (the
				// dead one's connections are gone), so the first such ack
				// marks the end of the outage.
				_, killedBefore := killTime()
				rec := failoverWrite{id: int64(w)*1_000_000 + n, writer: w, n: n}
				_, err := pool.Exec(`INSERT INTO failover_writes VALUES (?, ?, ?)`, rec.id, rec.writer, rec.n)
				if err == nil {
					st.acked = append(st.acked, rec)
					if killedBefore {
						noteAck()
					} else {
						st.ackedBefore++
					}
					continue
				}
				// Fate unknown: never retry this id (a retry that conflicts
				// proves application, not durability of the original ack).
				st.unknown = append(st.unknown, rec)
				time.Sleep(5 * time.Millisecond)
			}
		}(w)
	}

	time.Sleep(failoverWarmup)

	// The partition: both replicas are re-pointed at a black hole (a
	// listener that never accepts), severing the primary's feed while
	// clients keep writing. Async mode keeps acknowledging commits nothing
	// replicates; quorum mode stalls them unacknowledged.
	blackhole, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer blackhole.Close()
	for _, n := range nodes {
		n.r.Redirect(blackhole.Addr().String())
	}
	time.Sleep(failoverPartition)

	// The kill: the primary's network face dies abruptly — listener and every
	// session connection closed with no drain, the in-process equivalent of
	// SIGKILL on the server process. The kill is stamped after Kill returns:
	// from that instant no acknowledgement can come from the old primary.
	psrv.Kill()
	<-pdone
	killMu.Lock()
	killedAt = time.Now()
	killMu.Unlock()

	// The harness is the failure detector and operator: wait for both
	// replicas to notice the dead feed, promote the most-caught-up one, and
	// re-point the other at it.
	rcls := make([]*client.Client, len(nodes))
	for i, n := range nodes {
		if rcls[i], err = client.Dial(n.addr, client.Options{PoolSize: 1}); err != nil {
			return nil, err
		}
		defer rcls[i].Close()
	}
	detectDeadline := time.Now().Add(5 * time.Second)
	for {
		disconnected := 0
		for _, rc := range rcls {
			if st, err := rc.Stats(); err == nil && st.ReplConnected == 0 {
				disconnected++
			}
		}
		if disconnected == len(rcls) || time.Now().After(detectDeadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	best := 0
	if nodes[1].r.AppliedSeq() > nodes[0].r.AppliedSeq() {
		best = 1
	}
	other := 1 - best
	promotedEpoch, promotedSeq, err := rcls[best].Promote()
	if err != nil {
		return nil, fmt.Errorf("experiments: promote: %w", err)
	}
	nodes[other].r.Redirect(nodes[best].addr)

	// Writers find the new primary through the pool's re-discovery; wait for
	// the first post-kill ack, run a while longer, then stop the load.
	ackDeadline := time.Now().Add(15 * time.Second)
	for {
		killMu.Lock()
		acked := !firstAck.IsZero()
		killMu.Unlock()
		if acked || time.Now().After(ackDeadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(failoverPostRun)
	close(stop)
	wg.Wait()
	killMu.Lock()
	if firstAck.IsZero() {
		killMu.Unlock()
		return nil, fmt.Errorf("experiments: no write succeeded on the new primary within 15s of the kill")
	}
	failoverMs := float64(firstAck.Sub(killedAt).Microseconds()) / 1000
	killMu.Unlock()

	// Drain: the redirected replica must converge on the new primary.
	npdb := nodes[best].db
	if !nodes[other].r.WaitForSeq(npdb.Store().CurrentSeq(), 20*time.Second) {
		return nil, fmt.Errorf("experiments: redirected replica stuck at %d (%v)",
			nodes[other].r.AppliedSeq(), nodes[other].r.LastErr())
	}

	// The audit. Survivors come straight from the new primary's store; the
	// oracle database is rebuilt from the clients' own records: every write
	// they were told succeeded, plus every unknown write that turns out to
	// have survived. Acked writes missing from the survivors are lost
	// acknowledgements — the failure quorum mode exists to prevent.
	res := &FailoverResult{
		Mode:          mode,
		SyncReplicas:  syncReplicas,
		Writers:       failoverWriters,
		FailoverMs:    failoverMs,
		PromotedEpoch: promotedEpoch,
		PromotedSeq:   promotedSeq,
	}
	acked := map[int64]failoverWrite{}
	unknown := map[int64]failoverWrite{}
	for _, st := range states {
		res.AckedBefore += st.ackedBefore
		res.AckedAfter += len(st.acked) - st.ackedBefore
		res.Unknown += len(st.unknown)
		for _, rec := range st.acked {
			acked[rec.id] = rec
		}
		for _, rec := range st.unknown {
			unknown[rec.id] = rec
		}
	}
	rows, err := npdb.Query(`SELECT id FROM failover_writes`)
	if err != nil {
		return nil, err
	}
	survived := map[int64]bool{}
	for _, row := range rows.Rows {
		id := row[0].AsInt()
		survived[id] = true
		if _, ok := acked[id]; ok {
			continue
		}
		if _, ok := unknown[id]; ok {
			continue
		}
		res.Phantoms++
	}
	res.Survivors = len(survived)
	for id := range acked {
		if !survived[id] {
			res.AckedLost++
		}
	}

	oracle, err := db.Open(db.Options{Mode: db.Memory})
	if err != nil {
		return nil, err
	}
	defer oracle.Close()
	if err := oracle.ExecScript(`CREATE TABLE failover_writes (id INTEGER PRIMARY KEY, writer INTEGER, n INTEGER);`); err != nil {
		return nil, err
	}
	insert := func(recs map[int64]failoverWrite) error {
		for id, rec := range recs {
			if !survived[id] {
				continue
			}
			if _, err := oracle.Exec(`INSERT INTO failover_writes VALUES (?, ?, ?)`, rec.id, rec.writer, rec.n); err != nil {
				return err
			}
		}
		return nil
	}
	if err := insert(acked); err != nil {
		return nil, err
	}
	if err := insert(unknown); err != nil {
		return nil, err
	}
	res.DiffClean = res.Phantoms == 0 && res.AckedLost == 0 &&
		crashtest.StoreDiff(npdb.Store(), oracle.Store()) == ""
	if mode == "async" {
		// Async mode records its acked-loss window instead of asserting on
		// it; DiffClean then only claims value fidelity of what did survive.
		res.DiffClean = res.Phantoms == 0 && crashtest.StoreDiff(npdb.Store(), oracle.Store()) == ""
	}

	// The zombie: bring the old primary's server back on its data directory
	// and epoch state, contact it from the new epoch, and verify it is
	// fenced — it may neither feed subscribers nor ack writes.
	res.StaleFenced, err = proveFenced(prim, src, promotedEpoch)
	if err != nil {
		return nil, err
	}

	// Teardown.
	for _, n := range nodes {
		n.r.Stop()
	}
	nodes[best].srv.Kill()
	nodes[other].srv.Kill()
	<-nodes[best].done
	<-nodes[other].done
	return res, nil
}

// proveFenced restarts the deposed primary's network face, delivers it the
// news of the new epoch the way a real cluster would (a subscriber from the
// new epoch contacts it), and checks both fencing obligations: subscribers
// get a typed fenced refusal, and writes fail with the typed fenced error.
func proveFenced(prim *db.DB, src *repl.Source, newEpoch uint64) (bool, error) {
	zsrv, err := server.New(server.Config{DB: prim, Source: src, MaxConns: 8})
	if err != nil {
		return false, err
	}
	zln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return false, err
	}
	zdone := make(chan error, 1)
	go func() { zdone <- zsrv.Serve(zln) }()
	defer func() {
		zsrv.Kill()
		<-zdone
	}()

	// A new-epoch subscriber: the zombie must fence itself and refuse.
	conn, err := net.DialTimeout("tcp", zln.Addr().String(), 2*time.Second)
	if err != nil {
		return false, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	sub := &protocol.Message{Type: protocol.MsgSubscribe, FromSeq: prim.Store().CurrentSeq(), Epoch: newEpoch}
	if err := protocol.WriteMessage(conn, sub); err != nil {
		return false, err
	}
	resp, err := protocol.ReadMessage(conn, protocol.MaxReplFrame)
	if err != nil {
		return false, err
	}
	subFenced := resp.Type == protocol.MsgError && resp.Code == protocol.CodeFenced

	// A write: the fenced zombie must reject it with the typed error.
	zc, err := client.Dial(zln.Addr().String(), client.Options{PoolSize: 1})
	if err != nil {
		return false, err
	}
	defer zc.Close()
	_, werr := zc.Exec(`INSERT INTO failover_writes VALUES (?, ?, ?)`, int64(-1), -1, -1)
	writeFenced := werr != nil && protocol.IsFenced(werr)
	if werr == nil {
		return false, errors.New("experiments: fenced old primary accepted a write")
	}
	return subFenced && writeFenced, nil
}
