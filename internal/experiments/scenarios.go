package experiments

import (
	"fmt"
	"strings"

	"repro/internal/db"
	"repro/internal/detect"
	"repro/internal/replay"
	"repro/internal/retro"
	"repro/internal/runtime"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Scenario bundles the canonical MDL-59854 production run used by E3–E7:
// R1/R2 racing subscribeUser(U1, F2), then R3 fetchSubscribers failing.
type Scenario struct {
	Prod   *db.DB
	Prov   *db.DB
	App    *runtime.App
	Tracer *trace.Tracer
	// LateReq/EarlyReq order the two racing requests by insert commit.
	LateReq, EarlyReq string
	// FetchErr is R3's production error (the bug's symptom).
	FetchErr error
}

// Close releases the scenario's resources.
func (s *Scenario) Close() {
	s.Tracer.Close()
	s.Prod.Close()
	s.Prov.Close()
}

// NewScenario reproduces the paper's running example in production with
// tracing attached.
func NewScenario() (*Scenario, error) {
	prod := db.MustOpenMemory()
	prov := db.MustOpenMemory()
	if err := workload.SetupMoodle(prod); err != nil {
		return nil, err
	}
	app := runtime.New(prod)
	workload.RegisterMoodle(app)
	tr, err := trace.Attach(app, prov, trace.Config{Tables: workload.MoodleTables})
	if err != nil {
		return nil, err
	}
	sc := &Scenario{Prod: prod, Prov: prov, App: app, Tracer: tr}
	if err := workload.RaceSubscribe(app, "R1", "R2", "U1", "F2"); err != nil {
		return nil, err
	}
	_, sc.FetchErr = app.InvokeWithReqID("R3", "fetchSubscribers", runtime.Args{"forum": "F2"})
	if sc.FetchErr == nil {
		return nil, fmt.Errorf("experiments: the race did not manifest")
	}
	if err := tr.Flush(); err != nil {
		return nil, err
	}
	res, err := prov.Query(`SELECT Timestamp, ReqId FROM Executions as E, ForumEvents as F
		ON E.TxnId = F.TxnId
		WHERE F.UserId = 'U1' AND F.Forum = 'F2' AND F.Type = 'Insert'
		ORDER BY Timestamp ASC`)
	if err != nil {
		return nil, err
	}
	if len(res.Rows) != 2 {
		return nil, fmt.Errorf("experiments: debug query returned %d rows, want 2", len(res.Rows))
	}
	sc.EarlyReq = res.Rows[0][1].AsText()
	sc.LateReq = res.Rows[1][1].AsText()
	return sc, nil
}

// RunE3Table1 regenerates the paper's Table 1 (the transaction execution
// log for the scenario's committed transactions).
func RunE3Table1(sc *Scenario) (*db.Rows, error) {
	return sc.Prov.Query(`SELECT TxnId, Timestamp, HandlerName, ReqId, Func
		FROM Executions WHERE Committed = TRUE ORDER BY Timestamp`)
}

// RunE4Table2 regenerates the paper's Table 2 (the data operations log).
func RunE4Table2(sc *Scenario) (*db.Rows, error) {
	return sc.Prov.Query(`SELECT TxnId, Type, Query, UserId, Forum
		FROM ForumEvents ORDER BY EvId`)
}

// RunE5DebugQuery runs the §3.3 query and validates its shape: exactly two
// rows, same handler, two distinct requests, ascending timestamps.
func RunE5DebugQuery(sc *Scenario) (*db.Rows, error) {
	res, err := sc.Prov.Query(`SELECT Timestamp, ReqId, HandlerName
		FROM Executions as E, ForumEvents as F
		ON E.TxnId = F.TxnId
		WHERE F.UserId = 'U1' AND F.Forum = 'F2'
		AND F.Type = 'Insert'
		ORDER BY Timestamp ASC`)
	if err != nil {
		return nil, err
	}
	if len(res.Rows) != 2 {
		return nil, fmt.Errorf("E5: got %d rows, want 2", len(res.Rows))
	}
	if res.Rows[0][2].AsText() != "subscribeUser" || res.Rows[1][2].AsText() != "subscribeUser" {
		return nil, fmt.Errorf("E5: wrong handlers %v", res.Rows)
	}
	if res.Rows[0][1].AsText() == res.Rows[1][1].AsText() {
		return nil, fmt.Errorf("E5: rows should come from two requests")
	}
	if res.Rows[0][0].AsInt() >= res.Rows[1][0].AsInt() {
		return nil, fmt.Errorf("E5: timestamps not ascending")
	}
	return res, nil
}

// RunE6Replay replays the late request and validates Figure 3 (top):
// faithful, two steps, foreign write injected before the second.
func RunE6Replay(sc *Scenario) (*replay.Report, error) {
	rp := replay.New(sc.Prod, sc.Tracer.Writer())
	report, err := rp.Replay(sc.LateReq, workload.RegisterMoodle, replay.Options{})
	if err != nil {
		return nil, err
	}
	if report.Diverged {
		return nil, fmt.Errorf("E6: replay diverged: %v", report.Diffs)
	}
	if len(report.Steps) != 2 || len(report.Steps[1].Injected) == 0 {
		return nil, fmt.Errorf("E6: unexpected steps %+v", report.Steps)
	}
	if len(report.ForeignWriters) != 1 || report.ForeignWriters[0] != sc.EarlyReq {
		return nil, fmt.Errorf("E6: foreign writers %v", report.ForeignWriters)
	}
	return report, nil
}

// RunE7Retro retro-tests the fix over R1/R2/R3 and validates Figure 3
// (bottom): both request orders explored, every interleaving clean.
func RunE7Retro(sc *Scenario) (*retro.Report, error) {
	rt := retro.New(sc.Prod, sc.Tracer.Writer())
	report, err := rt.Run([]string{"R1", "R2", "R3"}, workload.RegisterMoodleFixed, retro.Options{
		Invariant: noForumDuplicates,
	})
	if err != nil {
		return nil, err
	}
	if len(report.Schedules) < 2 {
		return nil, fmt.Errorf("E7: only %d schedules explored", len(report.Schedules))
	}
	if !report.AllInvariantsHold() {
		return nil, fmt.Errorf("E7: the fix failed an interleaving")
	}
	return report, nil
}

func noForumDuplicates(dev *db.DB) error {
	rows, err := dev.Query(`SELECT userId, forum, COUNT(*) AS c FROM forum_sub
		GROUP BY userId, forum HAVING COUNT(*) > 1`)
	if err != nil {
		return err
	}
	if len(rows.Rows) > 0 {
		return fmt.Errorf("duplicate subscription (%s, %s)", rows.Rows[0][0].AsText(), rows.Rows[0][1].AsText())
	}
	return nil
}

// SecurityScenario is the §4.2 production run used by E8/E9.
type SecurityScenario struct {
	Prod, Prov *db.DB
	App        *runtime.App
	Tracer     *trace.Tracer
}

// Close releases resources.
func (s *SecurityScenario) Close() {
	s.Tracer.Close()
	s.Prod.Close()
	s.Prov.Close()
}

// NewSecurityScenario seeds the profile service and serves mixed
// legitimate/malicious traffic.
func NewSecurityScenario() (*SecurityScenario, error) {
	prod := db.MustOpenMemory()
	prov := db.MustOpenMemory()
	if err := workload.SetupProfiles(prod); err != nil {
		return nil, err
	}
	app := runtime.New(prod)
	workload.RegisterProfiles(app)
	tr, err := trace.Attach(app, prov, trace.Config{Tables: workload.ProfileTables})
	if err != nil {
		return nil, err
	}
	traffic := []struct {
		id, handler string
		args        runtime.Args
	}{
		{"R1", "updateProfile", runtime.Args{"userName": "alice", "caller": "alice", "bio": "hello"}},
		{"R2", "viewProfile", runtime.Args{"userName": "alice"}},
		{"R3", "updateProfile", runtime.Args{"userName": "alice", "caller": "mallory", "bio": "pwned"}},
		{"R4", "sendMessage", runtime.Args{"recipient": "friend@x", "body": "hi"}},
		{"R5", "exfiltrate", runtime.Args{"docId": 1, "dropbox": "evil@drop"}},
	}
	for _, r := range traffic {
		if _, err := app.InvokeWithReqID(r.id, r.handler, r.args); err != nil {
			return nil, fmt.Errorf("security traffic %s: %w", r.id, err)
		}
	}
	if err := tr.Flush(); err != nil {
		return nil, err
	}
	return &SecurityScenario{Prod: prod, Prov: prov, App: app, Tracer: tr}, nil
}

// RunE8AccessControl runs the §4.2 User Profiles detection and validates
// that exactly the illegal update (R3) is flagged.
func RunE8AccessControl(sc *SecurityScenario) ([]detect.Violation, error) {
	violations, err := detect.UserProfiles(sc.Tracer.Writer(), "profiles", "UserName", "UpdatedBy")
	if err != nil {
		return nil, err
	}
	if len(violations) != 1 || violations[0].ReqID != "R3" {
		return nil, fmt.Errorf("E8: violations = %+v", violations)
	}
	return violations, nil
}

// RunE9Exfiltration runs the workflow exfiltration tracing and validates
// that exactly R5's workflow is found with its full path.
func RunE9Exfiltration(sc *SecurityScenario) ([]detect.ExfilFinding, error) {
	findings, err := detect.Exfiltration(sc.Tracer.Writer(), "documents", "outbox")
	if err != nil {
		return nil, err
	}
	if len(findings) != 1 || findings[0].ReqID != "R5" {
		return nil, fmt.Errorf("E9: findings = %+v", findings)
	}
	path := strings.Join(findings[0].WorkflowPath, "->")
	if !strings.Contains(path, "readDocument") || !strings.Contains(path, "sendMessage") {
		return nil, fmt.Errorf("E9: workflow path %q incomplete", path)
	}
	return findings, nil
}

// CaseStudyResult summarises one §4.1 case-study bug's TROD treatment.
type CaseStudyResult struct {
	Bug          string
	Reproduced   bool
	Located      bool // provenance query finds the culprit requests
	Replayed     bool // faithful replay of a culprit request
	FixValidated bool // retroactive run of the fix passes
	Notes        string
}

// RunE10CaseStudies runs the MW-44325, MW-39225 and MDL-60669 case studies
// end to end.
func RunE10CaseStudies() ([]CaseStudyResult, error) {
	var out []CaseStudyResult
	r1, err := caseMW44325()
	if err != nil {
		return nil, err
	}
	out = append(out, *r1)
	r2, err := caseMW39225()
	if err != nil {
		return nil, err
	}
	out = append(out, *r2)
	r3, err := caseMDL60669()
	if err != nil {
		return nil, err
	}
	out = append(out, *r3)
	r4, err := caseOverbooking()
	if err != nil {
		return nil, err
	}
	out = append(out, *r4)
	return out, nil
}

// caseOverbooking is the travel-reservation overbooking TOCTOU — the
// paper's introductory application domain, exercised end to end.
func caseOverbooking() (*CaseStudyResult, error) {
	res := &CaseStudyResult{Bug: "Travel overbooking (TOCTOU on seat counter)"}
	prod := db.MustOpenMemory()
	prov := db.MustOpenMemory()
	if err := workload.SetupTravel(prod); err != nil {
		return nil, err
	}
	app := runtime.New(prod)
	workload.RegisterTravel(app)
	tr, err := trace.Attach(app, prov, trace.Config{Tables: workload.TravelTables})
	if err != nil {
		return nil, err
	}
	defer func() { tr.Close(); prod.Close(); prov.Close() }()

	if _, err := app.InvokeWithReqID("R1", "bookTrip", runtime.Args{"flightId": "F100", "customer": "early"}); err != nil {
		return nil, err
	}
	if err := workload.RaceHandlers(app, "bookTrip", "recordBooking", "R2", "R3",
		runtime.Args{"flightId": "F100", "customer": "alice"},
		runtime.Args{"flightId": "F100", "customer": "bob"}); err != nil {
		return nil, err
	}
	_, auditErr := app.InvokeWithReqID("R4", "auditFlight", runtime.Args{"flightId": "F100"})
	res.Reproduced = auditErr != nil
	if err := tr.Flush(); err != nil {
		return nil, err
	}

	rows, err := prov.Query(`SELECT E.ReqId FROM Executions as E, BookingEvents as B
		ON E.TxnId = B.TxnId WHERE B.Type = 'Insert' AND B.flightId = 'F100'
		ORDER BY E.Timestamp`)
	if err != nil {
		return nil, err
	}
	res.Located = len(rows.Rows) == 3 // three bookings on a two-seat flight
	if res.Located {
		late := rows.Rows[2][0].AsText()
		rp := replay.New(prod, tr.Writer())
		report, err := rp.Replay(late, workload.RegisterTravel, replay.Options{})
		if err != nil {
			return nil, err
		}
		res.Replayed = !report.Diverged && len(report.ForeignWriters) >= 1
	}
	rt := retro.New(prod, tr.Writer())
	report, err := rt.Run([]string{"R2", "R3"}, workload.RegisterTravelFixed, retro.Options{
		Invariant: func(dev *db.DB) error {
			r, err := dev.Query(`SELECT flightId FROM flights WHERE booked > seats`)
			if err != nil {
				return err
			}
			if len(r.Rows) > 0 {
				return fmt.Errorf("oversold")
			}
			return nil
		},
	})
	if err != nil {
		return nil, err
	}
	res.FixValidated = report.AllInvariantsHold()
	return res, nil
}

func newWikiScenario() (*db.DB, *db.DB, *runtime.App, *trace.Tracer, error) {
	prod := db.MustOpenMemory()
	prov := db.MustOpenMemory()
	if err := workload.SetupMediaWiki(prod); err != nil {
		return nil, nil, nil, nil, err
	}
	app := runtime.New(prod)
	workload.RegisterMediaWiki(app)
	tr, err := trace.Attach(app, prov, trace.Config{Tables: workload.MediaWikiTables})
	if err != nil {
		return nil, nil, nil, nil, err
	}
	return prod, prov, app, tr, nil
}

func caseMW44325() (*CaseStudyResult, error) {
	res := &CaseStudyResult{Bug: "MW-44325 (duplicate site links)"}
	prod, prov, app, tr, err := newWikiScenario()
	if err != nil {
		return nil, err
	}
	defer func() { tr.Close(); prod.Close(); prov.Close() }()

	if err := workload.RaceHandlers(app, "addSiteLink", "insertSiteLink", "R1", "R2",
		runtime.Args{"pageId": 1, "url": "https://dup"},
		runtime.Args{"pageId": 1, "url": "https://dup"}); err != nil {
		return nil, err
	}
	if _, err := app.InvokeWithReqID("R3", "checkSiteLinks", nil); err != nil {
		res.Reproduced = true
	}
	if err := tr.Flush(); err != nil {
		return nil, err
	}
	rows, err := prov.Query(`SELECT E.ReqId FROM Executions as E, SiteLinkEvents as L
		ON E.TxnId = L.TxnId WHERE L.Type = 'Insert' AND L.url = 'https://dup'
		ORDER BY E.Timestamp`)
	if err != nil {
		return nil, err
	}
	res.Located = len(rows.Rows) == 2
	if res.Located {
		late := rows.Rows[1][0].AsText()
		rp := replay.New(prod, tr.Writer())
		report, err := rp.Replay(late, workload.RegisterMediaWiki, replay.Options{})
		if err != nil {
			return nil, err
		}
		res.Replayed = !report.Diverged && len(report.ForeignWriters) == 1
	}
	rt := retro.New(prod, tr.Writer())
	report, err := rt.Run([]string{"R1", "R2", "R3"}, workload.RegisterMediaWikiFixed, retro.Options{
		Invariant: func(dev *db.DB) error {
			r, err := dev.Query(`SELECT url FROM sitelinks GROUP BY url HAVING COUNT(*) > 1`)
			if err != nil {
				return err
			}
			if len(r.Rows) > 0 {
				return fmt.Errorf("duplicate link")
			}
			return nil
		},
	})
	if err != nil {
		return nil, err
	}
	res.FixValidated = report.AllInvariantsHold()
	return res, nil
}

func caseMW39225() (*CaseStudyResult, error) {
	res := &CaseStudyResult{Bug: "MW-39225 (wrong article sizes)"}
	prod, prov, app, tr, err := newWikiScenario()
	if err != nil {
		return nil, err
	}
	defer func() { tr.Close(); prod.Close(); prov.Close() }()

	if err := workload.RaceHandlers(app, "editPage", "updatePageSize", "R1", "R2",
		runtime.Args{"pageId": 1, "content": "tiny"},
		runtime.Args{"pageId": 1, "content": "a considerably longer article body"}); err != nil {
		return nil, err
	}
	_, infoErr := app.InvokeWithReqID("R3", "pageInfo", runtime.Args{"pageId": 1})
	if err := tr.Flush(); err != nil {
		return nil, err
	}
	// The race is "rare and random": the bug manifests when the cached size
	// disagrees with the latest revision. Either way, provenance locates
	// both size writers.
	res.Reproduced = infoErr != nil
	rows, err := prov.Query(`SELECT E.ReqId FROM Executions as E, PageEvents as P
		ON E.TxnId = P.TxnId WHERE P.Type = 'Update' ORDER BY E.Timestamp`)
	if err != nil {
		return nil, err
	}
	res.Located = len(rows.Rows) == 2
	if res.Located {
		late := rows.Rows[1][0].AsText()
		rp := replay.New(prod, tr.Writer())
		report, err := rp.Replay(late, workload.RegisterMediaWiki, replay.Options{})
		if err != nil {
			return nil, err
		}
		res.Replayed = !report.Diverged
	}
	rt := retro.New(prod, tr.Writer())
	report, err := rt.Run([]string{"R1", "R2", "R3"}, workload.RegisterMediaWikiFixed, retro.Options{})
	if err != nil {
		return nil, err
	}
	res.FixValidated = report.AllInvariantsHold()
	if !res.Reproduced {
		res.Notes = "size mismatch did not manifest this run (MW-39225 is 'rare and random'); provenance still locates both writers"
	}
	return res, nil
}

func caseMDL60669() (*CaseStudyResult, error) {
	res := &CaseStudyResult{Bug: "MDL-60669 (restore fails on stale duplicates)"}
	prod := db.MustOpenMemory()
	prov := db.MustOpenMemory()
	if err := workload.SetupMoodle(prod); err != nil {
		return nil, err
	}
	app := runtime.New(prod)
	workload.RegisterMoodle(app)
	tr, err := trace.Attach(app, prov, trace.Config{Tables: workload.MoodleTables})
	if err != nil {
		return nil, err
	}
	defer func() { tr.Close(); prod.Close(); prov.Close() }()

	if err := workload.RaceSubscribe(app, "R1", "R2", "U1", "F2"); err != nil {
		return nil, err
	}
	if _, err := app.InvokeWithReqID("R3", "deleteCourse", runtime.Args{"course": "C1"}); err != nil {
		return nil, err
	}
	_, restoreErr := app.InvokeWithReqID("R4", "restoreCourse", runtime.Args{"course": "C1"})
	res.Reproduced = restoreErr != nil
	if err := tr.Flush(); err != nil {
		return nil, err
	}

	// Locate: which earlier requests put the duplicates in the course?
	rows, err := prov.Query(`SELECT E.ReqId FROM Executions as E, ForumEvents as F
		ON E.TxnId = F.TxnId WHERE F.Type = 'Insert' AND F.course = 'C1'
		ORDER BY E.Timestamp`)
	if err != nil {
		return nil, err
	}
	res.Located = len(rows.Rows) == 2

	// Replay the failing restore faithfully.
	rp := replay.New(prod, tr.Writer())
	report, err := rp.Replay("R4", workload.RegisterMoodle, replay.Options{})
	if err != nil {
		return nil, err
	}
	res.Replayed = !report.Diverged && report.Err != nil

	// Retroactive validation of the MDL-59854 patch over ALL four requests:
	// with the patch applied from the start, no duplicates ever exist, so
	// the restore succeeds — validating the fix before production (§4.1).
	rt := retro.New(prod, tr.Writer())
	retroReport, err := rt.Run([]string{"R1", "R2", "R3", "R4"}, workload.RegisterMoodleFixed, retro.Options{})
	if err != nil {
		return nil, err
	}
	res.FixValidated = retroReport.AllInvariantsHold()
	return res, nil
}
