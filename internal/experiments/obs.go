package experiments

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/db"
	"repro/internal/metrics"
	"repro/internal/protocol"
	"repro/internal/runtime"
	"repro/internal/server"
	"repro/internal/span"
	"repro/internal/trace"
	"repro/internal/wal"
	"repro/internal/workload"
)

// ObsResult is the observability experiment's outcome: three adversarial
// workloads driven against fully instrumented servers, with the Prometheus
// endpoint scraped mid-run (not after the dust settles), the slow-query
// log's provenance links resolved against the trace database, and span
// capture read back to locate where a thrashing workload's time went.
type ObsResult struct {
	HotKey    *ObsHotKeyResult
	OpenLoop  *ObsOpenLoopResult
	PlanCache *ObsPlanCacheResult
}

// ObsHotKeyResult records the hot-key conflict storm: read-modify-write
// transactions over a tiny key space, no client-side retries, so OCC aborts
// surface as typed conflicts and drive the conflict counters that healthy
// workloads never move.
type ObsHotKeyResult struct {
	Workers      int
	OpsPerWorker int
	Keys         int
	Committed    int
	Conflicts    int     // typed conflict errors surfaced to clients
	ConflictPct  float64 // conflicts / attempts
	DurationMs   float64

	ServerConflicts uint64 // server's typed-conflict counter after drain
	DBConflicts     uint64 // engine-level OCC aborts (includes autocommit retries)

	ScrapeSeries     int     // distinct series on /metrics mid-run
	MidRunConflicts  float64 // trod_db_conflicts_total as scraped mid-storm
	MidRunHealthzOK  bool    // /healthz answered 200 while serving
	SlowQueryLines   int     // statements past the slow threshold
	SlowIDsChecked   int     // slow-query request IDs resolved against provenance
	SlowIDsResolved  int     // ... of which were found (must equal checked)
	TracerEvents     uint64
	TracerDrops      uint64
	ScrapeConsistent bool // mid-run scrape parsed and covered all four layers
}

// ObsOpenLoopResult records the bursty open-loop arrival experiment:
// connection volleys land on a deliberately small server regardless of how
// far behind it is, filling the admission queue and forcing typed busy
// rejections — the backpressure path, observed through the queue-wait
// histogram rather than inferred.
type ObsOpenLoopResult struct {
	Arrivals     int
	Bursts       int
	PerBurst     int
	MaxConns     int
	QueueDepth   int
	Served       int
	RejectedBusy int
	DurationMs   float64

	QueueWaitObs   uint64  // queue-wait histogram count (admitted + timed out)
	QueueWaitAvgMs float64 // histogram sum/count
	MidRunWaiters  float64 // trod_server_queued_conns as scraped mid-burst
	ScrapeSeries   int
}

// ObsPlanCacheResult records the multi-tenant plan-cache pressure run:
// hundreds-to-thousands of per-tenant query texts round-robined against a
// deliberately small query-text-keyed plan cache. The cache collapses —
// near-zero hit ratio, repeated wholesale resets — and span capture is the
// instrument that proves where the time went: plan_compile dominating
// execute across the sampled traces.
type ObsPlanCacheResult struct {
	Workers      int
	OpsPerWorker int
	Tenants      int
	CacheCap     int
	Queries      int // tenant queries issued
	DurationMs   float64

	CacheHits   uint64
	CacheMisses uint64
	CacheResets uint64
	HitPct      float64 // hits / (hits + misses)

	TracesKept      int     // sampled traces retained by the collector
	PlanCompileMs   float64 // summed plan_compile time across kept traces
	ExecuteMs       float64 // summed execute time across kept traces
	CompileShare    float64 // plan-compile share of compile+execute, percent
	ScrapeCompileN  float64 // trod_span_stage_seconds_count{stage="plan_compile"}
	ScrapeHasSeries bool    // the stage histogram series appeared on /metrics
}

// scrapeMetrics GETs a /metrics endpoint and parses the exposition text into
// series-name → value (labels kept in the name).
func scrapeMetrics(url string) (map[string]float64, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("scrape %s: HTTP %d", url, resp.StatusCode)
	}
	out := map[string]float64{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			return nil, fmt.Errorf("malformed exposition line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("malformed value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out, sc.Err()
}

// lockedBuffer collects the slow-query log concurrently with the sessions
// writing it.
type lockedBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *lockedBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuffer) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

const (
	obsHotKeys        = 4
	obsLedgerRows     = 20_000
	obsFsyncDelay     = 200 * time.Microsecond
	obsSlowThreshold  = 250 * time.Microsecond
	obsSlowIDsToCheck = 50
)

// RunObsHotKey drives the hot-key conflict storm against a fully
// instrumented server (disk WAL with modelled fsync, runtime + tracer for
// provenance, slow-query log, metrics endpoint) and audits the
// observability surfaces themselves: the mid-run scrape must show all four
// layers, and every sampled slow-query request ID must resolve in the
// provenance database.
func RunObsHotKey(workers, opsPerWorker int) (*ObsHotKeyResult, error) {
	if workers <= 0 || opsPerWorker <= 0 {
		return nil, fmt.Errorf("experiments: obs hotkey needs positive workers/ops, got %d/%d", workers, opsPerWorker)
	}
	dir, err := os.MkdirTemp("", "trod-obs")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	prod, err := db.Open(db.Options{Mode: db.Disk, Path: filepath.Join(dir, "obs.wal"), Sync: wal.SyncEachCommit})
	if err != nil {
		return nil, err
	}
	defer prod.Close()
	prod.Log().SetSyncDelay(obsFsyncDelay)
	prov := db.MustOpenMemory()
	defer prov.Close()
	app := runtime.New(prod)
	tr, err := trace.Attach(app, prov, trace.Config{})
	if err != nil {
		return nil, err
	}
	defer tr.Close()

	if err := prod.ExecScript(workload.HotKeySchema); err != nil {
		return nil, err
	}
	for k := 0; k < obsHotKeys; k++ {
		if _, err := prod.Exec(`INSERT INTO counters VALUES (?, 0)`, k); err != nil {
			return nil, err
		}
	}
	// An unindexed ledger big enough that its periodic full-scan aggregate is
	// reliably slower than the slow-query threshold on any host: those
	// statements land in the slow-query log deterministically and carry a
	// full-scan plan shape an operator would recognise.
	if err := prod.ExecScript(`CREATE TABLE ledger (id INTEGER PRIMARY KEY, k INTEGER, amt INTEGER);`); err != nil {
		return nil, err
	}
	for base := 0; base < obsLedgerRows; base += 1000 {
		tx := prod.Begin()
		for i := base; i < base+1000 && i < obsLedgerRows; i++ {
			if _, err := tx.Exec(`INSERT INTO ledger VALUES (?, ?, ?)`, i, i%obsHotKeys, i%97); err != nil {
				tx.Rollback()
				return nil, err
			}
		}
		if err := tx.Commit(); err != nil {
			return nil, err
		}
	}

	var slow lockedBuffer
	srv, err := server.New(server.Config{
		DB:                 prod,
		App:                app,
		MaxConns:           workers + 4,
		TxnTimeout:         30 * time.Second,
		TracerStats:        tr.Counters,
		SlowQueryThreshold: obsSlowThreshold,
		SlowQueryOutput:    &slow,
	})
	if err != nil {
		return nil, err
	}
	reg := metrics.NewRegistry()
	prod.RegisterMetrics(reg)
	srv.RegisterMetrics(reg)
	tr.RegisterMetrics(reg)
	ms, err := metrics.ServeHTTP("127.0.0.1:0", reg, func() error {
		if srv.Draining() {
			return fmt.Errorf("draining")
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	defer ms.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	addr := ln.Addr().String()

	plan := workload.HotKeyPlan(workers, opsPerWorker, obsHotKeys, 42)
	type workerOut struct {
		committed, conflicts int
		err                  error
	}
	outs := make([]workerOut, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out := &outs[w]
			cl, err := client.Dial(addr, client.Options{PoolSize: 1})
			if err != nil {
				out.err = err
				return
			}
			defer cl.Close()
			for n, k := range plan[w] {
				if n%5 == 4 {
					// Periodic unindexed aggregate: reliably slow, so the
					// slow-query log always has material.
					if _, err := cl.Query(`SELECT SUM(amt) FROM ledger WHERE k = ?`, k); err != nil {
						out.err = err
						return
					}
				}
				// Read-modify-write with NO retry: a conflicted commit is the
				// data point, not a nuisance.
				tx, err := cl.Begin()
				if err != nil {
					out.err = err
					return
				}
				res, err := tx.Query(`SELECT n FROM counters WHERE k = ?`, k)
				if err == nil && len(res.Rows) == 1 {
					_, err = tx.Exec(`UPDATE counters SET n = ? WHERE k = ?`, res.Rows[0][0].AsInt()+1, k)
				}
				if err != nil {
					tx.Rollback()
					out.err = err
					return
				}
				if _, err := tx.Commit(); err != nil {
					if protocol.IsConflict(err) {
						out.conflicts++
						continue
					}
					out.err = err
					return
				}
				out.committed++
			}
		}(w)
	}

	// Scrape mid-storm: observability has to work while the system is busy,
	// not only at rest.
	time.Sleep(30 * time.Millisecond)
	series, scrapeErr := scrapeMetrics("http://" + ms.Addr() + "/metrics")
	healthOK := false
	if hr, err := http.Get("http://" + ms.Addr() + "/healthz"); err == nil {
		healthOK = hr.StatusCode == http.StatusOK
		io.Copy(io.Discard, hr.Body)
		hr.Body.Close()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if scrapeErr != nil {
		return nil, fmt.Errorf("experiments: mid-run scrape: %w", scrapeErr)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return nil, fmt.Errorf("experiments: obs shutdown: %w", err)
	}
	if err := <-serveDone; err != nil {
		return nil, fmt.Errorf("experiments: obs serve: %w", err)
	}
	if err := tr.Flush(); err != nil {
		return nil, err
	}

	res := &ObsHotKeyResult{
		Workers:         workers,
		OpsPerWorker:    opsPerWorker,
		Keys:            obsHotKeys,
		DurationMs:      float64(elapsed.Nanoseconds()) / 1e6,
		MidRunHealthzOK: healthOK,
		ScrapeSeries:    len(series),
		MidRunConflicts: series["trod_db_conflicts_total"],
	}
	for i := range outs {
		if outs[i].err != nil {
			return nil, fmt.Errorf("experiments: obs worker %d: %w", i, outs[i].err)
		}
		res.Committed += outs[i].committed
		res.Conflicts += outs[i].conflicts
	}
	if n := res.Committed + res.Conflicts; n > 0 {
		res.ConflictPct = 100 * float64(res.Conflicts) / float64(n)
	}
	st := srv.Stats()
	res.ServerConflicts = st.Conflicts
	res.DBConflicts = st.DBConflicts
	res.TracerEvents, res.TracerDrops, _ = tr.Counters()

	// The scrape must cover all four instrumented layers.
	res.ScrapeConsistent = true
	for _, probe := range []string{
		"trod_server_requests_total", // server
		"trod_db_commits_total",      // db/storage facade
		"trod_wal_syncs_total",       // storage/WAL
		"trod_tracer_events_total",   // tracer
	} {
		if _, ok := series[probe]; !ok {
			res.ScrapeConsistent = false
		}
	}

	// Resolve a sample of slow-query request IDs against provenance: this is
	// the runbook link (slow line → trod_requests → BeginAt/replay).
	raw := strings.TrimSpace(slow.String())
	if raw != "" {
		for _, line := range strings.Split(raw, "\n") {
			res.SlowQueryLines++
			if res.SlowIDsChecked >= obsSlowIDsToCheck {
				continue
			}
			var entry struct {
				ReqID string `json:"req_id"`
			}
			if err := json.Unmarshal([]byte(line), &entry); err != nil {
				return nil, fmt.Errorf("experiments: malformed slow-query line %q: %w", line, err)
			}
			rows, err := prov.Query(`SELECT ReqId FROM trod_requests WHERE ReqId = ?`, entry.ReqID)
			if err != nil {
				return nil, err
			}
			res.SlowIDsChecked++
			if len(rows.Rows) == 1 {
				res.SlowIDsResolved++
			}
		}
	}
	return res, nil
}

// Err returns a non-nil error when the hot-key run failed the observability
// claims it exists to check.
func (r *ObsHotKeyResult) Err() error {
	switch {
	case r.Conflicts == 0:
		return fmt.Errorf("obs hotkey: conflict storm produced zero conflicts")
	case !r.ScrapeConsistent:
		return fmt.Errorf("obs hotkey: mid-run scrape missing a layer's series")
	case !r.MidRunHealthzOK:
		return fmt.Errorf("obs hotkey: /healthz not OK while serving")
	case r.SlowQueryLines == 0:
		return fmt.Errorf("obs hotkey: no slow-query lines at a %v threshold under fsync delay", obsSlowThreshold)
	case r.SlowIDsResolved != r.SlowIDsChecked:
		return fmt.Errorf("obs hotkey: %d/%d slow-query request IDs resolved in provenance",
			r.SlowIDsResolved, r.SlowIDsChecked)
	}
	return nil
}

// RunObsOpenLoop fires bursty open-loop connection volleys at a server sized
// to saturate (small MaxConns, small queue, short queue wait), then reads
// the admission story back out of the metrics: queue-wait histogram
// observations for every admitted or timed-out connection and typed busy
// rejections for the overflow.
func RunObsOpenLoop(bursts, perBurst int) (*ObsOpenLoopResult, error) {
	if bursts <= 0 || perBurst <= 0 {
		return nil, fmt.Errorf("experiments: obs openloop needs positive bursts/perburst, got %d/%d", bursts, perBurst)
	}
	d := db.MustOpenMemory()
	defer d.Close()
	if err := d.ExecScript(`CREATE TABLE pings (id INTEGER PRIMARY KEY, v INTEGER)`); err != nil {
		return nil, err
	}
	if _, err := d.Exec(`INSERT INTO pings VALUES (1, 0)`); err != nil {
		return nil, err
	}

	const maxConns, queueDepth = 4, 8
	srv, err := server.New(server.Config{
		DB:         d,
		MaxConns:   maxConns,
		QueueDepth: queueDepth,
		QueueWait:  100 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	reg := metrics.NewRegistry()
	d.RegisterMetrics(reg)
	srv.RegisterMetrics(reg)
	ms, err := metrics.ServeHTTP("127.0.0.1:0", reg, func() error { return nil })
	if err != nil {
		return nil, err
	}
	defer ms.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	addr := ln.Addr().String()

	offsets := workload.BurstArrivals(bursts, perBurst, 40*time.Millisecond)
	type arrivalOut struct {
		served bool
		busy   bool
		err    error
	}
	outs := make([]arrivalOut, len(offsets))
	var wg sync.WaitGroup
	start := time.Now()
	for i, at := range offsets {
		wg.Add(1)
		go func(i int, at time.Duration) {
			defer wg.Done()
			// Open loop: arrive on schedule no matter how backed up the
			// server is.
			time.Sleep(at - time.Since(start))
			out := &outs[i]
			cl, err := client.Dial(addr, client.Options{PoolSize: 1})
			if err != nil {
				if protocol.IsBusy(err) {
					out.busy = true
					return
				}
				out.err = err
				return
			}
			defer cl.Close()
			// Hold the slot briefly so the next volley actually queues.
			if _, err := cl.Query(`SELECT v FROM pings WHERE id = 1`); err != nil {
				out.err = err
				return
			}
			time.Sleep(5 * time.Millisecond)
			out.served = true
		}(i, at)
	}

	// Scrape mid-burst, while the queue is live.
	time.Sleep(time.Duration(bursts) * 40 * time.Millisecond / 2)
	series, scrapeErr := scrapeMetrics("http://" + ms.Addr() + "/metrics")
	wg.Wait()
	elapsed := time.Since(start)
	if scrapeErr != nil {
		return nil, fmt.Errorf("experiments: mid-run scrape: %w", scrapeErr)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return nil, fmt.Errorf("experiments: obs shutdown: %w", err)
	}
	if err := <-serveDone; err != nil {
		return nil, fmt.Errorf("experiments: obs serve: %w", err)
	}

	res := &ObsOpenLoopResult{
		Arrivals:      len(offsets),
		Bursts:        bursts,
		PerBurst:      perBurst,
		MaxConns:      maxConns,
		QueueDepth:    queueDepth,
		DurationMs:    float64(elapsed.Nanoseconds()) / 1e6,
		MidRunWaiters: series["trod_server_queued_conns"],
		ScrapeSeries:  len(series),
	}
	for i := range outs {
		if outs[i].err != nil {
			return nil, fmt.Errorf("experiments: obs arrival %d: %w", i, outs[i].err)
		}
		if outs[i].served {
			res.Served++
		}
		if outs[i].busy {
			res.RejectedBusy++
		}
	}
	// Read the queue story from the server's own final scrape.
	final, err := scrapeMetrics("http://" + ms.Addr() + "/metrics")
	if err != nil {
		return nil, err
	}
	res.QueueWaitObs = uint64(final["trod_server_queue_wait_seconds_count"])
	if res.QueueWaitObs > 0 {
		res.QueueWaitAvgMs = 1000 * final["trod_server_queue_wait_seconds_sum"] / float64(res.QueueWaitObs)
	}
	return res, nil
}

// Err returns a non-nil error when the open-loop run failed to demonstrate
// the admission machinery it exists to observe.
func (r *ObsOpenLoopResult) Err() error {
	switch {
	case r.Served == 0:
		return fmt.Errorf("obs openloop: no arrivals were served")
	case r.QueueWaitObs == 0:
		return fmt.Errorf("obs openloop: queue-wait histogram recorded nothing")
	case r.Served+r.RejectedBusy != r.Arrivals:
		return fmt.Errorf("obs openloop: %d served + %d rejected != %d arrivals",
			r.Served, r.RejectedBusy, r.Arrivals)
	}
	return nil
}

// obsPlanCacheCap is the deliberately undersized plan-cache capacity for the
// multi-tenant pressure run: far fewer slots than tenant query texts.
const obsPlanCacheCap = 64

// RunObsPlanCache drives the multi-tenant plan-cache pressure workload:
// `tenants` per-tenant tables (distinct query text per tenant) queried
// uniformly against a cache capped at obsPlanCacheCap entries. The cache
// collapses — near-zero hit ratio, repeated wholesale resets — and the run
// proves it with span capture: every request traced (sample rate 1), and the
// aggregated plan_compile time across kept traces dominating execute time.
func RunObsPlanCache(workers, opsPerWorker, tenants int) (*ObsPlanCacheResult, error) {
	if workers <= 0 || opsPerWorker <= 0 || tenants <= 0 {
		return nil, fmt.Errorf("experiments: obs plancache needs positive workers/ops/tenants, got %d/%d/%d",
			workers, opsPerWorker, tenants)
	}
	if tenants <= 4*obsPlanCacheCap {
		return nil, fmt.Errorf("experiments: obs plancache needs tenants >> cache cap, got %d vs %d",
			tenants, obsPlanCacheCap)
	}
	d, err := db.Open(db.Options{PlanCacheCap: obsPlanCacheCap})
	if err != nil {
		return nil, err
	}
	defer d.Close()
	var ddl strings.Builder
	for i := 0; i < tenants; i++ {
		ddl.WriteString(workload.TenantSchema(i))
		ddl.WriteByte('\n')
	}
	if err := d.ExecScript(ddl.String()); err != nil {
		return nil, err
	}
	for base := 0; base < tenants; base += 500 {
		tx := d.Begin()
		for i := base; i < base+500 && i < tenants; i++ {
			if _, err := tx.Exec(workload.TenantSeed(i)); err != nil {
				tx.Rollback()
				return nil, err
			}
		}
		if err := tx.Commit(); err != nil {
			return nil, err
		}
	}

	// Sample rate 1: this run's whole point is reading the thrash out of the
	// spans, so keep every trace and size the ring to hold them all.
	col := span.NewCollector(span.CollectorOptions{Sample: 1, Capacity: workers*opsPerWorker + 16})
	srv, err := server.New(server.Config{
		DB:       d,
		MaxConns: workers + 2,
		Spans:    col,
	})
	if err != nil {
		return nil, err
	}
	reg := metrics.NewRegistry()
	d.RegisterMetrics(reg)
	srv.RegisterMetrics(reg)
	ms, err := metrics.ServeHTTP("127.0.0.1:0", reg, func() error { return nil })
	if err != nil {
		return nil, err
	}
	defer ms.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	addr := ln.Addr().String()

	plan := workload.TenantPlan(workers, opsPerWorker, tenants, 7)
	type workerOut struct {
		queries int
		err     error
	}
	outs := make([]workerOut, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out := &outs[w]
			cl, err := client.Dial(addr, client.Options{PoolSize: 1})
			if err != nil {
				out.err = err
				return
			}
			defer cl.Close()
			for _, t := range plan[w] {
				if _, err := cl.Query(workload.TenantQuery(t)); err != nil {
					out.err = err
					return
				}
				out.queries++
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Scrape before shutdown: the per-stage histogram must expose the
	// compile storm on /metrics, not only in the raw traces.
	series, scrapeErr := scrapeMetrics("http://" + ms.Addr() + "/metrics")

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return nil, fmt.Errorf("experiments: obs shutdown: %w", err)
	}
	if err := <-serveDone; err != nil {
		return nil, fmt.Errorf("experiments: obs serve: %w", err)
	}
	if scrapeErr != nil {
		return nil, fmt.Errorf("experiments: plan-cache scrape: %w", scrapeErr)
	}

	res := &ObsPlanCacheResult{
		Workers:      workers,
		OpsPerWorker: opsPerWorker,
		Tenants:      tenants,
		CacheCap:     obsPlanCacheCap,
		DurationMs:   float64(elapsed.Nanoseconds()) / 1e6,
	}
	for i := range outs {
		if outs[i].err != nil {
			return nil, fmt.Errorf("experiments: obs tenant worker %d: %w", i, outs[i].err)
		}
		res.Queries += outs[i].queries
	}
	st := d.PlanCacheStats()
	res.CacheHits, res.CacheMisses, res.CacheResets = st.Hits, st.Misses, st.Resets
	if n := st.Hits + st.Misses; n > 0 {
		res.HitPct = 100 * float64(st.Hits) / float64(n)
	}
	for _, t := range col.Traces() {
		res.TracesKept++
		bd := span.BreakdownMs(t.Spans)
		res.PlanCompileMs += bd["plan_compile"]
		res.ExecuteMs += bd["execute"]
	}
	if tot := res.PlanCompileMs + res.ExecuteMs; tot > 0 {
		res.CompileShare = 100 * res.PlanCompileMs / tot
	}
	key := `trod_span_stage_seconds_count{stage="plan_compile"}`
	res.ScrapeCompileN, res.ScrapeHasSeries = series[key], false
	if _, ok := series[key]; ok {
		res.ScrapeHasSeries = true
	}
	return res, nil
}

// Err returns a non-nil error when the plan-cache run failed to reproduce the
// collapse, or when span capture failed to locate the time in plan_compile.
func (r *ObsPlanCacheResult) Err() error {
	switch {
	case r.Queries == 0:
		return fmt.Errorf("obs plancache: no tenant queries issued")
	case r.CacheResets == 0:
		return fmt.Errorf("obs plancache: no wholesale cache resets at cap %d under %d tenants",
			r.CacheCap, r.Tenants)
	case r.CacheMisses <= r.CacheHits:
		return fmt.Errorf("obs plancache: hit ratio did not collapse (%d hits, %d misses)",
			r.CacheHits, r.CacheMisses)
	case r.TracesKept == 0:
		return fmt.Errorf("obs plancache: tail sampler at rate 1 kept no traces")
	case r.PlanCompileMs <= r.ExecuteMs:
		return fmt.Errorf("obs plancache: plan_compile (%.2fms) did not dominate execute (%.2fms) in spans",
			r.PlanCompileMs, r.ExecuteMs)
	case !r.ScrapeHasSeries || r.ScrapeCompileN == 0:
		return fmt.Errorf("obs plancache: plan_compile stage histogram missing or empty on /metrics")
	}
	return nil
}

// RunObs runs all three observability workloads at the given scale.
func RunObs(workers, opsPerWorker, bursts, perBurst, tenants int) (*ObsResult, error) {
	hk, err := RunObsHotKey(workers, opsPerWorker)
	if err != nil {
		return nil, err
	}
	if err := hk.Err(); err != nil {
		return nil, err
	}
	ol, err := RunObsOpenLoop(bursts, perBurst)
	if err != nil {
		return nil, err
	}
	if err := ol.Err(); err != nil {
		return nil, err
	}
	pc, err := RunObsPlanCache(workers, 3*opsPerWorker, tenants)
	if err != nil {
		return nil, err
	}
	if err := pc.Err(); err != nil {
		return nil, err
	}
	return &ObsResult{HotKey: hk, OpenLoop: ol, PlanCache: pc}, nil
}
