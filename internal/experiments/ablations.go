package experiments

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/db"
	"repro/internal/replay"
	"repro/internal/retro"
	"repro/internal/runtime"
	"repro/internal/trace"
	"repro/internal/workload"
)

// A1Result compares async ring-buffer tracing against synchronous
// provenance writes on the request path (the design choice behind the
// paper's "<100µs" claim).
type A1Result struct {
	AsyncAvgUs float64
	SyncAvgUs  float64
	Slowdown   float64 // sync / async
}

// RunA1FlushPolicy measures the microservice workload's per-request latency
// under both tracer flush policies.
func RunA1FlushPolicy(requests, users int) (*A1Result, error) {
	run := func(sync bool) (float64, error) {
		prod := db.MustOpenMemory()
		defer prod.Close()
		prov := db.MustOpenMemory()
		defer prov.Close()
		if err := workload.SetupMicroservice(prod, users, 1); err != nil {
			return 0, err
		}
		app := runtime.New(prod)
		workload.RegisterMicroservice(app)
		tr, err := trace.Attach(app, prov, trace.Config{Tables: workload.MicroserviceTables, Sync: sync})
		if err != nil {
			return 0, err
		}
		defer tr.Close()
		handlers, args := workload.RequestMix(requests, users, 2)
		t0 := time.Now()
		for i := range handlers {
			if _, err := app.Invoke(handlers[i], args[i]); err != nil {
				return 0, err
			}
		}
		total := time.Since(t0)
		return float64(total.Nanoseconds()) / 1e3 / float64(requests), nil
	}
	asyncUs, err := run(false)
	if err != nil {
		return nil, err
	}
	syncUs, err := run(true)
	if err != nil {
		return nil, err
	}
	res := &A1Result{AsyncAvgUs: asyncUs, SyncAvgUs: syncUs}
	if asyncUs > 0 {
		res.Slowdown = syncUs / asyncUs
	}
	return res, nil
}

// A2Result compares full and selective snapshot restore for replay.
type A2Result struct {
	BulkRows     int
	FullMs       float64
	SelectiveMs  float64
	Speedup      float64
	BothFaithful bool
}

// RunA2SelectiveRestore builds a production database where the bug's table
// is tiny but an unrelated table holds bulkRows rows, then replays the same
// request with full and selective restore.
func RunA2SelectiveRestore(bulkRows int) (*A2Result, error) {
	prod := db.MustOpenMemory()
	defer prod.Close()
	prov := db.MustOpenMemory()
	defer prov.Close()
	if err := workload.SetupMoodle(prod); err != nil {
		return nil, err
	}
	// The unrelated bulk table (e.g. a big audit log).
	if err := prod.ExecScript(`CREATE TABLE audit_log (id INTEGER PRIMARY KEY, entry TEXT)`); err != nil {
		return nil, err
	}
	tx := prod.Begin()
	for i := 0; i < bulkRows; i++ {
		if _, err := tx.Exec(`INSERT INTO audit_log VALUES (?, ?)`, i, fmt.Sprintf("entry-%d", i)); err != nil {
			tx.Rollback()
			return nil, err
		}
	}
	if err := tx.Commit(); err != nil {
		return nil, err
	}

	app := runtime.New(prod)
	workload.RegisterMoodle(app)
	tr, err := trace.Attach(app, prov, trace.Config{Tables: workload.MoodleTables})
	if err != nil {
		return nil, err
	}
	defer tr.Close()
	if err := workload.RaceSubscribe(app, "R1", "R2", "U1", "F2"); err != nil {
		return nil, err
	}
	if err := tr.Flush(); err != nil {
		return nil, err
	}
	res, err := prov.Query(`SELECT E.ReqId FROM Executions as E, ForumEvents as F
		ON E.TxnId = F.TxnId WHERE F.Type = 'Insert' ORDER BY E.Timestamp`)
	if err != nil || len(res.Rows) < 2 {
		return nil, fmt.Errorf("A2: scenario setup failed: %v", err)
	}
	late := res.Rows[1][0].AsText()

	rp := replay.New(prod, tr.Writer())
	t0 := time.Now()
	full, err := rp.Replay(late, workload.RegisterMoodle, replay.Options{})
	if err != nil {
		return nil, err
	}
	fullMs := float64(time.Since(t0).Nanoseconds()) / 1e6

	t1 := time.Now()
	selective, err := rp.Replay(late, workload.RegisterMoodle, replay.Options{
		Tables: []string{"forum_sub", "courses"},
	})
	if err != nil {
		return nil, err
	}
	selectiveMs := float64(time.Since(t1).Nanoseconds()) / 1e6

	out := &A2Result{
		BulkRows:     bulkRows,
		FullMs:       fullMs,
		SelectiveMs:  selectiveMs,
		BothFaithful: !full.Diverged && !selective.Diverged,
	}
	if selectiveMs > 0 {
		out.Speedup = fullMs / selectiveMs
	}
	return out, nil
}

// A3Result compares interleaving enumeration with and without conflict
// pruning for k concurrent requests.
type A3Result struct {
	Concurrent     int
	PrunedCount    int
	NaiveCount     int
	PrunedBranches int
	NaiveBranches  int
}

// RunA3Interleavings builds one concurrent phase holding two conflicting
// requests (a subscribe race on the same forum) plus `extras` commuting
// requests (messages into an untraced table, so their footprints are
// disjoint from everything), then counts explored schedules with and
// without conflict pruning.
func RunA3Interleavings(extras, maxSchedules int) (*A3Result, error) {
	prod := db.MustOpenMemory()
	defer prod.Close()
	prov := db.MustOpenMemory()
	defer prov.Close()
	if err := workload.SetupMoodle(prod); err != nil {
		return nil, err
	}
	if err := workload.SetupProfiles(prod); err != nil {
		return nil, err
	}
	app := runtime.New(prod)
	workload.RegisterMoodle(app)
	workload.RegisterProfiles(app)
	// Trace ONLY the forum tables: the message requests' outbox writes are
	// untraced, giving them empty (commuting) footprints.
	tr, err := trace.Attach(app, prov, trace.Config{Tables: workload.MoodleTables})
	if err != nil {
		return nil, err
	}
	defer tr.Close()

	// One phase: all requests pass a first-transaction barrier so their
	// recorded execution intervals overlap.
	type spec struct {
		id, handler string
		args        runtime.Args
	}
	specs := []spec{
		{"R1", "subscribeUser", runtime.Args{"userId": "U1", "forum": "F1"}},
		{"R2", "subscribeUser", runtime.Args{"userId": "U1", "forum": "F1"}},
	}
	for i := 0; i < extras; i++ {
		specs = append(specs, spec{
			fmt.Sprintf("R%d", i+3), "sendMessage",
			runtime.Args{"recipient": fmt.Sprintf("u%d@x", i), "body": "hi"},
		})
	}
	barrier := newFirstTxnBarrier(len(specs))
	app.SetTxnInterceptor(barrier)
	errs := make(chan error, len(specs))
	for _, sp := range specs {
		go func(sp spec) {
			_, err := app.InvokeWithReqID(sp.id, sp.handler, sp.args)
			errs <- err
		}(sp)
	}
	for range specs {
		if err := <-errs; err != nil {
			return nil, err
		}
	}
	app.SetTxnInterceptor(nil)
	if err := tr.Flush(); err != nil {
		return nil, err
	}

	reqIDs := make([]string, len(specs))
	for i, sp := range specs {
		reqIDs[i] = sp.id
	}
	register := func(a *runtime.App) {
		workload.RegisterMoodle(a)
		workload.RegisterProfiles(a)
	}
	rt := retro.New(prod, tr.Writer())
	pruned, err := rt.Run(reqIDs, register, retro.Options{MaxSchedules: maxSchedules, SinglePhase: true})
	if err != nil {
		return nil, err
	}
	naive, err := rt.Run(reqIDs, register, retro.Options{MaxSchedules: maxSchedules, DisableConflictPruning: true, SinglePhase: true})
	if err != nil {
		return nil, err
	}
	return &A3Result{
		Concurrent:     len(specs),
		PrunedCount:    len(pruned.Schedules),
		NaiveCount:     len(naive.Schedules),
		PrunedBranches: pruned.BranchedPoints,
		NaiveBranches:  naive.BranchedPoints,
	}, nil
}

// firstTxnBarrier blocks every request's first transaction until all
// expected requests have reached theirs, forcing their recorded execution
// intervals to overlap.
type firstTxnBarrier struct {
	mu      sync.Mutex
	need    int
	arrived map[string]bool
	release chan struct{}
}

func newFirstTxnBarrier(need int) *firstTxnBarrier {
	return &firstTxnBarrier{need: need, arrived: make(map[string]bool), release: make(chan struct{})}
}

// Before implements runtime.TxnInterceptor.
func (b *firstTxnBarrier) Before(c *runtime.Ctx, _ string) error {
	b.mu.Lock()
	first := !b.arrived[c.ReqID]
	if first {
		b.arrived[c.ReqID] = true
		if len(b.arrived) == b.need {
			close(b.release)
		}
	}
	b.mu.Unlock()
	if first {
		<-b.release
	}
	return nil
}

// After implements runtime.TxnInterceptor.
func (b *firstTxnBarrier) After(*runtime.Ctx, string, error) {}
