// Package schema defines table schemas and row-level helpers shared by the
// storage engine and the SQL executor: column metadata, primary-key
// extraction and encoding, type checking, and coercion.
package schema

import (
	"fmt"
	"strings"

	"repro/internal/value"
)

// Column describes one table column.
type Column struct {
	Name    string
	Type    value.Kind
	NotNull bool
}

// Table describes a table: its columns and primary key. Column order is the
// physical row order.
type Table struct {
	Name    string
	Columns []Column
	// PKCols are indices into Columns forming the primary key, in key order.
	PKCols []int

	// colIndex maps lowercased column name to position.
	colIndex map[string]int
}

// NewTable validates and constructs a Table. Every table needs at least one
// column and a non-empty primary key whose columns are NOT NULL.
func NewTable(name string, cols []Column, pk []string) (*Table, error) {
	if name == "" {
		return nil, fmt.Errorf("schema: empty table name")
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("schema: table %q has no columns", name)
	}
	t := &Table{Name: name, Columns: cols, colIndex: make(map[string]int, len(cols))}
	for i, c := range cols {
		key := strings.ToLower(c.Name)
		if _, dup := t.colIndex[key]; dup {
			return nil, fmt.Errorf("schema: table %q has duplicate column %q", name, c.Name)
		}
		t.colIndex[key] = i
	}
	if len(pk) == 0 {
		return nil, fmt.Errorf("schema: table %q has no primary key", name)
	}
	seen := make(map[int]bool, len(pk))
	for _, pc := range pk {
		idx, ok := t.colIndex[strings.ToLower(pc)]
		if !ok {
			return nil, fmt.Errorf("schema: table %q primary key references unknown column %q", name, pc)
		}
		if seen[idx] {
			return nil, fmt.Errorf("schema: table %q primary key repeats column %q", name, pc)
		}
		seen[idx] = true
		t.Columns[idx].NotNull = true
		t.PKCols = append(t.PKCols, idx)
	}
	return t, nil
}

// ColumnIndex returns the position of the named column (case-insensitive) or
// -1 when absent.
func (t *Table) ColumnIndex(name string) int {
	if idx, ok := t.colIndex[strings.ToLower(name)]; ok {
		return idx
	}
	return -1
}

// ColumnNames returns the column names in physical order.
func (t *Table) ColumnNames() []string {
	out := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		out[i] = c.Name
	}
	return out
}

// IsPKColumn reports whether column index i participates in the primary key.
func (t *Table) IsPKColumn(i int) bool {
	for _, p := range t.PKCols {
		if p == i {
			return true
		}
	}
	return false
}

// PrimaryKey extracts the primary-key tuple from a physical row.
func (t *Table) PrimaryKey(row value.Row) value.Row {
	key := make(value.Row, len(t.PKCols))
	for i, c := range t.PKCols {
		key[i] = row[c]
	}
	return key
}

// EncodePrimaryKey returns the order-preserving key bytes for a row.
func (t *Table) EncodePrimaryKey(row value.Row) string {
	return string(value.EncodeKeyRow(nil, t.PrimaryKey(row)))
}

// EncodeKeyTuple encodes an already-extracted key tuple.
func EncodeKeyTuple(key value.Row) string {
	return string(value.EncodeKeyRow(nil, key))
}

// CheckRow validates a physical row against the schema: arity, NOT NULL, and
// type compatibility (with int→float widening). It returns a possibly
// coerced copy of the row.
func (t *Table) CheckRow(row value.Row) (value.Row, error) {
	if len(row) != len(t.Columns) {
		return nil, fmt.Errorf("schema: table %q expects %d columns, got %d", t.Name, len(t.Columns), len(row))
	}
	out := row.Clone()
	for i, col := range t.Columns {
		v, err := Coerce(row[i], col.Type)
		if err != nil {
			return nil, fmt.Errorf("schema: table %q column %q: %w", t.Name, col.Name, err)
		}
		if v.IsNull() && col.NotNull {
			return nil, fmt.Errorf("schema: table %q column %q is NOT NULL", t.Name, col.Name)
		}
		out[i] = v
	}
	return out, nil
}

// Coerce converts v to the target kind where SQL allows it: exact match,
// NULL into any nullable slot, int→float widening, int 0/1→bool, and
// bool→int. Anything else is a type error.
func Coerce(v value.Value, target value.Kind) (value.Value, error) {
	if v.IsNull() {
		return v, nil
	}
	if v.Kind() == target {
		return v, nil
	}
	switch {
	case target == value.KindFloat && v.Kind() == value.KindInt:
		return value.Float(float64(v.AsInt())), nil
	case target == value.KindInt && v.Kind() == value.KindFloat:
		f := v.AsFloat()
		if f == float64(int64(f)) {
			return value.Int(int64(f)), nil
		}
		return value.Null, fmt.Errorf("cannot store non-integral FLOAT %v in INTEGER", f)
	case target == value.KindBool && v.Kind() == value.KindInt:
		switch v.AsInt() {
		case 0:
			return value.Bool(false), nil
		case 1:
			return value.Bool(true), nil
		}
		return value.Null, fmt.Errorf("cannot store INTEGER %d in BOOL", v.AsInt())
	case target == value.KindInt && v.Kind() == value.KindBool:
		if v.AsBool() {
			return value.Int(1), nil
		}
		return value.Int(0), nil
	default:
		return value.Null, fmt.Errorf("cannot store %s in %s", v.Kind(), target)
	}
}

// Clone returns a deep copy of the table definition (schemas are immutable
// once installed, but catalog snapshots copy defensively).
func (t *Table) Clone() *Table {
	cols := make([]Column, len(t.Columns))
	copy(cols, t.Columns)
	pk := make([]int, len(t.PKCols))
	copy(pk, t.PKCols)
	idx := make(map[string]int, len(t.colIndex))
	for k, v := range t.colIndex {
		idx[k] = v
	}
	return &Table{Name: t.Name, Columns: cols, PKCols: pk, colIndex: idx}
}

// String renders the schema as a CREATE TABLE statement.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "CREATE TABLE %s (", t.Name)
	for i, c := range t.Columns {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s %s", c.Name, c.Type)
		if c.NotNull && !t.IsPKColumn(i) {
			sb.WriteString(" NOT NULL")
		}
	}
	sb.WriteString(", PRIMARY KEY (")
	for i, p := range t.PKCols {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(t.Columns[p].Name)
	}
	sb.WriteString("))")
	return sb.String()
}

// Index describes a secondary index over a table.
type Index struct {
	Name    string
	Table   string
	Columns []int // positions in the table's physical row
	Unique  bool
}

// EncodeIndexKey builds the index key for a row: the indexed column values
// (order-preserving) followed, for non-unique indexes, by the primary key to
// disambiguate duplicates.
func (ix *Index) EncodeIndexKey(t *Table, row value.Row) string {
	var buf []byte
	for _, c := range ix.Columns {
		buf = value.EncodeKey(buf, row[c])
	}
	if !ix.Unique {
		buf = value.EncodeKeyRow(buf, t.PrimaryKey(row))
	}
	return string(buf)
}

// EncodeIndexPrefix encodes a prefix of the indexed columns for range scans.
func (ix *Index) EncodeIndexPrefix(vals value.Row) string {
	var buf []byte
	for _, v := range vals {
		buf = value.EncodeKey(buf, v)
	}
	return string(buf)
}
