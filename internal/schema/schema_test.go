package schema

import (
	"strings"
	"testing"

	"repro/internal/value"
)

func forumTable(t *testing.T) *Table {
	t.Helper()
	tbl, err := NewTable("forum_sub", []Column{
		{Name: "userId", Type: value.KindText},
		{Name: "forum", Type: value.KindText},
		{Name: "since", Type: value.KindInt},
	}, []string{"userId", "forum"})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestNewTableValidation(t *testing.T) {
	if _, err := NewTable("", []Column{{Name: "a", Type: value.KindInt}}, []string{"a"}); err == nil {
		t.Error("empty name should fail")
	}
	if _, err := NewTable("t", nil, nil); err == nil {
		t.Error("no columns should fail")
	}
	if _, err := NewTable("t", []Column{{Name: "a", Type: value.KindInt}}, nil); err == nil {
		t.Error("no PK should fail")
	}
	if _, err := NewTable("t", []Column{{Name: "a", Type: value.KindInt}, {Name: "A", Type: value.KindInt}}, []string{"a"}); err == nil {
		t.Error("duplicate column (case-insensitive) should fail")
	}
	if _, err := NewTable("t", []Column{{Name: "a", Type: value.KindInt}}, []string{"b"}); err == nil {
		t.Error("unknown PK column should fail")
	}
	if _, err := NewTable("t", []Column{{Name: "a", Type: value.KindInt}}, []string{"a", "a"}); err == nil {
		t.Error("repeated PK column should fail")
	}
}

func TestColumnLookupAndPK(t *testing.T) {
	tbl := forumTable(t)
	if tbl.ColumnIndex("USERID") != 0 || tbl.ColumnIndex("forum") != 1 || tbl.ColumnIndex("nope") != -1 {
		t.Error("ColumnIndex lookups wrong")
	}
	if !tbl.IsPKColumn(0) || !tbl.IsPKColumn(1) || tbl.IsPKColumn(2) {
		t.Error("IsPKColumn wrong")
	}
	names := tbl.ColumnNames()
	if len(names) != 3 || names[2] != "since" {
		t.Errorf("ColumnNames = %v", names)
	}
	row := value.Row{value.Text("U1"), value.Text("F2"), value.Int(9)}
	key := tbl.PrimaryKey(row)
	if len(key) != 2 || key[0].AsText() != "U1" || key[1].AsText() != "F2" {
		t.Errorf("PrimaryKey = %v", key)
	}
	if tbl.EncodePrimaryKey(row) != EncodeKeyTuple(key) {
		t.Error("EncodePrimaryKey should equal EncodeKeyTuple of extracted key")
	}
}

func TestPKColumnsBecomeNotNull(t *testing.T) {
	tbl := forumTable(t)
	if !tbl.Columns[0].NotNull || !tbl.Columns[1].NotNull {
		t.Error("PK columns should be forced NOT NULL")
	}
	if tbl.Columns[2].NotNull {
		t.Error("non-PK column should stay nullable")
	}
}

func TestCheckRow(t *testing.T) {
	tbl := forumTable(t)
	good := value.Row{value.Text("U1"), value.Text("F2"), value.Int(1)}
	if _, err := tbl.CheckRow(good); err != nil {
		t.Errorf("good row rejected: %v", err)
	}
	if _, err := tbl.CheckRow(value.Row{value.Text("U1")}); err == nil {
		t.Error("wrong arity should fail")
	}
	if _, err := tbl.CheckRow(value.Row{value.Null, value.Text("F2"), value.Int(1)}); err == nil {
		t.Error("NULL in NOT NULL column should fail")
	}
	if _, err := tbl.CheckRow(value.Row{value.Int(1), value.Text("F2"), value.Int(1)}); err == nil {
		t.Error("type mismatch should fail")
	}
	// NULL allowed in nullable column.
	if _, err := tbl.CheckRow(value.Row{value.Text("U"), value.Text("F"), value.Null}); err != nil {
		t.Errorf("nullable NULL rejected: %v", err)
	}
	// CheckRow must not alias the input.
	out, _ := tbl.CheckRow(good)
	out[2] = value.Int(99)
	if good[2].AsInt() != 1 {
		t.Error("CheckRow aliased its input row")
	}
}

func TestCoerce(t *testing.T) {
	cases := []struct {
		in     value.Value
		target value.Kind
		want   value.Value
		ok     bool
	}{
		{value.Null, value.KindInt, value.Null, true},
		{value.Int(1), value.KindInt, value.Int(1), true},
		{value.Int(1), value.KindFloat, value.Float(1), true},
		{value.Float(2), value.KindInt, value.Int(2), true},
		{value.Float(2.5), value.KindInt, value.Null, false},
		{value.Int(0), value.KindBool, value.Bool(false), true},
		{value.Int(1), value.KindBool, value.Bool(true), true},
		{value.Int(2), value.KindBool, value.Null, false},
		{value.Bool(true), value.KindInt, value.Int(1), true},
		{value.Bool(false), value.KindInt, value.Int(0), true},
		{value.Text("x"), value.KindInt, value.Null, false},
	}
	for _, c := range cases {
		got, err := Coerce(c.in, c.target)
		if c.ok && err != nil {
			t.Errorf("Coerce(%v, %v): %v", c.in, c.target, err)
		}
		if !c.ok && err == nil {
			t.Errorf("Coerce(%v, %v) should fail", c.in, c.target)
		}
		if c.ok && !value.Equal(got, c.want) {
			t.Errorf("Coerce(%v, %v) = %v, want %v", c.in, c.target, got, c.want)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	tbl := forumTable(t)
	cp := tbl.Clone()
	cp.Columns[0].Name = "mutated"
	cp.PKCols[0] = 99
	if tbl.Columns[0].Name != "userId" || tbl.PKCols[0] != 0 {
		t.Error("Clone aliased the original")
	}
	if cp.ColumnIndex("userid") != 0 {
		t.Error("Clone lost column index")
	}
}

func TestTableString(t *testing.T) {
	s := forumTable(t).String()
	for _, want := range []string{"CREATE TABLE forum_sub", "userId TEXT", "PRIMARY KEY (userId, forum)"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestIndexKeyEncoding(t *testing.T) {
	tbl := forumTable(t)
	rowA := value.Row{value.Text("U1"), value.Text("F1"), value.Int(1)}
	rowB := value.Row{value.Text("U2"), value.Text("F1"), value.Int(2)}

	nonUnique := &Index{Name: "by_forum", Table: "forum_sub", Columns: []int{1}}
	ka := nonUnique.EncodeIndexKey(tbl, rowA)
	kb := nonUnique.EncodeIndexKey(tbl, rowB)
	if ka == kb {
		t.Error("non-unique index keys must embed PK and differ")
	}
	prefix := nonUnique.EncodeIndexPrefix(value.Row{value.Text("F1")})
	if !strings.HasPrefix(ka, prefix) || !strings.HasPrefix(kb, prefix) {
		t.Error("index prefix should prefix both keys")
	}

	unique := &Index{Name: "u", Table: "forum_sub", Columns: []int{1}, Unique: true}
	if unique.EncodeIndexKey(tbl, rowA) != unique.EncodeIndexKey(tbl, rowB) {
		t.Error("unique index key should not embed PK")
	}
}
