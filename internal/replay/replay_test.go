package replay

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/db"
	"repro/internal/runtime"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/value"
	"repro/internal/workload"
)

// racedScenario runs the MDL-59854 production scenario (R1 and R2 racing,
// then R3 fetching and failing) with tracing, and returns what replay needs.
func racedScenario(t *testing.T) (*db.DB, *trace.Tracer, *runtime.App) {
	t.Helper()
	prod := db.MustOpenMemory()
	prov := db.MustOpenMemory()
	t.Cleanup(func() { prod.Close(); prov.Close() })
	if err := workload.SetupMoodle(prod); err != nil {
		t.Fatal(err)
	}
	app := runtime.New(prod)
	workload.RegisterMoodle(app)
	tr, err := trace.Attach(app, prov, trace.Config{Tables: workload.MoodleTables})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })

	if err := workload.RaceSubscribe(app, "R1", "R2", "U1", "F2"); err != nil {
		t.Fatal(err)
	}
	if _, err := app.InvokeWithReqID("R3", "fetchSubscribers", runtime.Args{"forum": "F2"}); err == nil {
		t.Fatal("R3 should observe the duplication error")
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	return prod, tr, app
}

// lateReq returns whichever of R1/R2 committed its insert last (that one
// observed the other's write between its transactions).
func lateReq(t *testing.T, tr *trace.Tracer) (late, early string) {
	t.Helper()
	res, err := tr.Prov().Query(`SELECT Timestamp, ReqId, HandlerName
		FROM Executions as E, ForumEvents as F ON E.TxnId = F.TxnId
		WHERE F.UserId = 'U1' AND F.Forum = 'F2' AND F.Type = 'Insert'
		ORDER BY Timestamp ASC`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("debug query rows = %d", len(res.Rows))
	}
	return res.Rows[1][1].AsText(), res.Rows[0][1].AsText()
}

func TestReplayFaithfulWithForeignInjection(t *testing.T) {
	prod, tr, _ := racedScenario(t)
	late, early := lateReq(t, tr)

	rp := New(prod, tr.Writer())
	var breaks []Breakpoint
	var rowsAtBreak []int64 // forum_sub row count observed AT each breakpoint
	var dev *db.DB
	report, err := rp.Replay(late, workload.RegisterMoodle, Options{
		OnBreakpoint: func(bp Breakpoint) {
			breaks = append(breaks, bp)
			dev = bp.Dev
			rows, err := bp.Dev.Query(`SELECT COUNT(*) FROM forum_sub`)
			if err != nil {
				t.Error(err)
				return
			}
			rowsAtBreak = append(rowsAtBreak, rows.Rows[0][0].AsInt())
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Diverged {
		t.Fatalf("faithful replay diverged: %+v", report.Diffs)
	}
	if len(report.Steps) != 2 {
		t.Fatalf("steps = %+v", report.Steps)
	}
	if report.Steps[0].Func != "isSubscribed" || report.Steps[1].Func != "DB.insert" {
		t.Errorf("step labels = %v %v", report.Steps[0].Func, report.Steps[1].Func)
	}
	// The foreign write (the early request's insert) must be injected
	// before the late request's second transaction — Figure 3 (top).
	if len(report.Steps[1].Injected) == 0 {
		t.Fatal("no foreign writes injected before DB.insert")
	}
	found := false
	for _, ch := range report.Steps[1].Injected {
		if strings.EqualFold(ch.Table, "forum_sub") && ch.After != nil && ch.After[1].AsText() == "U1" {
			found = true
		}
	}
	if !found {
		t.Errorf("injected changes = %+v", report.Steps[1].Injected)
	}
	if len(report.ForeignWriters) != 1 || report.ForeignWriters[0] != early {
		t.Errorf("foreign writers = %v, want [%s]", report.ForeignWriters, early)
	}
	// Breakpoints fired before each step with the dev DB inspectable:
	// empty at the first (snapshot before the request), exactly the early
	// request's insert at the second (Figure 3 top).
	if len(breaks) != 2 {
		t.Fatalf("breakpoints = %d", len(breaks))
	}
	if rowsAtBreak[0] != 0 || rowsAtBreak[1] != 1 {
		t.Errorf("rows at breakpoints = %v, want [0 1]", rowsAtBreak)
	}
	// Replay reproduced the duplicate in the dev database.
	final, _ := dev.Query(`SELECT COUNT(*) FROM forum_sub WHERE userId = 'U1' AND forum = 'F2'`)
	if final.Rows[0][0].AsInt() != 2 {
		t.Errorf("dev duplicates = %v, want 2", final.Rows[0][0])
	}
}

func TestReplayEarlyRequestSeesNoForeignWrites(t *testing.T) {
	prod, tr, _ := racedScenario(t)
	_, early := lateReq(t, tr)
	rp := New(prod, tr.Writer())
	report, err := rp.Replay(early, workload.RegisterMoodle, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if report.Diverged {
		t.Fatalf("early replay diverged: %+v", report.Diffs)
	}
	for _, st := range report.Steps {
		if len(st.Injected) != 0 {
			t.Errorf("early request should see no foreign writes, step %q got %d", st.Func, len(st.Injected))
		}
	}
}

func TestReplayErrorRequestReproducesError(t *testing.T) {
	prod, tr, _ := racedScenario(t)
	rp := New(prod, tr.Writer())
	report, err := rp.Replay("R3", workload.RegisterMoodle, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if report.Err == nil || !strings.Contains(report.Err.Error(), "duplicated") {
		t.Errorf("replayed R3 error = %v", report.Err)
	}
	if report.Diverged {
		t.Errorf("R3 replay diverged: %+v", report.Diffs)
	}
}

func TestReplaySelectiveRestore(t *testing.T) {
	prod, tr, _ := racedScenario(t)
	late, _ := lateReq(t, tr)
	rp := New(prod, tr.Writer())
	report, err := rp.Replay(late, workload.RegisterMoodle, Options{
		Tables: []string{"forum_sub"}, // only the touched table
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Diverged {
		t.Errorf("selective replay diverged: %+v", report.Diffs)
	}
}

func TestReplayDetectsModifiedCodeDivergence(t *testing.T) {
	prod, tr, _ := racedScenario(t)
	late, _ := lateReq(t, tr)
	rp := New(prod, tr.Writer())
	// Replaying with the FIXED handler is not a faithful replay: the txn
	// structure changed, and the engine must flag it.
	report, err := rp.Replay(late, workload.RegisterMoodleFixed, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Diverged {
		t.Fatal("modified code should diverge from the original trace")
	}
	if len(report.Diffs) == 0 {
		t.Error("divergence reported without diffs")
	}
}

func TestReplayUnknownRequest(t *testing.T) {
	prod, tr, _ := racedScenario(t)
	rp := New(prod, tr.Writer())
	if _, err := rp.Replay("R999", workload.RegisterMoodle, Options{}); err == nil {
		t.Error("unknown request should error")
	}
}

// TestReplayBelowHistoryFloor: once vacuum (or a checkpointed restart)
// raised the production store's history floor past a request's base
// snapshot, replay refuses with the typed error instead of rebuilding the
// base state from compacted — silently wrong — version chains.
func TestReplayBelowHistoryFloor(t *testing.T) {
	prod, tr, _ := racedScenario(t)
	late, _ := lateReq(t, tr)
	prod.Store().Vacuum(prod.Store().CurrentSeq())
	rp := New(prod, tr.Writer())
	_, err := rp.Replay(late, workload.RegisterMoodle, Options{})
	if !errors.Is(err, storage.ErrHistoryTruncated) {
		t.Fatalf("replay below floor: err = %v, want ErrHistoryTruncated", err)
	}
}

func TestReplayDoesNotTouchProduction(t *testing.T) {
	prod, tr, _ := racedScenario(t)
	late, _ := lateReq(t, tr)
	before, _ := prod.Query(`SELECT COUNT(*) FROM forum_sub`)
	rp := New(prod, tr.Writer())
	if _, err := rp.Replay(late, workload.RegisterMoodle, Options{}); err != nil {
		t.Fatal(err)
	}
	after, _ := prod.Query(`SELECT COUNT(*) FROM forum_sub`)
	if before.Rows[0][0].AsInt() != after.Rows[0][0].AsInt() {
		t.Error("replay mutated the production database")
	}
}

func TestDiffChangesUnit(t *testing.T) {
	ins := storage.Change{Table: "t", Key: "k1", Op: storage.OpInsert, After: value.Row{value.Int(1)}}
	upd := storage.Change{Table: "t", Key: "k1", Op: storage.OpUpdate, After: value.Row{value.Int(2)}}
	if diffs := diffChanges([]storage.Change{ins}, []storage.Change{ins}); len(diffs) != 0 {
		t.Errorf("identical sets diff = %v", diffs)
	}
	diffs := diffChanges([]storage.Change{ins}, []storage.Change{upd})
	if len(diffs) != 2 {
		t.Errorf("diff = %v", diffs)
	}
	if diffs := diffChanges(nil, []storage.Change{ins}); len(diffs) != 1 || !strings.HasPrefix(diffs[0], "extra") {
		t.Errorf("extra diff = %v", diffs)
	}
	if diffs := diffChanges([]storage.Change{ins}, nil); len(diffs) != 1 || !strings.HasPrefix(diffs[0], "missing") {
		t.Errorf("missing diff = %v", diffs)
	}
	// Order insensitivity.
	other := storage.Change{Table: "t", Key: "k2", Op: storage.OpInsert, After: value.Row{value.Int(3)}}
	if diffs := diffChanges([]storage.Change{ins, other}, []storage.Change{other, ins}); len(diffs) != 0 {
		t.Errorf("order-insensitive diff = %v", diffs)
	}
}

func TestApplyForeignUpsertSemantics(t *testing.T) {
	dev := storage.NewStore()
	tbl, err := schema.NewTable("t", []schema.Column{
		{Name: "k", Type: value.KindText},
		{Name: "v", Type: value.KindInt},
	}, []string{"k"})
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.CreateTable(tbl, false); err != nil {
		t.Fatal(err)
	}
	row := value.Row{value.Text("a"), value.Int(1)}
	key := tbl.EncodePrimaryKey(row)

	// Update of a missing row becomes an insert.
	if err := applyForeign(dev, []storage.Change{{Table: "t", Key: key, Op: storage.OpUpdate, After: row}}); err != nil {
		t.Fatal(err)
	}
	if _, ok := dev.Get("t", key, dev.CurrentSeq()); !ok {
		t.Fatal("upsert did not insert")
	}
	// Insert of an existing row becomes an update.
	row2 := value.Row{value.Text("a"), value.Int(9)}
	if err := applyForeign(dev, []storage.Change{{Table: "t", Key: key, Op: storage.OpInsert, After: row2}}); err != nil {
		t.Fatal(err)
	}
	got, _ := dev.Get("t", key, dev.CurrentSeq())
	if got[1].AsInt() != 9 {
		t.Errorf("upsert value = %v", got[1])
	}
	// Delete of a missing row is skipped; delete of present row works.
	if err := applyForeign(dev, []storage.Change{{Table: "t", Key: "zz", Op: storage.OpDelete}}); err != nil {
		t.Fatal(err)
	}
	if err := applyForeign(dev, []storage.Change{{Table: "t", Key: key, Op: storage.OpDelete, Before: row2}}); err != nil {
		t.Fatal(err)
	}
	if _, ok := dev.Get("t", key, dev.CurrentSeq()); ok {
		t.Error("delete did not apply")
	}
	// Changes to unknown tables are ignored.
	if err := applyForeign(dev, []storage.Change{{Table: "ghost", Key: "k", Op: storage.OpInsert, After: row}}); err != nil {
		t.Fatal(err)
	}
}
