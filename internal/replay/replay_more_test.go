package replay

import (
	"strings"
	"testing"

	"repro/internal/db"
	"repro/internal/runtime"
	"repro/internal/trace"
	"repro/internal/workload"
)

// travelScenario reproduces the overbooking race with tracing.
func travelScenario(t *testing.T) (*db.DB, *trace.Tracer, string) {
	t.Helper()
	prod := db.MustOpenMemory()
	prov := db.MustOpenMemory()
	t.Cleanup(func() { prod.Close(); prov.Close() })
	if err := workload.SetupTravel(prod); err != nil {
		t.Fatal(err)
	}
	app := runtime.New(prod)
	workload.RegisterTravel(app)
	tr, err := trace.Attach(app, prov, trace.Config{Tables: workload.TravelTables})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	if _, err := app.InvokeWithReqID("R1", "bookTrip", runtime.Args{"flightId": "F100", "customer": "early"}); err != nil {
		t.Fatal(err)
	}
	if err := workload.RaceHandlers(app, "bookTrip", "recordBooking", "R2", "R3",
		runtime.Args{"flightId": "F100", "customer": "alice"},
		runtime.Args{"flightId": "F100", "customer": "bob"}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	res, err := prov.Query(`SELECT E.ReqId FROM Executions as E, BookingEvents as B
		ON E.TxnId = B.TxnId WHERE B.Type = 'Insert' ORDER BY E.Timestamp`)
	if err != nil || len(res.Rows) != 3 {
		t.Fatalf("scenario bookings: %v, %v", res, err)
	}
	return prod, tr, res.Rows[2][0].AsText()
}

func TestReplayAcrossRPCWorkflow(t *testing.T) {
	prod, tr, late := travelScenario(t)
	rp := New(prod, tr.Writer())
	report, err := rp.Replay(late, workload.RegisterTravel, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if report.Diverged {
		t.Fatalf("RPC-spanning replay diverged: %v", report.Diffs)
	}
	// bookTrip runs 4 txns: checkSeats, insertPayment (via RPC),
	// recordBooking, linkPayment — all replayed under one request.
	if len(report.Steps) != 4 {
		t.Fatalf("steps = %d (%+v)", len(report.Steps), report.Steps)
	}
	labels := []string{"checkSeats", "insertPayment", "recordBooking", "linkPayment"}
	for i, want := range labels {
		if report.Steps[i].Func != want {
			t.Errorf("step %d = %q, want %q", i, report.Steps[i].Func, want)
		}
	}
	// The foreign writes (the other racer's booking) arrive before
	// recordBooking.
	if len(report.Steps[2].Injected) == 0 {
		t.Error("no foreign changes before recordBooking")
	}
	if len(report.ForeignWriters) != 1 {
		t.Errorf("foreign writers = %v", report.ForeignWriters)
	}
}

func TestReplayExternalCallsNotDuplicated(t *testing.T) {
	// The original bookTrip sent a confirmation email; replay must not
	// re-send (the runtime's idempotency is per-request, and the replay app
	// is fresh, so this documents the behaviour: the dev app's external
	// mock records the call locally, production state untouched).
	prod, tr, late := travelScenario(t)
	rp := New(prod, tr.Writer())
	if _, err := rp.Replay(late, workload.RegisterTravel, Options{}); err != nil {
		t.Fatal(err)
	}
	// Production provenance still shows exactly the original externals.
	res, err := tr.Prov().Query(`SELECT COUNT(*) FROM trod_externals`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].AsInt() != 3 { // three successful bookings, one email each
		t.Errorf("externals = %v, want 3", res.Rows[0][0])
	}
}

func TestSelectiveRestoreMissingTableDiverges(t *testing.T) {
	// Restoring only the flights table leaves bookings/payments empty: the
	// replayed request recomputes MAX(bookingId) over an empty table and
	// its write set differs — the engine must flag it, not crash.
	prod, tr, late := travelScenario(t)
	rp := New(prod, tr.Writer())
	report, err := rp.Replay(late, workload.RegisterTravel, Options{
		Tables: []string{"flights"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Diverged {
		t.Error("missing-table selective restore should diverge")
	}
}

func TestReplayBreakpointOrdering(t *testing.T) {
	prod, tr, late := travelScenario(t)
	rp := New(prod, tr.Writer())
	var steps []int
	_, err := rp.Replay(late, workload.RegisterTravel, Options{
		OnBreakpoint: func(bp Breakpoint) {
			steps = append(steps, bp.Step)
			if bp.ReqID != late {
				t.Errorf("breakpoint req = %q", bp.ReqID)
			}
			if bp.Dev == nil {
				t.Error("breakpoint without dev DB")
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range steps {
		if s != i {
			t.Errorf("breakpoint order = %v", steps)
			break
		}
	}
}

// TestReplayFailsLoudlyOnTruncatedCDC pins the CDC-retention contract: when
// the production commit log no longer reaches back to the replayed request's
// snapshot (TruncateLog released the prefix), Replay must refuse with a
// clear error instead of injecting a silently incomplete foreign history.
func TestReplayFailsLoudlyOnTruncatedCDC(t *testing.T) {
	prod, tr, late := travelScenario(t)
	rp := New(prod, tr.Writer())

	// Sanity: replay works while the log is intact.
	if _, err := rp.Replay(late, workload.RegisterTravel, Options{}); err != nil {
		t.Fatal(err)
	}

	// Release the whole CDC prefix, as a checkpoint with CDCRetention would.
	prod.Store().TruncateLog(prod.Store().CurrentSeq())
	_, err := rp.Replay(late, workload.RegisterTravel, Options{})
	if err == nil {
		t.Fatal("replay over a truncated CDC log must fail loudly")
	}
	if !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("error should name the truncation: %v", err)
	}
}
