// Package replay implements TROD's faithful bug replay (paper §3.5).
//
// Given a past request's ID, the replayer:
//
//  1. finds the request's transactions in the provenance database,
//  2. restores a development database to the snapshot the request's first
//     transaction read (fully, or selectively — only chosen tables),
//  3. re-executes the handler code in a fresh runtime, pausing at a
//     breakpoint before every transaction to inject the foreign committed
//     writes the original execution observed between its transactions, and
//  4. verifies the re-execution against the original trace: transaction
//     labels, write sets, and the handler result must match (divergence
//     detection).
//
// The injected foreign writes are surfaced in the report — for MDL-59854
// this is exactly the "request R2 inserted (U1, F2) between your two
// transactions" insight Figure 3 (top) illustrates.
package replay

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/db"
	"repro/internal/provenance"
	"repro/internal/runtime"
	"repro/internal/storage"
	"repro/internal/value"
)

// Replayer replays past requests from a production database + provenance.
type Replayer struct {
	prod *db.DB
	prov *provenance.Writer
}

// New creates a replayer over a production database and its provenance.
func New(prod *db.DB, prov *provenance.Writer) *Replayer {
	return &Replayer{prod: prod, prov: prov}
}

// Breakpoint is passed to the OnBreakpoint hook before each re-executed
// transaction — the point where a developer would attach GDB and
// single-step (§3.5).
type Breakpoint struct {
	Step     int    // 0-based transaction index within the request
	Func     string // transaction label (paper's Metadata column)
	ReqID    string
	Injected []storage.Change // foreign writes applied at this breakpoint
	Dev      *db.DB           // the development database, inspectable
}

// Options configures a replay.
type Options struct {
	// Tables restricts state restoration to the listed tables (selective
	// restore; ablation A2). Empty means full restore of every table.
	Tables []string
	// OnBreakpoint is invoked before each re-executed transaction.
	OnBreakpoint func(Breakpoint)
}

// Step reports one re-executed transaction.
type Step struct {
	Func          string
	OriginalTxnID uint64
	Injected      []storage.Change // foreign writes injected before it
	WriteDiffs    []string         // divergences from the original write set
	LabelMismatch bool
}

// Report is the outcome of a replay.
type Report struct {
	ReqID    string
	Handler  string
	Steps    []Step
	Result   any
	Err      error
	Diverged bool
	Diffs    []string // request-level divergences (result, step count)
	// ForeignWriters lists the other requests whose writes were injected —
	// the concurrent executions involved in the bug.
	ForeignWriters []string
}

// interceptor drives breakpoints and foreign-write injection during replay.
type interceptor struct {
	mu        sync.Mutex
	r         *Replayer
	dev       *db.DB
	execs     []provenance.Execution
	applied   uint64 // prod commit seq up to which foreign writes are applied
	ownTxns   map[uint64]bool
	report    *Report
	onBreak   func(Breakpoint)
	devWrites []storage.Change // CDC capture of the dev DB, drained per step
	step      int
}

func (ic *interceptor) Before(c *runtime.Ctx, fnLabel string) error {
	ic.mu.Lock()
	defer ic.mu.Unlock()
	step := ic.step
	st := Step{Func: fnLabel}
	var injected []storage.Change
	if step < len(ic.execs) {
		orig := ic.execs[step]
		st.OriginalTxnID = orig.TxnID
		if orig.Func != fnLabel {
			st.LabelMismatch = true
			ic.report.Diverged = true
			ic.report.Diffs = append(ic.report.Diffs,
				fmt.Sprintf("step %d ran %q but the original ran %q", step, fnLabel, orig.Func))
		}
		// Inject foreign committed writes the original transaction saw:
		// everything committed in (applied, orig.Snapshot] by other txns.
		if orig.Snapshot > ic.applied {
			for _, rec := range ic.r.prod.Store().ChangesBetween(ic.applied, orig.Snapshot) {
				if ic.ownTxns[rec.TxnID] {
					continue
				}
				injected = append(injected, rec.Changes...)
				if ex, err := ic.r.prov.ExecutionByTxn(rec.TxnID); err == nil && ex.ReqID != ic.report.ReqID {
					ic.addForeignWriter(ex.ReqID)
				}
			}
			ic.applied = orig.Snapshot
		}
		if len(injected) > 0 {
			if err := applyForeign(ic.dev.Store(), injected); err != nil {
				return fmt.Errorf("replay: injecting foreign writes before step %d: %w", step, err)
			}
		}
	}
	// The injection commit above is observed by the dev CDC capture; it is
	// not part of the re-executed transaction's write set.
	ic.devWrites = nil
	st.Injected = injected
	ic.report.Steps = append(ic.report.Steps, st)
	if ic.onBreak != nil {
		ic.onBreak(Breakpoint{Step: step, Func: fnLabel, ReqID: ic.report.ReqID, Injected: injected, Dev: ic.dev})
	}
	return nil
}

func (ic *interceptor) After(c *runtime.Ctx, fnLabel string, err error) {
	ic.mu.Lock()
	defer ic.mu.Unlock()
	step := ic.step
	ic.step++
	if step >= len(ic.report.Steps) {
		return
	}
	// Drain the dev writes this transaction produced and compare with the
	// original transaction's write set from the production commit log.
	devChanges := ic.devWrites
	ic.devWrites = nil
	if step >= len(ic.execs) {
		return
	}
	orig := ic.execs[step]
	var origChanges []storage.Change
	if orig.CommitSeq > 0 {
		for _, rec := range ic.r.prod.Store().ChangesBetween(orig.CommitSeq-1, orig.CommitSeq) {
			if rec.TxnID == orig.TxnID {
				origChanges = rec.Changes
			}
		}
	}
	diffs := diffChanges(origChanges, devChanges)
	if len(diffs) > 0 {
		ic.report.Steps[step].WriteDiffs = diffs
		ic.report.Diverged = true
	}
}

func (ic *interceptor) addForeignWriter(reqID string) {
	for _, r := range ic.report.ForeignWriters {
		if r == reqID {
			return
		}
	}
	ic.report.ForeignWriters = append(ic.report.ForeignWriters, reqID)
}

// applyForeign applies production changes to a development store whose
// sequence numbering differs. Missing rows are upserted and absent deletes
// skipped, so selective restores stay consistent for the touched tables.
func applyForeign(dev *storage.Store, changes []storage.Change) error {
	adjusted := make([]storage.Change, 0, len(changes))
	for _, ch := range changes {
		if dev.Table(ch.Table) == nil {
			continue // table not restored
		}
		_, exists := dev.Get(ch.Table, ch.Key, dev.CurrentSeq())
		switch ch.Op {
		case storage.OpInsert:
			if exists {
				ch.Op = storage.OpUpdate
			}
		case storage.OpUpdate:
			if !exists {
				ch.Op = storage.OpInsert
				ch.Before = nil
			}
		case storage.OpDelete:
			if !exists {
				continue
			}
		}
		adjusted = append(adjusted, ch)
	}
	if len(adjusted) == 0 {
		return nil
	}
	_, err := dev.Commit(storage.CommitRequest{Changes: adjusted})
	return err
}

// diffChanges compares two write sets, ignoring order.
func diffChanges(orig, got []storage.Change) []string {
	key := func(ch storage.Change) string {
		after := "<nil>"
		if ch.After != nil {
			after = ch.After.String()
		}
		return fmt.Sprintf("%s|%x|%s|%s", strings.ToLower(ch.Table), ch.Key, ch.Op, after)
	}
	a := make([]string, 0, len(orig))
	for _, ch := range orig {
		a = append(a, key(ch))
	}
	b := make([]string, 0, len(got))
	for _, ch := range got {
		b = append(b, key(ch))
	}
	sort.Strings(a)
	sort.Strings(b)
	var diffs []string
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case i < len(a) && (j >= len(b) || a[i] < b[j]):
			diffs = append(diffs, "missing write: "+a[i])
			i++
		case j < len(b) && (i >= len(a) || b[j] < a[i]):
			diffs = append(diffs, "extra write: "+b[j])
			j++
		default:
			i++
			j++
		}
	}
	return diffs
}

// Replay re-executes the request in a development environment. register
// installs the application's handlers on the fresh development runtime
// (the same code as production for faithful replay).
func (r *Replayer) Replay(reqID string, register func(app *runtime.App), opts Options) (*Report, error) {
	req, err := r.prov.RequestByID(reqID)
	if err != nil {
		return nil, err
	}
	args, err := runtime.ParseArgsJSON(req.ArgsJSON)
	if err != nil {
		return nil, err
	}
	allExecs, err := r.prov.ExecutionsForRequest(reqID)
	if err != nil {
		return nil, err
	}
	var execs []provenance.Execution
	ownTxns := make(map[uint64]bool)
	for _, e := range allExecs {
		ownTxns[e.TxnID] = true
		if e.Committed {
			execs = append(execs, e)
		}
	}
	if len(execs) == 0 {
		return nil, fmt.Errorf("replay: request %q has no committed transactions to replay", reqID)
	}
	baseSeq := execs[0].Snapshot
	// Replay injects the foreign commits in (baseSeq, last snapshot] and
	// compares write sets against the request's own commit records, all read
	// from the production CDC log. Pin the production store at baseSeq for
	// the replay's lifetime so a concurrent auto-checkpoint with CDC
	// retention cannot truncate that window mid-replay, then check (after
	// pinning — the order closes the check-then-act race) that the window
	// was not already released; if it was, fail loudly instead of replaying
	// against a silently incomplete history.
	prodStore := r.prod.Store()
	prodStore.MovePin(prodStore.PinSnapshot(), baseSeq)
	defer prodStore.UnpinSnapshot(baseSeq)
	if from := prodStore.LogRetainedFrom(); from > baseSeq+1 {
		return nil, fmt.Errorf(
			"replay: request %q needs production history from commit %d, but the CDC log is truncated to %d (CDC retention window passed); replay unavailable",
			reqID, baseSeq+1, from)
	}
	// Same check-after-pin discipline for MVCC history: restoring the dev
	// database reads row versions at baseSeq, which Vacuum (or a checkpointed
	// restart) may have compacted away.
	if floor := prodStore.HistoryRetainedFrom(); baseSeq < floor {
		return nil, fmt.Errorf(
			"replay: request %q needs row versions at snapshot %d: %w (history retained from %d)",
			reqID, baseSeq, storage.ErrHistoryTruncated, floor)
	}

	dev, err := r.restore(baseSeq, opts.Tables)
	if err != nil {
		return nil, err
	}

	report := &Report{ReqID: reqID, Handler: req.Handler}
	ic := &interceptor{
		r:       r,
		dev:     dev,
		execs:   execs,
		applied: baseSeq,
		ownTxns: ownTxns,
		report:  report,
		onBreak: opts.OnBreakpoint,
	}
	dev.Store().SubscribeCDC(func(rec storage.CommitRecord) {
		// Replay is single-threaded; collect this step's writes.
		ic.devWrites = append(ic.devWrites, rec.Changes...)
	})

	devApp := runtime.New(dev)
	register(devApp)
	devApp.SetTxnInterceptor(ic)

	result, err := devApp.InvokeWithReqID(reqID, req.Handler, args)
	report.Result = result
	report.Err = err

	if len(report.Steps) != len(execs) {
		report.Diverged = true
		report.Diffs = append(report.Diffs,
			fmt.Sprintf("re-execution ran %d transactions, original ran %d", len(report.Steps), len(execs)))
	}
	if req.Result != "<unrepresentable>" {
		if got := runtime.ResultJSON(result); got != req.Result {
			report.Diverged = true
			report.Diffs = append(report.Diffs,
				fmt.Sprintf("result %s differs from original %s", got, req.Result))
		}
	}
	return report, nil
}

// restore builds the development database at the given production snapshot.
// With tables empty it is a full clone (CloneAt); otherwise the schema is
// copied in full but only the listed tables' rows are restored.
func (r *Replayer) restore(seq uint64, tables []string) (*db.DB, error) {
	if len(tables) == 0 {
		return r.prod.CloneAt(seq)
	}
	want := make(map[string]bool, len(tables))
	for _, t := range tables {
		want[strings.ToLower(t)] = true
	}
	prodStore := r.prod.Store()
	dev := storage.NewStore()
	for _, name := range prodStore.Tables() {
		tbl := prodStore.Table(name)
		if err := dev.CreateTable(tbl.Clone(), false); err != nil {
			return nil, err
		}
		for _, ix := range prodStore.Indexes(name) {
			cp := *ix
			if err := dev.CreateIndex(&cp); err != nil {
				return nil, err
			}
		}
		if !want[strings.ToLower(name)] {
			continue
		}
		var changes []storage.Change
		prodStore.ScanRange(name, "", "", seq, func(key string, row value.Row) bool {
			changes = append(changes, storage.Change{Table: tbl.Name, Key: key, Op: storage.OpInsert, After: row.Clone()})
			return true
		})
		if len(changes) > 0 {
			if _, err := dev.Commit(storage.CommitRequest{Changes: changes}); err != nil {
				return nil, err
			}
		}
	}
	return db.NewFromStore(dev), nil
}
