package trace

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/db"
	"repro/internal/provenance"
	"repro/internal/runtime"
	"repro/internal/value"
)

// moodleApp builds the paper's Moodle-like forum service with tracing.
func moodleApp(t *testing.T, cfg Config) (*runtime.App, *Tracer) {
	t.Helper()
	prod := db.MustOpenMemory()
	prov := db.MustOpenMemory()
	t.Cleanup(func() { prod.Close(); prov.Close() })
	// Like Moodle's mdl_forum_subscriptions: a surrogate auto-id primary key
	// and NO uniqueness on (userId, forum) — that is what makes MDL-59854
	// possible.
	if err := prod.ExecScript(`CREATE TABLE forum_sub (id INTEGER PRIMARY KEY, userId TEXT, forum TEXT)`); err != nil {
		t.Fatal(err)
	}
	app := runtime.New(prod)
	if cfg.Tables == nil {
		cfg.Tables = provenance.TableMap{"forum_sub": "ForumEvents"}
	}
	tr, err := Attach(app, prov, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })

	// The buggy two-transaction subscribeUser from Figure 1.
	app.Register("subscribeUser", func(c *runtime.Ctx, args runtime.Args) (any, error) {
		user, forum := args.String("userId"), args.String("forum")
		var exists bool
		if err := c.Txn("isSubscribed", func(tx *db.Tx) error {
			rows, err := tx.Query(`SELECT * FROM forum_sub WHERE userId = ? AND forum = ?`, user, forum)
			if err != nil {
				return err
			}
			exists = len(rows.Rows) > 0
			return nil
		}); err != nil {
			return nil, err
		}
		if exists {
			return true, nil
		}
		// Auto-increment id computed transactionally (deterministic per P3:
		// a function of database state). Concurrent id collisions are
		// resolved by OCC retry — but the (userId, forum) duplicate from the
		// TOCTOU race persists, exactly like MDL-59854.
		err := c.Txn("DB.insert", func(tx *db.Tx) error {
			rows, err := tx.Query(`SELECT COALESCE(MAX(id), 0) FROM forum_sub`)
			if err != nil {
				return err
			}
			_, err = tx.Exec(`INSERT INTO forum_sub VALUES (?, ?, ?)`, rows.Rows[0][0].AsInt()+1, user, forum)
			return err
		})
		return err == nil, err
	})
	app.Register("fetchSubscribers", func(c *runtime.Ctx, args runtime.Args) (any, error) {
		rows, err := c.Query("DB.executeQuery", `SELECT userId FROM forum_sub WHERE forum = ?`, args.String("forum"))
		if err != nil {
			return nil, err
		}
		var users []string
		seen := map[string]bool{}
		for _, r := range rows.Rows {
			u := r[0].AsText()
			if seen[u] {
				return nil, fmt.Errorf("duplicated values in column userId")
			}
			seen[u] = true
			users = append(users, u)
		}
		return users, nil
	})
	return app, tr
}

func TestExecutionsTableFilled(t *testing.T) {
	app, tr := moodleApp(t, Config{})
	if _, err := app.InvokeWithReqID("R1", "subscribeUser", runtime.Args{"userId": "U1", "forum": "F2"}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	res, err := tr.Prov().Query(`SELECT HandlerName, ReqId, Func FROM Executions ORDER BY Timestamp`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("executions = %d rows", len(res.Rows))
	}
	if res.Rows[0][2].AsText() != "isSubscribed" || res.Rows[1][2].AsText() != "DB.insert" {
		t.Errorf("funcs = %v, %v", res.Rows[0][2], res.Rows[1][2])
	}
	for _, r := range res.Rows {
		if r[0].AsText() != "subscribeUser" || r[1].AsText() != "R1" {
			t.Errorf("row = %v", r)
		}
	}
}

func TestDataProvenanceReadAndWriteEvents(t *testing.T) {
	app, tr := moodleApp(t, Config{})
	if _, err := app.InvokeWithReqID("R1", "subscribeUser", runtime.Args{"userId": "U1", "forum": "F2"}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	res, err := tr.Prov().Query(`SELECT Type, UserId, Forum FROM ForumEvents ORDER BY EvId`)
	if err != nil {
		t.Fatal(err)
	}
	// Expected: two Reads with NULLs (isSubscribed found nothing; the
	// MAX(id) scan over the empty table) and one Insert with (U1, F2) —
	// the paper's Table 2 rows for TXN1/TXN3.
	if len(res.Rows) != 3 {
		t.Fatalf("forum events = %v", res.Rows)
	}
	var nullReads, inserts int
	for _, r := range res.Rows {
		switch r[0].AsText() {
		case "Read":
			if r[1].IsNull() && r[2].IsNull() {
				nullReads++
			}
		case "Insert":
			if r[1].AsText() == "U1" && r[2].AsText() == "F2" {
				inserts++
			}
		}
	}
	if nullReads != 2 || inserts != 1 {
		t.Errorf("events = %v (nullReads=%d inserts=%d)", res.Rows, nullReads, inserts)
	}
	var last value.Row

	// Second subscribe: the Read now matches and carries the row values.
	if _, err := app.InvokeWithReqID("R2", "subscribeUser", runtime.Args{"userId": "U1", "forum": "F2"}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	res, _ = tr.Prov().Query(`SELECT Type, UserId FROM ForumEvents ORDER BY EvId`)
	last = res.Rows[len(res.Rows)-1]
	if last[0].AsText() != "Read" || last[1].AsText() != "U1" {
		t.Errorf("matched read event = %v", last)
	}
}

func TestPaperDebuggingQueryFindsDuplicates(t *testing.T) {
	app, tr := moodleApp(t, Config{})
	// Force the MDL-59854 interleaving with a barrier between the check and
	// insert transactions of two concurrent requests.
	gate := make(chan struct{})
	release := make(chan struct{})
	var phase sync.WaitGroup
	phase.Add(2)
	app.SetTxnInterceptor(gatedInterceptor{
		beforeInsert: func() {
			phase.Done()
			<-release
		},
	})
	var wg sync.WaitGroup
	for _, req := range []string{"R1", "R2"} {
		wg.Add(1)
		go func(r string) {
			defer wg.Done()
			if _, err := app.InvokeWithReqID(r, "subscribeUser", runtime.Args{"userId": "U1", "forum": "F2"}); err != nil {
				t.Errorf("%s: %v", r, err)
			}
		}(req)
	}
	go func() { phase.Wait(); close(release); close(gate) }()
	wg.Wait()

	// The bug manifests: both requests inserted a (U1, F2) row. The §3.3
	// debugging query must return both inserting requests, ordered by time.
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	dup, err := tr.Prov().Query(`SELECT COUNT(*) FROM ForumEvents WHERE Type = 'Insert' AND UserId = 'U1' AND Forum = 'F2'`)
	if err != nil {
		t.Fatal(err)
	}
	if dup.Rows[0][0].AsInt() != 2 {
		t.Fatalf("duplicate did not reproduce: %v inserts", dup.Rows[0][0])
	}
	res, err := tr.Prov().Query(`SELECT Timestamp, ReqId, HandlerName
		FROM Executions as E, ForumEvents as F ON E.TxnId = F.TxnId
		WHERE F.UserId = 'U1' AND F.Forum = 'F2' AND F.Type = 'Insert'
		ORDER BY Timestamp ASC`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("debug query rows = %d, want 2", len(res.Rows))
	}
	reqs := map[string]bool{}
	for _, r := range res.Rows {
		reqs[r[1].AsText()] = true
		if r[2].AsText() != "subscribeUser" {
			t.Errorf("handler = %v", r[2])
		}
	}
	if !reqs["R1"] || !reqs["R2"] {
		t.Errorf("both requests should appear: %v", res.Rows)
	}
}

// gatedInterceptor blocks the DB.insert transaction until released.
type gatedInterceptor struct {
	beforeInsert func()
}

func (g gatedInterceptor) Before(c *runtime.Ctx, label string) error {
	if label == "DB.insert" && g.beforeInsert != nil {
		g.beforeInsert()
	}
	return nil
}
func (g gatedInterceptor) After(*runtime.Ctx, string, error) {}

func TestRequestAndEdgeAndExternalTables(t *testing.T) {
	app, tr := moodleApp(t, Config{})
	app.Register("workflow", func(c *runtime.Ctx, args runtime.Args) (any, error) {
		c.External("email", "notify")
		return c.Call("fetchSubscribers", runtime.Args{"forum": "F2"})
	})
	if _, err := app.InvokeWithReqID("R5", "workflow", nil); err != nil {
		t.Fatal(err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	res, _ := tr.Prov().Query(`SELECT ReqId, HandlerName, Status FROM trod_requests`)
	if len(res.Rows) != 1 || res.Rows[0][2].AsText() != "ok" {
		t.Errorf("requests = %v", res.Rows)
	}
	res, _ = tr.Prov().Query(`SELECT Parent, Child FROM trod_rpc_edges WHERE ReqId = 'R5' ORDER BY EdgeId`)
	if len(res.Rows) != 2 {
		t.Fatalf("edges = %v", res.Rows)
	}
	if res.Rows[1][0].AsText() != "R5/0" || res.Rows[1][1].AsText() != "R5/0.1" {
		t.Errorf("rpc edge = %v", res.Rows[1])
	}
	res, _ = tr.Prov().Query(`SELECT Service FROM trod_externals WHERE ReqId = 'R5'`)
	if len(res.Rows) != 1 || res.Rows[0][0].AsText() != "email" {
		t.Errorf("externals = %v", res.Rows)
	}
}

func TestRequestErrorStatusRecorded(t *testing.T) {
	app, tr := moodleApp(t, Config{})
	app.Register("boom", func(*runtime.Ctx, runtime.Args) (any, error) {
		return nil, fmt.Errorf("kaboom")
	})
	app.Invoke("boom", nil)
	tr.Flush()
	res, _ := tr.Prov().Query(`SELECT Status FROM trod_requests WHERE HandlerName = 'boom'`)
	if len(res.Rows) != 1 || !strings.Contains(res.Rows[0][0].AsText(), "kaboom") {
		t.Errorf("error status = %v", res.Rows)
	}
}

func TestLatenciesRecorded(t *testing.T) {
	app, tr := moodleApp(t, Config{})
	app.InvokeWithReqID("R1", "subscribeUser", runtime.Args{"userId": "U", "forum": "F"})
	tr.Flush()
	res, _ := tr.Prov().Query(`SELECT LatencyUs FROM trod_requests WHERE ReqId = 'R1'`)
	if len(res.Rows) != 1 || res.Rows[0][0].AsInt() < 0 {
		t.Errorf("latency = %v", res.Rows)
	}
	res, _ = tr.Prov().Query(`SELECT LatencyUs FROM Executions WHERE ReqId = 'R1'`)
	for _, r := range res.Rows {
		if r[0].AsInt() < 0 {
			t.Errorf("txn latency negative: %v", r)
		}
	}
}

func TestSyncModeWritesImmediately(t *testing.T) {
	app, tr := moodleApp(t, Config{Sync: true})
	app.InvokeWithReqID("R1", "subscribeUser", runtime.Args{"userId": "U1", "forum": "F1"})
	// No Flush needed in sync mode.
	res, err := tr.Prov().Query(`SELECT COUNT(*) FROM Executions`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].AsInt() != 2 {
		t.Errorf("sync executions = %v", res.Rows)
	}
}

func TestAsyncFlushOnTimer(t *testing.T) {
	app, tr := moodleApp(t, Config{FlushBatch: 1 << 20, FlushInterval: 2 * time.Millisecond})
	app.InvokeWithReqID("R1", "subscribeUser", runtime.Args{"userId": "U1", "forum": "F1"})
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		res, err := tr.Prov().Query(`SELECT COUNT(*) FROM Executions`)
		if err != nil {
			t.Fatal(err)
		}
		if res.Rows[0][0].AsInt() == 2 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Error("timer flush never happened")
}

func TestAbortedTxnsTraced(t *testing.T) {
	app, tr := moodleApp(t, Config{})
	app.Register("failing", func(c *runtime.Ctx, args runtime.Args) (any, error) {
		return nil, c.Txn("willAbort", func(tx *db.Tx) error {
			if _, err := tx.Query(`SELECT * FROM forum_sub`); err != nil {
				return err
			}
			return fmt.Errorf("giving up")
		})
	})
	app.Invoke("failing", nil)
	tr.Flush()
	res, _ := tr.Prov().Query(`SELECT Committed FROM Executions WHERE Func = 'willAbort'`)
	if len(res.Rows) != 1 || res.Rows[0][0].AsBool() {
		t.Errorf("aborted txn trace = %v", res.Rows)
	}
}

func TestForgetRemovesUserData(t *testing.T) {
	app, tr := moodleApp(t, Config{})
	app.InvokeWithReqID("R1", "subscribeUser", runtime.Args{"userId": "U1", "forum": "F1"})
	app.InvokeWithReqID("R2", "subscribeUser", runtime.Args{"userId": "U2", "forum": "F1"})
	tr.Flush()
	n, err := tr.Writer().Forget("userId", "U1")
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("Forget removed nothing")
	}
	res, _ := tr.Prov().Query(`SELECT COUNT(*) FROM ForumEvents WHERE UserId = 'U1'`)
	if res.Rows[0][0].AsInt() != 0 {
		t.Error("U1 events remain after Forget")
	}
	res, _ = tr.Prov().Query(`SELECT COUNT(*) FROM ForumEvents WHERE UserId = 'U2'`)
	if res.Rows[0][0].AsInt() == 0 {
		t.Error("Forget deleted unrelated user data")
	}
}

func TestAttachRejectsSharedDatabase(t *testing.T) {
	d := db.MustOpenMemory()
	defer d.Close()
	app := runtime.New(d)
	if _, err := Attach(app, d, Config{}); err == nil {
		t.Error("Attach with prod == prov should fail")
	}
}

func TestAttachRejectsUnknownTracedTable(t *testing.T) {
	prod := db.MustOpenMemory()
	prov := db.MustOpenMemory()
	defer prod.Close()
	defer prov.Close()
	app := runtime.New(prod)
	_, err := Attach(app, prov, Config{Tables: provenance.TableMap{"ghost": "GhostEvents"}})
	if err == nil {
		t.Error("tracing a missing table should fail")
	}
}

func TestStatsAndDoubleClose(t *testing.T) {
	app, tr := moodleApp(t, Config{})
	app.InvokeWithReqID("R1", "subscribeUser", runtime.Args{"userId": "U", "forum": "F"})
	tr.Flush()
	events, _ := tr.Stats()
	if events == 0 {
		t.Error("no events counted")
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal("double close should be clean")
	}
}

func TestProvenanceQueryHelpers(t *testing.T) {
	app, tr := moodleApp(t, Config{})
	app.InvokeWithReqID("R1", "subscribeUser", runtime.Args{"userId": "U1", "forum": "F2"})
	app.InvokeWithReqID("R2", "fetchSubscribers", runtime.Args{"forum": "F2"})
	tr.Flush()
	w := tr.Writer()

	execs, err := w.ExecutionsForRequest("R1")
	if err != nil {
		t.Fatal(err)
	}
	if len(execs) != 2 || execs[0].Func != "isSubscribed" || execs[1].Func != "DB.insert" {
		t.Errorf("executions = %+v", execs)
	}
	one, err := w.ExecutionByTxn(execs[0].TxnID)
	if err != nil || one.ReqID != "R1" {
		t.Errorf("by txn = %+v, %v", one, err)
	}
	if _, err := w.ExecutionByTxn(999999); err == nil {
		t.Error("missing txn should error")
	}
	reqs, err := w.RequestsTouchingTable("forum_sub")
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(reqs) != "[R1 R2]" {
		t.Errorf("touching = %v", reqs)
	}
	if _, err := w.RequestsTouchingTable("untraced"); err == nil {
		t.Error("untraced table should error")
	}
	if w.EventTable("forum_sub") != "ForumEvents" || w.EventTable("nope") != "" {
		t.Error("EventTable mapping wrong")
	}
}
