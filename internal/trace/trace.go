// Package trace implements TROD's always-on interposition layer (paper
// §3.4): it hooks the application runtime (requests, handler invocations,
// external calls), the database facade (per-transaction read provenance and
// metadata), and the storage engine's change-data-capture feed (write
// provenance), buffers events in a fast in-memory ring, and flushes them in
// batches to the provenance database on a background goroutine.
//
// The fast path — what runs inside a handler's request — is a mutex-guarded
// slice append (sub-microsecond), which is how the paper's prototype keeps
// tracing overhead under 100µs per request. The Sync configuration flushes
// inline instead, which ablation A1 uses to show why the buffer matters.
package trace

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/db"
	"repro/internal/metrics"
	"repro/internal/provenance"
	"repro/internal/runtime"
	"repro/internal/storage"
)

// Config tunes the tracer.
type Config struct {
	// Tables maps application tables to provenance event tables; only
	// listed tables get data provenance (all transactions are logged to
	// Executions regardless).
	Tables provenance.TableMap
	// FlushBatch is the buffered-event count that triggers a flush
	// (default 1024).
	FlushBatch int
	// FlushInterval is the maximum event age before a flush (default 5ms).
	FlushInterval time.Duration
	// Sync flushes every event inline on the request path (ablation A1).
	Sync bool
	// MaxReadsPerStmt caps read-provenance rows recorded per statement
	// (default 64; 0 keeps the default, -1 means unlimited). Scan-heavy
	// statements otherwise make tracing cost proportional to rows scanned —
	// the granularity/overhead balance §5 discusses.
	MaxReadsPerStmt int
	// MaxBuffered bounds the in-memory event ring (0 = unbounded, the
	// historical behavior). When the flusher cannot keep up and the buffer
	// is full, new events are dropped and counted (trod_tracer_drops_total)
	// instead of growing the heap without limit — under an adversarial
	// open-loop burst, losing provenance beats losing the server.
	MaxBuffered int
}

// Tracer is the interposition layer instance.
type Tracer struct {
	writer *provenance.Writer
	cfg    Config

	mu      sync.Mutex
	buf     []provenance.Event
	err     error // first flush error, surfaced on Flush/Close
	logical uint64

	// pool recycles drained event buffers so steady-state tracing allocates
	// no per-batch slices; buffers are cleared before pooling so they do not
	// pin row data between flushes.
	pool sync.Pool

	wake   chan struct{}
	done   chan struct{}
	closed bool

	// stats
	events  uint64
	flushes uint64
	drops   uint64

	// flushHist times writer.ApplyBatch per drain — scrape-visible as
	// trod_tracer_flush_seconds once RegisterMetrics wires it up.
	flushHist *metrics.Histogram
}

// Attach wires a tracer between an application (runtime + production DB)
// and a provenance database. It installs the runtime observer, the db
// hooks, and the CDC subscription; tracing is on from the moment Attach
// returns (always-on tracing).
func Attach(app *runtime.App, prov *db.DB, cfg Config) (*Tracer, error) {
	if cfg.FlushBatch <= 0 {
		cfg.FlushBatch = 1024
	}
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = 5 * time.Millisecond
	}
	if cfg.MaxReadsPerStmt == 0 {
		cfg.MaxReadsPerStmt = 64
	}
	if app.DB() == prov {
		return nil, fmt.Errorf("trace: the provenance database must be separate from the application database")
	}
	writer, err := provenance.Setup(prov, app.DB(), cfg.Tables)
	if err != nil {
		return nil, err
	}
	if cfg.MaxReadsPerStmt > 0 {
		app.DB().SetReadTraceLimit(cfg.MaxReadsPerStmt)
	}
	t := &Tracer{
		writer: writer,
		cfg:    cfg,
		wake:   make(chan struct{}, 1),
		done:   make(chan struct{}),
		flushHist: metrics.NewHistogram("trod_tracer_flush_seconds",
			"Latency of flushing one buffered event batch to the provenance database.", nil),
	}

	app.DB().SetHooks(db.Hooks{
		OnCommit: func(tr db.TxnTrace) {
			t.push(provenance.Event{Kind: provenance.KindTxn, Txn: tr, Logical: t.nextLogical()})
		},
		OnAbort: func(tr db.TxnTrace) {
			// Aborted transactions are recorded too (Committed = false);
			// they carry read provenance that can matter for debugging.
			t.push(provenance.Event{Kind: provenance.KindTxn, Txn: tr, Logical: t.nextLogical()})
		},
	})
	app.DB().Store().SubscribeCDC(func(rec storage.CommitRecord) {
		// Runs under the store lock: append only, no I/O.
		logical := t.nextLogical()
		for _, ch := range rec.Changes {
			t.push(provenance.Event{
				Kind:    provenance.KindWrite,
				Seq:     rec.Seq,
				TxnID:   rec.TxnID,
				Change:  ch,
				Logical: logical,
			})
		}
	})
	app.SetObserver(t)

	if !cfg.Sync {
		go t.flushLoop()
	}
	return t, nil
}

// Writer returns the provenance writer (query helpers + Forget).
func (t *Tracer) Writer() *provenance.Writer { return t.writer }

// Prov returns the provenance database for declarative debugging queries.
func (t *Tracer) Prov() *db.DB { return t.writer.DB() }

func (t *Tracer) nextLogical() uint64 { return atomic.AddUint64(&t.logical, 1) }

// push appends an event to the ring buffer — the request-path fast path.
func (t *Tracer) push(ev provenance.Event) {
	if t.cfg.Sync {
		atomic.AddUint64(&t.events, 1)
		t.mu.Lock()
		err := t.writer.ApplyBatch([]provenance.Event{ev})
		if err != nil && t.err == nil {
			t.err = err
		}
		t.mu.Unlock()
		return
	}
	t.mu.Lock()
	if t.cfg.MaxBuffered > 0 && len(t.buf) >= t.cfg.MaxBuffered {
		// Ring full: the flusher is behind. Dropping here keeps the CDC
		// callback (which runs under the store lock) append-or-nothing.
		t.mu.Unlock()
		atomic.AddUint64(&t.drops, 1)
		select {
		case t.wake <- struct{}{}:
		default:
		}
		return
	}
	if t.buf == nil {
		t.buf = t.getBuf()
	}
	t.buf = append(t.buf, ev)
	n := len(t.buf)
	t.mu.Unlock()
	atomic.AddUint64(&t.events, 1)
	if n >= t.cfg.FlushBatch {
		select {
		case t.wake <- struct{}{}:
		default:
		}
	}
}

// flushLoop drains the buffer on batch-size wakeups and a periodic timer.
func (t *Tracer) flushLoop() {
	ticker := time.NewTicker(t.cfg.FlushInterval)
	defer ticker.Stop()
	for {
		select {
		case <-t.done:
			t.drain()
			return
		case <-t.wake:
			t.drain()
		case <-ticker.C:
			t.drain()
		}
	}
}

// drain writes out everything currently buffered, returning the drained
// buffer to the pool afterwards.
func (t *Tracer) drain() {
	t.mu.Lock()
	batch := t.buf
	t.buf = nil
	t.mu.Unlock()
	if batch == nil {
		return
	}
	if len(batch) > 0 {
		atomic.AddUint64(&t.flushes, 1)
		start := time.Now()
		err := t.writer.ApplyBatch(batch)
		t.flushHist.ObserveSince(start)
		if err != nil {
			t.mu.Lock()
			if t.err == nil {
				t.err = err
			}
			t.mu.Unlock()
		}
	}
	t.putBuf(batch)
}

// getBuf returns a pooled (or fresh) event buffer.
func (t *Tracer) getBuf() []provenance.Event {
	if v := t.pool.Get(); v != nil {
		return *(v.(*[]provenance.Event))
	}
	return make([]provenance.Event, 0, t.cfg.FlushBatch)
}

// putBuf clears and recycles a drained buffer. Buffers inflated far past the
// flush batch size by a burst are dropped instead of pooled, so a one-time
// spike does not pin its worst-case capacity across future flushes.
func (t *Tracer) putBuf(buf []provenance.Event) {
	if cap(buf) > 4*t.cfg.FlushBatch {
		return
	}
	clear(buf)
	buf = buf[:0]
	t.pool.Put(&buf)
}

// Flush synchronously drains all buffered events and reports any flush
// error so far. Call before querying the provenance database.
func (t *Tracer) Flush() error {
	t.drain()
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Close stops the flusher after a final drain.
func (t *Tracer) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return t.err
	}
	t.closed = true
	t.mu.Unlock()
	if !t.cfg.Sync {
		close(t.done)
	}
	return t.Flush()
}

// Stats reports tracer counters (events captured, batch flushes).
func (t *Tracer) Stats() (events, flushes uint64) {
	return atomic.LoadUint64(&t.events), atomic.LoadUint64(&t.flushes)
}

// Counters reports the full counter set: events captured, events dropped at
// a full ring (Config.MaxBuffered), and batch flushes. This is the shape
// protocol.Stats and the metrics endpoint both consume, so the one-shot
// -stats path and the scrape path cannot disagree.
func (t *Tracer) Counters() (events, drops, flushes uint64) {
	return atomic.LoadUint64(&t.events), atomic.LoadUint64(&t.drops), atomic.LoadUint64(&t.flushes)
}

// RegisterMetrics exports the tracer's counters and flush-latency histogram
// on reg under the trod_tracer_* namespace.
func (t *Tracer) RegisterMetrics(reg *metrics.Registry) {
	reg.CounterFunc("trod_tracer_events_total",
		"Provenance events captured by the interposition layer.",
		func() uint64 { return atomic.LoadUint64(&t.events) })
	reg.CounterFunc("trod_tracer_drops_total",
		"Provenance events dropped because the ring buffer was full (MaxBuffered).",
		func() uint64 { return atomic.LoadUint64(&t.drops) })
	reg.CounterFunc("trod_tracer_flushes_total",
		"Batches flushed to the provenance database.",
		func() uint64 { return atomic.LoadUint64(&t.flushes) })
	reg.Register(t.flushHist)
}

// --- runtime.Observer ------------------------------------------------------

// RequestStart implements runtime.Observer. Request rows are written at end
// (with latency); start is a no-op kept for symmetry and future use.
func (t *Tracer) RequestStart(runtime.RequestInfo) {}

// RequestEnd records the finished request with end-to-end latency — the §5
// performance-debugging extension.
func (t *Tracer) RequestEnd(info runtime.RequestInfo) {
	status := "ok"
	if info.Err != nil {
		status = "error: " + info.Err.Error()
	}
	argsText, err := runtime.ArgsJSON(info.Args)
	if err != nil {
		argsText = "<unrepresentable>"
	}
	t.push(provenance.Event{
		Kind:       provenance.KindRequest,
		ReqID:      info.ReqID,
		Handler:    info.Handler,
		ArgsText:   argsText,
		ResultText: runtime.ResultJSON(info.Result),
		LatencyUs:  info.End.Sub(info.Start).Microseconds(),
		Status:     status,
		Logical:    t.nextLogical(),
	})
}

// Invocation records a handler invocation edge in the workflow graph.
func (t *Tracer) Invocation(info runtime.InvocationInfo) {
	t.push(provenance.Event{
		Kind:    provenance.KindEdge,
		ReqID:   info.ReqID,
		Parent:  info.Parent,
		Child:   info.InvocationID,
		Handler: info.Handler,
		Logical: t.nextLogical(),
	})
}

// External records an external-service call.
func (t *Tracer) External(call runtime.ExternalCall) {
	t.push(provenance.Event{
		Kind:    provenance.KindExternal,
		ReqID:   call.ReqID,
		Service: call.Service,
		Payload: call.Payload,
		Logical: t.nextLogical(),
	})
}
