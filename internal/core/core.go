// Package core is a signpost for the paper's primary contribution, which
// this repository implements as three cooperating packages rather than one:
//
//   - internal/trace — the always-on interposition layer (paper §3.4):
//     captures every request, handler invocation, transaction, read set,
//     and write set into the provenance database.
//   - internal/replay — faithful bug replay (paper §3.5): snapshot restore,
//     per-transaction breakpoints, foreign-write injection, divergence
//     detection.
//   - internal/retro — retroactive programming (paper §3.6): re-execution
//     of past requests over modified code under systematically enumerated
//     transaction interleavings.
//
// Their shared substrates are internal/db (the embedded serializable SQL
// database), internal/runtime (the transactional FaaS application runtime),
// and internal/provenance (the trace schema). The public surface for all of
// it is the repository's root package.
package core
