// Package lint implements trod-lint, a suite of static analyzers that
// enforce the codebase's load-bearing invariants: lock discipline around
// blocking calls (lockhold), typed error codes at the wire boundary
// (wirecode), bound-checked allocations from wire-decoded lengths
// (boundalloc), determinism of replay/snapshot/diff paths (detpath), and
// explicit handling of durability-relevant error returns (durerr).
//
// The package is deliberately self-contained: it depends only on the
// standard library (go/ast, go/types, go/token), not on
// golang.org/x/tools, so the repo builds and lints offline. The subset of
// the go/analysis API it implements (Analyzer, Pass, Diagnostic) mirrors
// the upstream shapes so analyzers could be ported to x/tools verbatim if
// a dependency ever becomes acceptable.
//
// Diagnostics can be suppressed with an annotation on the offending line
// or the line above it:
//
//	//trodlint:allow <analyzer> -- <justification>
//
// The justification is mandatory; an allow comment without one is itself
// reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check.
type Analyzer struct {
	Name string // short lowercase identifier, e.g. "lockhold"
	Doc  string // one-line description of the invariant

	// Run analyzes one package and reports findings via pass.Report.
	Run func(pass *Pass)
}

// A Pass provides one analyzer with the parsed, type-checked source of a
// single package plus the repo configuration.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Config    *Config

	diags *[]Diagnostic
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Report records a finding at pos.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyze runs the given analyzers over one type-checked package and
// returns the surviving diagnostics: findings on lines carrying a valid
// //trodlint:allow annotation for the reporting analyzer are dropped, and
// malformed allow annotations (no justification, unknown analyzer name)
// are reported as findings of the pseudo-analyzer "allow".
//
// Files named *_test.go are excluded: the invariants guard production
// code, and test helpers legitimately use time.Now, math/rand, etc.
func Analyze(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, cfg *Config, analyzers []*Analyzer) []Diagnostic {
	if cfg == nil {
		cfg = DefaultConfig()
	}
	var kept []*ast.File
	for _, f := range files {
		name := fset.Position(f.Package).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		kept = append(kept, f)
	}
	if len(kept) == 0 {
		return nil
	}

	allows, badAllows := collectAllows(fset, kept, analyzers)

	var diags []Diagnostic
	for _, a := range analyzers {
		if !cfg.enabled(a.Name) {
			continue
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     kept,
			Pkg:       pkg,
			TypesInfo: info,
			Config:    cfg,
			diags:     &diags,
		}
		a.Run(pass)
	}

	var out []Diagnostic
	for _, d := range diags {
		if allows[allowKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}] {
			continue
		}
		out = append(out, d)
	}
	out = append(out, badAllows...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	return out
}

type allowKey struct {
	file     string
	line     int
	analyzer string
}

const allowPrefix = "//trodlint:allow"

// collectAllows scans comments for //trodlint:allow annotations. A valid
// annotation suppresses the named analyzer on its own line and on the
// line directly below (so it can sit above the offending statement).
func collectAllows(fset *token.FileSet, files []*ast.File, analyzers []*Analyzer) (map[allowKey]bool, []Diagnostic) {
	known := make(map[string]bool)
	for _, a := range analyzers {
		known[a.Name] = true
	}
	allows := make(map[allowKey]bool)
	var bad []Diagnostic
	report := func(pos token.Position, format string, args ...any) {
		bad = append(bad, Diagnostic{Analyzer: "allow", Pos: pos, Message: fmt.Sprintf(format, args...)})
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //trodlint:allowance — not ours
				}
				name, just, found := strings.Cut(rest, "--")
				name = strings.TrimSpace(name)
				just = strings.TrimSpace(just)
				if name == "" {
					report(pos, "allow annotation is missing an analyzer name: %q", c.Text)
					continue
				}
				if !known[name] {
					report(pos, "allow annotation names unknown analyzer %q", name)
					continue
				}
				if !found || just == "" {
					report(pos, "allow annotation for %q requires a justification: //trodlint:allow %s -- <why>", name, name)
					continue
				}
				allows[allowKey{pos.Filename, pos.Line, name}] = true
				allows[allowKey{pos.Filename, pos.Line + 1, name}] = true
			}
		}
	}
	return allows, bad
}
