package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// WirecodeAnalyzer enforces the PR 4 protocol contract: every error that
// crosses the wire carries a typed protocol.ErrCode, and no path silently
// degrades to the catch-all internal code. Concretely, in the configured
// wire-facing packages it flags:
//
//  1. protocol.Message literals with Type: MsgError but no explicit Code;
//  2. protocol.ServerError literals without an explicit Code;
//  3. any use of protocol.CodeInternal outside the protocol package
//     itself (handlers must pick a specific code);
//  4. fmt.Errorf calls that stringify an error argument without %w —
//     wrapping without %w strips the typed code that errors.As/IsCode
//     recover on the client side.
var WirecodeAnalyzer = &Analyzer{
	Name: "wirecode",
	Doc:  "requires typed protocol error codes on every wire-facing error path",
	Run:  runWirecode,
}

func runWirecode(pass *Pass) {
	cfg := pass.Config.Wirecode
	if !matchName(pass.Pkg.Path()+".x", packageGlobs(cfg.Packages)) {
		return
	}
	inProtocol := pass.Pkg.Path() == cfg.Protocol
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				pass.checkWireLit(n, cfg.Protocol)
			case *ast.Ident:
				if !inProtocol && pass.isProtocolObj(n, cfg.Protocol, "CodeInternal") {
					pass.Report(n.Pos(), "use of %s.CodeInternal outside the protocol package; pick a specific error code", pathBase(cfg.Protocol))
				}
			case *ast.CallExpr:
				pass.checkErrorfWrap(n)
			}
			return true
		})
	}
}

// packageGlobs turns package paths into matchName patterns (exact match
// on any symbol in the package).
func packageGlobs(pkgs []string) []string {
	out := make([]string, len(pkgs))
	for i, p := range pkgs {
		out[i] = p + ".*"
	}
	return out
}

func pathBase(p string) string {
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		return p[i+1:]
	}
	return p
}

// checkWireLit inspects Message{...} and ServerError{...} literals.
func (p *Pass) checkWireLit(lit *ast.CompositeLit, protoPath string) {
	t := typeOf(p.TypesInfo, lit)
	var isMsg bool
	switch {
	case isNamedType(t, protoPath, "Message"):
		isMsg = true
	case isNamedType(t, protoPath, "ServerError"):
	default:
		return
	}
	fields := litFields(p.TypesInfo, t, lit)
	if isMsg {
		typeExpr, ok := fields["Type"]
		if !ok || !p.isProtocolObjExpr(typeExpr, protoPath, "MsgError") {
			return
		}
		if _, ok := fields["Code"]; !ok {
			p.Report(lit.Pos(), "Message literal with Type: MsgError but no Code; wire errors must carry a typed protocol code")
		}
		return
	}
	if _, ok := fields["Code"]; !ok {
		p.Report(lit.Pos(), "ServerError literal without a Code; wire errors must carry a typed protocol code")
	}
}

// litFields maps struct field names to the expressions assigned to them,
// handling both keyed and positional composite literals.
func litFields(info *types.Info, t types.Type, lit *ast.CompositeLit) map[string]ast.Expr {
	st, ok := derefStruct(t)
	if !ok {
		return nil
	}
	out := make(map[string]ast.Expr, len(lit.Elts))
	for i, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok {
				out[id.Name] = kv.Value
			}
			continue
		}
		if i < st.NumFields() {
			out[st.Field(i).Name()] = elt
		}
	}
	return out
}

func (p *Pass) isProtocolObjExpr(e ast.Expr, protoPath, name string) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return p.isProtocolObj(e, protoPath, name)
	case *ast.SelectorExpr:
		return p.isProtocolObj(e.Sel, protoPath, name)
	}
	return false
}

func (p *Pass) isProtocolObj(id *ast.Ident, protoPath, name string) bool {
	obj := p.TypesInfo.Uses[id]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == protoPath && obj.Name() == name
}

// checkErrorfWrap flags fmt.Errorf("... %v ...", err) — an error argument
// flattened to text without %w, which strips the typed code.
func (p *Pass) checkErrorfWrap(call *ast.CallExpr) {
	if calleeName(p.TypesInfo, call) != "fmt.Errorf" || len(call.Args) < 2 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || strings.Contains(lit.Value, "%w") {
		return
	}
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	for _, arg := range call.Args[1:] {
		t := typeOf(p.TypesInfo, arg)
		if t == types.Typ[types.Invalid] || types.Identical(t, types.Typ[types.UntypedNil]) {
			continue
		}
		if types.Implements(t, errType) {
			p.Report(call.Pos(), "fmt.Errorf stringifies an error without %%w; the typed protocol code is lost — wrap with %%w or build a typed error")
			return
		}
	}
}
