package lint_test

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestVettoolEndToEnd exercises the whole go vet -vettool protocol: build
// the real binary, hand it to the toolchain, and vet hardened packages
// that must come back clean. This is what CI runs over the full tree.
func TestVettoolEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and re-runs the toolchain")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	tool := filepath.Join(t.TempDir(), "trod-lint")
	build := exec.Command("go", "build", "-o", tool, "./cmd/trod-lint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building trod-lint: %v\n%s", err, out)
	}

	t.Run("clean packages pass", func(t *testing.T) {
		cmd := exec.Command("go", "vet", "-vettool="+tool,
			"./internal/wal", "./internal/protocol", "./internal/value")
		cmd.Dir = root
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("vet failed on a clean tree: %v\n%s", err, out)
		}
	})

	t.Run("seeded violation fails", func(t *testing.T) {
		// A scratch module with its own trodlint.yaml registering the
		// scratch mutex; the violation must fail the vet run.
		dir := t.TempDir()
		writeFile(t, filepath.Join(dir, "go.mod"), "module scratch\n\ngo 1.22\n")
		writeFile(t, filepath.Join(dir, "trodlint.yaml"), `
lockhold:
  mutexes:
    - scratch.Store.mu
  blocking:
    - time.Sleep
`)
		writeFile(t, filepath.Join(dir, "store.go"), `package scratch

import (
	"sync"
	"time"
)

type Store struct{ mu sync.Mutex }

func (s *Store) Bad() {
	s.mu.Lock()
	time.Sleep(time.Millisecond)
	s.mu.Unlock()
}
`)
		cmd := exec.Command("go", "vet", "-vettool="+tool, ".")
		cmd.Dir = dir
		var out bytes.Buffer
		cmd.Stdout = &out
		cmd.Stderr = &out
		err := cmd.Run()
		if err == nil {
			t.Fatalf("vet passed on a seeded lockhold violation:\n%s", out.String())
		}
		if !bytes.Contains(out.Bytes(), []byte("lockhold")) {
			t.Fatalf("expected a lockhold diagnostic, got:\n%s", out.String())
		}
	})
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
