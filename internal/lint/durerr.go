package lint

import (
	"go/ast"
	"go/types"
)

// DurerrAnalyzer covers durability bookkeeping: in the WAL and storage
// packages, the error results of Sync/Close on files must be handled.
// A silently discarded call (bare statement, defer, or go) is flagged;
// an explicit `_ = f.Close()` is accepted as a reviewed, greppable
// discard — the analyzer's job is to force the intent into the code.
var DurerrAnalyzer = &Analyzer{
	Name: "durerr",
	Doc:  "flags silently discarded Sync/Close errors in durability paths",
	Run:  runDurerr,
}

func runDurerr(pass *Pass) {
	cfg := pass.Config.Durerr
	inSet := false
	for _, p := range cfg.Packages {
		if pass.Pkg.Path() == p {
			inSet = true
		}
	}
	if !inSet {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			var how string
			switch s := n.(type) {
			case *ast.ExprStmt:
				call, _ = ast.Unparen(s.X).(*ast.CallExpr)
				how = "silently discarded"
			case *ast.DeferStmt:
				call = s.Call
				how = "discarded by defer"
			case *ast.GoStmt:
				call = s.Call
				how = "discarded in a goroutine"
			default:
				return true
			}
			if call == nil {
				return true
			}
			name := calleeName(pass.TypesInfo, call)
			if !matchName(name, cfg.Calls) || !returnsError(pass.TypesInfo, call) {
				return true
			}
			pass.Report(call.Pos(), "error from %s is %s; handle it or discard explicitly with `_ =` and a comment", name, how)
			return true
		})
	}
}

func returnsError(info *types.Info, call *ast.CallExpr) bool {
	t := info.TypeOf(call)
	if t == nil {
		return false
	}
	errType := types.Universe.Lookup("error").Type()
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if types.Identical(tuple.At(i).Type(), errType) {
				return true
			}
		}
		return false
	}
	return types.Identical(t, errType)
}
