package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// Each fixture rebinds the config's entity lists to names local to the
// fixture package, exactly the way trodlint.yaml binds them to the real
// tree — the analyzers never hard-code repo paths.

func TestLockhold(t *testing.T) {
	cfg := lint.DefaultConfig()
	cfg.Lockhold.Mutexes = []string{"lockhold.Store.mu"}
	cfg.Lockhold.Blocking = []string{"time.Sleep", "os.File.Sync"}
	linttest.Run(t, "lockhold", cfg, lint.LockholdAnalyzer)
}

func TestWirecode(t *testing.T) {
	cfg := lint.DefaultConfig()
	cfg.Wirecode.Protocol = "wireproto"
	cfg.Wirecode.Packages = []string{"wirecode"}
	linttest.Run(t, "wirecode", cfg, lint.WirecodeAnalyzer)
}

func TestBoundalloc(t *testing.T) {
	cfg := lint.DefaultConfig()
	cfg.Boundalloc.Sources = []string{"encoding/binary.Uvarint"}
	cfg.Boundalloc.Clamps = []string{"boundalloc.clamp"}
	cfg.Boundalloc.Limits = []string{"boundalloc.maxItems"}
	linttest.Run(t, "boundalloc", cfg, lint.BoundallocAnalyzer)
}

func TestDetpath(t *testing.T) {
	cfg := lint.DefaultConfig()
	cfg.Detpath.Packages = []string{"detpath"}
	cfg.Detpath.Forbidden = []string{"time.Now", "time.Since", "math/rand.*"}
	linttest.Run(t, "detpath", cfg, lint.DetpathAnalyzer)
}

func TestDurerr(t *testing.T) {
	cfg := lint.DefaultConfig()
	cfg.Durerr.Packages = []string{"durerr"}
	cfg.Durerr.Calls = []string{"os.File.Sync", "os.File.Close"}
	linttest.Run(t, "durerr", cfg, lint.DurerrAnalyzer)
}

func TestNosleep(t *testing.T) {
	cfg := lint.DefaultConfig()
	cfg.Nosleep.Handlers = []string{"nosleep.session.*"}
	cfg.Nosleep.Forbidden = []string{"time.Sleep", "time.Tick"}
	linttest.Run(t, "nosleep", cfg, lint.NosleepAnalyzer)
}
