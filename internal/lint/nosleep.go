package lint

import (
	"go/ast"
)

// NosleepAnalyzer keeps the request path latency-honest: the configured
// handler functions (the per-session dispatch chain and the metrics hot
// path) must not call blocking time primitives — a stray time.Sleep in a
// handler shows up as mystery tail latency that no amount of histogram
// reading will explain. Goroutines launched from a handler are off the
// request path and exempt (`go` subtrees are skipped).
//
// The check audits direct calls in the configured functions only; it does
// not chase the call graph. Register every request-path function in
// trodlint.yaml's nosleep.handlers list.
var NosleepAnalyzer = &Analyzer{
	Name: "nosleep",
	Doc:  "forbids blocking time primitives in request-path handlers",
	Run:  runNosleep,
}

func runNosleep(pass *Pass) {
	cfg := pass.Config.Nosleep
	if len(cfg.Handlers) == 0 {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			name := funcName(pass.TypesInfo.Defs[fd.Name])
			if !matchName(name, cfg.Handlers) {
				continue
			}
			inspectOnPath(fd.Body, func(call *ast.CallExpr) {
				if callee := calleeName(pass.TypesInfo, call); matchName(callee, cfg.Forbidden) {
					pass.Report(call.Pos(), "call to %s on the request path (%s); blocking here is invisible tail latency — move it off-path or behind a goroutine", callee, name)
				}
			})
		}
	}
}

// inspectOnPath walks the handler body, visiting calls that execute on the
// request path: everything except the bodies of `go` statements, which hand
// the work to another goroutine.
func inspectOnPath(body ast.Node, visit func(*ast.CallExpr)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.CallExpr:
			visit(n)
		}
		return true
	})
}
