package lint_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/lint"
)

// TestRepoConfigParses keeps the checked-in trodlint.yaml honest: it must
// parse, and the load-bearing entries the analyzers depend on must be
// present.
func TestRepoConfigParses(t *testing.T) {
	path := filepath.Join("..", "..", "trodlint.yaml")
	cfg, err := lint.LoadConfig(path)
	if err != nil {
		t.Fatalf("loading %s: %v", path, err)
	}
	mustContain := func(what string, list []string, want string) {
		t.Helper()
		for _, v := range list {
			if v == want {
				return
			}
		}
		t.Errorf("%s is missing %q (got %v)", what, want, list)
	}
	mustContain("lockhold.mutexes", cfg.Lockhold.Mutexes, "repro/internal/storage.Store.mu")
	mustContain("lockhold.mutexes", cfg.Lockhold.Mutexes, "repro/internal/wal.Log.mu")
	mustContain("lockhold.blocking", cfg.Lockhold.Blocking, "repro/internal/wal.Log.WaitDurable")
	mustContain("wirecode.packages", cfg.Wirecode.Packages, "repro/internal/server")
	mustContain("boundalloc.sources", cfg.Boundalloc.Sources, "repro/internal/wal.readUvarint")
	mustContain("detpath.packages", cfg.Detpath.Packages, "repro/internal/crashtest")
	mustContain("durerr.calls", cfg.Durerr.Calls, "os.File.Close")
	if cfg.Wirecode.Protocol != "repro/internal/protocol" {
		t.Errorf("wirecode.protocol = %q", cfg.Wirecode.Protocol)
	}
	if len(cfg.Analyzers) != 0 {
		t.Errorf("repo config must enable the full suite, got subset %v", cfg.Analyzers)
	}
}

func TestParseConfigOverrides(t *testing.T) {
	cfg, err := lint.ParseConfig(`
# comment
analyzers:
  - lockhold
  - detpath

lockhold:
  mutexes:
    - mypkg.Pool.mu   # future subsystem registers here
  blocking:
    - mypkg.Pool.Evict

wirecode:
  protocol: otherproto
  packages:
    - otherpkg
`)
	if err != nil {
		t.Fatal(err)
	}
	if got := cfg.Analyzers; len(got) != 2 || got[0] != "lockhold" || got[1] != "detpath" {
		t.Errorf("analyzers = %v", got)
	}
	if got := cfg.Lockhold.Mutexes; len(got) != 1 || got[0] != "mypkg.Pool.mu" {
		t.Errorf("mutexes = %v", got)
	}
	if cfg.Wirecode.Protocol != "otherproto" {
		t.Errorf("protocol = %q", cfg.Wirecode.Protocol)
	}
	if got := cfg.Wirecode.Packages; len(got) != 1 || got[0] != "otherpkg" {
		t.Errorf("packages = %v", got)
	}
	// Untouched sections keep defaults.
	if len(cfg.Boundalloc.Sources) == 0 {
		t.Error("absent boundalloc section must keep defaults")
	}
}

func TestParseConfigErrors(t *testing.T) {
	cases := map[string]string{
		"tabs":          "lockhold:\n\tmutexes:\n",
		"unknown top":   "frobnicate:\n  - x\n",
		"unknown key":   "lockhold:\n  spindles:\n    - x\n",
		"duplicate key": "lockhold:\n  mutexes:\n    - a\n  mutexes:\n    - b\n",
		"list in map":   "lockhold:\n  mutexes:\n    - a\n  - b\n",
	}
	for name, src := range cases {
		if _, err := lint.ParseConfig(src); err == nil {
			t.Errorf("%s: expected a parse error", name)
		}
	}
}

func TestFindConfigStopsAtModuleRoot(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "mod", "internal", "deep")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "mod", "go.mod"), []byte("module m\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Config above the module root must not be picked up.
	if err := os.WriteFile(filepath.Join(dir, "trodlint.yaml"), []byte("analyzers:\n  - lockhold\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := lint.FindConfig(sub); got != "" {
		t.Errorf("FindConfig escaped the module root: %q", got)
	}
	inMod := filepath.Join(dir, "mod", "trodlint.yaml")
	if err := os.WriteFile(inMod, []byte("analyzers:\n  - lockhold\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := lint.FindConfig(sub); got != inMod {
		t.Errorf("FindConfig = %q, want %q", got, inMod)
	}
}
