// Package linttest is a small analysistest analogue for the trod-lint
// analyzers (stdlib-only, like the analyzers themselves). A fixture is a
// package directory under testdata/src; expected findings are marked with
// comments on the offending line:
//
//	n, _ := binary.Uvarint(src)
//	out := make([]byte, n) // want "allocation sized by wire-decoded length"
//
// Each quoted string is a regexp that must match a diagnostic message
// reported on that line; every diagnostic must likewise match a want.
// Fixtures are type-checked with the stdlib source importer, so they may
// import the standard library and sibling fixture packages (by their
// directory name under testdata/src), nothing else.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/lint"
)

// A shared FileSet keeps the source importer's stdlib cache warm across
// Run calls within a test binary.
var (
	fset    = token.NewFileSet()
	stdOnce sync.Once
	std     types.Importer
)

// Run loads the fixture package at testdata/src/<name> relative to the
// caller's working directory, runs the analyzers with cfg, and compares
// diagnostics against the fixture's want comments.
func Run(t *testing.T, name string, cfg *lint.Config, analyzers ...*lint.Analyzer) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	ld := &loader{root: root, pkgs: map[string]*types.Package{}}
	files, pkg, info, err := ld.load(name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}

	diags := lint.Analyze(fset, files, pkg, info, cfg, analyzers)

	type key struct {
		file string
		line int
	}
	wants := map[key][]*wantExpect{}
	for _, f := range files {
		for _, w := range parseWants(t, f) {
			k := key{w.pos.Filename, w.pos.Line}
			wants[k] = append(wants[k], w)
		}
	}
	for _, d := range diags {
		matched := false
		for _, w := range wants[key{d.Pos.Filename, d.Pos.Line}] {
			if w.re.MatchString(d.Message) {
				w.hits++
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, ws := range wants {
		for _, w := range ws {
			if w.hits == 0 {
				t.Errorf("%s:%d: no diagnostic matched want %q", w.pos.Filename, w.pos.Line, w.re)
			}
		}
	}
}

type wantExpect struct {
	pos  token.Position
	re   *regexp.Regexp
	hits int
}

// parseWants extracts `// want "re" "re2"` comments.
func parseWants(t *testing.T, f *ast.File) []*wantExpect {
	t.Helper()
	var out []*wantExpect
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if !strings.HasPrefix(text, "want ") {
				continue
			}
			pos := fset.Position(c.Pos())
			rest := strings.TrimSpace(strings.TrimPrefix(text, "want"))
			for rest != "" {
				if rest[0] != '"' && rest[0] != '`' {
					t.Fatalf("%s:%d: malformed want comment: %q", pos.Filename, pos.Line, c.Text)
				}
				var lit string
				if rest[0] == '`' {
					end := strings.IndexByte(rest[1:], '`')
					if end < 0 {
						t.Fatalf("%s:%d: unterminated want pattern", pos.Filename, pos.Line)
					}
					lit, rest = rest[:end+2], strings.TrimSpace(rest[end+2:])
				} else {
					end := 1
					for end < len(rest) && (rest[end] != '"' || rest[end-1] == '\\') {
						end++
					}
					if end >= len(rest) {
						t.Fatalf("%s:%d: unterminated want pattern", pos.Filename, pos.Line)
					}
					lit, rest = rest[:end+1], strings.TrimSpace(rest[end+1:])
				}
				unq, err := strconv.Unquote(lit)
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, lit, err)
				}
				re, err := regexp.Compile(unq)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, unq, err)
				}
				out = append(out, &wantExpect{pos: pos, re: re})
			}
		}
	}
	return out
}

// loader type-checks fixture packages, resolving imports first against
// sibling fixture directories and then against the standard library.
type loader struct {
	root string
	pkgs map[string]*types.Package
}

func (l *loader) load(name string) ([]*ast.File, *types.Package, *types.Info, error) {
	dir := filepath.Join(l.root, name)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil, nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(name, fset, files, info)
	if err != nil {
		return nil, nil, nil, err
	}
	l.pkgs[name] = pkg
	return files, pkg, info, nil
}

// Import implements types.Importer for the fixture loader.
func (l *loader) Import(path string) (*types.Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if st, err := os.Stat(filepath.Join(l.root, path)); err == nil && st.IsDir() {
		_, pkg, _, err := l.load(path)
		return pkg, err
	}
	stdOnce.Do(func() { std = importer.ForCompiler(fset, "source", nil) })
	return std.Import(path)
}
