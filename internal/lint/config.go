package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Config controls which analyzers run and which program entities they
// watch. It is normally loaded from a trodlint.yaml at the module root so
// future subsystems (MVCC, buffer pool) can register their mutexes and
// limits without touching analyzer code. All entity lists use the
// qualified-name forms documented in names.go.
type Config struct {
	// Analyzers enables a subset by name; empty means all.
	Analyzers []string

	Lockhold struct {
		// Mutexes are the struct fields whose critical sections must not
		// block, e.g. repro/internal/storage.Store.mu.
		Mutexes []string
		// Blocking are the functions/methods that must not be called
		// while one of Mutexes is held.
		Blocking []string
	}

	Wirecode struct {
		// Packages whose wire-facing errors must carry typed codes.
		Packages []string
		// Protocol is the package defining Message/ServerError/ErrCode.
		Protocol string
	}

	Boundalloc struct {
		// Sources are functions whose uint64 results are wire-tainted.
		Sources []string
		// Clamps are functions that sanitize a tainted length.
		Clamps []string
		// Limits are the canonical named caps, cited in diagnostics.
		Limits []string
	}

	Detpath struct {
		// Packages forming the deterministic set.
		Packages []string
		// Forbidden calls within that set (supports pkg.* wildcards).
		Forbidden []string
	}

	Durerr struct {
		// Packages whose durability-relevant error returns must be
		// handled or explicitly discarded with `_ =`.
		Packages []string
		// Calls whose error results those rules apply to.
		Calls []string
	}

	Nosleep struct {
		// Handlers are the request-path functions audited for blocking
		// time primitives (direct calls; `go` subtrees exempt).
		Handlers []string
		// Forbidden are the blocking calls those handlers must not make.
		Forbidden []string
	}
}

func (c *Config) enabled(name string) bool {
	if len(c.Analyzers) == 0 {
		return true
	}
	for _, n := range c.Analyzers {
		if n == name {
			return true
		}
	}
	return false
}

// DefaultConfig mirrors the checked-in trodlint.yaml; it is the fallback
// when no config file is found (e.g. vetting a package outside the
// module).
func DefaultConfig() *Config {
	c := &Config{}
	c.Lockhold.Mutexes = []string{
		"repro/internal/storage.Store.mu",
		"repro/internal/wal.Log.mu",
		"repro/internal/repl.Source.mu",
	}
	c.Lockhold.Blocking = []string{
		"repro/internal/wal.Log.WaitDurable",
		"repro/internal/wal.Log.Sync",
		"repro/internal/wal.File.Sync",
		"os.File.Sync",
		"net.Conn.Read",
		"net.Conn.Write",
		"time.Sleep",
	}
	c.Wirecode.Packages = []string{
		"repro/internal/protocol",
		"repro/internal/server",
		"repro/internal/repl",
		"repro/internal/client",
	}
	c.Wirecode.Protocol = "repro/internal/protocol"
	c.Boundalloc.Sources = []string{
		"encoding/binary.Uvarint",
		"repro/internal/wal.readUvarint",
		"repro/internal/protocol.readUvarint",
		"repro/internal/storage.snapUvarint",
	}
	c.Boundalloc.Clamps = []string{
		"repro/internal/protocol.preallocCap",
	}
	c.Boundalloc.Limits = []string{
		"repro/internal/protocol.MaxFrame",
		"repro/internal/protocol.MaxReplFrame",
		"repro/internal/protocol.maxResultColumns",
		"repro/internal/value.maxRowColumns",
	}
	c.Detpath.Packages = []string{
		"repro/internal/storage",
		"repro/internal/wal",
		"repro/internal/crashtest",
	}
	c.Detpath.Forbidden = []string{
		"time.Now",
		"time.Since",
		"math/rand.*",
		"math/rand/v2.*",
	}
	c.Durerr.Packages = []string{
		"repro/internal/wal",
		"repro/internal/storage",
	}
	c.Durerr.Calls = []string{
		"os.File.Sync",
		"os.File.Close",
		"repro/internal/wal.File.Sync",
		"repro/internal/wal.File.Close",
	}
	c.Nosleep.Handlers = []string{
		"repro/internal/server.session.serve",
		"repro/internal/server.session.handle",
		"repro/internal/server.session.execSQL",
		"repro/internal/server.session.begin",
		"repro/internal/server.session.commit",
		"repro/internal/server.session.rollbackTx",
		"repro/internal/server.session.promote",
		"repro/internal/server.session.slowCheck",
		"repro/internal/server.Server.observeRequest",
		"repro/internal/server.slowLog.emit",
		"repro/internal/metrics.Histogram.Observe",
		"repro/internal/metrics.Histogram.ObserveSince",
		"repro/internal/metrics.Counter.Inc",
		"repro/internal/metrics.Gauge.Set",
		"repro/internal/trace.Tracer.push",
	}
	c.Nosleep.Forbidden = []string{
		"time.Sleep",
		"time.Tick",
	}
	return c
}

// LoadConfig reads a trodlint.yaml. Sections that are absent keep their
// DefaultConfig values; sections that are present replace them wholesale.
func LoadConfig(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseConfig(string(data))
}

// ParseConfig parses the trodlint.yaml subset: two levels of maps,
// scalar values, and "- item" string lists. (Hand-rolled because the
// standard library has no YAML decoder and this repo builds offline.)
func ParseConfig(src string) (*Config, error) {
	root, err := parseYAML(src)
	if err != nil {
		return nil, err
	}
	c := DefaultConfig()
	for key, node := range root {
		switch key {
		case "analyzers":
			c.Analyzers = node.list
		case "lockhold":
			if err := node.decode(key, map[string]*[]string{
				"mutexes":  &c.Lockhold.Mutexes,
				"blocking": &c.Lockhold.Blocking,
			}); err != nil {
				return nil, err
			}
		case "wirecode":
			if sub, ok := node.m["protocol"]; ok && sub.scalar != "" {
				c.Wirecode.Protocol = sub.scalar
				delete(node.m, "protocol")
			}
			if err := node.decode(key, map[string]*[]string{
				"packages": &c.Wirecode.Packages,
			}); err != nil {
				return nil, err
			}
		case "boundalloc":
			if err := node.decode(key, map[string]*[]string{
				"sources": &c.Boundalloc.Sources,
				"clamps":  &c.Boundalloc.Clamps,
				"limits":  &c.Boundalloc.Limits,
			}); err != nil {
				return nil, err
			}
		case "detpath":
			if err := node.decode(key, map[string]*[]string{
				"packages":  &c.Detpath.Packages,
				"forbidden": &c.Detpath.Forbidden,
			}); err != nil {
				return nil, err
			}
		case "durerr":
			if err := node.decode(key, map[string]*[]string{
				"packages": &c.Durerr.Packages,
				"calls":    &c.Durerr.Calls,
			}); err != nil {
				return nil, err
			}
		case "nosleep":
			if err := node.decode(key, map[string]*[]string{
				"handlers":  &c.Nosleep.Handlers,
				"forbidden": &c.Nosleep.Forbidden,
			}); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("trodlint.yaml: unknown top-level key %q", key)
		}
	}
	return c, nil
}

// FindConfig walks up from dir looking for trodlint.yaml, stopping at the
// module root (go.mod) or the filesystem root. Returns "" if none found.
func FindConfig(dir string) string {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return ""
	}
	for {
		p := filepath.Join(dir, "trodlint.yaml")
		if _, err := os.Stat(p); err == nil {
			return p
		}
		atModuleRoot := false
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			atModuleRoot = true
		}
		parent := filepath.Dir(dir)
		if atModuleRoot || parent == dir {
			return ""
		}
		dir = parent
	}
}

// yamlNode is either a scalar, a list of scalars, or a map.
type yamlNode struct {
	scalar string
	list   []string
	m      map[string]*yamlNode
}

func (n *yamlNode) decode(section string, fields map[string]*[]string) error {
	if n.m == nil {
		return fmt.Errorf("trodlint.yaml: section %q must be a map", section)
	}
	for key, sub := range n.m {
		dst, ok := fields[key]
		if !ok {
			return fmt.Errorf("trodlint.yaml: unknown key %q in section %q", key, section)
		}
		if sub.list == nil {
			return fmt.Errorf("trodlint.yaml: %s.%s must be a list", section, key)
		}
		*dst = sub.list
	}
	return nil
}

type yamlLine struct {
	indent int
	text   string // trimmed content
	lineno int
}

func parseYAML(src string) (map[string]*yamlNode, error) {
	var lines []yamlLine
	for i, raw := range strings.Split(src, "\n") {
		if strings.Contains(raw, "\t") {
			return nil, fmt.Errorf("trodlint.yaml:%d: tabs are not allowed, use spaces", i+1)
		}
		trimmed := strings.TrimLeft(raw, " ")
		// Full-line and trailing comments. Entity names never contain
		// '#', so a bare cut is safe in this subset.
		if idx := strings.Index(trimmed, "#"); idx >= 0 {
			trimmed = strings.TrimRight(trimmed[:idx], " ")
		}
		trimmed = strings.TrimRight(trimmed, " \r")
		if trimmed == "" {
			continue
		}
		lines = append(lines, yamlLine{indent: len(raw) - len(strings.TrimLeft(raw, " ")), text: trimmed, lineno: i + 1})
	}
	node, rest, err := parseBlock(lines, 0)
	if err != nil {
		return nil, err
	}
	if len(rest) > 0 {
		return nil, fmt.Errorf("trodlint.yaml:%d: unexpected indentation", rest[0].lineno)
	}
	if node.m == nil {
		return nil, fmt.Errorf("trodlint.yaml: top level must be a map")
	}
	return node.m, nil
}

// parseBlock consumes lines at exactly the indentation of lines[0],
// returning the parsed node and the unconsumed tail.
func parseBlock(lines []yamlLine, depth int) (*yamlNode, []yamlLine, error) {
	if depth > 8 {
		return nil, nil, fmt.Errorf("trodlint.yaml:%d: nesting too deep", lines[0].lineno)
	}
	indent := lines[0].indent
	node := &yamlNode{}
	for len(lines) > 0 {
		ln := lines[0]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, nil, fmt.Errorf("trodlint.yaml:%d: unexpected indentation", ln.lineno)
		}
		switch {
		case strings.HasPrefix(ln.text, "- "):
			if node.m != nil {
				return nil, nil, fmt.Errorf("trodlint.yaml:%d: list item inside a map block", ln.lineno)
			}
			node.list = append(node.list, unquote(strings.TrimSpace(ln.text[2:])))
			lines = lines[1:]
		case strings.Contains(ln.text, ":"):
			if node.list != nil {
				return nil, nil, fmt.Errorf("trodlint.yaml:%d: map key inside a list block", ln.lineno)
			}
			key, val, _ := strings.Cut(ln.text, ":")
			key = strings.TrimSpace(key)
			val = strings.TrimSpace(val)
			if node.m == nil {
				node.m = make(map[string]*yamlNode)
			}
			if _, dup := node.m[key]; dup {
				return nil, nil, fmt.Errorf("trodlint.yaml:%d: duplicate key %q", ln.lineno, key)
			}
			lines = lines[1:]
			if val != "" {
				node.m[key] = &yamlNode{scalar: unquote(val)}
				continue
			}
			if len(lines) == 0 || lines[0].indent <= indent {
				node.m[key] = &yamlNode{} // empty section
				continue
			}
			child, rest, err := parseBlock(lines, depth+1)
			if err != nil {
				return nil, nil, err
			}
			node.m[key] = child
			lines = rest
		default:
			return nil, nil, fmt.Errorf("trodlint.yaml:%d: cannot parse %q", ln.lineno, ln.text)
		}
	}
	return node, lines, nil
}

func unquote(s string) string {
	if len(s) >= 2 && (s[0] == '"' && s[len(s)-1] == '"' || s[0] == '\'' && s[len(s)-1] == '\'') {
		return s[1 : len(s)-1]
	}
	return s
}
