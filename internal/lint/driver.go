package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
)

// This file implements the `go vet -vettool` protocol so trod-lint gets
// fully type-checked packages without depending on golang.org/x/tools.
// cmd/go invokes the tool once per package as
//
//	trod-lint <objdir>/vet.cfg
//
// where vet.cfg is the JSON below: the file list plus an ImportMap and
// PackageFile table pointing at gc export data for every dependency. The
// tool type-checks the files with the gc importer reading those export
// files, runs the analyzers, prints file:line:col diagnostics to stderr,
// writes the (empty — we use no cross-package facts) VetxOutput file that
// cmd/go caches, and exits 2 if anything was reported.

// vetConfig mirrors the JSON emitted by cmd/go/internal/work.buildVetConfig.
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool
	PackageVetx   map[string]string
	VetxOnly      bool
	VetxOutput    string
	GoVersion     string

	SucceedOnTypecheckFailure bool
}

// RunVetTool handles one vet.cfg invocation. Diagnostics go to out.
// Returns the process exit code: 0 clean, 1 internal/type error, 2
// diagnostics reported.
func RunVetTool(cfgPath string, out io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(out, "trod-lint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(out, "trod-lint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(out, "trod-lint: writing facts: %v\n", err)
			return 1
		}
	}
	// Dependency-only invocation: cmd/go wants facts (we have none), not
	// diagnostics — those come when the package is vetted directly.
	if cfg.VetxOnly || len(cfg.GoFiles) == 0 {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(out, "trod-lint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	tconf := types.Config{
		Importer:  importer.ForCompiler(fset, compiler, lookup),
		Sizes:     types.SizesFor(compiler, runtime.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := newTypesInfo()
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(out, "trod-lint: typecheck %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	lintCfg, err := resolveConfig(cfg.Dir)
	if err != nil {
		fmt.Fprintf(out, "trod-lint: %v\n", err)
		return 1
	}
	diags := Analyze(fset, files, pkg, info, lintCfg, Analyzers)
	for _, d := range diags {
		fmt.Fprintln(out, d.String())
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
}

// resolveConfig picks the trodlint.yaml for a package directory: the
// TRODLINT_CONFIG override, else the nearest file walking up to the
// module root, else compiled-in defaults.
func resolveConfig(dir string) (*Config, error) {
	if p := os.Getenv("TRODLINT_CONFIG"); p != "" {
		return LoadConfig(p)
	}
	if p := FindConfig(dir); p != "" {
		return LoadConfig(p)
	}
	return DefaultConfig(), nil
}

// RunStandalone implements `trod-lint [flags] [packages]`: it re-executes
// the Go toolchain with itself as the vettool, which hands every package
// in the build graph back to RunVetTool with full export data.
func RunStandalone(args []string, stdout, stderr io.Writer) int {
	patterns := []string{"./..."}
	var rest []string
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "-config", "--config":
			if i+1 >= len(args) {
				fmt.Fprintln(stderr, "trod-lint: -config requires a path")
				return 1
			}
			abs, err := filepath.Abs(args[i+1])
			if err != nil {
				fmt.Fprintf(stderr, "trod-lint: %v\n", err)
				return 1
			}
			os.Setenv("TRODLINT_CONFIG", abs)
			i++
		case "-list", "--list":
			for _, a := range Analyzers {
				fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
			}
			return 0
		case "-h", "-help", "--help":
			fmt.Fprintln(stdout, "usage: trod-lint [-config trodlint.yaml] [-list] [packages]")
			return 0
		default:
			rest = append(rest, args[i])
		}
	}
	if len(rest) > 0 {
		patterns = rest
	}
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(stderr, "trod-lint: %v\n", err)
		return 1
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, patterns...)...)
	cmd.Stdout = stdout
	cmd.Stderr = stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(stderr, "trod-lint: running go vet: %v\n", err)
		return 1
	}
	return 0
}
