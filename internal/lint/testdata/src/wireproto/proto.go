// Package wireproto is a miniature stand-in for repro/internal/protocol
// used by the wirecode fixture (config sets wirecode.protocol to this
// package's path).
package wireproto

type ErrCode uint8

const (
	CodeInternal ErrCode = iota + 1
	CodeBadRequest
	CodeConflict
)

type MsgType uint8

const (
	MsgPing MsgType = iota
	MsgError
)

type Message struct {
	Type MsgType
	Code ErrCode
	Err  string
}

type ServerError struct {
	Code ErrCode
	Msg  string
}

func (e *ServerError) Error() string { return e.Msg }

// Inside the protocol package itself CodeInternal may be named freely.
func defaultCode() ErrCode { return CodeInternal }
