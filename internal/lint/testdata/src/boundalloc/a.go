// Fixture for the boundalloc analyzer. Config for this fixture:
// sources = [encoding/binary.Uvarint], clamps = [boundalloc.clamp],
// limits = [boundalloc.maxItems].
package boundalloc

import "encoding/binary"

const maxItems = 1 << 10

func uncheckedSlice(src []byte) []uint64 {
	n, _ := binary.Uvarint(src)
	return make([]uint64, 0, n) // want `allocation sized by wire-decoded length "n" with no dominating bound check`
}

func uncheckedMap(src []byte) map[uint64]bool {
	n, _ := binary.Uvarint(src)
	return make(map[uint64]bool, n) // want `allocation sized by wire-decoded length "n"`
}

func uncheckedViaConversion(src []byte) []byte {
	n, _ := binary.Uvarint(src)
	return make([]byte, int(n)) // want `allocation sized by wire-decoded length`
}

func checkedAgainstRemaining(src []byte) []byte {
	n, used := binary.Uvarint(src)
	if n > uint64(len(src)-used) {
		return nil
	}
	return make([]byte, n) // ok: dominated by a uint64-space bound check
}

func checkedAgainstLimit(src []byte) []uint64 {
	n, _ := binary.Uvarint(src)
	if n > maxItems {
		return nil
	}
	return make([]uint64, 0, n) // ok: dominated by a named-limit check
}

func intSpaceCheck(src []byte) []byte {
	n, used := binary.Uvarint(src)
	if used+int(n) > len(src) { // want `bound check converts a wire-decoded length with int\(n\) before comparing`
		return nil
	}
	return make([]byte, n)
}

func clamped(src []byte) []uint64 {
	n, _ := binary.Uvarint(src)
	return make([]uint64, 0, clamp(n, maxItems)) // ok: clamp sanitizes the length
}

func clamp(n, max uint64) uint64 {
	if n > max {
		return max
	}
	return n
}

func reassignedClean(src []byte) []byte {
	n, _ := binary.Uvarint(src)
	n = 16
	return make([]byte, n) // ok: reassigned from a trusted value
}

func notWireLength(rows [][]byte) [][]byte {
	// len() of in-memory data is not wire-tainted.
	return make([][]byte, 0, len(rows))
}
