// Fixture for the nosleep analyzer. Config for this fixture:
// handlers = [nosleep.session.*], forbidden = [time.Sleep, time.Tick].
package nosleep

import "time"

type session struct{}

func (s *session) handle() {
	time.Sleep(time.Millisecond) // want `call to time.Sleep on the request path \(nosleep.session.handle\)`
	go func() {
		time.Sleep(time.Millisecond) // ok: handed to another goroutine
	}()
	s.execSQL()
}

func (s *session) execSQL() {
	<-time.Tick(time.Second) // want `call to time.Tick on the request path \(nosleep.session.execSQL\)`
}

func (s *session) timersAreFine() {
	t := time.NewTimer(time.Second) // ok: arming a timer does not block
	defer t.Stop()
}

func (s *session) allowedPause() {
	//trodlint:allow nosleep -- fixture: deliberate backpressure pause
	time.Sleep(time.Millisecond)
}

func backgroundLoop() {
	time.Sleep(time.Second) // ok: not a configured handler
}
