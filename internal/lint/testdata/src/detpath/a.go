// Fixture for the detpath analyzer. Config for this fixture:
// packages = [detpath], forbidden = [time.Now, time.Since, math/rand.*].
package detpath

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"
)

func wallClock() int64 {
	return time.Now().UnixNano() // want `call to time.Now in a deterministic path`
}

func randomJitter() int {
	return rand.Intn(4) // want `call to math/rand.Intn in a deterministic path`
}

func sleepIsFine() {
	time.Sleep(time.Millisecond) // ok: slow but not nondeterministic output
}

func mapOrderLeaks(m map[string]int) []string {
	var out []string
	for k := range m { // want `appends to "out" while ranging over a map and never sorts it`
		out = append(out, k)
	}
	return out
}

func collectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // ok: sorted before use
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func mapOrderThroughCallback(m map[string]func(func(string))) []string {
	var out []string
	for _, iter := range m { // want `appends to "out" while ranging over a map`
		iter(func(pk string) {
			out = append(out, pk)
		})
	}
	return out
}

func orderedSink(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `write to an ordered sink \(fmt.Fprintf\) while ranging over a map`
	}
}

func reduction(m map[uint64]bool) uint64 {
	var min uint64
	for k := range m { // ok: order-independent reduction, no append
		if min == 0 || k < min {
			min = k
		}
	}
	return min
}

func scratchInsideBody(m map[string][]int) int {
	total := 0
	for _, vs := range m { // ok: scratch slice never escapes the iteration
		var evens []int
		for _, v := range vs {
			if v%2 == 0 {
				evens = append(evens, v)
			}
		}
		total += len(evens)
	}
	return total
}

func allowedClock() int64 {
	//trodlint:allow detpath -- fixture: wall clock feeds a metrics counter, never serialized state
	return time.Now().UnixNano()
}
