// Fixture for the durerr analyzer. Config for this fixture:
// packages = [durerr], calls = [os.File.Sync, os.File.Close].
package durerr

import "os"

func silentClose(f *os.File) {
	f.Close() // want `error from os.File.Close is silently discarded`
}

func silentSync(f *os.File) {
	f.Sync() // want `error from os.File.Sync is silently discarded`
}

func deferredClose(f *os.File) {
	defer f.Close() // want `error from os.File.Close is discarded by defer`
}

func handled(f *os.File) error {
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

func explicitDiscard(f *os.File) {
	_ = f.Close() // ok: reviewed, greppable discard
}

func allowedDiscard(f *os.File) {
	//trodlint:allow durerr -- fixture: read-only handle, close error cannot lose data
	f.Close()
}

func otherMethodsUnaffected(f *os.File) {
	f.Name() // ok: not a configured call (and returns no error)
}
