// Fixture for the lockhold analyzer. Config for this fixture:
// mutexes = [lockhold.Store.mu], blocking = [time.Sleep, os.File.Sync].
package lockhold

import (
	"os"
	"sync"
	"time"
)

type Store struct {
	mu    sync.RWMutex
	other sync.Mutex // not configured; never reported
}

func (s *Store) blockUnderLock() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want `blocking call to time.Sleep while holding lockhold.Store.mu`
	s.mu.Unlock()
}

func (s *Store) blockUnderRLock(f *os.File) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f.Sync() // want `blocking call to os.File.Sync while holding lockhold.Store.mu`
}

func (s *Store) unlockAroundBlocking() {
	s.mu.Lock()
	s.mu.Unlock()
	time.Sleep(time.Millisecond) // ok: released before blocking
	s.mu.Lock()
	s.mu.Unlock()
}

// The WAL group-commit shape: a deferred unlock stays "held", but an
// explicit unlock inside the leader branch releases around the fsync.
func (s *Store) groupCommit(leader bool, f *os.File) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if leader {
		s.mu.Unlock()
		f.Sync() // ok: lock released around the sync
		s.mu.Lock()
	}
}

// An early-exit unlock inside a branch must not hide blocking calls on
// the fallthrough path.
func (s *Store) earlyExit(bad bool) {
	s.mu.Lock()
	if bad {
		s.mu.Unlock()
		return
	}
	time.Sleep(time.Millisecond) // want `blocking call to time.Sleep`
	s.mu.Unlock()
}

func (s *Store) unconfiguredMutex() {
	s.other.Lock()
	time.Sleep(time.Millisecond) // ok: s.other is not a configured mutex
	s.other.Unlock()
}

func (s *Store) receives(data chan int, sig chan struct{}) {
	s.mu.Lock()
	<-data // want `receive from non-signal channel \(chan int\) while holding lockhold.Store.mu`
	<-sig  // ok: chan struct{} is a signal channel
	select {
	case <-data: // ok: select with default never blocks
	default:
	}
	s.mu.Unlock()
}

func (s *Store) goroutineDoesNotHold() {
	s.mu.Lock()
	go func() {
		time.Sleep(time.Millisecond) // ok: new goroutine, lock not held there
	}()
	s.mu.Unlock()
}

func (s *Store) allowed() {
	s.mu.Lock()
	//trodlint:allow lockhold -- fixture: stop-the-world by design, mirrors WAL rotation
	time.Sleep(time.Millisecond)
	s.mu.Unlock()
}
