// Fixture for the wirecode analyzer. Config for this fixture:
// protocol = wireproto, packages = [wirecode].
package wirecode

import (
	"errors"
	"fmt"

	"wireproto"
)

func missingCode() *wireproto.Message {
	return &wireproto.Message{Type: wireproto.MsgError, Err: "boom"} // want `Type: MsgError but no Code`
}

func hasCode() *wireproto.Message {
	return &wireproto.Message{Type: wireproto.MsgError, Code: wireproto.CodeBadRequest, Err: "x"}
}

func notAnError() *wireproto.Message {
	return &wireproto.Message{Type: wireproto.MsgPing} // ok: not an error message
}

func positionalMissingCode() wireproto.Message {
	return wireproto.Message{wireproto.MsgError, wireproto.CodeConflict, "x"} // ok: positional literal sets Code
}

func serverErrNoCode() error {
	return &wireproto.ServerError{Msg: "x"} // want `ServerError literal without a Code`
}

func serverErrTyped() error {
	return &wireproto.ServerError{Code: wireproto.CodeConflict, Msg: "x"}
}

func internalLeak() wireproto.ErrCode {
	return wireproto.CodeInternal // want `use of wireproto.CodeInternal outside the protocol package`
}

func stringifiedWrap(err error) error {
	return fmt.Errorf("apply: %v", err) // want `stringifies an error without %w`
}

func properWrap(err error) error {
	return fmt.Errorf("apply: %w", err)
}

func sentinelWrapPlusCause(err error) error {
	// The deliberate two-error idiom: wrap the sentinel, stringify the cause.
	return fmt.Errorf("%w: %v", errors.ErrUnsupported, err)
}

func noErrorArgs(n int) error {
	return fmt.Errorf("bad message type %d", n) // ok: no error argument
}
