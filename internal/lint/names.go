package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Analyzer configuration refers to program entities by qualified name:
//
//	pkgpath.Func                  package-level function, e.g. time.Now
//	pkgpath.Type.Method           method (pointer receivers stripped), e.g. os.File.Sync
//	pkgpath.Type.Field            struct field, e.g. repro/internal/storage.Store.mu
//	pkgpath.*                     every exported name in a package, e.g. math/rand.*
//
// Interface methods are matched through the interface's own qualified
// name (net.Conn.Read matches a call through any net.Conn value).

// calleeName resolves the qualified name of a call's target, or "" if the
// call is through a function value, a builtin, or anything else that has
// no stable name.
func calleeName(info *types.Info, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return funcName(info.Uses[fun])
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			return methodName(sel)
		}
		// Package-qualified reference: pkg.Func.
		return funcName(info.Uses[fun.Sel])
	}
	return ""
}

func funcName(obj types.Object) string {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	sig := fn.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		if tn := namedOf(recv.Type()); tn != "" {
			return tn + "." + fn.Name()
		}
		return ""
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

func methodName(sel *types.Selection) string {
	fn, ok := sel.Obj().(*types.Func)
	if !ok {
		return ""
	}
	// Name the method after the receiver the call site sees (sel.Recv),
	// so a call through an interface value matches the interface's
	// qualified name even though sel.Obj may be declared elsewhere.
	if tn := namedOf(sel.Recv()); tn != "" {
		return tn + "." + fn.Name()
	}
	return funcName(fn)
}

// fieldName resolves a selector expression denoting a struct field access
// to pkgpath.Type.Field, or "" if it is not a field of a named type.
func fieldName(info *types.Info, sel *ast.SelectorExpr) string {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return ""
	}
	v, ok := s.Obj().(*types.Var)
	if !ok {
		return ""
	}
	// Walk the selection down to the struct that directly declares the
	// field, following the embedding index path.
	t := s.Recv()
	idx := s.Index()
	for i := 0; i < len(idx)-1; i++ {
		st, ok := derefStruct(t)
		if !ok {
			return ""
		}
		t = st.Field(idx[i]).Type()
	}
	if tn := namedOf(t); tn != "" {
		return tn + "." + v.Name()
	}
	return ""
}

func derefStruct(t types.Type) (*types.Struct, bool) {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	return st, ok
}

// namedOf returns pkgpath.Name for a (possibly pointer-to) named type.
func namedOf(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return obj.Name() // error, comparable, ...
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// exprString renders an expression for diagnostics.
func exprString(e ast.Expr) string { return types.ExprString(e) }

// matchName reports whether qualified name q matches any pattern in pats.
// A pattern ending in ".*" matches every name in that package.
func matchName(q string, pats []string) bool {
	if q == "" {
		return false
	}
	for _, p := range pats {
		if p == q {
			return true
		}
		if strings.HasSuffix(p, ".*") && strings.HasPrefix(q, p[:len(p)-1]) {
			return true
		}
	}
	return false
}

// isNamedType reports whether t (after stripping pointers) is the named
// type pkgpath.Name.
func isNamedType(t types.Type, pkgpath, name string) bool {
	return namedOf(t) == pkgpath+"."+name
}
