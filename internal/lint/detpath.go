package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DetpathAnalyzer guards the deterministic set — snapshot codec, WAL
// replay, crashtest/StoreDiff — which the crash-sweep harness and
// replication divergence checks rely on byte-for-byte. In the configured
// packages it flags:
//
//  1. calls to forbidden nondeterminism sources (time.Now, time.Since,
//     math/rand.*);
//  2. serialization in map iteration order: a range over a map whose body
//     appends to an outer slice that is never sorted afterwards in the
//     same function, or writes output directly (io.Writer methods,
//     fmt.Fprint*). The collect-keys-then-sort idiom passes.
var DetpathAnalyzer = &Analyzer{
	Name: "detpath",
	Doc:  "forbids nondeterminism (time, rand, map order) in replay/snapshot/diff paths",
	Run:  runDetpath,
}

func runDetpath(pass *Pass) {
	cfg := pass.Config.Detpath
	inSet := false
	for _, p := range cfg.Packages {
		if pass.Pkg.Path() == p {
			inSet = true
		}
	}
	if !inSet {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					if name := calleeName(pass.TypesInfo, n); matchName(name, cfg.Forbidden) {
						pass.Report(n.Pos(), "call to %s in a deterministic path; replay/snapshot byte-stability forbids it", name)
					}
				case *ast.RangeStmt:
					pass.checkMapRange(fd, n)
				}
				return true
			})
		}
	}
}

func (p *Pass) checkMapRange(fn *ast.FuncDecl, rng *ast.RangeStmt) {
	if _, ok := typeOf(p.TypesInfo, rng.X).Underlying().(*types.Map); !ok {
		return
	}
	// Direct writes inside the body serialize in map order — always
	// wrong. Function literals are descended into: a callback passed to
	// an iterator inside the range still runs once per map key.
	var appended []*types.Var
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			name := calleeName(p.TypesInfo, n)
			if isOrderedSink(name) {
				p.Report(n.Pos(), "write to an ordered sink (%s) while ranging over a map; iteration order is nondeterministic — collect and sort keys first", name)
				return true
			}
			// out = append(out, ...) detected via the assignment below.
		case *ast.AssignStmt:
			if v := appendTarget(p.TypesInfo, n); v != nil {
				appended = append(appended, v)
			}
		}
		return true
	})
	for _, v := range appended {
		// Declared inside the range body (e.g. a per-key scratch slice)
		// doesn't escape the iteration, so order can't leak.
		if v.Pos() >= rng.Body.Pos() && v.Pos() <= rng.Body.End() {
			continue
		}
		if sortedAfter(p.TypesInfo, fn, rng, v) {
			continue
		}
		p.Report(rng.Pos(), "appends to %q while ranging over a map and never sorts it; the result depends on map iteration order — collect keys and sort, or sort %q before use", v.Name(), v.Name())
	}
}

func isOrderedSink(name string) bool {
	if strings.HasPrefix(name, "fmt.Fprint") {
		return true
	}
	for _, suffix := range []string{".Write", ".WriteString", ".WriteByte", ".WriteRune"} {
		if strings.HasSuffix(name, suffix) {
			return true
		}
	}
	return false
}

// appendTarget returns the variable v in `v = append(v, ...)`.
func appendTarget(info *types.Info, s *ast.AssignStmt) *types.Var {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return nil
	}
	call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return nil
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" {
		return nil
	} else if _, ok := info.Uses[id].(*types.Builtin); !ok {
		return nil
	}
	lhs, ok := ast.Unparen(s.Lhs[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := info.Uses[lhs]
	if obj == nil {
		obj = info.Defs[lhs]
	}
	v, _ := obj.(*types.Var)
	return v
}

// sortedAfter reports whether v is passed to a sort.*/slices.* call after
// the range statement within the same function.
func sortedAfter(info *types.Info, fn *ast.FuncDecl, rng *ast.RangeStmt, v *types.Var) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found || call.Pos() < rng.End() {
			return !found
		}
		name := calleeName(info, call)
		if !strings.HasPrefix(name, "sort.") && !strings.HasPrefix(name, "slices.") {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && info.Uses[id] == v {
				found = true
			}
		}
		return !found
	})
	return found
}
