package lint

// Analyzers is the full trod-lint suite in stable reporting order.
var Analyzers = []*Analyzer{
	LockholdAnalyzer,
	WirecodeAnalyzer,
	BoundallocAnalyzer,
	DetpathAnalyzer,
	DurerrAnalyzer,
	NosleepAnalyzer,
}

// LookupAnalyzer returns the analyzer with the given name, or nil.
func LookupAnalyzer(name string) *Analyzer {
	for _, a := range Analyzers {
		if a.Name == name {
			return a
		}
	}
	return nil
}
