package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// BoundallocAnalyzer preserves the PR 4 crafted-frame hardening as a rule
// instead of a memory: a length decoded off the wire (a uvarint) must be
// bound-checked before it sizes an allocation, and the check must happen
// in uint64 space.
//
// Mechanics: uint64 results of the configured source functions
// (readUvarint and friends) are tainted. A comparison that mentions a
// tainted variable clears its taint — guards like
// `if n > uint64(len(src)-off)` or `if n > maxResultColumns` both count.
// A make([]T, n)/make(map, n) sized by a still-tainted variable is
// reported, unless the size goes through a configured clamp function
// (preallocCap). A comparison that first converts the tainted value with
// int(n) is reported separately: for n >= 2^63 the conversion wraps
// negative and the guard passes, so the comparison itself is the bug.
var BoundallocAnalyzer = &Analyzer{
	Name: "boundalloc",
	Doc:  "flags allocations sized by wire-decoded lengths without a uint64-space bound check",
	Run:  runBoundalloc,
}

func runBoundalloc(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &boundallocWalker{pass: pass, tainted: map[*types.Var]token.Pos{}}
			w.block(fd.Body.List)
		}
	}
}

type boundallocWalker struct {
	pass    *Pass
	tainted map[*types.Var]token.Pos // wire-decoded length -> decode position
}

func (w *boundallocWalker) block(stmts []ast.Stmt) {
	for _, s := range stmts {
		w.stmt(s)
	}
}

func (w *boundallocWalker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.AssignStmt:
		w.assign(s)
	case *ast.IfStmt:
		w.stmt(s.Init)
		w.scan(s.Cond)
		w.block(s.Body.List)
		w.stmt(s.Else)
	case *ast.ForStmt:
		w.stmt(s.Init)
		w.scan(s.Cond)
		w.block(s.Body.List)
		w.stmt(s.Post)
	case *ast.RangeStmt:
		w.scan(s.X)
		w.block(s.Body.List)
	case *ast.SwitchStmt:
		w.stmt(s.Init)
		w.scan(s.Tag)
		w.block(s.Body.List)
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init)
		w.block(s.Body.List)
	case *ast.CaseClause:
		for _, e := range s.List {
			w.scan(e)
		}
		w.block(s.Body)
	case *ast.CommClause:
		w.stmt(s.Comm)
		w.block(s.Body)
	case *ast.SelectStmt:
		w.block(s.Body.List)
	case *ast.BlockStmt:
		w.block(s.List)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	case *ast.ExprStmt:
		w.scan(s.X)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.scan(e)
		}
	case *ast.DeferStmt:
		w.scan(s.Call)
	case *ast.GoStmt:
		w.scan(s.Call)
	case *ast.SendStmt:
		w.scan(s.Chan)
		w.scan(s.Value)
	case *ast.IncDecStmt:
		w.scan(s.X)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.scan(v)
					}
				}
			}
		}
	}
}

// assign updates taint: a source call taints its uint64 results, a clamp
// call or any other reassignment clears the targets.
func (w *boundallocWalker) assign(s *ast.AssignStmt) {
	cfg := w.pass.Config.Boundalloc
	fromSource := false
	if len(s.Rhs) == 1 {
		if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok {
			name := calleeName(w.pass.TypesInfo, call)
			if matchName(name, cfg.Sources) {
				fromSource = true
			}
		}
	}
	for _, rhs := range s.Rhs {
		w.scan(rhs)
	}
	for _, lhs := range s.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			w.scan(lhs)
			continue
		}
		v := w.varOf(id)
		if v == nil {
			continue
		}
		if fromSource && isUint64(v.Type()) {
			w.tainted[v] = id.Pos()
		} else {
			delete(w.tainted, v)
		}
	}
}

// scan walks an expression for bound-check comparisons (which clear
// taint), make calls sized by tainted values (reported), and nested
// function literals (fresh state).
func (w *boundallocWalker) scan(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			inner := &boundallocWalker{pass: w.pass, tainted: map[*types.Var]token.Pos{}}
			inner.block(n.Body.List)
			return false
		case *ast.BinaryExpr:
			w.compare(n)
		case *ast.CallExpr:
			w.call(n)
		}
		return true
	})
}

func (w *boundallocWalker) compare(b *ast.BinaryExpr) {
	switch b.Op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ:
	default:
		return
	}
	refs := w.taintedIn(b)
	if len(refs) == 0 {
		return
	}
	if conv := w.intConvOfTainted(b); conv != nil {
		w.pass.Report(b.Pos(), "bound check converts a wire-decoded length with %s before comparing; a length >= 2^63 wraps negative and passes — compare in uint64 space first", exprString(conv))
	}
	for _, v := range refs {
		delete(w.tainted, v)
	}
}

func (w *boundallocWalker) call(call *ast.CallExpr) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "make" {
		return
	}
	if _, ok := w.pass.TypesInfo.Uses[id].(*types.Builtin); !ok {
		return
	}
	for _, size := range call.Args[1:] {
		for _, v := range w.taintedIn(size) {
			limits := w.pass.Config.Boundalloc.Limits
			hint := "the remaining input bytes"
			if len(limits) > 0 {
				hint += " or a named limit (e.g. " + shortName(limits[0]) + ")"
			}
			w.pass.Report(size.Pos(), "allocation sized by wire-decoded length %q with no dominating bound check; compare it against %s first (decoded at line %d)",
				exprString(size), hint, w.pass.Fset.Position(w.tainted[v]).Line)
			delete(w.tainted, v) // one report per decode site
		}
	}
}

// taintedIn collects tainted variables referenced in e, skipping subtrees
// that pass through a configured clamp function.
func (w *boundallocWalker) taintedIn(e ast.Expr) []*types.Var {
	var out []*types.Var
	seen := map[*types.Var]bool{}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if matchName(calleeName(w.pass.TypesInfo, n), w.pass.Config.Boundalloc.Clamps) {
				return false
			}
		case *ast.Ident:
			if v := w.varOf(n); v != nil && !seen[v] {
				if _, ok := w.tainted[v]; ok {
					seen[v] = true
					out = append(out, v)
				}
			}
		}
		return true
	})
	return out
}

// intConvOfTainted finds a signed-integer conversion of a tainted value
// inside a comparison, e.g. the int(n) in `off+int(n) > len(src)`.
func (w *boundallocWalker) intConvOfTainted(b *ast.BinaryExpr) ast.Expr {
	var found ast.Expr
	ast.Inspect(b, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found != nil || len(call.Args) != 1 {
			return found == nil
		}
		tv, ok := w.pass.TypesInfo.Types[call.Fun]
		if !ok || !tv.IsType() {
			return true
		}
		basic, ok := tv.Type.Underlying().(*types.Basic)
		if !ok || basic.Info()&types.IsInteger == 0 || basic.Info()&types.IsUnsigned != 0 {
			return true
		}
		if len(w.taintedIn(call.Args[0])) > 0 {
			found = call
		}
		return true
	})
	return found
}

func (w *boundallocWalker) varOf(id *ast.Ident) *types.Var {
	info := w.pass.TypesInfo
	if obj, ok := info.Defs[id]; ok {
		v, _ := obj.(*types.Var)
		return v
	}
	v, _ := info.Uses[id].(*types.Var)
	return v
}

func isUint64(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint64
}

func shortName(qualified string) string {
	if i := strings.LastIndexByte(qualified, '.'); i >= 0 {
		return qualified[i+1:]
	}
	return qualified
}
