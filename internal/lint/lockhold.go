package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockholdAnalyzer enforces the PR 3 group-commit discipline: no call to
// a configured blocking function (WaitDurable, fsync, net.Conn I/O,
// time.Sleep) and no receive from a non-signal channel while one of the
// configured mutexes (store/WAL/source) is held.
//
// The analysis is a linear, source-order scan of each function body.
// mu.Lock()/mu.RLock() marks the mutex held; an explicit
// mu.Unlock()/mu.RUnlock() statement clears it; a deferred unlock does
// not (it runs at return), which is exactly what makes the
// unlock-fsync-relock shape of WaitDurable pass and a plain
// fsync-under-lock fail. Branch bodies are scanned with a copy of the
// held set so an early-exit unlock inside an if does not hide blocking
// calls after it. Function literals are scanned independently with an
// empty held set.
var LockholdAnalyzer = &Analyzer{
	Name: "lockhold",
	Doc:  "flags blocking calls made while holding a store/WAL/source mutex",
	Run:  runLockhold,
}

func runLockhold(pass *Pass) {
	w := &lockholdWalker{pass: pass, held: map[string]token.Pos{}}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					w.resetAnd(func() { w.stmts(fn.Body.List) })
				}
				return false
			case *ast.FuncLit:
				// Reached only for literals outside any FuncDecl
				// (package-level vars); nested ones are handled by expr.
				w.resetAnd(func() { w.stmts(fn.Body.List) })
				return false
			}
			return true
		})
	}
}

type lockholdWalker struct {
	pass *Pass
	held map[string]token.Pos // mutex qualified name -> Lock() position
}

func (w *lockholdWalker) resetAnd(fn func()) {
	saved := w.held
	w.held = map[string]token.Pos{}
	fn()
	w.held = saved
}

// withClone runs fn against a copy of the held set and then restores the
// original, so conditional lock-state changes stay local to the branch.
func (w *lockholdWalker) withClone(fn func()) {
	saved := w.held
	clone := make(map[string]token.Pos, len(saved))
	for k, v := range saved {
		clone[k] = v
	}
	w.held = clone
	fn()
	w.held = saved
}

// mutexOp decodes calls of the form x.mu.Lock() for configured mutexes.
func (w *lockholdWalker) mutexOp(call *ast.CallExpr) (mutex, method string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", ""
	}
	field, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	name := fieldName(w.pass.TypesInfo, field)
	if !matchName(name, w.pass.Config.Lockhold.Mutexes) {
		return "", ""
	}
	return name, sel.Sel.Name
}

func (w *lockholdWalker) stmts(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

func (w *lockholdWalker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if mu, op := w.mutexOp(call); mu != "" {
				switch op {
				case "Lock", "RLock":
					w.held[mu] = call.Pos()
				case "Unlock", "RUnlock":
					delete(w.held, mu)
				}
				return
			}
		}
		w.expr(s.X)
	case *ast.DeferStmt:
		// A deferred unlock releases at return; the body below it still
		// runs under the lock, so held is unchanged. Other deferred
		// calls: only their arguments evaluate now.
		if mu, _ := w.mutexOp(s.Call); mu != "" {
			return
		}
		for _, a := range s.Call.Args {
			w.expr(a)
		}
	case *ast.GoStmt:
		// The new goroutine does not inherit the caller's lock; only the
		// argument expressions evaluate here.
		for _, a := range s.Call.Args {
			w.expr(a)
		}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e)
		}
		for _, e := range s.Lhs {
			w.expr(e)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e)
		}
	case *ast.IfStmt:
		w.stmt(s.Init)
		w.expr(s.Cond)
		w.withClone(func() { w.stmts(s.Body.List) })
		if s.Else != nil {
			w.withClone(func() { w.stmt(s.Else) })
		}
	case *ast.ForStmt:
		w.stmt(s.Init)
		w.expr(s.Cond)
		w.withClone(func() {
			w.stmts(s.Body.List)
			w.stmt(s.Post)
		})
	case *ast.RangeStmt:
		if t, ok := typeOf(w.pass.TypesInfo, s.X).Underlying().(*types.Chan); ok {
			w.checkReceive(s.X.Pos(), t)
		}
		w.expr(s.X)
		w.withClone(func() { w.stmts(s.Body.List) })
	case *ast.SwitchStmt:
		w.stmt(s.Init)
		w.expr(s.Tag)
		w.withClone(func() { w.stmts(s.Body.List) })
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init)
		w.stmt(s.Assign)
		w.withClone(func() { w.stmts(s.Body.List) })
	case *ast.SelectStmt:
		// A select with a default case never blocks; its comm
		// expressions are fair game under a lock.
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			w.withClone(func() {
				if cc.Comm != nil && !hasDefault {
					w.stmt(cc.Comm)
				}
				w.stmts(cc.Body)
			})
		}
	case *ast.CaseClause:
		for _, e := range s.List {
			w.expr(e)
		}
		w.withClone(func() { w.stmts(s.Body) })
	case *ast.BlockStmt:
		w.withClone(func() { w.stmts(s.List) })
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	case *ast.SendStmt:
		w.expr(s.Chan)
		w.expr(s.Value)
	case *ast.IncDecStmt:
		w.expr(s.X)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v)
					}
				}
			}
		}
	}
}

// expr scans an expression tree for blocking calls and channel receives.
func (w *lockholdWalker) expr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.resetAnd(func() { w.stmts(n.Body.List) })
			return false
		case *ast.CallExpr:
			w.checkCall(n)
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if t, ok := typeOf(w.pass.TypesInfo, n.X).Underlying().(*types.Chan); ok {
					w.checkReceive(n.Pos(), t)
				}
			}
		}
		return true
	})
}

func (w *lockholdWalker) checkCall(call *ast.CallExpr) {
	if len(w.held) == 0 {
		return
	}
	name := calleeName(w.pass.TypesInfo, call)
	if !matchName(name, w.pass.Config.Lockhold.Blocking) {
		return
	}
	for mu, at := range w.held {
		w.pass.Report(call.Pos(), "blocking call to %s while holding %s (locked at line %d)",
			name, mu, w.pass.Fset.Position(at).Line)
	}
}

// checkReceive flags receives from non-signal channels under a lock.
// chan struct{} carries no data and is the conventional signal/close
// channel shape, so it is exempt.
func (w *lockholdWalker) checkReceive(pos token.Pos, ch *types.Chan) {
	if len(w.held) == 0 {
		return
	}
	if st, ok := ch.Elem().Underlying().(*types.Struct); ok && st.NumFields() == 0 {
		return
	}
	for mu, at := range w.held {
		w.pass.Report(pos, "receive from non-signal channel (chan %s) while holding %s (locked at line %d)",
			ch.Elem(), mu, w.pass.Fset.Position(at).Line)
	}
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if t := info.TypeOf(e); t != nil {
		return t
	}
	return types.Typ[types.Invalid]
}
