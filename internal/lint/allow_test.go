package lint_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"repro/internal/lint"
)

// analyzeSrc runs the suite over a single self-contained source string
// (no imports), package path "p".
func analyzeSrc(t *testing.T, src string, cfg *lint.Config) []lint.Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	pkg, err := (&types.Config{}).Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return lint.Analyze(fset, []*ast.File{f}, pkg, info, cfg, lint.Analyzers)
}

func detpathOnlyConfig() *lint.Config {
	cfg := lint.DefaultConfig()
	cfg.Detpath.Packages = []string{"p"}
	return cfg
}

const mapOrderBody = `
func f(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
`

func TestAllowSuppresses(t *testing.T) {
	src := `package p

func f(m map[string]int) []string {
	var out []string
	//trodlint:allow detpath -- order is re-sorted by the caller
	for k := range m {
		out = append(out, k)
	}
	return out
}
`
	if diags := analyzeSrc(t, src, detpathOnlyConfig()); len(diags) != 0 {
		t.Fatalf("expected annotation to suppress all diagnostics, got %v", diags)
	}
}

func TestAllowRequiresJustification(t *testing.T) {
	src := `package p

func f(m map[string]int) []string {
	var out []string
	//trodlint:allow detpath
	for k := range m {
		out = append(out, k)
	}
	return out
}
`
	diags := analyzeSrc(t, src, detpathOnlyConfig())
	var sawBadAllow, sawOriginal bool
	for _, d := range diags {
		if d.Analyzer == "allow" && strings.Contains(d.Message, "requires a justification") {
			sawBadAllow = true
		}
		if d.Analyzer == "detpath" {
			sawOriginal = true
		}
	}
	if !sawBadAllow {
		t.Errorf("missing 'requires a justification' diagnostic: %v", diags)
	}
	if !sawOriginal {
		t.Errorf("a justification-less allow must not suppress the finding: %v", diags)
	}
}

func TestAllowUnknownAnalyzer(t *testing.T) {
	src := `package p

func f(m map[string]int) []string {
	var out []string
	//trodlint:allow nosuch -- misspelled
	for k := range m {
		out = append(out, k)
	}
	return out
}
`
	diags := analyzeSrc(t, src, detpathOnlyConfig())
	var sawUnknown bool
	for _, d := range diags {
		if d.Analyzer == "allow" && strings.Contains(d.Message, "unknown analyzer") {
			sawUnknown = true
		}
	}
	if !sawUnknown {
		t.Errorf("missing 'unknown analyzer' diagnostic: %v", diags)
	}
}

func TestTestFilesAreSkipped(t *testing.T) {
	fset := token.NewFileSet()
	src := `package p
` + mapOrderBody
	f, err := parser.ParseFile(fset, "p_test.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	pkg, err := (&types.Config{}).Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	if diags := lint.Analyze(fset, []*ast.File{f}, pkg, info, detpathOnlyConfig(), lint.Analyzers); len(diags) != 0 {
		t.Fatalf("_test.go files must be exempt, got %v", diags)
	}
}

func TestAnalyzerSubset(t *testing.T) {
	src := "package p\n" + mapOrderBody
	cfg := detpathOnlyConfig()
	cfg.Analyzers = []string{"lockhold"} // detpath disabled
	if diags := analyzeSrc(t, src, cfg); len(diags) != 0 {
		t.Fatalf("disabled analyzer still reported: %v", diags)
	}
	cfg.Analyzers = nil
	if diags := analyzeSrc(t, src, cfg); len(diags) == 0 {
		t.Fatal("expected detpath diagnostic with full suite enabled")
	}
}
