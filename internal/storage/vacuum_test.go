package storage

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/schema"
	"repro/internal/value"
)

// mutateKV commits one update or delete (after == nil) against the kv table.
func mutateKV(t *testing.T, s *Store, k string, before, after value.Row) uint64 {
	t.Helper()
	op := OpUpdate
	if after == nil {
		op = OpDelete
	}
	key := schema.EncodeKeyTuple(value.Row{value.Text(k)})
	seq, err := s.Commit(CommitRequest{
		TxnID:    s.NextTxnID(),
		Snapshot: s.CurrentSeq(),
		Changes:  []Change{{Table: "kv", Key: key, Op: op, Before: before, After: after}},
	})
	if err != nil {
		t.Fatalf("mutate %s: %v", k, err)
	}
	return seq
}

// readAll collects the kv table's visible rows at seq as "k=v" strings.
func readAll(s *Store, seq uint64) []string {
	var out []string
	s.ScanRange("kv", "", "", seq, func(_ string, row value.Row) bool {
		out = append(out, fmt.Sprintf("%s=%d", row[0].AsText(), row[1].AsInt()))
		return true
	})
	return out
}

// TestVacuumDifferentialVisibility is the core GC correctness check: every
// read at or after the vacuum horizon must observe exactly the same rows
// after the vacuum as before it.
func TestVacuumDifferentialVisibility(t *testing.T) {
	s, tbl := newKVStore(t)
	rng := rand.New(rand.NewSource(42))
	live := map[string]int64{}
	// A churny history: inserts, updates, deletes over a small key space.
	for i := 0; i < 400; i++ {
		k := fmt.Sprintf("k%02d", rng.Intn(20))
		switch cur, ok := live[k]; {
		case !ok:
			insertKV(t, s, tbl, k, int64(i))
			live[k] = int64(i)
		case rng.Intn(3) == 0:
			mutateKV(t, s, k, value.Row{value.Text(k), value.Int(cur)}, nil)
			delete(live, k)
		default:
			mutateKV(t, s, k, value.Row{value.Text(k), value.Int(cur)}, value.Row{value.Text(k), value.Int(int64(i))})
			live[k] = int64(i)
		}
	}
	head := s.CurrentSeq()
	horizon := head - 100

	before := map[uint64][]string{}
	for seq := horizon; seq <= head; seq++ {
		before[seq] = readAll(s, seq)
	}
	st := s.Vacuum(horizon)
	if st.LastHorizon != horizon {
		t.Fatalf("effective horizon = %d, want %d", st.LastHorizon, horizon)
	}
	if st.DroppedRowVersions == 0 {
		t.Fatal("400 commits over 20 keys must leave something to vacuum")
	}
	for seq := horizon; seq <= head; seq++ {
		after := readAll(s, seq)
		if fmt.Sprint(after) != fmt.Sprint(before[seq]) {
			t.Fatalf("read at seq %d changed across vacuum:\n before %v\n after  %v", seq, before[seq], after)
		}
	}
	if got := s.HistoryRetainedFrom(); got != horizon {
		t.Fatalf("HistoryRetainedFrom = %d, want %d", got, horizon)
	}
}

// TestVacuumRemovesTombstonedKeys checks physical removal: a row deleted
// before the horizon disappears from the tree entirely, not just logically.
func TestVacuumRemovesTombstonedKeys(t *testing.T) {
	s, tbl := newKVStore(t)
	insertKV(t, s, tbl, "dead", 1)
	mutateKV(t, s, "dead", value.Row{value.Text("dead"), value.Int(1)}, nil)
	insertKV(t, s, tbl, "live", 2)
	head := s.CurrentSeq()

	if census := s.VersionCensus(); census.ResidentRowKeys != 2 {
		t.Fatalf("pre-vacuum ResidentRowKeys = %d, want 2", census.ResidentRowKeys)
	}
	st := s.Vacuum(head)
	if st.DroppedRowKeys != 1 {
		t.Fatalf("DroppedRowKeys = %d, want 1 (the tombstoned entry)", st.DroppedRowKeys)
	}
	census := s.VersionCensus()
	if census.ResidentRowKeys != 1 || census.ResidentRowVersions != 1 {
		t.Fatalf("post-vacuum census = %+v, want exactly the live row", census)
	}
	if rows := readAll(s, head); len(rows) != 1 || rows[0] != "live=2" {
		t.Fatalf("post-vacuum read = %v", rows)
	}
}

// TestVacuumClampsToPins: a pinned snapshot caps the effective horizon, and
// the pinned read stays answerable; after unpinning, vacuum proceeds.
func TestVacuumClampsToPins(t *testing.T) {
	s, tbl := newKVStore(t)
	insertKV(t, s, tbl, "a", 1)
	pin := s.PinSnapshot()
	for i := int64(2); i <= 10; i++ {
		mutateKV(t, s, "a", nil, value.Row{value.Text("a"), value.Int(i)})
	}
	head := s.CurrentSeq()

	st := s.Vacuum(head)
	if st.LastHorizon != pin {
		t.Fatalf("effective horizon = %d, want clamp to pin %d", st.LastHorizon, pin)
	}
	if row, ok := s.Get("kv", schema.EncodeKeyTuple(value.Row{value.Text("a")}), pin); !ok || row[1].AsInt() != 1 {
		t.Fatalf("pinned read after clamped vacuum = %v, %v; want a=1", row, ok)
	}
	s.UnpinSnapshot(pin)
	st = s.Vacuum(head)
	if st.LastHorizon != head {
		t.Fatalf("post-unpin horizon = %d, want %d", st.LastHorizon, head)
	}
	if census := s.VersionCensus(); census.ResidentRowVersions != 1 {
		t.Fatalf("post-unpin census = %+v, want single version", census)
	}
}

// TestVacuumFloorRefusesCloneAt: time travel below the floor fails with the
// typed error instead of returning plausible-but-empty state.
func TestVacuumFloorRefusesCloneAt(t *testing.T) {
	s, tbl := newKVStore(t)
	for i := int64(1); i <= 10; i++ {
		insertKV(t, s, tbl, fmt.Sprintf("k%d", i), i)
	}
	head := s.CurrentSeq()
	s.Vacuum(head - 2)

	if _, err := s.CloneAt(head - 5); !errors.Is(err, ErrHistoryTruncated) {
		t.Fatalf("CloneAt below floor: err = %v, want ErrHistoryTruncated", err)
	}
	if _, err := s.CloneAt(head - 2); err != nil {
		t.Fatalf("CloneAt at floor: %v", err)
	}
	if _, err := s.CloneAt(head); err != nil {
		t.Fatalf("CloneAt at head: %v", err)
	}
}

// TestVacuumHorizonClamps: horizons beyond the head clamp to the head, and a
// second vacuum at or below the floor is a no-op.
func TestVacuumHorizonClamps(t *testing.T) {
	s, tbl := newKVStore(t)
	insertKV(t, s, tbl, "a", 1)
	mutateKV(t, s, "a", nil, value.Row{value.Text("a"), value.Int(2)})
	head := s.CurrentSeq()

	st := s.Vacuum(head + 100)
	if st.LastHorizon != head {
		t.Fatalf("over-head horizon = %d, want clamp to %d", st.LastHorizon, head)
	}
	dropped := st.DroppedRowVersions
	if dropped != 1 {
		t.Fatalf("DroppedRowVersions = %d, want 1", dropped)
	}
	if st = s.Vacuum(head); st.DroppedRowVersions != 0 {
		t.Fatalf("vacuum at floor dropped %d versions, want 0", st.DroppedRowVersions)
	}
	totals := s.VacuumTotals()
	if totals.Runs != 2 || totals.DroppedRowVersions != dropped {
		t.Fatalf("VacuumTotals = %+v", totals)
	}
}

// TestVacuumVsPinnedScanRace runs vacuums concurrently with a pinned
// snapshot scan; meaningful chiefly under -race, but the stability assertion
// holds regardless: the pinned reader's view never changes.
func TestVacuumVsPinnedScanRace(t *testing.T) {
	s, tbl := newKVStore(t)
	for i := 0; i < 50; i++ {
		insertKV(t, s, tbl, fmt.Sprintf("k%02d", i), int64(i))
	}
	pin := s.PinSnapshot()
	want := fmt.Sprint(readAll(s, pin))

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			k := fmt.Sprintf("k%02d", i%50)
			mutateKV(t, s, k, nil, value.Row{value.Text(k), value.Int(int64(i + 1000))})
			s.Vacuum(s.CurrentSeq())
		}
	}()
	for i := 0; i < 200; i++ {
		if got := fmt.Sprint(readAll(s, pin)); got != want {
			close(stop)
			wg.Wait()
			t.Fatalf("pinned scan changed under concurrent vacuum (iteration %d):\n want %v\n got  %v", i, want, got)
		}
	}
	close(stop)
	wg.Wait()
	s.UnpinSnapshot(pin)
}

// TestBTreeDelete exercises the non-rebalancing removal path directly,
// including the underfull/empty-node states it deliberately leaves behind.
func TestBTreeDelete(t *testing.T) {
	tr := newBTree[int]()
	if tr.Delete("missing") {
		t.Fatal("delete on empty tree should report absent")
	}
	const n = 3000
	rng := rand.New(rand.NewSource(7))
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key%06d", i)
	}
	for _, i := range rng.Perm(n) {
		tr.Set(keys[i], i)
	}
	// Delete a random two-thirds, verifying membership via a reference map.
	ref := map[string]bool{}
	for _, k := range keys {
		ref[k] = true
	}
	for _, i := range rng.Perm(n)[:2*n/3] {
		if !tr.Delete(keys[i]) {
			t.Fatalf("delete %q reported absent", keys[i])
		}
		if tr.Delete(keys[i]) {
			t.Fatalf("double delete %q reported present", keys[i])
		}
		delete(ref, keys[i])
	}
	if tr.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(ref))
	}
	var want []string
	for k := range ref {
		want = append(want, k)
	}
	sort.Strings(want)
	var got []string
	tr.Ascend(func(k string, v int) bool {
		got = append(got, k)
		return true
	})
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("Ascend after deletes: %d keys, want %d", len(got), len(want))
	}
	for k := range ref {
		if _, ok := tr.Get(k); !ok {
			t.Fatalf("surviving key %q unreachable", k)
		}
	}
	// The degraded (unbalanced) tree must still absorb inserts: put the
	// deleted keys back and verify full recovery.
	for _, k := range keys {
		if !ref[k] {
			tr.Set(k, 0)
		}
	}
	if tr.Len() != n {
		t.Fatalf("Len after reinsert = %d, want %d", tr.Len(), n)
	}
	count := 0
	prev := ""
	tr.Ascend(func(k string, v int) bool {
		if k <= prev {
			t.Fatalf("out of order after reinsert: %q after %q", k, prev)
		}
		prev = k
		count++
		return true
	})
	if count != n {
		t.Fatalf("Ascend count after reinsert = %d, want %d", count, n)
	}
}

// TestBTreeDeleteDrain empties trees of varied shapes one key at a time, in
// orders chosen to hit the internal-hit fallbacks (empty predecessor
// subtree, empty successor subtree, both empty).
func TestBTreeDeleteDrain(t *testing.T) {
	for _, n := range []int{1, 2, 31, 32, 63, 64, 100, 1000, 2048} {
		for seed := int64(0); seed < 3; seed++ {
			tr := newBTree[int]()
			rng := rand.New(rand.NewSource(seed))
			for _, i := range rng.Perm(n) {
				tr.Set(fmt.Sprintf("k%05d", i), i)
			}
			order := rng.Perm(n)
			if seed == 0 {
				sort.Ints(order) // ascending drain empties left spines first
			}
			for idx, i := range order {
				if !tr.Delete(fmt.Sprintf("k%05d", i)) {
					t.Fatalf("n=%d seed=%d: delete %d reported absent", n, seed, i)
				}
				if tr.Len() != n-idx-1 {
					t.Fatalf("n=%d seed=%d: Len = %d after %d deletes", n, seed, tr.Len(), idx+1)
				}
			}
			tr.Ascend(func(k string, v int) bool {
				t.Fatalf("n=%d seed=%d: drained tree still yields %q", n, seed, k)
				return false
			})
		}
	}
}
