package storage

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/schema"
	"repro/internal/value"
)

func mustTable(t *testing.T, name string, cols []schema.Column, pk []string) *schema.Table {
	t.Helper()
	tbl, err := schema.NewTable(name, cols, pk)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func kvTable(t *testing.T, name string) *schema.Table {
	return mustTable(t, name, []schema.Column{
		{Name: "k", Type: value.KindText},
		{Name: "v", Type: value.KindInt},
	}, []string{"k"})
}

func newKVStore(t *testing.T) (*Store, *schema.Table) {
	t.Helper()
	s := NewStore()
	tbl := kvTable(t, "kv")
	if err := s.CreateTable(tbl, false); err != nil {
		t.Fatal(err)
	}
	return s, tbl
}

func insertKV(t *testing.T, s *Store, tbl *schema.Table, k string, v int64) uint64 {
	t.Helper()
	row := value.Row{value.Text(k), value.Int(v)}
	seq, err := s.Commit(CommitRequest{
		TxnID:    s.NextTxnID(),
		Snapshot: s.CurrentSeq(),
		Changes:  []Change{{Table: tbl.Name, Key: tbl.EncodePrimaryKey(row), Op: OpInsert, After: row}},
	})
	if err != nil {
		t.Fatalf("insert %s=%d: %v", k, v, err)
	}
	return seq
}

func TestOpString(t *testing.T) {
	if OpInsert.String() != "Insert" || OpUpdate.String() != "Update" || OpDelete.String() != "Delete" {
		t.Error("Op names wrong")
	}
	if Op(9).String() != "Op(9)" {
		t.Error("unknown op name wrong")
	}
}

func TestCreateDropTable(t *testing.T) {
	s := NewStore()
	tbl := kvTable(t, "t1")
	if err := s.CreateTable(tbl, false); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateTable(tbl, false); err == nil {
		t.Error("duplicate create should fail")
	}
	if err := s.CreateTable(tbl, true); err != nil {
		t.Error("IF NOT EXISTS should succeed")
	}
	if s.Table("T1") == nil {
		t.Error("lookup should be case-insensitive")
	}
	if got := s.Tables(); len(got) != 1 || got[0] != "t1" {
		t.Errorf("Tables() = %v", got)
	}
	if err := s.DropTable("t1", false); err != nil {
		t.Fatal(err)
	}
	if err := s.DropTable("t1", false); err == nil {
		t.Error("dropping missing table should fail")
	}
	if err := s.DropTable("t1", true); err != nil {
		t.Error("DROP IF EXISTS should succeed")
	}
}

func TestInsertGetScan(t *testing.T) {
	s, tbl := newKVStore(t)
	for i := 0; i < 10; i++ {
		insertKV(t, s, tbl, fmt.Sprintf("k%02d", i), int64(i))
	}
	seq := s.CurrentSeq()
	row := value.Row{value.Text("k03"), value.Int(3)}
	got, ok := s.Get("kv", tbl.EncodePrimaryKey(row), seq)
	if !ok || got[1].AsInt() != 3 {
		t.Fatalf("Get = %v, %v", got, ok)
	}
	var keys []string
	s.ScanRange("kv", "", "", seq, func(k string, r value.Row) bool {
		keys = append(keys, r[0].AsText())
		return true
	})
	if len(keys) != 10 || !sort.StringsAreSorted(keys) {
		t.Errorf("scan = %v", keys)
	}
	// Bounded scan.
	lo := schema.EncodeKeyTuple(value.Row{value.Text("k03")})
	hi := schema.EncodeKeyTuple(value.Row{value.Text("k06")})
	keys = nil
	s.ScanRange("kv", lo, hi, seq, func(k string, r value.Row) bool {
		keys = append(keys, r[0].AsText())
		return true
	})
	if fmt.Sprint(keys) != "[k03 k04 k05]" {
		t.Errorf("bounded scan = %v", keys)
	}
	if s.RowCount("kv", seq) != 10 {
		t.Error("RowCount wrong")
	}
}

func TestSnapshotIsolationAndTimeTravel(t *testing.T) {
	s, tbl := newKVStore(t)
	seq1 := insertKV(t, s, tbl, "a", 1)
	key := tbl.EncodePrimaryKey(value.Row{value.Text("a"), value.Int(1)})

	// Update a=2.
	after := value.Row{value.Text("a"), value.Int(2)}
	seq2, err := s.Commit(CommitRequest{
		TxnID: s.NextTxnID(), Snapshot: seq1,
		Changes: []Change{{Table: "kv", Key: key, Op: OpUpdate, Before: value.Row{value.Text("a"), value.Int(1)}, After: after}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Delete a.
	seq3, err := s.Commit(CommitRequest{
		TxnID: s.NextTxnID(), Snapshot: seq2,
		Changes: []Change{{Table: "kv", Key: key, Op: OpDelete, Before: after}},
	})
	if err != nil {
		t.Fatal(err)
	}

	if r, ok := s.Get("kv", key, seq1); !ok || r[1].AsInt() != 1 {
		t.Error("time travel to seq1 failed")
	}
	if r, ok := s.Get("kv", key, seq2); !ok || r[1].AsInt() != 2 {
		t.Error("time travel to seq2 failed")
	}
	if _, ok := s.Get("kv", key, seq3); ok {
		t.Error("row should be deleted at seq3")
	}
	if _, ok := s.Get("kv", key, 0); ok {
		t.Error("row should not exist at seq 0")
	}
}

func TestOCCReadValidationConflict(t *testing.T) {
	s, tbl := newKVStore(t)
	insertKV(t, s, tbl, "a", 1)
	key := tbl.EncodePrimaryKey(value.Row{value.Text("a"), value.Int(1)})

	// Txn T reads key at snapshot, then another txn updates it, then T commits.
	snap := s.CurrentSeq()
	reads := NewReadSet()
	reads.AddKey("kv", key)

	after := value.Row{value.Text("a"), value.Int(5)}
	if _, err := s.Commit(CommitRequest{TxnID: s.NextTxnID(), Snapshot: snap,
		Changes: []Change{{Table: "kv", Key: key, Op: OpUpdate, After: after}}}); err != nil {
		t.Fatal(err)
	}

	_, err := s.Commit(CommitRequest{TxnID: s.NextTxnID(), Snapshot: snap, Reads: reads,
		Changes: []Change{{Table: "kv", Key: tbl.EncodePrimaryKey(value.Row{value.Text("b"), value.Int(9)}), Op: OpInsert, After: value.Row{value.Text("b"), value.Int(9)}}}})
	var conflict *ConflictError
	if !errors.As(err, &conflict) {
		t.Fatalf("expected ConflictError, got %v", err)
	}
	if conflict.Table != "kv" {
		t.Errorf("conflict = %+v", conflict)
	}
	if conflict.Error() == "" {
		t.Error("empty error text")
	}
}

func TestOCCPhantomValidation(t *testing.T) {
	s, tbl := newKVStore(t)
	// Txn T scans the whole table (sees nothing), then another txn inserts,
	// then T tries to commit: phantom — must conflict.
	snap := s.CurrentSeq()
	reads := NewReadSet()
	reads.AddRange("kv", "", "")

	insertKV(t, s, tbl, "ghost", 1)

	row := value.Row{value.Text("x"), value.Int(1)}
	_, err := s.Commit(CommitRequest{TxnID: s.NextTxnID(), Snapshot: snap, Reads: reads,
		Changes: []Change{{Table: "kv", Key: tbl.EncodePrimaryKey(row), Op: OpInsert, After: row}}})
	var conflict *ConflictError
	if !errors.As(err, &conflict) {
		t.Fatalf("expected phantom conflict, got %v", err)
	}
}

func TestOCCReadOnlyRangeNoFalseConflict(t *testing.T) {
	s, tbl := newKVStore(t)
	insertKV(t, s, tbl, "a", 1)
	snap := s.CurrentSeq()
	reads := NewReadSet()
	lo := schema.EncodeKeyTuple(value.Row{value.Text("m")})
	reads.AddRange("kv", lo, "") // scanned [m, ∞)

	insertKV(t, s, tbl, "b", 2) // outside scanned range

	row := value.Row{value.Text("zz"), value.Int(3)}
	if _, err := s.Commit(CommitRequest{TxnID: s.NextTxnID(), Snapshot: snap, Reads: reads,
		Changes: []Change{{Table: "kv", Key: tbl.EncodePrimaryKey(row), Op: OpInsert, After: row}}}); err != nil {
		t.Fatalf("disjoint write should not conflict: %v", err)
	}
}

func TestDuplicateInsertConflicts(t *testing.T) {
	s, tbl := newKVStore(t)
	insertKV(t, s, tbl, "a", 1)
	row := value.Row{value.Text("a"), value.Int(2)}
	_, err := s.Commit(CommitRequest{TxnID: s.NextTxnID(), Snapshot: s.CurrentSeq(),
		Changes: []Change{{Table: "kv", Key: tbl.EncodePrimaryKey(row), Op: OpInsert, After: row}}})
	var conflict *ConflictError
	if !errors.As(err, &conflict) {
		t.Fatalf("duplicate insert should conflict, got %v", err)
	}
}

func TestUpdateVanishedRowConflicts(t *testing.T) {
	s, tbl := newKVStore(t)
	insertKV(t, s, tbl, "a", 1)
	key := tbl.EncodePrimaryKey(value.Row{value.Text("a"), value.Int(1)})
	snap := s.CurrentSeq()
	// Delete it.
	if _, err := s.Commit(CommitRequest{TxnID: s.NextTxnID(), Snapshot: snap,
		Changes: []Change{{Table: "kv", Key: key, Op: OpDelete}}}); err != nil {
		t.Fatal(err)
	}
	// Now try updating from the stale snapshot (blind write, no read set).
	_, err := s.Commit(CommitRequest{TxnID: s.NextTxnID(), Snapshot: snap,
		Changes: []Change{{Table: "kv", Key: key, Op: OpUpdate, After: value.Row{value.Text("a"), value.Int(9)}}}})
	var conflict *ConflictError
	if !errors.As(err, &conflict) {
		t.Fatalf("update of vanished row should conflict, got %v", err)
	}
}

func TestCommitUnknownTable(t *testing.T) {
	s := NewStore()
	_, err := s.Commit(CommitRequest{Changes: []Change{{Table: "nope", Key: "k", Op: OpInsert, After: value.Row{value.Int(1)}}}})
	if err == nil {
		t.Error("commit to unknown table should fail")
	}
}

func TestCDCSubscriptionAndChangesBetween(t *testing.T) {
	s, tbl := newKVStore(t)
	var got []CommitRecord
	s.SubscribeCDC(func(rec CommitRecord) { got = append(got, rec) })
	seqA := insertKV(t, s, tbl, "a", 1)
	seqB := insertKV(t, s, tbl, "b", 2)
	if len(got) != 2 || got[0].Seq != seqA || got[1].Seq != seqB {
		t.Fatalf("CDC records = %+v", got)
	}
	if got[0].Changes[0].Op != OpInsert || got[0].Changes[0].After[1].AsInt() != 1 {
		t.Error("CDC change payload wrong")
	}
	recs := s.ChangesBetween(seqA, seqB)
	if len(recs) != 1 || recs[0].Seq != seqB {
		t.Errorf("ChangesBetween = %+v", recs)
	}
	if n := len(s.ChangesBetween(0, seqB)); n != 2 {
		t.Errorf("ChangesBetween(0,seqB) = %d records", n)
	}
}

func TestTruncateLog(t *testing.T) {
	s, tbl := newKVStore(t)
	var seqs []uint64
	for i := 0; i < 5; i++ {
		seqs = append(seqs, insertKV(t, s, tbl, fmt.Sprintf("k%d", i), int64(i)))
	}
	s.TruncateLog(seqs[2])
	recs := s.ChangesBetween(0, seqs[4])
	if len(recs) != 2 || recs[0].Seq != seqs[3] {
		t.Errorf("after truncate, ChangesBetween = %+v", recs)
	}
	// OCC validation across truncated history must still work for new snaps.
	insertKV(t, s, tbl, "post", 9)
	// Truncating again with a too-small bound is a no-op.
	s.TruncateLog(1)
	if len(s.ChangesBetween(0, s.CurrentSeq())) != 3 {
		t.Error("second truncate should be a no-op")
	}
}

func TestSecondaryIndexMaintenance(t *testing.T) {
	s := NewStore()
	tbl := mustTable(t, "users", []schema.Column{
		{Name: "id", Type: value.KindInt},
		{Name: "city", Type: value.KindText},
	}, []string{"id"})
	if err := s.CreateTable(tbl, false); err != nil {
		t.Fatal(err)
	}
	mkRow := func(id int64, city string) value.Row {
		return value.Row{value.Int(id), value.Text(city)}
	}
	commit := func(op Op, before, after value.Row) error {
		keyRow := after
		if keyRow == nil {
			keyRow = before
		}
		key := tbl.EncodePrimaryKey(keyRow)
		_, err := s.Commit(CommitRequest{TxnID: s.NextTxnID(), Snapshot: s.CurrentSeq(),
			Changes: []Change{{Table: "users", Key: key, Op: op, Before: before, After: after}}})
		return err
	}
	if err := commit(OpInsert, nil, mkRow(1, "sf")); err != nil {
		t.Fatal(err)
	}
	ix := &schema.Index{Name: "by_city", Table: "users", Columns: []int{1}}
	if err := s.CreateIndex(ix); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateIndex(ix); err == nil {
		t.Error("duplicate index should fail")
	}
	if err := commit(OpInsert, nil, mkRow(2, "sf")); err != nil {
		t.Fatal(err)
	}
	if err := commit(OpInsert, nil, mkRow(3, "nyc")); err != nil {
		t.Fatal(err)
	}

	scanCity := func(city string, seq uint64) []string {
		prefix := ix.EncodeIndexPrefix(value.Row{value.Text(city)})
		var pks []string
		if err := s.IndexScanRange("users", "by_city", prefix, prefix+"\xff", seq, func(_, pk string) bool {
			pks = append(pks, pk)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		return pks
	}
	if got := scanCity("sf", s.CurrentSeq()); len(got) != 2 {
		t.Errorf("sf index scan = %d entries", len(got))
	}
	seqBefore := s.CurrentSeq()
	// Move user 2 to nyc; index must reflect it, and time travel must not.
	if err := commit(OpUpdate, mkRow(2, "sf"), mkRow(2, "nyc")); err != nil {
		t.Fatal(err)
	}
	if got := scanCity("sf", s.CurrentSeq()); len(got) != 1 {
		t.Errorf("after update, sf scan = %d entries", len(got))
	}
	if got := scanCity("nyc", s.CurrentSeq()); len(got) != 2 {
		t.Errorf("after update, nyc scan = %d entries", len(got))
	}
	if got := scanCity("sf", seqBefore); len(got) != 2 {
		t.Errorf("time-travel index scan = %d entries, want 2", len(got))
	}
	// Delete removes from index.
	if err := commit(OpDelete, mkRow(3, "nyc"), nil); err != nil {
		t.Fatal(err)
	}
	if got := scanCity("nyc", s.CurrentSeq()); len(got) != 1 {
		t.Errorf("after delete, nyc scan = %d entries", len(got))
	}
	if err := s.IndexScanRange("users", "nope", "", "", 0, nil); err == nil {
		t.Error("unknown index should error")
	}
	if err := s.IndexScanRange("ghost", "by_city", "", "", 0, nil); err == nil {
		t.Error("unknown table should error")
	}
}

func TestUniqueIndexEnforcement(t *testing.T) {
	s := NewStore()
	tbl := mustTable(t, "emails", []schema.Column{
		{Name: "id", Type: value.KindInt},
		{Name: "email", Type: value.KindText},
	}, []string{"id"})
	if err := s.CreateTable(tbl, false); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateIndex(&schema.Index{Name: "u_email", Table: "emails", Columns: []int{1}, Unique: true}); err != nil {
		t.Fatal(err)
	}
	ins := func(id int64, email string) error {
		row := value.Row{value.Int(id), value.Text(email)}
		_, err := s.Commit(CommitRequest{TxnID: s.NextTxnID(), Snapshot: s.CurrentSeq(),
			Changes: []Change{{Table: "emails", Key: tbl.EncodePrimaryKey(row), Op: OpInsert, After: row}}})
		return err
	}
	if err := ins(1, "a@x"); err != nil {
		t.Fatal(err)
	}
	if err := ins(2, "a@x"); err == nil {
		t.Error("unique violation should fail")
	}
	if err := ins(3, "b@x"); err != nil {
		t.Errorf("distinct value should insert: %v", err)
	}
	// Backfill failure: create another unique index over duplicated data.
	if err := ins(4, "b@x"); err == nil {
		t.Error("should fail")
	}
}

func TestCreateIndexBackfillUniqueViolation(t *testing.T) {
	s := NewStore()
	tbl := mustTable(t, "t", []schema.Column{
		{Name: "id", Type: value.KindInt},
		{Name: "v", Type: value.KindInt},
	}, []string{"id"})
	if err := s.CreateTable(tbl, false); err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 2; i++ {
		row := value.Row{value.Int(i), value.Int(7)}
		if _, err := s.Commit(CommitRequest{TxnID: s.NextTxnID(), Snapshot: s.CurrentSeq(),
			Changes: []Change{{Table: "t", Key: tbl.EncodePrimaryKey(row), Op: OpInsert, After: row}}}); err != nil {
			t.Fatal(err)
		}
	}
	err := s.CreateIndex(&schema.Index{Name: "u", Table: "t", Columns: []int{1}, Unique: true})
	if err == nil {
		t.Error("backfill over duplicates should fail")
	}
	if err := s.CreateIndex(&schema.Index{Name: "u2", Table: "missing", Columns: []int{0}}); err == nil {
		t.Error("index on missing table should fail")
	}
}

func TestApplyCommittedRecovery(t *testing.T) {
	s, tbl := newKVStore(t)
	row := value.Row{value.Text("a"), value.Int(1)}
	rec := CommitRecord{Seq: 1, TxnID: 7, Changes: []Change{{Table: "kv", Key: tbl.EncodePrimaryKey(row), Op: OpInsert, After: row}}}
	if err := s.ApplyCommitted(rec); err != nil {
		t.Fatal(err)
	}
	if s.CurrentSeq() != 1 {
		t.Error("seq not advanced")
	}
	if err := s.ApplyCommitted(CommitRecord{Seq: 5}); err == nil {
		t.Error("out-of-order recovery should fail")
	}
	if err := s.ApplyCommitted(CommitRecord{Seq: 2, Changes: []Change{{Table: "ghost", Key: "k", Op: OpInsert}}}); err == nil {
		t.Error("recovery into unknown table should fail")
	}
	// TxnID watermark respected.
	if id := s.NextTxnID(); id <= 7 {
		t.Errorf("NextTxnID after recovery = %d, want > 7", id)
	}
}

func TestCloneAt(t *testing.T) {
	s, tbl := newKVStore(t)
	if err := s.CreateIndex(&schema.Index{Name: "by_v", Table: "kv", Columns: []int{1}}); err != nil {
		t.Fatal(err)
	}
	insertKV(t, s, tbl, "a", 1)
	seqMid := insertKV(t, s, tbl, "b", 2)
	insertKV(t, s, tbl, "c", 3)

	clone, err := s.CloneAt(seqMid)
	if err != nil {
		t.Fatal(err)
	}
	if n := clone.RowCount("kv", clone.CurrentSeq()); n != 2 {
		t.Errorf("clone rows = %d, want 2", n)
	}
	// Mutating the clone must not affect the source.
	insertKV(t, clone, tbl, "z", 9)
	if n := s.RowCount("kv", s.CurrentSeq()); n != 3 {
		t.Error("clone mutation leaked into source")
	}
	// Clone carries indexes.
	if got := clone.Indexes("kv"); len(got) != 1 || got[0].Name != "by_v" {
		t.Errorf("clone indexes = %+v", got)
	}
}

func TestDDLHook(t *testing.T) {
	s := NewStore()
	var ddl []string
	var seqs []uint64
	s.SetDDLHook(func(seq uint64, stmt string) {
		ddl = append(ddl, stmt)
		seqs = append(seqs, seq)
	})
	tbl := kvTable(t, "t")
	if err := s.CreateTable(tbl, false); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateIndex(&schema.Index{Name: "i", Table: "t", Columns: []int{1}, Unique: true}); err != nil {
		t.Fatal(err)
	}
	if err := s.DropTable("t", false); err != nil {
		t.Fatal(err)
	}
	if len(ddl) != 3 {
		t.Fatalf("ddl hooks = %v", ddl)
	}
	if ddl[1] != "CREATE UNIQUE INDEX i ON t (v)" {
		t.Errorf("index DDL = %q", ddl[1])
	}
	for i, seq := range seqs {
		if seq != 0 {
			t.Errorf("ddl %d fired at seq %d on an empty store, want 0", i, seq)
		}
	}
}

func TestConcurrentCommitsSerialize(t *testing.T) {
	s, tbl := newKVStore(t)
	insertKV(t, s, tbl, "counter", 0)
	key := tbl.EncodePrimaryKey(value.Row{value.Text("counter"), value.Int(0)})

	const workers, increments = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < increments; i++ {
				for { // OCC retry loop
					snap := s.CurrentSeq()
					row, ok := s.Get("kv", key, snap)
					if !ok {
						t.Error("counter vanished")
						return
					}
					reads := NewReadSet()
					reads.AddKey("kv", key)
					after := value.Row{value.Text("counter"), value.Int(row[1].AsInt() + 1)}
					_, err := s.Commit(CommitRequest{TxnID: s.NextTxnID(), Snapshot: snap, Reads: reads,
						Changes: []Change{{Table: "kv", Key: key, Op: OpUpdate, Before: row, After: after}}})
					if err == nil {
						break
					}
					var conflict *ConflictError
					if !errors.As(err, &conflict) {
						t.Errorf("unexpected error: %v", err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	row, _ := s.Get("kv", key, s.CurrentSeq())
	if got := row[1].AsInt(); got != workers*increments {
		t.Errorf("counter = %d, want %d (lost updates!)", got, workers*increments)
	}
}

// Property: a randomly generated batch of inserts is fully readable at the
// final sequence and invisible before its own commit.
func TestInsertVisibilityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewStore()
		tbl, _ := schema.NewTable("p", []schema.Column{
			{Name: "k", Type: value.KindInt},
			{Name: "v", Type: value.KindInt},
		}, []string{"k"})
		if err := s.CreateTable(tbl, false); err != nil {
			return false
		}
		n := 1 + rng.Intn(30)
		seqs := make([]uint64, n)
		for i := 0; i < n; i++ {
			row := value.Row{value.Int(int64(i)), value.Int(rng.Int63n(100))}
			seq, err := s.Commit(CommitRequest{TxnID: s.NextTxnID(), Snapshot: s.CurrentSeq(),
				Changes: []Change{{Table: "p", Key: tbl.EncodePrimaryKey(row), Op: OpInsert, After: row}}})
			if err != nil {
				return false
			}
			seqs[i] = seq
		}
		for i := 0; i < n; i++ {
			key := tbl.EncodePrimaryKey(value.Row{value.Int(int64(i)), value.Null})
			if _, ok := s.Get("p", key, seqs[i]); !ok {
				return false // must be visible at its own commit
			}
			if _, ok := s.Get("p", key, seqs[i]-1); ok {
				return false // must be invisible before it
			}
		}
		return s.RowCount("p", s.CurrentSeq()) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
