package storage

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/schema"
	"repro/internal/value"
)

// Op classifies a row change in the commit log.
type Op uint8

// Row change operations.
const (
	OpInsert Op = iota
	OpUpdate
	OpDelete
)

// String names the operation as the provenance tables render it (paper
// Table 2 uses "Insert"/"Update"/"Delete"/"Read").
func (o Op) String() string {
	switch o {
	case OpInsert:
		return "Insert"
	case OpUpdate:
		return "Update"
	case OpDelete:
		return "Delete"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Change is one row mutation inside a commit: the encoded primary key plus
// before and after images. Before is nil for inserts, After nil for deletes.
type Change struct {
	Table  string
	Key    string
	Op     Op
	Before value.Row
	After  value.Row
}

// CommitRecord is the unit of the change-data-capture log: all changes of
// one committed transaction, in order, tagged with the global commit
// sequence that defines the serialization order.
type CommitRecord struct {
	Seq     uint64
	TxnID   uint64
	Changes []Change
}

// ReadRange describes a scanned key interval for OCC validation. Hi == ""
// means unbounded above.
type ReadRange struct {
	Table  string
	Lo, Hi string
}

// IndexRange describes a scanned secondary-index key interval: commits whose
// changes enter or leave [Lo, Hi) in the index's key space conflict with the
// reader. Hi == "" means unbounded above.
type IndexRange struct {
	Table  string // lowercased
	Index  string // lowercased
	Lo, Hi string
}

// ReadSet is everything a transaction observed: point reads, primary-key
// range scans, and secondary-index range scans. Table and index names are
// normalised to lower case at insertion so validation cannot miss conflicts
// for callers that pass a non-canonical spelling.
type ReadSet struct {
	Keys        map[string]map[string]struct{} // lowercased table -> key set
	Ranges      []ReadRange
	IndexRanges []IndexRange

	// ixSeen deduplicates IndexRanges in O(1) per insertion.
	ixSeen map[IndexRange]struct{}
}

// NewReadSet returns an empty read set.
func NewReadSet() *ReadSet {
	return &ReadSet{Keys: make(map[string]map[string]struct{})}
}

// AddKey records a point read.
func (rs *ReadSet) AddKey(table, key string) {
	table = strings.ToLower(table)
	ks, ok := rs.Keys[table]
	if !ok {
		ks = make(map[string]struct{})
		rs.Keys[table] = ks
	}
	ks[key] = struct{}{}
}

// AddRange records a scanned primary-key interval.
func (rs *ReadSet) AddRange(table, lo, hi string) {
	rs.Ranges = append(rs.Ranges, ReadRange{Table: strings.ToLower(table), Lo: lo, Hi: hi})
}

// AddIndexRange records a scanned secondary-index interval. Exact duplicates
// (the same query re-executed inside one transaction) are collapsed.
func (rs *ReadSet) AddIndexRange(table, index, lo, hi string) {
	ir := IndexRange{Table: strings.ToLower(table), Index: strings.ToLower(index), Lo: lo, Hi: hi}
	if _, dup := rs.ixSeen[ir]; dup {
		return
	}
	if rs.ixSeen == nil {
		rs.ixSeen = make(map[IndexRange]struct{})
	}
	rs.ixSeen[ir] = struct{}{}
	rs.IndexRanges = append(rs.IndexRanges, ir)
}

// Contains reports whether the read set covers (table, key) via a point read
// or a primary-key range (index ranges are checked by the store, which can
// encode a change's index keys).
func (rs *ReadSet) Contains(table, key string) bool {
	table = strings.ToLower(table)
	if ks, ok := rs.Keys[table]; ok {
		if _, hit := ks[key]; hit {
			return true
		}
	}
	for _, r := range rs.Ranges {
		if r.Table == table && key >= r.Lo && (r.Hi == "" || key < r.Hi) {
			return true
		}
	}
	return false
}

// contains reports whether key falls inside the index range.
func (ir *IndexRange) contains(key string) bool {
	return key >= ir.Lo && (ir.Hi == "" || key < ir.Hi)
}

// version is one MVCC version of a row: the commit sequence that created it
// and the row image (nil = tombstone).
type version struct {
	seq uint64
	row value.Row // nil means deleted
}

// entry is a row's version chain, append-only in seq order.
type entry struct {
	versions []version
}

// visible returns the row image visible at snapshot seq, or nil.
func (e *entry) visible(seq uint64) value.Row {
	for i := len(e.versions) - 1; i >= 0; i-- {
		if e.versions[i].seq <= seq {
			return e.versions[i].row
		}
	}
	return nil
}

// latestSeq is the newest version's commit sequence.
func (e *entry) latestSeq() uint64 {
	if len(e.versions) == 0 {
		return 0
	}
	return e.versions[len(e.versions)-1].seq
}

// indexEntry is a versioned secondary-index posting: present/absent over
// time, referencing the row's primary key.
type indexEntry struct {
	versions []indexVersion
}

type indexVersion struct {
	seq     uint64
	present bool
	pk      string
}

func (e *indexEntry) visible(seq uint64) (string, bool) {
	for i := len(e.versions) - 1; i >= 0; i-- {
		if e.versions[i].seq <= seq {
			return e.versions[i].pk, e.versions[i].present
		}
	}
	return "", false
}

// tableData holds a table's rows and secondary indexes.
type tableData struct {
	rows    *btree[*entry]
	indexes map[string]*btree[*indexEntry] // lowercased index name
}

// Store is the MVCC storage engine. One Store backs one database (the
// production database, the provenance database, or a development database
// used by replay/retroactive programming are each their own Store).
type Store struct {
	mu       sync.RWMutex
	catalog  map[string]*schema.Table   // lowercased table name
	indexDef map[string][]*schema.Index // lowercased table name -> defs
	data     map[string]*tableData
	epoch    uint64 // bumped on every DDL; keys plan-cache validity
	seq      uint64 // latest committed sequence
	nextTxn  uint64
	log      []CommitRecord
	logBase  uint64 // seq of log[0]-1; supports truncation
	cdcSubs  []func(CommitRecord)
	// ddlHook is invoked (under lock) on DDL with the commit sequence the
	// statement executed at — every commit <= seq happened before it, every
	// commit > seq after. The WAL uses it for schema logging; replication
	// uses the sequence to position DDL in the shipped log.
	ddlHook func(seq uint64, stmt string)

	// pins counts active transactions per snapshot sequence. TruncateLog
	// never discards a record a pinned snapshot could still need for OCC
	// validation (commits after the snapshot), so CDC memory release is safe
	// under concurrent transactions of any age.
	pins map[uint64]int

	// historyFloor is the oldest snapshot at which version-chain reads are
	// still complete. Vacuum raises it to the horizon it compacted to, and
	// restoring from a checkpoint snapshot sets it to the snapshot sequence
	// (a snapshot carries single-version row images, not history). Reads
	// below the floor would silently return "row missing" for rows that did
	// exist — time-travel entry points must refuse them instead (see
	// ErrHistoryTruncated).
	historyFloor uint64

	// vac accumulates Vacuum run counters for Stats.
	vac VacuumStats
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		catalog:  make(map[string]*schema.Table),
		indexDef: make(map[string][]*schema.Index),
		data:     make(map[string]*tableData),
		pins:     make(map[uint64]int),
	}
}

// --- catalog ---------------------------------------------------------------

// CreateTable installs a table. It fails if the name is taken unless
// ifNotExists is set.
func (s *Store) CreateTable(t *schema.Table, ifNotExists bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := strings.ToLower(t.Name)
	if _, exists := s.catalog[key]; exists {
		if ifNotExists {
			return nil
		}
		return fmt.Errorf("storage: table %q already exists", t.Name)
	}
	s.catalog[key] = t
	s.data[key] = &tableData{rows: newBTree[*entry](), indexes: make(map[string]*btree[*indexEntry])}
	s.epoch++
	if s.ddlHook != nil {
		s.ddlHook(s.seq, t.String())
	}
	return nil
}

// DropTable removes a table and its indexes.
func (s *Store) DropTable(name string, ifExists bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := strings.ToLower(name)
	if _, exists := s.catalog[key]; !exists {
		if ifExists {
			return nil
		}
		return fmt.Errorf("storage: table %q does not exist", name)
	}
	delete(s.catalog, key)
	delete(s.data, key)
	delete(s.indexDef, key)
	s.epoch++
	if s.ddlHook != nil {
		s.ddlHook(s.seq, "DROP TABLE "+name)
	}
	return nil
}

// CreateIndex installs a secondary index and backfills it from the current
// table contents (at the latest sequence).
func (s *Store) CreateIndex(ix *schema.Index) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	tkey := strings.ToLower(ix.Table)
	tbl, ok := s.catalog[tkey]
	if !ok {
		return fmt.Errorf("storage: index %q references unknown table %q", ix.Name, ix.Table)
	}
	ikey := strings.ToLower(ix.Name)
	td := s.data[tkey]
	if _, exists := td.indexes[ikey]; exists {
		return fmt.Errorf("storage: index %q already exists on %q", ix.Name, ix.Table)
	}
	tree := newBTree[*indexEntry]()
	var backfillErr error
	td.rows.Ascend(func(pk string, e *entry) bool {
		row := e.visible(s.seq)
		if row == nil {
			return true
		}
		k := ix.EncodeIndexKey(tbl, row)
		if existing, found := tree.Get(k); found && ix.Unique {
			_ = existing
			backfillErr = fmt.Errorf("storage: unique index %q violated by existing data", ix.Name)
			return false
		}
		tree.Set(k, &indexEntry{versions: []indexVersion{{seq: s.seq, present: true, pk: pk}}})
		return true
	})
	if backfillErr != nil {
		return backfillErr
	}
	td.indexes[ikey] = tree
	s.indexDef[tkey] = append(s.indexDef[tkey], ix)
	s.epoch++
	if s.ddlHook != nil {
		uniq := ""
		if ix.Unique {
			uniq = "UNIQUE "
		}
		cols := make([]string, len(ix.Columns))
		for i, c := range ix.Columns {
			cols[i] = tbl.Columns[c].Name
		}
		s.ddlHook(s.seq, fmt.Sprintf("CREATE %sINDEX %s ON %s (%s)", uniq, ix.Name, ix.Table, strings.Join(cols, ", ")))
	}
	return nil
}

// Table returns the schema for name, or nil.
func (s *Store) Table(name string) *schema.Table {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.catalog[strings.ToLower(name)]
}

// Tables lists all table names, sorted.
func (s *Store) Tables() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.catalog))
	for _, t := range s.catalog {
		out = append(out, t.Name)
	}
	sort.Strings(out)
	return out
}

// Indexes returns the index definitions on a table.
func (s *Store) Indexes(table string) []*schema.Index {
	s.mu.RLock()
	defer s.mu.RUnlock()
	defs := s.indexDef[strings.ToLower(table)]
	out := make([]*schema.Index, len(defs))
	copy(out, defs)
	return out
}

// SetDDLHook installs a callback invoked for every DDL statement with the
// commit sequence it executed at; the WAL uses it to persist schema changes
// and replication to order DDL in the shipped log. Must be set before
// concurrent use.
func (s *Store) SetDDLHook(fn func(seq uint64, stmt string)) { s.ddlHook = fn }

// SchemaEpoch returns a counter that increases on every successful DDL
// statement (CREATE TABLE, CREATE INDEX, DROP TABLE). The SQL layer keys its
// physical-plan cache on (query text, epoch): any schema change invalidates
// every cached plan on its next lookup, so plans may safely bake in resolved
// column offsets, table handles, and index choices.
func (s *Store) SchemaEpoch() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.epoch
}

// --- sequence and transaction identity --------------------------------------

// CurrentSeq returns the latest committed sequence (a consistent snapshot
// handle).
func (s *Store) CurrentSeq() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.seq
}

// NextTxnID allocates a unique transaction ID. IDs are assigned at
// transaction start and are independent of commit order.
func (s *Store) NextTxnID() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextTxn++
	return s.nextTxn
}

// --- reads -------------------------------------------------------------------

// Get returns the row visible at snapshot seq for (table, key).
func (s *Store) Get(table, key string, seq uint64) (value.Row, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	td, ok := s.data[strings.ToLower(table)]
	if !ok {
		return nil, false
	}
	e, ok := td.rows.Get(key)
	if !ok {
		return nil, false
	}
	row := e.visible(seq)
	if row == nil {
		return nil, false
	}
	return row, true
}

// ScanRange visits rows with keys in [lo, hi) visible at snapshot seq, in
// key order. hi == "" is unbounded. fn returns false to stop.
func (s *Store) ScanRange(table, lo, hi string, seq uint64, fn func(key string, row value.Row) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	td, ok := s.data[strings.ToLower(table)]
	if !ok {
		return
	}
	td.rows.AscendRange(lo, hi, func(k string, e *entry) bool {
		row := e.visible(seq)
		if row == nil {
			return true
		}
		return fn(k, row)
	})
}

// IndexScanRange visits index postings with index keys in [lo, hi) visible
// at seq, yielding the referenced primary keys in index order. It exposes
// raw postings (without resolving rows) for tools and tests; the executor's
// scan path is Txn.IndexScan over IndexScanRows, which shares the same
// posting-visibility rule below.
func (s *Store) IndexScanRange(table, index, lo, hi string, seq uint64, fn func(indexKey, pk string) bool) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	td, ok := s.data[strings.ToLower(table)]
	if !ok {
		return fmt.Errorf("storage: unknown table %q", table)
	}
	tree, ok := td.indexes[strings.ToLower(index)]
	if !ok {
		return fmt.Errorf("storage: unknown index %q on %q", index, table)
	}
	tree.AscendRange(lo, hi, func(k string, e *indexEntry) bool {
		pk, present := e.visible(seq)
		if !present {
			return true
		}
		return fn(k, pk)
	})
	return nil
}

// IndexScanRows visits index postings with index keys in [lo, hi) visible at
// seq and resolves each referenced row under the same lock, streaming
// (indexKey, pk, row) to fn in index order. This lets the transaction layer
// merge committed postings with buffered writes without re-entering the
// store per row (and lets LIMIT stop the scan early via fn returning false).
func (s *Store) IndexScanRows(table, index, lo, hi string, seq uint64, fn func(indexKey, pk string, row value.Row) bool) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	td, ok := s.data[strings.ToLower(table)]
	if !ok {
		return fmt.Errorf("storage: unknown table %q", table)
	}
	tree, ok := td.indexes[strings.ToLower(index)]
	if !ok {
		return fmt.Errorf("storage: unknown index %q on %q", index, table)
	}
	tree.AscendRange(lo, hi, func(k string, e *indexEntry) bool {
		pk, present := e.visible(seq)
		if !present {
			return true
		}
		re, ok := td.rows.Get(pk)
		if !ok {
			return true
		}
		row := re.visible(seq)
		if row == nil {
			return true
		}
		return fn(k, pk, row)
	})
	return nil
}

// ApproxRows returns the number of distinct keys ever stored in the table
// (live rows plus tombstoned ones) in O(1). The SQL planner uses it as a
// cheap cardinality estimate for join-strategy decisions.
func (s *Store) ApproxRows(table string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	td, ok := s.data[strings.ToLower(table)]
	if !ok {
		return 0
	}
	return td.rows.Len()
}

// RowCount returns the number of live rows at seq (O(n); for tests/tools).
func (s *Store) RowCount(table string, seq uint64) int {
	count := 0
	s.ScanRange(table, "", "", seq, func(string, value.Row) bool {
		count++
		return true
	})
	return count
}

// --- commit -------------------------------------------------------------------

// ConflictError reports an OCC validation failure; the transaction should be
// retried from a fresh snapshot.
type ConflictError struct {
	Table string
	Key   string
	Seq   uint64 // the conflicting committed sequence
}

func (e *ConflictError) Error() string {
	return fmt.Sprintf("storage: serialization conflict on %s[%x] with commit %d", e.Table, e.Key, e.Seq)
}

// CommitRequest carries a transaction's buffered effects into Commit.
type CommitRequest struct {
	TxnID    uint64
	Snapshot uint64
	Reads    *ReadSet
	Changes  []Change // in execution order; at most one change per key
}

// Commit validates the read set against everything committed after the
// transaction's snapshot and, if valid, atomically applies the changes,
// assigns the next commit sequence, appends to the CDC log, and notifies
// subscribers. On conflict it returns *ConflictError.
//
// Validation is precise at key granularity and phantom-safe: every commit in
// (snapshot, now] is checked for writes that intersect the read set's keys
// or scanned ranges. This implements first-committer-wins OCC; commit order
// equals serialization order, so histories are strictly serializable.
func (s *Store) Commit(req CommitRequest) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()

	// Validate reads against commits after our snapshot.
	if req.Reads != nil && req.Snapshot < s.seq {
		for i := s.logIndex(req.Snapshot + 1); i < len(s.log); i++ {
			rec := &s.log[i]
			for _, ch := range rec.Changes {
				if req.Reads.Contains(ch.Table, ch.Key) {
					return 0, &ConflictError{Table: ch.Table, Key: ch.Key, Seq: rec.Seq}
				}
				if s.indexRangeConflict(req.Reads, &ch) {
					return 0, &ConflictError{Table: ch.Table, Key: ch.Key, Seq: rec.Seq}
				}
			}
		}
	}

	// Re-check uniqueness and write-write sanity against the latest state,
	// then apply.
	newSeq := s.seq + 1
	for i := range req.Changes {
		ch := &req.Changes[i]
		tkey := strings.ToLower(ch.Table)
		td, ok := s.data[tkey]
		if !ok {
			return 0, fmt.Errorf("storage: commit touches unknown table %q", ch.Table)
		}
		cur, _ := td.rows.Get(ch.Key)
		var curRow value.Row
		if cur != nil {
			curRow = cur.visible(s.seq)
		}
		switch ch.Op {
		case OpInsert:
			if curRow != nil {
				return 0, &ConflictError{Table: ch.Table, Key: ch.Key, Seq: cur.latestSeq()}
			}
		case OpUpdate, OpDelete:
			if curRow == nil {
				// The row vanished after our snapshot — a conflicting commit.
				latest := uint64(0)
				if cur != nil {
					latest = cur.latestSeq()
				}
				return 0, &ConflictError{Table: ch.Table, Key: ch.Key, Seq: latest}
			}
			// Refresh the before image to the committed truth so CDC is exact.
			ch.Before = curRow
		}
	}
	if err := s.validateUnique(req.Changes); err != nil {
		return 0, err
	}

	// Apply.
	for i := range req.Changes {
		ch := req.Changes[i]
		tkey := strings.ToLower(ch.Table)
		td := s.data[tkey]
		e, _ := td.rows.GetOrSet(ch.Key, func() *entry { return &entry{} })
		var newRow value.Row
		if ch.Op != OpDelete {
			newRow = ch.After
		}
		e.versions = append(e.versions, version{seq: newSeq, row: newRow})
	}
	s.applyIndexChanges(req.Changes, newSeq)

	s.seq = newSeq
	rec := CommitRecord{Seq: newSeq, TxnID: req.TxnID, Changes: req.Changes}
	s.log = append(s.log, rec)
	for _, sub := range s.cdcSubs {
		sub(rec)
	}
	return newSeq, nil
}

// applyIndexChanges appends index versions for one commit's changes at seq,
// in two passes: every old-image posting is tombstoned before any new-image
// posting is written. The order matters because a commit may free and
// re-claim the same (unique) index key across two changes, and version
// chains resolve equal-seq entries last-writer-wins — interleaving per
// change would let a tombstone land on top of the new posting whenever the
// claiming change sorts before the freeing one. Called under s.mu.
func (s *Store) applyIndexChanges(changes []Change, seq uint64) {
	for i := range changes {
		ch := &changes[i]
		if ch.Before == nil {
			continue
		}
		tkey := strings.ToLower(ch.Table)
		td := s.data[tkey]
		tbl := s.catalog[tkey]
		for _, ix := range s.indexDef[tkey] {
			tree := td.indexes[strings.ToLower(ix.Name)]
			oldK := ix.EncodeIndexKey(tbl, ch.Before)
			ie, _ := tree.GetOrSet(oldK, func() *indexEntry { return &indexEntry{} })
			ie.versions = append(ie.versions, indexVersion{seq: seq, present: false})
		}
	}
	for i := range changes {
		ch := &changes[i]
		if ch.After == nil {
			continue
		}
		tkey := strings.ToLower(ch.Table)
		td := s.data[tkey]
		tbl := s.catalog[tkey]
		for _, ix := range s.indexDef[tkey] {
			tree := td.indexes[strings.ToLower(ix.Name)]
			newK := ix.EncodeIndexKey(tbl, ch.After)
			ie, _ := tree.GetOrSet(newK, func() *indexEntry { return &indexEntry{} })
			ie.versions = append(ie.versions, indexVersion{seq: seq, present: true, pk: ch.Key})
		}
	}
}

// indexRangeConflict reports whether a committed change intersects any of
// the read set's scanned index ranges: the change's old image leaving a
// scanned interval or its new image entering one both invalidate the read
// (update-out and phantom-in respectively). Called under s.mu.
func (s *Store) indexRangeConflict(rs *ReadSet, ch *Change) bool {
	if len(rs.IndexRanges) == 0 {
		return false
	}
	tkey := strings.ToLower(ch.Table)
	defs := s.indexDef[tkey]
	if len(defs) == 0 {
		return false
	}
	tbl := s.catalog[tkey]
	for _, ix := range defs {
		iname := strings.ToLower(ix.Name)
		// Encode the change's old/new keys once per index, not per range:
		// this runs inside the serialized commit section.
		var beforeK, afterK string
		encoded := false
		for i := range rs.IndexRanges {
			ir := &rs.IndexRanges[i]
			if ir.Table != tkey || ir.Index != iname {
				continue
			}
			if !encoded {
				if ch.Before != nil {
					beforeK = ix.EncodeIndexKey(tbl, ch.Before)
				}
				if ch.After != nil {
					afterK = ix.EncodeIndexKey(tbl, ch.After)
				}
				encoded = true
			}
			if ch.Before != nil && ir.contains(beforeK) {
				return true
			}
			if ch.After != nil && ir.contains(afterK) {
				return true
			}
		}
	}
	return false
}

// validateUnique checks every unique index against the commit's *net* effect:
// a key claimed by two different rows within the request is a violation even
// though neither posting is committed yet, while a key whose committed owner
// is deleted (or updated away) by this same request may be re-claimed. The
// per-change Before images must already be refreshed to committed truth.
// Called under s.mu.
func (s *Store) validateUnique(changes []Change) error {
	var freed map[string]struct{} // table \x00 index \x00 old index key
	var claims map[string]string  // table \x00 index \x00 new index key -> claiming pk
	for i := range changes {
		ch := &changes[i]
		tkey := strings.ToLower(ch.Table)
		tbl := s.catalog[tkey]
		for _, ix := range s.indexDef[tkey] {
			if !ix.Unique {
				continue
			}
			id := tkey + "\x00" + strings.ToLower(ix.Name) + "\x00"
			if ch.Before != nil {
				if freed == nil {
					freed = make(map[string]struct{})
				}
				freed[id+ix.EncodeIndexKey(tbl, ch.Before)] = struct{}{}
			}
			if ch.Op == OpDelete {
				continue
			}
			k := id + ix.EncodeIndexKey(tbl, ch.After)
			if claims == nil {
				claims = make(map[string]string)
			}
			if prev, dup := claims[k]; dup && prev != ch.Key {
				return fmt.Errorf("storage: unique index %q violation on table %q", ix.Name, ch.Table)
			}
			claims[k] = ch.Key
		}
	}
	if claims == nil {
		return nil
	}
	// Claims not freed by this commit must be absent from (or owned by the
	// same row in) the committed state at s.seq.
	for i := range changes {
		ch := &changes[i]
		if ch.Op == OpDelete {
			continue
		}
		tkey := strings.ToLower(ch.Table)
		tbl := s.catalog[tkey]
		td := s.data[tkey]
		for _, ix := range s.indexDef[tkey] {
			if !ix.Unique {
				continue
			}
			ikey := ix.EncodeIndexKey(tbl, ch.After)
			if _, ok := freed[tkey+"\x00"+strings.ToLower(ix.Name)+"\x00"+ikey]; ok {
				continue
			}
			tree := td.indexes[strings.ToLower(ix.Name)]
			if e, found := tree.Get(ikey); found {
				if pk, present := e.visible(s.seq); present && pk != ch.Key {
					return fmt.Errorf("storage: unique index %q violation on table %q", ix.Name, ch.Table)
				}
			}
		}
	}
	return nil
}

// logIndex returns the s.log position of the record with sequence seq
// (commit sequences are dense: log[i].Seq == logBase + i + 1).
func (s *Store) logIndex(seq uint64) int {
	if seq <= s.logBase {
		return 0
	}
	return int(seq - s.logBase - 1)
}

// --- CDC and time travel -----------------------------------------------------

// SubscribeCDC registers fn to receive every future commit record. fn runs
// under the store lock: it must be fast and must not call back into the
// store (the TROD tracer only appends to a buffer).
func (s *Store) SubscribeCDC(fn func(CommitRecord)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cdcSubs = append(s.cdcSubs, fn)
}

// ChangesBetween returns the commit records with Seq in (from, to], i.e.
// everything committed after snapshot `from` up to and including `to`.
func (s *Store) ChangesBetween(from, to uint64) []CommitRecord {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []CommitRecord
	for i := s.logIndex(from + 1); i < len(s.log); i++ {
		rec := s.log[i]
		if rec.Seq > to {
			break
		}
		if rec.Seq > from {
			out = append(out, rec)
		}
	}
	return out
}

// PinSnapshot registers the caller as an active reader at the current
// committed sequence and returns it. Until the matching UnpinSnapshot,
// TruncateLog keeps every commit record after that sequence, so a
// transaction's OCC validation window can never be truncated out from under
// it. The transaction layer pins at Begin and unpins at Commit/Abort.
func (s *Store) PinSnapshot() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pins[s.seq]++
	return s.seq
}

// MovePin re-registers a pin taken at `from` onto snapshot `to` (BeginAt
// rewinds a fresh transaction to a historical snapshot).
func (s *Store) MovePin(from, to uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.unpinLocked(from)
	s.pins[to]++
}

// UnpinSnapshot releases a pin taken by PinSnapshot.
func (s *Store) UnpinSnapshot(seq uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.unpinLocked(seq)
}

func (s *Store) unpinLocked(seq uint64) {
	if n := s.pins[seq]; n > 1 {
		s.pins[seq] = n - 1
	} else {
		delete(s.pins, seq)
	}
}

// LogRetainedFrom returns the first commit sequence still present in the
// in-memory CDC log. ChangesBetween windows that start before it would be
// silently incomplete (TruncateLog released the prefix); consumers that
// need a complete historical window — the replay engine — must check it
// before iterating.
func (s *Store) LogRetainedFrom() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.logBase + 1
}

// OldestPin returns the oldest pinned snapshot sequence and whether any pin
// exists. Vacuum clamps its horizon to it so an active reader's snapshot can
// never be compacted out from under it.
func (s *Store) OldestPin() (uint64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.oldestPinLocked()
}

func (s *Store) oldestPinLocked() (uint64, bool) {
	oldest, found := uint64(0), false
	for seq := range s.pins {
		if !found || seq < oldest {
			oldest, found = seq, true
		}
	}
	return oldest, found
}

// HistoryRetainedFrom returns the oldest snapshot sequence at which version
// chains are still complete — the analogue of LogRetainedFrom for MVCC
// history rather than the CDC log. Time-travel reads (BeginAt, CloneAt,
// replay restore) below it must fail loudly: vacuum or a checkpointed
// restart has discarded the versions they would need, and proceeding would
// return plausible-but-empty results.
func (s *Store) HistoryRetainedFrom() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.historyFloor
}

// TruncateLog discards commit records with Seq <= upTo, bounding CDC memory.
// Version chains (time travel) are unaffected. The cut is clamped to the
// oldest pinned snapshot: records in an active transaction's validation
// window (anything after its snapshot) are always retained.
func (s *Store) TruncateLog(upTo uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for seq := range s.pins {
		if seq < upTo {
			upTo = seq
		}
	}
	idx := s.logIndex(upTo + 1)
	if idx <= 0 {
		return
	}
	if idx > len(s.log) {
		idx = len(s.log)
	}
	s.log = append([]CommitRecord(nil), s.log[idx:]...)
	s.logBase = upTo
}

// ApplyCommitted force-applies an already-serialized commit record, used by
// WAL recovery and by replay's snapshot restore. It bypasses validation and
// assigns exactly rec.Seq (which must be s.seq+1).
func (s *Store) ApplyCommitted(rec CommitRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if rec.Seq != s.seq+1 {
		return fmt.Errorf("storage: out-of-order recovery commit %d (have %d)", rec.Seq, s.seq)
	}
	for _, ch := range rec.Changes {
		tkey := strings.ToLower(ch.Table)
		td, ok := s.data[tkey]
		if !ok {
			return fmt.Errorf("storage: recovery touches unknown table %q", ch.Table)
		}
		e, _ := td.rows.GetOrSet(ch.Key, func() *entry { return &entry{} })
		var newRow value.Row
		if ch.Op != OpDelete {
			newRow = ch.After
		}
		e.versions = append(e.versions, version{seq: rec.Seq, row: newRow})
	}
	s.applyIndexChanges(rec.Changes, rec.Seq)
	s.seq = rec.Seq
	if rec.TxnID > s.nextTxn {
		s.nextTxn = rec.TxnID
	}
	s.log = append(s.log, rec)
	return nil
}

// ResetTo replaces this store's entire committed state — catalog, index
// definitions, data, commit sequence, transaction counter — with src's,
// atomically under the store lock. Replication uses it to re-bootstrap a
// replica from a primary snapshot when the replica has fallen out of the
// primary's retained log window: the store object (and every handle held on
// it by servers and sessions) stays valid while its contents jump forward.
//
// The in-memory CDC log restarts empty at the new sequence. CDC
// subscriptions, the DDL hook, and snapshot pins are preserved; transactions
// begun before the reset keep running but read at snapshots below the new
// base, where row versions no longer exist — they observe empty tables, and
// any write commit fails validation. The schema epoch is advanced past both
// histories so cached plans from either cannot be reused.
func (s *Store) ResetTo(src *Store) {
	src.mu.RLock()
	defer src.mu.RUnlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.catalog = src.catalog
	s.indexDef = src.indexDef
	s.data = src.data
	s.seq = src.seq
	if src.nextTxn > s.nextTxn {
		s.nextTxn = src.nextTxn
	}
	s.log = nil
	s.logBase = src.seq
	s.historyFloor = src.historyFloor
	s.epoch += src.epoch + 1
}

// CloneAt materialises a new Store containing this store's schema and the
// row images visible at snapshot seq. It is the "full restore" path for
// development databases (ablation A2 compares it with selective restore).
func (s *Store) CloneAt(seq uint64) (*Store, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if seq < s.historyFloor {
		return nil, historyTruncatedf(seq, s.historyFloor)
	}
	dst := NewStore()
	// Iterate the catalog in sorted order so the clone's schema log and
	// the synthetic commit below are byte-stable across runs; map order
	// would make two clones of the same store diverge.
	tkeys := make([]string, 0, len(s.catalog))
	for tkey := range s.catalog {
		tkeys = append(tkeys, tkey)
	}
	sort.Strings(tkeys)
	for _, tkey := range tkeys {
		if err := dst.CreateTable(s.catalog[tkey].Clone(), false); err != nil {
			return nil, err
		}
		for _, ix := range s.indexDef[tkey] {
			cp := *ix
			if err := dst.CreateIndex(&cp); err != nil {
				return nil, err
			}
		}
	}
	// Copy rows via one synthetic commit per table batch.
	var changes []Change
	for _, tkey := range tkeys {
		td := s.data[tkey]
		tableName := s.catalog[tkey].Name
		td.rows.Ascend(func(pk string, e *entry) bool {
			row := e.visible(seq)
			if row == nil {
				return true
			}
			changes = append(changes, Change{Table: tableName, Key: pk, Op: OpInsert, After: row.Clone()})
			return true
		})
	}
	if len(changes) > 0 {
		if _, err := dst.Commit(CommitRequest{Changes: changes}); err != nil {
			return nil, err
		}
	}
	return dst, nil
}
