package storage

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/schema"
	"repro/internal/value"
)

// This file implements the snapshot codec for the disk-backed regime: a
// deterministic, CRC-checked serialization of a store's full committed state
// (catalog, index definitions, row images, commit sequence). Checkpoints
// write a snapshot and truncate the WAL; recovery loads the newest valid
// snapshot and replays only the WAL tail.
//
// Layout (all integers uvarint unless noted):
//
//	magic "TRODSNP1" (8 bytes)
//	seq, nextTxn, tableCount
//	per table, sorted by lowercased name:
//	  name, columnCount, per column: name, kind byte, notNull byte
//	  pkCount, per pk: column position
//	  indexCount, per index: name, colCount, positions..., unique byte
//	  rowCount, per row in key order: key string, EncodeRow image
//	crc32-IEEE over everything above (4 bytes little-endian)
//
// Secondary indexes are not serialized; DecodeSnapshot rebuilds them from
// the row images through the normal CreateIndex backfill, so snapshot and
// live index construction can never diverge.

// snapMagic identifies and versions the snapshot format.
const snapMagic = "TRODSNP1"

// snapFormatGzip is the file-level format byte introduced for compressed
// snapshots: a snapshot file (or wire-shipped bootstrap image) starting with
// this byte holds a gzip stream of the raw EncodeSnapshot bytes. Files
// starting with snapMagic's first byte ('T') are the original uncompressed
// format and remain readable. 0x01 can never collide with the magic.
const snapFormatGzip = 0x01

// ErrSnapshotCorrupt reports a snapshot that failed validation (bad magic,
// truncated body, or CRC mismatch). Recovery treats it as "no snapshot" and
// falls back to full WAL replay where possible.
var ErrSnapshotCorrupt = errors.New("storage: snapshot corrupt")

// EncodeSnapshot serializes the committed state at the current sequence and
// returns the snapshot bytes plus the sequence they capture. The encoding is
// deterministic: the same committed state always yields the same bytes.
func (s *Store) EncodeSnapshot() ([]byte, uint64) {
	s.mu.RLock()
	defer s.mu.RUnlock()

	names := make([]string, 0, len(s.catalog))
	for k := range s.catalog {
		names = append(names, k)
	}
	sort.Strings(names)

	dst := append([]byte(nil), snapMagic...)
	dst = binary.AppendUvarint(dst, s.seq)
	dst = binary.AppendUvarint(dst, s.nextTxn)
	dst = binary.AppendUvarint(dst, uint64(len(names)))
	for _, tkey := range names {
		tbl := s.catalog[tkey]
		dst = snapString(dst, tbl.Name)
		dst = binary.AppendUvarint(dst, uint64(len(tbl.Columns)))
		for _, c := range tbl.Columns {
			dst = snapString(dst, c.Name)
			dst = append(dst, byte(c.Type))
			if c.NotNull {
				dst = append(dst, 1)
			} else {
				dst = append(dst, 0)
			}
		}
		dst = binary.AppendUvarint(dst, uint64(len(tbl.PKCols)))
		for _, p := range tbl.PKCols {
			dst = binary.AppendUvarint(dst, uint64(p))
		}
		defs := s.indexDef[tkey]
		dst = binary.AppendUvarint(dst, uint64(len(defs)))
		for _, ix := range defs {
			dst = snapString(dst, ix.Name)
			dst = binary.AppendUvarint(dst, uint64(len(ix.Columns)))
			for _, c := range ix.Columns {
				dst = binary.AppendUvarint(dst, uint64(c))
			}
			if ix.Unique {
				dst = append(dst, 1)
			} else {
				dst = append(dst, 0)
			}
		}
		td := s.data[tkey]
		live := 0
		td.rows.Ascend(func(_ string, e *entry) bool {
			if e.visible(s.seq) != nil {
				live++
			}
			return true
		})
		dst = binary.AppendUvarint(dst, uint64(live))
		td.rows.Ascend(func(pk string, e *entry) bool {
			row := e.visible(s.seq)
			if row == nil {
				return true
			}
			dst = snapString(dst, pk)
			dst = value.EncodeRow(dst, row)
			return true
		})
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(dst))
	return append(dst, crc[:]...), s.seq
}

// DecodeSnapshot reconstructs a Store from EncodeSnapshot bytes. The returned
// store reports CurrentSeq equal to the snapshot's sequence and is ready to
// have the WAL tail applied through ApplyCommitted. Validation failures
// return ErrSnapshotCorrupt (wrapped).
func DecodeSnapshot(data []byte) (*Store, error) {
	if len(data) < len(snapMagic)+4 || string(data[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrSnapshotCorrupt)
	}
	body, crc := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != crc {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrSnapshotCorrupt)
	}
	src := body[len(snapMagic):]
	off := 0
	seq, off, err := snapUvarint(src, off)
	if err != nil {
		return nil, err
	}
	nextTxn, off, err := snapUvarint(src, off)
	if err != nil {
		return nil, err
	}
	nTables, off, err := snapUvarint(src, off)
	if err != nil {
		return nil, err
	}
	dst := NewStore()
	// Rows carry the snapshot sequence and index backfill runs at it.
	dst.seq = seq
	dst.logBase = seq
	// A snapshot holds single-version row images at seq — history below it
	// does not survive encode/decode, however much the source store
	// retained. The history floor therefore rides the seq field: a restored
	// store answers time travel from the checkpoint sequence up, and
	// BeginAt/replay below that fail typed (ErrHistoryTruncated) instead of
	// silently reading rows as missing.
	dst.historyFloor = seq
	dst.nextTxn = nextTxn
	for t := uint64(0); t < nTables; t++ {
		var name string
		if name, off, err = snapReadString(src, off); err != nil {
			return nil, err
		}
		var nCols uint64
		if nCols, off, err = snapUvarint(src, off); err != nil {
			return nil, err
		}
		// Snapshot bytes arrive over the wire during replica bootstrap, so
		// every decoded count is bound-checked against the remaining
		// payload before it sizes an allocation (a column needs at least 3
		// bytes: name header, type, nullability).
		if nCols > uint64(len(src)-off)/3 {
			return nil, fmt.Errorf("%w: column count exceeds payload", ErrSnapshotCorrupt)
		}
		cols := make([]schema.Column, nCols)
		for i := range cols {
			if cols[i].Name, off, err = snapReadString(src, off); err != nil {
				return nil, err
			}
			if off+2 > len(src) {
				return nil, fmt.Errorf("%w: truncated column", ErrSnapshotCorrupt)
			}
			cols[i].Type = value.Kind(src[off])
			cols[i].NotNull = src[off+1] == 1
			off += 2
		}
		var nPK uint64
		if nPK, off, err = snapUvarint(src, off); err != nil {
			return nil, err
		}
		if nPK > uint64(len(src)-off) {
			return nil, fmt.Errorf("%w: pk count exceeds payload", ErrSnapshotCorrupt)
		}
		pk := make([]string, nPK)
		for i := range pk {
			var pos uint64
			if pos, off, err = snapUvarint(src, off); err != nil {
				return nil, err
			}
			if pos >= nCols {
				return nil, fmt.Errorf("%w: pk column out of range", ErrSnapshotCorrupt)
			}
			pk[i] = cols[pos].Name
		}
		tbl, err := schema.NewTable(name, cols, pk)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
		}
		if err := dst.CreateTable(tbl, false); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
		}
		var nIdx uint64
		if nIdx, off, err = snapUvarint(src, off); err != nil {
			return nil, err
		}
		if nIdx > uint64(len(src)-off)/3 {
			return nil, fmt.Errorf("%w: index count exceeds payload", ErrSnapshotCorrupt)
		}
		indexes := make([]*schema.Index, nIdx)
		for i := range indexes {
			ix := &schema.Index{Table: name}
			if ix.Name, off, err = snapReadString(src, off); err != nil {
				return nil, err
			}
			var nc uint64
			if nc, off, err = snapUvarint(src, off); err != nil {
				return nil, err
			}
			if nc > uint64(len(src)-off) {
				return nil, fmt.Errorf("%w: index column count exceeds payload", ErrSnapshotCorrupt)
			}
			ix.Columns = make([]int, nc)
			for j := range ix.Columns {
				var pos uint64
				if pos, off, err = snapUvarint(src, off); err != nil {
					return nil, err
				}
				if pos >= nCols {
					return nil, fmt.Errorf("%w: index column out of range", ErrSnapshotCorrupt)
				}
				ix.Columns[j] = int(pos)
			}
			if off >= len(src) {
				return nil, fmt.Errorf("%w: truncated index", ErrSnapshotCorrupt)
			}
			ix.Unique = src[off] == 1
			off++
			indexes[i] = ix
		}
		var nRows uint64
		if nRows, off, err = snapUvarint(src, off); err != nil {
			return nil, err
		}
		tkey := strings.ToLower(name)
		td := dst.data[tkey]
		for i := uint64(0); i < nRows; i++ {
			var key string
			if key, off, err = snapReadString(src, off); err != nil {
				return nil, err
			}
			row, used, err := value.DecodeRow(src[off:])
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
			}
			off += used
			td.rows.Set(key, &entry{versions: []version{{seq: seq, row: row}}})
		}
		// Rebuild secondary indexes from the restored rows (backfill at seq).
		for _, ix := range indexes {
			if err := dst.CreateIndex(ix); err != nil {
				return nil, fmt.Errorf("%w: rebuilding index: %v", ErrSnapshotCorrupt, err)
			}
		}
	}
	if off != len(src) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrSnapshotCorrupt, len(src)-off)
	}
	return dst, nil
}

// CompressSnapshot wraps raw EncodeSnapshot bytes in the compressed file
// format: the gzip format byte followed by a gzip stream. Checkpoint files
// and the replication bootstrap image both ship this form.
func CompressSnapshot(data []byte) []byte {
	var buf bytes.Buffer
	buf.WriteByte(snapFormatGzip)
	zw := gzip.NewWriter(&buf)
	zw.Write(data) // bytes.Buffer writes cannot fail
	_ = zw.Close() // flushes; same no-fail sink
	return buf.Bytes()
}

// DecompressSnapshot returns the raw EncodeSnapshot bytes behind either file
// format: gzip-compressed (format byte) or legacy uncompressed (magic).
func DecompressSnapshot(data []byte) ([]byte, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("%w: empty", ErrSnapshotCorrupt)
	}
	if data[0] != snapFormatGzip {
		return data, nil // legacy uncompressed snapshot (starts with the magic)
	}
	zr, err := gzip.NewReader(bytes.NewReader(data[1:]))
	if err != nil {
		return nil, fmt.Errorf("%w: gzip header: %v", ErrSnapshotCorrupt, err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		return nil, fmt.Errorf("%w: gzip body: %v", ErrSnapshotCorrupt, err)
	}
	if err := zr.Close(); err != nil {
		return nil, fmt.Errorf("%w: gzip close: %v", ErrSnapshotCorrupt, err)
	}
	return raw, nil
}

// WriteSnapshotFile writes snapshot bytes to path atomically: a temp file in
// the same directory is synced and renamed into place, so a crash leaves
// either the old snapshot or the new one, never a torn mix. The on-disk form
// is gzip-compressed behind a format byte; LoadSnapshotFile also still reads
// uncompressed files written before compression existed.
func WriteSnapshotFile(path string, data []byte) error {
	data = CompressSnapshot(data)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("storage: snapshot write: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close() // already failing; surface the write error, not the cleanup
		os.Remove(tmp)
		return fmt.Errorf("storage: snapshot write: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close() // already failing; surface the sync error, not the cleanup
		os.Remove(tmp)
		return fmt.Errorf("storage: snapshot sync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: snapshot close: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: snapshot rename: %w", err)
	}
	SyncDir(filepath.Dir(path))
	return nil
}

// LoadSnapshotFile reads and decodes the snapshot at path (compressed or
// legacy uncompressed format).
func LoadSnapshotFile(path string) (*Store, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("storage: snapshot read: %w", err)
	}
	raw, err := DecompressSnapshot(data)
	if err != nil {
		return nil, err
	}
	return DecodeSnapshot(raw)
}

// SyncDir fsyncs a directory so a just-renamed file survives a crash; best
// effort because not every filesystem supports it. Shared by the snapshot
// writer and the WAL's rotation path.
func SyncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close() // read-only directory handle; nothing to lose
	}
}

// CheckpointTail runs fn under the store's exclusive lock with the commit
// records whose Seq is greater than from — the WAL tail a checkpoint at
// `from` must preserve. While fn runs no commit can start, so rotating the
// WAL inside fn cannot lose a record that raced the rotation. It fails if
// the in-memory CDC log no longer reaches back to `from` (TruncateLog ran
// past it), in which case the caller must leave the WAL untouched.
func (s *Store) CheckpointTail(from uint64, fn func(tail []CommitRecord) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.logBase > from {
		return fmt.Errorf("storage: commit log truncated to %d, cannot collect tail after %d", s.logBase, from)
	}
	tail := make([]CommitRecord, 0, len(s.log)-s.logIndex(from+1))
	for i := s.logIndex(from + 1); i < len(s.log); i++ {
		if s.log[i].Seq > from {
			tail = append(tail, s.log[i])
		}
	}
	return fn(tail)
}

func snapString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func snapUvarint(src []byte, off int) (uint64, int, error) {
	v, n := binary.Uvarint(src[off:])
	if n <= 0 {
		return 0, off, fmt.Errorf("%w: bad uvarint", ErrSnapshotCorrupt)
	}
	return v, off + n, nil
}

func snapReadString(src []byte, off int) (string, int, error) {
	n, off, err := snapUvarint(src, off)
	if err != nil {
		return "", off, err
	}
	// Compare in uint64 space: converting first would let a length >=
	// 2^63 wrap negative and slip past an int-space check into the slice
	// expression below.
	if n > uint64(len(src)-off) {
		return "", off, fmt.Errorf("%w: truncated string", ErrSnapshotCorrupt)
	}
	return string(src[off : off+int(n)]), off + int(n), nil
}
