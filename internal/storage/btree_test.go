package storage

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestBTreeSetGet(t *testing.T) {
	tr := newBTree[int]()
	if _, ok := tr.Get("missing"); ok {
		t.Error("empty tree Get should miss")
	}
	if !tr.Set("a", 1) {
		t.Error("first Set should report insert")
	}
	if tr.Set("a", 2) {
		t.Error("second Set should report replace")
	}
	if v, ok := tr.Get("a"); !ok || v != 2 {
		t.Errorf("Get(a) = %d, %v", v, ok)
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestBTreeGetOrSet(t *testing.T) {
	tr := newBTree[*int]()
	calls := 0
	mk := func() *int { calls++; v := 7; return &v }
	p1, loaded := tr.GetOrSet("k", mk)
	if loaded || *p1 != 7 || calls != 1 {
		t.Error("first GetOrSet should create")
	}
	p2, loaded := tr.GetOrSet("k", mk)
	if !loaded || p1 != p2 || calls != 1 {
		t.Error("second GetOrSet should load existing")
	}
}

func TestBTreeManyKeysOrdered(t *testing.T) {
	tr := newBTree[int]()
	const n = 5000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, i := range perm {
		tr.Set(fmt.Sprintf("key%06d", i), i)
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	prev := ""
	count := 0
	tr.Ascend(func(k string, v int) bool {
		if k <= prev {
			t.Fatalf("out of order: %q after %q", k, prev)
		}
		prev = k
		count++
		return true
	})
	if count != n {
		t.Errorf("Ascend visited %d, want %d", count, n)
	}
	// Spot-check lookups after splits.
	for i := 0; i < n; i += 97 {
		if v, ok := tr.Get(fmt.Sprintf("key%06d", i)); !ok || v != i {
			t.Errorf("Get(key%06d) = %d, %v", i, v, ok)
		}
	}
}

func TestBTreeRangeScan(t *testing.T) {
	tr := newBTree[int]()
	for i := 0; i < 100; i++ {
		tr.Set(fmt.Sprintf("%03d", i), i)
	}
	var got []int
	tr.AscendRange("010", "015", func(k string, v int) bool {
		got = append(got, v)
		return true
	})
	if fmt.Sprint(got) != "[10 11 12 13 14]" {
		t.Errorf("range scan = %v", got)
	}
	// Unbounded hi.
	got = nil
	tr.AscendRange("097", "", func(k string, v int) bool {
		got = append(got, v)
		return true
	})
	if fmt.Sprint(got) != "[97 98 99]" {
		t.Errorf("open range scan = %v", got)
	}
	// Early stop.
	got = nil
	tr.AscendRange("", "", func(k string, v int) bool {
		got = append(got, v)
		return len(got) < 3
	})
	if len(got) != 3 {
		t.Errorf("early stop visited %d", len(got))
	}
}

func TestBTreeReplaceAtSeparator(t *testing.T) {
	// Force enough inserts that separators are promoted, then replace keys
	// that live in interior nodes.
	tr := newBTree[int]()
	const n = 2000
	for i := 0; i < n; i++ {
		tr.Set(fmt.Sprintf("%05d", i), i)
	}
	for i := 0; i < n; i++ {
		if tr.Set(fmt.Sprintf("%05d", i), i*2) {
			t.Fatalf("replace of %05d reported insert", i)
		}
	}
	if tr.Len() != n {
		t.Errorf("Len = %d after replaces", tr.Len())
	}
	for i := 0; i < n; i += 131 {
		if v, _ := tr.Get(fmt.Sprintf("%05d", i)); v != i*2 {
			t.Errorf("Get(%05d) = %d, want %d", i, v, i*2)
		}
	}
}

// Property: tree contents match a reference map and iteration matches sorted
// key order.
func TestBTreePropertyAgainstMap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := newBTree[int]()
		ref := map[string]int{}
		for i := 0; i < 500; i++ {
			k := fmt.Sprintf("%04d", rng.Intn(300)) // collisions force replaces
			v := rng.Int()
			tr.Set(k, v)
			ref[k] = v
		}
		if tr.Len() != len(ref) {
			return false
		}
		keys := make([]string, 0, len(ref))
		for k := range ref {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		i := 0
		ok := true
		tr.Ascend(func(k string, v int) bool {
			if i >= len(keys) || k != keys[i] || v != ref[k] {
				ok = false
				return false
			}
			i++
			return true
		})
		return ok && i == len(keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
