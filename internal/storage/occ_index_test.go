package storage

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/schema"
	"repro/internal/value"
)

// Helpers for a table with a secondary index on its second column.

func emailTable(t *testing.T) (*Store, *schema.Table) {
	t.Helper()
	s := NewStore()
	tbl := mustTable(t, "emails", []schema.Column{
		{Name: "id", Type: value.KindInt},
		{Name: "email", Type: value.KindText},
	}, []string{"id"})
	if err := s.CreateTable(tbl, false); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateIndex(&schema.Index{Name: "u_email", Table: "emails", Columns: []int{1}, Unique: true}); err != nil {
		t.Fatal(err)
	}
	return s, tbl
}

func emailRow(id int64, email string) value.Row {
	return value.Row{value.Int(id), value.Text(email)}
}

// TestUniqueIndexIntraCommitDuplicate is the confirmed repro from the issue:
// two inserts of the same unique key inside one commit used to pass, because
// each change was validated against committed state only — corrupting the
// index (index lookup found 1 row, full scan 2).
func TestUniqueIndexIntraCommitDuplicate(t *testing.T) {
	s, tbl := emailTable(t)
	r1, r2 := emailRow(1, "dup@x"), emailRow(2, "dup@x")
	_, err := s.Commit(CommitRequest{TxnID: s.NextTxnID(), Snapshot: s.CurrentSeq(),
		Changes: []Change{
			{Table: "emails", Key: tbl.EncodePrimaryKey(r1), Op: OpInsert, After: r1},
			{Table: "emails", Key: tbl.EncodePrimaryKey(r2), Op: OpInsert, After: r2},
		}})
	if err == nil {
		t.Fatal("intra-commit duplicate unique key must be rejected")
	}
	if !strings.Contains(err.Error(), "unique") {
		t.Errorf("want unique-violation error, got %v", err)
	}
	// The rejected commit must leave no trace: neither rows nor postings.
	if n := s.RowCount("emails", s.CurrentSeq()); n != 0 {
		t.Errorf("rejected commit left %d rows", n)
	}
	found := 0
	if err := s.IndexScanRange("emails", "u_email", "", "", s.CurrentSeq(), func(_, _ string) bool {
		found++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if found != 0 {
		t.Errorf("rejected commit left %d index postings", found)
	}
}

// TestUniqueIndexDeleteReinsertSameCommit pins the dual bug: freeing a unique
// key and re-claiming it within one commit is legal, but the old per-change
// check still saw the stale posting visible at s.seq and rejected it.
func TestUniqueIndexDeleteReinsertSameCommit(t *testing.T) {
	s, tbl := emailTable(t)
	old := emailRow(1, "move@x")
	if _, err := s.Commit(CommitRequest{TxnID: s.NextTxnID(), Snapshot: s.CurrentSeq(),
		Changes: []Change{{Table: "emails", Key: tbl.EncodePrimaryKey(old), Op: OpInsert, After: old}}}); err != nil {
		t.Fatal(err)
	}
	repl := emailRow(2, "move@x")
	if _, err := s.Commit(CommitRequest{TxnID: s.NextTxnID(), Snapshot: s.CurrentSeq(),
		Changes: []Change{
			{Table: "emails", Key: tbl.EncodePrimaryKey(old), Op: OpDelete, Before: old},
			{Table: "emails", Key: tbl.EncodePrimaryKey(repl), Op: OpInsert, After: repl},
		}}); err != nil {
		t.Fatalf("delete+reinsert of a unique key in one commit must pass: %v", err)
	}
	// The posting must now reference the new row.
	var gotPK string
	if err := s.IndexScanRange("emails", "u_email", "", "", s.CurrentSeq(), func(_, pk string) bool {
		gotPK = pk
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if gotPK != tbl.EncodePrimaryKey(repl) {
		t.Errorf("posting references %x, want the re-inserted row", gotPK)
	}
}

// TestUniqueIndexReclaimOrderIndependent: when a commit frees and re-claims
// the same unique key, the index must net out to the new posting no matter
// how the changes are ordered. The claiming change sorting *before* the
// freeing one (txn.PendingChanges sorts by primary key) used to leave the
// old key's tombstone on top of the new posting — index scans then missed a
// row that full scans returned.
func TestUniqueIndexReclaimOrderIndependent(t *testing.T) {
	for name, order := range map[string]bool{"insert-first": true, "delete-first": false} {
		t.Run(name, func(t *testing.T) {
			s, tbl := emailTable(t)
			old := emailRow(5, "k@x")
			if _, err := s.Commit(CommitRequest{TxnID: s.NextTxnID(), Snapshot: s.CurrentSeq(),
				Changes: []Change{{Table: "emails", Key: tbl.EncodePrimaryKey(old), Op: OpInsert, After: old}}}); err != nil {
				t.Fatal(err)
			}
			repl := emailRow(2, "k@x")
			del := Change{Table: "emails", Key: tbl.EncodePrimaryKey(old), Op: OpDelete, Before: old}
			ins := Change{Table: "emails", Key: tbl.EncodePrimaryKey(repl), Op: OpInsert, After: repl}
			changes := []Change{del, ins}
			if order {
				changes = []Change{ins, del}
			}
			if _, err := s.Commit(CommitRequest{TxnID: s.NextTxnID(), Snapshot: s.CurrentSeq(), Changes: changes}); err != nil {
				t.Fatal(err)
			}
			var pks []string
			if err := s.IndexScanRange("emails", "u_email", "", "", s.CurrentSeq(), func(_, pk string) bool {
				pks = append(pks, pk)
				return true
			}); err != nil {
				t.Fatal(err)
			}
			if len(pks) != 1 || pks[0] != tbl.EncodePrimaryKey(repl) {
				t.Fatalf("index postings after re-claim = %x, want exactly the new row (index/full-scan divergence)", pks)
			}
			if n := s.RowCount("emails", s.CurrentSeq()); n != 1 {
				t.Errorf("row count = %d, want 1", n)
			}
		})
	}
}

// TestApplyCommittedReclaimOrderIndependent: WAL recovery replays the same
// change lists through ApplyCommitted and must preserve the same net index
// state.
func TestApplyCommittedReclaimOrderIndependent(t *testing.T) {
	s, tbl := emailTable(t)
	old := emailRow(5, "k@x")
	repl := emailRow(2, "k@x")
	if err := s.ApplyCommitted(CommitRecord{Seq: 1, TxnID: 1,
		Changes: []Change{{Table: "emails", Key: tbl.EncodePrimaryKey(old), Op: OpInsert, After: old}}}); err != nil {
		t.Fatal(err)
	}
	if err := s.ApplyCommitted(CommitRecord{Seq: 2, TxnID: 2, Changes: []Change{
		{Table: "emails", Key: tbl.EncodePrimaryKey(repl), Op: OpInsert, After: repl},
		{Table: "emails", Key: tbl.EncodePrimaryKey(old), Op: OpDelete, Before: old},
	}}); err != nil {
		t.Fatal(err)
	}
	var pks []string
	if err := s.IndexScanRange("emails", "u_email", "", "", s.CurrentSeq(), func(_, pk string) bool {
		pks = append(pks, pk)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(pks) != 1 || pks[0] != tbl.EncodePrimaryKey(repl) {
		t.Fatalf("recovered index postings = %x, want exactly the new row", pks)
	}
}

// TestUniqueIndexSwapWithinCommit: two rows exchanging unique values in one
// commit is a net no-op on the key space and must pass.
func TestUniqueIndexSwapWithinCommit(t *testing.T) {
	s, tbl := emailTable(t)
	a0, b0 := emailRow(1, "a@x"), emailRow(2, "b@x")
	for _, r := range []value.Row{a0, b0} {
		if _, err := s.Commit(CommitRequest{TxnID: s.NextTxnID(), Snapshot: s.CurrentSeq(),
			Changes: []Change{{Table: "emails", Key: tbl.EncodePrimaryKey(r), Op: OpInsert, After: r}}}); err != nil {
			t.Fatal(err)
		}
	}
	a1, b1 := emailRow(1, "b@x"), emailRow(2, "a@x")
	if _, err := s.Commit(CommitRequest{TxnID: s.NextTxnID(), Snapshot: s.CurrentSeq(),
		Changes: []Change{
			{Table: "emails", Key: tbl.EncodePrimaryKey(a1), Op: OpUpdate, Before: a0, After: a1},
			{Table: "emails", Key: tbl.EncodePrimaryKey(b1), Op: OpUpdate, Before: b0, After: b1},
		}}); err != nil {
		t.Fatalf("unique-value swap within one commit must pass: %v", err)
	}
	row, ok := s.Get("emails", tbl.EncodePrimaryKey(a1), s.CurrentSeq())
	if !ok || row[1].AsText() != "b@x" {
		t.Errorf("swap not applied: %v", row)
	}
}

// TestUniqueIndexUpdateOntoLiveKeyStillFails: an update claiming a key that
// another committed row still holds must keep failing (the net-effect fix
// must not weaken the existing guarantee).
func TestUniqueIndexUpdateOntoLiveKeyStillFails(t *testing.T) {
	s, tbl := emailTable(t)
	a, b := emailRow(1, "a@x"), emailRow(2, "b@x")
	for _, r := range []value.Row{a, b} {
		if _, err := s.Commit(CommitRequest{TxnID: s.NextTxnID(), Snapshot: s.CurrentSeq(),
			Changes: []Change{{Table: "emails", Key: tbl.EncodePrimaryKey(r), Op: OpInsert, After: r}}}); err != nil {
			t.Fatal(err)
		}
	}
	b1 := emailRow(2, "a@x")
	if _, err := s.Commit(CommitRequest{TxnID: s.NextTxnID(), Snapshot: s.CurrentSeq(),
		Changes: []Change{{Table: "emails", Key: tbl.EncodePrimaryKey(b1), Op: OpUpdate, Before: b, After: b1}}}); err == nil {
		t.Fatal("updating onto a live unique key must fail")
	}
}

// TestReadSetCaseNormalization: reads recorded with any table-name casing
// must still collide with commits using the canonical name.
func TestReadSetCaseNormalization(t *testing.T) {
	rs := NewReadSet()
	rs.AddKey("KV", "k1")
	rs.AddRange("Kv", "a", "c")
	if !rs.Contains("kv", "k1") || !rs.Contains("KV", "k1") {
		t.Error("point read should match regardless of case")
	}
	if !rs.Contains("kV", "b") {
		t.Error("range read should match regardless of case")
	}
	if rs.Contains("kv", "zzz") {
		t.Error("unrelated key should not match")
	}

	// End to end: a read set recorded with odd casing must abort on a
	// conflicting commit that uses the canonical table name.
	s, tbl := newKVStore(t)
	insertKV(t, s, tbl, "k1", 1)
	snap := s.CurrentSeq()
	reads := NewReadSet()
	reads.AddKey("KV", tbl.EncodePrimaryKey(value.Row{value.Text("k1"), value.Int(1)}))
	// Concurrent writer updates k1.
	row := value.Row{value.Text("k1"), value.Int(2)}
	if _, err := s.Commit(CommitRequest{TxnID: s.NextTxnID(), Snapshot: s.CurrentSeq(),
		Changes: []Change{{Table: "kv", Key: tbl.EncodePrimaryKey(row), Op: OpUpdate, After: row}}}); err != nil {
		t.Fatal(err)
	}
	other := value.Row{value.Text("x"), value.Int(9)}
	_, err := s.Commit(CommitRequest{TxnID: s.NextTxnID(), Snapshot: snap, Reads: reads,
		Changes: []Change{{Table: "kv", Key: tbl.EncodePrimaryKey(other), Op: OpInsert, After: other}}})
	if err == nil {
		t.Fatal("mixed-case read set must still detect the conflict")
	}
}

// indexKeyBounds encodes the index-key interval covering exactly one value
// of a single-column index (non-unique keys carry a PK suffix, so the
// interval is [enc(v), enc(v)+0xff)).
func indexKeyBounds(v value.Value) (string, string) {
	enc := string(value.EncodeKey(nil, v))
	return enc, enc + "\xff"
}

// TestIndexRangeOCCPrecision: commits whose index keys stay outside every
// scanned index range do not conflict; entering (phantom) or leaving
// (update-out) a scanned range does.
func TestIndexRangeOCCPrecision(t *testing.T) {
	s := NewStore()
	tbl := mustTable(t, "t", []schema.Column{
		{Name: "id", Type: value.KindInt},
		{Name: "v", Type: value.KindInt},
	}, []string{"id"})
	if err := s.CreateTable(tbl, false); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateIndex(&schema.Index{Name: "iv", Table: "t", Columns: []int{1}}); err != nil {
		t.Fatal(err)
	}
	mkRow := func(id, v int64) value.Row { return value.Row{value.Int(id), value.Int(v)} }
	commit := func(snap uint64, reads *ReadSet, ch ...Change) error {
		_, err := s.Commit(CommitRequest{TxnID: s.NextTxnID(), Snapshot: snap, Reads: reads, Changes: ch})
		return err
	}
	seed := mkRow(1, 5)
	if err := commit(s.CurrentSeq(), nil, Change{Table: "t", Key: tbl.EncodePrimaryKey(seed), Op: OpInsert, After: seed}); err != nil {
		t.Fatal(err)
	}

	lo5, hi5 := indexKeyBounds(value.Int(5))

	// Reader scanned v=5; writer inserts v=9: disjoint, no conflict.
	snap := s.CurrentSeq()
	reads := NewReadSet()
	reads.AddIndexRange("t", "iv", lo5, hi5)
	w1 := mkRow(2, 9)
	if err := commit(s.CurrentSeq(), nil, Change{Table: "t", Key: tbl.EncodePrimaryKey(w1), Op: OpInsert, After: w1}); err != nil {
		t.Fatal(err)
	}
	me := mkRow(100, 50)
	if err := commit(snap, reads, Change{Table: "t", Key: tbl.EncodePrimaryKey(me), Op: OpInsert, After: me}); err != nil {
		t.Fatalf("writer outside the scanned index range must not conflict: %v", err)
	}

	// Phantom: writer inserts v=5 into the scanned range -> conflict.
	snap = s.CurrentSeq()
	reads = NewReadSet()
	reads.AddIndexRange("t", "iv", lo5, hi5)
	w2 := mkRow(3, 5)
	if err := commit(s.CurrentSeq(), nil, Change{Table: "t", Key: tbl.EncodePrimaryKey(w2), Op: OpInsert, After: w2}); err != nil {
		t.Fatal(err)
	}
	me = mkRow(101, 50)
	err := commit(snap, reads, Change{Table: "t", Key: tbl.EncodePrimaryKey(me), Op: OpInsert, After: me})
	var conflict *ConflictError
	if err == nil {
		t.Fatal("phantom insert into the scanned index range must conflict")
	} else if !errors.As(err, &conflict) {
		t.Fatalf("want *ConflictError, got %v", err)
	}

	// Update-out: writer moves a v=5 row to v=7, leaving the scanned range.
	snap = s.CurrentSeq()
	reads = NewReadSet()
	reads.AddIndexRange("t", "iv", lo5, hi5)
	moved := mkRow(1, 7)
	if err := commit(s.CurrentSeq(), nil, Change{Table: "t", Key: tbl.EncodePrimaryKey(moved), Op: OpUpdate, Before: seed, After: moved}); err != nil {
		t.Fatal(err)
	}
	me = mkRow(102, 50)
	if err := commit(snap, reads, Change{Table: "t", Key: tbl.EncodePrimaryKey(me), Op: OpInsert, After: me}); err == nil {
		t.Fatal("update moving a row out of the scanned index range must conflict")
	}

	// Unrelated-table writer never conflicts with an index range.
	tbl2 := kvTable(t, "other")
	if err := s.CreateTable(tbl2, false); err != nil {
		t.Fatal(err)
	}
	snap = s.CurrentSeq()
	reads = NewReadSet()
	reads.AddIndexRange("t", "iv", lo5, hi5)
	or := value.Row{value.Text("o"), value.Int(1)}
	if err := commit(s.CurrentSeq(), nil, Change{Table: "other", Key: tbl2.EncodePrimaryKey(or), Op: OpInsert, After: or}); err != nil {
		t.Fatal(err)
	}
	me = mkRow(103, 50)
	if err := commit(snap, reads, Change{Table: "t", Key: tbl.EncodePrimaryKey(me), Op: OpInsert, After: me}); err != nil {
		t.Fatalf("writer on another table must not conflict with an index range: %v", err)
	}
}
