package storage

import (
	"errors"
	"fmt"
	"sort"
)

// ErrHistoryTruncated reports a time-travel access below the store's history
// floor: Vacuum or a checkpointed restart discarded the row versions the
// read would need, so the store refuses loudly instead of returning
// plausible-but-empty results.
var ErrHistoryTruncated = errors.New("storage: history truncated below requested snapshot")

// VacuumStats counts what vacuum removed. Store.Vacuum returns the stats of
// one run (Runs == 1 when anything was examined); Store.VacuumTotals returns
// the accumulated counters since the store was opened.
type VacuumStats struct {
	Runs                 uint64
	LastHorizon          uint64 // effective horizon of the most recent run
	DroppedRowVersions   uint64 // row versions compacted out of chains
	DroppedRowKeys       uint64 // tombstoned row entries removed from trees
	DroppedIndexVersions uint64 // index-posting versions compacted out
	DroppedIndexKeys     uint64 // dead index postings removed from trees
}

// add accumulates o into s.
func (s *VacuumStats) add(o VacuumStats) {
	s.Runs += o.Runs
	s.LastHorizon = o.LastHorizon
	s.DroppedRowVersions += o.DroppedRowVersions
	s.DroppedRowKeys += o.DroppedRowKeys
	s.DroppedIndexVersions += o.DroppedIndexVersions
	s.DroppedIndexKeys += o.DroppedIndexKeys
}

// VersionStats is a point-in-time census of MVCC residency, computed in one
// O(total versions) pass for operator stats and the mvcc experiment's
// plateau check.
type VersionStats struct {
	ResidentRowVersions   uint64 // row versions resident across all chains
	ResidentRowKeys       uint64 // distinct row entries (live or tombstoned)
	MaxChainLength        uint64 // longest row version chain
	ResidentIndexVersions uint64 // index-posting versions resident
}

// Vacuum garbage-collects MVCC history older than horizon: every row and
// index-posting version chain is compacted to the version visible at the
// horizon (when still live) plus everything newer, and entries whose whole
// chain is dead at the horizon — rows deleted before it — are physically
// removed from the B-trees. The effective horizon is clamped to the oldest
// pinned snapshot, so a long-running read-only scan keeps every version it
// can see; correctness never depends on the caller choosing a safe horizon.
//
// Reads at or after the effective horizon observe exactly what they did
// before the vacuum. Reads below it are no longer answerable, so the history
// floor (HistoryRetainedFrom) rises to the horizon.
func (s *Store) Vacuum(horizon uint64) VacuumStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if oldest, pinned := s.oldestPinLocked(); pinned && oldest < horizon {
		horizon = oldest
	}
	if horizon > s.seq {
		horizon = s.seq
	}
	st := VacuumStats{Runs: 1, LastHorizon: horizon}
	if horizon > 0 && horizon > s.historyFloor {
		// Tables in sorted order: counters are order-independent, but tree
		// mutation order stays deterministic for debugging and replay.
		tkeys := make([]string, 0, len(s.data))
		for tkey := range s.data {
			tkeys = append(tkeys, tkey)
		}
		sort.Strings(tkeys)
		for _, tkey := range tkeys {
			s.vacuumTable(s.data[tkey], horizon, &st)
		}
		s.historyFloor = horizon
	}
	s.vac.add(st)
	return st
}

// vacuumTable compacts one table's row tree and index trees. Called under
// s.mu.
func (s *Store) vacuumTable(td *tableData, horizon uint64, st *VacuumStats) {
	var dead []string
	td.rows.Ascend(func(k string, e *entry) bool {
		kept, dropped := compactRowChain(e.versions, horizon)
		st.DroppedRowVersions += dropped
		if len(kept) == 0 {
			dead = append(dead, k)
		} else if dropped > 0 {
			e.versions = kept
		}
		return true
	})
	for _, k := range dead {
		td.rows.Delete(k)
		st.DroppedRowKeys++
	}
	inames := make([]string, 0, len(td.indexes))
	for iname := range td.indexes {
		inames = append(inames, iname)
	}
	sort.Strings(inames)
	for _, iname := range inames {
		tree := td.indexes[iname]
		dead = dead[:0]
		tree.Ascend(func(k string, e *indexEntry) bool {
			kept, dropped := compactIndexChain(e.versions, horizon)
			st.DroppedIndexVersions += dropped
			if len(kept) == 0 {
				dead = append(dead, k)
			} else if dropped > 0 {
				e.versions = kept
			}
			return true
		})
		for _, k := range dead {
			tree.Delete(k)
			st.DroppedIndexKeys++
		}
	}
}

// compactRowChain reduces a version chain to the version visible at the
// horizon (if it is a live row — a visible tombstone is equivalent to no
// version at all, since both read as "row absent") plus every newer version.
// It returns the surviving chain and the number of versions dropped; when
// nothing is dropped it returns the input slice unchanged. The surviving
// chain is reallocated so dropped row images do not stay reachable through
// the old backing array.
func compactRowChain(vs []version, horizon uint64) ([]version, uint64) {
	j := sort.Search(len(vs), func(i int) bool { return vs[i].seq > horizon })
	keep := j
	if j > 0 && vs[j-1].row != nil {
		keep = j - 1
	}
	if keep == 0 {
		return vs, 0
	}
	return append([]version(nil), vs[keep:]...), uint64(keep)
}

// compactIndexChain is compactRowChain for index postings: an absent posting
// visible at the horizon reads the same as no posting, so only a present one
// is retained.
func compactIndexChain(vs []indexVersion, horizon uint64) ([]indexVersion, uint64) {
	j := sort.Search(len(vs), func(i int) bool { return vs[i].seq > horizon })
	keep := j
	if j > 0 && vs[j-1].present {
		keep = j - 1
	}
	if keep == 0 {
		return vs, 0
	}
	return append([]indexVersion(nil), vs[keep:]...), uint64(keep)
}

// VacuumTotals returns the accumulated vacuum counters.
func (s *Store) VacuumTotals() VacuumStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.vac
}

// VersionCensus walks every chain and reports MVCC residency.
func (s *Store) VersionCensus() VersionStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var st VersionStats
	for _, td := range s.data {
		td.rows.Ascend(func(_ string, e *entry) bool {
			n := uint64(len(e.versions))
			st.ResidentRowKeys++
			st.ResidentRowVersions += n
			if n > st.MaxChainLength {
				st.MaxChainLength = n
			}
			return true
		})
		for _, tree := range td.indexes {
			tree.Ascend(func(_ string, e *indexEntry) bool {
				st.ResidentIndexVersions += uint64(len(e.versions))
				return true
			})
		}
	}
	return st
}

// historyTruncatedf builds the standard below-floor error.
func historyTruncatedf(requested, floor uint64) error {
	return fmt.Errorf("%w: requested snapshot %d, history retained from %d", ErrHistoryTruncated, requested, floor)
}
