// Package storage implements the MVCC storage engine at the bottom of the
// TROD stack: versioned tables ordered by encoded primary key, versioned
// secondary indexes, snapshot (as-of) reads for time travel, optimistic
// commit validation for strict serializability, and a change-data-capture
// commit log that the TROD tracer and replay engine consume.
package storage

import "sort"

// btree is an in-memory B-tree mapping string keys to values of type V. It
// supports insert/replace, point lookup, ordered range scans, and key
// removal. MVCC deletion is expressed as tombstone versions in the stored
// value; physical removal happens only when Vacuum drops an entry whose
// whole chain fell below the history horizon.
//
// The tree uses preemptive splitting: full nodes are split on the way down,
// so inserts never backtrack.
type btree[V any] struct {
	root *btreeNode[V]
	size int
}

// btreeDegree is the maximum number of keys per node; chosen so a node fills
// roughly one cache line's worth of string headers.
const btreeDegree = 32

type btreeNode[V any] struct {
	keys     []string
	vals     []V
	children []*btreeNode[V] // nil for leaves
}

func newBTree[V any]() *btree[V] {
	return &btree[V]{root: &btreeNode[V]{}}
}

// Len returns the number of distinct keys.
func (t *btree[V]) Len() int { return t.size }

func (n *btreeNode[V]) leaf() bool { return n.children == nil }

// find returns the position of key in n.keys and whether it matched exactly.
func (n *btreeNode[V]) find(key string) (int, bool) {
	i := sort.SearchStrings(n.keys, key)
	if i < len(n.keys) && n.keys[i] == key {
		return i, true
	}
	return i, false
}

// Get returns the value stored at key.
func (t *btree[V]) Get(key string) (V, bool) {
	n := t.root
	for {
		i, ok := n.find(key)
		if ok {
			return n.vals[i], true
		}
		if n.leaf() {
			var zero V
			return zero, false
		}
		n = n.children[i]
	}
}

// Set inserts or replaces the value at key, reporting whether the key was
// newly inserted.
func (t *btree[V]) Set(key string, val V) bool {
	if len(t.root.keys) == 2*btreeDegree-1 {
		old := t.root
		t.root = &btreeNode[V]{children: []*btreeNode[V]{old}}
		t.root.splitChild(0)
	}
	inserted := t.root.insert(key, val)
	if inserted {
		t.size++
	}
	return inserted
}

// GetOrSet returns the existing value at key, or stores and returns mk()'s
// result when absent. loaded reports whether the value pre-existed.
func (t *btree[V]) GetOrSet(key string, mk func() V) (v V, loaded bool) {
	if existing, ok := t.Get(key); ok {
		return existing, true
	}
	val := mk()
	t.Set(key, val)
	return val, false
}

func (n *btreeNode[V]) insert(key string, val V) bool {
	for {
		i, ok := n.find(key)
		if ok {
			n.vals[i] = val
			return false
		}
		if n.leaf() {
			n.keys = append(n.keys, "")
			copy(n.keys[i+1:], n.keys[i:])
			n.keys[i] = key
			var zero V
			n.vals = append(n.vals, zero)
			copy(n.vals[i+1:], n.vals[i:])
			n.vals[i] = val
			return true
		}
		child := n.children[i]
		if len(child.keys) == 2*btreeDegree-1 {
			n.splitChild(i)
			// The separator promoted from the child may equal or precede key.
			if key == n.keys[i] {
				n.vals[i] = val
				return false
			}
			if key > n.keys[i] {
				i++
			}
		}
		n = n.children[i]
	}
}

// splitChild splits the full child at index i, promoting its median into n.
func (n *btreeNode[V]) splitChild(i int) {
	child := n.children[i]
	mid := btreeDegree - 1
	medianKey, medianVal := child.keys[mid], child.vals[mid]

	right := &btreeNode[V]{
		keys: append([]string(nil), child.keys[mid+1:]...),
		vals: append([]V(nil), child.vals[mid+1:]...),
	}
	if !child.leaf() {
		right.children = append([]*btreeNode[V](nil), child.children[mid+1:]...)
		child.children = child.children[:mid+1]
	}
	child.keys = child.keys[:mid]
	child.vals = child.vals[:mid]

	n.keys = append(n.keys, "")
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = medianKey
	var zero V
	n.vals = append(n.vals, zero)
	copy(n.vals[i+1:], n.vals[i:])
	n.vals[i] = medianVal
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
}

// Delete removes key, reporting whether it was present. Removal does not
// rebalance: a node may drop below the usual minimum occupancy (or empty out
// entirely), which search, insert, and iteration all tolerate — Vacuum's
// deletions are sparse and later inserts re-split on the way down. The
// balance invariant degrades gracefully instead of buying rotation/merge
// complexity the workload never needs.
func (t *btree[V]) Delete(key string) bool {
	if !t.root.remove(key) {
		return false
	}
	for len(t.root.keys) == 0 && !t.root.leaf() {
		t.root = t.root.children[0]
	}
	t.size--
	return true
}

func (n *btreeNode[V]) remove(key string) bool {
	i, ok := n.find(key)
	if ok {
		if n.leaf() {
			n.keys = append(n.keys[:i], n.keys[i+1:]...)
			n.vals = append(n.vals[:i], n.vals[i+1:]...)
			return true
		}
		// Internal hit: swap in the in-order predecessor (max of the left
		// subtree) as the new separator, then remove that key from where it
		// lived. Earlier deletions may have emptied the left subtree — fall
		// back to the successor, and when both neighbours are empty the
		// separator goes away along with the (empty) right subtree.
		if pk, pv, found := n.children[i].maxEntry(); found {
			n.keys[i] = pk
			n.vals[i] = pv
			return n.children[i].remove(pk)
		}
		if sk, sv, found := n.children[i+1].minEntry(); found {
			n.keys[i] = sk
			n.vals[i] = sv
			return n.children[i+1].remove(sk)
		}
		n.keys = append(n.keys[:i], n.keys[i+1:]...)
		n.vals = append(n.vals[:i], n.vals[i+1:]...)
		n.children = append(n.children[:i+1], n.children[i+2:]...)
		return true
	}
	if n.leaf() {
		return false
	}
	return n.children[i].remove(key)
}

// maxEntry returns the largest key in the subtree, descending through empty
// unbalanced nodes; found is false when the subtree holds no keys at all.
func (n *btreeNode[V]) maxEntry() (string, V, bool) {
	if n.leaf() {
		if len(n.keys) == 0 {
			var zero V
			return "", zero, false
		}
		return n.keys[len(n.keys)-1], n.vals[len(n.vals)-1], true
	}
	if k, v, ok := n.children[len(n.children)-1].maxEntry(); ok {
		return k, v, true
	}
	if len(n.keys) > 0 {
		return n.keys[len(n.keys)-1], n.vals[len(n.vals)-1], true
	}
	var zero V
	return "", zero, false
}

// minEntry is maxEntry's mirror: the smallest key in the subtree.
func (n *btreeNode[V]) minEntry() (string, V, bool) {
	if n.leaf() {
		if len(n.keys) == 0 {
			var zero V
			return "", zero, false
		}
		return n.keys[0], n.vals[0], true
	}
	if k, v, ok := n.children[0].minEntry(); ok {
		return k, v, true
	}
	if len(n.keys) > 0 {
		return n.keys[0], n.vals[0], true
	}
	var zero V
	return "", zero, false
}

// AscendRange visits keys in [lo, hi) in order; hi == "" means unbounded.
// The callback returns false to stop early. AscendRange reports whether the
// scan ran to completion.
func (t *btree[V]) AscendRange(lo, hi string, fn func(key string, val V) bool) bool {
	return t.root.ascend(lo, hi, fn)
}

// Ascend visits all keys in order.
func (t *btree[V]) Ascend(fn func(key string, val V) bool) bool {
	return t.root.ascend("", "", fn)
}

func (n *btreeNode[V]) ascend(lo, hi string, fn func(string, V) bool) bool {
	start := 0
	if lo != "" {
		start = sort.SearchStrings(n.keys, lo)
	}
	for i := start; i < len(n.keys); i++ {
		if !n.leaf() {
			if !n.children[i].ascend(lo, hi, fn) {
				return false
			}
		}
		if hi != "" && n.keys[i] >= hi {
			return true
		}
		if n.keys[i] >= lo {
			if !fn(n.keys[i], n.vals[i]) {
				return false
			}
		}
	}
	if !n.leaf() {
		return n.children[len(n.keys)].ascend(lo, hi, fn)
	}
	return true
}
