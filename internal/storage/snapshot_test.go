package storage

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/schema"
	"repro/internal/value"
)

func snapshotFixture(t *testing.T) *Store {
	t.Helper()
	s := NewStore()
	users, err := schema.NewTable("Users", []schema.Column{
		{Name: "id", Type: value.KindInt},
		{Name: "name", Type: value.KindText},
		{Name: "score", Type: value.KindFloat},
	}, []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CreateTable(users, false); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateIndex(&schema.Index{Name: "users_name", Table: "Users", Columns: []int{1}}); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateIndex(&schema.Index{Name: "users_uniq", Table: "Users", Columns: []int{1, 2}, Unique: true}); err != nil {
		t.Fatal(err)
	}
	rows := []value.Row{
		{value.Int(1), value.Text("alice"), value.Float(1.5)},
		{value.Int(2), value.Text("bob"), value.Null},
		{value.Int(3), value.Text("carol"), value.Float(-2)},
	}
	for _, row := range rows {
		if _, err := s.Commit(CommitRequest{TxnID: s.NextTxnID(), Changes: []Change{{
			Table: "Users", Key: users.EncodePrimaryKey(row), Op: OpInsert, After: row,
		}}}); err != nil {
			t.Fatal(err)
		}
	}
	// A delete so the snapshot must skip tombstones.
	dead := rows[1]
	if _, err := s.Commit(CommitRequest{TxnID: s.NextTxnID(), Changes: []Change{{
		Table: "Users", Key: users.EncodePrimaryKey(dead), Op: OpDelete, Before: dead,
	}}}); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := snapshotFixture(t)
	data, seq := s.EncodeSnapshot()
	if seq != s.CurrentSeq() {
		t.Fatalf("snapshot seq %d != store seq %d", seq, s.CurrentSeq())
	}
	got, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.CurrentSeq() != seq {
		t.Errorf("decoded seq = %d, want %d", got.CurrentSeq(), seq)
	}
	if got.RowCount("Users", got.CurrentSeq()) != 2 {
		t.Errorf("decoded rows = %d, want 2 (tombstone must not survive)", got.RowCount("Users", got.CurrentSeq()))
	}
	// Schema and indexes round-trip.
	tbl := got.Table("users")
	if tbl == nil || tbl.Name != "Users" || len(tbl.Columns) != 3 {
		t.Fatalf("decoded table = %+v", tbl)
	}
	ixs := got.Indexes("Users")
	if len(ixs) != 2 || ixs[0].Name != "users_name" || !ixs[1].Unique {
		t.Fatalf("decoded indexes = %+v", ixs)
	}
	// Index contents were rebuilt from rows.
	var postings []string
	if err := got.IndexScanRange("Users", "users_name", "", "", got.CurrentSeq(), func(_, pk string) bool {
		postings = append(postings, pk)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(postings) != 2 {
		t.Errorf("rebuilt index has %d postings, want 2", len(postings))
	}
	// Transaction IDs continue after the snapshot's last issued ID.
	if id := got.NextTxnID(); id <= 4 {
		t.Errorf("NextTxnID after restore = %d, want > 4", id)
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	a, _ := snapshotFixture(t).EncodeSnapshot()
	b, _ := snapshotFixture(t).EncodeSnapshot()
	if string(a) != string(b) {
		t.Fatal("same committed state encoded to different snapshot bytes")
	}
	// Decode → encode is also stable.
	dec, err := DecodeSnapshot(a)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := dec.EncodeSnapshot()
	if string(a) != string(c) {
		t.Fatal("decode/encode round trip changed the snapshot bytes")
	}
}

func TestSnapshotCorruptionDetected(t *testing.T) {
	data, _ := snapshotFixture(t).EncodeSnapshot()
	for _, cut := range []int{0, 4, len(data) / 2, len(data) - 1} {
		if _, err := DecodeSnapshot(data[:cut]); !errors.Is(err, ErrSnapshotCorrupt) {
			t.Errorf("truncation at %d: err = %v, want ErrSnapshotCorrupt", cut, err)
		}
	}
	for _, flip := range []int{8, len(data) / 3, len(data) - 2} {
		bad := append([]byte(nil), data...)
		bad[flip] ^= 0xFF
		if _, err := DecodeSnapshot(bad); !errors.Is(err, ErrSnapshotCorrupt) {
			t.Errorf("flip at %d: err = %v, want ErrSnapshotCorrupt", flip, err)
		}
	}
}

func TestSnapshotRestoreAcceptsWALTail(t *testing.T) {
	s := snapshotFixture(t)
	data, seq := s.EncodeSnapshot()
	got, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	// The restored store must accept the next commit in sequence — the WAL
	// tail a recovery replays on top of the snapshot.
	row := value.Row{value.Int(9), value.Text("dave"), value.Float(0)}
	tbl := got.Table("Users")
	if err := got.ApplyCommitted(CommitRecord{Seq: seq + 1, TxnID: 100, Changes: []Change{{
		Table: "Users", Key: tbl.EncodePrimaryKey(row), Op: OpInsert, After: row,
	}}}); err != nil {
		t.Fatal(err)
	}
	if got.RowCount("Users", got.CurrentSeq()) != 3 {
		t.Errorf("rows after tail replay = %d", got.RowCount("Users", got.CurrentSeq()))
	}
	// And fresh commits (with CDC log indexing over the restored logBase).
	row2 := value.Row{value.Int(10), value.Text("eve"), value.Float(1)}
	if _, err := got.Commit(CommitRequest{TxnID: got.NextTxnID(), Snapshot: got.CurrentSeq(), Changes: []Change{{
		Table: "Users", Key: tbl.EncodePrimaryKey(row2), Op: OpInsert, After: row2,
	}}}); err != nil {
		t.Fatal(err)
	}
	recs := got.ChangesBetween(seq, got.CurrentSeq())
	if len(recs) != 2 {
		t.Errorf("ChangesBetween after restore = %d records, want 2", len(recs))
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.snap")
	s := snapshotFixture(t)
	data, seq := s.EncodeSnapshot()
	if err := WriteSnapshotFile(path, data); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.CurrentSeq() != seq {
		t.Errorf("loaded seq = %d, want %d", got.CurrentSeq(), seq)
	}
}

func TestSnapshotFileIsCompressed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.snap")
	s := snapshotFixture(t)
	data, _ := s.EncodeSnapshot()
	if err := WriteSnapshotFile(path, data); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) == 0 || raw[0] != snapFormatGzip {
		t.Fatalf("snapshot file does not start with the gzip format byte: % x", raw[:8])
	}
	// The file form and the raw form decode to the same bytes.
	back, err := DecompressSnapshot(raw)
	if err != nil {
		t.Fatal(err)
	}
	if string(back) != string(data) {
		t.Fatal("decompressed snapshot differs from the encoded state")
	}
}

func TestLoadSnapshotFileReadsLegacyUncompressed(t *testing.T) {
	// Snapshot files written before compression existed are raw
	// EncodeSnapshot bytes starting with the magic; they must keep loading.
	path := filepath.Join(t.TempDir(), "legacy.snap")
	s := snapshotFixture(t)
	data, seq := s.EncodeSnapshot()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSnapshotFile(path)
	if err != nil {
		t.Fatalf("legacy snapshot: %v", err)
	}
	if got.CurrentSeq() != seq {
		t.Errorf("legacy loaded seq = %d, want %d", got.CurrentSeq(), seq)
	}
	if diff := len(got.Tables()) - len(s.Tables()); diff != 0 {
		t.Errorf("legacy loaded %d tables, want %d", len(got.Tables()), len(s.Tables()))
	}
}

func TestDecompressSnapshotRejectsGarbage(t *testing.T) {
	if _, err := DecompressSnapshot(nil); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := DecompressSnapshot([]byte{snapFormatGzip, 0xde, 0xad}); err == nil {
		t.Fatal("truncated gzip accepted")
	}
}

func TestCheckpointTail(t *testing.T) {
	s := snapshotFixture(t) // 4 commits
	var tail []CommitRecord
	if err := s.CheckpointTail(2, func(recs []CommitRecord) error {
		tail = recs
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(tail) != 2 || tail[0].Seq != 3 || tail[1].Seq != 4 {
		t.Fatalf("tail after seq 2 = %+v", tail)
	}
	// A truncated CDC log that no longer reaches the snapshot seq must
	// refuse (the caller would otherwise rotate away unpreserved records).
	s.TruncateLog(3)
	if err := s.CheckpointTail(2, func([]CommitRecord) error { return nil }); err == nil {
		t.Fatal("CheckpointTail over a truncated log should fail")
	}
	if err := s.CheckpointTail(4, func(recs []CommitRecord) error {
		if len(recs) != 0 {
			t.Errorf("tail after current seq = %+v", recs)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
