package db

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/wal"
)

func memDB(t *testing.T) *DB {
	t.Helper()
	d := MustOpenMemory()
	t.Cleanup(func() { d.Close() })
	return d
}

func TestAutocommitExecAndQuery(t *testing.T) {
	d := memDB(t)
	if _, err := d.Exec(`CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Exec(`INSERT INTO t VALUES (1, 'a'), (2, 'b')`); err != nil {
		t.Fatal(err)
	}
	res, err := d.Query(`SELECT v FROM t ORDER BY id`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].AsText() != "a" {
		t.Errorf("query = %+v", res.Rows)
	}
}

func TestExecScript(t *testing.T) {
	d := memDB(t)
	err := d.ExecScript(`
		CREATE TABLE a (id INTEGER PRIMARY KEY);
		CREATE TABLE b (id INTEGER PRIMARY KEY, aid INTEGER);
		INSERT INTO a VALUES (1);
		INSERT INTO b VALUES (10, 1);
	`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Query(`SELECT COUNT(*) FROM a JOIN b ON a.id = b.aid`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].AsInt() != 1 {
		t.Errorf("script result = %v", res.Rows)
	}
	if err := d.ExecScript(`NOT SQL`); err == nil {
		t.Error("bad script should fail")
	}
}

func TestExplicitTransaction(t *testing.T) {
	d := memDB(t)
	if _, err := d.Exec(`CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)`); err != nil {
		t.Fatal(err)
	}
	tx := d.Begin()
	if _, err := tx.Exec(`INSERT INTO t VALUES (1, 10)`); err != nil {
		t.Fatal(err)
	}
	res, err := tx.Query(`SELECT v FROM t WHERE id = 1`)
	if err != nil || res.Rows[0][0].AsInt() != 10 {
		t.Fatalf("in-txn read: %v %v", res, err)
	}
	// Not yet visible outside.
	out, _ := d.Query(`SELECT COUNT(*) FROM t`)
	if out.Rows[0][0].AsInt() != 0 {
		t.Error("uncommitted write visible")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	out, _ = d.Query(`SELECT COUNT(*) FROM t`)
	if out.Rows[0][0].AsInt() != 1 {
		t.Error("commit not visible")
	}
}

func TestRollback(t *testing.T) {
	d := memDB(t)
	d.Exec(`CREATE TABLE t (id INTEGER PRIMARY KEY)`)
	tx := d.Begin()
	if _, err := tx.Exec(`INSERT INTO t VALUES (1)`); err != nil {
		t.Fatal(err)
	}
	tx.Rollback()
	out, _ := d.Query(`SELECT COUNT(*) FROM t`)
	if out.Rows[0][0].AsInt() != 0 {
		t.Error("rollback leaked")
	}
}

func TestDDLInsideTxnRejected(t *testing.T) {
	d := memDB(t)
	tx := d.Begin()
	defer tx.Rollback()
	if _, err := tx.Exec(`CREATE TABLE t (id INTEGER PRIMARY KEY)`); err == nil {
		t.Error("DDL inside txn should fail")
	}
}

func TestTransactionControlViaSQLRejected(t *testing.T) {
	d := memDB(t)
	for _, q := range []string{"BEGIN", "COMMIT", "ROLLBACK"} {
		if _, err := d.Exec(q); err == nil {
			t.Errorf("%s via Exec should fail", q)
		}
	}
}

func TestBadArgsAndQueries(t *testing.T) {
	d := memDB(t)
	d.Exec(`CREATE TABLE t (id INTEGER PRIMARY KEY)`)
	if _, err := d.Exec(`INSERT INTO t VALUES (?)`, struct{}{}); err == nil {
		t.Error("unsupported arg type should fail")
	}
	if _, err := d.Exec(`SELECT FROM WHERE`); err == nil {
		t.Error("parse error should surface")
	}
	if _, err := d.Exec(`SELECT * FROM missing`); err == nil {
		t.Error("unknown table should surface")
	}
}

func TestStatementCache(t *testing.T) {
	d := memDB(t)
	d.Exec(`CREATE TABLE t (id INTEGER PRIMARY KEY)`)
	for i := 0; i < 10; i++ {
		if _, err := d.Exec(`INSERT INTO t VALUES (?)`, i); err != nil {
			t.Fatal(err)
		}
	}
	// Statements and plans share one cache: two distinct query texts.
	if n := d.plans.size(); n != 2 { // CREATE + INSERT
		t.Errorf("stmt/plan cache size = %d, want 2", n)
	}
}

func TestConcurrentAutocommitRetries(t *testing.T) {
	d := memDB(t)
	d.Exec(`CREATE TABLE c (id INTEGER PRIMARY KEY, n INTEGER)`)
	d.Exec(`INSERT INTO c VALUES (1, 0)`)
	const workers, each = 8, 10
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := d.Exec(`UPDATE c SET n = n + 1 WHERE id = 1`); err != nil {
					t.Errorf("update: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	res, _ := d.Query(`SELECT n FROM c WHERE id = 1`)
	if got := res.Rows[0][0].AsInt(); got != workers*each {
		t.Errorf("counter = %d, want %d", got, workers*each)
	}
}

func TestRunTxRetriesConflicts(t *testing.T) {
	d := memDB(t)
	d.Exec(`CREATE TABLE c (id INTEGER PRIMARY KEY, n INTEGER)`)
	d.Exec(`INSERT INTO c VALUES (1, 0)`)
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				err := d.RunTx(TxMeta{Handler: "inc"}, func(tx *Tx) error {
					res, err := tx.Query(`SELECT n FROM c WHERE id = 1`)
					if err != nil {
						return err
					}
					_, err = tx.Exec(`UPDATE c SET n = ? WHERE id = 1`, res.Rows[0][0].AsInt()+1)
					return err
				})
				if err != nil {
					t.Errorf("RunTx: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	res, _ := d.Query(`SELECT n FROM c WHERE id = 1`)
	if got := res.Rows[0][0].AsInt(); got != 30 {
		t.Errorf("counter = %d, want 30", got)
	}
}

func TestHooksFireWithTraces(t *testing.T) {
	d := memDB(t)
	d.Exec(`CREATE TABLE forum_sub (userId TEXT, forum TEXT, PRIMARY KEY (userId, forum))`)
	var mu sync.Mutex
	var commits []TxnTrace
	var aborts []TxnTrace
	d.SetHooks(Hooks{
		OnCommit: func(tr TxnTrace) { mu.Lock(); commits = append(commits, tr); mu.Unlock() },
		OnAbort:  func(tr TxnTrace) { mu.Lock(); aborts = append(aborts, tr); mu.Unlock() },
	})

	meta := TxMeta{ReqID: "R1", Handler: "subscribeUser", Func: "isSubscribed"}
	tx := d.BeginMeta(meta)
	res, err := tx.Query(`SELECT * FROM forum_sub WHERE userId = 'U1' AND forum = 'F2'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatal("table should be empty")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	tx2 := d.BeginMeta(TxMeta{ReqID: "R1", Handler: "subscribeUser", Func: "DB.insert"})
	if _, err := tx2.Exec(`INSERT INTO forum_sub VALUES ('U1', 'F2')`); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}

	tx3 := d.Begin()
	tx3.Rollback()

	if len(commits) != 2 {
		t.Fatalf("commits = %d", len(commits))
	}
	first := commits[0]
	if first.Meta != meta || !first.Committed || first.TxnID == 0 {
		t.Errorf("first trace = %+v", first)
	}
	// The empty read must be traced as a no-match marker (nil Row).
	if len(first.Stmts) != 1 || len(first.Stmts[0].Reads) != 1 {
		t.Fatalf("first stmts = %+v", first.Stmts)
	}
	if first.Stmts[0].Reads[0].Row != nil || !strings.EqualFold(first.Stmts[0].Reads[0].Table, "forum_sub") {
		t.Errorf("no-match read marker = %+v", first.Stmts[0].Reads[0])
	}
	if len(aborts) != 1 {
		t.Errorf("aborts = %d", len(aborts))
	}
	if first.End.Before(first.Start) {
		t.Error("trace timestamps out of order")
	}
}

func TestReadProvenanceRowsCaptured(t *testing.T) {
	d := memDB(t)
	d.ExecScript(`
		CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT);
		INSERT INTO t VALUES (1, 'x'), (2, 'y');
	`)
	var got []ReadEvent
	d.SetHooks(Hooks{OnCommit: func(tr TxnTrace) {
		for _, s := range tr.Stmts {
			got = append(got, s.Reads...)
		}
	}})
	tx := d.Begin()
	if _, err := tx.Query(`SELECT * FROM t WHERE id = 2`); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Row == nil || got[0].Row[1].AsText() != "y" {
		t.Errorf("read events = %+v", got)
	}
}

func TestDiskModePersistenceAndRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trod.wal")
	d, err := Open(Options{Mode: Disk, Path: path, Sync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.ExecScript(`
		CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT);
		CREATE INDEX by_v ON t (v);
		INSERT INTO t VALUES (1, 'hello');
		INSERT INTO t VALUES (2, 'world');
		UPDATE t SET v = 'HELLO' WHERE id = 1;
		DELETE FROM t WHERE id = 2;
	`); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := Open(Options{Mode: Disk, Path: path, Sync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	res, err := d2.Query(`SELECT id, v FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][1].AsText() != "HELLO" {
		t.Errorf("recovered = %+v", res.Rows)
	}
	// Index survived recovery (used for equality scan).
	res, err = d2.Query(`SELECT id FROM t WHERE v = 'HELLO'`)
	if err != nil || len(res.Rows) != 1 {
		t.Errorf("index after recovery: %v %v", res, err)
	}
	// And the recovered DB accepts new writes that persist again.
	if _, err := d2.Exec(`INSERT INTO t VALUES (3, 'new')`); err != nil {
		t.Fatal(err)
	}
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
	d3, err := Open(Options{Mode: Disk, Path: path, Sync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer d3.Close()
	res, _ = d3.Query(`SELECT COUNT(*) FROM t`)
	if res.Rows[0][0].AsInt() != 2 {
		t.Errorf("second recovery count = %v", res.Rows)
	}
}

func TestDiskModeRequiresPath(t *testing.T) {
	if _, err := Open(Options{Mode: Disk}); err == nil {
		t.Error("Disk without path should fail")
	}
}

func TestBeginAtTimeTravel(t *testing.T) {
	d := memDB(t)
	d.Exec(`CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)`)
	d.Exec(`INSERT INTO t VALUES (1, 10)`)
	seq := d.Store().CurrentSeq()
	d.Exec(`UPDATE t SET v = 20 WHERE id = 1`)

	tx, err := d.BeginAt(seq)
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Rollback()
	res, err := tx.Query(`SELECT v FROM t WHERE id = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].AsInt() != 10 {
		t.Errorf("time travel read = %v", res.Rows)
	}
}

func TestTableFromASTValidation(t *testing.T) {
	if _, err := Open(Options{Mode: Memory}); err != nil {
		t.Fatal(err)
	}
	d := memDB(t)
	// Both inline and table-level PK.
	_, err := d.Exec(`CREATE TABLE bad (id INTEGER PRIMARY KEY, x INTEGER, PRIMARY KEY (x))`)
	if err == nil {
		t.Error("double PK spec should fail")
	}
	// No PK at all.
	if _, err := d.Exec(`CREATE TABLE bad2 (id INTEGER)`); err == nil {
		t.Error("missing PK should fail")
	}
}

func TestErrorsAreErrorsNotPanics(t *testing.T) {
	d := memDB(t)
	d.Exec(`CREATE TABLE t (id INTEGER PRIMARY KEY)`)
	bad := []string{
		`INSERT INTO t VALUES (1, 2, 3)`,
		`UPDATE t SET id = 'text' WHERE id = 1`,
		`SELECT 1 / 0 FROM t`,
	}
	d.Exec(`INSERT INTO t VALUES (1)`)
	for _, q := range bad {
		if _, err := d.Exec(q); err == nil {
			t.Errorf("%q should fail", q)
		}
	}
}

func TestConflictErrorTypePreserved(t *testing.T) {
	d := memDB(t)
	d.Exec(`CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)`)
	d.Exec(`INSERT INTO t VALUES (1, 0)`)
	tx1 := d.Begin()
	tx2 := d.Begin()
	if _, err := tx1.Exec(`UPDATE t SET v = 1 WHERE id = 1`); err != nil {
		t.Fatal(err)
	}
	if _, err := tx2.Exec(`UPDATE t SET v = 2 WHERE id = 1`); err != nil {
		t.Fatal(err)
	}
	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}
	err := tx2.Commit()
	if err == nil {
		t.Fatal("second commit should conflict")
	}
	var conflict interface{ Error() string }
	if !errors.As(err, &conflict) {
		t.Errorf("conflict type lost: %v", err)
	}
	if !strings.Contains(err.Error(), "conflict") {
		t.Errorf("error text = %q", err)
	}
}

func TestManyTablesAndJoinsThroughFacade(t *testing.T) {
	d := memDB(t)
	if err := d.ExecScript(`
		CREATE TABLE Executions (TxnId INTEGER PRIMARY KEY, Timestamp INTEGER, HandlerName TEXT, ReqId TEXT);
		CREATE TABLE ForumEvents (EvId INTEGER PRIMARY KEY, TxnId INTEGER, Type TEXT, UserId TEXT, Forum TEXT);
		INSERT INTO Executions VALUES (1, 100, 'subscribeUser', 'R1'), (2, 101, 'subscribeUser', 'R2'),
			(3, 102, 'subscribeUser', 'R2'), (4, 103, 'subscribeUser', 'R1');
		INSERT INTO ForumEvents VALUES (1, 3, 'Insert', 'U1', 'F2'), (2, 4, 'Insert', 'U1', 'F2');
	`); err != nil {
		t.Fatal(err)
	}
	// The paper's §3.3 debugging query, verbatim shape.
	res, err := d.Query(`SELECT Timestamp, ReqId, HandlerName
		FROM Executions as E, ForumEvents as F
		ON E.TxnId = F.TxnId
		WHERE F.UserId = 'U1' AND F.Forum = 'F2' AND F.Type = 'Insert'
		ORDER BY Timestamp ASC`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("debug query rows = %d", len(res.Rows))
	}
	if res.Rows[0][1].AsText() != "R2" || res.Rows[1][1].AsText() != "R1" {
		t.Errorf("debug query = %v %v", res.Rows[0], res.Rows[1])
	}
}

func fmtRows(res *Rows) string {
	var sb strings.Builder
	for _, r := range res.Rows {
		fmt.Fprintln(&sb, r)
	}
	return sb.String()
}
