package db

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/wal"
)

// TestGroupCommitConcurrentDurability: N goroutines commit concurrently
// under the per-commit sync policy. Every acknowledged commit must survive a
// crash (recovery from a byte-for-byte copy of the WAL taken after the
// workload), and the fsync count must stay below the commit count — proof
// that group commit actually batched concurrent committers instead of
// serialising one fsync per transaction. Run under -race in CI.
func TestGroupCommitConcurrentDurability(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "gc.wal")
	d, err := Open(Options{Mode: Disk, Path: path, Sync: wal.SyncEachCommit})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Exec(`CREATE TABLE kv (k TEXT PRIMARY KEY, v INTEGER)`); err != nil {
		t.Fatal(err)
	}
	// On tmpfs an fsync is nearly free, so the leader's batching window can
	// close before any follower arrives; model real disk latency so the
	// batching assertion is deterministic.
	d.Log().SetSyncDelay(200 * time.Microsecond)

	const goroutines = 8
	const perG = 30
	var wg sync.WaitGroup
	acked := make([][]string, goroutines)
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				key := fmt.Sprintf("g%d-%d", g, i)
				// Disjoint keys per goroutine: no OCC conflicts, so every
				// Exec acknowledges exactly one durable commit.
				if _, err := d.Exec(`INSERT INTO kv VALUES (?, ?)`, key, i); err != nil {
					errs <- fmt.Errorf("goroutine %d commit %d: %w", g, i, err)
					return
				}
				acked[g] = append(acked[g], key)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	totalCommits := uint64(goroutines*perG) + 1 // + the CREATE TABLE record
	st := d.WALStats()
	if st.Syncs >= totalCommits {
		t.Errorf("fsyncs = %d for %d durable records: batching never happened", st.Syncs, totalCommits)
	}
	t.Logf("group commit: %d records, %d fsyncs", totalCommits, st.Syncs)

	// Crash: copy the WAL bytes without closing, recover elsewhere.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	crashDir := filepath.Join(dir, "crash")
	if err := os.Mkdir(crashDir, 0o755); err != nil {
		t.Fatal(err)
	}
	crashPath := filepath.Join(crashDir, "gc.wal")
	if err := os.WriteFile(crashPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := Open(Options{Mode: Disk, Path: crashPath, Sync: wal.SyncNever})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer re.Close()
	for g := range acked {
		for _, key := range acked[g] {
			rows, err := re.Query(`SELECT v FROM kv WHERE k = ?`, key)
			if err != nil {
				t.Fatal(err)
			}
			if len(rows.Rows) != 1 {
				t.Fatalf("acknowledged commit %q lost in recovery", key)
			}
		}
	}
	d.Close()
}
