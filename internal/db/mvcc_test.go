package db

import (
	"errors"
	"path/filepath"
	"testing"

	"repro/internal/storage"
)

// TestBeginAtRejectsWrites is the time-travel write-hole regression: BeginAt
// used to hand out an ordinary read-write transaction whose snapshot
// predated the head, so a blind insert (no reads => empty read set => OCC
// validation vacuously passes) would commit on top of the present and
// silently rewrite history. Time-travel transactions are now declared
// read-only and refuse writes with a typed error.
func TestBeginAtRejectsWrites(t *testing.T) {
	d := memDB(t)
	if _, err := d.Exec(`CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)`); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Exec(`INSERT INTO t VALUES (1, 10)`); err != nil {
		t.Fatal(err)
	}
	seq := d.Store().CurrentSeq()
	if _, err := d.Exec(`UPDATE t SET v = 20 WHERE id = 1`); err != nil {
		t.Fatal(err)
	}

	tx, err := d.BeginAt(seq)
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Rollback()
	// The blind insert: touches no existing rows, so the old code's OCC
	// validation had nothing to conflict on.
	_, err = tx.Exec(`INSERT INTO t VALUES (99, 99)`)
	if !errors.Is(err, ErrReadOnlyTxn) {
		t.Fatalf("blind insert through BeginAt: err = %v, want ErrReadOnlyTxn", err)
	}
	for _, stmt := range []string{`UPDATE t SET v = 0 WHERE id = 1`, `DELETE FROM t WHERE id = 1`} {
		if _, err := tx.Exec(stmt); !errors.Is(err, ErrReadOnlyTxn) {
			t.Fatalf("%s through BeginAt: err = %v, want ErrReadOnlyTxn", stmt, err)
		}
	}
	// Reads still work at the requested snapshot.
	res, err := tx.Query(`SELECT v FROM t WHERE id = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].AsInt() != 10 {
		t.Fatalf("time-travel read = %v, want 10", res.Rows)
	}
	// And the present is untouched.
	res, _ = d.Query(`SELECT COUNT(*) FROM t`)
	if res.Rows[0][0].AsInt() != 1 {
		t.Fatalf("head row count = %v, want 1", res.Rows)
	}
}

// TestBeginReadOnlySnapshotIsolation: a declared read-only transaction holds
// a stable snapshot, never conflicts, and its Commit reports no commit
// sequence (there is nothing it committed).
func TestBeginReadOnlySnapshotIsolation(t *testing.T) {
	d := memDB(t)
	if _, err := d.Exec(`CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)`); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Exec(`INSERT INTO t VALUES (1, 10)`); err != nil {
		t.Fatal(err)
	}
	tx := d.BeginReadOnly()
	if !tx.inner.ReadOnly() {
		t.Fatal("BeginReadOnly transaction not marked read-only")
	}
	if _, err := d.Exec(`UPDATE t SET v = 20 WHERE id = 1`); err != nil {
		t.Fatal(err)
	}
	res, err := tx.Query(`SELECT v FROM t WHERE id = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].AsInt() != 10 {
		t.Fatalf("snapshot read = %v, want pre-update 10", res.Rows)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("read-only commit: %v", err)
	}
	// Satellite regression: the old empty-commit path reported commitSeq ==
	// snapshot, claiming a commit position the transaction never owned.
	if got := tx.inner.CommitSeq(); got != 0 {
		t.Fatalf("read-only CommitSeq = %d, want 0", got)
	}
}

// TestBeginAtBelowFloor: time travel below the vacuumed history floor fails
// loudly with the typed error, naming the floor.
func TestBeginAtBelowFloor(t *testing.T) {
	d, err := Open(Options{Mode: Memory, HistoryRetention: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	if _, err := d.Exec(`CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := d.Exec(`INSERT INTO t VALUES (?, ?)`, i, i); err != nil {
			t.Fatal(err)
		}
	}
	if st := d.Vacuum(); st.Runs != 1 {
		t.Fatalf("explicit Vacuum did not run: %+v", st)
	}
	floor := d.Store().HistoryRetainedFrom()
	if floor == 0 {
		t.Fatal("vacuum left the history floor at 0")
	}
	if _, err := d.BeginAt(floor - 1); !errors.Is(err, storage.ErrHistoryTruncated) {
		t.Fatalf("BeginAt below floor: err = %v, want ErrHistoryTruncated", err)
	}
	tx, err := d.BeginAt(floor)
	if err != nil {
		t.Fatalf("BeginAt at floor: %v", err)
	}
	tx.Rollback()
}

// TestCheckpointVacuumAndRestartFloor is the checkpointed-restart
// history-loss regression: a restart from a checkpoint snapshot only has
// single-version images, so its history floor is the checkpoint sequence —
// and the store must say so instead of serving empty pre-checkpoint reads.
func TestCheckpointVacuumAndRestartFloor(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.wal")
	d := openDisk(t, path, func(o *Options) { o.HistoryRetention = 4 })
	if _, err := d.Exec(`CREATE TABLE kv (id INTEGER PRIMARY KEY, v TEXT)`); err != nil {
		t.Fatal(err)
	}
	seedKV(t, d, 1, 20)
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// The checkpoint triggered a vacuum: floor = head - retention.
	head := d.Store().CurrentSeq()
	if got, want := d.Store().HistoryRetainedFrom(), head-4; got != want {
		t.Fatalf("post-checkpoint floor = %d, want %d", got, want)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	re := openDisk(t, path)
	defer re.Close()
	if !re.Recovery().SnapshotLoaded {
		t.Fatal("restart did not recover from the checkpoint snapshot")
	}
	// After restart the snapshot seq IS the floor: every pre-checkpoint
	// version lives only in the WAL's .old generation, not in memory.
	snapSeq := re.Recovery().SnapshotSeq
	if got := re.Store().HistoryRetainedFrom(); got != snapSeq {
		t.Fatalf("post-restart floor = %d, want snapshot seq %d", got, snapSeq)
	}
	if _, err := re.BeginAt(snapSeq - 1); !errors.Is(err, storage.ErrHistoryTruncated) {
		t.Fatalf("BeginAt below restart floor: err = %v, want ErrHistoryTruncated", err)
	}
	// At or above the floor, time travel still works and reads real data.
	tx, err := re.BeginAt(snapSeq)
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Rollback()
	res, err := tx.Query(`SELECT COUNT(*) FROM kv`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].AsInt() != 20 {
		t.Fatalf("time travel at restart floor sees %v rows, want 20", res.Rows)
	}
}

// TestHistoryRetentionBoundsResidency: sustained updates with retention
// configured keep version chains bounded (checkpoints fire the vacuum).
func TestHistoryRetentionBoundsResidency(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.wal")
	d := openDisk(t, path, func(o *Options) {
		o.HistoryRetention = 8
		o.CheckpointRecords = 32
	})
	defer d.Close()
	if _, err := d.Exec(`CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)`); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Exec(`INSERT INTO t VALUES (1, 0)`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if _, err := d.Exec(`UPDATE t SET v = ? WHERE id = 1`, i); err != nil {
			t.Fatal(err)
		}
	}
	totals := d.Store().VacuumTotals()
	if totals.Runs == 0 || totals.DroppedRowVersions == 0 {
		t.Fatalf("checkpoints never vacuumed: %+v", totals)
	}
	census := d.Store().VersionCensus()
	// 301 versions written to one row; the chain must stay near the
	// retention+checkpoint window, nowhere near the unbounded total.
	if census.MaxChainLength > 100 {
		t.Fatalf("version chain grew to %d despite retention: %+v", census.MaxChainLength, census)
	}
}

// TestAutoCommitSelectLeavesNoPins: the auto-commit SELECT path runs in a
// declared read-only transaction and must release its snapshot pin — a
// leaked pin would clamp every future vacuum horizon and defeat GC.
func TestAutoCommitSelectLeavesNoPins(t *testing.T) {
	d := memDB(t)
	if _, err := d.Exec(`CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)`); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Exec(`INSERT INTO t VALUES (1, 1)`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := d.Query(`SELECT * FROM t`); err != nil {
			t.Fatal(err)
		}
		if _, err := d.Query(`SELECT bogus FROM t`); err == nil {
			t.Fatal("bad column should error")
		}
	}
	if pin, ok := d.Store().OldestPin(); ok {
		t.Fatalf("auto-commit SELECTs leaked a snapshot pin at seq %d", pin)
	}
}
