package db

import (
	"strings"
	"testing"
)

// TestIntraTxnUniqueViolationRejected is the issue's end-to-end repro: one
// transaction inserting two rows with the same unique-indexed value used to
// commit silently, leaving the index and the table disagreeing.
func TestIntraTxnUniqueViolationRejected(t *testing.T) {
	d := memDB(t)
	if err := d.ExecScript(`
		CREATE TABLE users (id INTEGER PRIMARY KEY, email TEXT);
		CREATE UNIQUE INDEX ux ON users (email);
	`); err != nil {
		t.Fatal(err)
	}
	err := d.RunTx(TxMeta{}, func(tx *Tx) error {
		if _, err := tx.Exec(`INSERT INTO users VALUES (1, 'dup@example.com')`); err != nil {
			return err
		}
		_, err := tx.Exec(`INSERT INTO users VALUES (2, 'dup@example.com')`)
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "unique") {
		t.Fatalf("intra-transaction duplicate must fail at commit with a unique violation, got %v", err)
	}
	// The table must be untouched, and — crucially — the index path and the
	// full-scan path must agree on what exists.
	viaIndex, err := d.Query(`SELECT id FROM users WHERE email = 'dup@example.com'`)
	if err != nil {
		t.Fatal(err)
	}
	viaScan, err := d.Query(`SELECT id FROM users WHERE email || '' = 'dup@example.com'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(viaIndex.Rows) != 0 || len(viaScan.Rows) != 0 {
		t.Errorf("rejected txn left rows behind: index=%d scan=%d", len(viaIndex.Rows), len(viaScan.Rows))
	}
}

// TestDeleteReinsertUniqueKeySameTxn: freeing a unique key and re-claiming it
// inside one transaction is legal and used to be wrongly rejected. Both pk
// orderings matter: txn.PendingChanges sorts changes by primary key, and the
// claiming row sorting *before* the freed one used to leave a tombstone on
// top of the new index posting (index scan and full scan then disagreed).
func TestDeleteReinsertUniqueKeySameTxn(t *testing.T) {
	for name, ids := range map[string][2]int64{
		"delete-sorts-first": {1, 2}, // delete id 1, insert id 2
		"insert-sorts-first": {5, 2}, // delete id 5, insert id 2
	} {
		t.Run(name, func(t *testing.T) {
			d := memDB(t)
			if err := d.ExecScript(`
				CREATE TABLE users (id INTEGER PRIMARY KEY, email TEXT);
				CREATE UNIQUE INDEX ux ON users (email);
			`); err != nil {
				t.Fatal(err)
			}
			if _, err := d.Exec(`INSERT INTO users VALUES (?, 'a@example.com')`, ids[0]); err != nil {
				t.Fatal(err)
			}
			if err := d.RunTx(TxMeta{}, func(tx *Tx) error {
				if _, err := tx.Exec(`DELETE FROM users WHERE id = ?`, ids[0]); err != nil {
					return err
				}
				_, err := tx.Exec(`INSERT INTO users VALUES (?, 'a@example.com')`, ids[1])
				return err
			}); err != nil {
				t.Fatalf("delete+reinsert of a unique key in one txn must commit: %v", err)
			}
			viaIndex, err := d.Query(`SELECT id FROM users WHERE email = 'a@example.com'`)
			if err != nil {
				t.Fatal(err)
			}
			viaScan, err := d.Query(`SELECT id FROM users WHERE email || '' = 'a@example.com'`)
			if err != nil {
				t.Fatal(err)
			}
			if len(viaIndex.Rows) != 1 || viaIndex.Rows[0][0].AsInt() != ids[1] {
				t.Errorf("index lookup after re-claim = %+v, want id %d", viaIndex.Rows, ids[1])
			}
			if len(viaScan.Rows) != 1 || viaScan.Rows[0][0].AsInt() != ids[1] {
				t.Errorf("full scan after re-claim = %+v, want id %d", viaScan.Rows, ids[1])
			}
		})
	}
}

// TestUpdateMoveUniqueKeySameTxn: UPDATE that changes the unique value plus
// an INSERT re-using the old value within one transaction.
func TestUpdateMoveUniqueKeySameTxn(t *testing.T) {
	d := memDB(t)
	if err := d.ExecScript(`
		CREATE TABLE users (id INTEGER PRIMARY KEY, email TEXT);
		CREATE UNIQUE INDEX ux ON users (email);
		INSERT INTO users VALUES (1, 'old@example.com');
	`); err != nil {
		t.Fatal(err)
	}
	if err := d.RunTx(TxMeta{}, func(tx *Tx) error {
		if _, err := tx.Exec(`UPDATE users SET email = 'new@example.com' WHERE id = 1`); err != nil {
			return err
		}
		_, err := tx.Exec(`INSERT INTO users VALUES (2, 'old@example.com')`)
		return err
	}); err != nil {
		t.Fatalf("re-using an updated-away unique value in one txn must commit: %v", err)
	}
	for email, want := range map[string]int64{"new@example.com": 1, "old@example.com": 2} {
		res, err := d.Query(`SELECT id FROM users WHERE email = ?`, email)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 || res.Rows[0][0].AsInt() != want {
			t.Errorf("email %s -> %+v, want id %d", email, res.Rows, want)
		}
	}
}
