package db

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestInteractiveTxnDeadlineAbort pins the session-transaction contract the
// network front end depends on: a transaction abandoned past its deadline is
// rolled back by the watcher, its buffered writes never commit, later
// operations (and Commit) fail with ErrTxnExpired, and the onExpire hook
// fires exactly once.
func TestInteractiveTxnDeadlineAbort(t *testing.T) {
	d := MustOpenMemory()
	defer d.Close()
	if err := d.ExecScript(`CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)`); err != nil {
		t.Fatal(err)
	}

	var expired atomic.Int64
	tx := d.BeginInteractive(TxMeta{ReqID: "S1"}, 20*time.Millisecond, func() { expired.Add(1) })
	if _, err := tx.Exec(`INSERT INTO t VALUES (1, 'never')`); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(2 * time.Second)
	for expired.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if expired.Load() != 1 {
		t.Fatalf("onExpire fired %d times, want 1", expired.Load())
	}
	if _, err := tx.Exec(`INSERT INTO t VALUES (2, 'late')`); !errors.Is(err, ErrTxnExpired) {
		t.Fatalf("Exec after deadline = %v, want ErrTxnExpired", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxnExpired) {
		t.Fatalf("Commit after deadline = %v, want ErrTxnExpired", err)
	}
	tx.Rollback() // must be a harmless no-op

	res, err := d.Query(`SELECT COUNT(*) FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].AsInt(); got != 0 {
		t.Fatalf("expired transaction leaked %d rows", got)
	}
}

// TestInteractiveTxnCommitBeforeDeadline asserts a prompt commit wins the
// race: the commit lands, the watcher never aborts, onExpire never fires.
func TestInteractiveTxnCommitBeforeDeadline(t *testing.T) {
	d := MustOpenMemory()
	defer d.Close()
	if err := d.ExecScript(`CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)`); err != nil {
		t.Fatal(err)
	}

	var expired atomic.Int64
	tx := d.BeginInteractive(TxMeta{}, time.Hour, func() { expired.Add(1) })
	if _, err := tx.Exec(`INSERT INTO t VALUES (1, 'kept')`); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	res, err := d.Query(`SELECT v FROM t WHERE id = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].AsText() != "kept" {
		t.Fatalf("committed row missing: %+v", res.Rows)
	}
	if expired.Load() != 0 {
		t.Fatal("onExpire fired for a committed transaction")
	}
}

// TestInteractiveTxnZeroTimeout asserts timeout <= 0 disables the watcher:
// the handle behaves like a plain transaction.
func TestInteractiveTxnZeroTimeout(t *testing.T) {
	d := MustOpenMemory()
	defer d.Close()
	if err := d.ExecScript(`CREATE TABLE t (id INTEGER PRIMARY KEY)`); err != nil {
		t.Fatal(err)
	}
	tx := d.BeginInteractive(TxMeta{}, 0, nil)
	if tx.guard != nil {
		t.Fatal("zero timeout must not install a deadline watcher")
	}
	if _, err := tx.Exec(`INSERT INTO t VALUES (1)`); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}
