package db

import (
	"testing"

	"repro/internal/sqlexec"
)

// TestPlanCacheHits asserts that repeated execution of the same query text
// reuses the compiled plan: one miss (the compilation), then only hits.
func TestPlanCacheHits(t *testing.T) {
	d := MustOpenMemory()
	defer d.Close()
	if err := d.ExecScript(`CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Exec(`INSERT INTO t (id, v) VALUES (?, ?)`, 1, "a"); err != nil {
		t.Fatal(err)
	}

	base := d.PlanCacheStats()
	const q = `SELECT v FROM t WHERE id = ?`
	for i := 0; i < 3; i++ {
		res, err := d.Query(q, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 || res.Rows[0][0].AsText() != "a" {
			t.Fatalf("iteration %d: unexpected result %+v", i, res.Rows)
		}
	}
	st := d.PlanCacheStats()
	if got := st.Misses - base.Misses; got != 1 {
		t.Fatalf("want exactly 1 plan-cache miss (the compile), got %d", got)
	}
	if got := st.Hits - base.Hits; got != 2 {
		t.Fatalf("want 2 plan-cache hits, got %d", got)
	}

	// The same query text through an explicit transaction also hits.
	tx := d.Begin()
	if _, err := tx.Query(q, 1); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	st2 := d.PlanCacheStats()
	if st2.Hits != st.Hits+1 {
		t.Fatalf("explicit-transaction execution should hit the plan cache: %+v -> %+v", st, st2)
	}
}

// TestPlanCacheInvalidationCreateIndex asserts that DDL issued between two
// executions of the same query text forces a re-plan (the new index becomes
// usable) and that results stay correct.
func TestPlanCacheInvalidationCreateIndex(t *testing.T) {
	d := MustOpenMemory()
	defer d.Close()
	if err := d.ExecScript(`CREATE TABLE t (id INTEGER PRIMARY KEY, k INTEGER, v TEXT)`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := d.Exec(`INSERT INTO t (id, k, v) VALUES (?, ?, ?)`, i, i%3, "x"); err != nil {
			t.Fatal(err)
		}
	}

	const q = `SELECT COUNT(*) FROM t WHERE k = ?`
	res1, err := d.Query(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	before := d.PlanCacheStats()

	if _, err := d.Exec(`CREATE INDEX t_k ON t (k)`); err != nil {
		t.Fatal(err)
	}

	res2, err := d.Query(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	after := d.PlanCacheStats()
	if after.Misses != before.Misses+1 {
		t.Fatalf("CREATE INDEX must invalidate the cached plan: misses %d -> %d", before.Misses, after.Misses)
	}
	if got, want := res2.Rows[0][0].AsInt(), res1.Rows[0][0].AsInt(); got != want {
		t.Fatalf("post-DDL result changed: %d != %d", got, want)
	}
	if got, want := res2.Rows[0][0].AsInt(), int64(10); got != want {
		t.Fatalf("COUNT = %d, want %d", got, want)
	}

	// The re-planned statement is cached again.
	if _, err := d.Query(q, 2); err != nil {
		t.Fatal(err)
	}
	final := d.PlanCacheStats()
	if final.Hits != after.Hits+1 {
		t.Fatalf("re-planned statement should be cached: hits %d -> %d", after.Hits, final.Hits)
	}
}

// TestPlanCacheInvalidationDropTable asserts that dropping and re-creating a
// table re-plans the same query text against the new catalog.
func TestPlanCacheInvalidationDropTable(t *testing.T) {
	d := MustOpenMemory()
	defer d.Close()
	if err := d.ExecScript(`CREATE TABLE t (id INTEGER PRIMARY KEY, k INTEGER)`); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Exec(`INSERT INTO t (id, k) VALUES (1, 10)`); err != nil {
		t.Fatal(err)
	}
	const q = `SELECT k FROM t WHERE id = ?`
	res, err := d.Query(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].AsInt() != 10 {
		t.Fatalf("want 10, got %v", res.Rows[0][0])
	}

	if _, err := d.Exec(`DROP TABLE t`); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Query(q, 1); err == nil {
		t.Fatal("query against dropped table must fail, stale plan was reused")
	}

	// Recreate with a different physical layout: the same query text must
	// re-plan (new column offsets) and return the new data.
	if err := d.ExecScript(`CREATE TABLE t (extra TEXT, id INTEGER PRIMARY KEY, k INTEGER)`); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Exec(`INSERT INTO t (extra, id, k) VALUES ('e', 1, 77)`); err != nil {
		t.Fatal(err)
	}
	res, err = d.Query(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].AsInt() != 77 {
		t.Fatalf("re-planned query against recreated table: want 77, got %v", res.Rows[0][0])
	}
}

// TestPlanCacheCapReset asserts the wholesale reset that bounds memory for
// generated query text — one reset path shared by statements and plans.
func TestPlanCacheCapReset(t *testing.T) {
	c := newPlanCache(2)
	c.put("a", nil, nil, 0)
	c.put("b", nil, nil, 0)
	if c.size() != 2 {
		t.Fatalf("size = %d, want 2", c.size())
	}
	c.put("c", nil, nil, 0) // over capacity: wholesale reset, then insert
	if got := c.resets.Load(); got != 1 {
		t.Fatalf("resets = %d, want 1", got)
	}
	if c.size() != 1 {
		t.Fatalf("size after reset = %d, want 1", c.size())
	}
	// Refreshing an existing key at capacity must not reset.
	c.put("c", nil, &sqlexec.Plan{}, 1)
	if got := c.resets.Load(); got != 1 {
		t.Fatalf("update of existing entry reset the cache")
	}
}

// TestFoldedStmtPlanCache pins the PR 1 follow-up: the parse cache and the
// plan cache are one map. A statement cached by a failed/unplanned execution
// path is completed in place by the first compile; DDL invalidates only the
// plan half (the statement survives, no re-parse); a parse-only put never
// clobbers a compiled plan.
func TestFoldedStmtPlanCache(t *testing.T) {
	d := MustOpenMemory()
	defer d.Close()
	if err := d.ExecScript(`CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)`); err != nil {
		t.Fatal(err)
	}

	const q = `SELECT v FROM t WHERE id = ?`
	if _, err := d.Query(q, 1); err != nil {
		t.Fatal(err)
	}
	size := d.PlanCacheStats().Size
	// Same text again: neither a second statement entry nor a second plan
	// entry appears anywhere — one map, one entry.
	if _, err := d.Query(q, 1); err != nil {
		t.Fatal(err)
	}
	if got := d.PlanCacheStats().Size; got != size {
		t.Fatalf("re-execution grew the cache: %d -> %d", size, got)
	}

	// DDL invalidates the plan (a miss) but reuses the cached statement: the
	// entry count stays flat while the plan is recompiled in place.
	before := d.PlanCacheStats()
	if _, err := d.Exec(`CREATE INDEX t_v ON t (v)`); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Query(q, 1); err != nil {
		t.Fatal(err)
	}
	after := d.PlanCacheStats()
	if after.Misses != before.Misses+1 {
		t.Fatalf("DDL must invalidate the plan: misses %d -> %d", before.Misses, after.Misses)
	}
	if after.Size != before.Size+1 { // +1 for the CREATE INDEX text itself
		t.Fatalf("re-plan must refresh in place: size %d -> %d", before.Size, after.Size)
	}
}
