// Package db is the database facade of the TROD stack: it wires the SQL
// front end, the executor, the transaction manager, the MVCC store, and the
// WAL into a single embeddable database with two modes — pure in-memory (the
// paper's VoltDB-like regime) and disk-backed with a write-ahead log (the
// Postgres-like regime).
//
// The facade is also where the TROD interposition layer hooks in: every
// transaction carries metadata (request ID, handler name, function name) and
// collects per-statement read provenance; a commit hook hands the complete
// transaction trace to the tracer (paper §3.4).
package db

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/schema"
	"repro/internal/span"
	"repro/internal/sqlexec"
	"repro/internal/sqlparse"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/value"
	"repro/internal/wal"
)

// Mode selects the storage regime.
type Mode uint8

// Storage modes.
const (
	// Memory keeps all state in RAM with no durability; commits are
	// microsecond-scale. This models the paper's in-memory DBMS (VoltDB).
	Memory Mode = iota
	// Disk appends every DDL statement and commit to a WAL and recovers on
	// open. This models the paper's on-disk DBMS (Postgres).
	Disk
)

// Options configures Open.
type Options struct {
	Mode Mode
	// Path is the WAL file path (Disk mode only).
	Path string
	// Sync selects the WAL durability policy (Disk mode only). The default,
	// wal.SyncEachCommit, makes every commit durable before acknowledging it;
	// concurrent committers share fsyncs through group commit.
	Sync wal.SyncPolicy
	// CheckpointBytes, when > 0, triggers an automatic checkpoint once the
	// WAL grows past this many bytes since the last checkpoint (Disk mode).
	// A checkpoint snapshots the full committed state next to the WAL
	// (<path>.snap.<seq>) and truncates the log, bounding recovery time.
	CheckpointBytes int64
	// CheckpointRecords, when > 0, triggers an automatic checkpoint once the
	// WAL holds this many records since the last checkpoint (Disk mode).
	CheckpointRecords int
	// CDCRetention, when > 0, releases in-memory CDC commit records after
	// each checkpoint, keeping only the most recent CDCRetention commits
	// behind the checkpoint sequence (Disk mode). Row version chains — and
	// therefore time travel — are unaffected; replay windows that consume
	// the commit log (ChangesBetween) must fit inside the retained suffix.
	// Active transactions always pin their snapshots, so OCC validation is
	// never truncated out from under a long-running transaction. 0 keeps the
	// full log in memory.
	CDCRetention int
	// HistoryRetention, when > 0, garbage-collects MVCC version history on
	// every checkpoint (and on explicit Vacuum calls): version chains are
	// compacted to the versions visible within the most recent
	// HistoryRetention commits, clamped to the oldest pinned snapshot so an
	// active reader never loses versions it can see. Time travel (BeginAt,
	// replay) below the resulting history floor fails with a typed error
	// (storage.ErrHistoryTruncated). 0 keeps all history resident — version
	// chains grow without bound under sustained updates.
	HistoryRetention int
	// PlanCacheCap bounds distinct cached query texts in the plan cache
	// (0 = the default cap). The multi-tenant adversarial workload sets it
	// low to reproduce hit-ratio collapse and wholesale-reset storms.
	PlanCacheCap int
}

// RecoveryInfo describes what the last Open did to rebuild state.
type RecoveryInfo struct {
	// SnapshotLoaded reports that recovery started from a checkpoint
	// snapshot instead of replaying the log from the beginning.
	SnapshotLoaded bool
	// SnapshotSeq is the commit sequence the loaded snapshot captured.
	SnapshotSeq uint64
	// SnapshotErr records why a checkpoint's snapshot was unusable (recovery
	// then fell back to full replay of the retained log generations).
	SnapshotErr string
	// TotalRecords is the number of intact WAL records scanned.
	TotalRecords int
	// TailRecords is the number of records replayed after the snapshot (the
	// WAL tail); without a snapshot it equals TotalRecords.
	TailRecords int
}

// Rows is a query result set.
type Rows = sqlexec.Result

// TxMeta is the TROD interposition metadata attached to a transaction by
// the application runtime: which request and handler issued it (paper
// Table 1's ReqId / HandlerName / Metadata columns).
type TxMeta struct {
	ReqID    string
	Handler  string
	Func     string
	Workflow string

	// Spans, when non-nil, is the request's span buffer: the facade records
	// parse/plan, execute, OCC-validate, WAL, and quorum stage spans into it
	// (all recording is nil-safe, so untraced transactions pay one nil check
	// per stage).
	Spans *span.Buf
}

// ReadEvent is one read-provenance record: a base-table row a statement
// read. A nil Row marks a statement that scanned the table but matched
// nothing (the paper logs these as Read rows with NULL data columns).
type ReadEvent struct {
	Table string
	Row   value.Row
}

// StmtTrace is the trace of one statement inside a transaction.
type StmtTrace struct {
	Query string
	Reads []ReadEvent
}

// TxnTrace is everything the interposition layer learns about one finished
// transaction. Write provenance is delivered separately through the store's
// CDC feed (matched by TxnID).
type TxnTrace struct {
	TxnID     uint64
	CommitSeq uint64
	Snapshot  uint64
	Meta      TxMeta
	Stmts     []StmtTrace
	Start     time.Time
	End       time.Time
	Committed bool
}

// Hooks are the interposition points. All hooks are optional. OnCommit runs
// after a successful commit; OnAbort after an abort or failed commit.
type Hooks struct {
	OnCommit func(TxnTrace)
	OnAbort  func(TxnTrace)
}

// DB is an embedded SQL database.
type DB struct {
	store *storage.Store
	log   *wal.Log
	mode  Mode
	hooks Hooks

	// walPath and sync mirror the Disk-mode options; recovery is what Open
	// did to rebuild state from walPath.
	walPath    string
	syncPolicy wal.SyncPolicy
	recovery   RecoveryInfo

	// durMu/durable map a commit sequence to the WAL LSN of its record: the
	// CDC hook stores it under the store's commit lock, and Tx.Commit
	// consumes it to block on group-commit durability outside that lock.
	// walNs rides the same lock: when span timing is enabled it maps a
	// commit sequence to how long its WAL append took, measured in the CDC
	// hook (the WAL package is in the deterministic set, so the clock lives
	// here) and consumed by the committer to split its commit window into
	// occ_validate vs wal_append spans.
	durMu   sync.Mutex
	durable map[uint64]int64
	walNs   map[uint64]int64

	// spanTiming gates the walNs bookkeeping; spanSeqReg, when set, learns
	// (commit seq → trace ID) the instant a traced commit lands, before
	// replication can ship it, so outgoing log entries can be stamped with
	// the originating trace.
	spanTiming atomic.Bool
	spanSeqReg func(seq, traceID uint64)

	// ckptMu serializes checkpoints; DDL takes the read side so no schema
	// change can slip between a snapshot and the log rotation that trusts it.
	ckptMu      sync.RWMutex
	ckptBytes   int64
	ckptRecords int
	cdcRetain   int
	histRetain  int
	ckptErrMu   sync.Mutex
	ckptErr     error // last automatic-checkpoint failure, surfaced on Close

	// plans caches parsed statements together with their compiled physical
	// plans, keyed by query text (plan validity keyed by schema epoch); see
	// plancache.go.
	plans *planCache

	// readTraceLimit caps read-provenance rows collected per statement
	// (0 = unlimited). The tracer sets it from its configuration to bound
	// request-path tracing cost on scan-heavy statements.
	readTraceLimit int

	// DDL observation for replication: every DDL statement (live or
	// replayed during recovery) updates the last-DDL position, and live DDL
	// additionally fans out to subscribers (the replication source journals
	// it there). Subscriber callbacks run under the store lock via the DDL
	// hook — they must be fast and must not call back into the store.
	ddlMu      sync.Mutex
	ddlSubs    []func(seq uint64, stmt string)
	lastDDLSeq uint64
	ddlSeen    bool

	// readOnly rejects writes and DDL arriving through the SQL layer with
	// ErrReadOnly (replicas serve reads only; replicated apply bypasses it).
	// Atomic because promotion flips it on a live database.
	readOnly atomic.Bool

	// fenced rejects writes with ErrFenced: the node's replication epoch is
	// stale (a newer primary exists), so nothing it commits can survive.
	// Reads stay available. Set by the replication layer on fencing.
	fenced atomic.Bool

	// commitBarrier, when set, runs after a write commit is locally durable
	// and before it is acknowledged; an error makes the commit surface as
	// unacknowledged (the replication source uses it for quorum acks). Must
	// be set before the database serves concurrent traffic.
	commitBarrier func(seq uint64) error

	// Engine-level observability: write commits applied and commit attempts
	// aborted on serialization conflict, counted at the facade so every path
	// (autocommit retries, interactive transactions, ApplyCommit batch
	// writers) lands in one place; checkpoint runs and their durations.
	// The storage layer itself is deliberately uninstrumented — it is in the
	// deterministic set (trodlint detpath) where time.Now is forbidden.
	commits     atomic.Uint64
	conflicts   atomic.Uint64
	checkpoints atomic.Uint64
	ckptHist    *metrics.Histogram

	closed bool
	mu     sync.Mutex
}

// Open creates or recovers a database.
//
// Disk-mode recovery order: finish any interrupted log rotation, then — when
// the log opens with a checkpoint record whose snapshot is intact — load the
// snapshot and replay only the WAL tail. An unreadable snapshot falls back
// to full replay of the retained log generations (<path>.old then <path>),
// which covers crashes between snapshot write and rotation; only if the
// pre-checkpoint history is gone too does Open fail.
func Open(opts Options) (*DB, error) {
	db := &DB{
		store:       storage.NewStore(),
		mode:        opts.Mode,
		syncPolicy:  opts.Sync,
		ckptBytes:   opts.CheckpointBytes,
		ckptRecords: opts.CheckpointRecords,
		cdcRetain:   opts.CDCRetention,
		histRetain:  opts.HistoryRetention,
		plans:       newPlanCache(opts.PlanCacheCap),
		ckptHist:    newCheckpointHist(),
	}
	if opts.Mode == Memory {
		db.store.SetDDLHook(db.ddlFired)
		return db, nil
	}
	if opts.Path == "" {
		return nil, errors.New("db: Disk mode requires Options.Path")
	}
	db.walPath = opts.Path
	db.durable = make(map[uint64]int64)
	db.walNs = make(map[uint64]int64)
	if err := db.recover(opts.Path); err != nil {
		return nil, err
	}
	log, err := wal.Open(opts.Path, opts.Sync)
	if err != nil {
		return nil, err
	}
	db.log = log
	db.store.SetDDLHook(db.ddlFired)
	db.store.SubscribeCDC(func(rec storage.CommitRecord) {
		// Append under the store's commit lock so the log order matches the
		// serialization order, but do NOT wait for durability here: the
		// committer blocks in Tx.Commit (via waitDurable) after the lock is
		// released, letting concurrent commits batch into one fsync.
		timed := db.spanTiming.Load()
		var t0 time.Time
		if timed {
			t0 = time.Now()
		}
		lsn, err := log.AppendCommitLSN(rec)
		if err != nil {
			return // sticky WAL failure; surfaced by waitDurable/Close
		}
		if timed || opts.Sync == wal.SyncEachCommit {
			db.durMu.Lock()
			if timed {
				db.walNs[rec.Seq] = time.Since(t0).Nanoseconds()
			}
			if opts.Sync == wal.SyncEachCommit {
				db.durable[rec.Seq] = lsn
			}
			// Writers that commit through Store() directly never consume
			// their entries; prune long-stale ones so the maps stay bounded
			// (a pruned entry's waiter falls back to a full WAL sync).
			if len(db.durable) > 8192 {
				for seq := range db.durable {
					if seq+4096 < rec.Seq {
						delete(db.durable, seq)
					}
				}
			}
			if len(db.walNs) > 8192 {
				for seq := range db.walNs {
					if seq+4096 < rec.Seq {
						delete(db.walNs, seq)
					}
				}
			}
			db.durMu.Unlock()
		}
	})
	return db, nil
}

// ddlFired is the store's DDL hook: it persists the statement to the WAL
// (Disk mode), records the DDL position, and fans out to subscribers. It
// runs under the store's commit lock, so subscribers observe DDL in exact
// serialization order relative to commits.
func (db *DB) ddlFired(seq uint64, stmt string) {
	if db.log != nil {
		// Errors here are surfaced on Close/Flush; DDL is rare and the log
		// write failing means the disk is gone.
		_ = db.log.AppendDDL(stmt)
	}
	db.ddlMu.Lock()
	db.lastDDLSeq = seq
	db.ddlSeen = true
	subs := db.ddlSubs
	db.ddlMu.Unlock()
	for _, fn := range subs {
		fn(seq, stmt)
	}
}

// noteDDL records a DDL position without fanning out (recovery replay: the
// statement predates any subscriber and is already in the WAL).
func (db *DB) noteDDL(seq uint64) {
	db.ddlMu.Lock()
	db.lastDDLSeq = seq
	db.ddlSeen = true
	db.ddlMu.Unlock()
}

// SubscribeDDL registers fn to receive every future DDL statement together
// with the commit sequence it executed at. fn runs under the store's commit
// lock (like CDC subscribers): it must be fast and must not call back into
// the store. The replication source uses it to journal DDL for log shipping.
func (db *DB) SubscribeDDL(fn func(seq uint64, stmt string)) {
	db.ddlMu.Lock()
	db.ddlSubs = append(db.ddlSubs, fn)
	db.ddlMu.Unlock()
}

// LastDDL reports the commit sequence of the most recent DDL statement this
// database has applied (live or replayed during recovery), and whether any
// DDL has been applied at all. The replication source uses it to refuse
// log catch-up from positions that might be missing a DDL it cannot resend.
func (db *DB) LastDDL() (uint64, bool) {
	db.ddlMu.Lock()
	defer db.ddlMu.Unlock()
	return db.lastDDLSeq, db.ddlSeen
}

// recover rebuilds the store from the WAL (and snapshot) at path.
func (db *DB) recover(path string) error {
	wal.RepairRotation(path)
	paths := []string{path}
	if head := wal.ReadHead(path); head != nil && head.Type == wal.RecordCheckpoint {
		// Fast path: start from the checkpoint's snapshot and replay only
		// this log (the tail). The .old generation is pre-checkpoint history
		// and is only needed when the snapshot is unusable.
		st, err := storage.LoadSnapshotFile(db.resolveSnapshot(head.Checkpoint))
		switch {
		case err != nil:
			db.recovery.SnapshotErr = err.Error()
		case st.CurrentSeq() != head.Checkpoint.Seq:
			db.recovery.SnapshotErr = fmt.Sprintf("snapshot seq %d does not match checkpoint seq %d",
				st.CurrentSeq(), head.Checkpoint.Seq)
		default:
			db.store = st
			db.recovery.SnapshotLoaded = true
			db.recovery.SnapshotSeq = head.Checkpoint.Seq
		}
	}
	if !db.recovery.SnapshotLoaded {
		if _, err := os.Stat(path + ".old"); err == nil {
			paths = []string{path + ".old", path}
		}
	}
	for _, p := range paths {
		if err := db.replayLog(p); err != nil {
			return err
		}
	}
	return nil
}

// replayLog applies one log generation on top of the current store state.
// Commit records at or below the store's sequence are duplicates from an
// earlier generation (or covered by the snapshot) and are skipped.
func (db *DB) replayLog(path string) error {
	return wal.Replay(path, func(rec wal.Record) error {
		db.recovery.TotalRecords++
		switch rec.Type {
		case wal.RecordDDL:
			stmt, err := sqlparse.Parse(rec.DDL)
			if err != nil {
				return fmt.Errorf("db: recovering DDL %q: %w", rec.DDL, err)
			}
			db.recovery.TailRecords++
			if err := db.applyDDL(stmt, true); err != nil {
				return err
			}
			db.noteDDL(db.store.CurrentSeq())
			return nil
		case wal.RecordCommit:
			if rec.Commit.Seq <= db.store.CurrentSeq() {
				return nil // duplicate of already-recovered state
			}
			db.recovery.TailRecords++
			if err := db.store.ApplyCommitted(rec.Commit); err != nil {
				if db.recovery.SnapshotErr != "" {
					return fmt.Errorf("db: WAL tail unreachable (snapshot unusable: %s): %w",
						db.recovery.SnapshotErr, err)
				}
				return err
			}
			return nil
		case wal.RecordCheckpoint:
			// Mid-replay checkpoint pointer (an .old generation head, or a
			// second rotation). Usable only if it advances past the state
			// replayed so far; otherwise recovery continues record by record.
			if rec.Checkpoint.Seq <= db.store.CurrentSeq() {
				return nil
			}
			st, err := storage.LoadSnapshotFile(db.resolveSnapshot(rec.Checkpoint))
			if err == nil && st.CurrentSeq() == rec.Checkpoint.Seq {
				db.store = st
				db.recovery.SnapshotLoaded = true
				db.recovery.SnapshotSeq = rec.Checkpoint.Seq
				db.recovery.TailRecords = 0
				return nil
			}
			if err == nil {
				err = fmt.Errorf("snapshot seq %d does not match checkpoint seq %d",
					st.CurrentSeq(), rec.Checkpoint.Seq)
			}
			db.recovery.SnapshotErr = err.Error()
			return nil
		}
		return nil
	})
}

// resolveSnapshot maps a checkpoint record's snapshot name (a base name) to
// a path next to the WAL.
func (db *DB) resolveSnapshot(cp wal.Checkpoint) string {
	name := cp.Snapshot
	if name == "" {
		name = filepath.Base(db.walPath) + ".snap"
	}
	return filepath.Join(filepath.Dir(db.walPath), name)
}

// Recovery reports what the last Open did to rebuild state (Disk mode).
func (db *DB) Recovery() RecoveryInfo { return db.recovery }

// newCheckpointHist builds the checkpoint-duration instrument every DB
// carries; RegisterMetrics exports it when a metrics endpoint is wired.
func newCheckpointHist() *metrics.Histogram {
	return metrics.NewHistogram("trod_db_checkpoint_seconds",
		"Duration of checkpoint runs: snapshot encode + write + verify, log rotation, and vacuum.", nil)
}

// CommitStats reports the facade-level commit counters: write commits
// applied (every path — autocommit, interactive transactions, ApplyCommit
// batch writers) and commit attempts aborted on serialization conflict.
// Unlike the server's per-session counters these include internal writers
// and each retry of an autocommit statement, so conflict *rate* computed
// from them reflects what the OCC validator actually saw.
func (db *DB) CommitStats() (commits, conflicts uint64) {
	return db.commits.Load(), db.conflicts.Load()
}

// Checkpoints reports completed checkpoint runs.
func (db *DB) Checkpoints() uint64 { return db.checkpoints.Load() }

// PlanShape compiles (or fetches from the plan cache) the physical plan for
// query and returns its compact shape string — what the slow-query log
// records so an operator sees *how* a slow statement ran (scan vs index,
// join strategy) without re-running EXPLAIN by hand. Unplannable or
// unparsable statements return "".
func (db *DB) PlanShape(query string) string {
	stmt, err := db.parse(query)
	if err != nil {
		return ""
	}
	if !isPlannable(stmt) {
		return ""
	}
	plan, err := db.planFor(query, stmt, nil, 0)
	if err != nil {
		return ""
	}
	return plan.Shape()
}

// RegisterMetrics exports the engine's counters on reg: commit/conflict
// totals, checkpoint count + duration histogram, WAL syncs, plan-cache
// effectiveness, and the MVCC vacuum/version census. One call wires the
// whole trod_db_* and trod_wal_* namespace for a served database.
func (db *DB) RegisterMetrics(reg *metrics.Registry) {
	reg.CounterFunc("trod_db_commits_total",
		"Write commits applied by the engine (all paths, retries counted once each).",
		func() uint64 { return db.commits.Load() })
	reg.CounterFunc("trod_db_conflicts_total",
		"Commit attempts aborted by OCC serialization-conflict validation.",
		func() uint64 { return db.conflicts.Load() })
	reg.CounterFunc("trod_db_checkpoints_total",
		"Completed checkpoint runs.",
		func() uint64 { return db.checkpoints.Load() })
	reg.Register(db.ckptHist)
	reg.CounterFunc("trod_wal_syncs_total",
		"WAL fsyncs issued; stays below commit count while group commit batches.",
		func() uint64 { return db.WALStats().Syncs })
	reg.CounterFunc("trod_db_plan_cache_hits_total",
		"Statement executions that reused a cached physical plan.",
		func() uint64 { return db.PlanCacheStats().Hits })
	reg.CounterFunc("trod_db_plan_cache_misses_total",
		"Plan compilations: first executions plus schema-epoch invalidations.",
		func() uint64 { return db.PlanCacheStats().Misses })
	reg.GaugeFunc("trod_db_plan_cache_size",
		"Query texts currently cached.",
		func() float64 { return float64(db.PlanCacheStats().Size) })
	reg.CounterFunc("trod_db_vacuum_runs_total",
		"MVCC vacuum runs (per checkpoint under HistoryRetention, plus explicit calls).",
		func() uint64 { return db.store.VacuumTotals().Runs })
	reg.CounterFunc("trod_db_vacuum_dropped_versions_total",
		"Row and index versions dropped by vacuum.",
		func() uint64 {
			v := db.store.VacuumTotals()
			return v.DroppedRowVersions + v.DroppedIndexVersions
		})
	reg.GaugeFunc("trod_db_resident_versions",
		"Row versions currently resident in version chains.",
		func() float64 { return float64(db.store.VersionCensus().ResidentRowVersions) })
	reg.GaugeFunc("trod_db_max_chain_length",
		"Longest row version chain.",
		func() float64 { return float64(db.store.VersionCensus().MaxChainLength) })
	reg.GaugeFunc("trod_db_history_floor_seq",
		"Oldest commit sequence still readable by time travel (vacuum/restart floor).",
		func() float64 { return float64(db.store.HistoryRetainedFrom()) })
	reg.GaugeFunc("trod_db_commit_seq",
		"Current commit sequence.",
		func() float64 { return float64(db.store.CurrentSeq()) })
}

// Log exposes the write-ahead log (nil in Memory mode); tests and tools
// use it for stats and fault injection.
func (db *DB) Log() *wal.Log { return db.log }

// WALStats returns the WAL's counters (zero in Memory mode).
func (db *DB) WALStats() wal.Stats {
	if db.log == nil {
		return wal.Stats{}
	}
	return db.log.Stats()
}

// waitDurable blocks until the commit record for seq is fsynced, sharing the
// fsync with every concurrently committing transaction (group commit). Under
// SyncNever (or in Memory mode) it returns immediately.
func (db *DB) waitDurable(seq uint64) error {
	_, err := db.waitDurableLed(seq)
	return err
}

// waitDurableLed is waitDurable, reporting whether this committer led the
// fsync batch — the span layer labels the wait wal_fsync (leader) or
// group_commit_wait (follower riding another leader's fsync).
func (db *DB) waitDurableLed(seq uint64) (led bool, err error) {
	if db.log == nil || db.syncPolicy != wal.SyncEachCommit {
		return false, nil
	}
	db.durMu.Lock()
	lsn, ok := db.durable[seq]
	delete(db.durable, seq)
	db.durMu.Unlock()
	if !ok {
		// The CDC append failed (sticky WAL error) — surface it.
		return true, db.log.Sync()
	}
	return db.log.WaitDurableLed(lsn)
}

// takeWALAppendNs consumes the measured WAL-append duration for a commit
// sequence (0 when span timing is off or the entry was pruned).
func (db *DB) takeWALAppendNs(seq uint64) int64 {
	if seq == 0 || !db.spanTiming.Load() || db.log == nil {
		return 0
	}
	db.durMu.Lock()
	ns := db.walNs[seq]
	delete(db.walNs, seq)
	db.durMu.Unlock()
	return ns
}

// SetSpanHooks enables span-stage timing on the commit path and installs
// the commit-seq registration hook (reg may be nil): once on, the CDC hook
// measures each commit's WAL append, and every traced commit reports
// (seq, trace ID) to reg before replication can ship it. Install before the
// database serves concurrent traffic.
func (db *DB) SetSpanHooks(reg func(seq, traceID uint64)) {
	db.spanSeqReg = reg
	db.spanTiming.Store(true)
}

// ApplyCommit runs a pre-built storage commit through the facade's
// durability path: the commit is validated and applied by the store, the
// caller blocks until its WAL record is durable (group commit), and
// checkpoint triggers fire. Batch writers that bypass the SQL layer (the
// provenance writer) must use this instead of Store().Commit, or their
// commits never trip automatic checkpoints.
func (db *DB) ApplyCommit(req storage.CommitRequest) (uint64, error) {
	seq, err := db.store.Commit(req)
	if err != nil {
		var conflict *storage.ConflictError
		if errors.As(err, &conflict) {
			db.conflicts.Add(1)
		}
		return 0, err
	}
	db.commits.Add(1)
	if err := db.waitDurable(seq); err != nil {
		return seq, fmt.Errorf("db: commit %d not durable: %w", seq, err)
	}
	if db.commitBarrier != nil {
		if err := db.commitBarrier(seq); err != nil {
			return seq, fmt.Errorf("db: commit %d: %w", seq, err)
		}
	}
	db.maybeCheckpoint()
	return seq, nil
}

// Checkpoint snapshots the full committed state next to the WAL and
// truncates the log to a checkpoint pointer plus the commits that landed
// after the snapshot, bounding recovery to the snapshot load plus a short
// tail. The previous log generation is kept as <path>.old so a later
// unreadable snapshot still has a full-replay fallback. No-op in Memory
// mode.
func (db *DB) Checkpoint() error {
	if db.log == nil {
		return nil
	}
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	return db.checkpointLocked()
}

func (db *DB) checkpointLocked() error {
	ckptStart := time.Now()
	data, seq := db.store.EncodeSnapshot()
	// Each checkpoint gets its own snapshot file: overwriting a single name
	// would destroy the snapshot the current log head still points to, so a
	// crash between this write and the rotation below would leave nothing
	// that matches the head pointer. With unique names the previous
	// snapshot stays valid until the rotation lands; a crash in between
	// merely leaves an orphan file that the next checkpoint cleans up.
	snapPath := fmt.Sprintf("%s.snap.%d", db.walPath, seq)
	if err := storage.WriteSnapshotFile(snapPath, data); err != nil {
		return err
	}
	// Read the snapshot back before truncating anything: rotation is only
	// safe once the bytes on disk are known to decode.
	if _, err := storage.LoadSnapshotFile(snapPath); err != nil {
		return fmt.Errorf("db: checkpoint verification failed: %w", err)
	}
	// Collect the post-snapshot commit tail and rotate under the store's
	// commit lock, so no commit can land between tail capture and rotation.
	err := db.store.CheckpointTail(seq, func(tail []storage.CommitRecord) error {
		return db.log.Rotate(wal.Checkpoint{Seq: seq, Snapshot: filepath.Base(snapPath)}, tail)
	})
	if err != nil {
		return err
	}
	db.cleanupSnapshots(filepath.Base(snapPath))
	// With the pre-checkpoint history durable in the snapshot, the in-memory
	// CDC prefix is only needed by replay/time-travel windows; release
	// everything older than the configured retention (active transactions
	// pin their own validation windows regardless).
	if db.cdcRetain > 0 && seq > uint64(db.cdcRetain) {
		db.store.TruncateLog(seq - uint64(db.cdcRetain))
	}
	// With the snapshot durable, version chains older than the retention
	// window serve no read that is still allowed: compact them. Vacuum clamps
	// to the oldest pinned snapshot itself, so long-running readers are safe.
	db.Vacuum()
	db.checkpoints.Add(1)
	db.ckptHist.ObserveSince(ckptStart)
	return nil
}

// Vacuum garbage-collects MVCC version history outside the configured
// HistoryRetention window (a no-op when HistoryRetention is 0): version
// chains compact to what is visible within the last HistoryRetention
// commits, tombstoned rows older than that are physically removed, and the
// history floor (Store.HistoryRetainedFrom) rises to the vacuum horizon.
// Checkpoints call it automatically; Memory-mode databases (no checkpoints)
// call it directly when they want the same bound.
func (db *DB) Vacuum() storage.VacuumStats {
	if db.histRetain <= 0 {
		return storage.VacuumStats{}
	}
	seq := db.store.CurrentSeq()
	if seq <= uint64(db.histRetain) {
		return storage.VacuumStats{}
	}
	return db.store.Vacuum(seq - uint64(db.histRetain))
}

// cleanupSnapshots removes snapshot files no longer reachable from either
// log generation: everything except the snapshot just written and the one
// the .old generation's head still points to (the fallback when the new
// snapshot later proves unreadable). Best effort — an undeleted orphan only
// costs disk space.
func (db *DB) cleanupSnapshots(current string) {
	keep := map[string]bool{current: true}
	if old := wal.ReadHead(db.walPath + ".old"); old != nil && old.Type == wal.RecordCheckpoint && old.Checkpoint.Snapshot != "" {
		keep[old.Checkpoint.Snapshot] = true
	}
	matches, err := filepath.Glob(db.walPath + ".snap*")
	if err != nil {
		return
	}
	for _, m := range matches {
		if !keep[filepath.Base(m)] {
			os.Remove(m)
		}
	}
}

// maybeCheckpoint runs an automatic checkpoint when the WAL has outgrown the
// configured thresholds. Failures don't fail the (already durable) commit
// that tripped the trigger; the error is kept and surfaced on Close.
func (db *DB) maybeCheckpoint() {
	if db.log == nil || (db.ckptBytes <= 0 && db.ckptRecords <= 0) {
		return
	}
	st := db.log.Stats()
	if (db.ckptBytes <= 0 || st.BytesSinceCheckpoint < db.ckptBytes) &&
		(db.ckptRecords <= 0 || st.RecordsSinceCheckpoint < db.ckptRecords) {
		return
	}
	if !db.ckptMu.TryLock() {
		return // a checkpoint is already running
	}
	defer db.ckptMu.Unlock()
	// Re-check under the lock: the checkpoint that just finished may have
	// already truncated the log.
	st = db.log.Stats()
	if (db.ckptBytes <= 0 || st.BytesSinceCheckpoint < db.ckptBytes) &&
		(db.ckptRecords <= 0 || st.RecordsSinceCheckpoint < db.ckptRecords) {
		return
	}
	err := db.checkpointLocked()
	db.ckptErrMu.Lock()
	// A later successful checkpoint supersedes an earlier transient failure
	// (the log is truncated and consistent again), so the error resets.
	db.ckptErr = err
	db.ckptErrMu.Unlock()
}

// MustOpenMemory returns an in-memory database, panicking on error (which
// cannot happen for Memory mode); a convenience for examples and tests.
func MustOpenMemory() *DB {
	db, err := Open(Options{Mode: Memory})
	if err != nil {
		panic(err)
	}
	return db
}

// Close flushes and closes the WAL. It also surfaces the last automatic
// checkpoint failure, if any (automatic checkpoints never fail the commit
// that triggered them).
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	db.closed = true
	var err error
	if db.log != nil {
		err = db.log.Close()
	}
	db.ckptErrMu.Lock()
	ckptErr := db.ckptErr
	db.ckptErrMu.Unlock()
	return errors.Join(err, ckptErr)
}

// Store exposes the underlying MVCC store to the TROD layers (tracer CDC
// subscription, replay time travel). Application code should not need it.
func (db *DB) Store() *storage.Store { return db.store }

// SetHooks installs the interposition hooks. Must be called before
// concurrent use.
func (db *DB) SetHooks(h Hooks) { db.hooks = h }

// SetReadTraceLimit caps the read-provenance rows collected per statement
// (0 = unlimited). Must be set before concurrent use.
func (db *DB) SetReadTraceLimit(n int) { db.readTraceLimit = n }

// parse returns the cached AST for query, parsing at most once per text.
// Statements and plans share one capped cache entry (see plancache.go);
// parsing is schema-independent, so the statement half of an entry stays
// valid across DDL while the plan half is epoch-checked.
func (db *DB) parse(query string) (sqlparse.Statement, error) {
	if stmt, ok := db.plans.stmt(query); ok {
		return stmt, nil
	}
	stmt, err := sqlparse.Parse(query)
	if err != nil {
		return nil, err
	}
	db.plans.put(query, stmt, nil, 0)
	return stmt, nil
}

// applyDDL executes a schema statement directly against the store. Outside
// recovery it holds the checkpoint lock's read side, so a schema change can
// never land between a checkpoint's snapshot and its log rotation (the
// rotated tail carries only commit records, not DDL).
// execDDL applies a live SQL-layer DDL statement and, like a write commit,
// holds its acknowledgement behind the replication barrier: schema changes
// ride the same replicated log as commits, so an acked DDL must clear the
// same quorum an acked commit does. The DDL hook already made the statement
// locally durable (AppendDDL waits under SyncEachCommit) before applyDDL
// returns. Replicated and recovery-replayed DDL bypass the barrier, exactly
// like ApplyReplicatedCommit.
func (db *DB) execDDL(stmt sqlparse.Statement) error {
	if err := db.applyDDL(stmt, false); err != nil {
		return err
	}
	if db.commitBarrier != nil {
		db.ddlMu.Lock()
		seq := db.lastDDLSeq
		db.ddlMu.Unlock()
		if err := db.commitBarrier(seq); err != nil {
			return fmt.Errorf("db: ddl at commit seq %d: %w", seq, err)
		}
	}
	return nil
}

func (db *DB) applyDDL(stmt sqlparse.Statement, recovering bool) error {
	if !recovering {
		db.ckptMu.RLock()
		defer db.ckptMu.RUnlock()
	}
	switch s := stmt.(type) {
	case *sqlparse.CreateTable:
		tbl, err := TableFromAST(s)
		if err != nil {
			return err
		}
		return db.store.CreateTable(tbl, s.IfNotExists)
	case *sqlparse.CreateIndex:
		tbl := db.store.Table(s.Table)
		if tbl == nil {
			return fmt.Errorf("db: CREATE INDEX on unknown table %q", s.Table)
		}
		cols := make([]int, len(s.Columns))
		for i, c := range s.Columns {
			pos := tbl.ColumnIndex(c)
			if pos < 0 {
				return fmt.Errorf("db: index column %q not in table %q", c, s.Table)
			}
			cols[i] = pos
		}
		return db.store.CreateIndex(&schema.Index{Name: s.Name, Table: tbl.Name, Columns: cols, Unique: s.Unique})
	case *sqlparse.DropTable:
		return db.store.DropTable(s.Name, s.IfExists)
	default:
		return fmt.Errorf("db: %T is not DDL", stmt)
	}
}

// TableFromAST converts a parsed CREATE TABLE into a schema.Table.
func TableFromAST(ct *sqlparse.CreateTable) (*schema.Table, error) {
	cols := make([]schema.Column, len(ct.Columns))
	var pk []string
	for i, c := range ct.Columns {
		cols[i] = schema.Column{Name: c.Name, Type: c.Type, NotNull: c.NotNull}
		if c.PrimaryKey {
			pk = append(pk, c.Name)
		}
	}
	if len(ct.PrimaryKey) > 0 {
		if len(pk) > 0 {
			return nil, fmt.Errorf("db: table %q has both inline and table-level PRIMARY KEY", ct.Name)
		}
		pk = ct.PrimaryKey
	}
	return schema.NewTable(ct.Name, cols, pk)
}

func isDDL(stmt sqlparse.Statement) bool {
	switch stmt.(type) {
	case *sqlparse.CreateTable, *sqlparse.CreateIndex, *sqlparse.DropTable:
		return true
	}
	return false
}

func convertArgs(args []any) ([]value.Value, error) {
	vals := make([]value.Value, len(args))
	for i, a := range args {
		v, err := value.FromGo(a)
		if err != nil {
			return nil, fmt.Errorf("db: argument %d: %w", i+1, err)
		}
		vals[i] = v
	}
	return vals, nil
}

// Exec runs a statement in autocommit mode (its own transaction, retried on
// serialization conflict). DDL executes directly.
func (db *DB) Exec(query string, args ...any) (*Rows, error) {
	return db.exec(TxMeta{}, query, args...)
}

// ExecMeta is Exec with transaction metadata attached (used by the runtime
// for single-statement transactions).
func (db *DB) ExecMeta(meta TxMeta, query string, args ...any) (*Rows, error) {
	return db.exec(meta, query, args...)
}

// readOnlyViolation rejects non-SELECT statements on a read-only or fenced
// database.
func (db *DB) readOnlyViolation(stmt sqlparse.Statement) error {
	fenced := db.fenced.Load()
	if !db.readOnly.Load() && !fenced {
		return nil
	}
	if _, ok := stmt.(*sqlparse.Select); ok {
		return nil
	}
	if fenced {
		return ErrFenced
	}
	return ErrReadOnly
}

func (db *DB) exec(meta TxMeta, query string, args ...any) (*Rows, error) {
	// parse_plan covers the parse and the plan-cache lookup; compilation on
	// a miss nests under it as plan_compile (recorded inside planFor). The
	// span ID is reserved up front so the child can parent under it before
	// the window closes.
	sp := meta.Spans
	var ppID uint32
	var ppStart time.Time
	if sp != nil {
		ppStart = time.Now()
		ppID = sp.Reserve(span.StageParsePlan, span.RootID)
	}
	stmt, err := db.parse(query)
	if err != nil {
		sp.Complete(ppID, ppStart, time.Since(ppStart))
		return nil, err
	}
	if err := db.readOnlyViolation(stmt); err != nil {
		sp.Complete(ppID, ppStart, time.Since(ppStart))
		return nil, err
	}
	if isDDL(stmt) {
		sp.Complete(ppID, ppStart, time.Since(ppStart))
		return &Rows{}, db.execDDL(stmt)
	}
	switch stmt.(type) {
	case *sqlparse.Begin, *sqlparse.Commit, *sqlparse.Rollback:
		sp.Complete(ppID, ppStart, time.Since(ppStart))
		return nil, errors.New("db: use Begin()/Tx.Commit()/Tx.Rollback() for transaction control")
	}
	vals, err := convertArgs(args)
	if err != nil {
		sp.Complete(ppID, ppStart, time.Since(ppStart))
		return nil, err
	}
	if _, isSelect := stmt.(*sqlparse.Select); isSelect {
		// Auto-commit SELECT: a read-only snapshot transaction. No read-set
		// tracking, no validation, and — by construction — no conflict-retry
		// loop: a snapshot read cannot be invalidated by concurrent writers.
		tx := db.beginReadOnlyMeta(meta)
		plan, err := db.planFor(query, stmt, sp, ppID)
		sp.Complete(ppID, ppStart, time.Since(ppStart))
		if err != nil {
			tx.Rollback()
			return nil, err
		}
		res, err := tx.execPlanned(stmt, plan, query, vals)
		if err != nil {
			tx.Rollback()
			return nil, err
		}
		if err := tx.Commit(); err != nil {
			return nil, err
		}
		return res, nil
	}
	var res *Rows
	err = db.runWithRetry(meta, func(tx *Tx) error {
		// Re-validate the plan per attempt: a cache hit is a lock-free-ish
		// map lookup, and concurrent DDL between attempts (epoch bump)
		// re-plans instead of running a stale catalog snapshot — matching
		// the pre-plan-cache behaviour of resolving tables on every attempt.
		plan, err := db.planFor(query, stmt, sp, ppID)
		if ppID != 0 {
			// The parse_plan window closes after the first attempt's lookup;
			// retry-loop re-plans stand alone as plan_compile spans.
			sp.Complete(ppID, ppStart, time.Since(ppStart))
			ppID = 0
		}
		if err != nil {
			return err
		}
		res, err = tx.execPlanned(stmt, plan, query, vals)
		return err
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Query is Exec for read statements; provided for call-site clarity.
func (db *DB) Query(query string, args ...any) (*Rows, error) {
	return db.Exec(query, args...)
}

// ExecScript runs a semicolon-separated script of DDL/DML statements, each
// in autocommit mode. Useful for schema setup and workload seeding.
func (db *DB) ExecScript(script string) error {
	stmts, err := sqlparse.ParseAll(script)
	if err != nil {
		return err
	}
	for _, stmt := range stmts {
		if err := db.readOnlyViolation(stmt); err != nil {
			return err
		}
		if isDDL(stmt) {
			if err := db.execDDL(stmt); err != nil {
				return err
			}
			continue
		}
		if _, isSelect := stmt.(*sqlparse.Select); isSelect {
			tx := db.beginReadOnlyMeta(TxMeta{})
			if _, err := tx.execPlanned(stmt, nil, "", nil); err != nil {
				tx.Rollback()
				return err
			}
			if err := tx.Commit(); err != nil {
				return err
			}
			continue
		}
		err := db.runWithRetry(TxMeta{}, func(tx *Tx) error {
			_, err := tx.execPlanned(stmt, nil, "", nil)
			return err
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// runWithRetry runs fn in a transaction, retrying on serialization conflict.
func (db *DB) runWithRetry(meta TxMeta, fn func(*Tx) error) error {
	for attempt := 0; attempt < txn.MaxRetries; attempt++ {
		tx := db.BeginMeta(meta)
		if err := fn(tx); err != nil {
			tx.Rollback()
			var conflict *storage.ConflictError
			if errors.As(err, &conflict) {
				continue
			}
			return err
		}
		err := tx.Commit()
		if err == nil {
			return nil
		}
		var conflict *storage.ConflictError
		if !errors.As(err, &conflict) {
			return err
		}
	}
	return fmt.Errorf("db: giving up after %d serialization retries", txn.MaxRetries)
}

// RunTx executes fn in a transaction with conflict retry; this is the
// application-facing transactional block (the runtime's ctx.Txn wraps it).
func (db *DB) RunTx(meta TxMeta, fn func(*Tx) error) error {
	return db.runWithRetry(meta, fn)
}

// Begin starts an explicit transaction.
func (db *DB) Begin() *Tx { return db.BeginMeta(TxMeta{}) }

// BeginMeta starts an explicit transaction carrying TROD metadata.
func (db *DB) BeginMeta(meta TxMeta) *Tx {
	return &Tx{
		db:    db,
		inner: txn.Begin(db.store),
		meta:  meta,
		start: time.Now(),
	}
}

// ErrTxnExpired reports an interactive transaction that exceeded its
// deadline: the server (or another session owner) abandoned it, the
// deadline watcher rolled it back, and every later operation on the handle
// fails with this error. It maps to a typed protocol error on the wire.
var ErrTxnExpired = errors.New("db: interactive transaction expired")

// txGuard serializes an interactive transaction's operations against its
// deadline watcher. Plain transactions (guard == nil) pay nothing.
type txGuard struct {
	mu      sync.Mutex
	timer   *time.Timer
	expired bool
}

// BeginInteractive starts an explicit transaction owned by a session that
// may go quiet mid-transaction (a network client, an operator shell). If the
// transaction is still active when timeout elapses, it is rolled back by a
// deadline watcher — firing the OnAbort interposition hook like any abort —
// and subsequent operations return ErrTxnExpired; onExpire (optional) runs
// after the deadline abort, outside any database lock. A timeout <= 0
// disables the watcher. Unlike plain Tx handles, the returned handle is safe
// for the owning session and the watcher to race; it is still not a
// general-purpose concurrent handle.
func (db *DB) BeginInteractive(meta TxMeta, timeout time.Duration, onExpire func()) *Tx {
	tx := db.BeginMeta(meta)
	if timeout <= 0 {
		return tx
	}
	g := &txGuard{}
	tx.guard = g
	g.timer = time.AfterFunc(timeout, func() {
		g.mu.Lock()
		if g.expired || tx.inner.State() != txn.StateActive {
			g.mu.Unlock()
			return
		}
		g.expired = true
		tx.rollback()
		g.mu.Unlock()
		if onExpire != nil {
			onExpire()
		}
	})
	return tx
}

// ErrReadOnlyTxn re-exports the transaction layer's typed error for writes
// attempted on a read-only snapshot transaction, so wire-facing layers can
// map it without importing txn.
var ErrReadOnlyTxn = txn.ErrReadOnlyTxn

// BeginReadOnly starts a declared read-only snapshot transaction at the
// current sequence: reads skip read-set tracking entirely, commit never
// validates, and the transaction can never abort on serialization conflict.
// Writes fail with ErrReadOnlyTxn. Auto-commit SELECTs, replica follower
// reads, and analytics scans all run through this path.
func (db *DB) BeginReadOnly() *Tx { return db.beginReadOnlyMeta(TxMeta{}) }

func (db *DB) beginReadOnlyMeta(meta TxMeta) *Tx {
	return &Tx{db: db, inner: txn.BeginReadOnly(db.store), meta: meta, start: time.Now()}
}

// BeginAt starts a read-only transaction at a historical snapshot (time
// travel; used by the TROD replay engine). Writes through the returned
// handle fail with ErrReadOnlyTxn — a historical transaction has an empty
// OCC footprint, so a write through it would skip validation entirely and
// blindly clobber the present. Snapshots below the history floor (vacuumed
// away, or behind the checkpoint a restart recovered from) fail with
// storage.ErrHistoryTruncated rather than silently reading rows as missing.
func (db *DB) BeginAt(seq uint64) (*Tx, error) {
	inner := txn.BeginAt(db.store, seq)
	// Pin first, check second: once the pin is at seq, Vacuum clamps its
	// horizon at or below it, so a floor that passes here cannot rise past
	// seq for the life of the transaction.
	if floor := db.store.HistoryRetainedFrom(); seq < floor {
		inner.Abort()
		return nil, fmt.Errorf("db: time travel to seq %d: %w (history retained from seq %d)",
			seq, storage.ErrHistoryTruncated, floor)
	}
	return &Tx{db: db, inner: inner, start: time.Now()}, nil
}

// Tx is an explicit transaction handle.
type Tx struct {
	db    *DB
	inner *txn.Txn
	meta  TxMeta
	stmts []StmtTrace
	start time.Time
	guard *txGuard // non-nil for interactive transactions (BeginInteractive)
}

// enter takes the interactive guard (no-op for plain transactions) and
// fails fast when the deadline watcher already rolled the transaction back.
func (tx *Tx) enter() error {
	if tx.guard == nil {
		return nil
	}
	tx.guard.mu.Lock()
	if tx.guard.expired {
		tx.guard.mu.Unlock()
		return ErrTxnExpired
	}
	return nil
}

func (tx *Tx) exit() {
	if tx.guard != nil {
		tx.guard.mu.Unlock()
	}
}

// ID returns the TROD transaction ID.
func (tx *Tx) ID() uint64 { return tx.inner.ID() }

// Snapshot returns the snapshot sequence the transaction reads at.
func (tx *Tx) Snapshot() uint64 { return tx.inner.Snapshot() }

// Meta returns the attached interposition metadata.
func (tx *Tx) Meta() TxMeta { return tx.meta }

// SetMeta replaces the interposition metadata.
func (tx *Tx) SetMeta(m TxMeta) { tx.meta = m }

// SetSpanBuf points the transaction at a request's span buffer. Interactive
// transactions span many wire requests, each with its own trace; the server
// re-points the buffer per request so statement and commit spans land in
// the trace of the request that triggered them.
func (tx *Tx) SetSpanBuf(b *span.Buf) { tx.meta.Spans = b }

// Inner exposes the low-level transaction (used by the TROD replay engine).
func (tx *Tx) Inner() *txn.Txn { return tx.inner }

// Exec runs one statement inside the transaction. On an interactive
// transaction it fails with ErrTxnExpired once the deadline watcher has
// rolled the transaction back.
func (tx *Tx) Exec(query string, args ...any) (*Rows, error) {
	if err := tx.enter(); err != nil {
		return nil, err
	}
	defer tx.exit()
	stmt, err := tx.db.parse(query)
	if err != nil {
		return nil, err
	}
	if err := tx.db.readOnlyViolation(stmt); err != nil {
		return nil, err
	}
	if isDDL(stmt) {
		return nil, errors.New("db: DDL is not allowed inside a transaction")
	}
	vals, err := convertArgs(args)
	if err != nil {
		return nil, err
	}
	var plan *sqlexec.Plan
	if isPlannable(stmt) {
		sp := tx.meta.Spans
		var ppID uint32
		var ppStart time.Time
		if sp != nil {
			ppStart = time.Now()
			ppID = sp.Reserve(span.StageParsePlan, span.RootID)
		}
		plan, err = tx.db.planFor(query, stmt, sp, ppID)
		sp.Complete(ppID, ppStart, time.Since(ppStart))
		if err != nil {
			return nil, err
		}
	}
	return tx.execPlanned(stmt, plan, query, vals)
}

// Query is Exec for reads.
func (tx *Tx) Query(query string, args ...any) (*Rows, error) {
	return tx.Exec(query, args...)
}

// execPlanned runs one statement, preferring a cached physical plan; a nil
// plan falls back to transient compilation (script statements, transaction
// control).
func (tx *Tx) execPlanned(stmt sqlparse.Statement, plan *sqlexec.Plan, query string, vals []value.Value) (*Rows, error) {
	// Without interposition hooks there is no consumer for statement
	// traces; skip the bookkeeping entirely so an untraced deployment pays
	// nothing (the tracing-off baseline of experiment E1).
	traced := tx.db.hooks.OnCommit != nil || tx.db.hooks.OnAbort != nil
	ex := &sqlexec.Executor{
		Tx:    tx.inner,
		Store: tx.db.store,
		Args:  vals,
	}
	var trace StmtTrace
	if traced {
		trace.Query = query
		ex.OnRead = func(table string, row value.Row) {
			if limit := tx.db.readTraceLimit; limit > 0 && len(trace.Reads) >= limit {
				return
			}
			trace.Reads = append(trace.Reads, ReadEvent{Table: table, Row: row.Clone()})
		}
	}
	sp := tx.meta.Spans
	var est time.Time
	if sp != nil {
		est = time.Now()
	}
	var res *Rows
	var err error
	if plan != nil {
		res, err = ex.Run(plan)
	} else {
		res, err = ex.Exec(stmt)
	}
	if sp != nil {
		sp.Record(span.StageExecute, span.RootID, est, time.Since(est))
	}
	if err != nil {
		return nil, err
	}
	if !traced {
		return res, nil
	}
	// Record access markers for read statements that matched nothing, so
	// the provenance log shows "checked, found nothing" (paper Table 2).
	if len(trace.Reads) == 0 {
		for _, tbl := range statementTables(stmt) {
			trace.Reads = append(trace.Reads, ReadEvent{Table: tbl})
		}
	}
	tx.stmts = append(tx.stmts, trace)
	return res, nil
}

// statementTables lists the base tables a read/filter statement touches.
func statementTables(stmt sqlparse.Statement) []string {
	switch s := stmt.(type) {
	case *sqlparse.Select:
		if s.From == nil {
			return nil
		}
		out := []string{s.From.Table}
		for _, j := range s.Joins {
			out = append(out, j.Table.Table)
		}
		return out
	case *sqlparse.Update:
		return []string{s.Table}
	case *sqlparse.Delete:
		return []string{s.Table}
	default:
		return nil
	}
}

// Commit commits the transaction and fires the interposition hook. In Disk
// mode with per-commit sync the call returns only once the commit record is
// fsynced; concurrent committers share the fsync (group commit). On an
// interactive transaction whose deadline already fired, it returns
// ErrTxnExpired (the watcher rolled the transaction back).
func (tx *Tx) Commit() error {
	if err := tx.enter(); err != nil {
		return err
	}
	defer tx.exit()
	if tx.guard != nil {
		tx.guard.timer.Stop()
	}
	return tx.commit()
}

func (tx *Tx) commit() error {
	sp := tx.meta.Spans
	var cstart time.Time
	if sp != nil {
		cstart = time.Now()
	}
	seq, err := tx.inner.Commit()
	if sp != nil && (seq > 0 || err != nil) {
		// The inner commit's window covers OCC validation + apply and, for a
		// write, the WAL append the CDC hook performed under the commit
		// lock; the CDC hook measured that append, so split the window into
		// the two sibling stages instead of double-counting.
		innerNs := time.Since(cstart).Nanoseconds()
		walNs := tx.db.takeWALAppendNs(seq)
		if walNs > innerNs {
			walNs = innerNs
		}
		startNs := cstart.UnixNano()
		sp.RecordNs(span.StageOCCValidate, span.RootID, startNs, innerNs-walNs, seq)
		if walNs > 0 {
			sp.RecordNs(span.StageWALAppend, span.RootID, startNs+innerNs-walNs, walNs, seq)
		}
	}
	if err != nil {
		var conflict *storage.ConflictError
		if errors.As(err, &conflict) {
			tx.db.conflicts.Add(1)
		}
	} else if seq > 0 {
		tx.db.commits.Add(1)
	}
	var durErr, ackErr error
	if err == nil && seq > 0 {
		if sp != nil {
			// Pin the trace to its commit sequence now — before replication
			// can ship the commit — so outgoing log entries are stamped with
			// the originating trace and the trace links to BeginAt replay.
			sp.NoteSeq(seq)
			if reg := tx.db.spanSeqReg; reg != nil {
				reg(seq, sp.TraceID)
			}
		}
		// A write commit produced a WAL record; block until it is durable.
		// Read-only and no-op commits report seq 0 and have nothing to sync.
		var dstart time.Time
		if sp != nil {
			dstart = time.Now()
		}
		led, dErr := tx.db.waitDurableLed(seq)
		durErr = dErr
		if sp != nil {
			stage := span.StageGroupCommitWait
			if led {
				stage = span.StageWALFsync
			}
			sp.RecordNs(stage, span.RootID, dstart.UnixNano(), time.Since(dstart).Nanoseconds(), seq)
		}
		if durErr == nil && tx.db.commitBarrier != nil {
			// Locally durable; now clear the replication barrier (quorum
			// acks) before acknowledging.
			var qstart time.Time
			if sp != nil {
				qstart = time.Now()
			}
			ackErr = tx.db.commitBarrier(seq)
			if sp != nil {
				sp.RecordNs(span.StageQuorumWait, span.RootID, qstart.UnixNano(), time.Since(qstart).Nanoseconds(), seq)
			}
		}
	}
	trace := TxnTrace{
		TxnID:     tx.inner.ID(),
		CommitSeq: seq,
		Snapshot:  tx.inner.Snapshot(),
		Meta:      tx.meta,
		Stmts:     tx.stmts,
		Start:     tx.start,
		End:       time.Now(),
		Committed: err == nil,
	}
	if err != nil {
		if tx.db.hooks.OnAbort != nil {
			tx.db.hooks.OnAbort(trace)
		}
		return err
	}
	if tx.db.hooks.OnCommit != nil {
		tx.db.hooks.OnCommit(trace)
	}
	if durErr != nil {
		// The commit is applied in memory but its durability could not be
		// confirmed (sticky WAL failure). Surface it — callers must treat
		// the database as failed.
		return fmt.Errorf("db: commit %d not durable: %w", seq, durErr)
	}
	if ackErr != nil {
		// Applied and locally durable, but the replication barrier refused
		// the acknowledgement (no quorum, or the node was fenced mid-commit).
		return fmt.Errorf("db: commit %d: %w", seq, ackErr)
	}
	tx.db.maybeCheckpoint()
	return nil
}

// Rollback aborts the transaction. Rolling back an interactive transaction
// that already expired is a no-op.
func (tx *Tx) Rollback() {
	if tx.guard != nil {
		tx.guard.mu.Lock()
		defer tx.guard.mu.Unlock()
		if tx.guard.expired {
			return
		}
		tx.guard.timer.Stop()
	}
	tx.rollback()
}

func (tx *Tx) rollback() {
	if tx.inner.State() == txn.StateActive {
		tx.inner.Abort()
		if tx.db.hooks.OnAbort != nil {
			tx.db.hooks.OnAbort(TxnTrace{
				TxnID:    tx.inner.ID(),
				Snapshot: tx.inner.Snapshot(),
				Meta:     tx.meta,
				Stmts:    tx.stmts,
				Start:    tx.start,
				End:      time.Now(),
			})
		}
	}
}

// Flush forces buffered WAL writes to the OS (Disk mode).
func (db *DB) Flush() error {
	if db.log != nil {
		return db.log.Flush()
	}
	return nil
}

// NewFromStore wraps an existing MVCC store as an in-memory database. The
// TROD replay and retroactive-programming engines use it to build
// development databases from restored snapshots.
func NewFromStore(s *storage.Store) *DB {
	db := &DB{store: s, mode: Memory, plans: newPlanCache(0), ckptHist: newCheckpointHist()}
	s.SetDDLHook(db.ddlFired)
	return db
}

// CloneAt materialises a full copy of the database as of snapshot seq — the
// "full restore" path for development databases.
func (db *DB) CloneAt(seq uint64) (*DB, error) {
	s, err := db.store.CloneAt(seq)
	if err != nil {
		return nil, err
	}
	return NewFromStore(s), nil
}

// --- replication support -----------------------------------------------------

// ErrReadOnly reports a write or DDL statement rejected because the database
// is in read-only mode (a replica). It maps to a typed protocol error on the
// wire; writes must go to the primary.
var ErrReadOnly = errors.New("db: database is read-only (replica); writes must go to the primary")

// SetReadOnly switches the SQL layer into read-only mode: SELECTs run
// normally, everything else fails with ErrReadOnly. The replicated apply
// path (ApplyReplicatedCommit/ApplyReplicatedDDL/BootstrapFromSnapshot)
// bypasses the guard. Safe to flip on a live database (promotion turns a
// replica writable in place).
func (db *DB) SetReadOnly(ro bool) { db.readOnly.Store(ro) }

// ReadOnly reports whether the SQL layer rejects writes.
func (db *DB) ReadOnly() bool { return db.readOnly.Load() }

// ErrFenced reports a write rejected because the node's replication epoch is
// stale: a newer primary has been promoted, so nothing this node commits can
// survive on the cluster's timeline. Reads stay available.
var ErrFenced = errors.New("db: node is fenced (stale replication epoch); a newer primary exists")

// ErrQuorumUnavailable reports a write commit that was applied and locally
// durable but did not gather the configured replica-quorum acknowledgement
// in time. Its fate on the surviving timeline is unknown: if the primary
// dies now, a promoted replica may or may not carry it.
var ErrQuorumUnavailable = errors.New("db: commit not acknowledged by the replica quorum")

// SetFenced fences (or unfences, after promotion) the SQL layer: while
// fenced, writes and DDL fail with ErrFenced. Reads are served normally —
// a fenced node is still a consistent snapshot of its epoch's prefix.
func (db *DB) SetFenced(f bool) { db.fenced.Store(f) }

// Fenced reports whether the SQL layer rejects writes with ErrFenced.
func (db *DB) Fenced() bool { return db.fenced.Load() }

// SetCommitBarrier installs fn between local durability and commit
// acknowledgement: every write commit (autocommit, interactive, and
// ApplyCommit batch writers) calls fn(seq) after its WAL record is durable
// and reports fn's error as a failed acknowledgement. The replication
// source uses it to hold acks until a replica quorum confirms seq. Must be
// installed before the database serves concurrent traffic.
func (db *DB) SetCommitBarrier(fn func(seq uint64) error) { db.commitBarrier = fn }

// ApplyReplicatedCommit applies one commit record shipped from a replication
// primary: the record is force-applied in serialization order (exactly like
// WAL recovery, so indexes and version chains match the primary's), appended
// to this replica's own WAL for restart durability, and counted toward
// automatic checkpoint triggers. Records at or below the current sequence
// are duplicates from a reconnect or bootstrap overlap and are skipped.
// Callers must apply records from a single goroutine in stream order.
func (db *DB) ApplyReplicatedCommit(rec storage.CommitRecord) error {
	_, _, err := db.ApplyReplicatedCommitSpans(rec)
	return err
}

// ApplyReplicatedCommitSpans is ApplyReplicatedCommit, reporting how the
// apply's time split between the store apply and the replica's own WAL
// append — the replica-side repl_apply / repl_wal_append stages of a traced
// commit. Both are 0 for skipped duplicates. The clock lives here because
// storage and wal are in the deterministic set.
func (db *DB) ApplyReplicatedCommitSpans(rec storage.CommitRecord) (applyNs, walNs int64, err error) {
	if rec.Seq <= db.store.CurrentSeq() {
		return 0, 0, nil // overlap with already-applied state (resubscribe/bootstrap)
	}
	t0 := time.Now()
	if err := db.store.ApplyCommitted(rec); err != nil {
		return 0, 0, err
	}
	applyNs = time.Since(t0).Nanoseconds()
	if db.log != nil {
		// A checkpoint can rotate between the store apply and this append,
		// duplicating the record in the new log's tail; recovery skips
		// duplicate sequences, so that is harmless.
		t1 := time.Now()
		if err := db.log.AppendCommit(rec); err != nil {
			return applyNs, 0, fmt.Errorf("db: replicated commit %d not logged: %w", rec.Seq, err)
		}
		walNs = time.Since(t1).Nanoseconds()
	}
	db.maybeCheckpoint()
	return applyNs, walNs, nil
}

// ApplyReplicatedDDL applies one DDL statement shipped from a replication
// primary. Application is idempotent — a statement the replica already
// applied (reconnect overlap, bootstrap that captured the catalog) is
// skipped — because a replica resuming at commit sequence S cannot know
// which of the primary's DDL statements at position S it already received.
// Re-applying the full suffix converges: later statements overwrite earlier
// ones, and a table dropped-and-recreated at the same position is empty on
// the primary too (its rows arrive as later commits). The statement is
// persisted to the replica's WAL through the normal DDL hook.
func (db *DB) ApplyReplicatedDDL(stmt string) error {
	parsed, err := sqlparse.Parse(stmt)
	if err != nil {
		return fmt.Errorf("db: replicated DDL %q: %w", stmt, err)
	}
	switch s := parsed.(type) {
	case *sqlparse.CreateTable:
		s.IfNotExists = true
	case *sqlparse.DropTable:
		s.IfExists = true
	case *sqlparse.CreateIndex:
		for _, ix := range db.store.Indexes(s.Table) {
			if strings.EqualFold(ix.Name, s.Name) {
				return nil // already applied
			}
		}
	default:
		return fmt.Errorf("db: replicated statement %q is not DDL", stmt)
	}
	return db.applyDDL(parsed, false)
}

// BootstrapFromSnapshot replaces the database's entire state with a
// primary's snapshot (raw or gzip-compressed EncodeSnapshot bytes): the
// store's contents jump to the snapshot sequence, and in Disk mode the
// snapshot is persisted next to the WAL and the log is rotated to a
// checkpoint pointer, so a restart recovers straight into the bootstrapped
// state. Used by replicas that fell out of the primary's retained log
// window. Concurrent reads stay safe (the swap happens under the store
// lock); transactions begun before the swap observe empty tables.
func (db *DB) BootstrapFromSnapshot(data []byte) error {
	raw, err := storage.DecompressSnapshot(data)
	if err != nil {
		return err
	}
	st, err := storage.DecodeSnapshot(raw)
	if err != nil {
		return err
	}
	seq := st.CurrentSeq()
	if db.log == nil {
		db.store.ResetTo(st)
		return nil
	}
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	snapPath := fmt.Sprintf("%s.snap.%d", db.walPath, seq)
	if err := storage.WriteSnapshotFile(snapPath, raw); err != nil {
		return err
	}
	db.store.ResetTo(st)
	if err := db.log.Rotate(wal.Checkpoint{Seq: seq, Snapshot: filepath.Base(snapPath)}, nil); err != nil {
		return err
	}
	db.cleanupSnapshots(filepath.Base(snapPath))
	return nil
}
