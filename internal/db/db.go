// Package db is the database facade of the TROD stack: it wires the SQL
// front end, the executor, the transaction manager, the MVCC store, and the
// WAL into a single embeddable database with two modes — pure in-memory (the
// paper's VoltDB-like regime) and disk-backed with a write-ahead log (the
// Postgres-like regime).
//
// The facade is also where the TROD interposition layer hooks in: every
// transaction carries metadata (request ID, handler name, function name) and
// collects per-statement read provenance; a commit hook hands the complete
// transaction trace to the tracer (paper §3.4).
package db

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/schema"
	"repro/internal/sqlexec"
	"repro/internal/sqlparse"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/value"
	"repro/internal/wal"
)

// Mode selects the storage regime.
type Mode uint8

// Storage modes.
const (
	// Memory keeps all state in RAM with no durability; commits are
	// microsecond-scale. This models the paper's in-memory DBMS (VoltDB).
	Memory Mode = iota
	// Disk appends every DDL statement and commit to a WAL and recovers on
	// open. This models the paper's on-disk DBMS (Postgres).
	Disk
)

// Options configures Open.
type Options struct {
	Mode Mode
	// Path is the WAL file path (Disk mode only).
	Path string
	// Sync selects the WAL durability policy (Disk mode only). The default,
	// wal.SyncEachCommit, fsyncs per commit like a real OLTP database.
	Sync wal.SyncPolicy
}

// Rows is a query result set.
type Rows = sqlexec.Result

// TxMeta is the TROD interposition metadata attached to a transaction by
// the application runtime: which request and handler issued it (paper
// Table 1's ReqId / HandlerName / Metadata columns).
type TxMeta struct {
	ReqID    string
	Handler  string
	Func     string
	Workflow string
}

// ReadEvent is one read-provenance record: a base-table row a statement
// read. A nil Row marks a statement that scanned the table but matched
// nothing (the paper logs these as Read rows with NULL data columns).
type ReadEvent struct {
	Table string
	Row   value.Row
}

// StmtTrace is the trace of one statement inside a transaction.
type StmtTrace struct {
	Query string
	Reads []ReadEvent
}

// TxnTrace is everything the interposition layer learns about one finished
// transaction. Write provenance is delivered separately through the store's
// CDC feed (matched by TxnID).
type TxnTrace struct {
	TxnID     uint64
	CommitSeq uint64
	Snapshot  uint64
	Meta      TxMeta
	Stmts     []StmtTrace
	Start     time.Time
	End       time.Time
	Committed bool
}

// Hooks are the interposition points. All hooks are optional. OnCommit runs
// after a successful commit; OnAbort after an abort or failed commit.
type Hooks struct {
	OnCommit func(TxnTrace)
	OnAbort  func(TxnTrace)
}

// DB is an embedded SQL database.
type DB struct {
	store *storage.Store
	log   *wal.Log
	mode  Mode
	hooks Hooks

	stmtMu    sync.RWMutex
	stmtCache map[string]sqlparse.Statement

	// plans caches compiled physical plans keyed by (query text, schema
	// epoch); see plancache.go.
	plans *planCache

	// readTraceLimit caps read-provenance rows collected per statement
	// (0 = unlimited). The tracer sets it from its configuration to bound
	// request-path tracing cost on scan-heavy statements.
	readTraceLimit int

	closed bool
	mu     sync.Mutex
}

// Open creates or recovers a database.
func Open(opts Options) (*DB, error) {
	db := &DB{
		store:     storage.NewStore(),
		mode:      opts.Mode,
		stmtCache: make(map[string]sqlparse.Statement),
		plans:     newPlanCache(0),
	}
	if opts.Mode == Memory {
		return db, nil
	}
	if opts.Path == "" {
		return nil, errors.New("db: Disk mode requires Options.Path")
	}
	// Recover existing state before attaching the WAL hooks.
	err := wal.Replay(opts.Path, func(rec wal.Record) error {
		switch rec.Type {
		case wal.RecordDDL:
			stmt, err := sqlparse.Parse(rec.DDL)
			if err != nil {
				return fmt.Errorf("db: recovering DDL %q: %w", rec.DDL, err)
			}
			return db.applyDDL(stmt, true)
		case wal.RecordCommit:
			return db.store.ApplyCommitted(rec.Commit)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	log, err := wal.Open(opts.Path, opts.Sync)
	if err != nil {
		return nil, err
	}
	db.log = log
	db.store.SetDDLHook(func(stmt string) {
		// Errors here are surfaced on Close/Flush; DDL is rare and the log
		// write failing means the disk is gone.
		_ = log.AppendDDL(stmt)
	})
	db.store.SubscribeCDC(func(rec storage.CommitRecord) {
		_ = log.AppendCommit(rec)
	})
	return db, nil
}

// MustOpenMemory returns an in-memory database, panicking on error (which
// cannot happen for Memory mode); a convenience for examples and tests.
func MustOpenMemory() *DB {
	db, err := Open(Options{Mode: Memory})
	if err != nil {
		panic(err)
	}
	return db
}

// Close flushes and closes the WAL.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	db.closed = true
	if db.log != nil {
		return db.log.Close()
	}
	return nil
}

// Store exposes the underlying MVCC store to the TROD layers (tracer CDC
// subscription, replay time travel). Application code should not need it.
func (db *DB) Store() *storage.Store { return db.store }

// SetHooks installs the interposition hooks. Must be called before
// concurrent use.
func (db *DB) SetHooks(h Hooks) { db.hooks = h }

// SetReadTraceLimit caps the read-provenance rows collected per statement
// (0 = unlimited). Must be set before concurrent use.
func (db *DB) SetReadTraceLimit(n int) { db.readTraceLimit = n }

// stmtCacheCap bounds distinct parsed query texts (see planCache for why).
const stmtCacheCap = 4096

// parse returns the cached AST for query, parsing at most once per text.
// The cache is size-capped with a wholesale reset, mirroring the plan cache.
func (db *DB) parse(query string) (sqlparse.Statement, error) {
	db.stmtMu.RLock()
	stmt, ok := db.stmtCache[query]
	db.stmtMu.RUnlock()
	if ok {
		return stmt, nil
	}
	stmt, err := sqlparse.Parse(query)
	if err != nil {
		return nil, err
	}
	db.stmtMu.Lock()
	if len(db.stmtCache) >= stmtCacheCap {
		db.stmtCache = make(map[string]sqlparse.Statement, stmtCacheCap/4)
	}
	db.stmtCache[query] = stmt
	db.stmtMu.Unlock()
	return stmt, nil
}

// applyDDL executes a schema statement directly against the store.
func (db *DB) applyDDL(stmt sqlparse.Statement, recovering bool) error {
	switch s := stmt.(type) {
	case *sqlparse.CreateTable:
		tbl, err := TableFromAST(s)
		if err != nil {
			return err
		}
		return db.store.CreateTable(tbl, s.IfNotExists)
	case *sqlparse.CreateIndex:
		tbl := db.store.Table(s.Table)
		if tbl == nil {
			return fmt.Errorf("db: CREATE INDEX on unknown table %q", s.Table)
		}
		cols := make([]int, len(s.Columns))
		for i, c := range s.Columns {
			pos := tbl.ColumnIndex(c)
			if pos < 0 {
				return fmt.Errorf("db: index column %q not in table %q", c, s.Table)
			}
			cols[i] = pos
		}
		return db.store.CreateIndex(&schema.Index{Name: s.Name, Table: tbl.Name, Columns: cols, Unique: s.Unique})
	case *sqlparse.DropTable:
		return db.store.DropTable(s.Name, s.IfExists)
	default:
		return fmt.Errorf("db: %T is not DDL", stmt)
	}
}

// TableFromAST converts a parsed CREATE TABLE into a schema.Table.
func TableFromAST(ct *sqlparse.CreateTable) (*schema.Table, error) {
	cols := make([]schema.Column, len(ct.Columns))
	var pk []string
	for i, c := range ct.Columns {
		cols[i] = schema.Column{Name: c.Name, Type: c.Type, NotNull: c.NotNull}
		if c.PrimaryKey {
			pk = append(pk, c.Name)
		}
	}
	if len(ct.PrimaryKey) > 0 {
		if len(pk) > 0 {
			return nil, fmt.Errorf("db: table %q has both inline and table-level PRIMARY KEY", ct.Name)
		}
		pk = ct.PrimaryKey
	}
	return schema.NewTable(ct.Name, cols, pk)
}

func isDDL(stmt sqlparse.Statement) bool {
	switch stmt.(type) {
	case *sqlparse.CreateTable, *sqlparse.CreateIndex, *sqlparse.DropTable:
		return true
	}
	return false
}

func convertArgs(args []any) ([]value.Value, error) {
	vals := make([]value.Value, len(args))
	for i, a := range args {
		v, err := value.FromGo(a)
		if err != nil {
			return nil, fmt.Errorf("db: argument %d: %w", i+1, err)
		}
		vals[i] = v
	}
	return vals, nil
}

// Exec runs a statement in autocommit mode (its own transaction, retried on
// serialization conflict). DDL executes directly.
func (db *DB) Exec(query string, args ...any) (*Rows, error) {
	return db.exec(TxMeta{}, query, args...)
}

// ExecMeta is Exec with transaction metadata attached (used by the runtime
// for single-statement transactions).
func (db *DB) ExecMeta(meta TxMeta, query string, args ...any) (*Rows, error) {
	return db.exec(meta, query, args...)
}

func (db *DB) exec(meta TxMeta, query string, args ...any) (*Rows, error) {
	stmt, err := db.parse(query)
	if err != nil {
		return nil, err
	}
	if isDDL(stmt) {
		return &Rows{}, db.applyDDL(stmt, false)
	}
	switch stmt.(type) {
	case *sqlparse.Begin, *sqlparse.Commit, *sqlparse.Rollback:
		return nil, errors.New("db: use Begin()/Tx.Commit()/Tx.Rollback() for transaction control")
	}
	vals, err := convertArgs(args)
	if err != nil {
		return nil, err
	}
	var res *Rows
	err = db.runWithRetry(meta, func(tx *Tx) error {
		// Re-validate the plan per attempt: a cache hit is a lock-free-ish
		// map lookup, and concurrent DDL between attempts (epoch bump)
		// re-plans instead of running a stale catalog snapshot — matching
		// the pre-plan-cache behaviour of resolving tables on every attempt.
		plan, err := db.planFor(query, stmt)
		if err != nil {
			return err
		}
		res, err = tx.execPlanned(stmt, plan, query, vals)
		return err
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Query is Exec for read statements; provided for call-site clarity.
func (db *DB) Query(query string, args ...any) (*Rows, error) {
	return db.Exec(query, args...)
}

// ExecScript runs a semicolon-separated script of DDL/DML statements, each
// in autocommit mode. Useful for schema setup and workload seeding.
func (db *DB) ExecScript(script string) error {
	stmts, err := sqlparse.ParseAll(script)
	if err != nil {
		return err
	}
	for _, stmt := range stmts {
		if isDDL(stmt) {
			if err := db.applyDDL(stmt, false); err != nil {
				return err
			}
			continue
		}
		err := db.runWithRetry(TxMeta{}, func(tx *Tx) error {
			_, err := tx.execPlanned(stmt, nil, "", nil)
			return err
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// runWithRetry runs fn in a transaction, retrying on serialization conflict.
func (db *DB) runWithRetry(meta TxMeta, fn func(*Tx) error) error {
	for attempt := 0; attempt < txn.MaxRetries; attempt++ {
		tx := db.BeginMeta(meta)
		if err := fn(tx); err != nil {
			tx.Rollback()
			var conflict *storage.ConflictError
			if errors.As(err, &conflict) {
				continue
			}
			return err
		}
		err := tx.Commit()
		if err == nil {
			return nil
		}
		var conflict *storage.ConflictError
		if !errors.As(err, &conflict) {
			return err
		}
	}
	return fmt.Errorf("db: giving up after %d serialization retries", txn.MaxRetries)
}

// RunTx executes fn in a transaction with conflict retry; this is the
// application-facing transactional block (the runtime's ctx.Txn wraps it).
func (db *DB) RunTx(meta TxMeta, fn func(*Tx) error) error {
	return db.runWithRetry(meta, fn)
}

// Begin starts an explicit transaction.
func (db *DB) Begin() *Tx { return db.BeginMeta(TxMeta{}) }

// BeginMeta starts an explicit transaction carrying TROD metadata.
func (db *DB) BeginMeta(meta TxMeta) *Tx {
	return &Tx{
		db:    db,
		inner: txn.Begin(db.store),
		meta:  meta,
		start: time.Now(),
	}
}

// BeginAt starts a read-only transaction at a historical snapshot (time
// travel; used by the TROD replay engine).
func (db *DB) BeginAt(seq uint64) *Tx {
	return &Tx{db: db, inner: txn.BeginAt(db.store, seq), start: time.Now()}
}

// Tx is an explicit transaction handle.
type Tx struct {
	db    *DB
	inner *txn.Txn
	meta  TxMeta
	stmts []StmtTrace
	start time.Time
}

// ID returns the TROD transaction ID.
func (tx *Tx) ID() uint64 { return tx.inner.ID() }

// Snapshot returns the snapshot sequence the transaction reads at.
func (tx *Tx) Snapshot() uint64 { return tx.inner.Snapshot() }

// Meta returns the attached interposition metadata.
func (tx *Tx) Meta() TxMeta { return tx.meta }

// SetMeta replaces the interposition metadata.
func (tx *Tx) SetMeta(m TxMeta) { tx.meta = m }

// Inner exposes the low-level transaction (used by the TROD replay engine).
func (tx *Tx) Inner() *txn.Txn { return tx.inner }

// Exec runs one statement inside the transaction.
func (tx *Tx) Exec(query string, args ...any) (*Rows, error) {
	stmt, err := tx.db.parse(query)
	if err != nil {
		return nil, err
	}
	if isDDL(stmt) {
		return nil, errors.New("db: DDL is not allowed inside a transaction")
	}
	vals, err := convertArgs(args)
	if err != nil {
		return nil, err
	}
	var plan *sqlexec.Plan
	if isPlannable(stmt) {
		plan, err = tx.db.planFor(query, stmt)
		if err != nil {
			return nil, err
		}
	}
	return tx.execPlanned(stmt, plan, query, vals)
}

// Query is Exec for reads.
func (tx *Tx) Query(query string, args ...any) (*Rows, error) {
	return tx.Exec(query, args...)
}

// execPlanned runs one statement, preferring a cached physical plan; a nil
// plan falls back to transient compilation (script statements, transaction
// control).
func (tx *Tx) execPlanned(stmt sqlparse.Statement, plan *sqlexec.Plan, query string, vals []value.Value) (*Rows, error) {
	// Without interposition hooks there is no consumer for statement
	// traces; skip the bookkeeping entirely so an untraced deployment pays
	// nothing (the tracing-off baseline of experiment E1).
	traced := tx.db.hooks.OnCommit != nil || tx.db.hooks.OnAbort != nil
	ex := &sqlexec.Executor{
		Tx:    tx.inner,
		Store: tx.db.store,
		Args:  vals,
	}
	var trace StmtTrace
	if traced {
		trace.Query = query
		ex.OnRead = func(table string, row value.Row) {
			if limit := tx.db.readTraceLimit; limit > 0 && len(trace.Reads) >= limit {
				return
			}
			trace.Reads = append(trace.Reads, ReadEvent{Table: table, Row: row.Clone()})
		}
	}
	var res *Rows
	var err error
	if plan != nil {
		res, err = ex.Run(plan)
	} else {
		res, err = ex.Exec(stmt)
	}
	if err != nil {
		return nil, err
	}
	if !traced {
		return res, nil
	}
	// Record access markers for read statements that matched nothing, so
	// the provenance log shows "checked, found nothing" (paper Table 2).
	if len(trace.Reads) == 0 {
		for _, tbl := range statementTables(stmt) {
			trace.Reads = append(trace.Reads, ReadEvent{Table: tbl})
		}
	}
	tx.stmts = append(tx.stmts, trace)
	return res, nil
}

// statementTables lists the base tables a read/filter statement touches.
func statementTables(stmt sqlparse.Statement) []string {
	switch s := stmt.(type) {
	case *sqlparse.Select:
		if s.From == nil {
			return nil
		}
		out := []string{s.From.Table}
		for _, j := range s.Joins {
			out = append(out, j.Table.Table)
		}
		return out
	case *sqlparse.Update:
		return []string{s.Table}
	case *sqlparse.Delete:
		return []string{s.Table}
	default:
		return nil
	}
}

// Commit commits the transaction and fires the interposition hook.
func (tx *Tx) Commit() error {
	seq, err := tx.inner.Commit()
	trace := TxnTrace{
		TxnID:     tx.inner.ID(),
		CommitSeq: seq,
		Snapshot:  tx.inner.Snapshot(),
		Meta:      tx.meta,
		Stmts:     tx.stmts,
		Start:     tx.start,
		End:       time.Now(),
		Committed: err == nil,
	}
	if err != nil {
		if tx.db.hooks.OnAbort != nil {
			tx.db.hooks.OnAbort(trace)
		}
		return err
	}
	if tx.db.hooks.OnCommit != nil {
		tx.db.hooks.OnCommit(trace)
	}
	return nil
}

// Rollback aborts the transaction.
func (tx *Tx) Rollback() {
	if tx.inner.State() == txn.StateActive {
		tx.inner.Abort()
		if tx.db.hooks.OnAbort != nil {
			tx.db.hooks.OnAbort(TxnTrace{
				TxnID:    tx.inner.ID(),
				Snapshot: tx.inner.Snapshot(),
				Meta:     tx.meta,
				Stmts:    tx.stmts,
				Start:    tx.start,
				End:      time.Now(),
			})
		}
	}
}

// Flush forces buffered WAL writes to the OS (Disk mode).
func (db *DB) Flush() error {
	if db.log != nil {
		return db.log.Flush()
	}
	return nil
}

// NewFromStore wraps an existing MVCC store as an in-memory database. The
// TROD replay and retroactive-programming engines use it to build
// development databases from restored snapshots.
func NewFromStore(s *storage.Store) *DB {
	return &DB{store: s, mode: Memory, stmtCache: make(map[string]sqlparse.Statement), plans: newPlanCache(0)}
}

// CloneAt materialises a full copy of the database as of snapshot seq — the
// "full restore" path for development databases.
func (db *DB) CloneAt(seq uint64) (*DB, error) {
	s, err := db.store.CloneAt(seq)
	if err != nil {
		return nil, err
	}
	return NewFromStore(s), nil
}
