package db

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/wal"
)

func openDisk(t *testing.T, path string, opts ...func(*Options)) *DB {
	t.Helper()
	o := Options{Mode: Disk, Path: path, Sync: wal.SyncNever}
	for _, fn := range opts {
		fn(&o)
	}
	d, err := Open(o)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// findSnapshot returns the single snapshot file a checkpoint left next to
// the WAL.
func findSnapshot(t *testing.T, walPath string) string {
	t.Helper()
	snaps, err := filepath.Glob(walPath + ".snap.*")
	if err != nil || len(snaps) != 1 {
		t.Fatalf("snapshot files = %v, %v (want exactly one)", snaps, err)
	}
	return snaps[0]
}

func seedKV(t *testing.T, d *DB, from, to int) {
	t.Helper()
	for i := from; i <= to; i++ {
		if _, err := d.Exec(`INSERT INTO kv VALUES (?, ?)`, i, fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
	}
}

func countKV(t *testing.T, d *DB) int64 {
	t.Helper()
	rows, err := d.Query(`SELECT COUNT(*) FROM kv`)
	if err != nil {
		t.Fatal(err)
	}
	return rows.Rows[0][0].AsInt()
}

// TestCheckpointBoundsRecoveryToTail: after an explicit checkpoint, a
// reopened database recovers from the snapshot and replays only the commits
// that landed after it.
func TestCheckpointBoundsRecoveryToTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.wal")
	d := openDisk(t, path)
	if _, err := d.Exec(`CREATE TABLE kv (k INTEGER PRIMARY KEY, v TEXT)`); err != nil {
		t.Fatal(err)
	}
	seedKV(t, d, 1, 20)
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	seedKV(t, d, 21, 25) // the tail: 5 commits after the checkpoint
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	re := openDisk(t, path)
	defer re.Close()
	info := re.Recovery()
	if !info.SnapshotLoaded {
		t.Fatalf("snapshot not used: %+v", info)
	}
	if info.TailRecords != 5 {
		t.Errorf("tail records = %d, want 5", info.TailRecords)
	}
	if info.TotalRecords != 6 { // checkpoint pointer + 5 tail commits
		t.Errorf("total records = %d, want 6", info.TotalRecords)
	}
	if got := countKV(t, re); got != 25 {
		t.Errorf("recovered rows = %d, want 25", got)
	}
	// The recovered database keeps serving and checkpointing.
	seedKV(t, re, 26, 27)
	if err := re.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := countKV(t, re); got != 27 {
		t.Errorf("post-recovery rows = %d", got)
	}
}

// TestCheckpointPreservesDDLInTailEpoch: schema changes after a checkpoint
// live in the WAL tail and come back on recovery; schema changes before it
// come back through the snapshot.
func TestCheckpointPreservesSchemaAcrossGenerations(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.wal")
	d := openDisk(t, path)
	if _, err := d.Exec(`CREATE TABLE kv (k INTEGER PRIMARY KEY, v TEXT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Exec(`CREATE INDEX kv_v ON kv (v)`); err != nil {
		t.Fatal(err)
	}
	seedKV(t, d, 1, 5)
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint DDL rides in the tail.
	if _, err := d.Exec(`CREATE TABLE extra (id INTEGER PRIMARY KEY)`); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Exec(`INSERT INTO extra VALUES (1)`); err != nil {
		t.Fatal(err)
	}
	d.Close()

	re := openDisk(t, path)
	defer re.Close()
	if !re.Recovery().SnapshotLoaded {
		t.Fatalf("snapshot not used: %+v", re.Recovery())
	}
	if re.Store().Table("kv") == nil || re.Store().Table("extra") == nil {
		t.Fatal("tables lost across checkpointed recovery")
	}
	if ixs := re.Store().Indexes("kv"); len(ixs) != 1 || ixs[0].Name != "kv_v" {
		t.Fatalf("index lost: %+v", ixs)
	}
	rows, err := re.Query(`SELECT v FROM kv WHERE v = 'v3'`)
	if err != nil || len(rows.Rows) != 1 {
		t.Errorf("index query after recovery: %v, %v", rows, err)
	}
}

// TestCheckpointAutoTrigger: crossing the record threshold rotates the log
// without an explicit Checkpoint call, and recovery uses the snapshot.
func TestCheckpointAutoTrigger(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.wal")
	d := openDisk(t, path, func(o *Options) { o.CheckpointRecords = 10 })
	if _, err := d.Exec(`CREATE TABLE kv (k INTEGER PRIMARY KEY, v TEXT)`); err != nil {
		t.Fatal(err)
	}
	seedKV(t, d, 1, 40)
	st := d.WALStats()
	if st.Rotations == 0 {
		t.Fatalf("no automatic checkpoint after 41 records: %+v", st)
	}
	if st.RecordsSinceCheckpoint > 10 {
		t.Errorf("records since checkpoint = %d, want <= threshold", st.RecordsSinceCheckpoint)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	re := openDisk(t, path)
	defer re.Close()
	if !re.Recovery().SnapshotLoaded {
		t.Fatalf("recovery ignored auto checkpoint: %+v", re.Recovery())
	}
	if got := countKV(t, re); got != 40 {
		t.Errorf("recovered rows = %d, want 40", got)
	}
}

// TestCheckpointByteTriggerAndExplicitNoop covers the byte threshold and the
// Memory-mode no-op.
func TestCheckpointByteTrigger(t *testing.T) {
	path := filepath.Join(t.TempDir(), "b.wal")
	d := openDisk(t, path, func(o *Options) { o.CheckpointBytes = 512 })
	if _, err := d.Exec(`CREATE TABLE kv (k INTEGER PRIMARY KEY, v TEXT)`); err != nil {
		t.Fatal(err)
	}
	seedKV(t, d, 1, 60) // well past 512 bytes of records
	if d.WALStats().Rotations == 0 {
		t.Error("byte threshold never triggered")
	}
	d.Close()

	mem := MustOpenMemory()
	defer mem.Close()
	if err := mem.Checkpoint(); err != nil {
		t.Errorf("Memory-mode Checkpoint = %v, want nil no-op", err)
	}
}

// TestRecoveryFallsBackToOldGenerationOnCorruptSnapshot: when the snapshot
// is damaged after a rotation, recovery replays the retained .old generation
// plus the current log's tail — full replay instead of data loss.
func TestRecoveryFallsBackToOldGenerationOnCorruptSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.wal")
	d := openDisk(t, path)
	if _, err := d.Exec(`CREATE TABLE kv (k INTEGER PRIMARY KEY, v TEXT)`); err != nil {
		t.Fatal(err)
	}
	seedKV(t, d, 1, 10)
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	seedKV(t, d, 11, 12)
	d.Close()

	// Damage the snapshot.
	snap := findSnapshot(t, path)
	data, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(snap, data, 0o644); err != nil {
		t.Fatal(err)
	}

	re := openDisk(t, path)
	defer re.Close()
	info := re.Recovery()
	if info.SnapshotLoaded {
		t.Fatalf("corrupt snapshot was trusted: %+v", info)
	}
	if info.SnapshotErr == "" {
		t.Error("fallback reason not recorded")
	}
	if got := countKV(t, re); got != 12 {
		t.Errorf("fallback recovery rows = %d, want 12", got)
	}
}

// TestRecoveryFailsLoudlyWhenHistoryGone: corrupt snapshot AND no .old
// generation means the pre-checkpoint history is unreachable; Open must fail
// with a descriptive error, not return a silently truncated database.
func TestRecoveryFailsLoudlyWhenHistoryGone(t *testing.T) {
	path := filepath.Join(t.TempDir(), "l.wal")
	d := openDisk(t, path)
	if _, err := d.Exec(`CREATE TABLE kv (k INTEGER PRIMARY KEY, v TEXT)`); err != nil {
		t.Fatal(err)
	}
	seedKV(t, d, 1, 5)
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	seedKV(t, d, 6, 7)
	d.Close()

	snap := findSnapshot(t, path)
	data, _ := os.ReadFile(snap)
	data[len(data)/2] ^= 0xFF
	os.WriteFile(snap, data, 0o644)
	os.Remove(path + ".old")

	_, err := Open(Options{Mode: Disk, Path: path, Sync: wal.SyncNever})
	if err == nil {
		t.Fatal("recovery with lost history should fail")
	}
	if !strings.Contains(err.Error(), "snapshot") {
		t.Errorf("error does not explain the snapshot loss: %v", err)
	}
}

// TestRecoveryAfterInterruptedRotation: a crash between the rotation's two
// renames leaves no log but a complete .rotate file; Open repairs the swap
// and recovers normally.
func TestRecoveryAfterInterruptedRotation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "i.wal")
	d := openDisk(t, path)
	if _, err := d.Exec(`CREATE TABLE kv (k INTEGER PRIMARY KEY, v TEXT)`); err != nil {
		t.Fatal(err)
	}
	seedKV(t, d, 1, 8)
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	seedKV(t, d, 9, 10)
	d.Close()

	// Reconstruct the mid-rotation state: the current log becomes the
	// not-yet-renamed .rotate file and the .old generation moves back.
	if err := os.Rename(path, path+".rotate"); err != nil {
		t.Fatal(err)
	}
	// (path is now missing, exactly as between the two renames — the .old
	// file from the real rotation still holds the full history.)

	re := openDisk(t, path)
	defer re.Close()
	if got := countKV(t, re); got != 10 {
		t.Errorf("repaired recovery rows = %d, want 10", got)
	}
}

// TestCrashBetweenSnapshotWriteAndRotation: a checkpoint writes its
// snapshot but crashes before rotating the log. The freshly written snapshot
// must not disturb the one the log head still points to (snapshots are
// uniquely named per sequence), so recovery proceeds normally from the older
// snapshot plus the full tail — even after multiple earlier rotations, when
// no full-history generation exists any more.
func TestCrashBetweenSnapshotWriteAndRotation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.wal")
	d := openDisk(t, path)
	if _, err := d.Exec(`CREATE TABLE kv (k INTEGER PRIMARY KEY, v TEXT)`); err != nil {
		t.Fatal(err)
	}
	seedKV(t, d, 1, 10)
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	seedKV(t, d, 11, 20)
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// After two rotations, .old starts with a checkpoint pointer — there is
	// no full-history generation left.
	seedKV(t, d, 21, 25)
	// Simulate the crash window of a third checkpoint: the snapshot lands on
	// disk, the rotation never happens.
	data, seq := d.Store().EncodeSnapshot()
	orphan := fmt.Sprintf("%s.snap.%d", path, seq)
	if err := os.WriteFile(orphan, data, 0o644); err != nil {
		t.Fatal(err)
	}
	d.Close()

	re := openDisk(t, path)
	defer re.Close()
	info := re.Recovery()
	if !info.SnapshotLoaded {
		t.Fatalf("recovery lost the head snapshot to the orphan: %+v", info)
	}
	if got := countKV(t, re); got != 25 {
		t.Errorf("rows = %d, want 25", got)
	}
	// The next successful checkpoint (at a later sequence) sweeps the orphan.
	seedKV(t, re, 26, 27)
	if err := re.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Errorf("orphan snapshot %s not cleaned up", orphan)
	}
}

// TestRecoverySecondCheckpointGeneration: two checkpoints in sequence keep
// recovery bounded (the newest snapshot wins) and the .old generation holds
// the previous rotation's log, not the original full history.
func TestRecoverySecondCheckpointGeneration(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.wal")
	d := openDisk(t, path)
	if _, err := d.Exec(`CREATE TABLE kv (k INTEGER PRIMARY KEY, v TEXT)`); err != nil {
		t.Fatal(err)
	}
	seedKV(t, d, 1, 10)
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	seedKV(t, d, 11, 20)
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	seedKV(t, d, 21, 23)
	d.Close()

	re := openDisk(t, path)
	defer re.Close()
	info := re.Recovery()
	if !info.SnapshotLoaded || info.TailRecords != 3 {
		t.Fatalf("second-generation recovery info = %+v", info)
	}
	if got := countKV(t, re); got != 23 {
		t.Errorf("rows = %d, want 23", got)
	}
}
