package db

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/span"
	"repro/internal/sqlexec"
	"repro/internal/sqlparse"
)

// planCache caches parsed statements together with their compiled physical
// plans in ONE capped map keyed by query text (previously two parallel
// caches with separate caps and reset paths). Each entry holds the AST —
// always valid, since parsing is schema-independent — plus the plan and the
// storage schema epoch it was compiled under. A plan lookup whose epoch no
// longer matches is a miss, so any DDL (CREATE TABLE, CREATE INDEX, DROP
// TABLE) invalidates every cached plan lazily and the next execution
// re-plans against the new catalog; the statement half of the entry is
// reused as-is, saving the re-parse.
//
// The cache is size-capped with a wholesale reset on overflow: long-running
// traced applications that generate query text (string-built filters, ad-hoc
// debugging queries) must not grow memory without bound, and a full reset is
// cheaper and simpler than LRU bookkeeping on the per-statement hot path.
type planCache struct {
	mu      sync.RWMutex
	cap     int
	entries map[string]cacheEntry

	hits   atomic.Uint64
	misses atomic.Uint64
	resets atomic.Uint64
}

type cacheEntry struct {
	stmt  sqlparse.Statement
	plan  *sqlexec.Plan // nil until the statement is first compiled
	epoch uint64        // schema epoch the plan was compiled under
}

// defaultPlanCacheCap bounds distinct cached query texts. OLTP workloads use
// a small fixed statement set; anything near this limit is generated text.
const defaultPlanCacheCap = 4096

func newPlanCache(capacity int) *planCache {
	if capacity <= 0 {
		capacity = defaultPlanCacheCap
	}
	return &planCache{cap: capacity, entries: make(map[string]cacheEntry)}
}

// stmt returns the cached AST for query. Statement lookups do not count
// toward the plan hit/miss counters: PlanCacheStats reports plan reuse, and
// a statement hit with a stale plan still pays the compile.
func (c *planCache) stmt(query string) (sqlparse.Statement, bool) {
	c.mu.RLock()
	e, ok := c.entries[query]
	c.mu.RUnlock()
	if !ok {
		return nil, false
	}
	return e.stmt, true
}

// plan returns the cached compiled plan for query when it was compiled at
// epoch.
func (c *planCache) plan(query string, epoch uint64) (*sqlexec.Plan, bool) {
	c.mu.RLock()
	e, ok := c.entries[query]
	c.mu.RUnlock()
	if ok && e.plan != nil && e.epoch == epoch {
		c.hits.Add(1)
		return e.plan, true
	}
	c.misses.Add(1)
	return nil, false
}

// put stores or refreshes the entry for query — the single insert/reset path
// for both halves. A nil plan records the parse alone; a non-nil plan
// refreshes an existing entry in place (epoch invalidation re-plans without
// re-inserting). When a brand-new entry would exceed the capacity the cache
// resets wholesale, which also drops any stale-epoch plans.
func (c *planCache) put(query string, stmt sqlparse.Statement, plan *sqlexec.Plan, epoch uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, exists := c.entries[query]; exists {
		if plan == nil {
			return // parse raced a fuller entry; keep the compiled plan
		}
		e.plan = plan
		e.epoch = epoch
		c.entries[query] = e
		return
	}
	if len(c.entries) >= c.cap {
		c.entries = make(map[string]cacheEntry, c.cap/4)
		c.resets.Add(1)
	}
	c.entries[query] = cacheEntry{stmt: stmt, plan: plan, epoch: epoch}
}

func (c *planCache) size() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

// PlanCacheStats reports plan-cache effectiveness counters. Hits are
// executions that reused a compiled plan (no re-parse, no re-classification);
// misses include first compilations and epoch invalidations; resets counts
// wholesale evictions triggered by the size cap. Size counts cached query
// texts, including statements cached without a compiled plan (transaction
// control, DDL, script statements).
type PlanCacheStats struct {
	Hits   uint64
	Misses uint64
	Resets uint64
	Size   int
}

// PlanCacheStats returns the database's plan-cache counters.
func (db *DB) PlanCacheStats() PlanCacheStats {
	return PlanCacheStats{
		Hits:   db.plans.hits.Load(),
		Misses: db.plans.misses.Load(),
		Resets: db.plans.resets.Load(),
		Size:   db.plans.size(),
	}
}

// planFor returns the cached physical plan for (query, current schema epoch),
// compiling and caching it on miss. stmt must be the parsed form of query.
// A compile on miss is recorded as a plan_compile span into sp (nil-safe)
// under parent — the signal that separates cache-thrash latency (compile
// dominating) from execution latency in a trace.
func (db *DB) planFor(query string, stmt sqlparse.Statement, sp *span.Buf, parent uint32) (*sqlexec.Plan, error) {
	epoch := db.store.SchemaEpoch()
	if p, ok := db.plans.plan(query, epoch); ok {
		return p, nil
	}
	var t0 time.Time
	if sp != nil {
		t0 = time.Now()
	}
	p, err := sqlexec.Compile(stmt, db.store)
	if sp != nil {
		sp.Record(span.StagePlanCompile, parent, t0, time.Since(t0))
	}
	if err != nil {
		return nil, err
	}
	db.plans.put(query, stmt, p, epoch)
	return p, nil
}

// isPlannable reports whether a statement kind goes through the plan cache.
func isPlannable(stmt sqlparse.Statement) bool {
	switch stmt.(type) {
	case *sqlparse.Select, *sqlparse.Insert, *sqlparse.Update, *sqlparse.Delete:
		return true
	}
	return false
}
