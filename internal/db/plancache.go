package db

import (
	"sync"
	"sync/atomic"

	"repro/internal/sqlexec"
	"repro/internal/sqlparse"
)

// planCache caches compiled physical plans keyed by query text. Each entry
// records the storage schema epoch it was compiled under; a lookup whose
// epoch no longer matches is a miss, so any DDL (CREATE TABLE, CREATE INDEX,
// DROP TABLE) invalidates every cached plan lazily and the next execution
// re-plans against the new catalog.
//
// The cache is size-capped with a wholesale reset on overflow: long-running
// traced applications that generate query text (string-built filters, ad-hoc
// debugging queries) must not grow memory without bound, and a full reset is
// cheaper and simpler than LRU bookkeeping on the per-statement hot path.
type planCache struct {
	mu      sync.RWMutex
	cap     int
	entries map[string]planEntry

	hits   atomic.Uint64
	misses atomic.Uint64
	resets atomic.Uint64
}

type planEntry struct {
	epoch uint64
	plan  *sqlexec.Plan
}

// defaultPlanCacheCap bounds distinct cached query texts. OLTP workloads use
// a small fixed statement set; anything near this limit is generated text.
const defaultPlanCacheCap = 4096

func newPlanCache(capacity int) *planCache {
	if capacity <= 0 {
		capacity = defaultPlanCacheCap
	}
	return &planCache{cap: capacity, entries: make(map[string]planEntry)}
}

// get returns the cached plan for query when it was compiled at epoch.
func (c *planCache) get(query string, epoch uint64) (*sqlexec.Plan, bool) {
	c.mu.RLock()
	e, ok := c.entries[query]
	c.mu.RUnlock()
	if ok && e.epoch == epoch {
		c.hits.Add(1)
		return e.plan, true
	}
	c.misses.Add(1)
	return nil, false
}

// put stores a freshly compiled plan, resetting the cache wholesale when the
// capacity is reached (which also drops any stale-epoch entries).
func (c *planCache) put(query string, epoch uint64, p *sqlexec.Plan) {
	c.mu.Lock()
	if _, exists := c.entries[query]; !exists && len(c.entries) >= c.cap {
		c.entries = make(map[string]planEntry, c.cap/4)
		c.resets.Add(1)
	}
	c.entries[query] = planEntry{epoch: epoch, plan: p}
	c.mu.Unlock()
}

func (c *planCache) size() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

// PlanCacheStats reports plan-cache effectiveness counters. Hits are
// executions that reused a compiled plan (no re-parse, no re-classification);
// misses include first compilations and epoch invalidations; resets counts
// wholesale evictions triggered by the size cap.
type PlanCacheStats struct {
	Hits   uint64
	Misses uint64
	Resets uint64
	Size   int
}

// PlanCacheStats returns the database's plan-cache counters.
func (db *DB) PlanCacheStats() PlanCacheStats {
	return PlanCacheStats{
		Hits:   db.plans.hits.Load(),
		Misses: db.plans.misses.Load(),
		Resets: db.plans.resets.Load(),
		Size:   db.plans.size(),
	}
}

// planFor returns the cached physical plan for (query, current schema epoch),
// compiling and caching it on miss. stmt must be the parsed form of query.
func (db *DB) planFor(query string, stmt sqlparse.Statement) (*sqlexec.Plan, error) {
	epoch := db.store.SchemaEpoch()
	if p, ok := db.plans.get(query, epoch); ok {
		return p, nil
	}
	p, err := sqlexec.Compile(stmt, db.store)
	if err != nil {
		return nil, err
	}
	db.plans.put(query, epoch, p)
	return p, nil
}

// isPlannable reports whether a statement kind goes through the plan cache.
func isPlannable(stmt sqlparse.Statement) bool {
	switch stmt.(type) {
	case *sqlparse.Select, *sqlparse.Insert, *sqlparse.Update, *sqlparse.Delete:
		return true
	}
	return false
}
