package db

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/storage"
	"repro/internal/wal"
)

func openRetentionDB(t *testing.T, retain int) *DB {
	t.Helper()
	path := filepath.Join(t.TempDir(), "cdc.wal")
	d, err := Open(Options{Mode: Disk, Path: path, Sync: wal.SyncNever, CDCRetention: retain})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

// TestCDCRetentionReleasesPrefix pins the PR 3 follow-up: after a checkpoint
// the in-memory CDC log keeps only the configured retention window, while
// time travel (version chains) still answers correctly at any sequence and
// ChangesBetween stays complete inside the retained window.
func TestCDCRetentionReleasesPrefix(t *testing.T) {
	const retain = 8
	d := openRetentionDB(t, retain)
	if err := d.ExecScript(`CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)`); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Exec(`INSERT INTO t VALUES (1, 0)`); err != nil {
		t.Fatal(err)
	}
	// Build 40 commits of history on one row so every sequence has a
	// distinct visible value.
	for i := 1; i <= 40; i++ {
		if _, err := d.Exec(`UPDATE t SET v = ? WHERE id = 1`, i); err != nil {
			t.Fatal(err)
		}
	}
	seqBefore := d.Store().CurrentSeq()
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// The prefix is gone from memory...
	all := d.Store().ChangesBetween(0, seqBefore)
	if len(all) > retain {
		t.Fatalf("retention %d left %d records in memory", retain, len(all))
	}
	// ...but the retained suffix is complete and contiguous up to the head.
	if len(all) == 0 || all[len(all)-1].Seq != seqBefore {
		t.Fatalf("retained window must reach the checkpoint head: %+v", all)
	}
	for i := 1; i < len(all); i++ {
		if all[i].Seq != all[i-1].Seq+1 {
			t.Fatalf("retained window has a gap: %d -> %d", all[i-1].Seq, all[i].Seq)
		}
	}

	// Time travel inside (and before) the retained window still works:
	// version chains are untouched by CDC release.
	for _, seq := range []uint64{seqBefore, seqBefore - uint64(retain)/2, seqBefore - 20} {
		tx, err := d.BeginAt(seq)
		if err != nil {
			t.Fatal(err)
		}
		res, err := tx.Query(`SELECT v FROM t WHERE id = 1`)
		if err != nil {
			t.Fatal(err)
		}
		// Commit seq N (N >= 2) wrote v = N-1 (seq 1 is the insert of v=0).
		want := int64(seq - 1)
		if got := res.Rows[0][0].AsInt(); got != want {
			t.Fatalf("time travel at seq %d: v = %d, want %d", seq, got, want)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}

	// Recovery is unaffected: the WAL (not the in-memory CDC log) feeds it.
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(Options{Mode: Disk, Path: d.walPath, Sync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	res, err := re.Query(`SELECT v FROM t WHERE id = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].AsInt(); got != 40 {
		t.Fatalf("recovered v = %d, want 40", got)
	}
}

// TestCDCRetentionPinsActiveTxn asserts OCC soundness under retention: a
// transaction that spans a checkpoint pins its snapshot, the conflicting
// commit record survives the release, and the late commit still aborts with
// a serialization conflict instead of silently succeeding.
func TestCDCRetentionPinsActiveTxn(t *testing.T) {
	d := openRetentionDB(t, 1)
	if err := d.ExecScript(`CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)`); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Exec(`INSERT INTO t VALUES (1, 0)`); err != nil {
		t.Fatal(err)
	}

	// T1 reads row 1 at its snapshot and stays open across the checkpoint.
	t1 := d.Begin()
	if _, err := t1.Query(`SELECT v FROM t WHERE id = 1`); err != nil {
		t.Fatal(err)
	}

	// A conflicting commit lands, then lots of filler history, then a
	// checkpoint that would (retention 1) release everything — except T1's
	// pinned validation window.
	if _, err := d.Exec(`UPDATE t SET v = 99 WHERE id = 1`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := d.Exec(`INSERT INTO t VALUES (?, 0)`, 100+i); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// T1 now writes the row it read and must observe the conflict.
	if _, err := t1.Exec(`UPDATE t SET v = 1 WHERE id = 1`); err != nil {
		t.Fatal(err)
	}
	err := t1.Commit()
	var conflict *storage.ConflictError
	if !errors.As(err, &conflict) {
		t.Fatalf("commit spanning a retention checkpoint = %v, want ConflictError", err)
	}

	// With T1 finished the pin is gone; the next checkpoint releases fully.
	for i := 0; i < 4; i++ {
		if _, err := d.Exec(fmt.Sprintf(`INSERT INTO t VALUES (%d, 0)`, 200+i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	head := d.Store().CurrentSeq()
	if got := d.Store().ChangesBetween(0, head); len(got) > 1 {
		t.Fatalf("post-pin checkpoint should retain 1 record, kept %d", len(got))
	}
}
