package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/value"
)

// Parser is a recursive-descent parser over a token stream.
type Parser struct {
	toks         []Token
	pos          int
	placeholders int
	src          string
}

// Parse parses a single SQL statement (a trailing semicolon is allowed).
func Parse(src string) (Statement, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks, src: src}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.acceptSymbol(";")
	if !p.atEOF() {
		return nil, p.errorf("unexpected trailing input %q", p.peek().Text)
	}
	return stmt, nil
}

// ParseAll parses a semicolon-separated script.
func ParseAll(src string) ([]Statement, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks, src: src}
	var out []Statement
	for !p.atEOF() {
		if p.acceptSymbol(";") {
			continue
		}
		stmt, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		out = append(out, stmt)
		if !p.acceptSymbol(";") && !p.atEOF() {
			return nil, p.errorf("expected ';' between statements, got %q", p.peek().Text)
		}
	}
	return out, nil
}

// NumPlaceholders reports the number of `?` placeholders seen by the last
// parse on this parser.
func (p *Parser) NumPlaceholders() int { return p.placeholders }

// CountPlaceholders parses src and returns its placeholder count.
func CountPlaceholders(stmt Statement) int {
	count := 0
	visit := func(e Expr) {
		if ph, ok := e.(*Placeholder); ok {
			if ph.Index+1 > count {
				count = ph.Index + 1
			}
		}
	}
	walkStatement(stmt, visit)
	return count
}

// walkStatement visits every expression in the statement.
func walkStatement(stmt Statement, fn func(Expr)) {
	switch s := stmt.(type) {
	case *Insert:
		for _, row := range s.Rows {
			for _, e := range row {
				Walk(e, fn)
			}
		}
	case *Update:
		for _, a := range s.Set {
			Walk(a.Value, fn)
		}
		Walk(s.Where, fn)
	case *Delete:
		Walk(s.Where, fn)
	case *Select:
		for _, it := range s.Items {
			Walk(it.Expr, fn)
		}
		for _, j := range s.Joins {
			Walk(j.On, fn)
		}
		Walk(s.Where, fn)
		for _, g := range s.GroupBy {
			Walk(g, fn)
		}
		Walk(s.Having, fn)
		for _, o := range s.OrderBy {
			Walk(o.Expr, fn)
		}
		Walk(s.Limit, fn)
		Walk(s.Offset, fn)
	}
}

// --- token plumbing --------------------------------------------------------

func (p *Parser) peek() Token   { return p.toks[p.pos] }
func (p *Parser) atEOF() bool   { return p.peek().Kind == TokEOF }
func (p *Parser) next() Token   { t := p.toks[p.pos]; p.pos++; return t }
func (p *Parser) backup()       { p.pos-- }
func (p *Parser) save() int     { return p.pos }
func (p *Parser) restore(s int) { p.pos = s }

func (p *Parser) errorf(format string, args ...any) error {
	t := p.peek()
	return fmt.Errorf("sql: %s (near offset %d)", fmt.Sprintf(format, args...), t.Pos)
}

func (p *Parser) acceptKeyword(kw string) bool {
	if t := p.peek(); t.Kind == TokKeyword && t.Text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errorf("expected %s, got %q", kw, p.peek().Text)
	}
	return nil
}

func (p *Parser) acceptSymbol(sym string) bool {
	if t := p.peek(); t.Kind == TokSymbol && t.Text == sym {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expectSymbol(sym string) error {
	if !p.acceptSymbol(sym) {
		return p.errorf("expected %q, got %q", sym, p.peek().Text)
	}
	return nil
}

// expectIdent consumes an identifier. Unreserved keywords that commonly
// appear as column names in app schemas (e.g. KEY, INDEX as bare names) are
// not allowed — app schemas must avoid keywords.
func (p *Parser) expectIdent() (string, error) {
	t := p.peek()
	if t.Kind == TokIdent {
		p.pos++
		return t.Text, nil
	}
	return "", p.errorf("expected identifier, got %q", t.Text)
}

// --- statements ------------------------------------------------------------

func (p *Parser) parseStatement() (Statement, error) {
	t := p.peek()
	if t.Kind != TokKeyword {
		return nil, p.errorf("expected statement keyword, got %q", t.Text)
	}
	switch t.Text {
	case "CREATE":
		return p.parseCreate()
	case "DROP":
		return p.parseDrop()
	case "INSERT":
		return p.parseInsert()
	case "UPDATE":
		return p.parseUpdate()
	case "DELETE":
		return p.parseDelete()
	case "SELECT":
		return p.parseSelect()
	case "BEGIN":
		p.next()
		return &Begin{}, nil
	case "COMMIT":
		p.next()
		return &Commit{}, nil
	case "ROLLBACK":
		p.next()
		return &Rollback{}, nil
	default:
		return nil, p.errorf("unsupported statement %q", t.Text)
	}
}

func (p *Parser) parseCreate() (Statement, error) {
	p.next() // CREATE
	unique := p.acceptKeyword("UNIQUE")
	switch {
	case p.acceptKeyword("TABLE"):
		if unique {
			return nil, p.errorf("UNIQUE is not valid before TABLE")
		}
		return p.parseCreateTable()
	case p.acceptKeyword("INDEX"):
		return p.parseCreateIndex(unique)
	default:
		return nil, p.errorf("expected TABLE or INDEX after CREATE")
	}
}

func (p *Parser) parseCreateTable() (Statement, error) {
	ct := &CreateTable{}
	if p.acceptKeyword("IF") {
		if err := p.expectKeyword("NOT"); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
		ct.IfNotExists = true
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	ct.Name = name
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	for {
		if p.acceptKeyword("PRIMARY") {
			if err := p.expectKeyword("KEY"); err != nil {
				return nil, err
			}
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			cols, err := p.parseIdentList()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			ct.PrimaryKey = cols
		} else {
			col, err := p.parseColumnDef()
			if err != nil {
				return nil, err
			}
			ct.Columns = append(ct.Columns, col)
		}
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return ct, nil
}

func (p *Parser) parseColumnDef() (ColumnDef, error) {
	var def ColumnDef
	name, err := p.expectIdent()
	if err != nil {
		return def, err
	}
	def.Name = name
	t := p.next()
	if t.Kind != TokKeyword {
		return def, p.errorf("expected column type for %q, got %q", name, t.Text)
	}
	switch t.Text {
	case "INTEGER", "INT":
		def.Type = value.KindInt
	case "FLOAT", "REAL":
		def.Type = value.KindFloat
	case "TEXT", "VARCHAR":
		def.Type = value.KindText
		// Allow VARCHAR(255)-style length, which we ignore.
		if p.acceptSymbol("(") {
			if tk := p.next(); tk.Kind != TokInt {
				return def, p.errorf("expected length after VARCHAR(")
			}
			if err := p.expectSymbol(")"); err != nil {
				return def, err
			}
		}
	case "BOOL", "BOOLEAN":
		def.Type = value.KindBool
	case "BYTES", "BLOB":
		def.Type = value.KindBytes
	default:
		return def, p.errorf("unsupported column type %q", t.Text)
	}
	for {
		switch {
		case p.acceptKeyword("PRIMARY"):
			if err := p.expectKeyword("KEY"); err != nil {
				return def, err
			}
			def.PrimaryKey = true
		case p.acceptKeyword("NOT"):
			if err := p.expectKeyword("NULL"); err != nil {
				return def, err
			}
			def.NotNull = true
		default:
			return def, nil
		}
	}
}

func (p *Parser) parseCreateIndex(unique bool) (Statement, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	cols, err := p.parseIdentList()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return &CreateIndex{Name: name, Table: table, Columns: cols, Unique: unique}, nil
}

func (p *Parser) parseDrop() (Statement, error) {
	p.next() // DROP
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	dt := &DropTable{}
	if p.acceptKeyword("IF") {
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
		dt.IfExists = true
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	dt.Name = name
	return dt, nil
}

func (p *Parser) parseIdentList() ([]string, error) {
	var out []string
	for {
		id, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		out = append(out, id)
		if !p.acceptSymbol(",") {
			return out, nil
		}
	}
}

func (p *Parser) parseInsert() (Statement, error) {
	p.next() // INSERT
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	ins := &Insert{Table: table}
	if p.acceptSymbol("(") {
		cols, err := p.parseIdentList()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		ins.Columns = cols
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if !p.acceptSymbol(",") {
			break
		}
	}
	return ins, nil
}

func (p *Parser) parseUpdate() (Statement, error) {
	p.next() // UPDATE
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	upd := &Update{Table: table}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		upd.Set = append(upd.Set, Assignment{Column: col, Value: e})
		if !p.acceptSymbol(",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		upd.Where = w
	}
	return upd, nil
}

func (p *Parser) parseDelete() (Statement, error) {
	p.next() // DELETE
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	del := &Delete{Table: table}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		del.Where = w
	}
	return del, nil
}

func (p *Parser) parseSelect() (Statement, error) {
	p.next() // SELECT
	sel := &Select{}
	sel.Distinct = p.acceptKeyword("DISTINCT")

	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if !p.acceptSymbol(",") {
			break
		}
	}

	if p.acceptKeyword("FROM") {
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		sel.From = &ref
		for {
			switch {
			case p.acceptSymbol(","):
				// Comma join; the paper's queries use "FROM a AS x, b AS y
				// ON x.c = y.c" — an ON after a comma join attaches as the
				// join condition.
				jt, err := p.parseTableRef()
				if err != nil {
					return nil, err
				}
				jc := JoinClause{Kind: JoinCross, Table: jt}
				if p.acceptKeyword("ON") {
					on, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					jc.Kind = JoinInner
					jc.On = on
				}
				sel.Joins = append(sel.Joins, jc)
			case p.acceptKeyword("JOIN"):
				jc, err := p.parseJoinTail(JoinInner)
				if err != nil {
					return nil, err
				}
				sel.Joins = append(sel.Joins, jc)
			case p.acceptKeyword("INNER"):
				if err := p.expectKeyword("JOIN"); err != nil {
					return nil, err
				}
				jc, err := p.parseJoinTail(JoinInner)
				if err != nil {
					return nil, err
				}
				sel.Joins = append(sel.Joins, jc)
			case p.acceptKeyword("LEFT"):
				p.acceptKeyword("OUTER")
				if err := p.expectKeyword("JOIN"); err != nil {
					return nil, err
				}
				jc, err := p.parseJoinTail(JoinLeft)
				if err != nil {
					return nil, err
				}
				sel.Joins = append(sel.Joins, jc)
			case p.acceptKeyword("CROSS"):
				if err := p.expectKeyword("JOIN"); err != nil {
					return nil, err
				}
				jt, err := p.parseTableRef()
				if err != nil {
					return nil, err
				}
				sel.Joins = append(sel.Joins, JoinClause{Kind: JoinCross, Table: jt})
			default:
				goto fromDone
			}
		}
	}
fromDone:

	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = w
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = h
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Limit = e
	}
	if p.acceptKeyword("OFFSET") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Offset = e
	}
	return sel, nil
}

func (p *Parser) parseJoinTail(kind JoinKind) (JoinClause, error) {
	jt, err := p.parseTableRef()
	if err != nil {
		return JoinClause{}, err
	}
	if err := p.expectKeyword("ON"); err != nil {
		return JoinClause{}, err
	}
	on, err := p.parseExpr()
	if err != nil {
		return JoinClause{}, err
	}
	return JoinClause{Kind: kind, Table: jt, On: on}, nil
}

func (p *Parser) parseTableRef() (TableRef, error) {
	name, err := p.expectIdent()
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Table: name}
	if p.acceptKeyword("AS") {
		alias, err := p.expectIdent()
		if err != nil {
			return TableRef{}, err
		}
		ref.Alias = alias
	} else if t := p.peek(); t.Kind == TokIdent {
		p.pos++
		ref.Alias = t.Text
	}
	return ref, nil
}

func (p *Parser) parseSelectItem() (SelectItem, error) {
	if p.acceptSymbol("*") {
		return SelectItem{Star: true}, nil
	}
	// alias.* form.
	if t := p.peek(); t.Kind == TokIdent {
		mark := p.save()
		p.pos++
		if p.acceptSymbol(".") && p.acceptSymbol("*") {
			return SelectItem{Star: true, StarTable: t.Text}, nil
		}
		p.restore(mark)
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		alias, err := p.expectIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = alias
	} else if t := p.peek(); t.Kind == TokIdent {
		p.pos++
		item.Alias = t.Text
	}
	return item, nil
}

// --- expressions (precedence climbing) --------------------------------------
//
// Precedence, loosest first: OR, AND, NOT, comparison/IS/IN/LIKE/BETWEEN,
// additive (+ - ||), multiplicative (* / %), unary minus, primary.

func (p *Parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: OpOr, Left: left, Right: right}
	}
	return left, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: OpAnd, Left: left, Right: right}
	}
	return left, nil
}

func (p *Parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		inner, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: '!', Operand: inner}, nil
	}
	return p.parseComparison()
}

var comparisonOps = map[string]BinaryOp{
	"=": OpEq, "!=": OpNe, "<>": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
}

func (p *Parser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		op, isCmp := comparisonOps[t.Text]
		switch {
		case t.Kind == TokSymbol && isCmp:
			p.pos++
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: op, Left: left, Right: right}
		case t.Kind == TokKeyword && t.Text == "IS":
			p.pos++
			neg := p.acceptKeyword("NOT")
			if err := p.expectKeyword("NULL"); err != nil {
				return nil, err
			}
			left = &IsNullExpr{Operand: left, Negate: neg}
		case t.Kind == TokKeyword && (t.Text == "IN" || t.Text == "NOT"):
			neg := false
			if t.Text == "NOT" {
				// could be NOT IN / NOT LIKE / NOT BETWEEN
				mark := p.save()
				p.pos++
				switch {
				case p.acceptKeyword("IN"):
					neg = true
					e, err := p.parseInTail(left, neg)
					if err != nil {
						return nil, err
					}
					left = e
					continue
				case p.acceptKeyword("LIKE"):
					right, err := p.parseAdditive()
					if err != nil {
						return nil, err
					}
					left = &UnaryExpr{Op: '!', Operand: &BinaryExpr{Op: OpLike, Left: left, Right: right}}
					continue
				case p.acceptKeyword("BETWEEN"):
					e, err := p.parseBetweenTail(left, true)
					if err != nil {
						return nil, err
					}
					left = e
					continue
				default:
					p.restore(mark)
					return left, nil
				}
			}
			p.pos++ // IN
			e, err := p.parseInTail(left, neg)
			if err != nil {
				return nil, err
			}
			left = e
		case t.Kind == TokKeyword && t.Text == "LIKE":
			p.pos++
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: OpLike, Left: left, Right: right}
		case t.Kind == TokKeyword && t.Text == "BETWEEN":
			p.pos++
			e, err := p.parseBetweenTail(left, false)
			if err != nil {
				return nil, err
			}
			left = e
		default:
			return left, nil
		}
	}
}

func (p *Parser) parseInTail(operand Expr, neg bool) (Expr, error) {
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	var list []Expr
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		list = append(list, e)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return &InExpr{Operand: operand, List: list, Negate: neg}, nil
}

func (p *Parser) parseBetweenTail(operand Expr, neg bool) (Expr, error) {
	lo, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AND"); err != nil {
		return nil, err
	}
	hi, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	return &BetweenExpr{Operand: operand, Lo: lo, Hi: hi, Negate: neg}, nil
}

func (p *Parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind != TokSymbol {
			return left, nil
		}
		var op BinaryOp
		switch t.Text {
		case "+":
			op = OpAdd
		case "-":
			op = OpSub
		case "||":
			op = OpConcat
		default:
			return left, nil
		}
		p.pos++
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
}

func (p *Parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind != TokSymbol {
			return left, nil
		}
		var op BinaryOp
		switch t.Text {
		case "*":
			op = OpMul
		case "/":
			op = OpDiv
		case "%":
			op = OpMod
		default:
			return left, nil
		}
		p.pos++
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	if p.acceptSymbol("-") {
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold negative literals immediately.
		if lit, ok := inner.(*Literal); ok {
			switch lit.Val.Kind() {
			case value.KindInt:
				return &Literal{Val: value.Int(-lit.Val.AsInt())}, nil
			case value.KindFloat:
				return &Literal{Val: value.Float(-lit.Val.AsFloat())}, nil
			}
		}
		return &UnaryExpr{Op: '-', Operand: inner}, nil
	}
	if p.acceptSymbol("+") {
		return p.parseUnary()
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokInt:
		p.pos++
		iv, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad integer literal %q", t.Text)
		}
		return &Literal{Val: value.Int(iv)}, nil
	case TokFloat:
		p.pos++
		fv, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, p.errorf("bad float literal %q", t.Text)
		}
		return &Literal{Val: value.Float(fv)}, nil
	case TokString:
		p.pos++
		return &Literal{Val: value.Text(t.Text)}, nil
	case TokPlaceholder:
		p.pos++
		ph := &Placeholder{Index: p.placeholders}
		p.placeholders++
		return ph, nil
	case TokKeyword:
		switch t.Text {
		case "NULL":
			p.pos++
			return &Literal{Val: value.Null}, nil
		case "TRUE":
			p.pos++
			return &Literal{Val: value.Bool(true)}, nil
		case "FALSE":
			p.pos++
			return &Literal{Val: value.Bool(false)}, nil
		case "COUNT":
			// COUNT is a keyword so it can be used even though aggregate
			// names are otherwise ordinary identifiers.
			p.pos++
			return p.parseFuncTail("COUNT")
		}
		return nil, p.errorf("unexpected keyword %q in expression", t.Text)
	case TokIdent:
		p.pos++
		// Function call?
		if p.peekSymbol("(") {
			return p.parseFuncTail(strings.ToUpper(t.Text))
		}
		// Qualified column?
		if p.acceptSymbol(".") {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Table: t.Text, Column: col}, nil
		}
		return &ColumnRef{Column: t.Text}, nil
	case TokSymbol:
		if t.Text == "(" {
			p.pos++
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errorf("unexpected token %q in expression", t.Text)
}

func (p *Parser) peekSymbol(sym string) bool {
	t := p.peek()
	return t.Kind == TokSymbol && t.Text == sym
}

func (p *Parser) parseFuncTail(name string) (Expr, error) {
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	fc := &FuncCall{Name: name}
	if p.acceptSymbol("*") {
		fc.Star = true
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return fc, nil
	}
	fc.Distinct = p.acceptKeyword("DISTINCT")
	if p.acceptSymbol(")") {
		return fc, nil
	}
	for {
		a, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		fc.Args = append(fc.Args, a)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return fc, nil
}
