package sqlparse

import (
	"strings"
	"testing"

	"repro/internal/value"
)

func mustParse(t *testing.T, src string) Statement {
	t.Helper()
	stmt, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return stmt
}

func TestLexerBasics(t *testing.T) {
	toks, err := Tokenize("SELECT a, 'it''s' FROM t WHERE x >= 1.5 -- comment\n AND y != ?")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokenKind
	var texts []string
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
		texts = append(texts, tok.Text)
	}
	want := []string{"SELECT", "a", ",", "it's", "FROM", "t", "WHERE", "x", ">=", "1.5", "AND", "y", "!=", "?", ""}
	if len(texts) != len(want) {
		t.Fatalf("token count = %d, want %d (%v)", len(texts), len(want), texts)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, texts[i], want[i])
		}
	}
	if kinds[3] != TokString {
		t.Error("escaped string literal not lexed as string")
	}
}

func TestLexerBlockCommentAndQuotedIdent(t *testing.T) {
	toks, err := Tokenize("/* hi */ SELECT \"weird name\", `tick`")
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].Kind != TokIdent || toks[1].Text != "weird name" {
		t.Errorf("quoted ident = %+v", toks[1])
	}
	if toks[3].Kind != TokIdent || toks[3].Text != "tick" {
		t.Errorf("backtick ident = %+v", toks[3])
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{"'unterminated", "\"unterminated", "@"} {
		if _, err := Tokenize(src); err == nil {
			t.Errorf("Tokenize(%q) should fail", src)
		}
	}
}

func TestLexerFloatForms(t *testing.T) {
	toks, err := Tokenize("1.5 .25 2e3 1E-2")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if toks[i].Kind != TokFloat {
			t.Errorf("token %q should be float", toks[i].Text)
		}
	}
}

func TestParseCreateTable(t *testing.T) {
	stmt := mustParse(t, `CREATE TABLE IF NOT EXISTS forum_sub (
		userId TEXT NOT NULL, forum TEXT, hits INTEGER, score FLOAT,
		ok BOOL, payload BYTES, PRIMARY KEY (userId, forum))`)
	ct := stmt.(*CreateTable)
	if !ct.IfNotExists || ct.Name != "forum_sub" {
		t.Errorf("header parsed wrong: %+v", ct)
	}
	if len(ct.Columns) != 6 {
		t.Fatalf("columns = %d", len(ct.Columns))
	}
	wantKinds := []value.Kind{value.KindText, value.KindText, value.KindInt, value.KindFloat, value.KindBool, value.KindBytes}
	for i, k := range wantKinds {
		if ct.Columns[i].Type != k {
			t.Errorf("column %d type = %v, want %v", i, ct.Columns[i].Type, k)
		}
	}
	if !ct.Columns[0].NotNull || ct.Columns[1].NotNull {
		t.Error("NOT NULL flags wrong")
	}
	if len(ct.PrimaryKey) != 2 || ct.PrimaryKey[0] != "userId" {
		t.Errorf("primary key = %v", ct.PrimaryKey)
	}
}

func TestParseCreateTableInlinePK(t *testing.T) {
	ct := mustParse(t, "CREATE TABLE t (id INTEGER PRIMARY KEY, name VARCHAR(255))").(*CreateTable)
	if !ct.Columns[0].PrimaryKey {
		t.Error("inline PRIMARY KEY not parsed")
	}
	if ct.Columns[1].Type != value.KindText {
		t.Error("VARCHAR(n) should map to TEXT")
	}
}

func TestParseCreateIndexAndDrop(t *testing.T) {
	ci := mustParse(t, "CREATE UNIQUE INDEX idx ON t (a, b)").(*CreateIndex)
	if !ci.Unique || ci.Name != "idx" || ci.Table != "t" || len(ci.Columns) != 2 {
		t.Errorf("create index = %+v", ci)
	}
	dt := mustParse(t, "DROP TABLE IF EXISTS t").(*DropTable)
	if !dt.IfExists || dt.Name != "t" {
		t.Errorf("drop = %+v", dt)
	}
}

func TestParseInsert(t *testing.T) {
	ins := mustParse(t, "INSERT INTO t (a, b) VALUES (1, 'x'), (?, NULL)").(*Insert)
	if ins.Table != "t" || len(ins.Columns) != 2 || len(ins.Rows) != 2 {
		t.Fatalf("insert = %+v", ins)
	}
	if lit := ins.Rows[0][0].(*Literal); lit.Val.AsInt() != 1 {
		t.Error("first literal wrong")
	}
	if _, ok := ins.Rows[1][0].(*Placeholder); !ok {
		t.Error("placeholder not parsed")
	}
	if CountPlaceholders(ins) != 1 {
		t.Errorf("placeholder count = %d", CountPlaceholders(ins))
	}
}

func TestParseUpdateDelete(t *testing.T) {
	upd := mustParse(t, "UPDATE t SET a = a + 1, b = ? WHERE id = 3").(*Update)
	if len(upd.Set) != 2 || upd.Where == nil {
		t.Errorf("update = %+v", upd)
	}
	del := mustParse(t, "DELETE FROM t WHERE x IS NOT NULL").(*Delete)
	if del.Where == nil {
		t.Error("delete where missing")
	}
	if mustParse(t, "DELETE FROM t").(*Delete).Where != nil {
		t.Error("bare delete should have nil where")
	}
}

func TestParsePaperDebuggingQuery(t *testing.T) {
	// The exact query from §3.3 of the paper (comma join with ON).
	src := `SELECT Timestamp, ReqId, HandlerName
		FROM Executions as E, ForumEvents as F
		ON E.TxnId = F.TxnId
		WHERE F.UserId = 'U1' AND F.Forum = 'F2'
		AND F.Type = 'Insert'
		ORDER BY Timestamp ASC;`
	sel := mustParse(t, src).(*Select)
	if sel.From.Table != "Executions" || sel.From.Alias != "E" {
		t.Errorf("from = %+v", sel.From)
	}
	if len(sel.Joins) != 1 || sel.Joins[0].Table.Alias != "F" || sel.Joins[0].On == nil {
		t.Fatalf("joins = %+v", sel.Joins)
	}
	if sel.Joins[0].Kind != JoinInner {
		t.Error("comma join with ON should be inner join")
	}
	if len(sel.OrderBy) != 1 || sel.OrderBy[0].Desc {
		t.Errorf("order by = %+v", sel.OrderBy)
	}
	if len(sel.Items) != 3 {
		t.Errorf("items = %d", len(sel.Items))
	}
}

func TestParseSelectFull(t *testing.T) {
	src := `SELECT DISTINCT u.name AS n, COUNT(*) AS c, SUM(x.amount)
		FROM users u JOIN orders AS x ON u.id = x.uid
		LEFT JOIN extras e ON e.oid = x.id
		WHERE u.age BETWEEN 18 AND 65 AND u.city IN ('a','b') AND u.name LIKE 'A%'
		GROUP BY u.name HAVING COUNT(*) > 1
		ORDER BY c DESC, n LIMIT 10 OFFSET 5`
	sel := mustParse(t, src).(*Select)
	if !sel.Distinct {
		t.Error("distinct missing")
	}
	if len(sel.Joins) != 2 || sel.Joins[1].Kind != JoinLeft {
		t.Errorf("joins = %+v", sel.Joins)
	}
	if len(sel.GroupBy) != 1 || sel.Having == nil {
		t.Error("group by / having missing")
	}
	if sel.Limit == nil || sel.Offset == nil {
		t.Error("limit / offset missing")
	}
	if len(sel.OrderBy) != 2 || !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc {
		t.Errorf("order by = %+v", sel.OrderBy)
	}
	if sel.Items[0].Alias != "n" {
		t.Errorf("alias = %q", sel.Items[0].Alias)
	}
	if !HasAggregate(sel.Items[1].Expr) {
		t.Error("COUNT(*) should be an aggregate")
	}
}

func TestParseStarForms(t *testing.T) {
	sel := mustParse(t, "SELECT * FROM t").(*Select)
	if !sel.Items[0].Star {
		t.Error("* not parsed")
	}
	sel = mustParse(t, "SELECT t.*, a FROM t").(*Select)
	if !sel.Items[0].Star || sel.Items[0].StarTable != "t" {
		t.Errorf("t.* = %+v", sel.Items[0])
	}
}

func TestParseExprForms(t *testing.T) {
	sel := mustParse(t, "SELECT -3, +4, 1 + 2 * 3, (1+2)*3, 'a' || 'b', NOT TRUE, x NOT IN (1), y NOT LIKE 'a', z NOT BETWEEN 1 AND 2 FROM t").(*Select)
	if lit := sel.Items[0].Expr.(*Literal); lit.Val.AsInt() != -3 {
		t.Error("negative literal not folded")
	}
	if lit := sel.Items[1].Expr.(*Literal); lit.Val.AsInt() != 4 {
		t.Error("unary plus not handled")
	}
	// precedence check via rendering
	if got := sel.Items[2].Expr.String(); got != "(1 + (2 * 3))" {
		t.Errorf("precedence render = %s", got)
	}
	if got := sel.Items[3].Expr.String(); got != "((1 + 2) * 3)" {
		t.Errorf("paren render = %s", got)
	}
	if in := sel.Items[6].Expr.(*InExpr); !in.Negate {
		t.Error("NOT IN not parsed")
	}
	if _, ok := sel.Items[7].Expr.(*UnaryExpr); !ok {
		t.Error("NOT LIKE should wrap in NOT")
	}
	if bt := sel.Items[8].Expr.(*BetweenExpr); !bt.Negate {
		t.Error("NOT BETWEEN not parsed")
	}
}

func TestParseTransactionControl(t *testing.T) {
	if _, ok := mustParse(t, "BEGIN").(*Begin); !ok {
		t.Error("BEGIN")
	}
	if _, ok := mustParse(t, "COMMIT").(*Commit); !ok {
		t.Error("COMMIT")
	}
	if _, ok := mustParse(t, "ROLLBACK").(*Rollback); !ok {
		t.Error("ROLLBACK")
	}
}

func TestParseAll(t *testing.T) {
	stmts, err := ParseAll("CREATE TABLE a (x INTEGER); INSERT INTO a VALUES (1); SELECT * FROM a;")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("stmts = %d", len(stmts))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"FROBNICATE",
		"SELECT",
		"SELECT FROM",
		"CREATE TABLE (x INTEGER)",
		"CREATE TABLE t (x WIBBLE)",
		"CREATE UNIQUE TABLE t (x INTEGER)",
		"INSERT INTO t VALUES 1",
		"INSERT t VALUES (1)",
		"UPDATE t SET",
		"DELETE t",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t GROUP",
		"SELECT a FROM t ORDER",
		"SELECT 1 +",
		"SELECT (1",
		"SELECT x IN 1 FROM t",
		"SELECT a b c FROM t",
		"SELECT a FROM t; garbage",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestExprStringRendering(t *testing.T) {
	sel := mustParse(t, "SELECT x IS NULL, y IS NOT NULL, z IN (1,2), w BETWEEN 1 AND 2, COUNT(*), MAX(DISTINCT a), f(1,2) FROM t").(*Select)
	wants := []string{
		"(x IS NULL)", "(y IS NOT NULL)", "(z IN (1, 2))",
		"(w BETWEEN 1 AND 2)", "COUNT(*)", "MAX(DISTINCT a)", "F(1, 2)",
	}
	for i, w := range wants {
		if got := sel.Items[i].Expr.String(); got != w {
			t.Errorf("item %d render = %q, want %q", i, got, w)
		}
	}
}

func TestWalkCoversAllNodes(t *testing.T) {
	sel := mustParse(t, "SELECT COUNT(x), a+b, NOT c, d IS NULL, e IN (1,f), g BETWEEN h AND i FROM t WHERE q = 1").(*Select)
	var names []string
	for _, it := range sel.Items {
		Walk(it.Expr, func(e Expr) {
			if c, ok := e.(*ColumnRef); ok {
				names = append(names, c.Column)
			}
		})
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"x", "a", "b", "c", "d", "e", "f", "g", "h", "i"} {
		if !strings.Contains(joined, want) {
			t.Errorf("Walk missed column %q (got %s)", want, joined)
		}
	}
}

func TestHasAggregateNegative(t *testing.T) {
	sel := mustParse(t, "SELECT a + b, UPPER(c) FROM t").(*Select)
	for i, it := range sel.Items {
		if HasAggregate(it.Expr) {
			t.Errorf("item %d should not be aggregate", i)
		}
	}
}
