package sqlparse

import (
	"math/rand"
	"strings"
	"testing"
)

// TestParserNeverPanics throws random token soup at the parser: every input
// must return cleanly (parse or error), never panic. This is the fuzz-style
// robustness guarantee the db facade relies on for untrusted query text
// (e.g. from cmd/trod-query).
func TestParserNeverPanics(t *testing.T) {
	fragments := []string{
		"SELECT", "FROM", "WHERE", "INSERT", "INTO", "VALUES", "UPDATE",
		"SET", "DELETE", "CREATE", "TABLE", "INDEX", "JOIN", "LEFT", "ON",
		"GROUP", "BY", "ORDER", "HAVING", "LIMIT", "OFFSET", "AND", "OR",
		"NOT", "NULL", "IS", "IN", "LIKE", "BETWEEN", "AS", "DISTINCT",
		"PRIMARY", "KEY", "COUNT", "(", ")", ",", "*", "+", "-", "/", "%",
		"=", "!=", "<", "<=", ">", ">=", ".", ";", "?", "||",
		"t", "a", "b", "users", "id", "'str'", "'it''s'", "42", "1.5",
		"TRUE", "FALSE", "INTEGER", "TEXT", "x9", "_u",
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 5000; trial++ {
		n := 1 + rng.Intn(20)
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteString(fragments[rng.Intn(len(fragments))])
			sb.WriteByte(' ')
		}
		src := sb.String()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", src, r)
				}
			}()
			_, _ = Parse(src)
			_, _ = ParseAll(src)
		}()
	}
}

// TestLexerNeverPanics runs arbitrary bytes through the tokenizer.
func TestLexerNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 5000; trial++ {
		b := make([]byte, rng.Intn(40))
		rng.Read(b)
		src := string(b)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", src, r)
				}
			}()
			_, _ = Tokenize(src)
		}()
	}
}

// TestDeepNestingDoesNotBlowUp guards the recursive-descent depth on
// pathological inputs (very deep parenthesisation).
func TestDeepNestingDoesNotBlowUp(t *testing.T) {
	depth := 2000
	expr := strings.Repeat("(", depth) + "1" + strings.Repeat(")", depth)
	if _, err := Parse("SELECT " + expr); err != nil {
		t.Fatalf("deep nesting should parse: %v", err)
	}
	// Unbalanced version errors cleanly.
	if _, err := Parse("SELECT " + strings.Repeat("(", depth) + "1"); err == nil {
		t.Fatal("unbalanced parens should fail")
	}
}

// TestCommentEdgeCases pins comment lexing behaviour.
func TestCommentEdgeCases(t *testing.T) {
	cases := []string{
		"SELECT 1 -- trailing",
		"-- leading\nSELECT 1",
		"SELECT /* inline */ 1",
		"SELECT 1 /* unterminated",
		"/**/SELECT 1",
	}
	for _, src := range cases {
		if _, err := Parse(src); err != nil {
			t.Errorf("Parse(%q): %v", src, err)
		}
	}
}
