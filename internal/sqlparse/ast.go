package sqlparse

import (
	"fmt"
	"strings"

	"repro/internal/value"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// Expr is any SQL expression node.
type Expr interface {
	expr()
	// String renders the expression in SQL-ish syntax for diagnostics and
	// provenance logging.
	String() string
}

// ---------------------------------------------------------------------------
// Statements

// ColumnDef is one column in a CREATE TABLE.
type ColumnDef struct {
	Name       string
	Type       value.Kind
	PrimaryKey bool
	NotNull    bool
}

// CreateTable is CREATE TABLE [IF NOT EXISTS] name (...).
type CreateTable struct {
	Name        string
	IfNotExists bool
	Columns     []ColumnDef
	PrimaryKey  []string // explicit PRIMARY KEY (a, b) clause, if any
}

// CreateIndex is CREATE [UNIQUE] INDEX name ON table (cols).
type CreateIndex struct {
	Name    string
	Table   string
	Columns []string
	Unique  bool
}

// DropTable is DROP TABLE [IF EXISTS] name.
type DropTable struct {
	Name     string
	IfExists bool
}

// Insert is INSERT INTO t [(cols)] VALUES (...), (...).
type Insert struct {
	Table   string
	Columns []string
	Rows    [][]Expr
}

// Update is UPDATE t SET col = expr, ... [WHERE expr].
type Update struct {
	Table string
	Set   []Assignment
	Where Expr // nil when absent
}

// Assignment is one SET clause element.
type Assignment struct {
	Column string
	Value  Expr
}

// Delete is DELETE FROM t [WHERE expr].
type Delete struct {
	Table string
	Where Expr
}

// JoinKind distinguishes join operators.
type JoinKind uint8

// Join kinds.
const (
	JoinInner JoinKind = iota
	JoinLeft
	JoinCross
)

// TableRef is one table in a FROM clause with an optional alias.
type TableRef struct {
	Table string
	Alias string // "" when none; effective name is Alias or Table
}

// EffectiveName returns the name by which columns reference this table.
func (t TableRef) EffectiveName() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Table
}

// JoinClause is one joined table with its condition.
type JoinClause struct {
	Kind  JoinKind
	Table TableRef
	On    Expr // nil for CROSS or comma joins without ON
}

// SelectItem is one projection; Star marks `*` or `alias.*`.
type SelectItem struct {
	Expr      Expr
	Alias     string
	Star      bool
	StarTable string // for alias.*
}

// OrderItem is one ORDER BY element.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// Select is a full SELECT statement.
type Select struct {
	Distinct bool
	Items    []SelectItem
	From     *TableRef    // nil for FROM-less selects (SELECT 1+1)
	Joins    []JoinClause // joined tables in order
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    Expr // nil when absent
	Offset   Expr
}

// Begin, Commit, Rollback are transaction-control statements.
type (
	// Begin starts an explicit transaction.
	Begin struct{}
	// Commit commits an explicit transaction.
	Commit struct{}
	// Rollback aborts an explicit transaction.
	Rollback struct{}
)

func (*CreateTable) stmt() {}
func (*CreateIndex) stmt() {}
func (*DropTable) stmt()   {}
func (*Insert) stmt()      {}
func (*Update) stmt()      {}
func (*Delete) stmt()      {}
func (*Select) stmt()      {}
func (*Begin) stmt()       {}
func (*Commit) stmt()      {}
func (*Rollback) stmt()    {}

// ---------------------------------------------------------------------------
// Expressions

// Literal is a constant value.
type Literal struct{ Val value.Value }

// Placeholder is a positional `?` parameter; Index is zero-based.
type Placeholder struct{ Index int }

// ColumnRef references a column, optionally qualified by a table alias.
type ColumnRef struct {
	Table  string // "" when unqualified
	Column string
}

// BinaryOp codes for BinaryExpr.
type BinaryOp uint8

// Binary operators.
const (
	OpEq BinaryOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpAnd
	OpOr
	OpConcat
	OpLike
)

var binaryOpNames = map[BinaryOp]string{
	OpEq: "=", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpAnd: "AND", OpOr: "OR", OpConcat: "||", OpLike: "LIKE",
}

// BinaryExpr is a binary operation.
type BinaryExpr struct {
	Op          BinaryOp
	Left, Right Expr
}

// UnaryExpr is NOT expr or -expr.
type UnaryExpr struct {
	Op      byte // '-' or '!' (NOT)
	Operand Expr
}

// IsNullExpr is expr IS [NOT] NULL.
type IsNullExpr struct {
	Operand Expr
	Negate  bool
}

// InExpr is expr [NOT] IN (list).
type InExpr struct {
	Operand Expr
	List    []Expr
	Negate  bool
}

// BetweenExpr is expr [NOT] BETWEEN lo AND hi.
type BetweenExpr struct {
	Operand, Lo, Hi Expr
	Negate          bool
}

// FuncCall is a function or aggregate invocation. Star marks COUNT(*).
type FuncCall struct {
	Name     string // uppercased
	Args     []Expr
	Star     bool
	Distinct bool
}

func (*Literal) expr()     {}
func (*Placeholder) expr() {}
func (*ColumnRef) expr()   {}
func (*BinaryExpr) expr()  {}
func (*UnaryExpr) expr()   {}
func (*IsNullExpr) expr()  {}
func (*InExpr) expr()      {}
func (*BetweenExpr) expr() {}
func (*FuncCall) expr()    {}

func (e *Literal) String() string     { return e.Val.String() }
func (e *Placeholder) String() string { return "?" }
func (e *ColumnRef) String() string {
	if e.Table != "" {
		return e.Table + "." + e.Column
	}
	return e.Column
}
func (e *BinaryExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", e.Left, binaryOpNames[e.Op], e.Right)
}
func (e *UnaryExpr) String() string {
	if e.Op == '!' {
		return fmt.Sprintf("(NOT %s)", e.Operand)
	}
	return fmt.Sprintf("(-%s)", e.Operand)
}
func (e *IsNullExpr) String() string {
	if e.Negate {
		return fmt.Sprintf("(%s IS NOT NULL)", e.Operand)
	}
	return fmt.Sprintf("(%s IS NULL)", e.Operand)
}
func (e *InExpr) String() string {
	parts := make([]string, len(e.List))
	for i, x := range e.List {
		parts[i] = x.String()
	}
	op := "IN"
	if e.Negate {
		op = "NOT IN"
	}
	return fmt.Sprintf("(%s %s (%s))", e.Operand, op, strings.Join(parts, ", "))
}
func (e *BetweenExpr) String() string {
	op := "BETWEEN"
	if e.Negate {
		op = "NOT BETWEEN"
	}
	return fmt.Sprintf("(%s %s %s AND %s)", e.Operand, op, e.Lo, e.Hi)
}
func (e *FuncCall) String() string {
	if e.Star {
		return e.Name + "(*)"
	}
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	prefix := ""
	if e.Distinct {
		prefix = "DISTINCT "
	}
	return e.Name + "(" + prefix + strings.Join(parts, ", ") + ")"
}

// AggregateFuncs is the set of aggregate function names the executor
// understands; the parser uses it to validate GROUP BY contexts lazily (the
// executor performs the real checks).
var AggregateFuncs = map[string]bool{
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
}

// HasAggregate reports whether the expression tree contains an aggregate
// function call.
func HasAggregate(e Expr) bool {
	switch x := e.(type) {
	case nil:
		return false
	case *FuncCall:
		if AggregateFuncs[x.Name] {
			return true
		}
		for _, a := range x.Args {
			if HasAggregate(a) {
				return true
			}
		}
	case *BinaryExpr:
		return HasAggregate(x.Left) || HasAggregate(x.Right)
	case *UnaryExpr:
		return HasAggregate(x.Operand)
	case *IsNullExpr:
		return HasAggregate(x.Operand)
	case *InExpr:
		if HasAggregate(x.Operand) {
			return true
		}
		for _, a := range x.List {
			if HasAggregate(a) {
				return true
			}
		}
	case *BetweenExpr:
		return HasAggregate(x.Operand) || HasAggregate(x.Lo) || HasAggregate(x.Hi)
	}
	return false
}

// Walk visits every expression node in e, depth first.
func Walk(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *BinaryExpr:
		Walk(x.Left, fn)
		Walk(x.Right, fn)
	case *UnaryExpr:
		Walk(x.Operand, fn)
	case *IsNullExpr:
		Walk(x.Operand, fn)
	case *InExpr:
		Walk(x.Operand, fn)
		for _, a := range x.List {
			Walk(a, fn)
		}
	case *BetweenExpr:
		Walk(x.Operand, fn)
		Walk(x.Lo, fn)
		Walk(x.Hi, fn)
	case *FuncCall:
		for _, a := range x.Args {
			Walk(a, fn)
		}
	}
}
