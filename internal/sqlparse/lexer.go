// Package sqlparse implements the SQL front end used by both the production
// database and the TROD provenance database: a hand-written lexer, an AST,
// and a recursive-descent parser.
//
// The dialect covers the subset of SQL that the paper's application
// workloads and debugging queries need: CREATE TABLE / CREATE INDEX / DROP
// TABLE, INSERT, SELECT (joins — including the paper's "FROM a AS x, b AS y
// ON ..." comma-join-with-ON form — WHERE, GROUP BY, HAVING, ORDER BY,
// LIMIT/OFFSET, aggregates, DISTINCT), UPDATE, DELETE, and positional `?`
// placeholders.
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies lexical tokens.
type TokenKind uint8

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokKeyword
	TokInt
	TokFloat
	TokString
	TokPlaceholder // ?
	TokSymbol      // operators and punctuation
)

// Token is one lexical token with its source position (byte offset).
type Token struct {
	Kind TokenKind
	Text string // uppercased for keywords; raw otherwise
	Pos  int
}

// keywords recognised by the lexer. Identifiers matching these (case
// insensitively) become TokKeyword tokens with uppercase Text.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "INSERT": true, "INTO": true,
	"VALUES": true, "UPDATE": true, "SET": true, "DELETE": true, "CREATE": true,
	"TABLE": true, "INDEX": true, "DROP": true, "PRIMARY": true, "KEY": true,
	"ON": true, "AND": true, "OR": true, "NOT": true, "NULL": true, "IS": true,
	"IN": true, "LIKE": true, "BETWEEN": true, "AS": true, "JOIN": true,
	"INNER": true, "LEFT": true, "OUTER": true, "CROSS": true,
	"GROUP": true, "BY": true, "HAVING": true, "ORDER": true, "ASC": true,
	"DESC": true, "LIMIT": true, "OFFSET": true, "DISTINCT": true,
	"TRUE": true, "FALSE": true, "INTEGER": true, "INT": true, "FLOAT": true,
	"REAL": true, "TEXT": true, "VARCHAR": true, "BOOL": true, "BOOLEAN": true,
	"BYTES": true, "BLOB": true, "BEGIN": true, "COMMIT": true, "ROLLBACK": true,
	"IF": true, "EXISTS": true, "UNIQUE": true, "COUNT": true, "DEFAULT": true,
}

// Lexer splits SQL text into tokens.
type Lexer struct {
	src string
	pos int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer { return &Lexer{src: src} }

// Next returns the next token, or an error for malformed input.
func (l *Lexer) Next() (Token, error) {
	l.skipSpaceAndComments()
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == '?':
		l.pos++
		return Token{Kind: TokPlaceholder, Text: "?", Pos: start}, nil
	case c == '\'':
		return l.lexString()
	case c == '"' || c == '`':
		return l.lexQuotedIdent(c)
	case isDigit(c) || (c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])):
		return l.lexNumber()
	case isIdentStart(c):
		return l.lexIdent()
	default:
		return l.lexSymbol()
	}
}

// Tokenize lexes the whole input.
func Tokenize(src string) ([]Token, error) {
	l := NewLexer(src)
	var toks []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}

func (l *Lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			l.pos += 2
			for l.pos+1 < len(l.src) && !(l.src[l.pos] == '*' && l.src[l.pos+1] == '/') {
				l.pos++
			}
			l.pos += 2
			if l.pos > len(l.src) {
				l.pos = len(l.src)
			}
		default:
			return
		}
	}
}

func (l *Lexer) lexString() (Token, error) {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' { // escaped quote
				sb.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			return Token{Kind: TokString, Text: sb.String(), Pos: start}, nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return Token{}, fmt.Errorf("sql: unterminated string literal at offset %d", start)
}

func (l *Lexer) lexQuotedIdent(quote byte) (Token, error) {
	start := l.pos
	l.pos++
	idStart := l.pos
	for l.pos < len(l.src) && l.src[l.pos] != quote {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return Token{}, fmt.Errorf("sql: unterminated quoted identifier at offset %d", start)
	}
	text := l.src[idStart:l.pos]
	l.pos++
	return Token{Kind: TokIdent, Text: text, Pos: start}, nil
}

func (l *Lexer) lexNumber() (Token, error) {
	start := l.pos
	isFloat := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if isDigit(c) {
			l.pos++
			continue
		}
		if c == '.' && !isFloat {
			isFloat = true
			l.pos++
			continue
		}
		if (c == 'e' || c == 'E') && l.pos+1 < len(l.src) &&
			(isDigit(l.src[l.pos+1]) || l.src[l.pos+1] == '+' || l.src[l.pos+1] == '-') {
			isFloat = true
			l.pos += 2
			continue
		}
		break
	}
	kind := TokInt
	if isFloat {
		kind = TokFloat
	}
	return Token{Kind: kind, Text: l.src[start:l.pos], Pos: start}, nil
}

func (l *Lexer) lexIdent() (Token, error) {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++
	}
	text := l.src[start:l.pos]
	upper := strings.ToUpper(text)
	if keywords[upper] {
		return Token{Kind: TokKeyword, Text: upper, Pos: start}, nil
	}
	return Token{Kind: TokIdent, Text: text, Pos: start}, nil
}

var twoCharSymbols = map[string]bool{
	"<=": true, ">=": true, "!=": true, "<>": true, "||": true,
}

func (l *Lexer) lexSymbol() (Token, error) {
	start := l.pos
	if l.pos+1 < len(l.src) {
		two := l.src[l.pos : l.pos+2]
		if twoCharSymbols[two] {
			l.pos += 2
			return Token{Kind: TokSymbol, Text: two, Pos: start}, nil
		}
	}
	c := l.src[l.pos]
	switch c {
	case '(', ')', ',', '*', '+', '-', '/', '%', '=', '<', '>', '.', ';':
		l.pos++
		return Token{Kind: TokSymbol, Text: string(c), Pos: start}, nil
	}
	return Token{}, fmt.Errorf("sql: unexpected character %q at offset %d", rune(c), start)
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return c == '_' || unicode.IsLetter(rune(c)) }
func isIdentPart(c byte) bool  { return isIdentStart(c) || isDigit(c) }
