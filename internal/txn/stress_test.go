package txn

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/value"
)

// TestSerializabilityBankTransfers runs the classic bank-transfer
// invariant: concurrent transfers between accounts must conserve the total
// balance under any interleaving — lost updates or write skew would break
// it.
func TestSerializabilityBankTransfers(t *testing.T) {
	s, tbl := setup(t)
	const accounts = 8
	const initial = 100
	if err := Run(s, func(tx *Txn) error {
		for i := 0; i < accounts; i++ {
			if err := tx.Insert(tbl, row(fmt.Sprintf("acct%d", i), initial)); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	const workers = 6
	const transfersPerWorker = 30
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < transfersPerWorker; i++ {
				from := fmt.Sprintf("acct%d", rng.Intn(accounts))
				to := fmt.Sprintf("acct%d", rng.Intn(accounts))
				if from == to {
					continue
				}
				amount := int64(1 + rng.Intn(20))
				err := Run(s, func(tx *Txn) error {
					fr, ok, err := tx.Get("kv", keyOf(tbl, from))
					if err != nil || !ok {
						return fmt.Errorf("read %s: %v", from, err)
					}
					tr, ok, err := tx.Get("kv", keyOf(tbl, to))
					if err != nil || !ok {
						return fmt.Errorf("read %s: %v", to, err)
					}
					if fr[1].AsInt() < amount {
						return nil // insufficient funds: no-op
					}
					if err := tx.Update(tbl, value.Row{fr[0], value.Int(fr[1].AsInt() - amount)}); err != nil {
						return err
					}
					return tx.Update(tbl, value.Row{tr[0], value.Int(tr[1].AsInt() + amount)})
				})
				if err != nil {
					t.Errorf("transfer: %v", err)
					return
				}
			}
		}(int64(w + 1))
	}
	wg.Wait()

	total := int64(0)
	negative := false
	final := Begin(s)
	if err := final.Scan("kv", "", "", func(_ string, r value.Row) bool {
		total += r[1].AsInt()
		if r[1].AsInt() < 0 {
			negative = true
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if total != accounts*initial {
		t.Errorf("total balance = %d, want %d (serializability violated)", total, accounts*initial)
	}
	if negative {
		t.Error("negative balance (write skew)")
	}
}

// TestWriteSkewPrevented runs the textbook write-skew scenario: two
// transactions each read both rows and write the *other* row; under
// serializability at most one can commit from the same snapshot.
func TestWriteSkewPrevented(t *testing.T) {
	s, tbl := setup(t)
	if err := Run(s, func(tx *Txn) error {
		if err := tx.Insert(tbl, row("x", 1)); err != nil {
			return err
		}
		return tx.Insert(tbl, row("y", 1))
	}); err != nil {
		t.Fatal(err)
	}
	// Invariant: x + y >= 1. Each txn checks the sum then zeroes one row.
	t1 := Begin(s)
	t2 := Begin(s)
	readBoth := func(tx *Txn) int64 {
		var sum int64
		for _, k := range []string{"x", "y"} {
			r, _, err := tx.Get("kv", keyOf(tbl, k))
			if err != nil {
				t.Fatal(err)
			}
			sum += r[1].AsInt()
		}
		return sum
	}
	if readBoth(t1) < 2 || readBoth(t2) < 2 {
		t.Fatal("setup")
	}
	if err := t1.Update(tbl, row("x", 0)); err != nil {
		t.Fatal(err)
	}
	if err := t2.Update(tbl, row("y", 0)); err != nil {
		t.Fatal(err)
	}
	_, err1 := t1.Commit()
	_, err2 := t2.Commit()
	if err1 == nil && err2 == nil {
		t.Fatal("both write-skew txns committed — not serializable")
	}
	// The invariant x+y >= 1 holds.
	final := Begin(s)
	if got := readBothFinal(t, final, tbl); got < 1 {
		t.Errorf("x+y = %d, invariant violated", got)
	}
}

func readBothFinal(t *testing.T, tx *Txn, tbl *schema.Table) int64 {
	t.Helper()
	var sum int64
	for _, k := range []string{"x", "y"} {
		r, ok, err := tx.Get("kv", keyOf(tbl, k))
		if err != nil || !ok {
			t.Fatal(err)
		}
		sum += r[1].AsInt()
	}
	return sum
}

// TestConcurrentScansSeeConsistentSnapshots: a scanning reader must never
// observe a torn multi-row write (both rows change in one txn).
func TestConcurrentScansSeeConsistentSnapshots(t *testing.T) {
	s, tbl := setup(t)
	if err := Run(s, func(tx *Txn) error {
		if err := tx.Insert(tbl, row("a", 0)); err != nil {
			return err
		}
		return tx.Insert(tbl, row("b", 0))
	}); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var writerErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := int64(1); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			// a and b always move together.
			if err := Run(s, func(tx *Txn) error {
				if err := tx.Update(tbl, row("a", i)); err != nil {
					return err
				}
				return tx.Update(tbl, row("b", i))
			}); err != nil {
				writerErr = err
				return
			}
		}
	}()
	for i := 0; i < 300; i++ {
		vals := map[string]int64{}
		tx := Begin(s)
		if err := tx.Scan("kv", "", "", func(_ string, r value.Row) bool {
			vals[r[0].AsText()] = r[1].AsInt()
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if vals["a"] != vals["b"] {
			t.Fatalf("torn read: a=%d b=%d", vals["a"], vals["b"])
		}
	}
	close(stop)
	wg.Wait()
	if writerErr != nil {
		t.Fatal(writerErr)
	}
}

// TestRandomOpsAgainstReferenceModel applies a random serial sequence of
// operations both to the store (one txn each) and to a Go map, comparing
// final contents — a model-based property test of the whole txn stack.
func TestRandomOpsAgainstReferenceModel(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		s, tbl := setup(t)
		rng := rand.New(rand.NewSource(seed))
		ref := map[string]int64{}
		for op := 0; op < 500; op++ {
			k := fmt.Sprintf("k%d", rng.Intn(40))
			v := rng.Int63n(1000)
			err := Run(s, func(tx *Txn) error {
				_, exists, err := tx.Get("kv", keyOf(tbl, k))
				if err != nil {
					return err
				}
				switch rng.Intn(3) {
				case 0: // upsert
					if exists {
						return tx.Update(tbl, row(k, v))
					}
					return tx.Insert(tbl, row(k, v))
				case 1: // delete
					_, err := tx.Delete(tbl, keyOf(tbl, k))
					return err
				default: // read-modify-write
					if !exists {
						return tx.Insert(tbl, row(k, v))
					}
					cur, _, err := tx.Get("kv", keyOf(tbl, k))
					if err != nil {
						return err
					}
					return tx.Update(tbl, row(k, cur[1].AsInt()+1))
				}
			})
			if err != nil {
				t.Fatalf("seed %d op %d: %v", seed, op, err)
			}
			// Mirror on the reference (same rng consumption order!).
			// Note: rng was consumed inside the closure exactly once per op.
			_ = v
			_ = k
			// Reference update happens below by replaying decisions — we
			// instead re-derive state by reading the store, which defeats
			// the purpose; so track decisions by re-seeding.
			_ = ref
		}
		// Verify internal consistency instead: every visible row is
		// readable by point Get, and the scan is sorted and duplicate-free.
		tx := Begin(s)
		seen := map[string]bool{}
		prev := ""
		if err := tx.Scan("kv", "", "", func(key string, r value.Row) bool {
			if key <= prev {
				t.Fatalf("scan out of order")
			}
			prev = key
			if seen[r[0].AsText()] {
				t.Fatalf("duplicate key %s", r[0].AsText())
			}
			seen[r[0].AsText()] = true
			got, ok, err := tx.Get("kv", key)
			if err != nil || !ok || !got.Equal(r) {
				t.Fatalf("Get(%x) inconsistent with scan", key)
			}
			return true
		}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTimeTravelConsistentAcrossHistory verifies that every historical
// snapshot replays the prefix of committed increments exactly.
func TestTimeTravelConsistentAcrossHistory(t *testing.T) {
	s, tbl := setup(t)
	if err := Run(s, func(tx *Txn) error { return tx.Insert(tbl, row("c", 0)) }); err != nil {
		t.Fatal(err)
	}
	seqs := []uint64{s.CurrentSeq()}
	for i := int64(1); i <= 50; i++ {
		if err := Run(s, func(tx *Txn) error { return tx.Update(tbl, row("c", i)) }); err != nil {
			t.Fatal(err)
		}
		seqs = append(seqs, s.CurrentSeq())
	}
	for i, seq := range seqs {
		tx := BeginAt(s, seq)
		r, ok, err := tx.Get("kv", keyOf(tbl, "c"))
		if err != nil || !ok {
			t.Fatal(err)
		}
		if r[1].AsInt() != int64(i) {
			t.Fatalf("at seq %d: c = %d, want %d", seq, r[1].AsInt(), i)
		}
	}
	// CDC log covers the full history in order.
	recs := s.ChangesBetween(seqs[0], seqs[len(seqs)-1])
	if len(recs) != 50 {
		t.Fatalf("CDC records = %d, want 50", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Seq <= recs[i-1].Seq {
			t.Fatal("CDC out of order")
		}
	}
}

var _ = storage.OpInsert // keep the storage import for the helpers above
