// Package txn implements the transaction layer over the MVCC storage
// engine: snapshot transactions with buffered writes, read-your-writes
// semantics, precise read-set tracking for OCC validation, and a retry
// helper for serialization conflicts.
//
// A transaction reads a fixed snapshot (the commit sequence at Begin),
// buffers all writes locally, and validates at commit. Commit order equals
// serialization order, so committed histories are strictly serializable —
// the isolation level the paper assumes (§3.1).
package txn

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/value"
)

// State is a transaction's lifecycle phase.
type State uint8

// Transaction states.
const (
	StateActive State = iota
	StateCommitted
	StateAborted
)

// ErrDone is returned when operating on a finished transaction.
var ErrDone = errors.New("txn: transaction already committed or aborted")

// ErrReadOnlyTxn is returned when a write is attempted on a read-only
// snapshot transaction (BeginReadOnly, or any historical-snapshot
// transaction from BeginAt). It maps to the wire code "read-only-txn".
var ErrReadOnlyTxn = errors.New("txn: write on read-only snapshot transaction")

// pendingWrite is the buffered effect on one row: the image the transaction
// first observed (orig, nil when the row did not exist) and the current
// local image (cur, nil when locally deleted).
type pendingWrite struct {
	orig value.Row
	cur  value.Row
}

// Txn is a single transaction.
//
// A read-only transaction (BeginReadOnly / BeginAt) carries a nil read set:
// snapshot reads can never be invalidated, so there is nothing to track and
// commit never validates. Writes on such a transaction fail with
// ErrReadOnlyTxn.
type Txn struct {
	store     *storage.Store
	id        uint64
	snapshot  uint64
	reads     *storage.ReadSet                    // nil for read-only transactions
	writes    map[string]map[string]*pendingWrite // lowercased table -> key
	state     State
	readOnly  bool
	commitSeq uint64
}

// Begin starts a transaction at the store's current snapshot. The snapshot
// is pinned until Commit or Abort so the store's CDC log cannot be truncated
// inside the transaction's OCC validation window.
func Begin(store *storage.Store) *Txn {
	return &Txn{
		store:    store,
		id:       store.NextTxnID(),
		snapshot: store.PinSnapshot(),
		reads:    storage.NewReadSet(),
		writes:   make(map[string]map[string]*pendingWrite),
	}
}

// BeginReadOnly starts a read-only transaction at the store's current
// snapshot. It keeps no read set — snapshot reads are consistent by
// construction and can never be invalidated by concurrent writers — so
// Commit never validates and the transaction can never abort on conflict.
// All write methods fail with ErrReadOnlyTxn.
func BeginReadOnly(store *storage.Store) *Txn {
	return &Txn{
		store:    store,
		id:       store.NextTxnID(),
		snapshot: store.PinSnapshot(),
		readOnly: true,
	}
}

// BeginAt starts a read-only transaction at an explicit historical snapshot.
// The TROD replay engine uses this for time-travel reads. Historical
// transactions are strictly read-only: a write through one would have an
// empty OCC footprint (nothing to validate) and could blindly clobber the
// present — see ErrReadOnlyTxn.
func BeginAt(store *storage.Store, snapshot uint64) *Txn {
	t := BeginReadOnly(store)
	t.store.MovePin(t.snapshot, snapshot)
	t.snapshot = snapshot
	return t
}

// ID returns the transaction's unique identifier (assigned at Begin, used
// by TROD as the TxnId in provenance logs).
func (t *Txn) ID() uint64 { return t.id }

// Snapshot returns the commit sequence this transaction reads at.
func (t *Txn) Snapshot() uint64 { return t.snapshot }

// State returns the lifecycle phase.
func (t *Txn) State() State { return t.state }

// CommitSeq returns the assigned commit sequence (valid after Commit).
// Read-only and no-op commits report 0: they did not commit anywhere in the
// sequence — the position they read at is Snapshot, a distinct notion.
func (t *Txn) CommitSeq() uint64 { return t.commitSeq }

// ReadOnly reports whether this is a declared read-only transaction.
func (t *Txn) ReadOnly() bool { return t.readOnly }

// ReadSet exposes the tracked reads (the TROD tracer snapshots it at commit).
// Read-only transactions track nothing and return nil.
func (t *Txn) ReadSet() *storage.ReadSet { return t.reads }

// HasWrites reports whether the transaction has buffered writes on table.
// (IndexScan merges buffered writes itself, so index access no longer
// depends on this; it remains useful for diagnostics and tests.)
func (t *Txn) HasWrites(table string) bool {
	return len(t.writes[strings.ToLower(table)]) > 0
}

func (t *Txn) tableWrites(table string) map[string]*pendingWrite {
	key := strings.ToLower(table)
	m, ok := t.writes[key]
	if !ok {
		m = make(map[string]*pendingWrite)
		t.writes[key] = m
	}
	return m
}

// Get returns the row at (table, key) as seen by this transaction: buffered
// writes shadow the snapshot. The read is recorded for OCC validation.
func (t *Txn) Get(table, key string) (value.Row, bool, error) {
	if t.state != StateActive {
		return nil, false, ErrDone
	}
	if t.reads != nil {
		t.reads.AddKey(table, key)
	}
	if w, ok := t.writes[strings.ToLower(table)][key]; ok {
		if w.cur == nil {
			return nil, false, nil
		}
		return w.cur.Clone(), true, nil
	}
	row, ok := t.store.Get(table, key, t.snapshot)
	if !ok {
		return nil, false, nil
	}
	return row.Clone(), true, nil
}

// Scan visits rows with keys in [lo, hi) in key order, merging the snapshot
// with buffered writes. The scanned range is recorded for phantom-safe
// validation. fn returns false to stop early.
func (t *Txn) Scan(table, lo, hi string, fn func(key string, row value.Row) bool) error {
	if t.state != StateActive {
		return ErrDone
	}
	if t.reads != nil {
		t.reads.AddRange(table, lo, hi)
	}

	// Sorted local keys within range.
	local := t.writes[strings.ToLower(table)]
	localKeys := make([]string, 0, len(local))
	for k := range local {
		if k >= lo && (hi == "" || k < hi) {
			localKeys = append(localKeys, k)
		}
	}
	sort.Strings(localKeys)

	li := 0
	stopped := false
	emitLocal := func(k string) bool {
		if w := local[k]; w.cur != nil {
			return fn(k, w.cur.Clone())
		}
		return true
	}
	t.store.ScanRange(table, lo, hi, t.snapshot, func(k string, row value.Row) bool {
		for li < len(localKeys) && localKeys[li] < k {
			if !emitLocal(localKeys[li]) {
				stopped = true
				return false
			}
			li++
		}
		if li < len(localKeys) && localKeys[li] == k {
			ok := emitLocal(localKeys[li])
			li++
			if !ok {
				stopped = true
			}
			return ok
		}
		if !fn(k, row) {
			stopped = true
			return false
		}
		return true
	})
	if stopped {
		return nil
	}
	for ; li < len(localKeys); li++ {
		if !emitLocal(localKeys[li]) {
			return nil
		}
	}
	return nil
}

// indexPosting is one buffered row's projection into an index: its encoded
// index key, primary key, and current local image.
type indexPosting struct {
	k, pk string
	row   value.Row
}

// IndexScan visits secondary-index postings with index keys in [lo, hi) as
// seen by this transaction: committed postings at the snapshot merged with
// the transaction's buffered writes (read-your-writes), in index-key order.
// Buffered rows shadow their committed images, so a local update that moves
// a row out of the scanned range hides it and one that moves it in surfaces
// it. fn receives the referenced primary key and the row image and returns
// false to stop early. The scanned interval is recorded as a precise
// index-key range for OCC validation — not a whole-table range — so writers
// touching disjoint index ranges do not conflict with this reader.
func (t *Txn) IndexScan(tbl *schema.Table, ix *schema.Index, lo, hi string, fn func(pk string, row value.Row) bool) error {
	if t.state != StateActive {
		return ErrDone
	}
	if t.reads != nil {
		t.reads.AddIndexRange(tbl.Name, ix.Name, lo, hi)
	}

	// Project buffered writes into index order within [lo, hi).
	local := t.writes[strings.ToLower(tbl.Name)]
	var localPosts []indexPosting
	for pk, w := range local {
		if w.cur == nil {
			continue
		}
		k := ix.EncodeIndexKey(tbl, w.cur)
		if k >= lo && (hi == "" || k < hi) {
			localPosts = append(localPosts, indexPosting{k: k, pk: pk, row: w.cur})
		}
	}
	sort.Slice(localPosts, func(i, j int) bool {
		if localPosts[i].k != localPosts[j].k {
			return localPosts[i].k < localPosts[j].k
		}
		return localPosts[i].pk < localPosts[j].pk
	})

	li := 0
	stopped := false
	err := t.store.IndexScanRows(tbl.Name, ix.Name, lo, hi, t.snapshot, func(k, pk string, row value.Row) bool {
		for li < len(localPosts) && localPosts[li].k < k {
			if !fn(localPosts[li].pk, localPosts[li].row.Clone()) {
				stopped = true
				return false
			}
			li++
		}
		if _, shadowed := local[pk]; shadowed {
			// The transaction rewrote or deleted this row; its buffered image
			// (if still in range) is emitted from localPosts instead.
			return true
		}
		if !fn(pk, row) {
			stopped = true
			return false
		}
		return true
	})
	if err != nil || stopped {
		return err
	}
	for ; li < len(localPosts); li++ {
		if !fn(localPosts[li].pk, localPosts[li].row.Clone()) {
			return nil
		}
	}
	return nil
}

// Insert buffers a new row. It fails if the key already exists (either in
// the snapshot or locally).
func (t *Txn) Insert(tbl *schema.Table, row value.Row) error {
	if t.state != StateActive {
		return ErrDone
	}
	if t.readOnly {
		return ErrReadOnlyTxn
	}
	checked, err := tbl.CheckRow(row)
	if err != nil {
		return err
	}
	key := tbl.EncodePrimaryKey(checked)
	existing, found, err := t.Get(tbl.Name, key)
	if err != nil {
		return err
	}
	if found {
		_ = existing
		return fmt.Errorf("txn: duplicate primary key %v in table %q", tbl.PrimaryKey(checked), tbl.Name)
	}
	w := t.tableWrites(tbl.Name)
	if pw, ok := w[key]; ok {
		pw.cur = checked // re-insert after local delete
	} else {
		w[key] = &pendingWrite{orig: nil, cur: checked}
	}
	return nil
}

// Update buffers a full-row replacement for an existing key. The new row
// must have the same primary key.
func (t *Txn) Update(tbl *schema.Table, newRow value.Row) error {
	if t.state != StateActive {
		return ErrDone
	}
	if t.readOnly {
		return ErrReadOnlyTxn
	}
	checked, err := tbl.CheckRow(newRow)
	if err != nil {
		return err
	}
	key := tbl.EncodePrimaryKey(checked)
	old, found, err := t.Get(tbl.Name, key)
	if err != nil {
		return err
	}
	if !found {
		return fmt.Errorf("txn: update of missing key %v in table %q", tbl.PrimaryKey(checked), tbl.Name)
	}
	w := t.tableWrites(tbl.Name)
	if pw, ok := w[key]; ok {
		pw.cur = checked
	} else {
		w[key] = &pendingWrite{orig: old, cur: checked}
	}
	return nil
}

// Delete buffers removal of the row at key. Deleting an absent row is a
// no-op returning found=false.
func (t *Txn) Delete(tbl *schema.Table, key string) (bool, error) {
	if t.state != StateActive {
		return false, ErrDone
	}
	if t.readOnly {
		return false, ErrReadOnlyTxn
	}
	old, found, err := t.Get(tbl.Name, key)
	if err != nil {
		return false, err
	}
	if !found {
		return false, nil
	}
	w := t.tableWrites(tbl.Name)
	if pw, ok := w[key]; ok {
		pw.cur = nil
	} else {
		w[key] = &pendingWrite{orig: old, cur: nil}
	}
	return true, nil
}

// PendingChanges materialises the buffered writes as CDC-style changes,
// sorted by (table, key) for determinism. No-op writes (delete of a row the
// transaction itself inserted, or an update back to the original image) are
// elided.
func (t *Txn) PendingChanges() []storage.Change {
	type tk struct{ table, key string }
	var keys []tk
	for table, m := range t.writes {
		for k := range m {
			keys = append(keys, tk{table, k})
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].table != keys[j].table {
			return keys[i].table < keys[j].table
		}
		return keys[i].key < keys[j].key
	})
	var changes []storage.Change
	for _, k := range keys {
		pw := t.writes[k.table][k.key]
		tbl := t.store.Table(k.table)
		name := k.table
		if tbl != nil {
			name = tbl.Name
		}
		switch {
		case pw.orig == nil && pw.cur == nil:
			// created and deleted locally: nothing happened
		case pw.orig == nil:
			changes = append(changes, storage.Change{Table: name, Key: k.key, Op: storage.OpInsert, After: pw.cur})
		case pw.cur == nil:
			changes = append(changes, storage.Change{Table: name, Key: k.key, Op: storage.OpDelete, Before: pw.orig})
		case pw.orig.Equal(pw.cur):
			// updated back to the original image: no effect
		default:
			changes = append(changes, storage.Change{Table: name, Key: k.key, Op: storage.OpUpdate, Before: pw.orig, After: pw.cur})
		}
	}
	return changes
}

// Commit validates and applies the transaction. On serialization conflict
// it returns *storage.ConflictError and marks the transaction aborted; the
// caller should retry with a fresh transaction (see Run).
//
// Read-only transactions (and writable transactions with no effective
// changes) never validate and never abort: they return commit seq 0, which
// is not a position in the commit sequence. The snapshot they read at is
// available via Snapshot — reporting it here would let a time-travel reader
// masquerade as a transaction that committed in the past.
func (t *Txn) Commit() (uint64, error) {
	if t.state != StateActive {
		return 0, ErrDone
	}
	changes := t.PendingChanges()
	if len(changes) == 0 {
		// Nothing to validate: snapshot reads are consistent by construction.
		t.state = StateCommitted
		t.commitSeq = 0
		t.store.UnpinSnapshot(t.snapshot)
		return 0, nil
	}
	seq, err := t.store.Commit(storage.CommitRequest{
		TxnID:    t.id,
		Snapshot: t.snapshot,
		Reads:    t.reads,
		Changes:  changes,
	})
	t.store.UnpinSnapshot(t.snapshot)
	if err != nil {
		t.state = StateAborted
		return 0, err
	}
	t.state = StateCommitted
	t.commitSeq = seq
	return seq, nil
}

// Abort discards the transaction.
func (t *Txn) Abort() {
	if t.state == StateActive {
		t.state = StateAborted
		t.store.UnpinSnapshot(t.snapshot)
	}
}

// MaxRetries bounds Run's conflict-retry loop.
const MaxRetries = 64

// Run executes fn inside a transaction, committing on success and retrying
// the whole function on serialization conflicts (fresh snapshot each time).
// Any other error aborts and is returned.
func Run(store *storage.Store, fn func(*Txn) error) error {
	for attempt := 0; attempt < MaxRetries; attempt++ {
		t := Begin(store)
		if err := fn(t); err != nil {
			t.Abort()
			var conflict *storage.ConflictError
			if errors.As(err, &conflict) {
				continue
			}
			return err
		}
		_, err := t.Commit()
		if err == nil {
			return nil
		}
		var conflict *storage.ConflictError
		if !errors.As(err, &conflict) {
			return err
		}
	}
	return fmt.Errorf("txn: giving up after %d serialization retries", MaxRetries)
}
