package txn

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/value"
)

func setup(t *testing.T) (*storage.Store, *schema.Table) {
	t.Helper()
	s := storage.NewStore()
	tbl, err := schema.NewTable("kv", []schema.Column{
		{Name: "k", Type: value.KindText},
		{Name: "v", Type: value.KindInt},
	}, []string{"k"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CreateTable(tbl, false); err != nil {
		t.Fatal(err)
	}
	return s, tbl
}

func row(k string, v int64) value.Row { return value.Row{value.Text(k), value.Int(v)} }

func keyOf(tbl *schema.Table, k string) string {
	return tbl.EncodePrimaryKey(value.Row{value.Text(k), value.Null})
}

func TestInsertCommitGet(t *testing.T) {
	s, tbl := setup(t)
	tx := Begin(s)
	if tx.ID() == 0 {
		t.Error("txn ID should be nonzero")
	}
	if err := tx.Insert(tbl, row("a", 1)); err != nil {
		t.Fatal(err)
	}
	// Read-your-writes before commit.
	got, found, err := tx.Get("kv", keyOf(tbl, "a"))
	if err != nil || !found || got[1].AsInt() != 1 {
		t.Fatalf("read-your-writes failed: %v %v %v", got, found, err)
	}
	// Invisible to other transactions.
	other := Begin(s)
	if _, found, _ := other.Get("kv", keyOf(tbl, "a")); found {
		t.Error("uncommitted write visible to other txn")
	}
	seq, err := tx.Commit()
	if err != nil || seq == 0 {
		t.Fatalf("commit: %v", err)
	}
	if tx.State() != StateCommitted || tx.CommitSeq() != seq {
		t.Error("commit state wrong")
	}
	// Visible to new transactions.
	tx3 := Begin(s)
	if _, found, _ := tx3.Get("kv", keyOf(tbl, "a")); !found {
		t.Error("committed write invisible")
	}
}

func TestSnapshotStability(t *testing.T) {
	s, tbl := setup(t)
	if err := Run(s, func(tx *Txn) error { return tx.Insert(tbl, row("a", 1)) }); err != nil {
		t.Fatal(err)
	}
	reader := Begin(s)
	// Concurrent writer updates a.
	if err := Run(s, func(tx *Txn) error { return tx.Update(tbl, row("a", 99)) }); err != nil {
		t.Fatal(err)
	}
	got, _, _ := reader.Get("kv", keyOf(tbl, "a"))
	if got[1].AsInt() != 1 {
		t.Errorf("snapshot read = %d, want 1", got[1].AsInt())
	}
}

func TestUpdateDeleteLifecycle(t *testing.T) {
	s, tbl := setup(t)
	if err := Run(s, func(tx *Txn) error { return tx.Insert(tbl, row("a", 1)) }); err != nil {
		t.Fatal(err)
	}
	tx := Begin(s)
	if err := tx.Update(tbl, row("a", 2)); err != nil {
		t.Fatal(err)
	}
	found, err := tx.Delete(tbl, keyOf(tbl, "a"))
	if err != nil || !found {
		t.Fatalf("delete: %v %v", found, err)
	}
	if _, found, _ := tx.Get("kv", keyOf(tbl, "a")); found {
		t.Error("locally deleted row still visible")
	}
	// Delete of absent key is a clean no-op.
	if found, err := tx.Delete(tbl, keyOf(tbl, "zz")); err != nil || found {
		t.Errorf("absent delete = %v, %v", found, err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx2 := Begin(s)
	if _, found, _ := tx2.Get("kv", keyOf(tbl, "a")); found {
		t.Error("deleted row visible after commit")
	}
}

func TestInsertDuplicateFails(t *testing.T) {
	s, tbl := setup(t)
	if err := Run(s, func(tx *Txn) error { return tx.Insert(tbl, row("a", 1)) }); err != nil {
		t.Fatal(err)
	}
	tx := Begin(s)
	if err := tx.Insert(tbl, row("a", 2)); err == nil {
		t.Error("duplicate insert should fail")
	}
	// Local duplicate too.
	tx2 := Begin(s)
	if err := tx2.Insert(tbl, row("b", 1)); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Insert(tbl, row("b", 2)); err == nil {
		t.Error("local duplicate insert should fail")
	}
}

func TestUpdateMissingFails(t *testing.T) {
	s, tbl := setup(t)
	tx := Begin(s)
	if err := tx.Update(tbl, row("ghost", 1)); err == nil {
		t.Error("update of missing row should fail")
	}
}

func TestInsertAfterLocalDelete(t *testing.T) {
	s, tbl := setup(t)
	if err := Run(s, func(tx *Txn) error { return tx.Insert(tbl, row("a", 1)) }); err != nil {
		t.Fatal(err)
	}
	tx := Begin(s)
	if _, err := tx.Delete(tbl, keyOf(tbl, "a")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert(tbl, row("a", 7)); err != nil {
		t.Fatalf("insert after local delete: %v", err)
	}
	changes := tx.PendingChanges()
	if len(changes) != 1 || changes[0].Op != storage.OpUpdate {
		t.Errorf("delete+insert should collapse to update, got %+v", changes)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx2 := Begin(s)
	got, _, _ := tx2.Get("kv", keyOf(tbl, "a"))
	if got[1].AsInt() != 7 {
		t.Errorf("value = %d, want 7", got[1].AsInt())
	}
}

func TestNoOpWritesElided(t *testing.T) {
	s, tbl := setup(t)
	if err := Run(s, func(tx *Txn) error { return tx.Insert(tbl, row("a", 1)) }); err != nil {
		t.Fatal(err)
	}
	// Insert then delete locally: nothing.
	tx := Begin(s)
	if err := tx.Insert(tbl, row("tmp", 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Delete(tbl, keyOf(tbl, "tmp")); err != nil {
		t.Fatal(err)
	}
	// Update back to the original image: nothing.
	if err := tx.Update(tbl, row("a", 2)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Update(tbl, row("a", 1)); err != nil {
		t.Fatal(err)
	}
	if changes := tx.PendingChanges(); len(changes) != 0 {
		t.Errorf("no-op writes not elided: %+v", changes)
	}
	seqBefore := s.CurrentSeq()
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if s.CurrentSeq() != seqBefore {
		t.Error("no-op commit advanced the sequence")
	}
}

func TestScanMergesLocalWrites(t *testing.T) {
	s, tbl := setup(t)
	if err := Run(s, func(tx *Txn) error {
		for _, k := range []string{"b", "d", "f"} {
			if err := tx.Insert(tbl, row(k, 0)); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	tx := Begin(s)
	if err := tx.Insert(tbl, row("a", 0)); err != nil { // before all
		t.Fatal(err)
	}
	if err := tx.Insert(tbl, row("c", 0)); err != nil { // interleaved
		t.Fatal(err)
	}
	if err := tx.Insert(tbl, row("z", 0)); err != nil { // after all
		t.Fatal(err)
	}
	if err := tx.Update(tbl, row("d", 9)); err != nil { // shadowed
		t.Fatal(err)
	}
	if _, err := tx.Delete(tbl, keyOf(tbl, "f")); err != nil { // hidden
		t.Fatal(err)
	}
	var got []string
	if err := tx.Scan("kv", "", "", func(_ string, r value.Row) bool {
		got = append(got, fmt.Sprintf("%s=%d", r[0].AsText(), r[1].AsInt()))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want := "[a=0 b=0 c=0 d=9 z=0]"
	if fmt.Sprint(got) != want {
		t.Errorf("merged scan = %v, want %v", got, want)
	}
	// Early stop works across the merge.
	count := 0
	if err := tx.Scan("kv", "", "", func(string, value.Row) bool {
		count++
		return count < 2
	}); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Errorf("early stop visited %d", count)
	}
}

func TestScanRangeBounds(t *testing.T) {
	s, tbl := setup(t)
	tx := Begin(s)
	for i := 0; i < 5; i++ {
		if err := tx.Insert(tbl, row(fmt.Sprintf("k%d", i), int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	lo := keyOf(tbl, "k1")
	hi := keyOf(tbl, "k4")
	var got []string
	if err := tx.Scan("kv", lo, hi, func(_ string, r value.Row) bool {
		got = append(got, r[0].AsText())
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[k1 k2 k3]" {
		t.Errorf("bounded local scan = %v", got)
	}
}

func TestWriteConflictAbortsAndRunRetries(t *testing.T) {
	s, tbl := setup(t)
	if err := Run(s, func(tx *Txn) error { return tx.Insert(tbl, row("a", 0)) }); err != nil {
		t.Fatal(err)
	}

	// Manual conflict: two txns read-modify-write the same key.
	t1 := Begin(s)
	t2 := Begin(s)
	r1, _, _ := t1.Get("kv", keyOf(tbl, "a"))
	r2, _, _ := t2.Get("kv", keyOf(tbl, "a"))
	if err := t1.Update(tbl, value.Row{r1[0], value.Int(r1[1].AsInt() + 1)}); err != nil {
		t.Fatal(err)
	}
	if err := t2.Update(tbl, value.Row{r2[0], value.Int(r2[1].AsInt() + 1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	_, err := t2.Commit()
	var conflict *storage.ConflictError
	if !errors.As(err, &conflict) {
		t.Fatalf("expected conflict, got %v", err)
	}
	if t2.State() != StateAborted {
		t.Error("conflicted txn should be aborted")
	}

	// Run retries until success: concurrent increments never lose updates.
	const workers, n = 4, 20
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				err := Run(s, func(tx *Txn) error {
					cur, _, err := tx.Get("kv", keyOf(tbl, "a"))
					if err != nil {
						return err
					}
					return tx.Update(tbl, value.Row{cur[0], value.Int(cur[1].AsInt() + 1)})
				})
				if err != nil {
					t.Errorf("Run: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	final := Begin(s)
	got, _, _ := final.Get("kv", keyOf(tbl, "a"))
	if got[1].AsInt() != workers*n+1 {
		t.Errorf("counter = %d, want %d", got[1].AsInt(), workers*n+1)
	}
}

func TestRunPropagatesUserError(t *testing.T) {
	s, _ := setup(t)
	sentinel := errors.New("boom")
	if err := Run(s, func(*Txn) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Errorf("Run error = %v", err)
	}
}

func TestOperationsAfterDone(t *testing.T) {
	s, tbl := setup(t)
	tx := Begin(s)
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tx.Get("kv", "k"); !errors.Is(err, ErrDone) {
		t.Error("Get after commit should be ErrDone")
	}
	if err := tx.Insert(tbl, row("a", 1)); !errors.Is(err, ErrDone) {
		t.Error("Insert after commit should be ErrDone")
	}
	if err := tx.Update(tbl, row("a", 1)); !errors.Is(err, ErrDone) {
		t.Error("Update after commit should be ErrDone")
	}
	if _, err := tx.Delete(tbl, "k"); !errors.Is(err, ErrDone) {
		t.Error("Delete after commit should be ErrDone")
	}
	if err := tx.Scan("kv", "", "", nil); !errors.Is(err, ErrDone) {
		t.Error("Scan after commit should be ErrDone")
	}
	if _, err := tx.Commit(); !errors.Is(err, ErrDone) {
		t.Error("double commit should be ErrDone")
	}
	tx.Abort() // no-op on finished txn
	if tx.State() != StateCommitted {
		t.Error("Abort flipped a committed txn")
	}
}

func TestBeginAtHistoricalSnapshot(t *testing.T) {
	s, tbl := setup(t)
	if err := Run(s, func(tx *Txn) error { return tx.Insert(tbl, row("a", 1)) }); err != nil {
		t.Fatal(err)
	}
	seq1 := s.CurrentSeq()
	if err := Run(s, func(tx *Txn) error { return tx.Update(tbl, row("a", 2)) }); err != nil {
		t.Fatal(err)
	}
	old := BeginAt(s, seq1)
	got, _, _ := old.Get("kv", keyOf(tbl, "a"))
	if got[1].AsInt() != 1 {
		t.Errorf("historical read = %d, want 1", got[1].AsInt())
	}
	if old.Snapshot() != seq1 {
		t.Error("Snapshot() wrong")
	}
}

func TestPhantomProtectionThroughTxnAPI(t *testing.T) {
	s, tbl := setup(t)
	// T scans the (empty) table, then another txn inserts, then T writes.
	tScan := Begin(s)
	count := 0
	if err := tScan.Scan("kv", "", "", func(string, value.Row) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Fatal("table should be empty")
	}
	if err := Run(s, func(tx *Txn) error { return tx.Insert(tbl, row("phantom", 1)) }); err != nil {
		t.Fatal(err)
	}
	if err := tScan.Insert(tbl, row("mine", 1)); err != nil {
		t.Fatal(err)
	}
	_, err := tScan.Commit()
	var conflict *storage.ConflictError
	if !errors.As(err, &conflict) {
		t.Fatalf("phantom should abort the scanner, got %v", err)
	}
}

func TestHasWrites(t *testing.T) {
	s, tbl := setup(t)
	tx := Begin(s)
	if tx.HasWrites("kv") {
		t.Error("fresh txn should have no writes")
	}
	if err := tx.Insert(tbl, row("a", 1)); err != nil {
		t.Fatal(err)
	}
	if !tx.HasWrites("kv") || !tx.HasWrites("KV") {
		t.Error("HasWrites should be true (case-insensitive)")
	}
}
