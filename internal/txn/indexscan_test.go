package txn

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/value"
)

// setupIndexed builds a users(id INT PK, city TEXT) table with a non-unique
// secondary index on city and three committed rows.
func setupIndexed(t *testing.T) (*storage.Store, *schema.Table, *schema.Index) {
	t.Helper()
	s := storage.NewStore()
	tbl, err := schema.NewTable("users", []schema.Column{
		{Name: "id", Type: value.KindInt},
		{Name: "city", Type: value.KindText},
	}, []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CreateTable(tbl, false); err != nil {
		t.Fatal(err)
	}
	ix := &schema.Index{Name: "i_city", Table: "users", Columns: []int{1}}
	if err := s.CreateIndex(ix); err != nil {
		t.Fatal(err)
	}
	if err := Run(s, func(tx *Txn) error {
		for _, r := range []value.Row{
			{value.Int(1), value.Text("sf")},
			{value.Int(2), value.Text("nyc")},
			{value.Int(3), value.Text("sf")},
		} {
			if err := tx.Insert(tbl, r); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return s, tbl, ix
}

func userRow(id int64, city string) value.Row {
	return value.Row{value.Int(id), value.Text(city)}
}

// TestIndexScanMergesLocalWrites: buffered inserts, updates, and deletes are
// merged into index order and shadow their committed images.
func TestIndexScanMergesLocalWrites(t *testing.T) {
	s, tbl, ix := setupIndexed(t)
	tx := Begin(s)
	defer tx.Abort()
	if err := tx.Insert(tbl, userRow(4, "sf")); err != nil { // new posting
		t.Fatal(err)
	}
	if err := tx.Update(tbl, userRow(2, "sf")); err != nil { // nyc -> sf
		t.Fatal(err)
	}
	if _, err := tx.Delete(tbl, tbl.EncodePrimaryKey(userRow(3, ""))); err != nil { // hidden
		t.Fatal(err)
	}
	if err := tx.Update(tbl, userRow(1, "la")); err != nil { // sf -> la
		t.Fatal(err)
	}
	var got []string
	if err := tx.IndexScan(tbl, ix, "", "", func(_ string, r value.Row) bool {
		got = append(got, fmt.Sprintf("%d=%s", r[0].AsInt(), r[1].AsText()))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	// Index order: (city, pk) => la/1, sf/2, sf/4.
	want := "[1=la 2=sf 4=sf]"
	if fmt.Sprint(got) != want {
		t.Errorf("merged index scan = %v, want %v", got, want)
	}

	// Range-restricted scan sees only the sf postings.
	enc := string(value.EncodeKey(nil, value.Text("sf")))
	got = got[:0]
	if err := tx.IndexScan(tbl, ix, enc, enc+"\xff", func(_ string, r value.Row) bool {
		got = append(got, fmt.Sprintf("%d", r[0].AsInt()))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[2 4]" {
		t.Errorf("sf range scan = %v, want [2 4]", got)
	}

	// Early stop works across the merge.
	count := 0
	if err := tx.IndexScan(tbl, ix, "", "", func(string, value.Row) bool {
		count++
		return count < 2
	}); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Errorf("early stop visited %d postings", count)
	}
}

// TestIndexScanMatchesFullScanOracle cross-checks IndexScan against Scan
// under randomized-ish local mutations: both must see the same set of rows.
func TestIndexScanMatchesFullScanOracle(t *testing.T) {
	s, tbl, ix := setupIndexed(t)
	tx := Begin(s)
	defer tx.Abort()
	for i := int64(10); i < 30; i++ {
		city := fmt.Sprintf("c%d", i%7)
		if err := tx.Insert(tbl, userRow(i, city)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Update(tbl, userRow(1, "c3")); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Delete(tbl, tbl.EncodePrimaryKey(userRow(2, ""))); err != nil {
		t.Fatal(err)
	}
	fromIndex := map[int64]string{}
	if err := tx.IndexScan(tbl, ix, "", "", func(_ string, r value.Row) bool {
		fromIndex[r[0].AsInt()] = r[1].AsText()
		return true
	}); err != nil {
		t.Fatal(err)
	}
	fromScan := map[int64]string{}
	if err := tx.Scan("users", "", "", func(_ string, r value.Row) bool {
		fromScan[r[0].AsInt()] = r[1].AsText()
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(fromIndex) != len(fromScan) {
		t.Fatalf("index scan saw %d rows, full scan %d", len(fromIndex), len(fromScan))
	}
	for id, city := range fromScan {
		if fromIndex[id] != city {
			t.Errorf("id %d: index scan %q, full scan %q", id, fromIndex[id], city)
		}
	}
}

// TestIndexScanRecordsPreciseRange: IndexScan must record an index-key range
// — not a whole-table range — in the read set.
func TestIndexScanRecordsPreciseRange(t *testing.T) {
	s, tbl, ix := setupIndexed(t)
	tx := Begin(s)
	defer tx.Abort()
	enc := string(value.EncodeKey(nil, value.Text("sf")))
	if err := tx.IndexScan(tbl, ix, enc, enc+"\xff", func(string, value.Row) bool { return true }); err != nil {
		t.Fatal(err)
	}
	rs := tx.ReadSet()
	if len(rs.Ranges) != 0 {
		t.Errorf("index scan must not record table ranges, got %v", rs.Ranges)
	}
	if len(rs.IndexRanges) != 1 {
		t.Fatalf("index ranges = %v, want exactly one", rs.IndexRanges)
	}
	ir := rs.IndexRanges[0]
	if ir.Table != "users" || ir.Index != strings.ToLower(ix.Name) || ir.Lo != enc || ir.Hi != enc+"\xff" {
		t.Errorf("recorded range = %+v", ir)
	}
	// Re-running the same scan collapses into the same entry.
	if err := tx.IndexScan(tbl, ix, enc, enc+"\xff", func(string, value.Row) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if len(rs.IndexRanges) != 1 {
		t.Errorf("duplicate scan recorded %d ranges", len(tx.ReadSet().IndexRanges))
	}
}

// TestDisjointIndexWritersCommit: two transactions that each scan and write
// disjoint index ranges both commit — the precise OCC ranges replaced the
// whole-table conservative range that used to abort the second writer.
func TestDisjointIndexWritersCommit(t *testing.T) {
	s, tbl, ix := setupIndexed(t)
	scanCity := func(tx *Txn, city string) int {
		enc := string(value.EncodeKey(nil, value.Text(city)))
		n := 0
		if err := tx.IndexScan(tbl, ix, enc, enc+"\xff", func(string, value.Row) bool {
			n++
			return true
		}); err != nil {
			t.Fatal(err)
		}
		return n
	}

	tx1 := Begin(s)
	tx2 := Begin(s)
	scanCity(tx1, "sf")
	scanCity(tx2, "nyc")
	if err := tx1.Insert(tbl, userRow(100, "sf")); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Insert(tbl, userRow(200, "nyc")); err != nil {
		t.Fatal(err)
	}
	if _, err := tx1.Commit(); err != nil {
		t.Fatalf("tx1: %v", err)
	}
	if _, err := tx2.Commit(); err != nil {
		t.Fatalf("tx2 touches a disjoint index range and must commit: %v", err)
	}

	// Control: a reader of the sf range begun before tx3's sf insert must
	// still abort — precision must not lose real conflicts.
	tx4 := Begin(s)
	scanCity(tx4, "sf")
	tx3 := Begin(s)
	if err := tx3.Insert(tbl, userRow(101, "sf")); err != nil {
		t.Fatal(err)
	}
	if _, err := tx3.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx4.Insert(tbl, userRow(300, "reno")); err != nil {
		t.Fatal(err)
	}
	if _, err := tx4.Commit(); err == nil {
		t.Fatal("overlapping index range reader must still conflict")
	}
}

// TestIndexScanUniquePendingDuplicate: a buffered insert duplicating a
// committed unique key is visible to both access paths (matching full-scan
// semantics) and the commit is rejected.
func TestIndexScanUniquePendingDuplicate(t *testing.T) {
	s := storage.NewStore()
	tbl, err := schema.NewTable("accts", []schema.Column{
		{Name: "id", Type: value.KindInt},
		{Name: "email", Type: value.KindText},
	}, []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CreateTable(tbl, false); err != nil {
		t.Fatal(err)
	}
	ux := &schema.Index{Name: "ux", Table: "accts", Columns: []int{1}, Unique: true}
	if err := s.CreateIndex(ux); err != nil {
		t.Fatal(err)
	}
	if err := Run(s, func(tx *Txn) error {
		return tx.Insert(tbl, value.Row{value.Int(1), value.Text("a@x")})
	}); err != nil {
		t.Fatal(err)
	}
	tx := Begin(s)
	if err := tx.Insert(tbl, value.Row{value.Int(2), value.Text("a@x")}); err != nil {
		t.Fatal(err)
	}
	var pks []int64
	if err := tx.IndexScan(tbl, ux, "", "", func(_ string, r value.Row) bool {
		pks = append(pks, r[0].AsInt())
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(pks) != 2 {
		t.Errorf("pending duplicate: index scan saw %v, want both rows", pks)
	}
	if _, err := tx.Commit(); err == nil || !strings.Contains(err.Error(), "unique") {
		t.Fatalf("commit must fail with a unique violation, got %v", err)
	}
}
