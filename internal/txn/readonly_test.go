package txn

import (
	"errors"
	"testing"
)

func TestReadOnlyTxnRejectsWrites(t *testing.T) {
	s, tbl := setup(t)
	seed := Begin(s)
	if err := seed.Insert(tbl, row("a", 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := seed.Commit(); err != nil {
		t.Fatal(err)
	}

	ro := BeginReadOnly(s)
	if !ro.ReadOnly() {
		t.Fatal("BeginReadOnly not marked read-only")
	}
	if err := ro.Insert(tbl, row("b", 2)); !errors.Is(err, ErrReadOnlyTxn) {
		t.Fatalf("Insert: err = %v, want ErrReadOnlyTxn", err)
	}
	if err := ro.Update(tbl, row("a", 9)); !errors.Is(err, ErrReadOnlyTxn) {
		t.Fatalf("Update: err = %v, want ErrReadOnlyTxn", err)
	}
	if _, err := ro.Delete(tbl, keyOf(tbl, "a")); !errors.Is(err, ErrReadOnlyTxn) {
		t.Fatalf("Delete: err = %v, want ErrReadOnlyTxn", err)
	}
	got, found, err := ro.Get("kv", keyOf(tbl, "a"))
	if err != nil || !found || got[1].AsInt() != 1 {
		t.Fatalf("read in read-only txn: %v %v %v", got, found, err)
	}
	ro.Abort()
}

// TestReadOnlyTxnNoReadSetNoValidation: read-only transactions track no read
// set, so a conflicting concurrent write cannot abort their commit — the
// structural "zero aborts" guarantee.
func TestReadOnlyTxnNoReadSetNoValidation(t *testing.T) {
	s, tbl := setup(t)
	seed := Begin(s)
	if err := seed.Insert(tbl, row("a", 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := seed.Commit(); err != nil {
		t.Fatal(err)
	}

	ro := BeginReadOnly(s)
	if _, _, err := ro.Get("kv", keyOf(tbl, "a")); err != nil {
		t.Fatal(err)
	}
	if ro.ReadSet() != nil {
		t.Fatal("read-only txn tracked a read set")
	}
	// A conflicting write lands after the read.
	w := Begin(s)
	if err := w.Update(tbl, row("a", 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	// An OCC transaction that performed the same read would abort here; the
	// read-only transaction must not.
	seq, err := ro.Commit()
	if err != nil {
		t.Fatalf("read-only commit aborted: %v", err)
	}
	if seq != 0 || ro.CommitSeq() != 0 {
		t.Fatalf("read-only commit seq = %d/%d, want 0 (no commit position)", seq, ro.CommitSeq())
	}
}

// TestReadOnlyTxnPinHygiene: both Commit and Abort release the snapshot pin;
// a leak would clamp every future vacuum horizon.
func TestReadOnlyTxnPinHygiene(t *testing.T) {
	s, tbl := setup(t)
	seed := Begin(s)
	if err := seed.Insert(tbl, row("a", 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := seed.Commit(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		ro := BeginReadOnly(s)
		if i%2 == 0 {
			if _, err := ro.Commit(); err != nil {
				t.Fatal(err)
			}
		} else {
			ro.Abort()
		}
	}
	at := BeginAt(s, 1)
	at.Abort()
	if pin, ok := s.OldestPin(); ok {
		t.Fatalf("read-only transactions leaked a pin at seq %d", pin)
	}
}

// TestBeginAtReadsPast: BeginAt anchors a read-only transaction at an older
// snapshot and keeps it pinned against vacuum for the transaction's life.
func TestBeginAtReadsPast(t *testing.T) {
	s, tbl := setup(t)
	seed := Begin(s)
	if err := seed.Insert(tbl, row("a", 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := seed.Commit(); err != nil {
		t.Fatal(err)
	}
	past := s.CurrentSeq()
	for i := int64(2); i <= 5; i++ {
		w := Begin(s)
		if err := w.Update(tbl, row("a", i)); err != nil {
			t.Fatal(err)
		}
		if _, err := w.Commit(); err != nil {
			t.Fatal(err)
		}
	}

	at := BeginAt(s, past)
	defer at.Abort()
	if at.Snapshot() != past {
		t.Fatalf("Snapshot = %d, want %d", at.Snapshot(), past)
	}
	// The pin rides at the requested snapshot: vacuum to head must clamp.
	st := s.Vacuum(s.CurrentSeq())
	if st.LastHorizon != past {
		t.Fatalf("vacuum horizon = %d, want clamp to BeginAt pin %d", st.LastHorizon, past)
	}
	got, found, err := at.Get("kv", keyOf(tbl, "a"))
	if err != nil || !found || got[1].AsInt() != 1 {
		t.Fatalf("time-travel read after vacuum: %v %v %v", got, found, err)
	}
}
