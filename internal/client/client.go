// Package client is the Go client for trod-server: a connection-pooled
// handle speaking internal/protocol over TCP, with autocommit Query/Exec,
// explicit interactive transactions (Begin … Commit/Rollback pinned to one
// pooled connection), Ping, and server Stats.
//
// Server failures come back as *protocol.ServerError; use the protocol
// package's IsConflict/IsBusy/IsTxnExpired helpers to react typedly (retry,
// back off, re-begin). Transport failures invalidate the affected pooled
// connection only — the client redials on demand.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/protocol"
	"repro/internal/span"
	"repro/internal/value"
)

// Options tunes a Client. The zero value is usable.
type Options struct {
	// PoolSize caps idle pooled connections (default 4). Concurrent use
	// beyond the pool dials extra connections that are closed when returned
	// to a full pool.
	PoolSize int
	// DialTimeout bounds connection establishment (default 5s).
	DialTimeout time.Duration
	// RequestTimeout bounds one request/response round trip (default 30s);
	// generous because a request may sit behind the server's admission
	// queue or a group-commit fsync.
	RequestTimeout time.Duration
	// MaxConnIdle discards pooled connections idle longer than this at
	// borrow time (default 1m — below the server's 2m idle disconnect, so a
	// quiet client redials instead of tripping over a session the server
	// already closed). <= 0 keeps the default; set it below the server's
	// -idle-timeout when that is tuned down.
	MaxConnIdle time.Duration
	// MaxFrame caps response frame payloads (default protocol.MaxFrame).
	MaxFrame int
	// Collector, when set, enables client-side span tracing: each traced
	// request records pool-checkout and round-trip spans and propagates its
	// trace ID on the wire, so the server's spans for the same request share
	// the trace. Completed client traces tail-sample into this collector.
	Collector *span.Collector
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.PoolSize <= 0 {
		out.PoolSize = 4
	}
	if out.DialTimeout <= 0 {
		out.DialTimeout = 5 * time.Second
	}
	if out.RequestTimeout <= 0 {
		out.RequestTimeout = 30 * time.Second
	}
	if out.MaxConnIdle <= 0 {
		out.MaxConnIdle = time.Minute
	}
	return out
}

// Result is a query outcome: a result set for reads, RowsAffected for
// writes.
type Result struct {
	Columns      []string
	Rows         []value.Row
	RowsAffected int64
}

// Client is a pooled trod-server client; safe for concurrent use.
type Client struct {
	addr string
	opts Options

	mu     sync.Mutex
	idle   []*conn
	closed bool
}

// conn is one protocol connection.
type conn struct {
	nc       net.Conn
	br       *bufio.Reader
	idleFrom time.Time // when the conn was returned to the pool
}

func (c *conn) close() { c.nc.Close() }

// Dial connects to a trod-server and verifies liveness with a Ping.
func Dial(addr string, opts Options) (*Client, error) {
	cl := &Client{addr: addr, opts: (&opts).withDefaults()}
	if err := cl.Ping(); err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	return cl, nil
}

// ErrClosed reports use of a closed client.
var ErrClosed = errors.New("client: closed")

func (c *Client) get() (*conn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	// Borrow the most recently used pooled connection, discarding any that
	// sat idle past MaxConnIdle — the server disconnects quiet sessions, so
	// an aged conn would just hand the caller a spurious transport error.
	var stale []*conn
	var cn *conn
	for n := len(c.idle); n > 0; n = len(c.idle) {
		cand := c.idle[n-1]
		c.idle = c.idle[:n-1]
		if time.Since(cand.idleFrom) < c.opts.MaxConnIdle {
			cn = cand
			break
		}
		stale = append(stale, cand)
	}
	c.mu.Unlock()
	for _, s := range stale {
		s.close()
	}
	if cn != nil {
		return cn, nil
	}
	nc, err := net.DialTimeout("tcp", c.addr, c.opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	return &conn{nc: nc, br: bufio.NewReader(nc)}, nil
}

func (c *Client) put(cn *conn) {
	cn.idleFrom = time.Now()
	c.mu.Lock()
	if !c.closed && len(c.idle) < c.opts.PoolSize {
		c.idle = append(c.idle, cn)
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	cn.close()
}

// roundtrip sends req and reads one response on cn. ErrFrameTooLarge is
// local (nothing was written): the connection remains clean and usable.
func (c *Client) roundtrip(cn *conn, req *protocol.Message) (*protocol.Message, error) {
	cn.nc.SetDeadline(time.Now().Add(c.opts.RequestTimeout))
	if werr := protocol.WriteMessage(cn.nc, req); werr != nil {
		if errors.Is(werr, protocol.ErrFrameTooLarge) {
			return nil, werr // local encoding failure; no bytes on the wire
		}
		// The server rejects not-admitted connections (busy/shutdown) without
		// reading a request and closes them, which can break this write; the
		// typed rejection may still be sitting in the receive buffer.
		if resp, rerr := protocol.ReadMessage(cn.br, c.opts.MaxFrame); rerr == nil && resp.Type == protocol.MsgError {
			return resp, nil
		}
		return nil, werr
	}
	return protocol.ReadMessage(cn.br, c.opts.MaxFrame)
}

// traced starts a client-side span buffer for req when tracing is enabled
// and the request type is worth a trace, stamping the trace context onto the
// request frame. Returns (nil, zero) on the disabled path — no allocations.
func (c *Client) traced(req *protocol.Message) (*span.Buf, time.Time) {
	col := c.opts.Collector
	if !col.Enabled() {
		return nil, time.Time{}
	}
	switch req.Type {
	case protocol.MsgQuery, protocol.MsgExec, protocol.MsgBegin,
		protocol.MsgCommit, protocol.MsgRollback:
	default:
		return nil, time.Time{}
	}
	buf := span.NewBuf(col.NextTraceID(), 0)
	req.TraceID = buf.TraceID
	req.ParentSpan = uint64(span.RootID)
	return buf, time.Now()
}

// offerTrace completes a client-side trace and tail-samples it.
func (c *Client) offerTrace(buf *span.Buf, req *protocol.Message, start time.Time, err error) {
	if buf == nil {
		return
	}
	lat := time.Since(start)
	buf.Finish(start, lat)
	status := "ok"
	switch {
	case protocol.IsConflict(err):
		status = "conflict"
	case err != nil:
		status = "error"
	}
	c.opts.Collector.Offer(&span.Trace{
		TraceID: buf.TraceID,
		Kind:    reqKind(req.Type),
		Status:  status,
		Wall:    lat,
		Start:   start,
		Spans:   buf.Spans(),
	})
}

// reqKind labels client traces by request type.
func reqKind(t protocol.MsgType) string {
	switch t {
	case protocol.MsgQuery:
		return "query"
	case protocol.MsgExec:
		return "exec"
	case protocol.MsgBegin:
		return "begin"
	case protocol.MsgCommit:
		return "commit"
	case protocol.MsgRollback:
		return "rollback"
	default:
		return "other"
	}
}

// do runs one request on a pooled connection. Transport errors discard the
// connection; server errors (MsgError) return it to the pool and surface as
// *protocol.ServerError.
func (c *Client) do(req *protocol.Message) (*protocol.Message, error) {
	buf, start := c.traced(req)
	resp, err := c.doRequest(req, buf)
	if buf != nil {
		c.offerTrace(buf, req, start, err)
	}
	return resp, err
}

func (c *Client) doRequest(req *protocol.Message, buf *span.Buf) (*protocol.Message, error) {
	var t0 time.Time
	if buf != nil {
		t0 = time.Now()
	}
	cn, err := c.get()
	if buf != nil {
		buf.Record(span.StagePoolCheckout, span.RootID, t0, time.Since(t0))
	}
	if err != nil {
		return nil, err
	}
	if buf != nil {
		t0 = time.Now()
	}
	resp, err := c.roundtrip(cn, req)
	if buf != nil {
		buf.Record(span.StageRTT, span.RootID, t0, time.Since(t0))
	}
	if err != nil {
		if errors.Is(err, protocol.ErrFrameTooLarge) {
			c.put(cn) // local failure; the connection is untouched
			return nil, err
		}
		cn.close()
		return nil, err
	}
	if resp.Type == protocol.MsgError {
		if connRefused(resp.Code) {
			cn.close() // admission refusal: the server closed this conn
		} else {
			c.put(cn) // session-level error: the session is still healthy
		}
		return nil, &protocol.ServerError{Code: resp.Code, Msg: resp.Err}
	}
	c.put(cn)
	return resp, nil
}

// connRefused reports codes the server sends for connections it never
// admitted (and closed right after): pooling such a connection would poison
// the pool with a dead socket.
func connRefused(code protocol.ErrCode) bool {
	return code == protocol.CodeBusy || code == protocol.CodeShutdown
}

func toArgs(args []any) (value.Row, error) {
	row := make(value.Row, len(args))
	for i, a := range args {
		v, err := value.FromGo(a)
		if err != nil {
			return nil, fmt.Errorf("client: argument %d: %w", i+1, err)
		}
		row[i] = v
	}
	return row, nil
}

func resultFrom(resp *protocol.Message) (*Result, error) {
	if resp.Type != protocol.MsgResult {
		return nil, fmt.Errorf("client: unexpected response type %d", resp.Type)
	}
	return &Result{Columns: resp.Columns, Rows: resp.Rows, RowsAffected: resp.RowsAffected}, nil
}

// Ping checks server liveness over one pooled round trip.
func (c *Client) Ping() error {
	resp, err := c.do(&protocol.Message{Type: protocol.MsgPing})
	if err != nil {
		return err
	}
	if resp.Type != protocol.MsgPong {
		return fmt.Errorf("client: unexpected ping response type %d", resp.Type)
	}
	return nil
}

// Query runs one statement in autocommit mode and returns its result set.
func (c *Client) Query(sql string, args ...any) (*Result, error) {
	row, err := toArgs(args)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(&protocol.Message{Type: protocol.MsgQuery, SQL: sql, Args: row})
	if err != nil {
		return nil, err
	}
	return resultFrom(resp)
}

// Exec is Query for writes and DDL; provided for call-site clarity.
func (c *Client) Exec(sql string, args ...any) (*Result, error) {
	row, err := toArgs(args)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(&protocol.Message{Type: protocol.MsgExec, SQL: sql, Args: row})
	if err != nil {
		return nil, err
	}
	return resultFrom(resp)
}

// Promote asks a replica server to promote itself to a writable primary
// (the operator failover command). Returns the new epoch and the promotion
// point — the replica's applied commit sequence, where the new timeline
// starts.
func (c *Client) Promote() (epoch, seq uint64, err error) {
	resp, err := c.do(&protocol.Message{Type: protocol.MsgPromote})
	if err != nil {
		return 0, 0, err
	}
	if resp.Type != protocol.MsgPromoted {
		return 0, 0, fmt.Errorf("client: unexpected promote response type %d", resp.Type)
	}
	return resp.Epoch, resp.Seq, nil
}

// Stats fetches the server's counters.
func (c *Client) Stats() (protocol.Stats, error) {
	resp, err := c.do(&protocol.Message{Type: protocol.MsgStats})
	if err != nil {
		return protocol.Stats{}, err
	}
	if resp.Type != protocol.MsgStatsResult {
		return protocol.Stats{}, fmt.Errorf("client: unexpected stats response type %d", resp.Type)
	}
	return resp.Stats, nil
}

// Close closes all pooled connections. In-flight transactions on dedicated
// connections are not waited for; their sessions end server-side when the
// connections close.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	for _, cn := range c.idle {
		cn.close()
	}
	c.idle = nil
	return nil
}

// Tx is an interactive transaction pinned to one connection. Not safe for
// concurrent use (sessions execute requests serially anyway).
type Tx struct {
	c    *Client
	cn   *conn
	id   uint64
	done bool
}

// Begin opens an interactive transaction on a dedicated pooled connection.
// The server enforces its transaction deadline: an abandoned transaction is
// rolled back server-side and later operations fail with a typed
// txn-expired error.
func (c *Client) Begin() (*Tx, error) {
	req := &protocol.Message{Type: protocol.MsgBegin}
	buf, start := c.traced(req)
	tx, err := c.begin(req, buf)
	if buf != nil {
		c.offerTrace(buf, req, start, err)
	}
	return tx, err
}

func (c *Client) begin(req *protocol.Message, buf *span.Buf) (*Tx, error) {
	var t0 time.Time
	if buf != nil {
		t0 = time.Now()
	}
	cn, err := c.get()
	if buf != nil {
		buf.Record(span.StagePoolCheckout, span.RootID, t0, time.Since(t0))
	}
	if err != nil {
		return nil, err
	}
	if buf != nil {
		t0 = time.Now()
	}
	resp, err := c.roundtrip(cn, req)
	if buf != nil {
		buf.Record(span.StageRTT, span.RootID, t0, time.Since(t0))
	}
	if err != nil {
		cn.close()
		return nil, err
	}
	if resp.Type == protocol.MsgError {
		if connRefused(resp.Code) {
			cn.close()
		} else {
			c.put(cn)
		}
		return nil, &protocol.ServerError{Code: resp.Code, Msg: resp.Err}
	}
	if resp.Type != protocol.MsgTxState {
		cn.close()
		return nil, fmt.Errorf("client: unexpected begin response type %d", resp.Type)
	}
	return &Tx{c: c, cn: cn, id: resp.TxnID}, nil
}

// ID returns the server-assigned transaction ID.
func (t *Tx) ID() uint64 { return t.id }

// ErrTxDone reports use of a finished transaction handle.
var ErrTxDone = errors.New("client: transaction already finished")

// do runs one request on the transaction's pinned connection. Server errors
// keep the connection (the session survives; on conflict/expiry the server
// already dropped the transaction); transport errors poison the handle.
func (t *Tx) do(req *protocol.Message) (*protocol.Message, error) {
	if t.done {
		return nil, ErrTxDone
	}
	buf, start := t.c.traced(req)
	resp, err := t.doPinned(req, buf)
	if buf != nil {
		t.c.offerTrace(buf, req, start, err)
	}
	return resp, err
}

func (t *Tx) doPinned(req *protocol.Message, buf *span.Buf) (*protocol.Message, error) {
	var t0 time.Time
	if buf != nil {
		t0 = time.Now()
	}
	resp, err := t.c.roundtrip(t.cn, req)
	if buf != nil {
		buf.Record(span.StageRTT, span.RootID, t0, time.Since(t0))
	}
	if err != nil {
		if errors.Is(err, protocol.ErrFrameTooLarge) {
			return nil, err // local failure; transaction and conn stay live
		}
		t.done = true
		t.cn.close()
		return nil, err
	}
	if resp.Type == protocol.MsgError {
		return nil, &protocol.ServerError{Code: resp.Code, Msg: resp.Err}
	}
	return resp, nil
}

// finish releases the pinned connection back to the pool.
func (t *Tx) finish() {
	if !t.done {
		t.done = true
		t.c.put(t.cn)
	}
}

// Query runs one statement inside the transaction.
func (t *Tx) Query(sql string, args ...any) (*Result, error) {
	row, err := toArgs(args)
	if err != nil {
		return nil, err
	}
	resp, err := t.do(&protocol.Message{Type: protocol.MsgQuery, SQL: sql, Args: row})
	if err != nil {
		return nil, err
	}
	return resultFrom(resp)
}

// Exec is Query for writes.
func (t *Tx) Exec(sql string, args ...any) (*Result, error) {
	row, err := toArgs(args)
	if err != nil {
		return nil, err
	}
	resp, err := t.do(&protocol.Message{Type: protocol.MsgExec, SQL: sql, Args: row})
	if err != nil {
		return nil, err
	}
	return resultFrom(resp)
}

// Commit commits the transaction. A serialization conflict surfaces as a
// *protocol.ServerError with CodeConflict (check protocol.IsConflict) — the
// transaction is gone server-side and the caller retries from Begin.
func (t *Tx) Commit() (uint64, error) {
	resp, err := t.do(&protocol.Message{Type: protocol.MsgCommit})
	if err != nil {
		var se *protocol.ServerError
		if errors.As(err, &se) {
			t.finish() // session survives; transaction is finished either way
		}
		return 0, err
	}
	t.finish()
	return resp.Seq, nil
}

// Rollback aborts the transaction.
func (t *Tx) Rollback() error {
	_, err := t.do(&protocol.Message{Type: protocol.MsgRollback})
	var se *protocol.ServerError
	if err != nil && !errors.As(err, &se) {
		return err // transport failure; handle already poisoned
	}
	t.finish()
	if protocol.IsCode(err, protocol.CodeTxnState) {
		// The server already dropped the transaction (deadline expiry);
		// rolling back an absent transaction is success for the caller.
		return nil
	}
	return err
}
