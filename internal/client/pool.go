package client

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/protocol"
)

// Pool is a read/write-splitting client over a replicated trod cluster:
// queries round-robin across the replicas, while writes, DDL, and
// interactive transactions always go to the primary. With no replicas it
// degenerates to a plain primary client.
//
// Routing is availability-first: a replica that fails with a transport
// error, a busy/shutdown rejection, or a read-only rejection (the statement
// was actually a write) falls through — first to the next replica, finally
// to the primary. Deterministic statement failures (SQL errors) return
// immediately; retrying them elsewhere would just fail again.
//
// Reads served by replicas are consistent snapshots of a commit-order
// prefix of the primary's history, but may trail the primary by the
// replication lag; use QueryPrimary when read-your-writes is required.
type Pool struct {
	primary  *Client
	replicas []*Client
	rr       atomic.Uint64
}

// NewPool dials the primary and every replica. Any dial failure closes the
// already-opened clients and fails the pool: a replica that is down at pool
// construction is a deployment error, not a condition to silently tolerate.
func NewPool(primaryAddr string, replicaAddrs []string, opts Options) (*Pool, error) {
	primary, err := Dial(primaryAddr, opts)
	if err != nil {
		return nil, fmt.Errorf("pool: primary %s: %w", primaryAddr, err)
	}
	p := &Pool{primary: primary}
	for _, addr := range replicaAddrs {
		c, err := Dial(addr, opts)
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("pool: replica %s: %w", addr, err)
		}
		p.replicas = append(p.replicas, c)
	}
	return p, nil
}

// Primary exposes the primary's client (transactions, stats, writes).
func (p *Pool) Primary() *Client { return p.primary }

// Replicas reports the number of pooled replicas.
func (p *Pool) Replicas() int { return len(p.replicas) }

// retriableElsewhere reports errors worth retrying on another server:
// transport failures and availability rejections. SQL and protocol-state
// errors are deterministic and surface immediately.
func retriableElsewhere(err error) bool {
	var se *protocol.ServerError
	if !errors.As(err, &se) {
		return true // transport failure: this server is unreachable
	}
	switch se.Code {
	case protocol.CodeBusy, protocol.CodeShutdown, protocol.CodeReadOnly:
		return true
	}
	return false
}

// Query runs a read statement on a replica (round-robin), falling back to
// further replicas and finally the primary when a server is unavailable.
func (p *Pool) Query(sql string, args ...any) (*Result, error) {
	if len(p.replicas) == 0 {
		return p.primary.Query(sql, args...)
	}
	start := p.rr.Add(1)
	var lastErr error
	for i := 0; i < len(p.replicas); i++ {
		c := p.replicas[int((start+uint64(i))%uint64(len(p.replicas)))]
		res, err := c.Query(sql, args...)
		if err == nil {
			return res, nil
		}
		if !retriableElsewhere(err) {
			return nil, err
		}
		lastErr = err
		if protocol.IsReadOnly(err) {
			break // it's a write; no replica will take it
		}
	}
	res, err := p.primary.Query(sql, args...)
	if err != nil && lastErr != nil {
		return nil, fmt.Errorf("%w (replica: %v)", err, lastErr)
	}
	return res, err
}

// QueryPrimary runs a read on the primary (read-your-writes freshness).
func (p *Pool) QueryPrimary(sql string, args ...any) (*Result, error) {
	return p.primary.Query(sql, args...)
}

// Exec runs a write or DDL statement on the primary.
func (p *Pool) Exec(sql string, args ...any) (*Result, error) {
	return p.primary.Exec(sql, args...)
}

// Begin opens an interactive transaction on the primary.
func (p *Pool) Begin() (*Tx, error) { return p.primary.Begin() }

// Stats fetches the primary's server counters.
func (p *Pool) Stats() (protocol.Stats, error) { return p.primary.Stats() }

// ReplicaStats fetches one replica's server counters (applied sequence and
// lag live there).
func (p *Pool) ReplicaStats(i int) (protocol.Stats, error) {
	if i < 0 || i >= len(p.replicas) {
		return protocol.Stats{}, fmt.Errorf("pool: no replica %d", i)
	}
	return p.replicas[i].Stats()
}

// Close closes every pooled client.
func (p *Pool) Close() error {
	err := p.primary.Close()
	for _, c := range p.replicas {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
