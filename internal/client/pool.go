package client

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/protocol"
)

// Pool is a read/write-splitting, failover-aware client over a replicated
// trod cluster: queries round-robin across the replicas, while writes, DDL,
// and interactive transactions go to the primary. With no replicas it
// degenerates to a plain primary client.
//
// The pool knows the cluster's member set. When the primary stops answering
// (transport failure, shutdown, or a typed fenced rejection), the pool marks
// it down and starts re-discovery: it polls every member's Stats for a
// writable, un-fenced node at a newer replication epoch — the promoted
// replica — and re-routes writes to it. While the search runs, writes fail
// fast with the typed, retryable ErrNoPrimary instead of hanging or being
// silently dropped: a write whose response was lost is *unknown*, never
// retried automatically (retrying it could double-apply), and callers decide
// with Retryable.
//
// Reads served by replicas are consistent snapshots of a commit-order
// prefix of the primary's history, but may trail the primary by the
// replication lag; use QueryPrimary when read-your-writes is required.
type Pool struct {
	opts Options

	mu      sync.Mutex
	members []*member
	primary int    // index into members of the believed primary
	epoch   uint64 // newest primary replication epoch observed
	down    bool   // primary suspected dead; writes fail fast until re-discovery
	search  bool   // single-flight guard for the re-discovery goroutine
	closed  bool

	rr atomic.Uint64
}

// member is one cluster node the pool knows about.
type member struct {
	addr string
	c    *Client
}

// ErrNoPrimary reports a write (or transaction) routed while the primary is
// unreachable and re-discovery has not yet confirmed its successor. It is
// retryable: the write was NOT sent anywhere.
var ErrNoPrimary = errors.New("pool: no live primary (failover in progress); retry")

// NewPool dials the primary and every replica. Any dial failure closes the
// already-opened clients and fails the pool: a replica that is down at pool
// construction is a deployment error, not a condition to silently tolerate.
func NewPool(primaryAddr string, replicaAddrs []string, opts Options) (*Pool, error) {
	p := &Pool{opts: (&opts).withDefaults()}
	primary, err := Dial(primaryAddr, opts)
	if err != nil {
		return nil, fmt.Errorf("pool: primary %s: %w", primaryAddr, err)
	}
	p.members = append(p.members, &member{addr: primaryAddr, c: primary})
	for _, addr := range replicaAddrs {
		c, err := Dial(addr, opts)
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("pool: replica %s: %w", addr, err)
		}
		p.members = append(p.members, &member{addr: addr, c: c})
	}
	// Learn the starting epoch (best effort — a pre-failover server reports
	// 0, which is also the zero value).
	if st, err := primary.Stats(); err == nil {
		p.epoch = st.Epoch
	}
	return p, nil
}

// Primary exposes the current primary's client (transactions, stats,
// writes). During a failover it still returns the last known primary; use
// Exec/Begin for routed access with failure detection.
func (p *Pool) Primary() *Client {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.members[p.primary].c
}

// PrimaryAddr returns the address writes are currently routed to.
func (p *Pool) PrimaryAddr() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.members[p.primary].addr
}

// Replicas reports the number of pooled members currently serving as
// replicas (everything but the primary).
func (p *Pool) Replicas() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.members) - 1
}

// Retryable reports whether an error from the pool is safe and useful to
// retry: the request was rejected before reaching a primary (ErrNoPrimary),
// bounced by admission control or a draining/fenced/read-only server, or
// failed in transport *on a read path*. Write callers seeing a transport
// error got it wrapped in ErrNoPrimary precisely because the write's fate
// is unknown — retrying an INSERT needs an idempotent key; Retryable only
// says the cluster may accept it now.
func Retryable(err error) bool {
	if errors.Is(err, ErrNoPrimary) {
		return true
	}
	var se *protocol.ServerError
	if !errors.As(err, &se) {
		return true // transport failure: the node was unreachable
	}
	switch se.Code {
	case protocol.CodeBusy, protocol.CodeShutdown, protocol.CodeReadOnly, protocol.CodeFenced:
		return true
	}
	return false
}

// retriableElsewhere reports errors worth retrying on another server:
// transport failures and availability rejections. SQL and protocol-state
// errors are deterministic and surface immediately.
func retriableElsewhere(err error) bool {
	var se *protocol.ServerError
	if !errors.As(err, &se) {
		return true // transport failure: this server is unreachable
	}
	switch se.Code {
	case protocol.CodeBusy, protocol.CodeShutdown, protocol.CodeReadOnly, protocol.CodeFenced:
		return true
	}
	return false
}

// primaryFailure reports errors that mean the node can no longer serve as
// the primary: unreachable, draining, fenced by a newer epoch, or demoted
// to read-only. Busy and SQL-level errors are not failover signals.
func primaryFailure(err error) bool {
	var se *protocol.ServerError
	if !errors.As(err, &se) {
		return true
	}
	switch se.Code {
	case protocol.CodeShutdown, protocol.CodeFenced, protocol.CodeReadOnly:
		return true
	}
	return false
}

// snapshot returns the member list, primary index, and down flag under one
// lock acquisition.
func (p *Pool) snapshot() (members []*member, primary int, down bool, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, 0, false, ErrClosed
	}
	return p.members, p.primary, p.down, nil
}

// primaryClient returns the live primary's client, or fails fast (and kicks
// re-discovery) while the primary is down.
func (p *Pool) primaryClient() (*Client, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, ErrClosed
	}
	if p.down {
		p.kickRediscoveryLocked()
		return nil, ErrNoPrimary
	}
	return p.members[p.primary].c, nil
}

// suspectPrimary marks the primary down after a failure observed on c and
// starts re-discovery. A stale report (the pool already failed over to a
// different node) is ignored.
func (p *Pool) suspectPrimary(c *Client) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed || p.members[p.primary].c != c {
		return
	}
	p.down = true
	p.kickRediscoveryLocked()
}

// kickRediscoveryLocked starts the single-flight re-discovery goroutine.
// Caller holds p.mu.
func (p *Pool) kickRediscoveryLocked() {
	if p.search {
		return
	}
	p.search = true
	go p.rediscover()
}

// Re-discovery pacing: how often members are polled and how long the search
// runs before giving up (a later write kicks a fresh one).
const (
	rediscoverInterval = 50 * time.Millisecond
	rediscoverTimeout  = 15 * time.Second
)

// rediscover polls every member's Stats for the cluster's new primary: a
// writable, un-fenced node at an epoch newer than the last one we wrote
// under (promotion always bumps the epoch — an old primary that merely
// restarted reports the same epoch and is accepted only at its old slot,
// which covers recovery-without-failover).
func (p *Pool) rediscover() {
	deadline := time.Now().Add(rediscoverTimeout)
	for {
		p.mu.Lock()
		if p.closed {
			p.search = false
			p.mu.Unlock()
			return
		}
		members := append([]*member(nil), p.members...)
		oldPrimary := p.primary
		knownEpoch := p.epoch
		p.mu.Unlock()

		best, bestEpoch := -1, uint64(0)
		for i, m := range members {
			st, err := m.c.Stats()
			if err != nil || st.IsReplica != 0 || st.Fenced != 0 {
				continue
			}
			acceptable := st.Epoch > knownEpoch || (st.Epoch == knownEpoch && i == oldPrimary)
			if acceptable && (best < 0 || st.Epoch > bestEpoch) {
				best, bestEpoch = i, st.Epoch
			}
		}
		if best >= 0 {
			p.mu.Lock()
			p.primary = best
			p.epoch = bestEpoch
			p.down = false
			p.search = false
			p.mu.Unlock()
			return
		}
		if time.Now().After(deadline) {
			p.mu.Lock()
			p.search = false // give up; the next write starts a fresh search
			p.mu.Unlock()
			return
		}
		time.Sleep(rediscoverInterval)
	}
}

// AwaitPrimary blocks until the pool has a live primary (initial state or
// completed failover) or the timeout expires, and reports success. It does
// not itself probe the cluster; it observes the re-discovery kicked off by
// failed writes.
func (p *Pool) AwaitPrimary(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		p.mu.Lock()
		down, closed := p.down, p.closed
		p.mu.Unlock()
		if closed {
			return false
		}
		if !down {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Query runs a read statement on a replica (round-robin), falling back to
// further replicas and finally the primary when a server is unavailable.
// During a failover the primary fallback is skipped (it is known dead).
func (p *Pool) Query(sql string, args ...any) (*Result, error) {
	members, primary, down, err := p.snapshot()
	if err != nil {
		return nil, err
	}
	if len(members) == 1 {
		return members[0].c.Query(sql, args...)
	}
	replicas := make([]*member, 0, len(members)-1)
	for i, m := range members {
		if i != primary {
			replicas = append(replicas, m)
		}
	}
	start := p.rr.Add(1)
	var lastErr error
	for i := 0; i < len(replicas); i++ {
		m := replicas[int((start+uint64(i))%uint64(len(replicas)))]
		res, err := m.c.Query(sql, args...)
		if err == nil {
			return res, nil
		}
		if !retriableElsewhere(err) {
			return nil, err
		}
		lastErr = err
		if protocol.IsReadOnly(err) {
			break // it's a write; no replica will take it
		}
	}
	if down {
		return nil, fmt.Errorf("%w (replica: %v)", ErrNoPrimary, lastErr)
	}
	res, err := members[primary].c.Query(sql, args...)
	if err != nil && lastErr != nil {
		return nil, fmt.Errorf("%w (replica: %v)", err, lastErr)
	}
	return res, err
}

// QueryPrimary runs a read on the primary (read-your-writes freshness).
func (p *Pool) QueryPrimary(sql string, args ...any) (*Result, error) {
	c, err := p.primaryClient()
	if err != nil {
		return nil, err
	}
	res, err := c.Query(sql, args...)
	if err != nil && primaryFailure(err) {
		p.suspectPrimary(c)
		return nil, fmt.Errorf("%w (primary: %v)", ErrNoPrimary, err)
	}
	return res, err
}

// Exec runs a write or DDL statement on the primary. When the primary fails
// mid-request the statement's fate is unknown; the typed ErrNoPrimary makes
// that explicit instead of silently dropping or double-applying it.
func (p *Pool) Exec(sql string, args ...any) (*Result, error) {
	c, err := p.primaryClient()
	if err != nil {
		return nil, err
	}
	res, err := c.Exec(sql, args...)
	if err != nil && primaryFailure(err) {
		p.suspectPrimary(c)
		return nil, fmt.Errorf("%w (primary: %v)", ErrNoPrimary, err)
	}
	return res, err
}

// Begin opens an interactive transaction on the primary.
func (p *Pool) Begin() (*Tx, error) {
	c, err := p.primaryClient()
	if err != nil {
		return nil, err
	}
	tx, err := c.Begin()
	if err != nil && primaryFailure(err) {
		p.suspectPrimary(c)
		return nil, fmt.Errorf("%w (primary: %v)", ErrNoPrimary, err)
	}
	return tx, err
}

// Stats fetches the current primary's server counters.
func (p *Pool) Stats() (protocol.Stats, error) {
	c, err := p.primaryClient()
	if err != nil {
		return protocol.Stats{}, err
	}
	return c.Stats()
}

// ReplicaStats fetches one replica's server counters (applied sequence and
// lag live there), indexing the current non-primary members.
func (p *Pool) ReplicaStats(i int) (protocol.Stats, error) {
	members, primary, _, err := p.snapshot()
	if err != nil {
		return protocol.Stats{}, err
	}
	replicas := make([]*member, 0, len(members)-1)
	for j, m := range members {
		if j != primary {
			replicas = append(replicas, m)
		}
	}
	if i < 0 || i >= len(replicas) {
		return protocol.Stats{}, fmt.Errorf("pool: no replica %d", i)
	}
	return replicas[i].c.Stats()
}

// Close closes every pooled client.
func (p *Pool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	members := p.members
	p.mu.Unlock()
	var err error
	for _, m := range members {
		if cerr := m.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
