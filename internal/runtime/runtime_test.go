package runtime

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/db"
)

func newApp(t *testing.T) *App {
	t.Helper()
	d := db.MustOpenMemory()
	t.Cleanup(func() { d.Close() })
	if err := d.ExecScript(`CREATE TABLE kv (k TEXT PRIMARY KEY, v INTEGER)`); err != nil {
		t.Fatal(err)
	}
	return New(d)
}

// recObserver records every runtime event.
type recObserver struct {
	mu        sync.Mutex
	starts    []RequestInfo
	ends      []RequestInfo
	invs      []InvocationInfo
	externals []ExternalCall
}

func (r *recObserver) RequestStart(i RequestInfo) {
	r.mu.Lock()
	r.starts = append(r.starts, i)
	r.mu.Unlock()
}
func (r *recObserver) RequestEnd(i RequestInfo) {
	r.mu.Lock()
	r.ends = append(r.ends, i)
	r.mu.Unlock()
}
func (r *recObserver) Invocation(i InvocationInfo) {
	r.mu.Lock()
	r.invs = append(r.invs, i)
	r.mu.Unlock()
}
func (r *recObserver) External(e ExternalCall) {
	r.mu.Lock()
	r.externals = append(r.externals, e)
	r.mu.Unlock()
}

func TestArgsAccessors(t *testing.T) {
	a := Args{"s": "str", "i": 42, "i64": int64(7), "f": 2.9, "b": true}
	if a.String("s") != "str" || a.String("missing") != "" {
		t.Error("String accessor")
	}
	if a.Int("i") != 42 || a.Int("i64") != 7 || a.Int("f") != 2 || a.Int("missing") != 0 {
		t.Error("Int accessor")
	}
	if !a.Bool("b") || a.Bool("missing") {
		t.Error("Bool accessor")
	}
	cp := a.Clone()
	cp["s"] = "other"
	if a.String("s") != "str" {
		t.Error("Clone aliases")
	}
}

func TestInvokeBasic(t *testing.T) {
	app := newApp(t)
	app.Register("put", func(c *Ctx, args Args) (any, error) {
		_, err := c.Exec("put", `INSERT INTO kv VALUES (?, ?)`, args.String("k"), args.Int("v"))
		return nil, err
	})
	app.Register("get", func(c *Ctx, args Args) (any, error) {
		rows, err := c.Query("get", `SELECT v FROM kv WHERE k = ?`, args.String("k"))
		if err != nil {
			return nil, err
		}
		if len(rows.Rows) == 0 {
			return nil, nil
		}
		return rows.Rows[0][0].AsInt(), nil
	})
	if _, err := app.Invoke("put", Args{"k": "a", "v": 5}); err != nil {
		t.Fatal(err)
	}
	got, err := app.Invoke("get", Args{"k": "a"})
	if err != nil || got.(int64) != 5 {
		t.Fatalf("get = %v, %v", got, err)
	}
	if _, err := app.Invoke("nope", nil); !errors.Is(err, ErrUnknownHandler) {
		t.Errorf("unknown handler error = %v", err)
	}
}

func TestReqIDsAreUniqueAndSequential(t *testing.T) {
	app := newApp(t)
	app.Register("noop", func(*Ctx, Args) (any, error) { return nil, nil })
	obs := &recObserver{}
	app.SetObserver(obs)
	for i := 0; i < 3; i++ {
		app.Invoke("noop", nil)
	}
	if len(obs.starts) != 3 || obs.starts[0].ReqID != "R1" || obs.starts[2].ReqID != "R3" {
		t.Errorf("req ids = %+v", obs.starts)
	}
}

func TestWorkflowRPCPropagation(t *testing.T) {
	app := newApp(t)
	obs := &recObserver{}
	app.SetObserver(obs)
	var seenReqID string
	app.Register("leaf", func(c *Ctx, args Args) (any, error) {
		seenReqID = c.ReqID
		return "leaf-result", nil
	})
	app.Register("mid", func(c *Ctx, args Args) (any, error) {
		return c.Call("leaf", nil)
	})
	app.Register("entry", func(c *Ctx, args Args) (any, error) {
		return c.Call("mid", nil)
	})
	res, err := app.InvokeWithReqID("R77", "entry", nil)
	if err != nil || res != "leaf-result" {
		t.Fatalf("workflow = %v, %v", res, err)
	}
	if seenReqID != "R77" {
		t.Errorf("ReqID did not propagate: %q", seenReqID)
	}
	// Invocation tree: entry R77/0, mid R77/0.1, leaf R77/0.1.1.
	if len(obs.invs) != 3 {
		t.Fatalf("invocations = %+v", obs.invs)
	}
	if obs.invs[0].InvocationID != "R77/0" || obs.invs[0].Parent != "" {
		t.Errorf("entry inv = %+v", obs.invs[0])
	}
	if obs.invs[1].InvocationID != "R77/0.1" || obs.invs[1].Parent != "R77/0" {
		t.Errorf("mid inv = %+v", obs.invs[1])
	}
	if obs.invs[2].InvocationID != "R77/0.1.1" || obs.invs[2].Parent != "R77/0.1" {
		t.Errorf("leaf inv = %+v", obs.invs[2])
	}
	// Calling an unknown handler through RPC fails cleanly.
	app.Register("bad", func(c *Ctx, args Args) (any, error) { return c.Call("ghost", nil) })
	if _, err := app.Invoke("bad", nil); !errors.Is(err, ErrUnknownHandler) {
		t.Errorf("rpc unknown = %v", err)
	}
}

func TestTxnMetaAttached(t *testing.T) {
	app := newApp(t)
	var metas []db.TxMeta
	app.DB().SetHooks(db.Hooks{OnCommit: func(tr db.TxnTrace) { metas = append(metas, tr.Meta) }})
	app.Register("subscribeUser", func(c *Ctx, args Args) (any, error) {
		if _, err := c.Query("isSubscribed", `SELECT * FROM kv WHERE k = 'x'`); err != nil {
			return nil, err
		}
		_, err := c.Exec("DB.insert", `INSERT INTO kv VALUES ('x', 1)`)
		return nil, err
	})
	if _, err := app.InvokeWithReqID("R1", "subscribeUser", nil); err != nil {
		t.Fatal(err)
	}
	if len(metas) != 2 {
		t.Fatalf("metas = %+v", metas)
	}
	if metas[0].ReqID != "R1" || metas[0].Handler != "subscribeUser" || metas[0].Func != "isSubscribed" {
		t.Errorf("meta[0] = %+v", metas[0])
	}
	if metas[1].Func != "DB.insert" {
		t.Errorf("meta[1] = %+v", metas[1])
	}
}

func TestTxnInterceptorOrdering(t *testing.T) {
	app := newApp(t)
	var events []string
	app.SetTxnInterceptor(interceptFn{
		before: func(c *Ctx, label string) error {
			events = append(events, "before:"+label)
			return nil
		},
		after: func(c *Ctx, label string, err error) {
			events = append(events, "after:"+label)
		},
	})
	app.Register("h", func(c *Ctx, args Args) (any, error) {
		if err := c.Txn("t1", func(tx *db.Tx) error { return nil }); err != nil {
			return nil, err
		}
		return nil, c.Txn("t2", func(tx *db.Tx) error { return nil })
	})
	if _, err := app.Invoke("h", nil); err != nil {
		t.Fatal(err)
	}
	want := "[before:t1 after:t1 before:t2 after:t2]"
	if fmt.Sprint(events) != want {
		t.Errorf("interceptor events = %v, want %v", events, want)
	}
}

func TestTxnInterceptorBeforeErrorAborts(t *testing.T) {
	app := newApp(t)
	sentinel := errors.New("blocked by scheduler")
	app.SetTxnInterceptor(interceptFn{
		before: func(*Ctx, string) error { return sentinel },
		after:  func(*Ctx, string, error) {},
	})
	app.Register("h", func(c *Ctx, args Args) (any, error) {
		return nil, c.Txn("t", func(tx *db.Tx) error {
			t.Error("txn body must not run")
			return nil
		})
	})
	if _, err := app.Invoke("h", nil); !errors.Is(err, sentinel) {
		t.Errorf("err = %v", err)
	}
}

type interceptFn struct {
	before func(*Ctx, string) error
	after  func(*Ctx, string, error)
}

func (i interceptFn) Before(c *Ctx, label string) error     { return i.before(c, label) }
func (i interceptFn) After(c *Ctx, label string, err error) { i.after(c, label, err) }

func TestExternalCallIdempotency(t *testing.T) {
	app := newApp(t)
	obs := &recObserver{}
	app.SetObserver(obs)
	app.Register("notify", func(c *Ctx, args Args) (any, error) {
		r1 := c.External("email", "hello")
		r2 := c.External("email", "hello") // deduplicated
		if r1 != r2 {
			t.Error("idempotent call returned different results")
		}
		return r1, nil
	})
	res, err := app.InvokeWithReqID("R9", "notify", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.(string), "email") {
		t.Errorf("external result = %v", res)
	}
	if len(obs.externals) != 1 {
		t.Errorf("external side effects = %d, want 1 (dedup)", len(obs.externals))
	}
	// Re-invoking the same request (replay) must not re-fire the external.
	if _, err := app.InvokeWithReqID("R9", "notify", nil); err != nil {
		t.Fatal(err)
	}
	if len(obs.externals) != 1 {
		t.Errorf("replay re-fired external call: %d", len(obs.externals))
	}
}

func TestLogicalClockMonotonic(t *testing.T) {
	app := newApp(t)
	var prev uint64
	for i := 0; i < 100; i++ {
		l := app.NextLogical()
		if l <= prev {
			t.Fatalf("logical clock went backwards: %d after %d", l, prev)
		}
		prev = l
	}
}

func TestHandlerErrorPropagatesAndIsObserved(t *testing.T) {
	app := newApp(t)
	obs := &recObserver{}
	app.SetObserver(obs)
	sentinel := errors.New("handler failed")
	app.Register("fail", func(*Ctx, Args) (any, error) { return nil, sentinel })
	if _, err := app.Invoke("fail", nil); !errors.Is(err, sentinel) {
		t.Errorf("err = %v", err)
	}
	if len(obs.ends) != 1 || !errors.Is(obs.ends[0].Err, sentinel) {
		t.Errorf("observer end = %+v", obs.ends)
	}
}

func TestConcurrentRequestsSafe(t *testing.T) {
	app := newApp(t)
	app.DB().ExecScript(`INSERT INTO kv VALUES ('n', 0)`)
	app.Register("inc", func(c *Ctx, args Args) (any, error) {
		return nil, c.Txn("inc", func(tx *db.Tx) error {
			rows, err := tx.Query(`SELECT v FROM kv WHERE k = 'n'`)
			if err != nil {
				return err
			}
			_, err = tx.Exec(`UPDATE kv SET v = ? WHERE k = 'n'`, rows.Rows[0][0].AsInt()+1)
			return err
		})
	})
	const workers, each = 6, 10
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := app.Invoke("inc", nil); err != nil {
					t.Errorf("inc: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	rows, _ := app.DB().Query(`SELECT v FROM kv WHERE k = 'n'`)
	if got := rows.Rows[0][0].AsInt(); got != workers*each {
		t.Errorf("counter = %d, want %d", got, workers*each)
	}
}

func TestRegisterReplacesHandler(t *testing.T) {
	app := newApp(t)
	app.Register("h", func(*Ctx, Args) (any, error) { return "v1", nil })
	app.Register("h", func(*Ctx, Args) (any, error) { return "v2", nil })
	res, _ := app.Invoke("h", nil)
	if res != "v2" {
		t.Errorf("handler not replaced: %v", res)
	}
	if got := app.Handlers(); len(got) != 1 || got[0] != "h" {
		t.Errorf("Handlers() = %v", got)
	}
}

func TestArgsToRowDeterministic(t *testing.T) {
	a := Args{"z": 1, "a": "x", "m": true}
	s1, err := ArgsToRow(a)
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := ArgsToRow(a)
	if s1 != s2 {
		t.Error("ArgsToRow not deterministic")
	}
	if !strings.Contains(s1, "a=x") || !strings.Contains(s1, "z=1") {
		t.Errorf("rendered = %q", s1)
	}
	if _, err := ArgsToRow(Args{"bad": struct{}{}}); err == nil {
		t.Error("unsupported arg should fail")
	}
}
