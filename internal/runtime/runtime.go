// Package runtime implements the transactional serverless-function
// application substrate TROD targets (paper §3.1): a registry of request
// handlers, workflows of handler→handler invocations (in-process RPCs), a
// propagated request ID, explicit transaction blocks, and interposition
// points for the TROD tracer, replay engine, and retroactive-programming
// scheduler.
//
// The runtime enforces the TROD design principles structurally:
//
//	P1 — all shared state lives in the attached database;
//	P2 — handlers touch that state only through Ctx.Txn blocks;
//	P3 — handlers receive only their arguments and database state, and the
//	     runtime supplies a logical clock instead of wall time, so a handler
//	     is deterministic unless it goes out of its way not to be.
package runtime

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/db"
	"repro/internal/value"
)

// Args carries named handler arguments. Values must be db-representable
// (nil, bool, integers, floats, string, []byte).
type Args map[string]any

// String returns the named argument as a string ("" when absent).
func (a Args) String(key string) string {
	if v, ok := a[key].(string); ok {
		return v
	}
	return ""
}

// Int returns the named argument as an int64 (0 when absent).
func (a Args) Int(key string) int64 {
	switch v := a[key].(type) {
	case int:
		return int64(v)
	case int64:
		return v
	case float64:
		return int64(v)
	}
	return 0
}

// Bool returns the named argument as a bool.
func (a Args) Bool(key string) bool {
	if v, ok := a[key].(bool); ok {
		return v
	}
	return false
}

// Clone returns a shallow copy (argument values are immutable scalars).
func (a Args) Clone() Args {
	cp := make(Args, len(a))
	for k, v := range a {
		cp[k] = v
	}
	return cp
}

// sortedKeys helps render args deterministically.
func (a Args) sortedKeys() []string {
	keys := make([]string, 0, len(a))
	for k := range a {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// String renders args as "k1=v1 k2=v2" in key order.
func (a Args) String2() string {
	parts := make([]string, 0, len(a))
	for _, k := range a.sortedKeys() {
		parts = append(parts, fmt.Sprintf("%s=%v", k, a[k]))
	}
	return fmt.Sprint(parts)
}

// Handler is a request handler: deterministic business logic over its
// arguments and transactional database access.
type Handler func(c *Ctx, args Args) (any, error)

// RequestInfo describes one top-level request for observers.
type RequestInfo struct {
	ReqID        string
	Handler      string
	Args         Args
	Start        time.Time
	End          time.Time
	LogicalStart uint64
	Err          error
	Result       any
}

// InvocationInfo describes one handler invocation (top-level or RPC).
type InvocationInfo struct {
	ReqID        string
	InvocationID string
	Parent       string // parent invocation ID, "" for the entry handler
	Handler      string
	Logical      uint64
}

// ExternalCall describes an external-service call mocked by the runtime
// (assumed idempotent per the paper's simplifying assumptions, §3.1).
type ExternalCall struct {
	ReqID          string
	InvocationID   string
	Service        string
	Payload        string
	IdempotencyKey string
	Logical        uint64
}

// Observer receives runtime events; the TROD tracer implements it.
type Observer interface {
	RequestStart(RequestInfo)
	RequestEnd(RequestInfo)
	Invocation(InvocationInfo)
	External(ExternalCall)
}

// TxnInterceptor interposes on every transaction block. The TROD replay
// engine uses Before to restore dependent state ("breakpoints before each
// transaction", §3.5); the retroactive-programming scheduler uses it to
// serialise transactions into a chosen interleaving (§3.6).
type TxnInterceptor interface {
	// Before runs before the transaction block begins. Returning an error
	// aborts the handler.
	Before(c *Ctx, fnLabel string) error
	// After runs after the block's commit attempt, with its error.
	After(c *Ctx, fnLabel string, err error)
}

// App is the application runtime: a handler registry bound to a database.
type App struct {
	db        *db.DB
	mu        sync.RWMutex
	handlers  map[string]Handler
	observer  Observer
	intercept TxnInterceptor

	reqCounter uint64
	logical    uint64 // logical event clock (deterministic "timestamp")

	// externalResults lets tests and retro runs stub external services.
	externalMu      sync.Mutex
	externalResults map[string]string // idempotency key -> result (dedup)
}

// New creates an application runtime over a database.
func New(database *db.DB) *App {
	return &App{
		db:              database,
		handlers:        make(map[string]Handler),
		externalResults: make(map[string]string),
	}
}

// DB returns the attached database.
func (app *App) DB() *db.DB { return app.db }

// Register installs a handler under name. Re-registering replaces the
// handler — that is exactly what retroactive programming does with modified
// code (§3.6).
func (app *App) Register(name string, h Handler) {
	app.mu.Lock()
	defer app.mu.Unlock()
	app.handlers[name] = h
}

// Handlers lists registered handler names, sorted.
func (app *App) Handlers() []string {
	app.mu.RLock()
	defer app.mu.RUnlock()
	out := make([]string, 0, len(app.handlers))
	for n := range app.handlers {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// SetObserver installs the tracing observer. Must be set before serving.
func (app *App) SetObserver(o Observer) { app.observer = o }

// SetTxnInterceptor installs the transaction interceptor (replay/retro).
func (app *App) SetTxnInterceptor(ti TxnInterceptor) { app.intercept = ti }

// NextLogical advances and returns the logical clock. Every traced event
// gets a unique, totally ordered logical timestamp; using a logical clock
// keeps replays deterministic (P3).
func (app *App) NextLogical() uint64 { return atomic.AddUint64(&app.logical, 1) }

// NewReqID allocates the next request ID ("R1", "R2", ...).
func (app *App) NewReqID() string {
	n := atomic.AddUint64(&app.reqCounter, 1)
	return fmt.Sprintf("R%d", n)
}

// StartRemote registers an externally driven request — one arriving over
// the network front end rather than through Invoke — under a fresh request
// ID from the same allocator in-process requests use. The observer sees the
// same RequestStart/Invocation events, and the returned finish function
// (which must be called exactly once when the request completes) delivers
// RequestEnd; provenance therefore records remote executions exactly like
// local ones, with interleaved, totally ordered request IDs.
func (app *App) StartRemote(handler string, args Args) (string, func(result any, err error)) {
	reqID := app.NewReqID()
	info := RequestInfo{
		ReqID:        reqID,
		Handler:      handler,
		Args:         args.Clone(),
		Start:        time.Now(),
		LogicalStart: app.NextLogical(),
	}
	if app.observer != nil {
		app.observer.RequestStart(info)
		app.observer.Invocation(InvocationInfo{
			ReqID: reqID, InvocationID: reqID + "/0", Handler: handler, Logical: info.LogicalStart,
		})
	}
	return reqID, func(result any, err error) {
		info.End = time.Now()
		info.Err = err
		info.Result = result
		if app.observer != nil {
			app.observer.RequestEnd(info)
		}
	}
}

// Ctx is the per-invocation handler context.
type Ctx struct {
	app          *App
	ReqID        string
	HandlerName  string
	InvocationID string
	parentInv    string
	txnSeq       uint64 // per-invocation transaction counter
	callSeq      uint64 // per-invocation RPC counter
}

// App returns the runtime (used by TROD layers; handlers should not).
func (c *Ctx) App() *App { return c.app }

// ErrUnknownHandler reports an invocation of an unregistered handler.
var ErrUnknownHandler = errors.New("runtime: unknown handler")

// Invoke serves a new top-level request: it assigns a fresh request ID and
// runs the named handler.
func (app *App) Invoke(handler string, args Args) (any, error) {
	return app.InvokeWithReqID(app.NewReqID(), handler, args)
}

// InvokeWithReqID serves a request under an explicit request ID. Replay and
// retroactive programming use this to re-serve past requests under their
// original IDs.
func (app *App) InvokeWithReqID(reqID, handler string, args Args) (any, error) {
	app.mu.RLock()
	h, ok := app.handlers[handler]
	app.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownHandler, handler)
	}
	info := RequestInfo{
		ReqID:        reqID,
		Handler:      handler,
		Args:         args.Clone(),
		Start:        time.Now(),
		LogicalStart: app.NextLogical(),
	}
	if app.observer != nil {
		app.observer.RequestStart(info)
	}
	c := &Ctx{app: app, ReqID: reqID, HandlerName: handler, InvocationID: reqID + "/0"}
	if app.observer != nil {
		app.observer.Invocation(InvocationInfo{
			ReqID: reqID, InvocationID: c.InvocationID, Handler: handler, Logical: info.LogicalStart,
		})
	}
	result, err := h(c, args)
	info.End = time.Now()
	info.Err = err
	info.Result = result
	if app.observer != nil {
		app.observer.RequestEnd(info)
	}
	return result, err
}

// Call invokes another handler as part of the same request (an RPC in a
// microservice deployment; in-process here). The request ID propagates —
// the paper's workflow-of-handlers model.
func (c *Ctx) Call(handler string, args Args) (any, error) {
	c.app.mu.RLock()
	h, ok := c.app.handlers[handler]
	c.app.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownHandler, handler)
	}
	seq := atomic.AddUint64(&c.callSeq, 1)
	child := &Ctx{
		app:          c.app,
		ReqID:        c.ReqID,
		HandlerName:  handler,
		InvocationID: fmt.Sprintf("%s.%d", c.InvocationID, seq),
		parentInv:    c.InvocationID,
	}
	if c.app.observer != nil {
		c.app.observer.Invocation(InvocationInfo{
			ReqID:        c.ReqID,
			InvocationID: child.InvocationID,
			Parent:       c.InvocationID,
			Handler:      handler,
			Logical:      c.app.NextLogical(),
		})
	}
	return h(child, args)
}

// Txn runs fn as one ACID transaction labelled with the calling function's
// role (the paper's Metadata column, e.g. "isSubscribed"). Serialization
// conflicts retry the whole block. This is the only sanctioned way for
// handlers to touch shared state (P2).
func (c *Ctx) Txn(fnLabel string, fn func(tx *db.Tx) error) error {
	if c.app.intercept != nil {
		if err := c.app.intercept.Before(c, fnLabel); err != nil {
			return err
		}
	}
	meta := db.TxMeta{
		ReqID:    c.ReqID,
		Handler:  c.HandlerName,
		Func:     fnLabel,
		Workflow: c.InvocationID,
	}
	err := c.app.db.RunTx(meta, fn)
	if c.app.intercept != nil {
		c.app.intercept.After(c, fnLabel, err)
	}
	atomic.AddUint64(&c.txnSeq, 1)
	return err
}

// Query runs a single read statement as its own transaction.
func (c *Ctx) Query(fnLabel, query string, args ...any) (*db.Rows, error) {
	var rows *db.Rows
	err := c.Txn(fnLabel, func(tx *db.Tx) error {
		var err error
		rows, err = tx.Query(query, args...)
		return err
	})
	return rows, err
}

// Exec runs a single write statement as its own transaction.
func (c *Ctx) Exec(fnLabel, query string, args ...any) (*db.Rows, error) {
	var rows *db.Rows
	err := c.Txn(fnLabel, func(tx *db.Tx) error {
		var err error
		rows, err = tx.Exec(query, args...)
		return err
	})
	return rows, err
}

// External performs a (mocked) external-service call. Calls are idempotent:
// repeating the same call for the same request returns the recorded result
// without re-executing the side effect — the paper's simplifying assumption
// for replays (§3.1).
func (c *Ctx) External(service, payload string) string {
	key := fmt.Sprintf("%s|%s|%s", c.ReqID, c.InvocationID, service)
	c.app.externalMu.Lock()
	defer c.app.externalMu.Unlock()
	if res, ok := c.app.externalResults[key]; ok {
		return res
	}
	res := fmt.Sprintf("ok:%s(%s)", service, payload)
	c.app.externalResults[key] = res
	if c.app.observer != nil {
		c.app.observer.External(ExternalCall{
			ReqID:          c.ReqID,
			InvocationID:   c.InvocationID,
			Service:        service,
			Payload:        payload,
			IdempotencyKey: key,
			Logical:        c.app.NextLogical(),
		})
	}
	return res
}

// ArgsToRow renders args into (name, value) pairs for provenance storage.
func ArgsToRow(a Args) (string, error) {
	parts := make([]string, 0, len(a))
	for _, k := range a.sortedKeys() {
		v, err := value.FromGo(a[k])
		if err != nil {
			return "", fmt.Errorf("runtime: arg %q: %w", k, err)
		}
		parts = append(parts, fmt.Sprintf("%s=%s", k, v.Display()))
	}
	return fmt.Sprint(parts), nil
}

// ArgsJSON serialises args for provenance storage in a machine-readable
// form, so the replay and retroactive-programming engines can re-serve past
// requests with their original arguments. Arguments must be JSON-safe
// scalars (the same set Args supports).
func ArgsJSON(a Args) (string, error) {
	if a == nil {
		return "{}", nil
	}
	b, err := json.Marshal(map[string]any(a))
	if err != nil {
		return "", fmt.Errorf("runtime: args not serialisable: %w", err)
	}
	return string(b), nil
}

// ParseArgsJSON reverses ArgsJSON. JSON numbers come back as float64; the
// Args accessors normalise them.
func ParseArgsJSON(s string) (Args, error) {
	if s == "" {
		return Args{}, nil
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(s), &m); err != nil {
		return nil, fmt.Errorf("runtime: bad args JSON: %w", err)
	}
	return Args(m), nil
}

// ResultJSON serialises a handler result for provenance storage; replay
// compares it against the re-executed result. Unserialisable results are
// recorded as an opaque marker and excluded from comparison.
func ResultJSON(v any) string {
	if v == nil {
		return "null"
	}
	b, err := json.Marshal(v)
	if err != nil {
		return "<unrepresentable>"
	}
	return string(b)
}
