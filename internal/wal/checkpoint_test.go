package wal

import (
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/storage"
)

func TestCheckpointCodecRoundTrip(t *testing.T) {
	for _, cp := range []Checkpoint{
		{Seq: 0, Snapshot: ""},
		{Seq: 42, Snapshot: "prod.wal.snap"},
		{Seq: 1<<63 - 1, Snapshot: "x"},
	} {
		got, err := DecodeCheckpoint(EncodeCheckpoint(nil, cp))
		if err != nil {
			t.Fatalf("%+v: %v", cp, err)
		}
		if got != cp {
			t.Errorf("round trip = %+v, want %+v", got, cp)
		}
	}
	if _, err := DecodeCheckpoint([]byte{}); err == nil {
		t.Error("empty checkpoint payload should fail")
	}
}

func TestRotateTruncatesAndKeepsOldGeneration(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "r.wal")
	l, err := Open(path, SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendDDL("CREATE TABLE t (a INTEGER, PRIMARY KEY (a))"); err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 5; seq++ {
		if err := l.AppendCommit(sampleCommit(seq)); err != nil {
			t.Fatal(err)
		}
	}
	// Checkpoint at seq 3: records 4..5 are the tail to preserve.
	tail := []storage.CommitRecord{sampleCommit(4), sampleCommit(5)}
	if err := l.Rotate(Checkpoint{Seq: 3, Snapshot: "r.wal.snap"}, tail); err != nil {
		t.Fatal(err)
	}

	// The rotated log: checkpoint pointer + tail, nothing else.
	var recs []Record
	if err := Replay(path, func(r Record) error { recs = append(recs, r); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[0].Type != RecordCheckpoint || recs[0].Checkpoint.Seq != 3 ||
		recs[1].Commit.Seq != 4 || recs[2].Commit.Seq != 5 {
		t.Fatalf("rotated log = %+v", recs)
	}
	// The old generation retains the full pre-rotation history.
	var oldCount int
	if err := Replay(path+".old", func(Record) error { oldCount++; return nil }); err != nil {
		t.Fatal(err)
	}
	if oldCount != 6 {
		t.Errorf(".old has %d records, want 6", oldCount)
	}

	// Appends continue on the new file and survive replay.
	if err := l.AppendCommit(sampleCommit(6)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs = recs[:0]
	if err := Replay(path, func(r Record) error { recs = append(recs, r); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 || recs[3].Commit.Seq != 6 {
		t.Fatalf("post-rotation append lost: %+v", recs)
	}

	st := l.Stats()
	if st.Rotations != 1 {
		t.Errorf("rotations = %d", st.Rotations)
	}
}

func TestRepairRotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "w.wal")

	// Case 1: crash before the swap — stale .rotate next to an intact log.
	if err := os.WriteFile(path, []byte("log"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path+".rotate", []byte("new"), 0o644); err != nil {
		t.Fatal(err)
	}
	RepairRotation(path)
	if _, err := os.Stat(path + ".rotate"); !os.IsNotExist(err) {
		t.Error("stale .rotate not removed")
	}
	if data, _ := os.ReadFile(path); string(data) != "log" {
		t.Error("intact log was disturbed")
	}

	// Case 2: crash between the renames — log missing, .rotate complete.
	os.Remove(path)
	if err := os.WriteFile(path+".rotate", []byte("new"), 0o644); err != nil {
		t.Fatal(err)
	}
	RepairRotation(path)
	if data, err := os.ReadFile(path); err != nil || string(data) != "new" {
		t.Errorf("swap not completed: %q, %v", data, err)
	}
}

func TestReadHead(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "h.wal")
	if head := ReadHead(path); head != nil {
		t.Errorf("missing log head = %+v", head)
	}
	l, err := Open(path, SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.append(RecordCheckpoint, EncodeCheckpoint(nil, Checkpoint{Seq: 7, Snapshot: "s"})); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendCommit(sampleCommit(8)); err != nil {
		t.Fatal(err)
	}
	l.Close()
	head := ReadHead(path)
	if head == nil || head.Type != RecordCheckpoint || head.Checkpoint.Seq != 7 {
		t.Fatalf("head = %+v", head)
	}
}

func TestRecordEnds(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "e.wal")
	l, err := Open(path, SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 3; seq++ {
		if err := l.AppendCommit(sampleCommit(seq)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	ends, err := RecordEnds(path)
	if err != nil {
		t.Fatal(err)
	}
	fi, _ := os.Stat(path)
	if len(ends) != 3 || ends[2] != fi.Size() {
		t.Fatalf("ends = %v, file size %d", ends, fi.Size())
	}
}

// countingFile counts fsyncs while behaving like a real file.
type countingFile struct {
	f     *os.File
	syncs atomic.Uint64
}

func (c *countingFile) Write(p []byte) (int, error) { return c.f.Write(p) }
func (c *countingFile) Sync() error {
	c.syncs.Add(1)
	return c.f.Sync()
}
func (c *countingFile) Close() error { return c.f.Close() }

// TestGroupCommitBatchesFsyncs: concurrent AppendCommit callers under
// SyncEachCommit must share fsyncs — with the appends positioned before the
// leader's fsync window, the sync count stays below the commit count —
// while every acknowledged commit is on disk (all records replayable).
func TestGroupCommitBatchesFsyncs(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.wal")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	cf := &countingFile{f: f}
	l := NewLog(cf, SyncEachCommit)
	l.SetSyncDelay(200 * time.Microsecond)

	const goroutines = 8
	const perG = 25
	var wg sync.WaitGroup
	var next atomic.Uint64
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				seq := next.Add(1)
				if err := l.AppendCommit(sampleCommit(seq)); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	total := uint64(goroutines * perG)
	syncs := cf.syncs.Load()
	if syncs >= total {
		t.Errorf("fsyncs = %d for %d commits: group commit did not batch", syncs, total)
	}
	if st := l.Stats(); st.Syncs != syncs {
		t.Errorf("Stats().Syncs = %d, file saw %d", st.Syncs, syncs)
	}
	seen := make(map[uint64]bool)
	if err := Replay(path, func(r Record) error {
		seen[r.Commit.Seq] = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != int(total) {
		t.Fatalf("recovered %d of %d acknowledged commits", len(seen), total)
	}
}

// TestWaitDurableCoversEarlierLSN: a waiter whose record was already covered
// by a previous fsync returns without forcing another one.
func TestWaitDurableCoversEarlierLSN(t *testing.T) {
	dir := t.TempDir()
	f, err := os.OpenFile(filepath.Join(dir, "w.wal"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	cf := &countingFile{f: f}
	l := NewLog(cf, SyncNever)
	lsn1, err := l.AppendCommitLSN(sampleCommit(1))
	if err != nil {
		t.Fatal(err)
	}
	lsn2, err := l.AppendCommitLSN(sampleCommit(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.WaitDurable(lsn2); err != nil {
		t.Fatal(err)
	}
	if err := l.WaitDurable(lsn1); err != nil {
		t.Fatal(err)
	}
	if got := cf.syncs.Load(); got != 1 {
		t.Errorf("fsyncs = %d, want 1 (second wait was already covered)", got)
	}
	l.Close()
}
