package wal

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/value"
)

func sampleCommit(seq uint64) storage.CommitRecord {
	return storage.CommitRecord{
		Seq:   seq,
		TxnID: seq * 10,
		Changes: []storage.Change{
			{Table: "t", Key: "k1", Op: storage.OpInsert, After: value.Row{value.Int(1), value.Text("a")}},
			{Table: "t", Key: "k1", Op: storage.OpUpdate,
				Before: value.Row{value.Int(1), value.Text("a")},
				After:  value.Row{value.Int(1), value.Text("b")}},
			{Table: "t", Key: "k1", Op: storage.OpDelete, Before: value.Row{value.Int(1), value.Text("b")}},
		},
	}
}

func TestCommitCodecRoundTrip(t *testing.T) {
	rec := sampleCommit(7)
	enc := EncodeCommit(nil, rec)
	got, err := DecodeCommit(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != rec.Seq || got.TxnID != rec.TxnID || len(got.Changes) != 3 {
		t.Fatalf("decode = %+v", got)
	}
	if got.Changes[0].Before != nil || got.Changes[0].After == nil {
		t.Error("insert images wrong")
	}
	if got.Changes[2].After != nil || got.Changes[2].Before == nil {
		t.Error("delete images wrong")
	}
	if !got.Changes[1].After.Equal(rec.Changes[1].After) {
		t.Error("update after image mismatch")
	}
	if got.Changes[0].Table != "t" || got.Changes[0].Key != "k1" {
		t.Error("identity fields mismatch")
	}
}

func TestCommitCodecErrors(t *testing.T) {
	rec := sampleCommit(1)
	enc := EncodeCommit(nil, rec)
	for _, cut := range []int{0, 1, 3, 5, 8, len(enc) / 2, len(enc) - 1} {
		if _, err := DecodeCommit(enc[:cut]); err == nil {
			t.Errorf("DecodeCommit of %d-byte prefix should fail", cut)
		}
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	l, err := Open(path, SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendDDL("CREATE TABLE t (a INTEGER, PRIMARY KEY (a))"); err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 3; seq++ {
		if err := l.AppendCommit(sampleCommit(seq)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Error("double close should be nil")
	}
	if err := l.AppendDDL("x"); err == nil {
		t.Error("append after close should fail")
	}

	var ddl []string
	var seqs []uint64
	err = Replay(path, func(r Record) error {
		switch r.Type {
		case RecordDDL:
			ddl = append(ddl, r.DDL)
		case RecordCommit:
			seqs = append(seqs, r.Commit.Seq)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ddl) != 1 || len(seqs) != 3 || seqs[2] != 3 {
		t.Errorf("replay: ddl=%v seqs=%v", ddl, seqs)
	}
}

func TestReplayMissingFile(t *testing.T) {
	err := Replay(filepath.Join(t.TempDir(), "absent.wal"), func(Record) error {
		t.Error("callback should not run")
		return nil
	})
	if err != nil {
		t.Errorf("missing file should be empty log: %v", err)
	}
}

func TestReplayTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.wal")
	l, err := Open(path, SyncEachCommit)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendCommit(sampleCommit(1)); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendCommit(sampleCommit(2)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Chop bytes off the end to simulate a torn final write.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	var count int
	if err := Replay(path, func(Record) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Errorf("torn replay recovered %d records, want 1", count)
	}
}

func TestReplayCorruptCRC(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.wal")
	l, _ := Open(path, SyncEachCommit)
	if err := l.AppendCommit(sampleCommit(1)); err != nil {
		t.Fatal(err)
	}
	l.Close()
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xFF // corrupt payload
	os.WriteFile(path, data, 0o644)
	count := 0
	if err := Replay(path, func(Record) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Errorf("corrupt record replayed (%d)", count)
	}
}

func TestEndToEndRecoveryIntoStore(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.wal")

	// Build a store wired to the WAL, as the db facade does.
	build := func() (*storage.Store, *Log) {
		s := storage.NewStore()
		l, err := Open(path, SyncNever)
		if err != nil {
			t.Fatal(err)
		}
		return s, l
	}
	s, l := build()
	tbl := mustKV(t)
	s.SetDDLHook(func(_ uint64, stmt string) {
		if err := l.AppendDDL(stmt); err != nil {
			t.Fatal(err)
		}
	})
	if err := s.CreateTable(tbl, false); err != nil {
		t.Fatal(err)
	}
	s.SubscribeCDC(func(rec storage.CommitRecord) {
		if err := l.AppendCommit(rec); err != nil {
			t.Fatal(err)
		}
	})
	row := value.Row{value.Text("a"), value.Int(42)}
	if _, err := s.Commit(storage.CommitRequest{TxnID: s.NextTxnID(), Snapshot: s.CurrentSeq(),
		Changes: []storage.Change{{Table: "kv", Key: tbl.EncodePrimaryKey(row), Op: storage.OpInsert, After: row}}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Recover into a fresh store.
	s2 := storage.NewStore()
	err := Replay(path, func(r Record) error {
		switch r.Type {
		case RecordDDL:
			// The facade parses DDL; here we recreate the one known table.
			return s2.CreateTable(mustKV(t), false)
		case RecordCommit:
			return s2.ApplyCommitted(r.Commit)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Get("kv", tbl.EncodePrimaryKey(row), s2.CurrentSeq())
	if !ok || got[1].AsInt() != 42 {
		t.Errorf("recovered row = %v, %v", got, ok)
	}
}

func mustKV(t *testing.T) *schema.Table {
	t.Helper()
	tbl, err := schema.NewTable("kv", []schema.Column{
		{Name: "k", Type: value.KindText},
		{Name: "v", Type: value.KindInt},
	}, []string{"k"})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// randomCommit builds an arbitrary CommitRecord for property testing.
func randomCommit(rng *rand.Rand) storage.CommitRecord {
	rec := storage.CommitRecord{Seq: rng.Uint64() >> 1, TxnID: rng.Uint64() >> 1}
	n := rng.Intn(6)
	for i := 0; i < n; i++ {
		ch := storage.Change{
			Table: randString(rng, 8),
			Key:   randString(rng, 12),
			Op:    storage.Op(rng.Intn(3)),
		}
		if ch.Op != storage.OpInsert {
			ch.Before = randRow(rng)
		}
		if ch.Op != storage.OpDelete {
			ch.After = randRow(rng)
		}
		rec.Changes = append(rec.Changes, ch)
	}
	return rec
}

func randString(rng *rand.Rand, n int) string {
	b := make([]byte, rng.Intn(n))
	rng.Read(b)
	return string(b)
}

func randRow(rng *rand.Rand) value.Row {
	row := make(value.Row, 1+rng.Intn(4))
	for i := range row {
		switch rng.Intn(5) {
		case 0:
			row[i] = value.Null
		case 1:
			row[i] = value.Int(rng.Int63() - rng.Int63())
		case 2:
			row[i] = value.Float(rng.NormFloat64())
		case 3:
			row[i] = value.Bool(rng.Intn(2) == 0)
		default:
			row[i] = value.Text(randString(rng, 16))
		}
	}
	return row
}

// Property: commit records round-trip the codec exactly, for arbitrary
// contents including zero bytes in tables/keys and NULL-bearing rows.
func TestCommitCodecProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 2000; trial++ {
		rec := randomCommit(rng)
		enc := EncodeCommit(nil, rec)
		got, err := DecodeCommit(enc)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if got.Seq != rec.Seq || got.TxnID != rec.TxnID || len(got.Changes) != len(rec.Changes) {
			t.Fatalf("trial %d: header mismatch", trial)
		}
		for i := range rec.Changes {
			w, g := rec.Changes[i], got.Changes[i]
			if w.Table != g.Table || w.Key != g.Key || w.Op != g.Op {
				t.Fatalf("trial %d change %d: identity mismatch", trial, i)
			}
			if (w.Before == nil) != (g.Before == nil) || (w.Before != nil && !w.Before.Equal(g.Before)) {
				t.Fatalf("trial %d change %d: before mismatch", trial, i)
			}
			if (w.After == nil) != (g.After == nil) || (w.After != nil && !w.After.Equal(g.After)) {
				t.Fatalf("trial %d change %d: after mismatch", trial, i)
			}
		}
	}
}

// Property: replay after truncation at ANY byte offset never errors and
// recovers a prefix of the appended records.
func TestReplayArbitraryTruncationProperty(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trunc.wal")
	l, err := Open(path, SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(33))
	var appended []storage.CommitRecord
	for i := 0; i < 10; i++ {
		rec := randomCommit(rng)
		rec.Seq = uint64(i + 1)
		appended = append(appended, rec)
		if err := l.AppendCommit(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut <= len(full); cut += 7 {
		p2 := filepath.Join(dir, "cut.wal")
		if err := os.WriteFile(p2, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		var got []uint64
		if err := Replay(p2, func(r Record) error {
			got = append(got, r.Commit.Seq)
			return nil
		}); err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		// Recovered records are a prefix 1..k.
		for i, seq := range got {
			if seq != uint64(i+1) {
				t.Fatalf("cut %d: recovered %v, not a prefix", cut, got)
			}
		}
	}
}
