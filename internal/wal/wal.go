// Package wal implements the write-ahead log for the disk-backed mode of the
// TROD storage engine. Records are length-prefixed and CRC-checked; a
// truncated tail (torn final write after a crash) is tolerated on recovery.
//
// The log carries two record types: DDL statements (schema changes, stored
// as SQL text and re-parsed on recovery) and commit records (the storage
// engine's CDC CommitRecord, re-applied through Store.ApplyCommitted).
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"repro/internal/storage"
	"repro/internal/value"
)

// RecordType distinguishes WAL record payloads.
type RecordType uint8

// WAL record types.
const (
	RecordDDL RecordType = iota + 1
	RecordCommit
)

// SyncPolicy controls durability of appends.
type SyncPolicy uint8

// Sync policies.
const (
	// SyncNever buffers writes in the OS page cache (and a bufio layer),
	// flushing on Close. This mode models the paper's "on-disk database"
	// regime: the commit path includes file I/O but not per-commit fsync.
	SyncNever SyncPolicy = iota
	// SyncEachCommit flushes and fsyncs after every append.
	SyncEachCommit
)

// Log is an append-only write-ahead log.
type Log struct {
	mu     sync.Mutex
	f      *os.File
	w      *bufio.Writer
	policy SyncPolicy
	closed bool
}

// Open opens (creating if needed) the log at path for appending.
func Open(path string, policy SyncPolicy) (*Log, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	return &Log{f: f, w: bufio.NewWriterSize(f, 1<<16), policy: policy}, nil
}

// AppendDDL logs a schema-change statement.
func (l *Log) AppendDDL(stmt string) error {
	return l.append(RecordDDL, []byte(stmt))
}

// AppendCommit logs a committed transaction.
func (l *Log) AppendCommit(rec storage.CommitRecord) error {
	return l.append(RecordCommit, EncodeCommit(nil, rec))
}

func (l *Log) append(rt RecordType, payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: log is closed")
	}
	var hdr [9]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)+1))
	crc := crc32.NewIEEE()
	crc.Write([]byte{byte(rt)})
	crc.Write(payload)
	binary.LittleEndian.PutUint32(hdr[4:8], crc.Sum32())
	hdr[8] = byte(rt)
	if _, err := l.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	if _, err := l.w.Write(payload); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	if l.policy == SyncEachCommit {
		if err := l.w.Flush(); err != nil {
			return fmt.Errorf("wal: flush: %w", err)
		}
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: sync: %w", err)
		}
	}
	return nil
}

// Flush drains buffered appends to the OS.
func (l *Log) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	return l.w.Flush()
}

// Close flushes and closes the log file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if err := l.w.Flush(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

// Record is one recovered WAL record.
type Record struct {
	Type   RecordType
	DDL    string
	Commit storage.CommitRecord
}

// Replay reads the log at path from the beginning and invokes fn for each
// intact record. A corrupt or truncated tail ends replay without error (the
// torn record is discarded, matching standard WAL semantics); corruption in
// the middle of the log is also reported as clean termination since
// everything after an unreadable record is unreachable.
func Replay(path string, fn func(Record) error) error {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil // no log yet: empty database
		}
		return fmt.Errorf("wal: replay open: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	for {
		var hdr [8]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return nil // clean EOF or torn header
		}
		size := binary.LittleEndian.Uint32(hdr[0:4])
		wantCRC := binary.LittleEndian.Uint32(hdr[4:8])
		if size == 0 || size > 1<<30 {
			return nil // implausible length: torn tail
		}
		body := make([]byte, size)
		if _, err := io.ReadFull(r, body); err != nil {
			return nil // torn body
		}
		if crc32.ChecksumIEEE(body) != wantCRC {
			return nil // corrupt tail
		}
		rec := Record{Type: RecordType(body[0])}
		switch rec.Type {
		case RecordDDL:
			rec.DDL = string(body[1:])
		case RecordCommit:
			c, err := DecodeCommit(body[1:])
			if err != nil {
				return fmt.Errorf("wal: bad commit record: %w", err)
			}
			rec.Commit = c
		default:
			return fmt.Errorf("wal: unknown record type %d", rec.Type)
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
}

// EncodeCommit appends the binary encoding of a CommitRecord to dst.
//
// Layout: seq, txnID, count, then per change: table, key, op, flags
// (bit0 = has before, bit1 = has after), then the present row images.
func EncodeCommit(dst []byte, rec storage.CommitRecord) []byte {
	dst = binary.AppendUvarint(dst, rec.Seq)
	dst = binary.AppendUvarint(dst, rec.TxnID)
	dst = binary.AppendUvarint(dst, uint64(len(rec.Changes)))
	for _, ch := range rec.Changes {
		dst = appendString(dst, ch.Table)
		dst = appendString(dst, ch.Key)
		dst = append(dst, byte(ch.Op))
		var flags byte
		if ch.Before != nil {
			flags |= 1
		}
		if ch.After != nil {
			flags |= 2
		}
		dst = append(dst, flags)
		if ch.Before != nil {
			dst = value.EncodeRow(dst, ch.Before)
		}
		if ch.After != nil {
			dst = value.EncodeRow(dst, ch.After)
		}
	}
	return dst
}

// DecodeCommit parses an EncodeCommit payload.
func DecodeCommit(src []byte) (storage.CommitRecord, error) {
	var rec storage.CommitRecord
	off := 0
	var err error
	if rec.Seq, off, err = readUvarint(src, off); err != nil {
		return rec, err
	}
	if rec.TxnID, off, err = readUvarint(src, off); err != nil {
		return rec, err
	}
	var n uint64
	if n, off, err = readUvarint(src, off); err != nil {
		return rec, err
	}
	rec.Changes = make([]storage.Change, 0, n)
	for i := uint64(0); i < n; i++ {
		var ch storage.Change
		if ch.Table, off, err = readString(src, off); err != nil {
			return rec, err
		}
		if ch.Key, off, err = readString(src, off); err != nil {
			return rec, err
		}
		if off+2 > len(src) {
			return rec, errors.New("wal: truncated change")
		}
		ch.Op = storage.Op(src[off])
		flags := src[off+1]
		off += 2
		if flags&1 != 0 {
			row, used, err := value.DecodeRow(src[off:])
			if err != nil {
				return rec, err
			}
			ch.Before = row
			off += used
		}
		if flags&2 != 0 {
			row, used, err := value.DecodeRow(src[off:])
			if err != nil {
				return rec, err
			}
			ch.After = row
			off += used
		}
		rec.Changes = append(rec.Changes, ch)
	}
	return rec, nil
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func readUvarint(src []byte, off int) (uint64, int, error) {
	v, n := binary.Uvarint(src[off:])
	if n <= 0 {
		return 0, off, errors.New("wal: bad uvarint")
	}
	return v, off + n, nil
}

func readString(src []byte, off int) (string, int, error) {
	n, off, err := readUvarint(src, off)
	if err != nil {
		return "", off, err
	}
	if off+int(n) > len(src) {
		return "", off, errors.New("wal: truncated string")
	}
	return string(src[off : off+int(n)]), off + int(n), nil
}
