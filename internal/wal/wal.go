// Package wal implements the write-ahead log for the disk-backed mode of the
// TROD storage engine. Records are length-prefixed and CRC-checked; a
// truncated tail (torn final write after a crash) is tolerated on recovery.
//
// The log carries three record types: DDL statements (schema changes, stored
// as SQL text and re-parsed on recovery), commit records (the storage
// engine's CDC CommitRecord, re-applied through Store.ApplyCommitted), and
// checkpoint pointers (written at the head of a rotated log, naming the
// snapshot file that holds all state up to a sequence).
//
// Durability under SyncEachCommit uses group commit: appends are positioned
// under the log mutex, but the flush+fsync making them durable batches all
// concurrent committers behind one leader — callers block in WaitDurable
// until the fsync covering their record returns, so the fsync count stays
// well below the commit count under load while every acknowledged commit is
// on disk.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/storage"
	"repro/internal/value"
)

// RecordType distinguishes WAL record payloads.
type RecordType uint8

// WAL record types.
const (
	RecordDDL RecordType = iota + 1
	RecordCommit
	// RecordCheckpoint marks that all state up to Checkpoint.Seq lives in the
	// named snapshot file; recovery may load the snapshot and skip straight to
	// the records that follow. Rotation writes one at the head of the new log.
	RecordCheckpoint
)

// SyncPolicy controls durability of appends.
type SyncPolicy uint8

// Sync policies.
const (
	// SyncNever buffers writes in the OS page cache (and a bufio layer),
	// flushing on Close. This mode models the paper's "on-disk database"
	// regime: the commit path includes file I/O but not per-commit fsync.
	SyncNever SyncPolicy = iota
	// SyncEachCommit makes every append durable before acknowledging it.
	// Concurrent appenders share fsyncs through group commit.
	SyncEachCommit
)

// File is the handle the log writes through; *os.File satisfies it. Tests
// inject fault-injecting implementations (internal/crashtest) to cut writes
// at arbitrary byte offsets.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// Checkpoint is the payload of a RecordCheckpoint: all state with commit
// sequence <= Seq is captured by the snapshot file named Snapshot (a base
// name, resolved relative to the log's directory).
type Checkpoint struct {
	Seq      uint64
	Snapshot string
}

// Stats reports log counters for checkpoint triggers and tests.
type Stats struct {
	// Syncs is the number of fsyncs issued over the log's lifetime; under
	// group commit it stays below the number of committed transactions.
	Syncs uint64
	// Rotations counts completed log rotations (checkpoints).
	Rotations int
	// RecordsSinceCheckpoint and BytesSinceCheckpoint measure log growth
	// since the last rotation (or open), driving automatic checkpoints.
	RecordsSinceCheckpoint int
	BytesSinceCheckpoint   int64
}

// Log is an append-only write-ahead log.
type Log struct {
	mu     sync.Mutex
	f      File
	w      *bufio.Writer
	path   string // empty when not file-backed (injected File); rotation needs it
	policy SyncPolicy
	closed bool

	// Group-commit state. LSNs are cumulative appended byte offsets and stay
	// monotonic across rotations, so a waiter's target never goes stale.
	appended int64
	synced   int64
	syncing  bool
	syncErr  error // sticky: after a failed flush/fsync the log is poisoned
	durable  *sync.Cond
	syncs    uint64

	// Growth since the last rotation, for checkpoint triggers.
	rotRecords int
	rotBytes   int64
	rotations  int

	// syncDelay artificially lengthens the leader's fsync window. Tests use
	// it to make group-commit batching deterministic on filesystems where
	// fsync is nearly free (tmpfs) and the window would otherwise close
	// before any follower arrives.
	syncDelay time.Duration
}

// Open opens (creating if needed) the log at path for appending.
func Open(path string, policy SyncPolicy) (*Log, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	l := NewLog(f, policy)
	l.path = path
	return l, nil
}

// NewLog wraps an already-open file handle. Logs built this way cannot
// Rotate (no path); tests use it to run the log over fault-injecting files.
func NewLog(f File, policy SyncPolicy) *Log {
	l := &Log{f: f, w: bufio.NewWriterSize(f, 1<<16), policy: policy}
	l.durable = sync.NewCond(&l.mu)
	return l
}

// AppendDDL logs a schema-change statement, durably under SyncEachCommit.
func (l *Log) AppendDDL(stmt string) error {
	lsn, err := l.AppendDDLLSN(stmt)
	if err != nil {
		return err
	}
	if l.policy == SyncEachCommit {
		return l.WaitDurable(lsn)
	}
	return nil
}

// AppendDDLLSN appends a schema-change record without waiting for
// durability, returning the LSN to pass to WaitDurable.
func (l *Log) AppendDDLLSN(stmt string) (int64, error) {
	return l.append(RecordDDL, []byte(stmt))
}

// AppendCommit logs a committed transaction, durably under SyncEachCommit
// (batched with concurrent appenders via group commit).
func (l *Log) AppendCommit(rec storage.CommitRecord) error {
	lsn, err := l.AppendCommitLSN(rec)
	if err != nil {
		return err
	}
	if l.policy == SyncEachCommit {
		return l.WaitDurable(lsn)
	}
	return nil
}

// AppendCommitLSN appends a commit record without waiting for durability and
// returns its end LSN. The database facade appends under the store's commit
// lock (fixing the log order to the serialization order) and calls
// WaitDurable after releasing it, so fsyncs batch across committers.
func (l *Log) AppendCommitLSN(rec storage.CommitRecord) (int64, error) {
	return l.append(RecordCommit, EncodeCommit(nil, rec))
}

func (l *Log) append(rt RecordType, payload []byte) (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, errors.New("wal: log is closed")
	}
	if l.syncErr != nil {
		return 0, l.syncErr
	}
	n, err := writeFrame(l.w, rt, payload)
	if err != nil {
		// A torn buffered write poisons the log: later frames would land at
		// unpredictable offsets.
		l.syncErr = fmt.Errorf("wal: append: %w", err)
		l.durable.Broadcast()
		return 0, l.syncErr
	}
	l.appended += int64(n)
	l.rotBytes += int64(n)
	l.rotRecords++
	return l.appended, nil
}

// writeFrame writes one length-prefixed, CRC-protected record.
func writeFrame(w io.Writer, rt RecordType, payload []byte) (int, error) {
	var hdr [9]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)+1))
	crc := crc32.NewIEEE()
	crc.Write([]byte{byte(rt)})
	crc.Write(payload)
	binary.LittleEndian.PutUint32(hdr[4:8], crc.Sum32())
	hdr[8] = byte(rt)
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := w.Write(payload); err != nil {
		return 0, err
	}
	return len(hdr) + len(payload), nil
}

// WaitDurable blocks until every byte up to lsn is flushed and fsynced. One
// caller at a time becomes the sync leader: it flushes the buffer under the
// lock, releases it for the fsync (the batching window — other committers
// append and queue here), then wakes all waiters its fsync covered. A failed
// flush or fsync is sticky: the WAL cannot tell which buffered bytes reached
// the disk, so every later operation reports the same error.
func (l *Log) WaitDurable(lsn int64) error {
	_, err := l.WaitDurableLed(lsn)
	return err
}

// WaitDurableLed is WaitDurable, additionally reporting whether this caller
// led an fsync batch (true) or rode another leader's fsync (false). The db
// facade uses the distinction to label commit-latency spans wal_fsync vs
// group_commit_wait; this package is in the deterministic set, so the
// timing itself happens in the caller.
func (l *Log) WaitDurableLed(lsn int64) (led bool, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if l.syncErr != nil {
			return led, l.syncErr
		}
		if l.synced >= lsn {
			return led, nil
		}
		if l.closed {
			return led, errors.New("wal: log closed before sync")
		}
		if !l.syncing {
			led = true
			l.syncing = true
			upTo := l.appended
			if err := l.w.Flush(); err != nil {
				l.syncing = false
				l.syncErr = fmt.Errorf("wal: flush: %w", err)
				l.durable.Broadcast()
				return led, l.syncErr
			}
			f, delay := l.f, l.syncDelay
			l.mu.Unlock()
			if delay > 0 {
				time.Sleep(delay)
			}
			err := f.Sync()
			l.mu.Lock()
			l.syncing = false
			l.syncs++
			if err != nil {
				l.syncErr = fmt.Errorf("wal: sync: %w", err)
			} else if upTo > l.synced {
				l.synced = upTo
			}
			l.durable.Broadcast()
			continue
		}
		l.durable.Wait()
	}
}

// SetSyncDelay injects an artificial delay into the group-commit leader's
// fsync window, modelling real disk fsync latency on filesystems where
// fsync is nearly free (tmpfs, fast NVMe with volatile caches). The
// group-commit tests and the server-load experiment use it so batching
// behaviour is observable and reproducible regardless of the host's
// filesystem; production deployments leave it zero.
func (l *Log) SetSyncDelay(d time.Duration) {
	l.mu.Lock()
	l.syncDelay = d
	l.mu.Unlock()
}

// Sync makes everything appended so far durable.
func (l *Log) Sync() error {
	l.mu.Lock()
	lsn := l.appended
	l.mu.Unlock()
	return l.WaitDurable(lsn)
}

// Flush drains buffered appends to the OS without fsync.
func (l *Log) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	if l.syncErr != nil {
		return l.syncErr
	}
	if err := l.w.Flush(); err != nil {
		l.syncErr = fmt.Errorf("wal: flush: %w", err)
		l.durable.Broadcast()
		return l.syncErr
	}
	return nil
}

// Stats returns log counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		Syncs:                  l.syncs,
		Rotations:              l.rotations,
		RecordsSinceCheckpoint: l.rotRecords,
		BytesSinceCheckpoint:   l.rotBytes,
	}
}

// Rotate truncates the log after a successful checkpoint: a new log holding
// only the checkpoint pointer plus the post-snapshot commit tail atomically
// replaces the current one, and the full pre-rotation log is kept as
// path+".old" — one fallback generation in case the snapshot later proves
// unreadable. The caller must prevent concurrent appends (the database runs
// Rotate inside Store.CheckpointTail, which holds the commit lock); only
// in-flight WaitDurable leaders are tolerated.
//
// Crash safety: the new log is written to path+".rotate" and fsynced before
// any rename. A crash between the two renames leaves the repairable states
// (old log intact + stale .rotate) or (.old + .rotate, no log); see
// RepairRotation.
func (l *Log) Rotate(cp Checkpoint, tail []storage.CommitRecord) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: log is closed")
	}
	if l.path == "" {
		return errors.New("wal: rotate requires a file-backed log")
	}
	for l.syncing {
		l.durable.Wait()
	}
	if l.syncErr != nil {
		return l.syncErr
	}
	// Make the outgoing log fully durable: until the rename lands, it is
	// still the recovery source of truth.
	if err := l.w.Flush(); err != nil {
		l.syncErr = fmt.Errorf("wal: flush: %w", err)
		l.durable.Broadcast()
		return l.syncErr
	}
	//trodlint:allow lockhold -- rotation is a deliberate stop-the-world swap; the outgoing log must be durable before the rename, and appenders must stay parked until the new file is in place
	if err := l.f.Sync(); err != nil {
		l.syncErr = fmt.Errorf("wal: sync: %w", err)
		l.durable.Broadcast()
		return l.syncErr
	}
	l.syncs++
	l.synced = l.appended

	tmp := l.path + ".rotate"
	nf, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: rotate: %w", err)
	}
	nw := bufio.NewWriterSize(nf, 1<<16)
	written := 0
	n, err := writeFrame(nw, RecordCheckpoint, EncodeCheckpoint(nil, cp))
	written += n
	if err == nil {
		for _, rec := range tail {
			var m int
			m, err = writeFrame(nw, RecordCommit, EncodeCommit(nil, rec))
			written += m
			if err != nil {
				break
			}
		}
	}
	if err == nil {
		err = nw.Flush()
	}
	if err == nil {
		//trodlint:allow lockhold -- rotation is a deliberate stop-the-world swap; the replacement log must be durable before it can take the live name
		err = nf.Sync()
	}
	if err != nil {
		_ = nf.Close() // already failing; surface the write/sync error, not the cleanup
		os.Remove(tmp)
		return fmt.Errorf("wal: rotate: %w", err)
	}
	// Swap: keep the old generation, then move the new log into place.
	if err := os.Rename(l.path, l.path+".old"); err != nil {
		_ = nf.Close() // already failing; surface the rename error, not the cleanup
		os.Remove(tmp)
		return fmt.Errorf("wal: rotate: %w", err)
	}
	if err := os.Rename(tmp, l.path); err != nil {
		// The log name is dangling: the live file is now .old and the new
		// log exists only as .rotate. Appending further records would send
		// acknowledged commits to a file the next recovery (which repairs
		// the swap from .rotate) never reads — poison the log so every
		// later operation fails instead of silently losing durability.
		_ = nf.Close() // the log is being poisoned below; the close error is immaterial
		l.syncErr = fmt.Errorf("wal: rotate: swap failed, log requires recovery: %w", err)
		l.durable.Broadcast()
		return l.syncErr
	}
	syncDirOf(l.path)
	// The outgoing generation was fsynced above and is no longer written;
	// a close error cannot affect durability of acknowledged commits.
	_ = l.f.Close()
	l.f = nf
	l.w = bufio.NewWriterSize(nf, 1<<16)
	l.appended += int64(written)
	l.synced = l.appended
	l.syncs++
	l.rotBytes = int64(written)
	l.rotRecords = 1 + len(tail)
	l.rotations++
	return nil
}

// RepairRotation completes or rolls back a rotation interrupted by a crash:
// if the log is missing but a fully-written .rotate file exists, the rename
// is finished; if both exist, the stale .rotate is removed. Call before
// Replay/Open.
func RepairRotation(path string) {
	tmp := path + ".rotate"
	if _, err := os.Stat(tmp); err != nil {
		return
	}
	if _, err := os.Stat(path); err == nil {
		os.Remove(tmp) // rotation never reached the swap; tmp is stale
		return
	}
	os.Rename(tmp, path)
	syncDirOf(path)
}

// syncDirOf fsyncs the directory containing path so just-renamed files
// survive a crash (best effort; see storage.SyncDir).
func syncDirOf(path string) {
	storage.SyncDir(filepath.Dir(path))
}

// Close flushes and closes the log file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	l.durable.Broadcast()
	if l.syncErr != nil {
		_ = l.f.Close() // the log is already poisoned; report the sync error
		return l.syncErr
	}
	if err := l.w.Flush(); err != nil {
		_ = l.f.Close() // report the flush error that lost buffered records
		return err
	}
	return l.f.Close()
}

// Record is one recovered WAL record.
type Record struct {
	Type       RecordType
	DDL        string
	Commit     storage.CommitRecord
	Checkpoint Checkpoint
}

// Replay reads the log at path from the beginning and invokes fn for each
// intact record. A corrupt or truncated tail ends replay without error (the
// torn record is discarded, matching standard WAL semantics); corruption in
// the middle of the log is also reported as clean termination since
// everything after an unreadable record is unreachable.
func Replay(path string, fn func(Record) error) error {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil // no log yet: empty database
		}
		return fmt.Errorf("wal: replay open: %w", err)
	}
	//trodlint:allow durerr -- replay only reads; a close error on a read-only fd cannot lose data
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	for {
		var hdr [8]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return nil // clean EOF or torn header
		}
		size := binary.LittleEndian.Uint32(hdr[0:4])
		wantCRC := binary.LittleEndian.Uint32(hdr[4:8])
		if size == 0 || size > 1<<30 {
			return nil // implausible length: torn tail
		}
		body := make([]byte, size)
		if _, err := io.ReadFull(r, body); err != nil {
			return nil // torn body
		}
		if crc32.ChecksumIEEE(body) != wantCRC {
			return nil // corrupt tail
		}
		rec := Record{Type: RecordType(body[0])}
		switch rec.Type {
		case RecordDDL:
			rec.DDL = string(body[1:])
		case RecordCommit:
			c, err := DecodeCommit(body[1:])
			if err != nil {
				return fmt.Errorf("wal: bad commit record: %w", err)
			}
			rec.Commit = c
		case RecordCheckpoint:
			cp, err := DecodeCheckpoint(body[1:])
			if err != nil {
				return fmt.Errorf("wal: bad checkpoint record: %w", err)
			}
			rec.Checkpoint = cp
		default:
			return fmt.Errorf("wal: unknown record type %d", rec.Type)
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
}

// errStopReplay aborts Replay early from ReadHead.
var errStopReplay = errors.New("wal: stop replay")

// ReadHead returns the first intact record of the log, or nil when the log
// is missing, empty, or its first record is unreadable. Recovery uses it to
// decide between the snapshot fast path and full replay.
func ReadHead(path string) *Record {
	var head *Record
	_ = Replay(path, func(r Record) error {
		head = &r
		return errStopReplay
	})
	return head
}

// RecordEnds returns the byte offset at which each intact record of the log
// ends, in order. Crash-injection tests use it to map byte offsets to the
// acknowledged-commit prefix a recovery must reproduce.
func RecordEnds(path string) ([]int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var ends []int64
	off := int64(0)
	for {
		if off+8 > int64(len(data)) {
			return ends, nil
		}
		size := int64(binary.LittleEndian.Uint32(data[off : off+4]))
		if size == 0 || size > 1<<30 || off+8+size > int64(len(data)) {
			return ends, nil
		}
		if crc32.ChecksumIEEE(data[off+8:off+8+size]) != binary.LittleEndian.Uint32(data[off+4:off+8]) {
			return ends, nil
		}
		off += 8 + size
		ends = append(ends, off)
	}
}

// EncodeCheckpoint appends the binary encoding of a Checkpoint to dst.
func EncodeCheckpoint(dst []byte, cp Checkpoint) []byte {
	dst = binary.AppendUvarint(dst, cp.Seq)
	return appendString(dst, cp.Snapshot)
}

// DecodeCheckpoint parses an EncodeCheckpoint payload.
func DecodeCheckpoint(src []byte) (Checkpoint, error) {
	var cp Checkpoint
	var err error
	off := 0
	if cp.Seq, off, err = readUvarint(src, off); err != nil {
		return cp, err
	}
	if cp.Snapshot, off, err = readString(src, off); err != nil {
		return cp, err
	}
	if off != len(src) {
		return cp, errors.New("wal: trailing bytes in checkpoint record")
	}
	return cp, nil
}

// EncodeCommit appends the binary encoding of a CommitRecord to dst.
//
// Layout: seq, txnID, count, then per change: table, key, op, flags
// (bit0 = has before, bit1 = has after), then the present row images.
func EncodeCommit(dst []byte, rec storage.CommitRecord) []byte {
	dst = binary.AppendUvarint(dst, rec.Seq)
	dst = binary.AppendUvarint(dst, rec.TxnID)
	dst = binary.AppendUvarint(dst, uint64(len(rec.Changes)))
	for _, ch := range rec.Changes {
		dst = appendString(dst, ch.Table)
		dst = appendString(dst, ch.Key)
		dst = append(dst, byte(ch.Op))
		var flags byte
		if ch.Before != nil {
			flags |= 1
		}
		if ch.After != nil {
			flags |= 2
		}
		dst = append(dst, flags)
		if ch.Before != nil {
			dst = value.EncodeRow(dst, ch.Before)
		}
		if ch.After != nil {
			dst = value.EncodeRow(dst, ch.After)
		}
	}
	return dst
}

// DecodeCommit parses an EncodeCommit payload.
func DecodeCommit(src []byte) (storage.CommitRecord, error) {
	var rec storage.CommitRecord
	off := 0
	var err error
	if rec.Seq, off, err = readUvarint(src, off); err != nil {
		return rec, err
	}
	if rec.TxnID, off, err = readUvarint(src, off); err != nil {
		return rec, err
	}
	var n uint64
	if n, off, err = readUvarint(src, off); err != nil {
		return rec, err
	}
	// Each change needs at least 4 payload bytes (two string headers, op,
	// flags), so a count beyond remaining/4 is a corrupt or hostile
	// record; checking before make keeps a crafted frame from forcing a
	// huge allocation.
	if n > uint64(len(src)-off)/4 {
		return rec, errors.New("wal: change count exceeds payload")
	}
	rec.Changes = make([]storage.Change, 0, n)
	for i := uint64(0); i < n; i++ {
		var ch storage.Change
		if ch.Table, off, err = readString(src, off); err != nil {
			return rec, err
		}
		if ch.Key, off, err = readString(src, off); err != nil {
			return rec, err
		}
		if off+2 > len(src) {
			return rec, errors.New("wal: truncated change")
		}
		ch.Op = storage.Op(src[off])
		flags := src[off+1]
		off += 2
		if flags&1 != 0 {
			row, used, err := value.DecodeRow(src[off:])
			if err != nil {
				return rec, err
			}
			ch.Before = row
			off += used
		}
		if flags&2 != 0 {
			row, used, err := value.DecodeRow(src[off:])
			if err != nil {
				return rec, err
			}
			ch.After = row
			off += used
		}
		rec.Changes = append(rec.Changes, ch)
	}
	return rec, nil
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func readUvarint(src []byte, off int) (uint64, int, error) {
	v, n := binary.Uvarint(src[off:])
	if n <= 0 {
		return 0, off, errors.New("wal: bad uvarint")
	}
	return v, off + n, nil
}

func readString(src []byte, off int) (string, int, error) {
	n, off, err := readUvarint(src, off)
	if err != nil {
		return "", off, err
	}
	// Compare in uint64 space: converting first would let a length >=
	// 2^63 wrap negative and slip past an int-space check into the slice
	// expression below.
	if n > uint64(len(src)-off) {
		return "", off, errors.New("wal: truncated string")
	}
	return string(src[off : off+int(n)]), off + int(n), nil
}
