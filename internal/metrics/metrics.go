// Package metrics is a stdlib-only metrics registry rendered in the
// Prometheus text exposition format (version 0.0.4). It exists so every
// layer of the stack — server, storage, replication, tracer — can export
// counters, gauges, and latency histograms over HTTP without pulling in a
// client library the container doesn't have.
//
// Design constraints, in order:
//
//   - The hot path (Counter.Inc, Histogram.Observe) is allocation-free and
//     never takes a lock shared with the scrape path for longer than a few
//     array increments. Histograms are lock-striped: an observation picks a
//     stripe round-robin off an atomic counter, so concurrent observers
//     rarely contend and a scrape merging all stripes blocks any one
//     observer only briefly.
//   - Rendering is deterministic: families appear in registration order,
//     labeled children in sorted label order, so golden tests and diffing
//     two scrapes both work.
//   - Metric names follow the Prometheus conventions the README documents:
//     `trod_<subsystem>_<name>_<unit>`, counters end in `_total`, durations
//     are in seconds.
package metrics

import (
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// A Metric is anything the registry can render. Implementations in this
// package: Counter, Gauge, Func (counter/gauge read at scrape time),
// Histogram, HistogramVec, and Collector (dynamic labeled series).
type Metric interface {
	// Name returns the family name, used for duplicate detection.
	Name() string
	// write appends the family's # HELP / # TYPE header and samples.
	write(b *strings.Builder)
}

// Registry holds registered metrics and renders them on demand. The zero
// value is not usable; call NewRegistry.
type Registry struct {
	mu    sync.Mutex
	order []Metric
	names map[string]bool
}

func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

// Register adds m to the registry. Registering two families with the same
// name is a programming error and panics.
func (r *Registry) Register(m Metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[m.Name()] {
		panic("metrics: duplicate registration of " + m.Name())
	}
	r.names[m.Name()] = true
	r.order = append(r.order, m)
}

// WriteText renders every registered family in registration order.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	ms := make([]Metric, len(r.order))
	copy(ms, r.order)
	r.mu.Unlock()
	var b strings.Builder
	for _, m := range ms {
		m.write(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Convenience constructors that register in one step.

func (r *Registry) Counter(name, help string) *Counter {
	c := NewCounter(name, help)
	r.Register(c)
	return c
}

func (r *Registry) Gauge(name, help string) *Gauge {
	g := NewGauge(name, help)
	r.Register(g)
	return g
}

func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	r.Register(NewCounterFunc(name, help, fn))
}

func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.Register(NewGaugeFunc(name, help, fn))
}

func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	h := NewHistogram(name, help, bounds)
	r.Register(h)
	return h
}

func (r *Registry) HistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	v := NewHistogramVec(name, help, label, bounds)
	r.Register(v)
	return v
}

func (r *Registry) Collector(name, help, typ string, fn func() []Sample) {
	r.Register(&Collector{name: name, help: help, typ: typ, fn: fn})
}

// header writes the # HELP / # TYPE preamble for a family.
func header(b *strings.Builder, name, help, typ string) {
	b.WriteString("# HELP ")
	b.WriteString(name)
	b.WriteByte(' ')
	b.WriteString(escapeHelp(help))
	b.WriteString("\n# TYPE ")
	b.WriteString(name)
	b.WriteByte(' ')
	b.WriteString(typ)
	b.WriteByte('\n')
}

// escapeHelp escapes backslash and newline per the exposition format.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// EscapeLabel escapes a label value per the exposition format (backslash,
// double quote, newline). Use it when building Sample.Labels from
// free-form strings.
func EscapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatFloat renders a sample value the way Prometheus expects: shortest
// representation that round-trips, +Inf spelled literally.
func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// Counter is a monotonically increasing uint64. Inc/Add are lock-free.
type Counter struct {
	v    atomic.Uint64
	name string
	help string
}

func NewCounter(name, help string) *Counter {
	return &Counter{name: name, help: help}
}

func (c *Counter) Inc()          { c.v.Add(1) }
func (c *Counter) Add(n uint64)  { c.v.Add(n) }
func (c *Counter) Value() uint64 { return c.v.Load() }
func (c *Counter) Name() string  { return c.name }

func (c *Counter) write(b *strings.Builder) {
	header(b, c.name, c.help, "counter")
	b.WriteString(c.name)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatUint(c.v.Load(), 10))
	b.WriteByte('\n')
}

// Gauge is a value that can go up and down. Set/Add/Inc/Dec are lock-free.
type Gauge struct {
	v    atomic.Int64
	name string
	help string
}

func NewGauge(name, help string) *Gauge {
	return &Gauge{name: name, help: help}
}

func (g *Gauge) Set(v int64)  { g.v.Store(v) }
func (g *Gauge) Add(d int64)  { g.v.Add(d) }
func (g *Gauge) Inc()         { g.v.Add(1) }
func (g *Gauge) Dec()         { g.v.Add(-1) }
func (g *Gauge) Value() int64 { return g.v.Load() }
func (g *Gauge) Name() string { return g.name }

func (g *Gauge) write(b *strings.Builder) {
	header(b, g.name, g.help, "gauge")
	b.WriteString(g.name)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatInt(g.v.Load(), 10))
	b.WriteByte('\n')
}

// Func is a counter or gauge whose value is read at scrape time — the
// bridge for subsystems that already keep their own counters (WAL fsyncs,
// plan-cache hits) and should not be made to double-count.
type Func struct {
	name string
	help string
	typ  string
	fn   func() float64
}

func NewCounterFunc(name, help string, fn func() uint64) *Func {
	return &Func{name: name, help: help, typ: "counter", fn: func() float64 { return float64(fn()) }}
}

func NewGaugeFunc(name, help string, fn func() float64) *Func {
	return &Func{name: name, help: help, typ: "gauge", fn: fn}
}

func (f *Func) Name() string { return f.name }

func (f *Func) write(b *strings.Builder) {
	header(b, f.name, f.help, f.typ)
	b.WriteString(f.name)
	b.WriteByte(' ')
	b.WriteString(formatFloat(f.fn()))
	b.WriteByte('\n')
}

// Sample is one labeled observation emitted by a Collector.
type Sample struct {
	// Labels is the pre-rendered label pairs without braces, e.g.
	// `subscriber="0"`. Values built from free-form strings should pass
	// through EscapeLabel.
	Labels string
	Value  float64
}

// Collector renders a dynamic set of labeled samples under one family —
// used for series whose label set changes at runtime, like per-subscriber
// replication lag. fn is called at scrape time.
type Collector struct {
	name string
	help string
	typ  string
	fn   func() []Sample
}

func (c *Collector) Name() string { return c.name }

func (c *Collector) write(b *strings.Builder) {
	header(b, c.name, c.help, c.typ)
	for _, s := range c.fn() {
		b.WriteString(c.name)
		if s.Labels != "" {
			b.WriteByte('{')
			b.WriteString(s.Labels)
			b.WriteByte('}')
		}
		b.WriteByte(' ')
		b.WriteString(formatFloat(s.Value))
		b.WriteByte('\n')
	}
}
