package metrics

import (
	"net"
	"net/http"
	"time"
)

// HTTPServer serves /metrics (the registry's text exposition) and /healthz
// (200 "ok" while serving, 503 with the health error's message while
// draining) on its own listener, off to the side of the wire protocol.
type HTTPServer struct {
	ln  net.Listener
	srv *http.Server
}

// Handler returns the /metrics + /healthz mux without a listener, for
// tests and embedding. health reports nil while the process should take
// traffic; a non-nil error flips /healthz to 503 with the error text —
// which is how a load balancer or the CI smoke sees a drain begin before
// the wire listener closes.
func Handler(reg *Registry, health func() error) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WriteText(w); err != nil {
			// Client went away mid-scrape; nothing to clean up.
			return
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if health != nil {
			if err := health(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	return mux
}

// ServeHTTP listens on addr (":0" picks a free port) and serves the
// registry until Close.
func ServeHTTP(addr string, reg *Registry, health func() error) (*HTTPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{
		Handler:           Handler(reg, health),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() { _ = srv.Serve(ln) }()
	return &HTTPServer{ln: ln, srv: srv}, nil
}

// Addr returns the bound address, e.g. "127.0.0.1:39211".
func (s *HTTPServer) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and any in-flight scrape handlers.
func (s *HTTPServer) Close() error { return s.srv.Close() }
