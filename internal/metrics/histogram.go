package metrics

import (
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// stripeCount is the number of independent shards an observation can land
// in. Power of two so the round-robin pick is a mask, sized for the
// small-core containers this runs in — contention halves with each stripe,
// and merging 8 at scrape time is still trivial.
const stripeCount = 8

// stripe is one shard of a histogram. The trailing pad keeps adjacent
// stripes off the same cache line so two cores observing concurrently do
// not false-share.
type stripe struct {
	mu     sync.Mutex
	counts []uint64
	sum    float64
	n      uint64
	_      [32]byte
}

// Histogram is a fixed-bucket latency histogram. Observe is allocation-free
// and lock-striped: the bucket index is found by binary search over the
// immutable bounds, then one of stripeCount shards (picked round-robin off
// an atomic counter) is locked just long enough to bump three words.
// Scrapes merge all stripes, so cumulative bucket counts, _sum, and _count
// are mutually consistent per stripe and never lose observations.
type Histogram struct {
	name   string
	help   string
	labels string // optional pre-rendered label pairs, e.g. `type="query"`
	bounds []float64
	next   atomic.Uint64
	strs   [stripeCount]stripe
}

// DefLatencyBuckets spans 50µs to 10s — wide enough for loopback RTTs at
// the bottom and quorum-timeout stalls at the top. Values are seconds.
var DefLatencyBuckets = []float64{
	0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 10,
}

// NewHistogram builds a histogram with the given upper bounds (ascending,
// +Inf implicit). Bounds are copied; the slice is immutable afterwards.
func NewHistogram(name, help string, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefLatencyBuckets
	}
	if !sort.Float64sAreSorted(bounds) {
		panic("metrics: histogram bounds must be ascending: " + name)
	}
	h := &Histogram{name: name, help: help, bounds: append([]float64(nil), bounds...)}
	for i := range h.strs {
		h.strs[i].counts = make([]uint64, len(h.bounds)+1)
	}
	return h
}

func (h *Histogram) Name() string { return h.name }

// Observe records one value. Allocation-free; see the type comment for the
// locking story.
func (h *Histogram) Observe(v float64) {
	// First bucket whose upper bound is >= v (hand-rolled so the closure
	// in sort.SearchFloat64s cannot escape).
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	s := &h.strs[h.next.Add(1)&(stripeCount-1)]
	s.mu.Lock()
	s.counts[lo]++
	s.sum += v
	s.n++
	s.mu.Unlock()
}

// ObserveSince records the elapsed time since t0, in seconds.
func (h *Histogram) ObserveSince(t0 time.Time) {
	h.Observe(time.Since(t0).Seconds())
}

// Snapshot merges all stripes: per-bucket (non-cumulative) counts, the sum
// of observed values, and the total observation count.
func (h *Histogram) Snapshot() (counts []uint64, sum float64, n uint64) {
	counts = make([]uint64, len(h.bounds)+1)
	for i := range h.strs {
		s := &h.strs[i]
		s.mu.Lock()
		for j, c := range s.counts {
			counts[j] += c
		}
		sum += s.sum
		n += s.n
		s.mu.Unlock()
	}
	return counts, sum, n
}

func (h *Histogram) write(b *strings.Builder) {
	header(b, h.name, h.help, "histogram")
	h.writeSeries(b)
}

// writeSeries renders the cumulative _bucket / _sum / _count lines without
// the family header, so HistogramVec can share one header across children.
func (h *Histogram) writeSeries(b *strings.Builder) {
	counts, sum, n := h.Snapshot()
	var cum uint64
	for i, bound := range h.bounds {
		cum += counts[i]
		h.bucketLine(b, formatFloat(bound), cum)
	}
	h.bucketLine(b, "+Inf", n)
	b.WriteString(h.name)
	b.WriteString("_sum")
	h.labelSuffix(b)
	b.WriteByte(' ')
	b.WriteString(formatFloat(sum))
	b.WriteByte('\n')
	b.WriteString(h.name)
	b.WriteString("_count")
	h.labelSuffix(b)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatUint(n, 10))
	b.WriteByte('\n')
}

func (h *Histogram) bucketLine(b *strings.Builder, le string, v uint64) {
	b.WriteString(h.name)
	b.WriteString("_bucket{")
	if h.labels != "" {
		b.WriteString(h.labels)
		b.WriteByte(',')
	}
	b.WriteString(`le="`)
	b.WriteString(le)
	b.WriteString(`"} `)
	b.WriteString(strconv.FormatUint(v, 10))
	b.WriteByte('\n')
}

func (h *Histogram) labelSuffix(b *strings.Builder) {
	if h.labels != "" {
		b.WriteByte('{')
		b.WriteString(h.labels)
		b.WriteByte('}')
	}
}

// HistogramVec is a family of histograms distinguished by one label (e.g.
// per-message-type request latency). With is intended for setup time —
// callers on the hot path hold on to the returned *Histogram. Children
// render in sorted label order under a single family header.
type HistogramVec struct {
	name   string
	help   string
	label  string
	bounds []float64

	mu       sync.Mutex
	children map[string]*Histogram
}

func NewHistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	return &HistogramVec{
		name: name, help: help, label: label, bounds: bounds,
		children: make(map[string]*Histogram),
	}
}

func (v *HistogramVec) Name() string { return v.name }

// With returns the child histogram for the given label value, creating it
// on first use. Not for per-observation use: resolve once, keep the result.
func (v *HistogramVec) With(value string) *Histogram {
	v.mu.Lock()
	defer v.mu.Unlock()
	if h, ok := v.children[value]; ok {
		return h
	}
	h := NewHistogram(v.name, v.help, v.bounds)
	h.labels = v.label + `="` + EscapeLabel(value) + `"`
	v.children[value] = h
	return h
}

func (v *HistogramVec) write(b *strings.Builder) {
	header(b, v.name, v.help, "histogram")
	v.mu.Lock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	hs := make([]*Histogram, 0, len(keys))
	sort.Strings(keys)
	for _, k := range keys {
		hs = append(hs, v.children[k])
	}
	v.mu.Unlock()
	for _, h := range hs {
		h.writeSeries(b)
	}
}
