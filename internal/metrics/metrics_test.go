package metrics

import (
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	c := NewCounter("c_total", "help")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	g := NewGauge("g", "help")
	g.Set(10)
	g.Add(5)
	g.Dec()
	if got := g.Value(); got != 14 {
		t.Fatalf("gauge = %d, want 14", got)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "one")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate registration")
		}
	}()
	r.Counter("dup_total", "two")
}

// referenceHistogram is the obvious single-lock implementation the striped
// one must agree with exactly (counts) and within float tolerance (sum).
type referenceHistogram struct {
	bounds []float64
	counts []uint64
	sum    float64
	n      uint64
}

func (r *referenceHistogram) observe(v float64) {
	i := 0
	for i < len(r.bounds) && r.bounds[i] < v {
		i++
	}
	r.counts[i]++
	r.sum += v
	r.n++
}

func TestHistogramAgainstReference(t *testing.T) {
	bounds := []float64{0.001, 0.005, 0.01, 0.05, 0.1, 1}
	h := NewHistogram("h", "help", bounds)
	ref := &referenceHistogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 10000; i++ {
		var v float64
		switch i % 5 {
		case 0:
			v = rng.Float64() * 2 // spans past the top bound into +Inf
		case 1:
			v = bounds[rng.Intn(len(bounds))] // exactly on a boundary: le is inclusive
		default:
			v = rng.Float64() * 0.02
		}
		h.Observe(v)
		ref.observe(v)
	}
	counts, sum, n := h.Snapshot()
	if n != ref.n {
		t.Fatalf("count = %d, want %d", n, ref.n)
	}
	for i := range counts {
		if counts[i] != ref.counts[i] {
			t.Fatalf("bucket %d = %d, want %d", i, counts[i], ref.counts[i])
		}
	}
	diff := sum - ref.sum
	if diff < 0 {
		diff = -diff
	}
	// Striped summation changes float addition order; allow rounding slack.
	if diff > 1e-6 {
		t.Fatalf("sum = %v, want %v (diff %v)", sum, ref.sum, diff)
	}
}

func TestHistogramBoundaryInclusive(t *testing.T) {
	h := NewHistogram("h", "help", []float64{1, 2})
	h.Observe(1) // le="1" is inclusive: must land in bucket 0
	h.Observe(1.5)
	h.Observe(3)
	counts, _, n := h.Snapshot()
	if n != 3 {
		t.Fatalf("n = %d, want 3", n)
	}
	want := []uint64{1, 1, 1}
	for i, w := range want {
		if counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, counts[i], w, counts)
		}
	}
}

// TestConcurrentObserveScrape exercises observers racing scrapes and other
// observers; run under -race this is the registry's thread-safety proof.
// The final totals must account for every observation.
func TestConcurrentObserveScrape(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "help", []float64{0.01, 0.1})
	c := r.Counter("ops_total", "help")
	g := r.Gauge("live", "help")
	const workers, perWorker = 8, 5000
	var observers, scraper sync.WaitGroup
	stop := make(chan struct{})
	// Scraper loop: render continuously while observers run.
	scraper.Add(1)
	go func() {
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if err := r.WriteText(io.Discard); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	for w := 0; w < workers; w++ {
		observers.Add(1)
		go func(seed int64) {
			defer observers.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWorker; i++ {
				h.Observe(rng.Float64())
				c.Inc()
				g.Inc()
				g.Dec()
			}
		}(int64(w))
	}
	observers.Wait()
	close(stop)
	scraper.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	_, _, n := h.Snapshot()
	if n != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", n, workers*perWorker)
	}
	if g.Value() != 0 {
		t.Fatalf("gauge = %d, want 0", g.Value())
	}
}

func TestTextGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("trod_test_ops_total", "Operations handled.")
	c.Add(3)
	g := r.Gauge("trod_test_live_sessions", "Sessions currently open.")
	g.Set(2)
	r.GaugeFunc("trod_test_ratio", "A derived ratio.", func() float64 { return 0.5 })
	h := r.Histogram("trod_test_latency_seconds", "Request latency.", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.002)
	h.Observe(5)
	v := r.HistogramVec("trod_test_req_seconds", "Per-type latency.", "type", []float64{0.01})
	v.With("query").Observe(0.001)
	v.With("exec").Observe(1)
	r.Collector("trod_test_lag_seqs", "Per-subscriber lag.", "gauge", func() []Sample {
		return []Sample{
			{Labels: `subscriber="0"`, Value: 7},
			{Labels: `subscriber="1"`, Value: 0},
		}
	})
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP trod_test_ops_total Operations handled.
# TYPE trod_test_ops_total counter
trod_test_ops_total 3
# HELP trod_test_live_sessions Sessions currently open.
# TYPE trod_test_live_sessions gauge
trod_test_live_sessions 2
# HELP trod_test_ratio A derived ratio.
# TYPE trod_test_ratio gauge
trod_test_ratio 0.5
# HELP trod_test_latency_seconds Request latency.
# TYPE trod_test_latency_seconds histogram
trod_test_latency_seconds_bucket{le="0.001"} 1
trod_test_latency_seconds_bucket{le="0.01"} 2
trod_test_latency_seconds_bucket{le="+Inf"} 3
trod_test_latency_seconds_sum 5.0025
trod_test_latency_seconds_count 3
# HELP trod_test_req_seconds Per-type latency.
# TYPE trod_test_req_seconds histogram
trod_test_req_seconds_bucket{type="exec",le="0.01"} 0
trod_test_req_seconds_bucket{type="exec",le="+Inf"} 1
trod_test_req_seconds_sum{type="exec"} 1
trod_test_req_seconds_count{type="exec"} 1
trod_test_req_seconds_bucket{type="query",le="0.01"} 1
trod_test_req_seconds_bucket{type="query",le="+Inf"} 1
trod_test_req_seconds_sum{type="query"} 0.001
trod_test_req_seconds_count{type="query"} 1
# HELP trod_test_lag_seqs Per-subscriber lag.
# TYPE trod_test_lag_seqs gauge
trod_test_lag_seqs{subscriber="0"} 7
trod_test_lag_seqs{subscriber="1"} 0
`
	if got := b.String(); got != want {
		t.Fatalf("golden mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestEscaping(t *testing.T) {
	if got := EscapeLabel("a\"b\\c\nd"); got != `a\"b\\c\nd` {
		t.Fatalf("EscapeLabel = %q", got)
	}
	r := NewRegistry()
	r.Counter("c_total", "line1\nline2\\end")
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `# HELP c_total line1\nline2\\end`) {
		t.Fatalf("help not escaped: %q", b.String())
	}
}

func TestHTTPHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("up_total", "help").Inc()
	draining := false
	drainingErr := func() error {
		if draining {
			return errDraining{}
		}
		return nil
	}
	srv := httptest.NewServer(Handler(r, drainingErr))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(string(body), "up_total 1") {
		t.Fatalf("metrics body missing counter: %q", body)
	}

	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status = %d, want 200", resp.StatusCode)
	}

	draining = true
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/healthz status while draining = %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(string(body), "draining") {
		t.Fatalf("healthz body = %q, want draining", body)
	}
}

type errDraining struct{}

func (errDraining) Error() string { return "draining" }
