// Package provenance defines the TROD provenance database: the structured,
// SQL-queryable tables the interposition layer fills (paper §3.4) and the
// helpers debugging operations use to read them back.
//
// Schema (names match the paper where it names them):
//
//	Executions        — one row per transaction: TxnId, Timestamp,
//	                    HandlerName, ReqId, Func (the paper's Metadata
//	                    column), Workflow, CommitSeq, Snapshot, Committed,
//	                    LatencyUs. This is "Table 1" / the table the §3.3
//	                    debugging query calls Executions.
//	trod_requests     — one row per top-level request with end-to-end
//	                    latency and status (the §5 performance extension).
//	trod_rpc_edges    — the workflow graph: parent/child invocation edges
//	                    (used by §4.2 exfiltration tracing).
//	trod_externals    — external-service calls (assumed idempotent).
//	<T>Events         — one per traced application table (e.g. ForumEvents
//	                    for forum_sub): Read/Insert/Update/Delete events
//	                    with the observed row values ("Table 2").
package provenance

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/db"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/value"
)

// TableMap maps an application table name (case-insensitive) to its event
// table name in the provenance database, e.g. "forum_sub" -> "ForumEvents".
type TableMap map[string]string

// normalize returns a lower-keyed copy.
func (m TableMap) normalize() TableMap {
	out := make(TableMap, len(m))
	for k, v := range m {
		out[strings.ToLower(k)] = v
	}
	return out
}

// Event is one provenance record buffered by the tracer and applied by the
// Writer. Exactly one of the payload groups is set, per Kind.
type Event struct {
	Kind Kind

	// Txn events (KindTxn): the finished transaction with read provenance.
	Txn db.TxnTrace

	// Write events (KindWrite): one CDC change.
	Seq    uint64
	TxnID  uint64
	Change storage.Change

	// Request events (KindRequest).
	ReqID      string
	Handler    string
	ArgsText   string
	ResultText string
	LatencyUs  int64
	Status     string

	// RPC edge events (KindEdge).
	Parent string
	Child  string

	// External call events (KindExternal).
	Service string
	Payload string

	// Logical is the tracer-assigned total-order timestamp.
	Logical uint64
}

// Kind discriminates Event payloads.
type Kind uint8

// Event kinds.
const (
	KindTxn Kind = iota
	KindWrite
	KindRequest
	KindEdge
	KindExternal
)

// Writer applies events to the provenance database.
//
// The write path bypasses the SQL layer: batches are turned directly into
// storage commits against the provenance store. The provenance schema is
// owned by the Writer (nothing else writes it), so this is safe, and it is
// what keeps background flushing cheap enough for always-on tracing on
// small machines.
type Writer struct {
	prov    *db.DB
	tables  TableMap
	appCols map[string][]schema.Column // app table (lower) -> columns
	// evTables caches resolved schema.Table handles per destination.
	evTables map[string]*schema.Table // lowercased app table -> event table schema
	// dests memoizes destination lookups per exact table-name spelling so the
	// per-event hot path (appendTxn/appendWrite) avoids strings.ToLower; a nil
	// entry marks an untraced table. Guarded by mu (ApplyBatch holds it).
	dests   map[string]*dest
	execTbl *schema.Table
	reqTbl  *schema.Table
	edgeTbl *schema.Table
	extTbl  *schema.Table
	// mu serialises ApplyBatch: the tracer's background flusher and an
	// explicit Flush may drain concurrently, and the synthetic-ID counters
	// plus the single-writer commit assumption require exclusion.
	mu      sync.Mutex
	evSeq   uint64
	edgeSeq uint64
	extSeq  uint64
}

// Setup creates the provenance schema inside prov for the given application
// database and table map, returning a Writer. Event tables get the traced
// table's columns (nullable) plus the provenance header columns.
func Setup(prov *db.DB, appDB *db.DB, tables TableMap) (*Writer, error) {
	w := &Writer{
		prov:     prov,
		tables:   tables.normalize(),
		appCols:  make(map[string][]schema.Column),
		evTables: make(map[string]*schema.Table),
		dests:    make(map[string]*dest),
	}
	ddl := `
	CREATE TABLE IF NOT EXISTS Executions (
		TxnId INTEGER PRIMARY KEY, Timestamp INTEGER, HandlerName TEXT,
		ReqId TEXT, Func TEXT, Workflow TEXT, CommitSeq INTEGER,
		Snapshot INTEGER, Committed BOOL, LatencyUs INTEGER);
	CREATE TABLE IF NOT EXISTS trod_requests (
		ReqId TEXT PRIMARY KEY, HandlerName TEXT, Args TEXT, Result TEXT,
		Timestamp INTEGER, LatencyUs INTEGER, Status TEXT);
	CREATE TABLE IF NOT EXISTS trod_rpc_edges (
		EdgeId INTEGER PRIMARY KEY, ReqId TEXT, Parent TEXT, Child TEXT,
		HandlerName TEXT, Timestamp INTEGER);
	CREATE TABLE IF NOT EXISTS trod_externals (
		CallId INTEGER PRIMARY KEY, ReqId TEXT, Service TEXT, Payload TEXT,
		Timestamp INTEGER);`
	if err := prov.ExecScript(ddl); err != nil {
		return nil, fmt.Errorf("provenance: schema: %w", err)
	}
	// CREATE INDEX has no IF NOT EXISTS in our dialect; create it only when
	// absent (the prov DB may be re-attached across runs).
	hasIdx := false
	for _, ix := range prov.Store().Indexes("Executions") {
		if strings.EqualFold(ix.Name, "ex_req") {
			hasIdx = true
		}
	}
	if !hasIdx {
		if _, err := prov.Exec(`CREATE INDEX ex_req ON Executions (ReqId)`); err != nil {
			return nil, err
		}
	}

	for appTable, evTable := range w.tables {
		tbl := appDB.Store().Table(appTable)
		if tbl == nil {
			return nil, fmt.Errorf("provenance: traced table %q does not exist in the application database", appTable)
		}
		w.appCols[appTable] = tbl.Columns
		if prov.Store().Table(evTable) != nil {
			continue
		}
		var sb strings.Builder
		fmt.Fprintf(&sb, "CREATE TABLE %s (EvId INTEGER PRIMARY KEY, TxnId INTEGER, Seq INTEGER, Type TEXT, Query TEXT", evTable)
		for _, c := range tbl.Columns {
			fmt.Fprintf(&sb, ", %s %s", c.Name, sqlTypeName(c.Type))
		}
		sb.WriteString(")")
		if _, err := prov.Exec(sb.String()); err != nil {
			return nil, fmt.Errorf("provenance: event table %s: %w", evTable, err)
		}
		if _, err := prov.Exec(fmt.Sprintf("CREATE INDEX %s_txn ON %s (TxnId)", evTable, evTable)); err != nil {
			return nil, err
		}
	}
	for appTable, evTable := range w.tables {
		w.evTables[appTable] = prov.Store().Table(evTable)
	}
	w.execTbl = prov.Store().Table("Executions")
	w.reqTbl = prov.Store().Table("trod_requests")
	w.edgeTbl = prov.Store().Table("trod_rpc_edges")
	w.extTbl = prov.Store().Table("trod_externals")
	// Resume the synthetic-ID counters past any recovered rows, so a
	// tracer re-attached to a durable provenance database keeps appending
	// (the restart arc in the root durability tests).
	maxOf := func(table, col string) (uint64, error) {
		res, err := prov.Query(fmt.Sprintf("SELECT COALESCE(MAX(%s), 0) FROM %s", col, table))
		if err != nil {
			return 0, err
		}
		return uint64(res.Rows[0][0].AsInt()), nil
	}
	for _, evTable := range w.tables {
		n, err := maxOf(evTable, "EvId")
		if err != nil {
			return nil, err
		}
		if n > w.evSeq {
			w.evSeq = n
		}
	}
	var err error
	if w.edgeSeq, err = maxOf("trod_rpc_edges", "EdgeId"); err != nil {
		return nil, err
	}
	if w.extSeq, err = maxOf("trod_externals", "CallId"); err != nil {
		return nil, err
	}
	return w, nil
}

func sqlTypeName(k value.Kind) string {
	switch k {
	case value.KindInt:
		return "INTEGER"
	case value.KindFloat:
		return "FLOAT"
	case value.KindBool:
		return "BOOL"
	case value.KindBytes:
		return "BYTES"
	default:
		return "TEXT"
	}
}

// dest bundles the resolved destination for one traced application table.
type dest struct {
	evTbl   *schema.Table
	appCols []schema.Column
}

// dest resolves the provenance destination for an application table name,
// lowercasing at most once per distinct spelling. Returns nil for untraced
// tables. Callers must hold w.mu.
func (w *Writer) dest(table string) *dest {
	d, ok := w.dests[table]
	if !ok {
		key := strings.ToLower(table)
		if evTbl := w.evTables[key]; evTbl != nil {
			d = &dest{evTbl: evTbl, appCols: w.appCols[key]}
		}
		w.dests[table] = d
	}
	return d
}

// DB returns the provenance database for direct declarative debugging.
func (w *Writer) DB() *db.DB { return w.prov }

// EventTable returns the event-table name for an application table, or "".
func (w *Writer) EventTable(appTable string) string {
	return w.tables[strings.ToLower(appTable)]
}

// ApplyBatch writes a batch of events as one storage commit against the
// provenance store.
func (w *Writer) ApplyBatch(events []Event) error {
	if len(events) == 0 {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	changes := make([]storage.Change, 0, len(events)*2)
	var err error
	for i := range events {
		changes, err = w.appendChanges(changes, &events[i])
		if err != nil {
			return err
		}
	}
	if len(changes) == 0 {
		return nil
	}
	store := w.prov.Store()
	// Commit through the facade so a disk-backed provenance database gets
	// the full durability path: group-commit waiting and automatic
	// checkpoint triggers (batches bypass the SQL layer but not the WAL).
	seq, err := w.prov.ApplyCommit(storage.CommitRequest{TxnID: store.NextTxnID(), Snapshot: store.CurrentSeq(), Changes: changes})
	if err != nil {
		return err
	}
	// The provenance database needs no CDC history of its own (replay and
	// retro consume the PRODUCTION commit log); drop it eagerly so the
	// always-on tracer's memory footprint is just the provenance rows.
	store.TruncateLog(seq)
	return nil
}

// appendChanges renders one event into storage changes.
func (w *Writer) appendChanges(changes []storage.Change, ev *Event) ([]storage.Change, error) {
	switch ev.Kind {
	case KindTxn:
		return w.appendTxn(changes, ev)
	case KindWrite:
		return w.appendWrite(changes, ev)
	case KindRequest:
		row := value.Row{
			value.Text(ev.ReqID), value.Text(ev.Handler), value.Text(ev.ArgsText),
			value.Text(ev.ResultText), value.Int(int64(ev.Logical)), value.Int(ev.LatencyUs),
			value.Text(ev.Status),
		}
		return w.appendRow(changes, w.reqTbl, row)
	case KindEdge:
		w.edgeSeq++
		row := value.Row{
			value.Int(int64(w.edgeSeq)), value.Text(ev.ReqID), value.Text(ev.Parent),
			value.Text(ev.Child), value.Text(ev.Handler), value.Int(int64(ev.Logical)),
		}
		return w.appendRow(changes, w.edgeTbl, row)
	case KindExternal:
		w.extSeq++
		row := value.Row{
			value.Int(int64(w.extSeq)), value.Text(ev.ReqID), value.Text(ev.Service),
			value.Text(ev.Payload), value.Int(int64(ev.Logical)),
		}
		return w.appendRow(changes, w.extTbl, row)
	default:
		return nil, fmt.Errorf("provenance: unknown event kind %d", ev.Kind)
	}
}

func (w *Writer) appendRow(changes []storage.Change, tbl *schema.Table, row value.Row) ([]storage.Change, error) {
	checked, err := tbl.CheckRow(row)
	if err != nil {
		return nil, fmt.Errorf("provenance: %s: %w", tbl.Name, err)
	}
	return append(changes, storage.Change{
		Table: tbl.Name,
		Key:   tbl.EncodePrimaryKey(checked),
		Op:    storage.OpInsert,
		After: checked,
	}), nil
}

func (w *Writer) appendTxn(changes []storage.Change, ev *Event) ([]storage.Change, error) {
	tr := &ev.Txn
	latency := tr.End.Sub(tr.Start).Microseconds()
	row := value.Row{
		value.Int(int64(tr.TxnID)), value.Int(int64(ev.Logical)), value.Text(tr.Meta.Handler),
		value.Text(tr.Meta.ReqID), value.Text(tr.Meta.Func), value.Text(tr.Meta.Workflow),
		value.Int(int64(tr.CommitSeq)), value.Int(int64(tr.Snapshot)),
		value.Bool(tr.Committed), value.Int(latency),
	}
	changes, err := w.appendRow(changes, w.execTbl, row)
	if err != nil {
		return nil, err
	}
	// Read provenance rows into the per-table event tables.
	for si := range tr.Stmts {
		st := &tr.Stmts[si]
		for ri := range st.Reads {
			rd := &st.Reads[ri]
			d := w.dest(rd.Table)
			if d == nil {
				continue
			}
			changes, err = w.appendEvent(changes, d, int64(tr.TxnID), int64(tr.Snapshot), "Read", st.Query, rd.Row)
			if err != nil {
				return nil, err
			}
		}
	}
	return changes, nil
}

func (w *Writer) appendWrite(changes []storage.Change, ev *Event) ([]storage.Change, error) {
	d := w.dest(ev.Change.Table)
	if d == nil {
		return changes, nil
	}
	row := ev.Change.After
	if ev.Change.Op == storage.OpDelete {
		row = ev.Change.Before
	}
	return w.appendEvent(changes, d, int64(ev.TxnID), int64(ev.Seq), ev.Change.Op.String(), "", row)
}

func (w *Writer) appendEvent(changes []storage.Change, d *dest, txnID, seq int64, typ, query string, row value.Row) ([]storage.Change, error) {
	cols := d.appCols
	w.evSeq++
	out := make(value.Row, 0, 5+len(cols))
	out = append(out, value.Int(int64(w.evSeq)), value.Int(txnID), value.Int(seq), value.Text(typ), value.Text(query))
	for i := range cols {
		if row == nil || i >= len(row) {
			out = append(out, value.Null)
		} else {
			out = append(out, row[i])
		}
	}
	return w.appendRow(changes, d.evTbl, out)
}

// --- query helpers -------------------------------------------------------------

// Execution is one row of the Executions table.
type Execution struct {
	TxnID     uint64
	Timestamp uint64
	Handler   string
	ReqID     string
	Func      string
	Workflow  string
	CommitSeq uint64
	Snapshot  uint64
	Committed bool
	LatencyUs int64
}

func executionFromRow(r value.Row) Execution {
	b := func(v value.Value) uint64 {
		if v.IsNull() {
			return 0
		}
		return uint64(v.AsInt())
	}
	s := func(v value.Value) string {
		if v.IsNull() {
			return ""
		}
		return v.AsText()
	}
	return Execution{
		TxnID: b(r[0]), Timestamp: b(r[1]), Handler: s(r[2]), ReqID: s(r[3]),
		Func: s(r[4]), Workflow: s(r[5]), CommitSeq: b(r[6]), Snapshot: b(r[7]),
		Committed: !r[8].IsNull() && r[8].AsBool(), LatencyUs: r[9].AsInt(),
	}
}

const executionCols = `TxnId, Timestamp, HandlerName, ReqId, Func, Workflow, CommitSeq, Snapshot, Committed, LatencyUs`

// ExecutionsForRequest returns a request's transactions in execution order.
func (w *Writer) ExecutionsForRequest(reqID string) ([]Execution, error) {
	res, err := w.prov.Query(`SELECT `+executionCols+` FROM Executions WHERE ReqId = ? ORDER BY Timestamp`, reqID)
	if err != nil {
		return nil, err
	}
	out := make([]Execution, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = executionFromRow(r)
	}
	return out, nil
}

// ExecutionByTxn returns the execution record for one transaction.
func (w *Writer) ExecutionByTxn(txnID uint64) (Execution, error) {
	res, err := w.prov.Query(`SELECT `+executionCols+` FROM Executions WHERE TxnId = ?`, int64(txnID))
	if err != nil {
		return Execution{}, err
	}
	if len(res.Rows) == 0 {
		return Execution{}, fmt.Errorf("provenance: no execution for txn %d", txnID)
	}
	return executionFromRow(res.Rows[0]), nil
}

// RequestsTouchingTable returns the distinct request IDs that read or wrote
// the given application table, in first-touch order. Retroactive programming
// uses this to find "other requests that may touch the same table" (§4.1).
func (w *Writer) RequestsTouchingTable(appTable string) ([]string, error) {
	evTable := w.EventTable(appTable)
	if evTable == "" {
		return nil, fmt.Errorf("provenance: table %q is not traced", appTable)
	}
	res, err := w.prov.Query(`SELECT E.ReqId, MIN(E.Timestamp) AS t
		FROM Executions AS E JOIN ` + evTable + ` AS F ON E.TxnId = F.TxnId
		GROUP BY E.ReqId ORDER BY t`)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(res.Rows))
	for _, r := range res.Rows {
		out = append(out, r[0].AsText())
	}
	return out, nil
}

// WorkflowEdges returns the RPC edges of one request in invocation order.
func (w *Writer) WorkflowEdges(reqID string) ([][2]string, error) {
	res, err := w.prov.Query(`SELECT Parent, Child FROM trod_rpc_edges WHERE ReqId = ? ORDER BY Timestamp`, reqID)
	if err != nil {
		return nil, err
	}
	out := make([][2]string, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = [2]string{r[0].AsText(), r[1].AsText()}
	}
	return out, nil
}

// Forget deletes every provenance record whose traced column equals the
// given value — the GDPR/CCPA deletion hook sketched in §5. It removes
// matching event rows from every traced table; execution and request rows
// are kept (they carry no row data).
func (w *Writer) Forget(column string, val any) (int, error) {
	total := 0
	for appTable, evTable := range w.tables {
		hasCol := false
		for _, c := range w.appCols[appTable] {
			if strings.EqualFold(c.Name, column) {
				hasCol = true
				break
			}
		}
		if !hasCol {
			continue
		}
		res, err := w.prov.Exec(fmt.Sprintf(`DELETE FROM %s WHERE %s = ?`, evTable, column), val)
		if err != nil {
			return total, err
		}
		total += res.RowsAffected
	}
	return total, nil
}

// Request is one row of trod_requests.
type Request struct {
	ReqID     string
	Handler   string
	ArgsJSON  string
	Result    string
	Timestamp uint64
	LatencyUs int64
	Status    string
}

// RequestByID returns the recorded request, or an error when unknown.
func (w *Writer) RequestByID(reqID string) (Request, error) {
	res, err := w.prov.Query(`SELECT ReqId, HandlerName, Args, Result, Timestamp, LatencyUs, Status FROM trod_requests WHERE ReqId = ?`, reqID)
	if err != nil {
		return Request{}, err
	}
	if len(res.Rows) == 0 {
		return Request{}, fmt.Errorf("provenance: no request %q", reqID)
	}
	r := res.Rows[0]
	s := func(v value.Value) string {
		if v.IsNull() {
			return ""
		}
		return v.AsText()
	}
	return Request{
		ReqID: s(r[0]), Handler: s(r[1]), ArgsJSON: s(r[2]), Result: s(r[3]),
		Timestamp: uint64(r[4].AsInt()), LatencyUs: r[5].AsInt(), Status: s(r[6]),
	}, nil
}

// Requests returns all recorded requests in timestamp order.
func (w *Writer) Requests() ([]Request, error) {
	res, err := w.prov.Query(`SELECT ReqId, HandlerName, Args, Result, Timestamp, LatencyUs, Status FROM trod_requests ORDER BY Timestamp`)
	if err != nil {
		return nil, err
	}
	out := make([]Request, 0, len(res.Rows))
	for _, r := range res.Rows {
		s := func(v value.Value) string {
			if v.IsNull() {
				return ""
			}
			return v.AsText()
		}
		out = append(out, Request{
			ReqID: s(r[0]), Handler: s(r[1]), ArgsJSON: s(r[2]), Result: s(r[3]),
			Timestamp: uint64(r[4].AsInt()), LatencyUs: r[5].AsInt(), Status: s(r[6]),
		})
	}
	return out, nil
}
