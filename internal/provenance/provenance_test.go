package provenance

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/db"
	"repro/internal/storage"
	"repro/internal/value"
)

// writerFixture builds a Writer over an in-memory provenance DB tracing one
// app table, plus helpers for feeding events directly (bypassing the
// tracer, which has its own tests).
func writerFixture(t *testing.T) (*Writer, *db.DB) {
	t.Helper()
	prov := db.MustOpenMemory()
	appDB := db.MustOpenMemory()
	t.Cleanup(func() { prov.Close(); appDB.Close() })
	if err := appDB.ExecScript(`CREATE TABLE items (id INTEGER PRIMARY KEY, name TEXT, price INTEGER)`); err != nil {
		t.Fatal(err)
	}
	w, err := Setup(prov, appDB, TableMap{"items": "ItemEvents"})
	if err != nil {
		t.Fatal(err)
	}
	return w, prov
}

func txnEvent(txnID, logical uint64, reqID, handler, fn string, committed bool, latUs int64) Event {
	start := time.Now()
	return Event{
		Kind: KindTxn,
		Txn: db.TxnTrace{
			TxnID:     txnID,
			CommitSeq: txnID,
			Meta:      db.TxMeta{ReqID: reqID, Handler: handler, Func: fn},
			Committed: committed,
			Start:     start,
			End:       start.Add(time.Duration(latUs) * time.Microsecond),
		},
		Logical: logical,
	}
}

func writeEvent(txnID, logical uint64, id int64, name string, price int64) Event {
	return Event{
		Kind:  KindWrite,
		Seq:   txnID,
		TxnID: txnID,
		Change: storage.Change{
			Table: "items",
			Op:    storage.OpInsert,
			After: value.Row{value.Int(id), value.Text(name), value.Int(price)},
		},
		Logical: logical,
	}
}

func requestEvent(reqID, handler string, logical uint64, latUs int64, status string) Event {
	return Event{
		Kind: KindRequest, ReqID: reqID, Handler: handler, ArgsText: "{}",
		ResultText: "null", LatencyUs: latUs, Status: status, Logical: logical,
	}
}

func TestSetupIsIdempotentOnReattach(t *testing.T) {
	prov := db.MustOpenMemory()
	appDB := db.MustOpenMemory()
	defer prov.Close()
	defer appDB.Close()
	if err := appDB.ExecScript(`CREATE TABLE t (id INTEGER PRIMARY KEY)`); err != nil {
		t.Fatal(err)
	}
	if _, err := Setup(prov, appDB, TableMap{"t": "TEvents"}); err != nil {
		t.Fatal(err)
	}
	// Re-attaching to the same provenance DB must not fail on existing
	// tables or indexes.
	if _, err := Setup(prov, appDB, TableMap{"t": "TEvents"}); err != nil {
		t.Fatalf("re-setup: %v", err)
	}
}

func TestApplyBatchRoundTrip(t *testing.T) {
	w, prov := writerFixture(t)
	batch := []Event{
		txnEvent(1, 10, "R1", "addItem", "DB.insert", true, 120),
		writeEvent(1, 11, 1, "widget", 999),
		requestEvent("R1", "addItem", 12, 300, "ok"),
		{Kind: KindEdge, ReqID: "R1", Parent: "", Child: "R1/0", Handler: "addItem", Logical: 13},
		{Kind: KindExternal, ReqID: "R1", Service: "smtp", Payload: "x", Logical: 14},
	}
	if err := w.ApplyBatch(batch); err != nil {
		t.Fatal(err)
	}
	// Executions row.
	ex, err := w.ExecutionByTxn(1)
	if err != nil {
		t.Fatal(err)
	}
	if ex.ReqID != "R1" || ex.Func != "DB.insert" || !ex.Committed || ex.LatencyUs != 120 {
		t.Errorf("execution = %+v", ex)
	}
	// Event row with app columns.
	rows, err := prov.Query(`SELECT Type, id, name, price FROM ItemEvents`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Rows) != 1 || rows.Rows[0][2].AsText() != "widget" || rows.Rows[0][3].AsInt() != 999 {
		t.Errorf("item events = %v", rows.Rows)
	}
	// Request, edge, external rows.
	req, err := w.RequestByID("R1")
	if err != nil || req.LatencyUs != 300 {
		t.Errorf("request = %+v, %v", req, err)
	}
	edges, err := w.WorkflowEdges("R1")
	if err != nil || len(edges) != 1 || edges[0][1] != "R1/0" {
		t.Errorf("edges = %v, %v", edges, err)
	}
	ext, _ := prov.Query(`SELECT Service FROM trod_externals`)
	if len(ext.Rows) != 1 || ext.Rows[0][0].AsText() != "smtp" {
		t.Errorf("externals = %v", ext.Rows)
	}
	// Empty batch is a no-op.
	if err := w.ApplyBatch(nil); err != nil {
		t.Fatal(err)
	}
}

func TestReadEventsWithStatementTraces(t *testing.T) {
	w, prov := writerFixture(t)
	ev := txnEvent(5, 20, "R2", "getItem", "DB.select", true, 50)
	ev.Txn.Stmts = []db.StmtTrace{{
		Query: "SELECT * FROM items WHERE id = ?",
		Reads: []db.ReadEvent{
			{Table: "items", Row: value.Row{value.Int(1), value.Text("w"), value.Int(5)}},
			{Table: "items"}, // no-match marker
			{Table: "untraced", Row: value.Row{value.Int(9)}},
		},
	}}
	if err := w.ApplyBatch([]Event{ev}); err != nil {
		t.Fatal(err)
	}
	rows, err := prov.Query(`SELECT Type, Query, id FROM ItemEvents ORDER BY EvId`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Rows) != 2 {
		t.Fatalf("read events = %v", rows.Rows)
	}
	if rows.Rows[0][2].AsInt() != 1 || !rows.Rows[1][2].IsNull() {
		t.Errorf("read rows = %v", rows.Rows)
	}
	if !strings.Contains(rows.Rows[0][1].AsText(), "SELECT") {
		t.Errorf("query text = %v", rows.Rows[0][1])
	}
}

func TestHandlerLatencyStats(t *testing.T) {
	w, _ := writerFixture(t)
	batch := []Event{
		requestEvent("R1", "fast", 1, 100, "ok"),
		requestEvent("R2", "fast", 2, 300, "ok"),
		requestEvent("R3", "slow", 3, 9000, "ok"),
		requestEvent("R4", "slow", 4, 11000, "error: boom"),
	}
	if err := w.ApplyBatch(batch); err != nil {
		t.Fatal(err)
	}
	stats, err := w.HandlerLatencyStats()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 2 || stats[0].Handler != "slow" {
		t.Fatalf("stats = %+v", stats)
	}
	if stats[0].Requests != 2 || stats[0].MaxUs != 11000 || stats[0].AvgUs != 10000 || stats[0].Errors != 1 {
		t.Errorf("slow stats = %+v", stats[0])
	}
	if stats[1].Errors != 0 || stats[1].AvgUs != 200 {
		t.Errorf("fast stats = %+v", stats[1])
	}
	rendered := FormatHandlerStats(stats)
	if !strings.Contains(rendered, "slow") || !strings.Contains(rendered, "11000") {
		t.Errorf("rendered = %q", rendered)
	}
}

func TestSlowRequestsDrilldown(t *testing.T) {
	w, _ := writerFixture(t)
	batch := []Event{
		txnEvent(1, 1, "R1", "h", "step1", true, 40),
		txnEvent(2, 2, "R1", "h", "step2", true, 400),
		requestEvent("R1", "h", 3, 500, "ok"),
		requestEvent("R2", "h", 4, 90, "ok"),
	}
	if err := w.ApplyBatch(batch); err != nil {
		t.Fatal(err)
	}
	slow, err := w.SlowRequests(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(slow) != 1 || slow[0].Request.ReqID != "R1" {
		t.Fatalf("slow = %+v", slow)
	}
	if len(slow[0].TxnLatencies) != 2 || slow[0].TxnLatencies[1].Func != "step2" || slow[0].TxnLatencies[1].LatencyUs != 400 {
		t.Errorf("txn breakdown = %+v", slow[0].TxnLatencies)
	}
}

func TestCheckDataQuality(t *testing.T) {
	w, _ := writerFixture(t)
	batch := []Event{
		txnEvent(1, 1, "R1", "addItem", "DB.insert", true, 10),
		writeEvent(1, 2, 1, "good", 100),
		txnEvent(2, 3, "R2", "addItem", "DB.insert", true, 10),
		writeEvent(2, 4, 2, "bad", -5), // negative price: bad data
	}
	if err := w.ApplyBatch(batch); err != nil {
		t.Fatal(err)
	}
	violations, err := w.CheckDataQuality("items", func(appRow value.Row) string {
		if appRow[2].AsInt() < 0 {
			return "negative price"
		}
		return ""
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 1 {
		t.Fatalf("violations = %+v", violations)
	}
	v := violations[0]
	if v.ReqID != "R2" || v.Reason != "negative price" || v.TxnID != 2 {
		t.Errorf("violation = %+v", v)
	}
	if _, err := w.CheckDataQuality("ghost", func(value.Row) string { return "" }); err == nil {
		t.Error("untraced table should error")
	}
}

func TestForgetAndExpire(t *testing.T) {
	w, prov := writerFixture(t)
	batch := []Event{
		txnEvent(1, 1, "R1", "h", "f", true, 10),
		writeEvent(1, 2, 1, "alice-data", 1),
		requestEvent("R1", "h", 3, 10, "ok"),
		txnEvent(2, 100, "R2", "h", "f", true, 10),
		writeEvent(2, 101, 2, "bob-data", 2),
		requestEvent("R2", "h", 102, 10, "ok"),
	}
	if err := w.ApplyBatch(batch); err != nil {
		t.Fatal(err)
	}
	// Forget by column value.
	n, err := w.Forget("name", "alice-data")
	if err != nil || n != 1 {
		t.Fatalf("Forget = %d, %v", n, err)
	}
	// Forget with a column no traced table has.
	if n, err := w.Forget("nosuchcolumn", "x"); err != nil || n != 0 {
		t.Errorf("Forget missing column = %d, %v", n, err)
	}
	// Expire everything before logical 50: removes R1's exec + request (and
	// its event row is already gone via Forget).
	n, err = w.Expire(50)
	if err != nil {
		t.Fatal(err)
	}
	if n < 2 {
		t.Errorf("Expire removed %d rows", n)
	}
	rows, _ := prov.Query(`SELECT COUNT(*) FROM Executions`)
	if rows.Rows[0][0].AsInt() != 1 {
		t.Errorf("executions after expire = %v", rows.Rows[0][0])
	}
	rows, _ = prov.Query(`SELECT COUNT(*) FROM ItemEvents`)
	if rows.Rows[0][0].AsInt() != 1 {
		t.Errorf("events after expire = %v", rows.Rows[0][0])
	}
	// The surviving data is R2's.
	req, err := w.RequestByID("R2")
	if err != nil || req.ReqID != "R2" {
		t.Errorf("survivor = %+v, %v", req, err)
	}
	if _, err := w.RequestByID("R1"); err == nil {
		t.Error("expired request still present")
	}
}

func TestRequestsListing(t *testing.T) {
	w, _ := writerFixture(t)
	if err := w.ApplyBatch([]Event{
		requestEvent("R2", "h", 5, 10, "ok"),
		requestEvent("R1", "h", 2, 10, "ok"),
	}); err != nil {
		t.Fatal(err)
	}
	reqs, err := w.Requests()
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 2 || reqs[0].ReqID != "R1" || reqs[1].ReqID != "R2" {
		t.Errorf("requests = %+v", reqs)
	}
}

func TestUnknownEventKind(t *testing.T) {
	w, _ := writerFixture(t)
	if err := w.ApplyBatch([]Event{{Kind: Kind(99)}}); err == nil {
		t.Error("unknown kind should fail")
	}
}

func TestEventTableSchemaMirrorsAppColumns(t *testing.T) {
	w, prov := writerFixture(t)
	_ = w
	tbl := prov.Store().Table("ItemEvents")
	if tbl == nil {
		t.Fatal("event table missing")
	}
	names := tbl.ColumnNames()
	want := []string{"EvId", "TxnId", "Seq", "Type", "Query", "id", "name", "price"}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Errorf("event table columns = %v, want %v", names, want)
	}
}
