package provenance

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/value"
)

// This file implements the §5 extensions the paper sketches: performance
// debugging over the traced latencies (the APM-style transaction traces the
// paper compares with Retrace/New Relic) and data-quality debugging over
// the captured write provenance.

// HandlerStats aggregates request latencies per handler.
type HandlerStats struct {
	Handler  string
	Requests int
	Errors   int
	AvgUs    float64
	MaxUs    int64
	TotalUs  int64
}

// HandlerLatencyStats computes per-handler request latency statistics from
// trod_requests — the automatically generated performance traces the paper
// argues replace manual APM annotations (§5).
func (w *Writer) HandlerLatencyStats() ([]HandlerStats, error) {
	res, err := w.prov.Query(`SELECT HandlerName, COUNT(*) AS n, SUM(LatencyUs) AS total, MAX(LatencyUs) AS worst
		FROM trod_requests GROUP BY HandlerName ORDER BY total DESC`)
	if err != nil {
		return nil, err
	}
	out := make([]HandlerStats, 0, len(res.Rows))
	for _, r := range res.Rows {
		hs := HandlerStats{
			Handler:  r[0].AsText(),
			Requests: int(r[1].AsInt()),
			TotalUs:  r[2].AsInt(),
			MaxUs:    r[3].AsInt(),
		}
		if hs.Requests > 0 {
			hs.AvgUs = float64(hs.TotalUs) / float64(hs.Requests)
		}
		out = append(out, hs)
	}
	// Error counts need a second pass (no FILTER clause in the dialect).
	errs, err := w.prov.Query(`SELECT HandlerName, COUNT(*) FROM trod_requests
		WHERE Status != 'ok' GROUP BY HandlerName`)
	if err != nil {
		return nil, err
	}
	byHandler := make(map[string]int, len(errs.Rows))
	for _, r := range errs.Rows {
		byHandler[r[0].AsText()] = int(r[1].AsInt())
	}
	for i := range out {
		out[i].Errors = byHandler[out[i].Handler]
	}
	return out, nil
}

// SlowRequests returns the n slowest requests with their per-transaction
// latency breakdown — the drill-down a performance investigation starts
// from.
type SlowRequest struct {
	Request Request
	// TxnLatencies maps each transaction's Func label to its latency.
	TxnLatencies []TxnLatency
}

// TxnLatency is one transaction's share of a slow request.
type TxnLatency struct {
	TxnID     uint64
	Func      string
	LatencyUs int64
}

// SlowRequests lists the n slowest requests, slowest first.
func (w *Writer) SlowRequests(n int) ([]SlowRequest, error) {
	res, err := w.prov.Query(`SELECT ReqId, HandlerName, Args, Result, Timestamp, LatencyUs, Status
		FROM trod_requests ORDER BY LatencyUs DESC LIMIT ?`, n)
	if err != nil {
		return nil, err
	}
	out := make([]SlowRequest, 0, len(res.Rows))
	for _, r := range res.Rows {
		req := Request{
			ReqID: r[0].AsText(), Handler: r[1].AsText(),
			Timestamp: uint64(r[4].AsInt()), LatencyUs: r[5].AsInt(), Status: r[6].AsText(),
		}
		if !r[2].IsNull() {
			req.ArgsJSON = r[2].AsText()
		}
		if !r[3].IsNull() {
			req.Result = r[3].AsText()
		}
		txns, err := w.prov.Query(`SELECT TxnId, Func, LatencyUs FROM Executions
			WHERE ReqId = ? ORDER BY Timestamp`, req.ReqID)
		if err != nil {
			return nil, err
		}
		sr := SlowRequest{Request: req}
		for _, tr := range txns.Rows {
			sr.TxnLatencies = append(sr.TxnLatencies, TxnLatency{
				TxnID:     uint64(tr[0].AsInt()),
				Func:      tr[1].AsText(),
				LatencyUs: tr[2].AsInt(),
			})
		}
		out = append(out, sr)
	}
	return out, nil
}

// --- data-quality debugging (§5) ---------------------------------------------

// QualityViolation reports a write event whose row fails a data-quality
// predicate, with the request that caused it.
type QualityViolation struct {
	ReqID     string
	Handler   string
	Timestamp uint64
	TxnID     uint64
	Row       value.Row // the event table row (EvId, TxnId, Seq, Type, Query, app columns...)
	Reason    string
}

// CheckDataQuality runs a data-quality test over a traced table's write
// provenance: test receives the application columns of every Insert/Update
// event and returns a non-empty reason when the row is bad. The result
// names the requests that introduced the bad data — the paper's "find
// requests that caused data quality degradation" (§5).
func (w *Writer) CheckDataQuality(appTable string, test func(appRow value.Row) string) ([]QualityViolation, error) {
	evTable := w.EventTable(appTable)
	if evTable == "" {
		return nil, fmt.Errorf("provenance: table %q is not traced", appTable)
	}
	nHeader := 5 // EvId, TxnId, Seq, Type, Query
	res, err := w.prov.Query(fmt.Sprintf(
		`SELECT E.ReqId, E.HandlerName, E.Timestamp, F.* FROM %s as F, Executions as E
		 ON E.TxnId = F.TxnId
		 WHERE F.Type IN ('Insert', 'Update') ORDER BY F.EvId`, evTable))
	if err != nil {
		return nil, err
	}
	var out []QualityViolation
	for _, r := range res.Rows {
		evRow := r[3:]
		appRow := evRow[nHeader:]
		if reason := test(appRow); reason != "" {
			out = append(out, QualityViolation{
				ReqID:     textOrEmpty(r[0]),
				Handler:   textOrEmpty(r[1]),
				Timestamp: uint64(r[2].AsInt()),
				TxnID:     uint64(evRow[1].AsInt()),
				Row:       evRow.Clone(),
				Reason:    reason,
			})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Timestamp < out[j].Timestamp })
	return out, nil
}

func textOrEmpty(v value.Value) string {
	if v.IsNull() {
		return ""
	}
	return v.AsText()
}

// FormatHandlerStats renders stats as an aligned table for tool output.
func FormatHandlerStats(stats []HandlerStats) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-20s %8s %8s %12s %12s\n", "handler", "reqs", "errors", "avg us", "max us")
	for _, s := range stats {
		fmt.Fprintf(&sb, "%-20s %8d %8d %12.1f %12d\n", s.Handler, s.Requests, s.Errors, s.AvgUs, s.MaxUs)
	}
	return sb.String()
}

// Expire deletes provenance older than the given logical timestamp from
// every provenance table — the retention companion to Forget. Event rows
// are matched through their transaction's execution record.
func (w *Writer) Expire(beforeLogical uint64) (int, error) {
	total := 0
	// Event tables first (they reference Executions by TxnId).
	for _, evTable := range w.tables {
		res, err := w.prov.Query(fmt.Sprintf(`SELECT F.EvId FROM %s as F, Executions as E
			ON E.TxnId = F.TxnId WHERE E.Timestamp < ?`, evTable), int64(beforeLogical))
		if err != nil {
			return total, err
		}
		for _, r := range res.Rows {
			del, err := w.prov.Exec(fmt.Sprintf(`DELETE FROM %s WHERE EvId = ?`, evTable), r[0].AsInt())
			if err != nil {
				return total, err
			}
			total += del.RowsAffected
		}
	}
	for _, stmt := range []string{
		`DELETE FROM Executions WHERE Timestamp < ?`,
		`DELETE FROM trod_requests WHERE Timestamp < ?`,
		`DELETE FROM trod_rpc_edges WHERE Timestamp < ?`,
		`DELETE FROM trod_externals WHERE Timestamp < ?`,
	} {
		res, err := w.prov.Exec(stmt, int64(beforeLogical))
		if err != nil {
			return total, err
		}
		total += res.RowsAffected
	}
	return total, nil
}
