// Package protocol defines the wire protocol spoken between trod-server and
// its clients: a length-prefixed, CRC-framed request/response exchange over
// a byte stream (TCP in production, net.Pipe in tests).
//
// Frame layout (all integers big-endian):
//
//	+----------------+----------------+=================+
//	| u32 payload len| u32 CRC32(pay) |     payload     |
//	+----------------+----------------+=================+
//
// The CRC (IEEE) covers the payload only; a mismatch means the stream is
// corrupt and the connection must be dropped — frames carry no resync
// markers. The payload is one message: a one-byte type tag followed by
// type-specific fields encoded with uvarints, length-prefixed strings, and
// the value package's row codec (the same primitives the WAL uses).
//
// The protocol is strictly request/response: the client sends one request
// frame and reads exactly one response frame. Sessions are connection-scoped
// — an interactive transaction opened with MsgBegin lives on its connection
// and dies with it.
package protocol

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/value"
)

// MsgType tags a protocol message.
type MsgType uint8

// Request messages (client -> server).
const (
	MsgPing MsgType = iota + 1
	// MsgQuery and MsgExec carry one SQL statement plus bound arguments.
	// The split mirrors db.Query/db.Exec and exists for call-site clarity;
	// the server treats both identically.
	MsgQuery
	MsgExec
	// MsgBegin opens the session's interactive transaction; MsgCommit and
	// MsgRollback close it. At most one transaction is open per session.
	MsgBegin
	MsgCommit
	MsgRollback
	// MsgStats asks for server counters (sessions, transactions, commits,
	// WAL fsyncs).
	MsgStats
)

// Response messages (server -> client).
const (
	MsgPong MsgType = iota + 64
	// MsgResult carries a query result set or a rows-affected count.
	MsgResult
	// MsgTxState acknowledges Begin (TxnID), Commit (Seq), or Rollback.
	MsgTxState
	MsgStatsResult
	MsgError
)

// ErrCode classifies a server-side failure so clients can react typedly
// (retry on conflict, back off on busy, reconnect on shutdown).
type ErrCode uint8

// Error codes.
const (
	CodeInternal ErrCode = iota + 1
	// CodeBadRequest: malformed or out-of-place message.
	CodeBadRequest
	// CodeSQL: parse/plan/execution failure of the statement itself.
	CodeSQL
	// CodeConflict: OCC serialization conflict — the transaction aborted and
	// the client should retry it from the top.
	CodeConflict
	// CodeTxnState: Begin inside an open transaction, or Commit/Rollback
	// without one.
	CodeTxnState
	// CodeTxnExpired: the interactive transaction exceeded the server's
	// transaction deadline and was rolled back.
	CodeTxnExpired
	// CodeBusy: connection limit reached and the admission queue is full (or
	// the queue wait timed out). Back off and redial.
	CodeBusy
	// CodeShutdown: the server is draining; no new work is admitted.
	CodeShutdown
)

// String names the code for error text.
func (c ErrCode) String() string {
	switch c {
	case CodeInternal:
		return "internal"
	case CodeBadRequest:
		return "bad-request"
	case CodeSQL:
		return "sql"
	case CodeConflict:
		return "conflict"
	case CodeTxnState:
		return "txn-state"
	case CodeTxnExpired:
		return "txn-expired"
	case CodeBusy:
		return "busy"
	case CodeShutdown:
		return "shutdown"
	default:
		return fmt.Sprintf("code(%d)", uint8(c))
	}
}

// ServerError is a typed failure reported by the server. Clients receive it
// from every API call that got an MsgError response.
type ServerError struct {
	Code ErrCode
	Msg  string
}

func (e *ServerError) Error() string {
	return fmt.Sprintf("trod-server: %s: %s", e.Code, e.Msg)
}

// IsCode reports whether err is a ServerError with the given code.
func IsCode(err error, code ErrCode) bool {
	var se *ServerError
	return errors.As(err, &se) && se.Code == code
}

// IsConflict reports a retryable OCC serialization conflict.
func IsConflict(err error) bool { return IsCode(err, CodeConflict) }

// IsBusy reports an admission-control rejection.
func IsBusy(err error) bool { return IsCode(err, CodeBusy) }

// IsTxnExpired reports a deadline-aborted interactive transaction.
func IsTxnExpired(err error) bool { return IsCode(err, CodeTxnExpired) }

// Stats is the MsgStatsResult payload: a snapshot of the server's gauges
// and counters, plus the WAL sync counter so load tests can verify group
// commit (Syncs < Commits) over the wire.
type Stats struct {
	ActiveSessions uint64
	ActiveTxns     uint64
	QueuedConns    uint64
	Accepted       uint64
	RejectedBusy   uint64
	Requests       uint64
	Commits        uint64
	Conflicts      uint64
	ExpiredTxns    uint64
	WALSyncs       uint64
}

// Message is one protocol message; Type selects which fields are meaningful
// (mirroring wal.Record's flat-record idiom).
type Message struct {
	Type MsgType

	// MsgQuery / MsgExec.
	SQL  string
	Args value.Row

	// MsgResult.
	Columns      []string
	Rows         []value.Row
	RowsAffected int64

	// MsgTxState.
	TxnID uint64
	Seq   uint64

	// MsgStatsResult.
	Stats Stats

	// MsgError.
	Code ErrCode
	Err  string
}

// MaxFrame is the default cap on a frame's payload size; a peer announcing
// more is treated as a corrupt stream.
const MaxFrame = 16 << 20

const frameHeader = 8 // u32 length + u32 crc

// maxResultColumns caps a result set's column count at decode; real SELECTs
// project at most a few hundred columns, and the cap keeps a crafted count
// from amplifying one payload byte into a string header each.
const maxResultColumns = 1 << 16

var crcTable = crc32.MakeTable(crc32.IEEE)

// ErrFrameCorrupt reports a CRC mismatch or an impossible frame length; the
// connection is unusable afterwards.
var ErrFrameCorrupt = errors.New("protocol: corrupt frame")

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func readString(src []byte, off int) (string, int, error) {
	n, used := binary.Uvarint(src[off:])
	if used <= 0 {
		return "", 0, fmt.Errorf("protocol: bad string header")
	}
	off += used
	// Compare in uint64 space: a crafted length near 2^64 must not wrap the
	// int bound check into a panic (frames come from untrusted peers).
	if n > uint64(len(src)-off) {
		return "", 0, fmt.Errorf("protocol: truncated string")
	}
	return string(src[off : off+int(n)]), off + int(n), nil
}

func readUvarint(src []byte, off int) (uint64, int, error) {
	v, used := binary.Uvarint(src[off:])
	if used <= 0 {
		return 0, 0, fmt.Errorf("protocol: bad uvarint")
	}
	return v, off + used, nil
}

// EncodeMessage appends m's payload encoding (type byte + fields) to dst.
func EncodeMessage(dst []byte, m *Message) []byte {
	dst = append(dst, byte(m.Type))
	switch m.Type {
	case MsgQuery, MsgExec:
		dst = appendString(dst, m.SQL)
		dst = value.EncodeRow(dst, m.Args)
	case MsgResult:
		dst = binary.AppendUvarint(dst, uint64(len(m.Columns)))
		for _, c := range m.Columns {
			dst = appendString(dst, c)
		}
		dst = binary.AppendUvarint(dst, uint64(len(m.Rows)))
		for _, r := range m.Rows {
			dst = value.EncodeRow(dst, r)
		}
		dst = binary.AppendUvarint(dst, uint64(m.RowsAffected))
	case MsgTxState:
		dst = binary.AppendUvarint(dst, m.TxnID)
		dst = binary.AppendUvarint(dst, m.Seq)
	case MsgStatsResult:
		for _, v := range m.Stats.fields() {
			dst = binary.AppendUvarint(dst, *v)
		}
	case MsgError:
		dst = append(dst, byte(m.Code))
		dst = appendString(dst, m.Err)
	}
	return dst
}

// fields lists the stats counters in wire order; encode and decode share it
// so the two cannot drift.
func (s *Stats) fields() []*uint64 {
	return []*uint64{
		&s.ActiveSessions, &s.ActiveTxns, &s.QueuedConns, &s.Accepted,
		&s.RejectedBusy, &s.Requests, &s.Commits, &s.Conflicts,
		&s.ExpiredTxns, &s.WALSyncs,
	}
}

// DecodeMessage parses one payload produced by EncodeMessage.
func DecodeMessage(payload []byte) (*Message, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("protocol: empty payload")
	}
	m := &Message{Type: MsgType(payload[0])}
	off := 1
	var err error
	switch m.Type {
	case MsgPing, MsgPong, MsgBegin, MsgCommit, MsgRollback, MsgStats:
	case MsgQuery, MsgExec:
		if m.SQL, off, err = readString(payload, off); err != nil {
			return nil, err
		}
		var used int
		if m.Args, used, err = value.DecodeRow(payload[off:]); err != nil {
			return nil, fmt.Errorf("protocol: args: %w", err)
		}
		off += used
	case MsgResult:
		var n uint64
		if n, off, err = readUvarint(payload, off); err != nil {
			return nil, err
		}
		// Counts are attacker-controlled; every column/row costs at least
		// one payload byte, so a count beyond the remaining bytes is corrupt
		// — reject it before allocating anything proportional to it. The
		// absolute cap bounds the per-entry allocation amplification (a
		// one-byte claimed column materializes a 16-byte string header).
		if n > uint64(len(payload)-off) || n > maxResultColumns {
			return nil, fmt.Errorf("protocol: column count %d exceeds payload or limit", n)
		}
		m.Columns = make([]string, n)
		for i := range m.Columns {
			if m.Columns[i], off, err = readString(payload, off); err != nil {
				return nil, err
			}
		}
		if n, off, err = readUvarint(payload, off); err != nil {
			return nil, err
		}
		if n > uint64(len(payload)-off) {
			return nil, fmt.Errorf("protocol: row count %d exceeds payload", n)
		}
		m.Rows = make([]value.Row, 0, n)
		for i := uint64(0); i < n; i++ {
			row, used, err := value.DecodeRow(payload[off:])
			if err != nil {
				return nil, fmt.Errorf("protocol: row %d: %w", i, err)
			}
			m.Rows = append(m.Rows, row)
			off += used
		}
		var ra uint64
		if ra, off, err = readUvarint(payload, off); err != nil {
			return nil, err
		}
		m.RowsAffected = int64(ra)
	case MsgTxState:
		if m.TxnID, off, err = readUvarint(payload, off); err != nil {
			return nil, err
		}
		if m.Seq, off, err = readUvarint(payload, off); err != nil {
			return nil, err
		}
	case MsgStatsResult:
		for _, v := range m.Stats.fields() {
			if *v, off, err = readUvarint(payload, off); err != nil {
				return nil, err
			}
		}
	case MsgError:
		if off >= len(payload) {
			return nil, fmt.Errorf("protocol: truncated error")
		}
		m.Code = ErrCode(payload[off])
		off++
		if m.Err, off, err = readString(payload, off); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("protocol: unknown message type 0x%02x", payload[0])
	}
	_ = off
	return m, nil
}

// ErrFrameTooLarge reports a message whose encoding exceeds MaxFrame; it is
// returned before any bytes are written, so the stream stays usable and the
// sender can answer with a typed error instead.
var ErrFrameTooLarge = errors.New("protocol: message exceeds the frame size cap")

// WriteMessage frames and writes one message.
func WriteMessage(w io.Writer, m *Message) error {
	payload := EncodeMessage(make([]byte, 0, 64), m)
	if len(payload) > MaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [frameHeader]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadMessage reads and verifies one frame, then decodes its message.
// maxFrame <= 0 applies the MaxFrame default. io.EOF at a frame boundary is
// returned as-is (clean disconnect); a partial frame is ErrUnexpectedEOF.
func ReadMessage(r io.Reader, maxFrame int) (*Message, error) {
	if maxFrame <= 0 {
		maxFrame = MaxFrame
	}
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return nil, err // clean EOF between frames stays io.EOF
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[0:4])
	if n == 0 || n > uint32(maxFrame) {
		return nil, fmt.Errorf("%w: payload length %d", ErrFrameCorrupt, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	if crc32.Checksum(payload, crcTable) != binary.BigEndian.Uint32(hdr[4:8]) {
		return nil, fmt.Errorf("%w: CRC mismatch", ErrFrameCorrupt)
	}
	return DecodeMessage(payload)
}
