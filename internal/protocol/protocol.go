// Package protocol defines the wire protocol spoken between trod-server and
// its clients: a length-prefixed, CRC-framed request/response exchange over
// a byte stream (TCP in production, net.Pipe in tests).
//
// Frame layout (all integers big-endian):
//
//	+----------------+----------------+=================+
//	| u32 payload len| u32 CRC32(pay) |     payload     |
//	+----------------+----------------+=================+
//
// The CRC (IEEE) covers the payload only; a mismatch means the stream is
// corrupt and the connection must be dropped — frames carry no resync
// markers. The payload is one message: a one-byte type tag followed by
// type-specific fields encoded with uvarints, length-prefixed strings, and
// the value package's row codec (the same primitives the WAL uses).
//
// The protocol is strictly request/response: the client sends one request
// frame and reads exactly one response frame. Sessions are connection-scoped
// — an interactive transaction opened with MsgBegin lives on its connection
// and dies with it.
package protocol

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/storage"
	"repro/internal/value"
	"repro/internal/wal"
)

// MsgType tags a protocol message.
type MsgType uint8

// Request messages (client -> server).
const (
	MsgPing MsgType = iota + 1
	// MsgQuery and MsgExec carry one SQL statement plus bound arguments.
	// The split mirrors db.Query/db.Exec and exists for call-site clarity;
	// the server treats both identically.
	MsgQuery
	MsgExec
	// MsgBegin opens the session's interactive transaction; MsgCommit and
	// MsgRollback close it. At most one transaction is open per session.
	MsgBegin
	MsgCommit
	MsgRollback
	// MsgStats asks for server counters (sessions, transactions, commits,
	// WAL fsyncs).
	MsgStats
	// MsgSubscribe turns the session into a replication subscriber: the
	// server streams MsgSnapshotChunk (when bootstrapping) and MsgLogBatch
	// frames from FromSeq onward until the connection closes. With Bootstrap
	// set, FromSeq is ignored and the server ships a full snapshot first.
	MsgSubscribe
	// MsgPromote asks a replica server to promote itself to a writable
	// primary at the next epoch (Epoch 0 lets the server pick current+1).
	// Answered with MsgPromoted or a typed error.
	MsgPromote
	// MsgAck flows client->server on an established Subscribe stream: the
	// subscriber confirms it has applied every commit up to Seq under Epoch.
	// Acks feed the primary's quorum watermark and per-subscriber lag stats.
	MsgAck
)

// Response messages (server -> client).
const (
	MsgPong MsgType = iota + 64
	// MsgResult carries a query result set or a rows-affected count.
	MsgResult
	// MsgTxState acknowledges Begin (TxnID), Commit (Seq), or Rollback.
	MsgTxState
	MsgStatsResult
	MsgError
	// MsgLogBatch carries replication stream entries (committed CDC records
	// and DDL statements in commit order) plus the primary's current commit
	// sequence; an empty batch is a heartbeat carrying only PrimarySeq.
	MsgLogBatch
	// MsgSnapshotChunk carries one piece of a bootstrap snapshot (the
	// compressed EncodeSnapshot image); Last marks the final chunk and Seq
	// the commit sequence the snapshot captures.
	MsgSnapshotChunk
	// MsgPromoted acknowledges MsgPromote: Epoch is the new epoch the server
	// now serves writes under, Seq the promotion point (its applied commit
	// sequence — the new timeline's divergence point).
	MsgPromoted
)

// ErrCode classifies a server-side failure so clients can react typedly
// (retry on conflict, back off on busy, reconnect on shutdown).
type ErrCode uint8

// Error codes.
const (
	CodeInternal ErrCode = iota + 1
	// CodeBadRequest: malformed or out-of-place message.
	CodeBadRequest
	// CodeSQL: parse/plan/execution failure of the statement itself.
	CodeSQL
	// CodeConflict: OCC serialization conflict — the transaction aborted and
	// the client should retry it from the top.
	CodeConflict
	// CodeTxnState: Begin inside an open transaction, or Commit/Rollback
	// without one.
	CodeTxnState
	// CodeTxnExpired: the interactive transaction exceeded the server's
	// transaction deadline and was rolled back.
	CodeTxnExpired
	// CodeBusy: connection limit reached and the admission queue is full (or
	// the queue wait timed out). Back off and redial.
	CodeBusy
	// CodeShutdown: the server is draining; no new work is admitted.
	CodeShutdown
	// CodeReadOnly: a write or DDL statement reached a read-only replica;
	// route it to the primary.
	CodeReadOnly
	// CodeLogTruncated: the requested replication position is no longer in
	// the primary's retained log window (or predates what the primary can
	// prove it shipped); the subscriber must re-bootstrap from a snapshot.
	CodeLogTruncated
	// CodeFenced: this node's replication epoch is stale — a newer primary
	// has been promoted. A fenced node can neither ack writes nor feed
	// subscribers; clients must re-discover the current primary.
	CodeFenced
	// CodeQuorumUnavailable: the commit applied locally but was not
	// acknowledged by the configured replica quorum within the timeout. The
	// commit's fate on the surviving timeline is unknown until the cluster
	// heals; clients must not assume it is durable.
	CodeQuorumUnavailable
	// CodeReadOnlyTxn: a write statement ran inside a read-only snapshot
	// transaction (a declared read-only transaction or a time-travel
	// transaction at a historical snapshot). Unlike CodeReadOnly — the whole
	// node rejects writes — this is a property of the transaction: retry the
	// write in a normal read-write transaction.
	CodeReadOnlyTxn
)

// String names the code for error text.
func (c ErrCode) String() string {
	switch c {
	case CodeInternal:
		return "internal"
	case CodeBadRequest:
		return "bad-request"
	case CodeSQL:
		return "sql"
	case CodeConflict:
		return "conflict"
	case CodeTxnState:
		return "txn-state"
	case CodeTxnExpired:
		return "txn-expired"
	case CodeBusy:
		return "busy"
	case CodeShutdown:
		return "shutdown"
	case CodeReadOnly:
		return "read-only"
	case CodeLogTruncated:
		return "log-truncated"
	case CodeFenced:
		return "fenced"
	case CodeQuorumUnavailable:
		return "quorum-unavailable"
	case CodeReadOnlyTxn:
		return "read-only-txn"
	default:
		return fmt.Sprintf("code(%d)", uint8(c))
	}
}

// ServerError is a typed failure reported by the server. Clients receive it
// from every API call that got an MsgError response.
type ServerError struct {
	Code ErrCode
	Msg  string
}

func (e *ServerError) Error() string {
	return fmt.Sprintf("trod-server: %s: %s", e.Code, e.Msg)
}

// IsCode reports whether err is a ServerError with the given code.
func IsCode(err error, code ErrCode) bool {
	var se *ServerError
	return errors.As(err, &se) && se.Code == code
}

// IsConflict reports a retryable OCC serialization conflict.
func IsConflict(err error) bool { return IsCode(err, CodeConflict) }

// IsBusy reports an admission-control rejection.
func IsBusy(err error) bool { return IsCode(err, CodeBusy) }

// IsTxnExpired reports a deadline-aborted interactive transaction.
func IsTxnExpired(err error) bool { return IsCode(err, CodeTxnExpired) }

// IsReadOnly reports a write rejected by a read-only replica.
func IsReadOnly(err error) bool { return IsCode(err, CodeReadOnly) }

// IsLogTruncated reports a replication position outside the primary's
// retained log window.
func IsLogTruncated(err error) bool { return IsCode(err, CodeLogTruncated) }

// IsFenced reports a request rejected by a node whose replication epoch is
// stale (a newer primary exists).
func IsFenced(err error) bool { return IsCode(err, CodeFenced) }

// IsQuorumUnavailable reports a commit that could not gather replica-quorum
// acknowledgement in time.
func IsQuorumUnavailable(err error) bool { return IsCode(err, CodeQuorumUnavailable) }

// IsReadOnlyTxn reports a write attempted inside a read-only snapshot
// transaction (declared read-only, or time travel at a historical snapshot).
func IsReadOnlyTxn(err error) bool { return IsCode(err, CodeReadOnlyTxn) }

// Stats is the MsgStatsResult payload: a snapshot of the server's gauges
// and counters, plus the WAL sync counter so load tests can verify group
// commit (Syncs < Commits) over the wire.
type Stats struct {
	ActiveSessions uint64
	ActiveTxns     uint64
	QueuedConns    uint64
	Accepted       uint64
	RejectedBusy   uint64
	Requests       uint64
	Commits        uint64
	Conflicts      uint64
	ExpiredTxns    uint64
	WALSyncs       uint64

	// Plan-cache effectiveness of the backing database (operator view of
	// db.PlanCacheStats over the wire).
	PlanCacheHits   uint64
	PlanCacheMisses uint64

	// Replication. Subscribers counts live replication streams served (a
	// primary's view). IsReplica is 1 when the server is a read-only
	// replica; AppliedSeq/PrimarySeq are then the replica's applied commit
	// sequence and the newest primary sequence it has heard of — their
	// difference is the replication lag in commits — and ReplConnected is 1
	// while the replica's subscription to its primary is live.
	Subscribers   uint64
	IsReplica     uint64
	AppliedSeq    uint64
	PrimarySeq    uint64
	ReplConnected uint64

	// Failover. Epoch is the node's replication epoch (bumped by every
	// promotion); Fenced is 1 when the node has observed a higher epoch and
	// refuses writes and subscribers.
	Epoch  uint64
	Fenced uint64

	// MVCC garbage collection and residency. VacuumRuns/VacuumDropped count
	// vacuum activity (dropped = row and index versions compacted out of
	// chains); HistoryFloor is the oldest snapshot still answerable by time
	// travel; ResidentVersions and MaxChainLength describe current row
	// version residency (census taken when stats are requested).
	VacuumRuns       uint64
	VacuumDropped    uint64
	HistoryFloor     uint64
	ResidentVersions uint64
	MaxChainLength   uint64

	// Engine-level commit accounting (db.CommitStats): unlike the server's
	// Commits/Conflicts these count every OCC validation outcome — internal
	// writers and autocommit retries included — so DBConflicts/DBCommits is
	// the true conflict rate under a hot-key storm. Checkpoints counts
	// completed checkpoint runs; QuorumStalls counts commits whose replica
	// quorum ack timed out.
	DBCommits    uint64
	DBConflicts  uint64
	Checkpoints  uint64
	QuorumStalls uint64

	// Tracer counters: provenance events captured, events dropped at a full
	// ring buffer, and batches flushed to the provenance database.
	TracerEvents  uint64
	TracerDrops   uint64
	TracerFlushes uint64

	// SubscriberLags describes each live replication stream the node serves
	// (a primary's per-subscriber view); empty on replicas and on primaries
	// with no subscribers.
	SubscriberLags []SubscriberLag
}

// SubscriberLag is one subscriber's replication progress as seen by the
// primary: the newest commit sequence it acknowledged, how many commits it
// trails the primary's head by, and how long ago it last acked (heartbeat
// acks keep this fresh on an idle stream).
type SubscriberLag struct {
	AckedSeq     uint64
	LagSeqs      uint64
	LastAckAgeMs uint64
}

// Lag returns the replication lag in commit sequences (0 on a primary or a
// fully caught-up replica).
func (s *Stats) Lag() uint64 {
	if s.PrimarySeq > s.AppliedSeq {
		return s.PrimarySeq - s.AppliedSeq
	}
	return 0
}

// Message is one protocol message; Type selects which fields are meaningful
// (mirroring wal.Record's flat-record idiom).
type Message struct {
	Type MsgType

	// MsgQuery / MsgExec.
	SQL  string
	Args value.Row

	// MsgResult.
	Columns      []string
	Rows         []value.Row
	RowsAffected int64

	// MsgTxState.
	TxnID uint64
	Seq   uint64

	// MsgStatsResult.
	Stats Stats

	// MsgError.
	Code ErrCode
	Err  string

	// MsgSubscribe. FromSeq is the subscriber's applied commit sequence;
	// Bootstrap requests a full snapshot instead of log catch-up.
	FromSeq   uint64
	Bootstrap bool

	// MsgLogBatch. PrimarySeq is the primary's commit sequence when the
	// batch was cut (heartbeats carry it with no entries).
	Entries    []LogEntry
	PrimarySeq uint64

	// MsgSnapshotChunk. Data is one piece of the compressed snapshot image;
	// Last marks the final chunk, whose Seq field (shared with MsgTxState)
	// carries the snapshot's commit sequence.
	Data []byte
	Last bool

	// Epoch is the replication epoch of the history a frame belongs to.
	// Carried by MsgSubscribe (the subscriber's epoch), MsgLogBatch and
	// MsgSnapshotChunk (the source's epoch), MsgAck (the acker's epoch),
	// MsgPromote (the requested epoch; 0 = current+1), and MsgPromoted (the
	// granted epoch). Receivers reject frames from a stale epoch with a
	// typed fenced error.
	Epoch uint64

	// TraceID/ParentSpan are the request's trace context (MsgQuery,
	// MsgExec, MsgBegin, MsgCommit, MsgRollback). They ride as trailing
	// fields appended only when TraceID is nonzero: an untraced request is
	// byte-identical to the pre-tracing encoding, and old decoders ignore
	// trailing bytes, so tracing-unaware peers interoperate in both
	// directions. ParentSpan is the sender's span ID the server-side tree
	// hangs under.
	TraceID    uint64
	ParentSpan uint64
}

// LogEntry is one replication stream element: either a committed CDC record
// or a DDL statement, in the primary's serialization order. Exactly one of
// the two is meaningful; DDL entries have a non-empty DDL string.
type LogEntry struct {
	DDL    string
	Commit storage.CommitRecord

	// EncodedCommit is an encode-side fast path: when non-nil it must be
	// wal.EncodeCommit(nil, Commit), and EncodeMessage writes it verbatim
	// instead of re-serializing the record. The replication source fills it
	// while sizing batches, so each commit is serialized once per
	// subscriber, not twice. Never set by DecodeMessage.
	EncodedCommit []byte

	// TraceID, when nonzero, is the trace of the request that produced
	// this commit; the entry is shipped with the traced entry kind and the
	// replica tags its apply spans with it, correlating replica-side work
	// back to the originating request.
	TraceID uint64
}

// IsDDL reports whether the entry carries a DDL statement.
func (e *LogEntry) IsDDL() bool { return e.DDL != "" }

// MaxFrame is the default cap on a frame's payload size; a peer announcing
// more is treated as a corrupt stream.
const MaxFrame = 16 << 20

// MaxReplFrame is the frame cap on replication streams, sized so a single
// large committed transaction (one CommitRecord is never split across
// frames — replicas apply it atomically) still fits. Subscribers read with
// this limit; snapshot bootstraps are chunked and never need it.
const MaxReplFrame = 64 << 20

const frameHeader = 8 // u32 length + u32 crc

// maxResultColumns caps a result set's column count at decode; real SELECTs
// project at most a few hundred columns, and the cap keeps a crafted count
// from amplifying one payload byte into a string header each.
const maxResultColumns = 1 << 16

var crcTable = crc32.MakeTable(crc32.IEEE)

// ErrFrameCorrupt reports a CRC mismatch or an impossible frame length; the
// connection is unusable afterwards.
var ErrFrameCorrupt = errors.New("protocol: corrupt frame")

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func readString(src []byte, off int) (string, int, error) {
	n, used := binary.Uvarint(src[off:])
	if used <= 0 {
		return "", 0, fmt.Errorf("protocol: bad string header")
	}
	off += used
	// Compare in uint64 space: a crafted length near 2^64 must not wrap the
	// int bound check into a panic (frames come from untrusted peers).
	if n > uint64(len(src)-off) {
		return "", 0, fmt.Errorf("protocol: truncated string")
	}
	return string(src[off : off+int(n)]), off + int(n), nil
}

func readUvarint(src []byte, off int) (uint64, int, error) {
	v, used := binary.Uvarint(src[off:])
	if used <= 0 {
		return 0, 0, fmt.Errorf("protocol: bad uvarint")
	}
	return v, off + used, nil
}

func appendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// readBytes returns a sub-slice of src (no copy); callers that retain the
// bytes past the payload's lifetime must copy.
func readBytes(src []byte, off int) ([]byte, int, error) {
	n, used := binary.Uvarint(src[off:])
	if used <= 0 {
		return nil, 0, fmt.Errorf("protocol: bad bytes header")
	}
	off += used
	if n > uint64(len(src)-off) {
		return nil, 0, fmt.Errorf("protocol: truncated bytes")
	}
	return src[off : off+int(n)], off + int(n), nil
}

func appendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

func readBool(src []byte, off int) (bool, int, error) {
	if off >= len(src) {
		return false, 0, fmt.Errorf("protocol: truncated bool")
	}
	return src[off] == 1, off + 1, nil
}

// EncodeMessage appends m's payload encoding (type byte + fields) to dst.
func EncodeMessage(dst []byte, m *Message) []byte {
	dst = append(dst, byte(m.Type))
	switch m.Type {
	case MsgQuery, MsgExec:
		dst = appendString(dst, m.SQL)
		dst = value.EncodeRow(dst, m.Args)
		dst = appendTraceContext(dst, m)
	case MsgBegin, MsgCommit, MsgRollback:
		dst = appendTraceContext(dst, m)
	case MsgResult:
		dst = binary.AppendUvarint(dst, uint64(len(m.Columns)))
		for _, c := range m.Columns {
			dst = appendString(dst, c)
		}
		dst = binary.AppendUvarint(dst, uint64(len(m.Rows)))
		for _, r := range m.Rows {
			dst = value.EncodeRow(dst, r)
		}
		dst = binary.AppendUvarint(dst, uint64(m.RowsAffected))
	case MsgTxState:
		dst = binary.AppendUvarint(dst, m.TxnID)
		dst = binary.AppendUvarint(dst, m.Seq)
	case MsgStatsResult:
		for _, v := range m.Stats.fields() {
			dst = binary.AppendUvarint(dst, *v)
		}
		dst = binary.AppendUvarint(dst, uint64(len(m.Stats.SubscriberLags)))
		for _, l := range m.Stats.SubscriberLags {
			dst = binary.AppendUvarint(dst, l.AckedSeq)
			dst = binary.AppendUvarint(dst, l.LagSeqs)
			dst = binary.AppendUvarint(dst, l.LastAckAgeMs)
		}
	case MsgError:
		dst = append(dst, byte(m.Code))
		dst = appendString(dst, m.Err)
	case MsgSubscribe:
		dst = binary.AppendUvarint(dst, m.FromSeq)
		dst = appendBool(dst, m.Bootstrap)
		dst = binary.AppendUvarint(dst, m.Epoch)
	case MsgAck:
		dst = binary.AppendUvarint(dst, m.Seq)
		dst = binary.AppendUvarint(dst, m.Epoch)
	case MsgPromote:
		dst = binary.AppendUvarint(dst, m.Epoch)
	case MsgPromoted:
		dst = binary.AppendUvarint(dst, m.Epoch)
		dst = binary.AppendUvarint(dst, m.Seq)
	case MsgLogBatch:
		dst = binary.AppendUvarint(dst, uint64(len(m.Entries)))
		for i := range m.Entries {
			e := &m.Entries[i]
			switch {
			case e.IsDDL():
				dst = append(dst, entryDDL)
				dst = appendString(dst, e.DDL)
			case e.TraceID != 0:
				dst = append(dst, entryCommitTraced)
				dst = binary.AppendUvarint(dst, e.TraceID)
				if e.EncodedCommit != nil {
					dst = appendBytes(dst, e.EncodedCommit)
				} else {
					dst = appendBytes(dst, wal.EncodeCommit(nil, e.Commit))
				}
			default:
				dst = append(dst, entryCommit)
				if e.EncodedCommit != nil {
					dst = appendBytes(dst, e.EncodedCommit)
				} else {
					dst = appendBytes(dst, wal.EncodeCommit(nil, e.Commit))
				}
			}
		}
		dst = binary.AppendUvarint(dst, m.PrimarySeq)
		dst = binary.AppendUvarint(dst, m.Epoch)
	case MsgSnapshotChunk:
		dst = appendBytes(dst, m.Data)
		dst = binary.AppendUvarint(dst, m.Seq)
		dst = appendBool(dst, m.Last)
		dst = binary.AppendUvarint(dst, m.Epoch)
	}
	return dst
}

// Log-batch entry kinds.
const (
	entryCommit = 0
	entryDDL    = 1
	// entryCommitTraced is a commit entry prefixed with the originating
	// request's trace ID; sources emit it only for commits whose trace is
	// being recorded, so untraced streams are byte-identical to before.
	entryCommitTraced = 2
)

// appendTraceContext appends the optional trailing trace context. Nothing
// is written for an untraced message — zero bytes on the wire — and
// decodeTraceContext reads the fields back only if the payload has bytes
// left, so tracing-unaware peers interoperate unchanged.
func appendTraceContext(dst []byte, m *Message) []byte {
	if m.TraceID == 0 {
		return dst
	}
	dst = binary.AppendUvarint(dst, m.TraceID)
	return binary.AppendUvarint(dst, m.ParentSpan)
}

// decodeTraceContext probes for the trailing trace context on a request
// payload. A missing ParentSpan after a present TraceID is corrupt: the two
// are always written together.
func decodeTraceContext(m *Message, payload []byte, off int) (int, error) {
	if off >= len(payload) {
		return off, nil
	}
	var err error
	if m.TraceID, off, err = readUvarint(payload, off); err != nil {
		return 0, err
	}
	if m.ParentSpan, off, err = readUvarint(payload, off); err != nil {
		return 0, err
	}
	return off, nil
}

// preallocCap bounds a decode-side slice preallocation derived from an
// attacker-controlled count: real counts still come out in one allocation,
// crafted ones grow via append and fail on the first short element.
func preallocCap(n, max uint64) uint64 {
	if n > max {
		return max
	}
	return n
}

// fields lists the stats counters in wire order; encode and decode share it
// so the two cannot drift.
func (s *Stats) fields() []*uint64 {
	return []*uint64{
		&s.ActiveSessions, &s.ActiveTxns, &s.QueuedConns, &s.Accepted,
		&s.RejectedBusy, &s.Requests, &s.Commits, &s.Conflicts,
		&s.ExpiredTxns, &s.WALSyncs,
		&s.PlanCacheHits, &s.PlanCacheMisses,
		&s.Subscribers, &s.IsReplica, &s.AppliedSeq, &s.PrimarySeq,
		&s.ReplConnected,
		&s.Epoch, &s.Fenced,
		&s.VacuumRuns, &s.VacuumDropped, &s.HistoryFloor,
		&s.ResidentVersions, &s.MaxChainLength,
		&s.DBCommits, &s.DBConflicts, &s.Checkpoints, &s.QuorumStalls,
		&s.TracerEvents, &s.TracerDrops, &s.TracerFlushes,
	}
}

// DecodeMessage parses one payload produced by EncodeMessage.
func DecodeMessage(payload []byte) (*Message, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("protocol: empty payload")
	}
	m := &Message{Type: MsgType(payload[0])}
	off := 1
	var err error
	switch m.Type {
	case MsgPing, MsgPong, MsgStats:
	case MsgBegin, MsgCommit, MsgRollback:
		if off, err = decodeTraceContext(m, payload, off); err != nil {
			return nil, err
		}
	case MsgQuery, MsgExec:
		if m.SQL, off, err = readString(payload, off); err != nil {
			return nil, err
		}
		var used int
		if m.Args, used, err = value.DecodeRow(payload[off:]); err != nil {
			return nil, fmt.Errorf("protocol: args: %w", err)
		}
		off += used
		if off, err = decodeTraceContext(m, payload, off); err != nil {
			return nil, err
		}
	case MsgResult:
		var n uint64
		if n, off, err = readUvarint(payload, off); err != nil {
			return nil, err
		}
		// Counts are attacker-controlled; every column/row costs at least
		// one payload byte, so a count beyond the remaining bytes is corrupt
		// — reject it before allocating anything proportional to it. The
		// absolute cap bounds the per-entry allocation amplification (a
		// one-byte claimed column materializes a 16-byte string header).
		if n > uint64(len(payload)-off) || n > maxResultColumns {
			return nil, fmt.Errorf("protocol: column count %d exceeds payload or limit", n)
		}
		m.Columns = make([]string, n)
		for i := range m.Columns {
			if m.Columns[i], off, err = readString(payload, off); err != nil {
				return nil, err
			}
		}
		if n, off, err = readUvarint(payload, off); err != nil {
			return nil, err
		}
		if n > uint64(len(payload)-off) {
			return nil, fmt.Errorf("protocol: row count %d exceeds payload", n)
		}
		// Cap the preallocation: a row header is ~24x the one-byte wire
		// minimum, so a crafted count that fits the byte check could still
		// amplify a frame into hundreds of megabytes of slice capacity.
		m.Rows = make([]value.Row, 0, preallocCap(n, 4096))
		for i := uint64(0); i < n; i++ {
			row, used, err := value.DecodeRow(payload[off:])
			if err != nil {
				return nil, fmt.Errorf("protocol: row %d: %w", i, err)
			}
			m.Rows = append(m.Rows, row)
			off += used
		}
		var ra uint64
		if ra, off, err = readUvarint(payload, off); err != nil {
			return nil, err
		}
		m.RowsAffected = int64(ra)
	case MsgTxState:
		if m.TxnID, off, err = readUvarint(payload, off); err != nil {
			return nil, err
		}
		if m.Seq, off, err = readUvarint(payload, off); err != nil {
			return nil, err
		}
	case MsgStatsResult:
		for _, v := range m.Stats.fields() {
			if *v, off, err = readUvarint(payload, off); err != nil {
				return nil, err
			}
		}
		var n uint64
		if n, off, err = readUvarint(payload, off); err != nil {
			return nil, err
		}
		// Every subscriber entry costs at least three payload bytes; reject
		// counts the remaining bytes cannot hold before allocating for them
		// (same uint64-space hardening as MsgResult/MsgLogBatch counts).
		if n > uint64(len(payload)-off)/3 {
			return nil, fmt.Errorf("protocol: subscriber count %d exceeds payload", n)
		}
		m.Stats.SubscriberLags = make([]SubscriberLag, 0, preallocCap(n, 4096))
		for i := uint64(0); i < n; i++ {
			var l SubscriberLag
			if l.AckedSeq, off, err = readUvarint(payload, off); err != nil {
				return nil, err
			}
			if l.LagSeqs, off, err = readUvarint(payload, off); err != nil {
				return nil, err
			}
			if l.LastAckAgeMs, off, err = readUvarint(payload, off); err != nil {
				return nil, err
			}
			m.Stats.SubscriberLags = append(m.Stats.SubscriberLags, l)
		}
	case MsgError:
		if off >= len(payload) {
			return nil, fmt.Errorf("protocol: truncated error")
		}
		m.Code = ErrCode(payload[off])
		off++
		if m.Err, off, err = readString(payload, off); err != nil {
			return nil, err
		}
	case MsgSubscribe:
		if m.FromSeq, off, err = readUvarint(payload, off); err != nil {
			return nil, err
		}
		if m.Bootstrap, off, err = readBool(payload, off); err != nil {
			return nil, err
		}
		if m.Epoch, off, err = readUvarint(payload, off); err != nil {
			return nil, err
		}
	case MsgAck:
		if m.Seq, off, err = readUvarint(payload, off); err != nil {
			return nil, err
		}
		if m.Epoch, off, err = readUvarint(payload, off); err != nil {
			return nil, err
		}
	case MsgPromote:
		if m.Epoch, off, err = readUvarint(payload, off); err != nil {
			return nil, err
		}
	case MsgPromoted:
		if m.Epoch, off, err = readUvarint(payload, off); err != nil {
			return nil, err
		}
		if m.Seq, off, err = readUvarint(payload, off); err != nil {
			return nil, err
		}
	case MsgLogBatch:
		var n uint64
		if n, off, err = readUvarint(payload, off); err != nil {
			return nil, err
		}
		// Every entry costs at least two payload bytes; reject counts the
		// remaining bytes cannot hold before allocating for them. The
		// preallocation is additionally capped: entry structs are ~28x the
		// two-byte wire minimum, so a crafted count that passes the byte
		// check could still amplify one frame into gigabytes of capacity.
		if n > uint64(len(payload)-off)/2 {
			return nil, fmt.Errorf("protocol: entry count %d exceeds payload", n)
		}
		m.Entries = make([]LogEntry, 0, preallocCap(n, 4096))
		for i := uint64(0); i < n; i++ {
			if off >= len(payload) {
				return nil, fmt.Errorf("protocol: truncated entry %d", i)
			}
			kind := payload[off]
			off++
			var e LogEntry
			switch kind {
			case entryDDL:
				if e.DDL, off, err = readString(payload, off); err != nil {
					return nil, err
				}
				if e.DDL == "" {
					return nil, fmt.Errorf("protocol: empty DDL entry")
				}
			case entryCommit, entryCommitTraced:
				if kind == entryCommitTraced {
					if e.TraceID, off, err = readUvarint(payload, off); err != nil {
						return nil, err
					}
					if e.TraceID == 0 {
						return nil, fmt.Errorf("protocol: traced entry %d with zero trace ID", i)
					}
				}
				var body []byte
				if body, off, err = readBytes(payload, off); err != nil {
					return nil, err
				}
				if e.Commit, err = wal.DecodeCommit(body); err != nil {
					return nil, fmt.Errorf("protocol: entry %d: %w", i, err)
				}
			default:
				return nil, fmt.Errorf("protocol: unknown log entry kind %d", kind)
			}
			m.Entries = append(m.Entries, e)
		}
		if m.PrimarySeq, off, err = readUvarint(payload, off); err != nil {
			return nil, err
		}
		if m.Epoch, off, err = readUvarint(payload, off); err != nil {
			return nil, err
		}
	case MsgSnapshotChunk:
		var body []byte
		if body, off, err = readBytes(payload, off); err != nil {
			return nil, err
		}
		m.Data = append([]byte(nil), body...)
		if m.Seq, off, err = readUvarint(payload, off); err != nil {
			return nil, err
		}
		if m.Last, off, err = readBool(payload, off); err != nil {
			return nil, err
		}
		if m.Epoch, off, err = readUvarint(payload, off); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("protocol: unknown message type 0x%02x", payload[0])
	}
	_ = off
	return m, nil
}

// ErrFrameTooLarge reports a message whose encoding exceeds MaxFrame; it is
// returned before any bytes are written, so the stream stays usable and the
// sender can answer with a typed error instead.
var ErrFrameTooLarge = errors.New("protocol: message exceeds the frame size cap")

// WriteMessage frames and writes one message.
func WriteMessage(w io.Writer, m *Message) error {
	return WriteMessageLimit(w, m, MaxFrame)
}

// WriteMessageLimit is WriteMessage with an explicit frame cap (replication
// streams use MaxReplFrame; both peers must agree on the limit).
func WriteMessageLimit(w io.Writer, m *Message, maxFrame int) error {
	payload := EncodeMessage(make([]byte, 0, 64), m)
	if len(payload) > maxFrame {
		return ErrFrameTooLarge
	}
	var hdr [frameHeader]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadMessage reads and verifies one frame, then decodes its message.
// maxFrame <= 0 applies the MaxFrame default. io.EOF at a frame boundary is
// returned as-is (clean disconnect); a partial frame is ErrUnexpectedEOF.
func ReadMessage(r io.Reader, maxFrame int) (*Message, error) {
	if maxFrame <= 0 {
		maxFrame = MaxFrame
	}
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return nil, err // clean EOF between frames stays io.EOF
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[0:4])
	if n == 0 || n > uint32(maxFrame) {
		return nil, fmt.Errorf("%w: payload length %d", ErrFrameCorrupt, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	if crc32.Checksum(payload, crcTable) != binary.BigEndian.Uint32(hdr[4:8]) {
		return nil, fmt.Errorf("%w: CRC mismatch", ErrFrameCorrupt)
	}
	return DecodeMessage(payload)
}
