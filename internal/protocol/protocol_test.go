package protocol

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"reflect"
	"testing"

	"repro/internal/storage"
	"repro/internal/value"
)

func roundtrip(t *testing.T, m *Message) *Message {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteMessage(&buf, m); err != nil {
		t.Fatalf("write %v: %v", m.Type, err)
	}
	got, err := ReadMessage(&buf, 0)
	if err != nil {
		t.Fatalf("read %v: %v", m.Type, err)
	}
	if got.Type != m.Type {
		t.Fatalf("type %v -> %v", m.Type, got.Type)
	}
	return got
}

func TestRoundTripAllMessages(t *testing.T) {
	q := roundtrip(t, &Message{
		Type: MsgQuery,
		SQL:  "SELECT * FROM t WHERE id = ? AND name = ?",
		Args: value.Row{value.Int(42), value.Text("π — naïve")},
	})
	if q.SQL != "SELECT * FROM t WHERE id = ? AND name = ?" || len(q.Args) != 2 {
		t.Fatalf("query round trip: %+v", q)
	}
	if q.Args[0].AsInt() != 42 || q.Args[1].AsText() != "π — naïve" {
		t.Fatalf("args round trip: %+v", q.Args)
	}

	res := roundtrip(t, &Message{
		Type:    MsgResult,
		Columns: []string{"id", "v"},
		Rows: []value.Row{
			{value.Int(1), value.Text("a")},
			{value.Int(2), value.Null},
			{value.Float(2.5), value.Bool(true)},
		},
		RowsAffected: 7,
	})
	if len(res.Columns) != 2 || len(res.Rows) != 3 || res.RowsAffected != 7 {
		t.Fatalf("result round trip: %+v", res)
	}
	if !res.Rows[1][1].IsNull() || res.Rows[2][0].AsFloat() != 2.5 {
		t.Fatalf("row values: %+v", res.Rows)
	}

	tx := roundtrip(t, &Message{Type: MsgTxState, TxnID: 99, Seq: 1234})
	if tx.TxnID != 99 || tx.Seq != 1234 {
		t.Fatalf("txstate round trip: %+v", tx)
	}

	want := Stats{
		ActiveSessions: 3, ActiveTxns: 2, QueuedConns: 1, Accepted: 10,
		RejectedBusy: 4, Requests: 100, Commits: 50, Conflicts: 5,
		ExpiredTxns: 2, WALSyncs: 20, PlanCacheHits: 40, PlanCacheMisses: 7,
		Subscribers: 2, IsReplica: 1, AppliedSeq: 900, PrimarySeq: 905,
		ReplConnected: 1, Epoch: 3, Fenced: 1,
		VacuumRuns: 6, VacuumDropped: 4200, HistoryFloor: 870,
		ResidentVersions: 1234, MaxChainLength: 9,
		SubscriberLags: []SubscriberLag{
			{AckedSeq: 898, LagSeqs: 7, LastAckAgeMs: 120},
			{AckedSeq: 905, LagSeqs: 0, LastAckAgeMs: 4},
		},
	}
	st := roundtrip(t, &Message{Type: MsgStatsResult, Stats: want})
	if !reflect.DeepEqual(st.Stats, want) {
		t.Fatalf("stats round trip: got %+v want %+v", st.Stats, want)
	}
	if lag := st.Stats.Lag(); lag != 5 {
		t.Fatalf("lag = %d, want 5", lag)
	}

	e := roundtrip(t, &Message{Type: MsgError, Code: CodeConflict, Err: "serialization conflict"})
	if e.Code != CodeConflict || e.Err != "serialization conflict" {
		t.Fatalf("error round trip: %+v", e)
	}

	for _, typ := range []MsgType{MsgPing, MsgPong, MsgBegin, MsgCommit, MsgRollback, MsgStats} {
		roundtrip(t, &Message{Type: typ})
	}
}

func TestRoundTripReplicationMessages(t *testing.T) {
	sub := roundtrip(t, &Message{Type: MsgSubscribe, FromSeq: 77, Bootstrap: true})
	if sub.FromSeq != 77 || !sub.Bootstrap {
		t.Fatalf("subscribe round trip: %+v", sub)
	}

	batch := roundtrip(t, &Message{Type: MsgLogBatch, PrimarySeq: 12, Entries: []LogEntry{
		{DDL: "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)"},
		{Commit: storage.CommitRecord{Seq: 11, TxnID: 5, Changes: []storage.Change{
			{Table: "t", Key: "k1", Op: storage.OpInsert, After: value.Row{value.Int(1), value.Text("a")}},
			{Table: "t", Key: "k2", Op: storage.OpUpdate,
				Before: value.Row{value.Int(2), value.Text("b")},
				After:  value.Row{value.Int(2), value.Text("c")}},
		}}},
	}})
	if batch.PrimarySeq != 12 || len(batch.Entries) != 2 {
		t.Fatalf("log batch round trip: %+v", batch)
	}
	if !batch.Entries[0].IsDDL() || batch.Entries[0].DDL == "" {
		t.Fatalf("DDL entry lost: %+v", batch.Entries[0])
	}
	got := batch.Entries[1].Commit
	if got.Seq != 11 || got.TxnID != 5 || len(got.Changes) != 2 ||
		got.Changes[1].Op != storage.OpUpdate || got.Changes[1].After[1].AsText() != "c" {
		t.Fatalf("commit entry round trip: %+v", got)
	}
	hb := roundtrip(t, &Message{Type: MsgLogBatch, PrimarySeq: 99})
	if hb.PrimarySeq != 99 || len(hb.Entries) != 0 {
		t.Fatalf("heartbeat round trip: %+v", hb)
	}

	chunk := roundtrip(t, &Message{Type: MsgSnapshotChunk, Data: []byte{1, 2, 3, 0, 255}, Seq: 41, Last: true})
	if !bytes.Equal(chunk.Data, []byte{1, 2, 3, 0, 255}) || chunk.Seq != 41 || !chunk.Last {
		t.Fatalf("snapshot chunk round trip: %+v", chunk)
	}
}

func TestLogBatchCraftedCountsRejected(t *testing.T) {
	// A huge claimed entry count must be rejected before allocation.
	payload := []byte{byte(MsgLogBatch)}
	payload = binary.AppendUvarint(payload, 1<<40)
	if _, err := DecodeMessage(payload); err == nil {
		t.Fatal("crafted entry count accepted")
	}
	// An unknown entry kind is corrupt.
	payload = []byte{byte(MsgLogBatch)}
	payload = binary.AppendUvarint(payload, 1)
	payload = append(payload, 7, 0, 0)
	if _, err := DecodeMessage(payload); err == nil {
		t.Fatal("unknown entry kind accepted")
	}
}

func TestCorruptFrameDetected(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, &Message{Type: MsgQuery, SQL: "SELECT 1"}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-1] ^= 0x40 // flip a payload bit; CRC must catch it
	_, err := ReadMessage(bytes.NewReader(raw), 0)
	if !errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("bit flip: %v, want ErrFrameCorrupt", err)
	}
}

func TestTruncatedFrame(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, &Message{Type: MsgQuery, SQL: "SELECT 1"}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, cut := range []int{1, 5, len(raw) - 1} {
		_, err := ReadMessage(bytes.NewReader(raw[:cut]), 0)
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut at %d: %v, want ErrUnexpectedEOF", cut, err)
		}
	}
	// A clean boundary is a plain EOF (normal disconnect).
	if _, err := ReadMessage(bytes.NewReader(nil), 0); !errors.Is(err, io.EOF) {
		t.Fatalf("empty stream: %v, want io.EOF", err)
	}
}

func TestOversizedFrameRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, &Message{Type: MsgQuery, SQL: string(make([]byte, 256))}); err != nil {
		t.Fatal(err)
	}
	_, err := ReadMessage(&buf, 64)
	if !errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("oversized frame: %v, want ErrFrameCorrupt", err)
	}
}

func TestTypedErrorHelpers(t *testing.T) {
	conflict := &ServerError{Code: CodeConflict, Msg: "x"}
	if !IsConflict(conflict) || IsBusy(conflict) || IsTxnExpired(conflict) {
		t.Fatal("conflict classification")
	}
	if !IsBusy(&ServerError{Code: CodeBusy}) {
		t.Fatal("busy classification")
	}
	if !IsTxnExpired(&ServerError{Code: CodeTxnExpired}) {
		t.Fatal("expired classification")
	}
	if IsConflict(errors.New("plain")) {
		t.Fatal("plain errors must not classify")
	}
}

// TestCraftedLengthsDoNotPanic pins the hardening against malicious frames:
// huge uvarint lengths and counts (which would overflow int bound checks or
// size allocations) must decode to errors, never panic — a reachable panic
// here is a remote DoS on trod-server.
func TestCraftedLengthsDoNotPanic(t *testing.T) {
	frame := func(payload []byte) []byte {
		var buf bytes.Buffer
		var hdr [8]byte
		binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.BigEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
		buf.Write(hdr[:])
		buf.Write(payload)
		return buf.Bytes()
	}
	huge := binary.AppendUvarint(nil, 1<<63) // absurd length/count claim
	cases := [][]byte{
		// MsgQuery with a SQL length near 2^63.
		append(append([]byte{byte(MsgQuery)}, huge...), 'x'),
		// MsgQuery with a sane SQL but an args row claiming 2^63 columns.
		append(append([]byte{byte(MsgQuery), 1, 'q'}, huge...), 1),
		// MsgResult claiming 2^63 columns.
		append(append([]byte{byte(MsgResult)}, huge...), 0),
		// MsgResult with 0 columns and 2^63 rows.
		append(append([]byte{byte(MsgResult), 0}, huge...), 0),
		// MsgError with a huge message length.
		append(append([]byte{byte(MsgError), byte(CodeSQL)}, huge...), 'x'),
	}
	for i, payload := range cases {
		if _, err := ReadMessage(bytes.NewReader(frame(payload)), 0); err == nil {
			t.Errorf("case %d: crafted frame decoded without error", i)
		}
	}
}

// TestWriteMessageRejectsOversizedBeforeWriting: an encoding larger than
// MaxFrame must be refused with ErrFrameTooLarge and write no bytes, so the
// server can answer with a typed error on a still-clean stream.
func TestWriteMessageRejectsOversizedBeforeWriting(t *testing.T) {
	var buf bytes.Buffer
	big := &Message{Type: MsgQuery, SQL: string(make([]byte, MaxFrame+1))}
	if err := WriteMessage(&buf, big); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized write = %v, want ErrFrameTooLarge", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("oversized write leaked %d bytes onto the stream", buf.Len())
	}
}

// TestFailoverMessageRoundTrips covers the failover frames: the replication
// epoch stamped on Subscribe/LogBatch/SnapshotChunk, and the Ack / Promote /
// Promoted messages themselves.
func TestFailoverMessageRoundTrips(t *testing.T) {
	sub := roundtrip(t, &Message{Type: MsgSubscribe, FromSeq: 77, Epoch: 3})
	if sub.FromSeq != 77 || sub.Epoch != 3 || sub.Bootstrap {
		t.Fatalf("subscribe+epoch round trip: %+v", sub)
	}
	ack := roundtrip(t, &Message{Type: MsgAck, Seq: 41, Epoch: 2})
	if ack.Seq != 41 || ack.Epoch != 2 {
		t.Fatalf("ack round trip: %+v", ack)
	}
	promote := roundtrip(t, &Message{Type: MsgPromote, Epoch: 9})
	if promote.Epoch != 9 {
		t.Fatalf("promote round trip: %+v", promote)
	}
	promoted := roundtrip(t, &Message{Type: MsgPromoted, Epoch: 9, Seq: 1234})
	if promoted.Epoch != 9 || promoted.Seq != 1234 {
		t.Fatalf("promoted round trip: %+v", promoted)
	}
	hb := roundtrip(t, &Message{Type: MsgLogBatch, PrimarySeq: 99, Epoch: 4})
	if hb.PrimarySeq != 99 || hb.Epoch != 4 || len(hb.Entries) != 0 {
		t.Fatalf("heartbeat+epoch round trip: %+v", hb)
	}
	chunk := roundtrip(t, &Message{Type: MsgSnapshotChunk, Data: []byte{1, 2}, Seq: 8, Last: true, Epoch: 6})
	if chunk.Epoch != 6 || chunk.Seq != 8 || !chunk.Last || !bytes.Equal(chunk.Data, []byte{1, 2}) {
		t.Fatalf("chunk+epoch round trip: %+v", chunk)
	}
}

// TestTruncatedFailoverPayloadsRejected cuts the new failover frames at
// every payload byte: each strict prefix must decode to an error — never a
// silently-zeroed field and never a panic. Field values are multi-byte
// uvarints so mid-varint cuts are exercised too.
func TestTruncatedFailoverPayloadsRejected(t *testing.T) {
	msgs := []*Message{
		{Type: MsgSubscribe, FromSeq: 1 << 40, Bootstrap: true, Epoch: 1 << 33},
		{Type: MsgAck, Seq: 1 << 40, Epoch: 1 << 33},
		{Type: MsgPromote, Epoch: 1 << 33},
		{Type: MsgPromoted, Epoch: 1 << 33, Seq: 1 << 40},
		{Type: MsgLogBatch, PrimarySeq: 1 << 40, Epoch: 1 << 33},
		{Type: MsgStatsResult, Stats: Stats{Epoch: 1 << 33, Fenced: 1,
			SubscriberLags: []SubscriberLag{{AckedSeq: 1 << 40, LagSeqs: 9, LastAckAgeMs: 1 << 20}}}},
	}
	for _, m := range msgs {
		var buf bytes.Buffer
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatalf("%v: encode: %v", m.Type, err)
		}
		payload := buf.Bytes()[8:] // strip the length+CRC header
		for cut := 0; cut < len(payload); cut++ {
			if _, err := DecodeMessage(payload[:cut]); err == nil {
				t.Errorf("%v: truncated payload (%d of %d bytes) decoded cleanly", m.Type, cut, len(payload))
			}
		}
	}
}

// TestStatsCraftedSubscriberCountRejected pins the uint64-space bound check
// on the subscriber-lag list: a count the remaining payload cannot hold must
// be rejected before allocation.
func TestStatsCraftedSubscriberCountRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, &Message{Type: MsgStatsResult}); err != nil {
		t.Fatal(err)
	}
	payload := buf.Bytes()[8:]
	// The encoding ends with the subscriber count (0 for empty stats);
	// replace it with an absurd claim followed by a few real bytes.
	payload = append(payload[:len(payload)-1], binary.AppendUvarint(nil, 1<<40)...)
	payload = append(payload, 1, 2, 3)
	if _, err := DecodeMessage(payload); err == nil {
		t.Fatal("crafted subscriber count accepted")
	}
}

// TestFailoverErrorHelpers pins the typed classification of the two new
// error codes.
func TestFailoverErrorHelpers(t *testing.T) {
	if !IsFenced(&ServerError{Code: CodeFenced}) || IsFenced(&ServerError{Code: CodeReadOnly}) {
		t.Fatal("fenced classification")
	}
	if !IsQuorumUnavailable(&ServerError{Code: CodeQuorumUnavailable}) || IsQuorumUnavailable(errors.New("plain")) {
		t.Fatal("quorum-unavailable classification")
	}
	if CodeFenced.String() != "fenced" || CodeQuorumUnavailable.String() != "quorum-unavailable" {
		t.Fatalf("code strings: %q %q", CodeFenced.String(), CodeQuorumUnavailable.String())
	}
}

// TestReadOnlyTxnErrorHelpers pins the wire code for writes inside declared
// read-only snapshot transactions, distinct from the replica's read-only
// session code.
func TestReadOnlyTxnErrorHelpers(t *testing.T) {
	if !IsReadOnlyTxn(&ServerError{Code: CodeReadOnlyTxn}) || IsReadOnlyTxn(&ServerError{Code: CodeReadOnly}) {
		t.Fatal("read-only-txn classification")
	}
	if CodeReadOnlyTxn.String() != "read-only-txn" {
		t.Fatalf("code string: %q", CodeReadOnlyTxn.String())
	}
}
