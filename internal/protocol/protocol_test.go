package protocol

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"testing"

	"repro/internal/storage"
	"repro/internal/value"
)

func roundtrip(t *testing.T, m *Message) *Message {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteMessage(&buf, m); err != nil {
		t.Fatalf("write %v: %v", m.Type, err)
	}
	got, err := ReadMessage(&buf, 0)
	if err != nil {
		t.Fatalf("read %v: %v", m.Type, err)
	}
	if got.Type != m.Type {
		t.Fatalf("type %v -> %v", m.Type, got.Type)
	}
	return got
}

func TestRoundTripAllMessages(t *testing.T) {
	q := roundtrip(t, &Message{
		Type: MsgQuery,
		SQL:  "SELECT * FROM t WHERE id = ? AND name = ?",
		Args: value.Row{value.Int(42), value.Text("π — naïve")},
	})
	if q.SQL != "SELECT * FROM t WHERE id = ? AND name = ?" || len(q.Args) != 2 {
		t.Fatalf("query round trip: %+v", q)
	}
	if q.Args[0].AsInt() != 42 || q.Args[1].AsText() != "π — naïve" {
		t.Fatalf("args round trip: %+v", q.Args)
	}

	res := roundtrip(t, &Message{
		Type:    MsgResult,
		Columns: []string{"id", "v"},
		Rows: []value.Row{
			{value.Int(1), value.Text("a")},
			{value.Int(2), value.Null},
			{value.Float(2.5), value.Bool(true)},
		},
		RowsAffected: 7,
	})
	if len(res.Columns) != 2 || len(res.Rows) != 3 || res.RowsAffected != 7 {
		t.Fatalf("result round trip: %+v", res)
	}
	if !res.Rows[1][1].IsNull() || res.Rows[2][0].AsFloat() != 2.5 {
		t.Fatalf("row values: %+v", res.Rows)
	}

	tx := roundtrip(t, &Message{Type: MsgTxState, TxnID: 99, Seq: 1234})
	if tx.TxnID != 99 || tx.Seq != 1234 {
		t.Fatalf("txstate round trip: %+v", tx)
	}

	want := Stats{
		ActiveSessions: 3, ActiveTxns: 2, QueuedConns: 1, Accepted: 10,
		RejectedBusy: 4, Requests: 100, Commits: 50, Conflicts: 5,
		ExpiredTxns: 2, WALSyncs: 20, PlanCacheHits: 40, PlanCacheMisses: 7,
		Subscribers: 2, IsReplica: 1, AppliedSeq: 900, PrimarySeq: 905,
		ReplConnected: 1,
	}
	st := roundtrip(t, &Message{Type: MsgStatsResult, Stats: want})
	if st.Stats != want {
		t.Fatalf("stats round trip: %+v", st.Stats)
	}
	if lag := st.Stats.Lag(); lag != 5 {
		t.Fatalf("lag = %d, want 5", lag)
	}

	e := roundtrip(t, &Message{Type: MsgError, Code: CodeConflict, Err: "serialization conflict"})
	if e.Code != CodeConflict || e.Err != "serialization conflict" {
		t.Fatalf("error round trip: %+v", e)
	}

	for _, typ := range []MsgType{MsgPing, MsgPong, MsgBegin, MsgCommit, MsgRollback, MsgStats} {
		roundtrip(t, &Message{Type: typ})
	}
}

func TestRoundTripReplicationMessages(t *testing.T) {
	sub := roundtrip(t, &Message{Type: MsgSubscribe, FromSeq: 77, Bootstrap: true})
	if sub.FromSeq != 77 || !sub.Bootstrap {
		t.Fatalf("subscribe round trip: %+v", sub)
	}

	batch := roundtrip(t, &Message{Type: MsgLogBatch, PrimarySeq: 12, Entries: []LogEntry{
		{DDL: "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)"},
		{Commit: storage.CommitRecord{Seq: 11, TxnID: 5, Changes: []storage.Change{
			{Table: "t", Key: "k1", Op: storage.OpInsert, After: value.Row{value.Int(1), value.Text("a")}},
			{Table: "t", Key: "k2", Op: storage.OpUpdate,
				Before: value.Row{value.Int(2), value.Text("b")},
				After:  value.Row{value.Int(2), value.Text("c")}},
		}}},
	}})
	if batch.PrimarySeq != 12 || len(batch.Entries) != 2 {
		t.Fatalf("log batch round trip: %+v", batch)
	}
	if !batch.Entries[0].IsDDL() || batch.Entries[0].DDL == "" {
		t.Fatalf("DDL entry lost: %+v", batch.Entries[0])
	}
	got := batch.Entries[1].Commit
	if got.Seq != 11 || got.TxnID != 5 || len(got.Changes) != 2 ||
		got.Changes[1].Op != storage.OpUpdate || got.Changes[1].After[1].AsText() != "c" {
		t.Fatalf("commit entry round trip: %+v", got)
	}
	hb := roundtrip(t, &Message{Type: MsgLogBatch, PrimarySeq: 99})
	if hb.PrimarySeq != 99 || len(hb.Entries) != 0 {
		t.Fatalf("heartbeat round trip: %+v", hb)
	}

	chunk := roundtrip(t, &Message{Type: MsgSnapshotChunk, Data: []byte{1, 2, 3, 0, 255}, Seq: 41, Last: true})
	if !bytes.Equal(chunk.Data, []byte{1, 2, 3, 0, 255}) || chunk.Seq != 41 || !chunk.Last {
		t.Fatalf("snapshot chunk round trip: %+v", chunk)
	}
}

func TestLogBatchCraftedCountsRejected(t *testing.T) {
	// A huge claimed entry count must be rejected before allocation.
	payload := []byte{byte(MsgLogBatch)}
	payload = binary.AppendUvarint(payload, 1<<40)
	if _, err := DecodeMessage(payload); err == nil {
		t.Fatal("crafted entry count accepted")
	}
	// An unknown entry kind is corrupt.
	payload = []byte{byte(MsgLogBatch)}
	payload = binary.AppendUvarint(payload, 1)
	payload = append(payload, 7, 0, 0)
	if _, err := DecodeMessage(payload); err == nil {
		t.Fatal("unknown entry kind accepted")
	}
}

func TestCorruptFrameDetected(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, &Message{Type: MsgQuery, SQL: "SELECT 1"}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-1] ^= 0x40 // flip a payload bit; CRC must catch it
	_, err := ReadMessage(bytes.NewReader(raw), 0)
	if !errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("bit flip: %v, want ErrFrameCorrupt", err)
	}
}

func TestTruncatedFrame(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, &Message{Type: MsgQuery, SQL: "SELECT 1"}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, cut := range []int{1, 5, len(raw) - 1} {
		_, err := ReadMessage(bytes.NewReader(raw[:cut]), 0)
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut at %d: %v, want ErrUnexpectedEOF", cut, err)
		}
	}
	// A clean boundary is a plain EOF (normal disconnect).
	if _, err := ReadMessage(bytes.NewReader(nil), 0); !errors.Is(err, io.EOF) {
		t.Fatalf("empty stream: %v, want io.EOF", err)
	}
}

func TestOversizedFrameRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, &Message{Type: MsgQuery, SQL: string(make([]byte, 256))}); err != nil {
		t.Fatal(err)
	}
	_, err := ReadMessage(&buf, 64)
	if !errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("oversized frame: %v, want ErrFrameCorrupt", err)
	}
}

func TestTypedErrorHelpers(t *testing.T) {
	conflict := &ServerError{Code: CodeConflict, Msg: "x"}
	if !IsConflict(conflict) || IsBusy(conflict) || IsTxnExpired(conflict) {
		t.Fatal("conflict classification")
	}
	if !IsBusy(&ServerError{Code: CodeBusy}) {
		t.Fatal("busy classification")
	}
	if !IsTxnExpired(&ServerError{Code: CodeTxnExpired}) {
		t.Fatal("expired classification")
	}
	if IsConflict(errors.New("plain")) {
		t.Fatal("plain errors must not classify")
	}
}

// TestCraftedLengthsDoNotPanic pins the hardening against malicious frames:
// huge uvarint lengths and counts (which would overflow int bound checks or
// size allocations) must decode to errors, never panic — a reachable panic
// here is a remote DoS on trod-server.
func TestCraftedLengthsDoNotPanic(t *testing.T) {
	frame := func(payload []byte) []byte {
		var buf bytes.Buffer
		var hdr [8]byte
		binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.BigEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
		buf.Write(hdr[:])
		buf.Write(payload)
		return buf.Bytes()
	}
	huge := binary.AppendUvarint(nil, 1<<63) // absurd length/count claim
	cases := [][]byte{
		// MsgQuery with a SQL length near 2^63.
		append(append([]byte{byte(MsgQuery)}, huge...), 'x'),
		// MsgQuery with a sane SQL but an args row claiming 2^63 columns.
		append(append([]byte{byte(MsgQuery), 1, 'q'}, huge...), 1),
		// MsgResult claiming 2^63 columns.
		append(append([]byte{byte(MsgResult)}, huge...), 0),
		// MsgResult with 0 columns and 2^63 rows.
		append(append([]byte{byte(MsgResult), 0}, huge...), 0),
		// MsgError with a huge message length.
		append(append([]byte{byte(MsgError), byte(CodeSQL)}, huge...), 'x'),
	}
	for i, payload := range cases {
		if _, err := ReadMessage(bytes.NewReader(frame(payload)), 0); err == nil {
			t.Errorf("case %d: crafted frame decoded without error", i)
		}
	}
}

// TestWriteMessageRejectsOversizedBeforeWriting: an encoding larger than
// MaxFrame must be refused with ErrFrameTooLarge and write no bytes, so the
// server can answer with a typed error on a still-clean stream.
func TestWriteMessageRejectsOversizedBeforeWriting(t *testing.T) {
	var buf bytes.Buffer
	big := &Message{Type: MsgQuery, SQL: string(make([]byte, MaxFrame+1))}
	if err := WriteMessage(&buf, big); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized write = %v, want ErrFrameTooLarge", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("oversized write leaked %d bytes onto the stream", buf.Len())
	}
}
