package protocol

import (
	"bytes"
	"testing"

	"repro/internal/storage"
	"repro/internal/value"
)

// TestTraceContextRoundTrip: the optional trailing trace context survives the
// wire on every traceable request type, in both the set and unset forms.
func TestTraceContextRoundTrip(t *testing.T) {
	for _, typ := range []MsgType{MsgQuery, MsgExec, MsgBegin, MsgCommit, MsgRollback} {
		m := &Message{Type: typ, TraceID: 0xdeadbeefcafe, ParentSpan: 17}
		if typ == MsgQuery || typ == MsgExec {
			m.SQL = "SELECT 1"
		}
		got := roundtrip(t, m)
		if got.TraceID != 0xdeadbeefcafe || got.ParentSpan != 17 {
			t.Fatalf("%v trace context round trip: got trace=%d parent=%d",
				typ, got.TraceID, got.ParentSpan)
		}

		m.TraceID, m.ParentSpan = 0, 0
		got = roundtrip(t, m)
		if got.TraceID != 0 || got.ParentSpan != 0 {
			t.Fatalf("%v untraced round trip grew context: %+v", typ, got)
		}
	}
}

// TestTraceContextZeroCostWhenAbsent pins the wire-compatibility claim: an
// untraced request encodes to exactly the same bytes as before tracing
// existed — zero overhead, and old peers never see unknown fields.
func TestTraceContextZeroCostWhenAbsent(t *testing.T) {
	encode := func(m *Message) []byte {
		var buf bytes.Buffer
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	plain := encode(&Message{Type: MsgExec, SQL: "UPDATE t SET v = 1"})
	traced := encode(&Message{Type: MsgExec, SQL: "UPDATE t SET v = 1", TraceID: 1, ParentSpan: 1})
	if len(traced) != len(plain)+2 {
		t.Fatalf("trace context cost: %d bytes traced vs %d plain, want exactly +2 (two 1-byte uvarints)",
			len(traced), len(plain))
	}
	if bytes.Equal(plain, traced) {
		t.Fatal("traced and untraced frames identical")
	}
}

// TestTraceContextTruncatedRejected: a TraceID without its ParentSpan is a
// corrupt frame, not a silent partial decode.
func TestTraceContextTruncatedRejected(t *testing.T) {
	payload := []byte{byte(MsgCommit)}
	payload = append(payload, 0x07) // TraceID = 7, then nothing
	if _, err := DecodeMessage(payload); err == nil {
		t.Fatal("truncated trace context accepted")
	}
}

// TestLogBatchTracedCommitRoundTrip: replication log entries carry the
// originating request's trace ID, and plain commits stay byte-identical to
// the untraced encoding.
func TestLogBatchTracedCommitRoundTrip(t *testing.T) {
	commit := storage.CommitRecord{Seq: 21, TxnID: 3, Changes: []storage.Change{
		{Table: "t", Key: "k", Op: storage.OpInsert, After: value.Row{value.Int(1)}},
	}}
	batch := roundtrip(t, &Message{Type: MsgLogBatch, PrimarySeq: 21, Entries: []LogEntry{
		{Commit: commit, TraceID: 555},
		{Commit: commit},
	}})
	if len(batch.Entries) != 2 {
		t.Fatalf("entries lost: %+v", batch)
	}
	if batch.Entries[0].TraceID != 555 || batch.Entries[0].Commit.Seq != 21 {
		t.Fatalf("traced entry round trip: %+v", batch.Entries[0])
	}
	if batch.Entries[1].TraceID != 0 || batch.Entries[1].Commit.Seq != 21 {
		t.Fatalf("untraced entry round trip: %+v", batch.Entries[1])
	}

	// A traced-commit entry claiming trace 0 is corrupt: the kind byte says
	// traced, the payload says not.
	payload := []byte{byte(MsgLogBatch), 1, entryCommitTraced, 0}
	if _, err := DecodeMessage(payload); err == nil {
		t.Fatal("traced entry with zero trace ID accepted")
	}
}
