package workload

import (
	"fmt"

	"repro/internal/db"
	"repro/internal/provenance"
	"repro/internal/runtime"
)

// TravelSchema models the travel-reservation web service the paper's
// introduction motivates: flights with finite seats, bookings, and
// payments, operated by a multi-handler workflow.
const TravelSchema = `
CREATE TABLE flights (flightId TEXT PRIMARY KEY, origin TEXT, dest TEXT, seats INTEGER, booked INTEGER);
CREATE TABLE bookings (bookingId INTEGER PRIMARY KEY, flightId TEXT, customer TEXT, state TEXT);
CREATE TABLE payments (paymentId INTEGER PRIMARY KEY, bookingId INTEGER, customer TEXT, amount INTEGER, state TEXT);
`

// TravelTables maps the travel service's tables to provenance event tables.
var TravelTables = provenance.TableMap{
	"flights":  "FlightEvents",
	"bookings": "BookingEvents",
	"payments": "PaymentEvents",
}

// SetupTravel creates the schema and seeds flights.
func SetupTravel(d *db.DB) error {
	if err := d.ExecScript(TravelSchema); err != nil {
		return err
	}
	return d.ExecScript(`
		INSERT INTO flights VALUES ('F100', 'SFO', 'JFK', 2, 0), ('F200', 'JFK', 'AMS', 50, 0);
	`)
}

// RegisterTravel installs the BUGGY booking workflow. bookTrip is the
// entry handler: it checks availability, charges the customer (an RPC to
// the payments handler), and then records the booking while incrementing
// the seat counter — availability check and seat increment in different
// transactions, so two concurrent bookings for the last seat both pass the
// check and the flight oversells (a classic TOCTOU, same family as
// MDL-59854 but with a quantitative symptom).
func RegisterTravel(app *runtime.App) {
	app.Register("bookTrip", func(c *runtime.Ctx, args runtime.Args) (any, error) {
		flight, customer := args.String("flightId"), args.String("customer")

		// 1st transaction: availability check.
		var available bool
		if err := c.Txn("checkSeats", func(tx *db.Tx) error {
			rows, err := tx.Query(`SELECT seats, booked FROM flights WHERE flightId = ?`, flight)
			if err != nil {
				return err
			}
			if len(rows.Rows) == 0 {
				return fmt.Errorf("bookTrip: no flight %s", flight)
			}
			available = rows.Rows[0][1].AsInt() < rows.Rows[0][0].AsInt()
			return nil
		}); err != nil {
			return nil, err
		}
		if !available {
			return "sold-out", nil
		}

		// Charge via RPC (its own handler, its own transaction).
		payRes, err := c.Call("chargeCustomer", runtime.Args{"customer": customer, "amount": 450})
		if err != nil {
			return nil, err
		}
		paymentID := payRes.(int64)

		// 2nd transaction: record booking + bump the counter. The check is
		// NOT revalidated — the bug window.
		var bookingID int64
		if err := c.Txn("recordBooking", func(tx *db.Tx) error {
			rows, err := tx.Query(`SELECT COALESCE(MAX(bookingId), 0) FROM bookings`)
			if err != nil {
				return err
			}
			bookingID = rows.Rows[0][0].AsInt() + 1
			if _, err := tx.Exec(`INSERT INTO bookings VALUES (?, ?, ?, 'confirmed')`, bookingID, flight, customer); err != nil {
				return err
			}
			cur, err := tx.Query(`SELECT booked FROM flights WHERE flightId = ?`, flight)
			if err != nil {
				return err
			}
			_, err = tx.Exec(`UPDATE flights SET booked = ? WHERE flightId = ?`, cur.Rows[0][0].AsInt()+1, flight)
			return err
		}); err != nil {
			return nil, err
		}
		// Link the payment to the booking.
		if _, err := c.Exec("linkPayment", `UPDATE payments SET bookingId = ?, state = 'captured' WHERE paymentId = ?`, bookingID, paymentID); err != nil {
			return nil, err
		}
		c.External("email", fmt.Sprintf("confirmation for %s", customer))
		return bookingID, nil
	})

	app.Register("chargeCustomer", func(c *runtime.Ctx, args runtime.Args) (any, error) {
		customer, amount := args.String("customer"), args.Int("amount")
		var paymentID int64
		err := c.Txn("insertPayment", func(tx *db.Tx) error {
			rows, err := tx.Query(`SELECT COALESCE(MAX(paymentId), 0) FROM payments`)
			if err != nil {
				return err
			}
			paymentID = rows.Rows[0][0].AsInt() + 1
			_, err = tx.Exec(`INSERT INTO payments VALUES (?, 0, ?, ?, 'authorized')`, paymentID, customer, amount)
			return err
		})
		if err != nil {
			return nil, err
		}
		return paymentID, nil
	})

	registerTravelCommon(app)
}

// RegisterTravelFixed installs the patched bookTrip: the availability check
// and the booking+counter update run in ONE transaction, so the
// serializable database rejects the second booking of the last seat (OCC
// conflict → retry → sees the flight full → sold-out).
func RegisterTravelFixed(app *runtime.App) {
	app.Register("bookTrip", func(c *runtime.Ctx, args runtime.Args) (any, error) {
		flight, customer := args.String("flightId"), args.String("customer")
		payRes, err := c.Call("chargeCustomer", runtime.Args{"customer": customer, "amount": 450})
		if err != nil {
			return nil, err
		}
		paymentID := payRes.(int64)

		var bookingID int64
		soldOut := false
		if err := c.Txn("bookAtomic", func(tx *db.Tx) error {
			soldOut = false
			rows, err := tx.Query(`SELECT seats, booked FROM flights WHERE flightId = ?`, flight)
			if err != nil {
				return err
			}
			if len(rows.Rows) == 0 {
				return fmt.Errorf("bookTrip: no flight %s", flight)
			}
			seats, booked := rows.Rows[0][0].AsInt(), rows.Rows[0][1].AsInt()
			if booked >= seats {
				soldOut = true
				return nil
			}
			ids, err := tx.Query(`SELECT COALESCE(MAX(bookingId), 0) FROM bookings`)
			if err != nil {
				return err
			}
			bookingID = ids.Rows[0][0].AsInt() + 1
			if _, err := tx.Exec(`INSERT INTO bookings VALUES (?, ?, ?, 'confirmed')`, bookingID, flight, customer); err != nil {
				return err
			}
			_, err = tx.Exec(`UPDATE flights SET booked = ? WHERE flightId = ?`, booked+1, flight)
			return err
		}); err != nil {
			return nil, err
		}
		if soldOut {
			// Compensate the authorized payment.
			if _, err := c.Exec("voidPayment", `UPDATE payments SET state = 'voided' WHERE paymentId = ?`, paymentID); err != nil {
				return nil, err
			}
			return "sold-out", nil
		}
		if _, err := c.Exec("linkPayment", `UPDATE payments SET bookingId = ?, state = 'captured' WHERE paymentId = ?`, bookingID, paymentID); err != nil {
			return nil, err
		}
		c.External("email", fmt.Sprintf("confirmation for %s", customer))
		return bookingID, nil
	})
	// chargeCustomer is unchanged in the fix.
	app.Register("chargeCustomer", func(c *runtime.Ctx, args runtime.Args) (any, error) {
		customer, amount := args.String("customer"), args.Int("amount")
		var paymentID int64
		err := c.Txn("insertPayment", func(tx *db.Tx) error {
			rows, err := tx.Query(`SELECT COALESCE(MAX(paymentId), 0) FROM payments`)
			if err != nil {
				return err
			}
			paymentID = rows.Rows[0][0].AsInt() + 1
			_, err = tx.Exec(`INSERT INTO payments VALUES (?, 0, ?, ?, 'authorized')`, paymentID, customer, amount)
			return err
		})
		if err != nil {
			return nil, err
		}
		return paymentID, nil
	})
	registerTravelCommon(app)
}

func registerTravelCommon(app *runtime.App) {
	// auditFlight raises an error when a flight is oversold or its counter
	// disagrees with the bookings table — the symptom handler.
	app.Register("auditFlight", func(c *runtime.Ctx, args runtime.Args) (any, error) {
		flight := args.String("flightId")
		var report string
		err := c.Txn("DB.audit", func(tx *db.Tx) error {
			f, err := tx.Query(`SELECT seats, booked FROM flights WHERE flightId = ?`, flight)
			if err != nil {
				return err
			}
			if len(f.Rows) == 0 {
				return fmt.Errorf("auditFlight: no flight %s", flight)
			}
			seats, booked := f.Rows[0][0].AsInt(), f.Rows[0][1].AsInt()
			b, err := tx.Query(`SELECT COUNT(*) FROM bookings WHERE flightId = ? AND state = 'confirmed'`, flight)
			if err != nil {
				return err
			}
			actual := b.Rows[0][0].AsInt()
			if actual != booked {
				return fmt.Errorf("auditFlight: counter %d != confirmed bookings %d", booked, actual)
			}
			if booked > seats {
				return fmt.Errorf("auditFlight: flight %s oversold (%d/%d)", flight, booked, seats)
			}
			report = fmt.Sprintf("%d/%d", booked, seats)
			return nil
		})
		if err != nil {
			return nil, err
		}
		return report, nil
	})

	// cancelBooking frees the seat and refunds.
	app.Register("cancelBooking", func(c *runtime.Ctx, args runtime.Args) (any, error) {
		bookingID := args.Int("bookingId")
		err := c.Txn("DB.cancel", func(tx *db.Tx) error {
			b, err := tx.Query(`SELECT flightId, state FROM bookings WHERE bookingId = ?`, bookingID)
			if err != nil {
				return err
			}
			if len(b.Rows) == 0 || b.Rows[0][1].AsText() != "confirmed" {
				return fmt.Errorf("cancelBooking: booking %d not cancellable", bookingID)
			}
			flight := b.Rows[0][0].AsText()
			if _, err := tx.Exec(`UPDATE bookings SET state = 'cancelled' WHERE bookingId = ?`, bookingID); err != nil {
				return err
			}
			f, err := tx.Query(`SELECT booked FROM flights WHERE flightId = ?`, flight)
			if err != nil {
				return err
			}
			if _, err := tx.Exec(`UPDATE flights SET booked = ? WHERE flightId = ?`, f.Rows[0][0].AsInt()-1, flight); err != nil {
				return err
			}
			_, err = tx.Exec(`UPDATE payments SET state = 'refunded' WHERE bookingId = ?`, bookingID)
			return err
		})
		if err != nil {
			return nil, err
		}
		return true, nil
	})
}
