package workload

import (
	"strings"
	"testing"

	"repro/internal/db"
	"repro/internal/runtime"
)

func newTravel(t *testing.T, fixed bool) *runtime.App {
	t.Helper()
	d := db.MustOpenMemory()
	t.Cleanup(func() { d.Close() })
	if err := SetupTravel(d); err != nil {
		t.Fatal(err)
	}
	app := runtime.New(d)
	if fixed {
		RegisterTravelFixed(app)
	} else {
		RegisterTravel(app)
	}
	return app
}

func TestTravelHappyPath(t *testing.T) {
	app := newTravel(t, false)
	res, err := app.Invoke("bookTrip", runtime.Args{"flightId": "F100", "customer": "alice"})
	if err != nil {
		t.Fatal(err)
	}
	bookingID := res.(int64)
	if bookingID != 1 {
		t.Errorf("bookingId = %d", bookingID)
	}
	if audit, err := app.Invoke("auditFlight", runtime.Args{"flightId": "F100"}); err != nil || audit != "1/2" {
		t.Errorf("audit = %v, %v", audit, err)
	}
	// Payment captured and linked.
	rows, _ := app.DB().Query(`SELECT state FROM payments WHERE bookingId = ?`, bookingID)
	if len(rows.Rows) != 1 || rows.Rows[0][0].AsText() != "captured" {
		t.Errorf("payment = %v", rows.Rows)
	}
	// Fill the flight, then it's sold out.
	if _, err := app.Invoke("bookTrip", runtime.Args{"flightId": "F100", "customer": "bob"}); err != nil {
		t.Fatal(err)
	}
	res, err = app.Invoke("bookTrip", runtime.Args{"flightId": "F100", "customer": "carol"})
	if err != nil || res != "sold-out" {
		t.Errorf("third booking = %v, %v", res, err)
	}
	// Unknown flight errors.
	if _, err := app.Invoke("bookTrip", runtime.Args{"flightId": "F404", "customer": "x"}); err == nil {
		t.Error("unknown flight should fail")
	}
}

func TestTravelCancelFreesSeat(t *testing.T) {
	app := newTravel(t, false)
	res, err := app.Invoke("bookTrip", runtime.Args{"flightId": "F100", "customer": "alice"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.Invoke("cancelBooking", runtime.Args{"bookingId": res.(int64)}); err != nil {
		t.Fatal(err)
	}
	if audit, err := app.Invoke("auditFlight", runtime.Args{"flightId": "F100"}); err != nil || audit != "0/2" {
		t.Errorf("after cancel audit = %v, %v", audit, err)
	}
	rows, _ := app.DB().Query(`SELECT state FROM payments`)
	if rows.Rows[0][0].AsText() != "refunded" {
		t.Errorf("payment = %v", rows.Rows)
	}
	// Double cancel fails.
	if _, err := app.Invoke("cancelBooking", runtime.Args{"bookingId": res.(int64)}); err == nil {
		t.Error("double cancel should fail")
	}
}

// raceLastSeat races two bookings for the single remaining seat through
// the TOCTOU window: both availability checks pass before either booking
// records.
func raceLastSeat(t *testing.T, app *runtime.App, gateLabel string) {
	t.Helper()
	// Take one of the two seats first.
	if _, err := app.Invoke("bookTrip", runtime.Args{"flightId": "F100", "customer": "early"}); err != nil {
		t.Fatal(err)
	}
	if err := RaceHandlers(app, "bookTrip", gateLabel, "R100", "R101",
		runtime.Args{"flightId": "F100", "customer": "alice"},
		runtime.Args{"flightId": "F100", "customer": "bob"}); err != nil {
		t.Fatal(err)
	}
}

func TestTravelOverbookingRace(t *testing.T) {
	app := newTravel(t, false)
	raceLastSeat(t, app, "recordBooking")
	_, err := app.Invoke("auditFlight", runtime.Args{"flightId": "F100"})
	if err == nil || !strings.Contains(err.Error(), "oversold") {
		t.Fatalf("expected oversell, got %v", err)
	}
	rows, _ := app.DB().Query(`SELECT booked FROM flights WHERE flightId = 'F100'`)
	if rows.Rows[0][0].AsInt() != 3 {
		t.Errorf("booked = %v, want 3 (2 seats oversold by 1)", rows.Rows[0][0])
	}
}

func TestTravelFixedSurvivesRace(t *testing.T) {
	app := newTravel(t, true)
	raceLastSeat(t, app, "bookAtomic")
	audit, err := app.Invoke("auditFlight", runtime.Args{"flightId": "F100"})
	if err != nil {
		t.Fatalf("fixed variant oversold: %v", err)
	}
	if audit != "2/2" {
		t.Errorf("audit = %v", audit)
	}
	// Exactly one of the racers got the seat; the loser's payment voided.
	rows, _ := app.DB().Query(`SELECT COUNT(*) FROM payments WHERE state = 'voided'`)
	if rows.Rows[0][0].AsInt() != 1 {
		t.Errorf("voided payments = %v, want 1", rows.Rows[0][0])
	}
}

func TestTravelWorkflowTracing(t *testing.T) {
	// The booking workflow spans handlers; check RPC edges land in traces.
	d := db.MustOpenMemory()
	defer d.Close()
	if err := SetupTravel(d); err != nil {
		t.Fatal(err)
	}
	app := runtime.New(d)
	RegisterTravel(app)
	var edges int
	app.SetObserver(edgeCounter{&edges})
	if _, err := app.InvokeWithReqID("R1", "bookTrip", runtime.Args{"flightId": "F200", "customer": "x"}); err != nil {
		t.Fatal(err)
	}
	if edges != 2 { // bookTrip entry + chargeCustomer RPC
		t.Errorf("invocation edges = %d, want 2", edges)
	}
}

type edgeCounter struct{ n *int }

func (e edgeCounter) RequestStart(runtime.RequestInfo)  {}
func (e edgeCounter) RequestEnd(runtime.RequestInfo)    {}
func (e edgeCounter) Invocation(runtime.InvocationInfo) { *e.n++ }
func (e edgeCounter) External(runtime.ExternalCall)     {}
