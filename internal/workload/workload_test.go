package workload

import (
	"strings"
	"testing"

	"repro/internal/db"
	"repro/internal/runtime"
)

func newMoodle(t *testing.T, fixed bool) *runtime.App {
	t.Helper()
	d := db.MustOpenMemory()
	t.Cleanup(func() { d.Close() })
	if err := SetupMoodle(d); err != nil {
		t.Fatal(err)
	}
	app := runtime.New(d)
	if fixed {
		RegisterMoodleFixed(app)
	} else {
		RegisterMoodle(app)
	}
	return app
}

func TestMoodleHappyPath(t *testing.T) {
	app := newMoodle(t, false)
	if _, err := app.Invoke("subscribeUser", runtime.Args{"userId": "U1", "forum": "F2"}); err != nil {
		t.Fatal(err)
	}
	// Second subscribe is a no-op.
	res, err := app.Invoke("subscribeUser", runtime.Args{"userId": "U1", "forum": "F2"})
	if err != nil || res != true {
		t.Fatalf("resubscribe = %v, %v", res, err)
	}
	subs, err := app.Invoke("fetchSubscribers", runtime.Args{"forum": "F2"})
	if err != nil {
		t.Fatal(err)
	}
	if users := subs.([]string); len(users) != 1 || users[0] != "U1" {
		t.Errorf("subscribers = %v", users)
	}
	// Unsubscribe removes it.
	if res, err := app.Invoke("unsubscribe", runtime.Args{"userId": "U1", "forum": "F2"}); err != nil || res != true {
		t.Errorf("unsubscribe = %v, %v", res, err)
	}
	if res, _ := app.Invoke("unsubscribe", runtime.Args{"userId": "U1", "forum": "F2"}); res != false {
		t.Error("second unsubscribe should report false")
	}
}

func TestMoodleRaceReproducesMDL59854(t *testing.T) {
	app := newMoodle(t, false)
	if err := RaceSubscribe(app, "R1", "R2", "U1", "F2"); err != nil {
		t.Fatal(err)
	}
	// The duplicate exists and fetchSubscribers raises the Figure 1 error.
	_, err := app.Invoke("fetchSubscribers", runtime.Args{"forum": "F2"})
	if err == nil || !strings.Contains(err.Error(), "duplicated") {
		t.Fatalf("expected duplicate error, got %v", err)
	}
	rows, _ := app.DB().Query(`SELECT COUNT(*) FROM forum_sub WHERE userId = 'U1' AND forum = 'F2'`)
	if rows.Rows[0][0].AsInt() != 2 {
		t.Errorf("duplicate count = %v", rows.Rows[0][0])
	}
}

func TestMoodleFixedSurvivesRace(t *testing.T) {
	app := newMoodle(t, true)
	if err := RaceSubscribe(app, "R1", "R2", "U1", "F2"); err != nil {
		t.Fatal(err)
	}
	res, err := app.Invoke("fetchSubscribers", runtime.Args{"forum": "F2"})
	if err != nil {
		t.Fatalf("fixed variant still produced duplicates: %v", err)
	}
	if users := res.([]string); len(users) != 1 {
		t.Errorf("subscribers = %v", users)
	}
}

func TestMoodleMDL60669RestoreBug(t *testing.T) {
	app := newMoodle(t, false)
	// Create a duplicate inside course C1 (the old bug's leftovers).
	if err := RaceSubscribe(app, "R1", "R2", "U1", "F2"); err != nil {
		t.Fatal(err)
	}
	if _, err := app.Invoke("deleteCourse", runtime.Args{"course": "C1"}); err != nil {
		t.Fatal(err)
	}
	// Restoring the course trips over the stale duplicates — MDL-60669.
	_, err := app.Invoke("restoreCourse", runtime.Args{"course": "C1"})
	if err == nil || !strings.Contains(err.Error(), "duplicate subscription") {
		t.Fatalf("expected restore failure, got %v", err)
	}
}

func newWiki(t *testing.T, fixed bool) *runtime.App {
	t.Helper()
	d := db.MustOpenMemory()
	t.Cleanup(func() { d.Close() })
	if err := SetupMediaWiki(d); err != nil {
		t.Fatal(err)
	}
	app := runtime.New(d)
	if fixed {
		RegisterMediaWikiFixed(app)
	} else {
		RegisterMediaWiki(app)
	}
	return app
}

func TestMediaWikiHappyPath(t *testing.T) {
	app := newWiki(t, false)
	if _, err := app.Invoke("editPage", runtime.Args{"pageId": 1, "content": "hello world"}); err != nil {
		t.Fatal(err)
	}
	size, err := app.Invoke("pageInfo", runtime.Args{"pageId": 1})
	if err != nil || size.(int64) != 11 {
		t.Fatalf("pageInfo = %v, %v", size, err)
	}
	if res, err := app.Invoke("addSiteLink", runtime.Args{"pageId": 1, "url": "https://x"}); err != nil || res != true {
		t.Fatalf("addSiteLink = %v, %v", res, err)
	}
	if res, _ := app.Invoke("addSiteLink", runtime.Args{"pageId": 1, "url": "https://x"}); res != false {
		t.Error("duplicate link should be refused sequentially")
	}
	if _, err := app.Invoke("checkSiteLinks", nil); err != nil {
		t.Errorf("no duplicates expected: %v", err)
	}
}

func TestMediaWikiRaceMW39225WrongSizes(t *testing.T) {
	app := newWiki(t, false)
	// Two concurrent edits of page 1: both insert revisions, then both
	// update the cached size — the slower updatePageSize wins, which may
	// not be the latest revision.
	err := RaceHandlers(app, "editPage", "updatePageSize", "R1", "R2",
		runtime.Args{"pageId": 1, "content": "short"},
		runtime.Args{"pageId": 1, "content": "a much longer article body"})
	if err != nil {
		t.Fatal(err)
	}
	// The race makes cached size nondeterministic vs the latest revision;
	// run pageInfo and accept either manifestation, but the revisions table
	// must hold both revisions.
	rows, _ := app.DB().Query(`SELECT COUNT(*) FROM revisions WHERE pageId = 1`)
	if rows.Rows[0][0].AsInt() != 3 { // seed + 2 edits
		t.Errorf("revisions = %v", rows.Rows[0][0])
	}
	if _, err := app.Invoke("pageInfo", runtime.Args{"pageId": 1}); err != nil {
		if !strings.Contains(err.Error(), "does not match") {
			t.Errorf("unexpected pageInfo error: %v", err)
		}
		return // bug manifested, as MW-39225 describes
	}
	// If sizes happened to agree, the interleaving hid the bug this run —
	// still a valid outcome ("rarely and randomly returns wrong sizes").
}

func TestMediaWikiRaceMW44325DuplicateLinks(t *testing.T) {
	app := newWiki(t, false)
	err := RaceHandlers(app, "addSiteLink", "insertSiteLink", "R1", "R2",
		runtime.Args{"pageId": 1, "url": "https://dup"},
		runtime.Args{"pageId": 1, "url": "https://dup"})
	if err != nil {
		t.Fatal(err)
	}
	_, err = app.Invoke("checkSiteLinks", nil)
	if err == nil || !strings.Contains(err.Error(), "duplicated site link") {
		t.Fatalf("expected duplicate link error, got %v", err)
	}
}

func TestMediaWikiFixedSurvivesRaces(t *testing.T) {
	app := newWiki(t, true)
	if err := RaceHandlers(app, "addSiteLink", "siteLinkAtomic", "R1", "R2",
		runtime.Args{"pageId": 1, "url": "https://dup"},
		runtime.Args{"pageId": 1, "url": "https://dup"}); err != nil {
		t.Fatal(err)
	}
	if _, err := app.Invoke("checkSiteLinks", nil); err != nil {
		t.Errorf("fixed addSiteLink still duplicated: %v", err)
	}
	if err := RaceHandlers(app, "editPage", "editAtomic", "R3", "R4",
		runtime.Args{"pageId": 1, "content": "short"},
		runtime.Args{"pageId": 1, "content": "a much longer article body"}); err != nil {
		t.Fatal(err)
	}
	if _, err := app.Invoke("pageInfo", runtime.Args{"pageId": 1}); err != nil {
		t.Errorf("fixed editPage still inconsistent: %v", err)
	}
}

func TestProfilesAndExfiltration(t *testing.T) {
	d := db.MustOpenMemory()
	defer d.Close()
	if err := SetupProfiles(d); err != nil {
		t.Fatal(err)
	}
	app := runtime.New(d)
	RegisterProfiles(app)

	// Legitimate update.
	if _, err := app.Invoke("updateProfile", runtime.Args{"userName": "alice", "caller": "alice", "bio": "new"}); err != nil {
		t.Fatal(err)
	}
	// Illegal update: mallory edits alice's profile (no ownership check).
	if _, err := app.Invoke("updateProfile", runtime.Args{"userName": "alice", "caller": "mallory", "bio": "pwned"}); err != nil {
		t.Fatal(err)
	}
	rows, _ := d.Query(`SELECT updatedBy FROM profiles WHERE userName = 'alice'`)
	if rows.Rows[0][0].AsText() != "mallory" {
		t.Errorf("updatedBy = %v", rows.Rows[0][0])
	}

	// Exfiltration workflow moves a secret into the outbox.
	res, err := app.Invoke("exfiltrate", runtime.Args{"docId": 1, "dropbox": "evil@x"})
	if err != nil || res != true {
		t.Fatalf("exfiltrate = %v, %v", res, err)
	}
	rows, _ = d.Query(`SELECT body FROM outbox WHERE recipient = 'evil@x'`)
	if len(rows.Rows) != 1 || rows.Rows[0][0].AsText() != "alice-api-key" {
		t.Errorf("outbox = %v", rows.Rows)
	}
	if _, err := app.Invoke("viewProfile", runtime.Args{"userName": "ghost"}); err == nil {
		t.Error("missing profile should error")
	}
	if _, err := app.Invoke("readDocument", runtime.Args{"docId": 99}); err == nil {
		t.Error("missing document should error")
	}
}

func TestMicroserviceWorkload(t *testing.T) {
	d := db.MustOpenMemory()
	defer d.Close()
	if err := SetupMicroservice(d, 20, 42); err != nil {
		t.Fatal(err)
	}
	app := runtime.New(d)
	RegisterMicroservice(app)

	handlers, args := RequestMix(200, 20, 7)
	if len(handlers) != 200 || len(args) != 200 {
		t.Fatal("request mix sizing")
	}
	for i := range handlers {
		if _, err := app.Invoke(handlers[i], args[i]); err != nil {
			t.Fatalf("request %d (%s): %v", i, handlers[i], err)
		}
	}
	// Post counters must equal actual posts per user.
	rows, err := d.Query(`SELECT u.userId, u.posts, COUNT(p.postId) AS actual
		FROM users u LEFT JOIN posts p ON p.userId = u.userId
		GROUP BY u.userId, u.posts ORDER BY u.userId`)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows.Rows {
		if r[1].AsInt() != r[2].AsInt() {
			t.Errorf("user %v: counter %v != actual %v", r[0], r[1], r[2])
		}
	}
	// Deterministic mix: same seed, same stream.
	h2, a2 := RequestMix(200, 20, 7)
	for i := range handlers {
		if handlers[i] != h2[i] || args[i].Int("userId") != a2[i].Int("userId") {
			t.Fatal("RequestMix not deterministic")
		}
	}
}
