package workload

import (
	"fmt"

	"repro/internal/db"
	"repro/internal/provenance"
	"repro/internal/runtime"
)

// MediaWikiSchema models the slice of MediaWiki the two case-study bugs
// live in: pages with a cached size, append-only revisions, and site links
// whose URLs are required (but not constrained) to be unique per page set.
const MediaWikiSchema = `
CREATE TABLE pages (pageId INTEGER PRIMARY KEY, title TEXT, size INTEGER);
CREATE TABLE revisions (revId INTEGER PRIMARY KEY, pageId INTEGER, content TEXT, size INTEGER);
CREATE TABLE sitelinks (linkId INTEGER PRIMARY KEY, pageId INTEGER, url TEXT);
`

// MediaWikiTables maps the wiki tables to provenance event tables.
var MediaWikiTables = provenance.TableMap{
	"pages":     "PageEvents",
	"revisions": "RevisionEvents",
	"sitelinks": "SiteLinkEvents",
}

// SetupMediaWiki creates the wiki schema and one seed page.
func SetupMediaWiki(d *db.DB) error {
	if err := d.ExecScript(MediaWikiSchema); err != nil {
		return err
	}
	return d.ExecScript(`
		INSERT INTO pages VALUES (1, 'Main_Page', 0);
		INSERT INTO revisions VALUES (1, 1, '', 0);
	`)
}

// RegisterMediaWiki installs the BUGGY handlers:
//
//   - editPage (MW-39225): the revision insert and the page-size update run
//     in two transactions, so concurrent edits interleave and the history
//     shows wrong article size changes.
//   - addSiteLink (MW-44325): the uniqueness check and the link insert run
//     in two transactions, so concurrent edits of the same page create
//     duplicated site URL links.
func RegisterMediaWiki(app *runtime.App) {
	app.Register("editPage", func(c *runtime.Ctx, args runtime.Args) (any, error) {
		pageID, content := args.Int("pageId"), args.String("content")
		size := int64(len(content))
		// 1st transaction: append the revision.
		if err := c.Txn("insertRevision", func(tx *db.Tx) error {
			rows, err := tx.Query(`SELECT COALESCE(MAX(revId), 0) FROM revisions`)
			if err != nil {
				return err
			}
			_, err = tx.Exec(`INSERT INTO revisions VALUES (?, ?, ?, ?)`, rows.Rows[0][0].AsInt()+1, pageID, content, size)
			return err
		}); err != nil {
			return nil, err
		}
		// 2nd transaction: refresh the cached page size (non-atomically —
		// the MW-39225 bug).
		if _, err := c.Exec("updatePageSize", `UPDATE pages SET size = ? WHERE pageId = ?`, size, pageID); err != nil {
			return nil, err
		}
		return size, nil
	})

	app.Register("addSiteLink", func(c *runtime.Ctx, args runtime.Args) (any, error) {
		pageID, url := args.Int("pageId"), args.String("url")
		var exists bool
		// 1st transaction: check that the URL is not linked yet.
		if err := c.Txn("checkSiteLink", func(tx *db.Tx) error {
			rows, err := tx.Query(`SELECT linkId FROM sitelinks WHERE url = ?`, url)
			if err != nil {
				return err
			}
			exists = len(rows.Rows) > 0
			return nil
		}); err != nil {
			return nil, err
		}
		if exists {
			return false, nil
		}
		// 2nd transaction: insert the link (non-atomically — MW-44325).
		err := c.Txn("insertSiteLink", func(tx *db.Tx) error {
			rows, err := tx.Query(`SELECT COALESCE(MAX(linkId), 0) FROM sitelinks`)
			if err != nil {
				return err
			}
			_, err = tx.Exec(`INSERT INTO sitelinks VALUES (?, ?, ?)`, rows.Rows[0][0].AsInt()+1, pageID, url)
			return err
		})
		if err != nil {
			return nil, err
		}
		return true, nil
	})

	registerMediaWikiCommon(app)
}

// RegisterMediaWikiFixed installs the patched handlers: each edit runs as a
// single atomic transaction.
func RegisterMediaWikiFixed(app *runtime.App) {
	app.Register("editPage", func(c *runtime.Ctx, args runtime.Args) (any, error) {
		pageID, content := args.Int("pageId"), args.String("content")
		size := int64(len(content))
		err := c.Txn("editAtomic", func(tx *db.Tx) error {
			rows, err := tx.Query(`SELECT COALESCE(MAX(revId), 0) FROM revisions`)
			if err != nil {
				return err
			}
			if _, err := tx.Exec(`INSERT INTO revisions VALUES (?, ?, ?, ?)`, rows.Rows[0][0].AsInt()+1, pageID, content, size); err != nil {
				return err
			}
			_, err = tx.Exec(`UPDATE pages SET size = ? WHERE pageId = ?`, size, pageID)
			return err
		})
		if err != nil {
			return nil, err
		}
		return size, nil
	})

	app.Register("addSiteLink", func(c *runtime.Ctx, args runtime.Args) (any, error) {
		pageID, url := args.Int("pageId"), args.String("url")
		var added bool
		err := c.Txn("siteLinkAtomic", func(tx *db.Tx) error {
			added = false
			rows, err := tx.Query(`SELECT linkId FROM sitelinks WHERE url = ?`, url)
			if err != nil {
				return err
			}
			if len(rows.Rows) > 0 {
				return nil
			}
			ids, err := tx.Query(`SELECT COALESCE(MAX(linkId), 0) FROM sitelinks`)
			if err != nil {
				return err
			}
			if _, err := tx.Exec(`INSERT INTO sitelinks VALUES (?, ?, ?)`, ids.Rows[0][0].AsInt()+1, pageID, url); err != nil {
				return err
			}
			added = true
			return nil
		})
		if err != nil {
			return nil, err
		}
		return added, nil
	})

	registerMediaWikiCommon(app)
}

func registerMediaWikiCommon(app *runtime.App) {
	// pageInfo reports the page's cached size and its latest revision's
	// size; MW-39225 manifests as a mismatch between the two.
	app.Register("pageInfo", func(c *runtime.Ctx, args runtime.Args) (any, error) {
		pageID := args.Int("pageId")
		var cached, latest int64
		err := c.Txn("DB.executeQuery", func(tx *db.Tx) error {
			rows, err := tx.Query(`SELECT size FROM pages WHERE pageId = ?`, pageID)
			if err != nil {
				return err
			}
			if len(rows.Rows) == 0 {
				return fmt.Errorf("pageInfo: no page %d", pageID)
			}
			cached = rows.Rows[0][0].AsInt()
			revs, err := tx.Query(`SELECT size FROM revisions WHERE pageId = ? ORDER BY revId DESC LIMIT 1`, pageID)
			if err != nil {
				return err
			}
			if len(revs.Rows) > 0 {
				latest = revs.Rows[0][0].AsInt()
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		if cached != latest {
			return nil, fmt.Errorf("pageInfo: cached size %d does not match latest revision size %d", cached, latest)
		}
		return cached, nil
	})

	// checkSiteLinks raises an error on duplicated URLs, the MW-44325
	// symptom.
	app.Register("checkSiteLinks", func(c *runtime.Ctx, args runtime.Args) (any, error) {
		rows, err := c.Query("DB.executeQuery", `SELECT url, COUNT(*) AS c FROM sitelinks GROUP BY url HAVING COUNT(*) > 1`)
		if err != nil {
			return nil, err
		}
		if len(rows.Rows) > 0 {
			return nil, fmt.Errorf("checkSiteLinks: duplicated site link %s", rows.Rows[0][0].AsText())
		}
		return true, nil
	})
}

// RaceHandlers drives two concurrent requests of the same handler through a
// forced interleaving: both requests pause before their transaction with
// label gateLabel until both have arrived. It generalises RaceSubscribe to
// the MediaWiki bugs.
func RaceHandlers(app *runtime.App, handler, gateLabel string, reqA, reqB string, argsA, argsB runtime.Args) error {
	release := make(chan struct{})
	arrived := make(chan struct{}, 2)
	app.SetTxnInterceptor(labelGate{label: gateLabel, arrived: arrived, release: release})
	defer app.SetTxnInterceptor(nil)

	errs := make(chan error, 2)
	go func() {
		_, err := app.InvokeWithReqID(reqA, handler, argsA)
		errs <- err
	}()
	go func() {
		_, err := app.InvokeWithReqID(reqB, handler, argsB)
		errs <- err
	}()
	<-arrived
	<-arrived
	close(release)
	var first error
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}

type labelGate struct {
	label   string
	arrived chan struct{}
	release chan struct{}
}

// Before implements runtime.TxnInterceptor.
func (g labelGate) Before(c *runtime.Ctx, label string) error {
	if label == g.label {
		g.arrived <- struct{}{}
		<-g.release
	}
	return nil
}

// After implements runtime.TxnInterceptor.
func (g labelGate) After(*runtime.Ctx, string, error) {}
