package workload

import (
	"fmt"

	"repro/internal/db"
	"repro/internal/provenance"
	"repro/internal/runtime"
)

// ProfileSchema models the user-profile service of the paper's §4.2 access
// control patterns: profiles owned by users, and a documents table holding
// sensitive data for the exfiltration case study.
const ProfileSchema = `
CREATE TABLE profiles (userName TEXT PRIMARY KEY, bio TEXT, updatedBy TEXT);
CREATE TABLE documents (docId INTEGER PRIMARY KEY, owner TEXT, secret TEXT);
CREATE TABLE outbox (msgId INTEGER PRIMARY KEY, recipient TEXT, body TEXT);
`

// ProfileTables maps the profile service's tables to provenance event
// tables; ProfileEvents matches the name in the paper's §4.2 query.
var ProfileTables = provenance.TableMap{
	"profiles":  "ProfileEvents",
	"documents": "DocumentEvents",
	"outbox":    "OutboxEvents",
}

// SetupProfiles creates the schema and seed users.
func SetupProfiles(d *db.DB) error {
	if err := d.ExecScript(ProfileSchema); err != nil {
		return err
	}
	return d.ExecScript(`
		INSERT INTO profiles VALUES ('alice', 'hi, alice here', 'alice'), ('bob', 'bob!', 'bob');
		INSERT INTO documents VALUES (1, 'alice', 'alice-api-key'), (2, 'bob', 'bob-api-key');
	`)
}

// RegisterProfiles installs the profile service handlers. updateProfile is
// intentionally missing an ownership check (the User Profiles pattern
// violation of §4.2): any caller may update any profile, and the UpdatedBy
// column records who actually did it — which is exactly what the paper's
// detection query keys on.
func RegisterProfiles(app *runtime.App) {
	app.Register("updateProfile", func(c *runtime.Ctx, args runtime.Args) (any, error) {
		target, caller, bio := args.String("userName"), args.String("caller"), args.String("bio")
		_, err := c.Exec("DB.update", `UPDATE profiles SET bio = ?, updatedBy = ? WHERE userName = ?`, bio, caller, target)
		if err != nil {
			return nil, err
		}
		return true, nil
	})

	app.Register("viewProfile", func(c *runtime.Ctx, args runtime.Args) (any, error) {
		rows, err := c.Query("DB.executeQuery", `SELECT bio FROM profiles WHERE userName = ?`, args.String("userName"))
		if err != nil {
			return nil, err
		}
		if len(rows.Rows) == 0 {
			return nil, fmt.Errorf("viewProfile: no such user")
		}
		return rows.Rows[0][0].AsText(), nil
	})

	// readDocument reads a (possibly sensitive) document; like the paper's
	// compromised handler it does not verify the caller's ownership.
	app.Register("readDocument", func(c *runtime.Ctx, args runtime.Args) (any, error) {
		rows, err := c.Query("DB.executeQuery", `SELECT secret FROM documents WHERE docId = ?`, args.Int("docId"))
		if err != nil {
			return nil, err
		}
		if len(rows.Rows) == 0 {
			return nil, fmt.Errorf("readDocument: no such document")
		}
		return rows.Rows[0][0].AsText(), nil
	})

	// sendMessage writes to the outbox (the exfiltration channel: the
	// outbox is drained to the outside world).
	app.Register("sendMessage", func(c *runtime.Ctx, args runtime.Args) (any, error) {
		err := c.Txn("DB.insert", func(tx *db.Tx) error {
			rows, err := tx.Query(`SELECT COALESCE(MAX(msgId), 0) FROM outbox`)
			if err != nil {
				return err
			}
			_, err = tx.Exec(`INSERT INTO outbox VALUES (?, ?, ?)`, rows.Rows[0][0].AsInt()+1, args.String("recipient"), args.String("body"))
			return err
		})
		if err != nil {
			return nil, err
		}
		c.External("smtp", args.String("recipient"))
		return true, nil
	})

	// exfiltrate is the attack workflow of §4.2: a seemingly valid entry
	// handler that moves stolen data laterally through handler RPCs —
	// readDocument → sendMessage — before it leaves over a legitimate
	// channel.
	app.Register("exfiltrate", func(c *runtime.Ctx, args runtime.Args) (any, error) {
		secret, err := c.Call("readDocument", runtime.Args{"docId": args.Int("docId")})
		if err != nil {
			return nil, err
		}
		return c.Call("sendMessage", runtime.Args{
			"recipient": args.String("dropbox"),
			"body":      secret.(string),
		})
	})
}
