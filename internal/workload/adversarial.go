// Adversarial load shapes for the observability experiments: workloads
// designed to light up the metrics the happy-path benchmarks never move —
// commit-conflict storms, admission-queue pressure, and multi-tenant
// plan-cache thrash.
package workload

import (
	"fmt"
	"math/rand"
	"time"
)

// HotKeySchema is the conflict-storm table: a handful of counters every
// writer fights over.
const HotKeySchema = `CREATE TABLE counters (k INTEGER PRIMARY KEY, n INTEGER);`

// HotKeyPlan deals each worker a deterministic sequence of key choices over
// a deliberately tiny key space. With keys << workers, concurrent
// read-modify-write transactions collide constantly — an OCC conflict storm
// that exercises the conflict counters and the retry-visible tail of the
// latency histograms.
func HotKeyPlan(workers, opsPerWorker, keys int, seed int64) [][]int {
	plan := make([][]int, workers)
	for w := range plan {
		rng := rand.New(rand.NewSource(seed + int64(w)*6364136223846793005))
		seq := make([]int, opsPerWorker)
		for i := range seq {
			seq[i] = rng.Intn(keys)
		}
		plan[w] = seq
	}
	return plan
}

// BurstArrivals builds an open-loop arrival schedule: `bursts` volleys of
// `perBurst` connection arrivals each, the whole volley landing at the same
// offset, with `gap` between volleys. Offsets are relative to the load start
// and are honoured regardless of how far behind the server is — the defining
// property of open-loop load, and the shape that actually fills the
// admission queue and the queue-wait histogram.
func BurstArrivals(bursts, perBurst int, gap time.Duration) []time.Duration {
	offsets := make([]time.Duration, 0, bursts*perBurst)
	for b := 0; b < bursts; b++ {
		at := time.Duration(b) * gap
		for i := 0; i < perBurst; i++ {
			offsets = append(offsets, at)
		}
	}
	return offsets
}

// TenantTable names tenant i's table. Every tenant gets its own table and
// therefore its own query texts — the shape produced by per-tenant schemas in
// multi-tenant services, and the shape that defeats a query-text-keyed plan
// cache.
func TenantTable(i int) string { return fmt.Sprintf("tenant_%04d", i) }

// TenantSchema is tenant i's DDL.
func TenantSchema(i int) string {
	return fmt.Sprintf("CREATE TABLE %s (id INTEGER PRIMARY KEY, n INTEGER);", TenantTable(i))
}

// TenantSeed is the statement that gives tenant i's table its one row.
func TenantSeed(i int) string {
	return fmt.Sprintf("INSERT INTO %s VALUES (1, 0)", TenantTable(i))
}

// TenantQuery is tenant i's read. Distinct text per tenant: with tenants >>
// the plan-cache capacity, steady-state traffic round-robining the tenant
// population gets a near-zero hit ratio and periodic wholesale cache resets.
// The extra predicates cost the planner (the part being measured) without
// costing execution — the scan is still a one-row point lookup.
func TenantQuery(i int) string {
	return fmt.Sprintf("SELECT id, n FROM %s WHERE id = 1 AND n >= 0 AND n < 1000000", TenantTable(i))
}

// TenantPlan deals each worker a deterministic sequence of tenant choices
// spanning the whole tenant population — plan-cache pressure needs breadth,
// not skew, so choices are uniform over all tenants.
func TenantPlan(workers, opsPerWorker, tenants int, seed int64) [][]int {
	plan := make([][]int, workers)
	for w := range plan {
		rng := rand.New(rand.NewSource(seed + int64(w)*2862933555777941757))
		seq := make([]int, opsPerWorker)
		for i := range seq {
			seq[i] = rng.Intn(tenants)
		}
		plan[w] = seq
	}
	return plan
}
