// Adversarial load shapes for the observability experiments: workloads
// designed to light up the metrics the happy-path benchmarks never move —
// commit-conflict storms and admission-queue pressure.
package workload

import (
	"math/rand"
	"time"
)

// HotKeySchema is the conflict-storm table: a handful of counters every
// writer fights over.
const HotKeySchema = `CREATE TABLE counters (k INTEGER PRIMARY KEY, n INTEGER);`

// HotKeyPlan deals each worker a deterministic sequence of key choices over
// a deliberately tiny key space. With keys << workers, concurrent
// read-modify-write transactions collide constantly — an OCC conflict storm
// that exercises the conflict counters and the retry-visible tail of the
// latency histograms.
func HotKeyPlan(workers, opsPerWorker, keys int, seed int64) [][]int {
	plan := make([][]int, workers)
	for w := range plan {
		rng := rand.New(rand.NewSource(seed + int64(w)*6364136223846793005))
		seq := make([]int, opsPerWorker)
		for i := range seq {
			seq[i] = rng.Intn(keys)
		}
		plan[w] = seq
	}
	return plan
}

// BurstArrivals builds an open-loop arrival schedule: `bursts` volleys of
// `perBurst` connection arrivals each, the whole volley landing at the same
// offset, with `gap` between volleys. Offsets are relative to the load start
// and are honoured regardless of how far behind the server is — the defining
// property of open-loop load, and the shape that actually fills the
// admission queue and the queue-wait histogram.
func BurstArrivals(bursts, perBurst int, gap time.Duration) []time.Duration {
	offsets := make([]time.Duration, 0, bursts*perBurst)
	for b := 0; b < bursts; b++ {
		at := time.Duration(b) * gap
		for i := 0; i < perBurst; i++ {
			offsets = append(offsets, at)
		}
	}
	return offsets
}
