// Package workload implements the applications TROD's evaluation runs on:
// a Moodle-like forum service (bugs MDL-59854 and MDL-60669), a
// MediaWiki-like wiki service (bugs MW-44325 and MW-39225), a profile
// service with access-control bugs (§4.2), and a multi-handler microservice
// benchmark used for the tracing-overhead experiment (§3.7). Each app is a
// set of deterministic handlers over the TROD runtime, with both buggy and
// fixed variants where the paper's case studies discuss a fix.
package workload

import (
	"fmt"

	"repro/internal/db"
	"repro/internal/provenance"
	"repro/internal/runtime"
)

// MoodleSchema is the forum service's schema. Like Moodle's
// mdl_forum_subscriptions, forum_sub has a surrogate primary key and no
// uniqueness constraint on (userId, forum) — the precondition for MDL-59854.
const MoodleSchema = `
CREATE TABLE forum_sub (id INTEGER PRIMARY KEY, userId TEXT, forum TEXT, course TEXT);
CREATE TABLE courses (name TEXT PRIMARY KEY, deleted BOOL);
`

// MoodleTables maps the forum service's tables to provenance event tables
// (the paper's ForumEvents naming).
var MoodleTables = provenance.TableMap{
	"forum_sub": "ForumEvents",
	"courses":   "CourseEvents",
}

// SetupMoodle creates the forum schema and seed courses.
func SetupMoodle(d *db.DB) error {
	if err := d.ExecScript(MoodleSchema); err != nil {
		return err
	}
	return d.ExecScript(`INSERT INTO courses VALUES ('C1', FALSE), ('C2', FALSE)`)
}

// nextSubID allocates the next forum_sub id transactionally — Moodle's
// auto-increment, deterministic per P3 (a function of database state).
func nextSubID(tx *db.Tx) (int64, error) {
	rows, err := tx.Query(`SELECT COALESCE(MAX(id), 0) FROM forum_sub`)
	if err != nil {
		return 0, err
	}
	return rows.Rows[0][0].AsInt() + 1, nil
}

// RegisterMoodle installs the forum service's handlers with the BUGGY
// subscribeUser of Figure 1: the existence check and the insert run in two
// separate transactions (the MDL-59854 TOCTOU race).
func RegisterMoodle(app *runtime.App) {
	app.Register("subscribeUser", func(c *runtime.Ctx, args runtime.Args) (any, error) {
		user, forum, course := args.String("userId"), args.String("forum"), args.String("course")
		if course == "" {
			course = "C1"
		}
		var exists bool
		// 1st transaction: check subscription.
		if err := c.Txn("isSubscribed", func(tx *db.Tx) error {
			rows, err := tx.Query(`SELECT id FROM forum_sub WHERE userId = ? AND forum = ?`, user, forum)
			if err != nil {
				return err
			}
			exists = len(rows.Rows) > 0
			return nil
		}); err != nil {
			return nil, err
		}
		if exists {
			return true, nil
		}
		// 2nd transaction: insert a subscription entry.
		err := c.Txn("DB.insert", func(tx *db.Tx) error {
			id, err := nextSubID(tx)
			if err != nil {
				return err
			}
			_, err = tx.Exec(`INSERT INTO forum_sub VALUES (?, ?, ?, ?)`, id, user, forum, course)
			return err
		})
		if err != nil {
			return nil, err
		}
		return true, nil
	})
	registerMoodleCommon(app)
}

// RegisterMoodleFixed installs the PATCHED subscribeUser suggested in the
// MDL-59854 discussion: isSubscribed and DB.insert wrapped in one
// transaction, which the serializable database then makes race-free.
func RegisterMoodleFixed(app *runtime.App) {
	app.Register("subscribeUser", func(c *runtime.Ctx, args runtime.Args) (any, error) {
		user, forum, course := args.String("userId"), args.String("forum"), args.String("course")
		if course == "" {
			course = "C1"
		}
		err := c.Txn("subscribeAtomic", func(tx *db.Tx) error {
			rows, err := tx.Query(`SELECT id FROM forum_sub WHERE userId = ? AND forum = ?`, user, forum)
			if err != nil {
				return err
			}
			if len(rows.Rows) > 0 {
				return nil
			}
			id, err := nextSubID(tx)
			if err != nil {
				return err
			}
			_, err = tx.Exec(`INSERT INTO forum_sub VALUES (?, ?, ?, ?)`, id, user, forum, course)
			return err
		})
		if err != nil {
			return nil, err
		}
		return true, nil
	})
	registerMoodleCommon(app)
}

// registerMoodleCommon installs the handlers shared by both variants.
func registerMoodleCommon(app *runtime.App) {
	// fetchSubscribers raises an error on duplicated userIds — the symptom
	// that exposed MDL-59854 (Figure 1).
	app.Register("fetchSubscribers", func(c *runtime.Ctx, args runtime.Args) (any, error) {
		rows, err := c.Query("DB.executeQuery", `SELECT userId FROM forum_sub WHERE forum = ? ORDER BY id`, args.String("forum"))
		if err != nil {
			return nil, err
		}
		seen := map[string]bool{}
		var users []string
		for _, r := range rows.Rows {
			u := r[0].AsText()
			if seen[u] {
				return nil, fmt.Errorf("fetchSubscribers: duplicated values in column userId")
			}
			seen[u] = true
			users = append(users, u)
		}
		return users, nil
	})

	// deleteCourse soft-deletes a course; its subscriptions stay behind —
	// the precondition for MDL-60669.
	app.Register("deleteCourse", func(c *runtime.Ctx, args runtime.Args) (any, error) {
		_, err := c.Exec("DB.update", `UPDATE courses SET deleted = TRUE WHERE name = ?`, args.String("course"))
		return err == nil, err
	})

	// restoreCourse re-activates a course and VALIDATES its subscriptions;
	// duplicated (userId, forum) pairs inside the course make it fail —
	// that is MDL-60669: the MDL-59854 patch stopped new duplicates but old
	// ones in deleted courses still break restore.
	app.Register("restoreCourse", func(c *runtime.Ctx, args runtime.Args) (any, error) {
		course := args.String("course")
		var restoreErr error
		err := c.Txn("DB.restore", func(tx *db.Tx) error {
			rows, err := tx.Query(`SELECT userId, forum FROM forum_sub WHERE course = ? ORDER BY id`, course)
			if err != nil {
				return err
			}
			seen := map[string]bool{}
			for _, r := range rows.Rows {
				key := r[0].AsText() + "|" + r[1].AsText()
				if seen[key] {
					restoreErr = fmt.Errorf("restoreCourse: duplicate subscription %s in deleted course %s", key, course)
					return nil // commit the read-only txn; surface app error after
				}
				seen[key] = true
			}
			_, err = tx.Exec(`UPDATE courses SET deleted = FALSE WHERE name = ?`, course)
			return err
		})
		if err != nil {
			return nil, err
		}
		if restoreErr != nil {
			return nil, restoreErr
		}
		return true, nil
	})

	// unsubscribe removes all of a user's subscriptions to a forum; part of
	// the dedup cleanup path developers used when fixing MDL-59854.
	app.Register("unsubscribe", func(c *runtime.Ctx, args runtime.Args) (any, error) {
		rows, err := c.Exec("DB.delete", `DELETE FROM forum_sub WHERE userId = ? AND forum = ?`, args.String("userId"), args.String("forum"))
		if err != nil {
			return nil, err
		}
		return rows.RowsAffected > 0, nil
	})
}

// RaceSubscribe drives two concurrent subscribeUser requests for the same
// (user, forum) through the MDL-59854 interleaving: both existence checks
// run before either insert. It returns after both requests finish. The gate
// uses the runtime's transaction interceptor, which is reset afterwards.
func RaceSubscribe(app *runtime.App, reqA, reqB, user, forum string) error {
	release := make(chan struct{})
	arrived := make(chan struct{}, 2)
	app.SetTxnInterceptor(raceGate{arrived: arrived, release: release})
	defer app.SetTxnInterceptor(nil)

	errs := make(chan error, 2)
	for _, req := range []string{reqA, reqB} {
		go func(r string) {
			_, err := app.InvokeWithReqID(r, "subscribeUser", runtime.Args{"userId": user, "forum": forum})
			errs <- err
		}(req)
	}
	// Wait for both requests to pass their check transaction, then release
	// the inserts.
	<-arrived
	<-arrived
	close(release)
	var first error
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// raceGate blocks every DB.insert transaction until release is closed.
type raceGate struct {
	arrived chan struct{}
	release chan struct{}
}

// Before implements runtime.TxnInterceptor.
func (g raceGate) Before(c *runtime.Ctx, label string) error {
	if label == "DB.insert" || label == "subscribeAtomic" {
		g.arrived <- struct{}{}
		<-g.release
	}
	return nil
}

// After implements runtime.TxnInterceptor.
func (g raceGate) After(*runtime.Ctx, string, error) {}
