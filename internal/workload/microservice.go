package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/db"
	"repro/internal/provenance"
	"repro/internal/runtime"
)

// MicroserviceSchema is a small social-network app in the style of the
// microservice benchmarks (DeathStarBench-like) the paper's prototype was
// measured on (§3.7): users, posts, follows, and timelines assembled by a
// workflow of handlers.
const MicroserviceSchema = `
CREATE TABLE users (userId INTEGER PRIMARY KEY, name TEXT, posts INTEGER, followers INTEGER);
CREATE TABLE posts (postId INTEGER PRIMARY KEY, userId INTEGER, body TEXT);
CREATE TABLE follows (follower INTEGER, followee INTEGER, PRIMARY KEY (follower, followee));
CREATE INDEX posts_by_user ON posts (userId);
`

// MicroserviceTables traces all three tables.
var MicroserviceTables = provenance.TableMap{
	"users":   "UserEvents",
	"posts":   "PostEvents",
	"follows": "FollowEvents",
}

// SetupMicroservice creates the schema and seeds nUsers users with a sparse
// follow graph (deterministic from seed).
func SetupMicroservice(d *db.DB, nUsers int, seed int64) error {
	if err := d.ExecScript(MicroserviceSchema); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	tx := d.Begin()
	for i := 1; i <= nUsers; i++ {
		if _, err := tx.Exec(`INSERT INTO users VALUES (?, ?, 0, 0)`, i, fmt.Sprintf("user%d", i)); err != nil {
			tx.Rollback()
			return err
		}
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	tx = d.Begin()
	for i := 1; i <= nUsers; i++ {
		for f := 0; f < 3; f++ {
			other := 1 + rng.Intn(nUsers)
			if other == i {
				continue
			}
			rows, err := tx.Query(`SELECT follower FROM follows WHERE follower = ? AND followee = ?`, i, other)
			if err != nil {
				tx.Rollback()
				return err
			}
			if len(rows.Rows) > 0 {
				continue
			}
			if _, err := tx.Exec(`INSERT INTO follows VALUES (?, ?)`, i, other); err != nil {
				tx.Rollback()
				return err
			}
		}
	}
	return tx.Commit()
}

// RegisterMicroservice installs the benchmark's handlers. createPost is a
// two-transaction workflow (insert post + bump the author's counter);
// readTimeline joins follows and posts; follow updates two tables through
// an RPC to a second handler — a representative request mix.
func RegisterMicroservice(app *runtime.App) {
	app.Register("createPost", func(c *runtime.Ctx, args runtime.Args) (any, error) {
		user, body, postID := args.Int("userId"), args.String("body"), args.Int("postId")
		if err := c.Txn("insertPost", func(tx *db.Tx) error {
			_, err := tx.Exec(`INSERT INTO posts VALUES (?, ?, ?)`, postID, user, body)
			return err
		}); err != nil {
			return nil, err
		}
		if err := c.Txn("bumpCounter", func(tx *db.Tx) error {
			rows, err := tx.Query(`SELECT posts FROM users WHERE userId = ?`, user)
			if err != nil {
				return err
			}
			if len(rows.Rows) == 0 {
				return fmt.Errorf("createPost: no user %d", user)
			}
			_, err = tx.Exec(`UPDATE users SET posts = ? WHERE userId = ?`, rows.Rows[0][0].AsInt()+1, user)
			return err
		}); err != nil {
			return nil, err
		}
		return postID, nil
	})

	app.Register("readPost", func(c *runtime.Ctx, args runtime.Args) (any, error) {
		rows, err := c.Query("selectPost", `SELECT body FROM posts WHERE postId = ?`, args.Int("postId"))
		if err != nil {
			return nil, err
		}
		if len(rows.Rows) == 0 {
			return nil, nil
		}
		return rows.Rows[0][0].AsText(), nil
	})

	app.Register("readTimeline", func(c *runtime.Ctx, args runtime.Args) (any, error) {
		// Assemble the timeline the way a real microservice does: fetch the
		// followee list by primary key, then each followee's recent posts
		// through the posts_by_user index — point/prefix reads only.
		user := args.Int("userId")
		count := 0
		err := c.Txn("timeline", func(tx *db.Tx) error {
			follows, err := tx.Query(`SELECT followee FROM follows WHERE follower = ?`, user)
			if err != nil {
				return err
			}
			for _, f := range follows.Rows {
				posts, err := tx.Query(`SELECT postId FROM posts WHERE userId = ? ORDER BY postId DESC LIMIT 5`, f[0].AsInt())
				if err != nil {
					return err
				}
				count += len(posts.Rows)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		return count, nil
	})

	app.Register("follow", func(c *runtime.Ctx, args runtime.Args) (any, error) {
		follower, followee := args.Int("userId"), args.Int("followee")
		if err := c.Txn("insertFollow", func(tx *db.Tx) error {
			rows, err := tx.Query(`SELECT follower FROM follows WHERE follower = ? AND followee = ?`, follower, followee)
			if err != nil {
				return err
			}
			if len(rows.Rows) > 0 {
				return nil
			}
			_, err = tx.Exec(`INSERT INTO follows VALUES (?, ?)`, follower, followee)
			return err
		}); err != nil {
			return nil, err
		}
		// Bump the followee's counter via RPC — the workflow shape the
		// paper's microservice apps have.
		return c.Call("bumpFollowers", runtime.Args{"userId": followee})
	})

	app.Register("bumpFollowers", func(c *runtime.Ctx, args runtime.Args) (any, error) {
		user := args.Int("userId")
		err := c.Txn("bumpFollowers", func(tx *db.Tx) error {
			rows, err := tx.Query(`SELECT followers FROM users WHERE userId = ?`, user)
			if err != nil {
				return err
			}
			if len(rows.Rows) == 0 {
				return nil
			}
			_, err = tx.Exec(`UPDATE users SET followers = ? WHERE userId = ?`, rows.Rows[0][0].AsInt()+1, user)
			return err
		})
		return nil, err
	})
}

// RequestMix generates a deterministic stream of n benchmark requests:
// 40% createPost, 30% readPost, 20% readTimeline, 10% follow. It returns
// handler names with matching argument sets.
func RequestMix(n, nUsers int, seed int64) ([]string, []runtime.Args) {
	rng := rand.New(rand.NewSource(seed))
	handlers := make([]string, n)
	args := make([]runtime.Args, n)
	postID := int64(0)
	for i := 0; i < n; i++ {
		user := int64(1 + rng.Intn(nUsers))
		switch r := rng.Intn(10); {
		case r < 4:
			postID++
			handlers[i] = "createPost"
			args[i] = runtime.Args{"userId": user, "postId": postID, "body": fmt.Sprintf("post %d by %d", postID, user)}
		case r < 7:
			handlers[i] = "readPost"
			ref := int64(1)
			if postID > 0 {
				ref = 1 + rng.Int63n(postID)
			}
			args[i] = runtime.Args{"postId": ref}
		case r < 9:
			handlers[i] = "readTimeline"
			args[i] = runtime.Args{"userId": user}
		default:
			handlers[i] = "follow"
			other := int64(1 + rng.Intn(nUsers))
			if other == user {
				other = user%int64(nUsers) + 1
			}
			args[i] = runtime.Args{"userId": user, "followee": other}
		}
	}
	return handlers, args
}
