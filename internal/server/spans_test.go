package server

import (
	"path/filepath"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/db"
	"repro/internal/span"
	"repro/internal/wal"
)

// findTrace polls the collector for the newest kept trace of a request kind.
func findTrace(t *testing.T, col *span.Collector, kind string) *span.Trace {
	t.Helper()
	var got *span.Trace
	waitFor(t, "a kept "+kind+" trace", func() bool {
		for _, tr := range col.Traces() {
			if tr.Kind == kind {
				got = tr
			}
		}
		return got != nil
	})
	return got
}

func stages(tr *span.Trace) map[string]int {
	out := map[string]int{}
	for _, s := range tr.Spans {
		out[s.Stage.String()]++
	}
	return out
}

// TestSpansEndToEnd drives traced requests through a live server and follows
// the whole observability path: collector capture, the trod_spans system
// table served over normal SQL, and agreement between the two.
func TestSpansEndToEnd(t *testing.T) {
	col := span.NewCollector(span.CollectorOptions{Sample: 1})
	_, addr := memServer(t, Config{Spans: col})
	c, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Exec(`CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(`INSERT INTO t VALUES (1, 'a')`); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(`SELECT v FROM t WHERE id = 1`); err != nil {
		t.Fatal(err)
	}

	ins := findTrace(t, col, "exec")
	if ins.Status != "ok" || ins.ReqID == "" {
		t.Fatalf("insert trace malformed: %+v", ins)
	}
	st := stages(ins)
	for _, want := range []string{"request", "frame_read", "parse_plan", "execute", "occ_validate"} {
		if st[want] == 0 {
			t.Fatalf("insert trace missing %s stage (have %v)", want, st)
		}
	}
	q := findTrace(t, col, "query")
	if stages(q)["execute"] == 0 || stages(q)["parse_plan"] == 0 {
		t.Fatalf("query trace missing stages: %v", stages(q))
	}

	// The same spans must be queryable over plain SQL against the trod_spans
	// system table (the store writer is async: poll).
	var rows int
	waitFor(t, "trod_spans rows for the insert", func() bool {
		res, err := c.Query(`SELECT stage, dur_us FROM trod_spans WHERE req_id = ?`, ins.ReqID)
		if err != nil {
			t.Fatal(err)
		}
		rows = len(res.Rows)
		return rows > 0
	})
	if rows != len(ins.Spans) {
		t.Fatalf("trod_spans has %d rows for %s, collector trace has %d spans", rows, ins.ReqID, len(ins.Spans))
	}
}

// TestSpansTailSamplingKeepsErrors: with the probabilistic sampler
// effectively off, error traces are still always kept.
func TestSpansTailSamplingKeepsErrors(t *testing.T) {
	col := span.NewCollector(span.CollectorOptions{KeepOver: time.Hour})
	_, addr := memServer(t, Config{Spans: col})
	c, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Query(`SELECT broken syntax here`); err == nil {
		t.Fatal("broken SQL succeeded")
	}
	tr := findTrace(t, col, "query")
	if tr.Status != "error" {
		t.Fatalf("kept trace status = %q, want error", tr.Status)
	}
	if _, err := c.Query(`SELECT 1 WHERE 1 = 1`); err != nil {
		// fine either way; the point is below
		_ = err
	}
	st := col.Stats()
	if st.Kept == 0 || st.Kept > 1 {
		t.Fatalf("tail sampler kept %d traces, want exactly the error trace", st.Kept)
	}
}

// TestSpanStageCoverage pins the acceptance bar: for a slow (fsync-bound)
// write, the recorded stage spans must account for at least 90% of the
// request's wall time — the trace is an explanation, not a sample of one.
func TestSpanStageCoverage(t *testing.T) {
	dir := t.TempDir()
	d, err := db.Open(db.Options{Mode: db.Disk, Path: filepath.Join(dir, "w.wal"), Sync: wal.SyncEachCommit})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	d.Log().SetSyncDelay(2 * time.Millisecond)

	col := span.NewCollector(span.CollectorOptions{Sample: 1})
	_, addr := startServer(t, d, Config{Spans: col})
	c, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Exec(`CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)`); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(`INSERT INTO t VALUES (1, 0)`); err != nil {
		t.Fatal(err)
	}

	var ins *span.Trace
	for _, tr := range col.Traces() {
		if tr.Kind == "exec" && tr.Seq != 0 {
			ins = tr
		}
	}
	if ins == nil {
		t.Fatal("no committed exec trace kept")
	}
	sum, wall := span.StageSumNs(ins.Spans), int64(ins.Wall)
	if wall <= 0 {
		t.Fatalf("trace wall = %d", wall)
	}
	if cov := float64(sum) / float64(wall); cov < 0.9 {
		t.Fatalf("stage spans cover %.1f%% of a %.2fms request, want >= 90%% (spans: %v)",
			100*cov, float64(wall)/1e6, span.BreakdownMs(ins.Spans))
	}
	st := stages(ins)
	if st["wal_fsync"] == 0 && st["group_commit_wait"] == 0 {
		t.Fatalf("fsync-bound commit shows neither wal_fsync nor group_commit_wait: %v", st)
	}
}

// TestClientTracePropagation: a client-originated trace context rides the
// wire, so the server-side trace carries the client's trace ID and the
// client records its own pool/rtt spans under the same trace.
func TestClientTracePropagation(t *testing.T) {
	scol := span.NewCollector(span.CollectorOptions{Sample: 1})
	_, addr := memServer(t, Config{Spans: scol})
	ccol := span.NewCollector(span.CollectorOptions{Sample: 1})
	ccol.SeedTraceIDs(1 << 40) // disjoint from the server's allocator
	c, err := client.Dial(addr, client.Options{Collector: ccol})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Exec(`CREATE TABLE t (id INTEGER PRIMARY KEY)`); err != nil {
		t.Fatal(err)
	}

	ctr := findTrace(t, ccol, "exec")
	if ctr.TraceID <= 1<<40 {
		t.Fatalf("client trace ID %d not from the seeded range", ctr.TraceID)
	}
	cst := stages(ctr)
	if cst["rtt"] == 0 || cst["pool_checkout"] == 0 {
		t.Fatalf("client trace missing rtt/pool_checkout: %v", cst)
	}
	str := findTrace(t, scol, "exec")
	if str.TraceID != ctr.TraceID {
		t.Fatalf("server trace ID %d != client trace ID %d: context did not propagate", str.TraceID, ctr.TraceID)
	}
	// The server's root span parents under the client's root, so a merged
	// tree renders the server stages inside the client's rtt window.
	if root := str.Spans[0]; root.Parent != span.RootID {
		t.Fatalf("server root parent = %d, want the client's root span ID %d", root.Parent, span.RootID)
	}
}

// TestSpansDisabledNoStore: without a collector the server must not build
// the trod_spans store, and trod_spans queries fail like any unknown table.
func TestSpansDisabledNoStore(t *testing.T) {
	srv, addr := memServer(t, Config{})
	if srv.spanStore != nil {
		t.Fatal("span store built with tracing disabled")
	}
	c, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Query(`SELECT * FROM trod_spans`); err == nil {
		t.Fatal("trod_spans query succeeded with tracing disabled")
	}
}
