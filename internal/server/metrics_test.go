package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/db"
	"repro/internal/metrics"
	"repro/internal/runtime"
	"repro/internal/trace"
)

// parseExposition reads Prometheus text output into series-name → value
// (labels kept as part of the name, comments skipped).
func parseExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed exposition line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("malformed value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

// TestStatsAndScrapeAgree drives traffic through a server that exports both
// observability surfaces — the protocol Stats message and the Prometheus
// registry — and asserts the overlapping counters agree exactly. The two
// surfaces read the same underlying counters; this test keeps them from
// drifting as either side grows.
func TestStatsAndScrapeAgree(t *testing.T) {
	d := db.MustOpenMemory()
	defer d.Close()
	srv, addr := startServer(t, d, Config{})
	reg := metrics.NewRegistry()
	d.RegisterMetrics(reg)
	srv.RegisterMetrics(reg)

	cl, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Exec(`CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)`); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		if _, err := cl.Exec(`INSERT INTO t VALUES (?, 'x')`, i); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cl.Query(`SELECT COUNT(*) FROM t`); err != nil {
		t.Fatal(err)
	}
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	tx, err := cl.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(`INSERT INTO t VALUES (100, 'txn')`); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// All client calls above completed synchronously, so the counters are
	// quiescent: the scrape and the Stats snapshot must see identical values.
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	series := parseExposition(t, buf.String())
	st := srv.Stats()

	want := map[string]uint64{
		"trod_server_requests_total":           st.Requests,
		"trod_server_commits_total":            st.Commits,
		"trod_server_accepted_total":           st.Accepted,
		"trod_server_conflicts_total":          st.Conflicts,
		"trod_server_rejected_busy_total":      st.RejectedBusy,
		"trod_server_expired_txns_total":       st.ExpiredTxns,
		"trod_db_commits_total":                st.DBCommits,
		"trod_db_conflicts_total":              st.DBConflicts,
		"trod_db_checkpoints_total":            st.Checkpoints,
		"trod_wal_syncs_total":                 st.WALSyncs,
		"trod_db_plan_cache_hits_total":        st.PlanCacheHits,
		"trod_db_plan_cache_misses_total":      st.PlanCacheMisses,
		"trod_db_resident_versions":            st.ResidentVersions,
		"trod_db_max_chain_length":             st.MaxChainLength,
		"trod_server_queue_wait_seconds_count": st.Accepted,
	}
	for name, v := range want {
		got, ok := series[name]
		if !ok {
			t.Errorf("series %s missing from scrape", name)
			continue
		}
		if got != float64(v) {
			t.Errorf("%s = %v on /metrics, %d in Stats", name, got, v)
		}
	}
	if st.Requests == 0 || st.Commits == 0 || st.DBCommits == 0 {
		t.Fatalf("test drove no traffic? stats: %+v", st)
	}

	// Every protocol request served lands in exactly one per-type latency
	// bucket, so the histogram counts sum to the request counter.
	var observed float64
	for name, v := range series {
		if strings.HasPrefix(name, "trod_server_request_seconds_count{") {
			observed += v
		}
	}
	if observed != float64(st.Requests) {
		t.Errorf("request_seconds histogram saw %v requests, Stats says %d", observed, st.Requests)
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for capturing the slow-query
// log while sessions are still writing it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestSlowQueryLogLinksToProvenance runs a server with an attached runtime
// and tracer and a 1ns slow-query threshold (everything is slow), then
// checks each logged line carries the plan shape and a request ID that
// resolves in the provenance database — the slow-query → time-travel
// runbook's load-bearing link.
func TestSlowQueryLogLinksToProvenance(t *testing.T) {
	prod := db.MustOpenMemory()
	defer prod.Close()
	prov := db.MustOpenMemory()
	defer prov.Close()
	app := runtime.New(prod)
	if err := prod.ExecScript(`CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)`); err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Attach(app, prov, trace.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	var slow syncBuffer
	_, addr := startServer(t, prod, Config{
		App:                app,
		SlowQueryThreshold: time.Nanosecond,
		SlowQueryOutput:    &slow,
	})
	cl, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Exec(`INSERT INTO t VALUES (1, 'remote')`); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Query(`SELECT v FROM t WHERE id = 1`); err != nil {
		t.Fatal(err)
	}
	tx, err := cl.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(`INSERT INTO t VALUES (2, 'txn')`); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}

	type line struct {
		ReqID     string  `json:"req_id"`
		Type      string  `json:"type"`
		LatencyMs float64 `json:"latency_ms"`
		SQL       string  `json:"sql"`
		Plan      string  `json:"plan"`
		Status    string  `json:"status"`
	}
	var lines []line
	for _, raw := range strings.Split(strings.TrimSpace(slow.String()), "\n") {
		var l line
		if err := json.Unmarshal([]byte(raw), &l); err != nil {
			t.Fatalf("malformed slow-query line %q: %v", raw, err)
		}
		lines = append(lines, l)
	}
	// exec(insert), query(select), exec(insert in txn), and the interactive
	// commit — commits are slow statements too (fsync, quorum) and log
	// without SQL or plan, under the transaction's request ID.
	if len(lines) != 4 {
		t.Fatalf("slow-query lines = %d, want 4:\n%s", len(lines), slow.String())
	}
	var sawSelect, sawCommit bool
	for _, l := range lines {
		if l.Type == "commit" {
			sawCommit = true
			if l.SQL != "" || l.Plan != "" {
				t.Errorf("commit line carries SQL/plan: %+v", l)
			}
		} else if l.Status != "ok" || l.SQL == "" || l.LatencyMs <= 0 {
			t.Errorf("bad slow-query line: %+v", l)
		}
		if !strings.HasPrefix(l.ReqID, "R") {
			t.Errorf("req_id %q not from the app allocator", l.ReqID)
		}
		if strings.HasPrefix(l.SQL, "SELECT") {
			sawSelect = true
			if !strings.Contains(l.Plan, "scan(t") {
				t.Errorf("SELECT plan shape = %q, want a scan of t", l.Plan)
			}
		}
		// The load-bearing link: the logged request ID resolves in the
		// provenance DB, where BeginAt/replay can pick the story up.
		rows, err := prov.Query(`SELECT ReqId FROM trod_requests WHERE ReqId = ?`, l.ReqID)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows.Rows) != 1 {
			t.Errorf("req_id %q did not resolve in provenance (%d rows)", l.ReqID, len(rows.Rows))
		}
	}
	if !sawSelect {
		t.Error("no SELECT line in the slow-query log")
	}
	if !sawCommit {
		t.Error("no commit line in the slow-query log")
	}
}
